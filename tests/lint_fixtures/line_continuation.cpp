// a continued comment hides the next physical line \
rand(); std::thread t;
const char* s = "a continued string literal \
rand()";
int v = ra\
nd();
