auto m = comm.recv(rt::kAnySource, 3);
