auto m = comm.recv(0);
