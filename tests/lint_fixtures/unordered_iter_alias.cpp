using ConfigSet = std::unordered_set<Config, Hash>;
ConfigSet seen;
for (const auto& c : seen) use(c);
