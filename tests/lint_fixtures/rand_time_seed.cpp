srand(time(nullptr));
int v = rand();
