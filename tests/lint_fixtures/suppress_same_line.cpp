int v = rand();  // gptune-lint: allow(rand) reason: fixture
