auto t0 = std::chrono::steady_clock::now();
auto t1 = std::chrono::system_clock::now();
