std::unordered_set<int> seen;
if (seen.count(3)) use();
std::vector<int> v;
for (int x : v) use(x);
