std::unordered_map<int, int> counts;
for (const auto& [k, v] : counts) use(k, v);
