rt::Message m = comm.recv();
