#include "common/log.hpp"
#include "linalg/cholesky.hpp"
