int v = rand();  // gptune-lint: allow(time-seed) reason: fixture
