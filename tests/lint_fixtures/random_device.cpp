std::mt19937 gen{std::random_device{}()};
