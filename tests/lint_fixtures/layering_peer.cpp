#include "opt/lhs.hpp"
