// gptune-lint: allow(rand) reason: a multi-line justification whose
// tail pushes the directive two comment lines above the code.
int v = rand();
