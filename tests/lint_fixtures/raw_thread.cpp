std::thread t([] {});
