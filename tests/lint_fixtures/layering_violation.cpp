#include "core/history.hpp"
