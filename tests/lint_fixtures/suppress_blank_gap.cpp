// gptune-lint: allow(rand) reason: fixture

int v = rand();
