auto f = linalg::blocked_cholesky(k, 128);
