const char* a = R"(std::thread t; rand(); std::random_device rd;)";
const char* b = R"xy(srand(time(nullptr)); " )" still raw )xy";
const char* c = u8R"(comm.recv();)";
int ok = 0;
