// The negative test for the thread-safety lane (DESIGN.md §3.11).
//
// scripts/check.sh threadsafety compiles this file with Clang and
// -Wthread-safety -Werror and REQUIRES the compilation to FAIL: bump() and
// read() touch a GPTUNE_GUARDED_BY member without holding the mutex. If
// this file ever compiles under the analysis, the annotations have stopped
// doing their job (e.g. the capability attributes were compiled out) and
// the lane reports an error.
#include "common/annotations.hpp"
#include "common/sync.hpp"

namespace {

class Counter {
 public:
  // BAD on purpose: writes the guarded member with no lock held.
  void bump() { ++value_; }
  // BAD on purpose: reads the guarded member with no lock held.
  int read() const { return value_; }

 private:
  mutable gptune::common::Mutex mutex_;
  int value_ GPTUNE_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return c.read();
}
