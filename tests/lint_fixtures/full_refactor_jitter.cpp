auto f = CholeskyFactor::factor_with_jitter(k, 1e-10, 1e-2, &j);
