ok = linalg::blocked_cholesky_extend(w, n0, 128);
