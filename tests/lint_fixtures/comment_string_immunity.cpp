// std::random_device in a comment
/* rand() in a block
   comment spanning lines */
const char* s = "std::thread rand()";
