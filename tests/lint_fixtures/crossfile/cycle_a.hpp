#pragma once
#include "core/cycle_b.hpp"
