#include "core/decl.hpp"
void f() { x::history.clear(); }
