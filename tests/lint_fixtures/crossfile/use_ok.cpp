#include "core/decl.hpp"
void g(HistoryRecord r) {
  x::history.add(r);
  (void)x::history.size();
}
