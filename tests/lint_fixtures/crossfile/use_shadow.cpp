void h(TaskHistory& history) { history.clear(); }
