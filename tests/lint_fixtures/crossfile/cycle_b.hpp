#pragma once
#include "core/cycle_a.hpp"
