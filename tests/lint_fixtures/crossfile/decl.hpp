#pragma once
#include "core/history.hpp"
namespace x {
inline gptune::core::HistoryDb history;
}  // namespace x
