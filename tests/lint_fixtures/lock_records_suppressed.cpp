// gptune-lint: allow(lock-discipline) reason: quiescent snapshot
for (const auto& r : db.records()) use(r);
