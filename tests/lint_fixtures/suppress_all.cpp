srand(time(nullptr));  // gptune-lint: allow(all) reason: fixture
