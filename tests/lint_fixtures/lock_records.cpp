for (const auto& r : db.records()) use(r);
