// gptune-lint: allow(full-refactor) reason: parity baseline fixture
auto f = linalg::blocked_cholesky(k, 128);
