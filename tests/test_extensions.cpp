// Tests for the extension features: CMA-ES, transfer-learning autotuning
// (TLA), and MLA's tolerance to failing (non-finite) objective
// evaluations.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/mla.hpp"
#include "core/tla.hpp"
#include "opt/cmaes.hpp"
#include "opt/direct_search.hpp"

namespace {

using namespace gptune;
using gptune::common::Rng;

// --- CMA-ES ---

double sphere(const opt::Point& x) {
  double s = 0.0;
  for (double v : x) s += (v - 0.3) * (v - 0.3);
  return s;
}

double rosenbrock_box(const opt::Point& x) {
  // Rosenbrock shifted into the unit box; optimum at (0.6, 0.36).
  const double a = 0.6 - x[0];
  const double b = x[1] - x[0] * x[0];
  return a * a + 20.0 * b * b;
}

class CmaEsDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CmaEsDims, SolvesSphere) {
  Rng rng(10 + GetParam());
  opt::CmaEsOptions opt;
  opt.max_evaluations = 1500;
  auto r = opt::cmaes_minimize(sphere, opt::Box::unit(GetParam()), rng, opt);
  EXPECT_LT(r.value, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Dims, CmaEsDims, ::testing::Values(1, 2, 4, 8));

TEST(CmaEs, SolvesRosenbrockValley) {
  Rng rng(3);
  opt::CmaEsOptions opt;
  opt.max_evaluations = 3000;
  auto r = opt::cmaes_minimize(rosenbrock_box, opt::Box::unit(2), rng, opt);
  EXPECT_LT(r.value, 1e-3);
}

TEST(CmaEs, RespectsBudgetAndBox) {
  Rng rng(4);
  opt::CmaEsOptions opt;
  opt.max_evaluations = 123;
  const auto box = opt::Box::unit(3);
  int outside = 0;
  auto f = [&](const opt::Point& x) {
    if (!box.contains(x)) ++outside;
    return sphere(x);
  };
  auto r = opt::cmaes_minimize(f, box, rng, opt);
  EXPECT_EQ(r.evaluations, 123u);
  EXPECT_EQ(outside, 0);
}

TEST(CmaEs, BeatsRandomSearchOnIllConditioned) {
  auto f = [](const opt::Point& x) {
    // Strongly anisotropic quadratic: CMA adapts the covariance.
    const double a = x[0] - 0.7;
    const double b = x[1] - 0.2;
    return 1000.0 * (a + b) * (a + b) + (a - b) * (a - b);
  };
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng1(seed), rng2(seed + 50);
    opt::CmaEsOptions opt;
    opt.max_evaluations = 500;
    auto cma = opt::cmaes_minimize(f, opt::Box::unit(2), rng1, opt);
    auto rnd = opt::random_search_minimize(f, opt::Box::unit(2), rng2, 500);
    if (cma.value <= rnd.value) ++wins;
  }
  EXPECT_GE(wins, 4);
}

// --- TLA ---

core::Space tla_task_space() {
  core::Space s;
  s.add_real("t", 0.0, 1.0);
  return s;
}

core::Space tla_tuning_space() {
  core::Space s;
  s.add_real("x", 0.0, 1.0);
  s.add_real("y", 0.0, 1.0);
  s.add_categorical("alg", {"a", "b"});
  return s;
}

// Archive where the best config for task t is (t, 1-t, alg = t > 0.5).
core::HistoryDb tla_archive() {
  core::HistoryDb db;
  for (double t : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    // Best record plus some worse distractors.
    db.add({{t}, {t, 1.0 - t, t > 0.5 ? 1.0 : 0.0}, {0.01}});
    db.add({{t}, {0.9, 0.9, 0.0}, {1.0}});
    db.add({{t}, {0.1, 0.1, 1.0}, {2.0}});
  }
  return db;
}

TEST(Tla, InterpolatesNumericParameters) {
  const auto db = tla_archive();
  auto cfg = core::transfer_best_config(db, tla_task_space(),
                                        tla_tuning_space(), {0.4});
  ASSERT_TRUE(cfg.has_value());
  EXPECT_NEAR((*cfg)[0], 0.4, 0.15);
  EXPECT_NEAR((*cfg)[1], 0.6, 0.15);
}

TEST(Tla, NearestTaskDominatesWithSmallBandwidth) {
  const auto db = tla_archive();
  core::TlaOptions opt;
  opt.bandwidth = 0.05;
  auto cfg = core::transfer_best_config(db, tla_task_space(),
                                        tla_tuning_space(), {0.68}, opt);
  ASSERT_TRUE(cfg.has_value());
  EXPECT_NEAR((*cfg)[0], 0.7, 0.08);
}

TEST(Tla, CategoricalUsesWeightedMode) {
  const auto db = tla_archive();
  core::TlaOptions opt;
  opt.bandwidth = 0.15;
  auto low = core::transfer_best_config(db, tla_task_space(),
                                        tla_tuning_space(), {0.1}, opt);
  auto high = core::transfer_best_config(db, tla_task_space(),
                                         tla_tuning_space(), {0.9}, opt);
  ASSERT_TRUE(low && high);
  EXPECT_DOUBLE_EQ((*low)[2], 0.0);   // alg = a for small t
  EXPECT_DOUBLE_EQ((*high)[2], 1.0);  // alg = b for large t
}

TEST(Tla, EmptyArchiveReturnsNull) {
  core::HistoryDb empty;
  EXPECT_FALSE(core::transfer_best_config(empty, tla_task_space(),
                                          tla_tuning_space(), {0.5})
                   .has_value());
}

TEST(Tla, IgnoresMismatchedRecords) {
  core::HistoryDb db;
  db.add({{0.5, 0.5}, {0.1, 0.2, 0.0}, {1.0}});  // wrong task dim
  db.add({{0.5}, {0.1}, {1.0}});                 // wrong config dim
  EXPECT_FALSE(core::transfer_best_config(db, tla_task_space(),
                                          tla_tuning_space(), {0.5})
                   .has_value());
}

TEST(Tla, TransferredConfigIsGoodOnTheObjective) {
  // End-to-end: tune three source tasks with MLA, archive, transfer to a
  // held-out task; the transferred config should be decent without any
  // evaluation of the new task.
  core::Space space;
  space.add_real("x", 0.0, 1.0);
  space.add_real("y", 0.0, 1.0);
  auto fn = [](const core::TaskVector& t, const core::Config& c) {
    const double dx = c[0] - t[0];
    const double dy = c[1] - (1.0 - t[0]);
    return std::vector<double>{dx * dx + dy * dy + 0.01};
  };
  core::HistoryDb db;
  core::MlaOptions opt;
  opt.budget_per_task = 14;
  opt.seed = 5;
  opt.history = &db;
  core::MultitaskTuner tuner(space, fn, opt);
  tuner.run({{0.2}, {0.5}, {0.8}});

  auto cfg = core::transfer_best_config(db, tla_task_space(), space, {0.35});
  ASSERT_TRUE(cfg.has_value());
  EXPECT_LT(fn({0.35}, *cfg)[0], 0.15);  // random config averages ~0.35
}

// --- failure injection ---

TEST(MlaRobustness, SurvivesNonFiniteObjectives) {
  core::Space space;
  space.add_real("x", 0.0, 1.0);
  int calls = 0;
  auto fn = [&calls](const core::TaskVector&,
                     const core::Config& c) -> std::vector<double> {
    ++calls;
    if (c[0] > 0.8) {
      return {std::numeric_limits<double>::infinity()};  // "crash" region
    }
    if (calls % 7 == 0) {
      return {std::numeric_limits<double>::quiet_NaN()};  // flaky failure
    }
    return {(c[0] - 0.4) * (c[0] - 0.4) + 0.01};
  };
  core::MlaOptions opt;
  opt.budget_per_task = 16;
  opt.seed = 8;
  core::MultitaskTuner tuner(space, fn, opt);
  auto result = tuner.run({{0.0}});
  ASSERT_EQ(result.tasks[0].evals.size(), 16u);
  // All recorded values are finite and a good point was still found.
  for (const auto& e : result.tasks[0].evals) {
    EXPECT_TRUE(std::isfinite(e.objectives[0]));
  }
  EXPECT_LT(result.tasks[0].best(), 0.2);
}

TEST(MlaRobustness, PenaltyScalesWithObservedWorst) {
  core::Space space;
  space.add_real("x", 0.0, 1.0);
  auto fn = [](const core::TaskVector&,
               const core::Config& c) -> std::vector<double> {
    if (c[0] < 0.1) return {std::numeric_limits<double>::infinity()};
    return {100.0 + c[0]};
  };
  core::MlaOptions opt;
  opt.budget_per_task = 10;
  opt.seed = 9;
  core::MultitaskTuner tuner(space, fn, opt);
  auto result = tuner.run({{0.0}});
  for (const auto& e : result.tasks[0].evals) {
    // Penalties are 10x the worst finite observation, not a fixed 1e300.
    EXPECT_LE(e.objectives[0], 10.0 * 101.0 + 1.0);
  }
}

}  // namespace
