// Tests for the single-objective optimizer suite on closed-form problems:
// quadratics and Rosenbrock for L-BFGS (with gradient checks), multimodal
// boxes for the stochastic methods.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/differential_evolution.hpp"
#include "opt/direct_search.hpp"
#include "opt/genetic.hpp"
#include "opt/lbfgs.hpp"
#include "opt/nelder_mead.hpp"
#include "opt/problem.hpp"
#include "opt/pso.hpp"
#include "opt/simulated_annealing.hpp"

namespace {

using namespace gptune::opt;
using gptune::common::Rng;

double sphere(const Point& x) {
  double s = 0.0;
  for (double v : x) s += (v - 0.3) * (v - 0.3);
  return s;
}

double rastrigin_like(const Point& x) {
  // Shifted multimodal function on [0,1]^d with global minimum at 0.7.
  double s = 0.0;
  for (double v : x) {
    const double z = v - 0.7;
    s += z * z * 25.0 - std::cos(8.0 * M_PI * z) + 1.0;
  }
  return s;
}

// --- Box ---

TEST(Box, ClampAndContains) {
  Box box{{0.0, -1.0}, {1.0, 1.0}};
  Point x = {2.0, -3.0};
  box.clamp(x);
  EXPECT_DOUBLE_EQ(x[0], 1.0);
  EXPECT_DOUBLE_EQ(x[1], -1.0);
  EXPECT_TRUE(box.contains(x));
  EXPECT_FALSE(box.contains({0.5, 2.0}));
}

TEST(Box, UnitBox) {
  const Box u = Box::unit(3);
  EXPECT_EQ(u.dim(), 3u);
  EXPECT_TRUE(u.contains({0.0, 0.5, 1.0}));
}

// --- L-BFGS ---

TEST(Lbfgs, QuadraticConvergesToMinimum) {
  auto f = [](const Point& x, Point& g) {
    g.resize(x.size());
    double s = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - static_cast<double>(i);
      s += d * d;
      g[i] = 2.0 * d;
    }
    return s;
  };
  auto result = lbfgs_minimize(f, Point(5, 10.0));
  EXPECT_TRUE(result.converged);
  EXPECT_LT(result.value, 1e-10);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(result.x[i], static_cast<double>(i), 1e-5);
  }
}

TEST(Lbfgs, IllConditionedQuadratic) {
  auto f = [](const Point& x, Point& g) {
    g.resize(2);
    const double s = 1000.0 * x[0] * x[0] + x[1] * x[1];
    g[0] = 2000.0 * x[0];
    g[1] = 2.0 * x[1];
    return s;
  };
  auto result = lbfgs_minimize(f, {1.0, 1.0});
  EXPECT_LT(result.value, 1e-8);
}

TEST(Lbfgs, Rosenbrock2D) {
  auto f = [](const Point& x, Point& g) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    g.resize(2);
    g[0] = -2.0 * a - 400.0 * x[0] * b;
    g[1] = 200.0 * b;
    return a * a + 100.0 * b * b;
  };
  LbfgsOptions opt;
  opt.max_iterations = 500;
  auto result = lbfgs_minimize(f, {-1.2, 1.0}, opt);
  EXPECT_NEAR(result.x[0], 1.0, 1e-4);
  EXPECT_NEAR(result.x[1], 1.0, 1e-4);
}

TEST(Lbfgs, RosenbrockHighDimensional) {
  auto f = [](const Point& x, Point& g) {
    const std::size_t n = x.size();
    g.assign(n, 0.0);
    double s = 0.0;
    for (std::size_t i = 0; i + 1 < n; ++i) {
      const double a = 1.0 - x[i];
      const double b = x[i + 1] - x[i] * x[i];
      s += a * a + 100.0 * b * b;
      g[i] += -2.0 * a - 400.0 * x[i] * b;
      g[i + 1] += 200.0 * b;
    }
    return s;
  };
  LbfgsOptions opt;
  opt.max_iterations = 2000;
  auto result = lbfgs_minimize(f, Point(10, 0.0), opt);
  EXPECT_LT(result.value, 1e-6);
}

TEST(Lbfgs, AlreadyAtMinimum) {
  auto f = [](const Point& x, Point& g) {
    g.assign(x.size(), 0.0);
    return 0.0;
  };
  auto result = lbfgs_minimize(f, {0.0});
  EXPECT_TRUE(result.converged);
  EXPECT_EQ(result.iterations, 0u);
}

TEST(Lbfgs, HistoryOneStillWorks) {
  LbfgsOptions opt;
  opt.history = 1;
  auto f = [](const Point& x, Point& g) {
    g = {2.0 * x[0]};
    return x[0] * x[0];
  };
  auto result = lbfgs_minimize(f, {5.0}, opt);
  EXPECT_LT(result.value, 1e-8);
}

// --- stochastic optimizers, parameterized over dimension ---

class StochasticDims : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StochasticDims, PsoFindsSphereMinimum) {
  Rng rng(100 + GetParam());
  auto result = pso_minimize(sphere, Box::unit(GetParam()), rng);
  EXPECT_LT(result.value, 1e-4);
}

TEST_P(StochasticDims, DeFindsSphereMinimum) {
  Rng rng(200 + GetParam());
  DifferentialEvolutionOptions opt;
  opt.max_evaluations = 4000;
  auto result =
      differential_evolution_minimize(sphere, Box::unit(GetParam()), rng, opt);
  EXPECT_LT(result.value, 1e-3);
}

TEST_P(StochasticDims, GaImprovesOverRandom) {
  Rng rng1(300 + GetParam()), rng2(400 + GetParam());
  GeneticOptions gopt;
  gopt.max_evaluations = 600;
  auto ga = genetic_minimize(rastrigin_like, Box::unit(GetParam()), rng1,
                             gopt);
  auto rnd = random_search_minimize(rastrigin_like, Box::unit(GetParam()),
                                    rng2, 600);
  EXPECT_LE(ga.value, rnd.value * 1.5 + 0.5);
}

INSTANTIATE_TEST_SUITE_P(Dims, StochasticDims, ::testing::Values(1, 2, 4, 8));

TEST(Pso, RespectsBoxBounds) {
  Rng rng(1);
  Box box{{-2.0, 3.0}, {-1.0, 4.0}};
  auto count_outside = 0;
  auto f = [&](const Point& x) {
    if (!box.contains(x)) ++count_outside;
    return x[0] + x[1];
  };
  pso_minimize(f, box, rng);
  EXPECT_EQ(count_outside, 0);
}

TEST(Pso, EvaluationCountMatchesBudget) {
  Rng rng(2);
  PsoOptions opt;
  opt.swarm_size = 10;
  opt.iterations = 5;
  auto r = pso_minimize(sphere, Box::unit(2), rng, opt);
  EXPECT_EQ(r.evaluations, 10u * 6u);  // init + 5 iterations
}

TEST(Pso, MultimodalBeatsSmallRandomBudget) {
  Rng rng1(3), rng2(4);
  auto pso = pso_minimize(rastrigin_like, Box::unit(3), rng1);
  auto rnd = random_search_minimize(rastrigin_like, Box::unit(3), rng2, 100);
  EXPECT_LE(pso.value, rnd.value + 1e-9);
}

TEST(NelderMead, ConvergesOnSmoothConvex) {
  Rng rng(5);
  NelderMeadOptions opt;
  opt.max_evaluations = 900;
  auto r = nelder_mead_minimize(sphere, Box::unit(3), rng, opt);
  EXPECT_LT(r.value, 1e-3);
}

TEST(NelderMead, StaysInBox) {
  Rng rng(6);
  Box box{{0.0}, {1.0}};
  int outside = 0;
  auto f = [&](const Point& x) {
    if (!box.contains(x)) ++outside;
    return (x[0] - 0.5) * (x[0] - 0.5);
  };
  nelder_mead_minimize(f, box, rng);
  EXPECT_EQ(outside, 0);
}

TEST(SimulatedAnnealing, FindsGoodSphereSolution) {
  Rng rng(7);
  SimulatedAnnealingOptions opt;
  opt.max_evaluations = 2000;
  auto r = simulated_annealing_minimize(sphere, Box::unit(2), rng, opt);
  EXPECT_LT(r.value, 0.01);
}

TEST(SimulatedAnnealing, RespectsBudget) {
  Rng rng(8);
  SimulatedAnnealingOptions opt;
  opt.max_evaluations = 137;
  auto r = simulated_annealing_minimize(sphere, Box::unit(2), rng, opt);
  EXPECT_EQ(r.evaluations, 137u);
}

TEST(Genetic, SbxChildrenWithinBox) {
  Rng rng(9);
  const Box box = Box::unit(4);
  Point p1 = {0.1, 0.9, 0.5, 0.2};
  Point p2 = {0.8, 0.3, 0.5, 0.9};
  for (int i = 0; i < 50; ++i) {
    Point c1, c2;
    sbx_crossover(p1, p2, box, 15.0, 1.0, rng, c1, c2);
    EXPECT_TRUE(box.contains(c1));
    EXPECT_TRUE(box.contains(c2));
  }
}

TEST(Genetic, MutationStaysInBox) {
  Rng rng(10);
  const Box box = Box::unit(3);
  for (int i = 0; i < 50; ++i) {
    Point x = {0.01, 0.99, 0.5};
    polynomial_mutation(x, box, 20.0, 1.0, rng);
    EXPECT_TRUE(box.contains(x));
  }
}

TEST(Genetic, MutationZeroProbabilityIsIdentity) {
  Rng rng(11);
  Point x = {0.3, 0.7};
  const Point before = x;
  polynomial_mutation(x, Box::unit(2), 20.0, 0.0, rng);
  EXPECT_EQ(x, before);
}

TEST(RandomSearch, BudgetAndDeterminism) {
  Rng rng1(12), rng2(12);
  auto a = random_search_minimize(sphere, Box::unit(3), rng1, 50);
  auto b = random_search_minimize(sphere, Box::unit(3), rng2, 50);
  EXPECT_EQ(a.evaluations, 50u);
  EXPECT_DOUBLE_EQ(a.value, b.value);
  EXPECT_EQ(a.x, b.x);
}

TEST(GridSearch, HitsExactGridOptimum) {
  // Minimum of |x-0.5| on an odd grid includes x = 0.5 exactly.
  auto f = [](const Point& x) { return std::abs(x[0] - 0.5); };
  auto r = grid_search_minimize(f, Box::unit(1), 5);
  EXPECT_DOUBLE_EQ(r.value, 0.0);
  EXPECT_EQ(r.evaluations, 5u);
}

TEST(GridSearch, FullFactorialCount) {
  auto r = grid_search_minimize(sphere, Box::unit(3), 4);
  EXPECT_EQ(r.evaluations, 64u);
}

TEST(GridSearch, SinglePointGridUsesCenter) {
  auto f = [](const Point& x) { return x[0]; };
  auto r = grid_search_minimize(f, Box::unit(1), 1);
  EXPECT_DOUBLE_EQ(r.x[0], 0.5);
}

}  // namespace
