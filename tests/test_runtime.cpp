// Tests for the runtime substrate: thread pool, the MPI-like communicator
// (point-to-point, collectives, spawn with inter-communicators), and the
// virtual clock used by the speedup study.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <optional>
#include <thread>

#include "runtime/comm.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/virtual_clock.hpp"

namespace {

using namespace gptune::rt;

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.run_batch(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleBlocksUntilDone) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 10; ++i) {
    pool.submit([&done] { done.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(done.load(), 10);
}

TEST(ThreadPool, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(ThreadPool, BatchRunnerAdaptor) {
  ThreadPool pool(2);
  auto runner = pool.batch_runner();
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 7; ++i) tasks.push_back([&counter] { ++counter; });
  runner(std::move(tasks));
  EXPECT_EQ(counter.load(), 7);
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int b = 0; b < 5; ++b) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 10; ++i) tasks.push_back([&counter] { ++counter; });
    pool.run_batch(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 50);
}

// --- Comm ---

TEST(Comm, RankAndSize) {
  std::atomic<int> sum{0};
  World::run(4, [&sum](Comm& comm) {
    EXPECT_EQ(comm.size(), 4u);
    sum.fetch_add(static_cast<int>(comm.rank()));
  });
  EXPECT_EQ(sum.load(), 0 + 1 + 2 + 3);
}

TEST(Comm, PointToPointRoundTrip) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 7, {1.0, 2.0, 3.0});
      Message reply = comm.recv(1, 8);
      ASSERT_EQ(reply.data.size(), 1u);
      EXPECT_DOUBLE_EQ(reply.data[0], 6.0);
    } else {
      Message m = comm.recv(0, 7);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
      double s = 0.0;
      for (double v : m.data) s += v;
      comm.send(0, 8, {s});
    }
  });
}

TEST(Comm, SelectiveReceiveByTag) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, {1.0});
      comm.send(1, 2, {2.0});
    } else {
      // Receive tag 2 first even though tag 1 arrived first.
      Message m2 = comm.recv(kAnySource, 2);
      Message m1 = comm.recv(kAnySource, 1);
      EXPECT_DOUBLE_EQ(m2.data[0], 2.0);
      EXPECT_DOUBLE_EQ(m1.data[0], 1.0);
    }
  });
}

TEST(Comm, TryRecvNonBlocking) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      Message out;
      EXPECT_FALSE(comm.try_recv(kAnySource, 99, &out));
      comm.barrier();
      comm.barrier();
      EXPECT_TRUE(comm.try_recv(kAnySource, 99, &out));
      EXPECT_DOUBLE_EQ(out.data[0], 5.0);
    } else {
      comm.barrier();
      comm.send(0, 99, {5.0});
      comm.barrier();
    }
  });
}

TEST(Comm, BarrierSynchronizes) {
  std::atomic<int> phase1{0};
  std::atomic<bool> violated{false};
  World::run(8, [&](Comm& comm) {
    phase1.fetch_add(1);
    comm.barrier();
    if (phase1.load() != 8) violated.store(true);
  });
  EXPECT_FALSE(violated.load());
}

TEST(Comm, BroadcastFromRoot) {
  World::run(5, [](Comm& comm) {
    std::vector<double> data;
    if (comm.rank() == 0) data = {3.14, 2.71};
    comm.bcast(data, 0);
    ASSERT_EQ(data.size(), 2u);
    EXPECT_DOUBLE_EQ(data[0], 3.14);
    EXPECT_DOUBLE_EQ(data[1], 2.71);
  });
}

TEST(Comm, BroadcastFromNonZeroRoot) {
  World::run(3, [](Comm& comm) {
    std::vector<double> data;
    if (comm.rank() == 2) data = {42.0};
    comm.bcast(data, 2);
    ASSERT_EQ(data.size(), 1u);
    EXPECT_DOUBLE_EQ(data[0], 42.0);
  });
}

TEST(Comm, ReduceSum) {
  World::run(6, [](Comm& comm) {
    const std::vector<double> contribution = {
        static_cast<double>(comm.rank()), 1.0};
    auto result = comm.reduce_sum(contribution, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(result.size(), 2u);
      EXPECT_DOUBLE_EQ(result[0], 15.0);  // 0+1+..+5
      EXPECT_DOUBLE_EQ(result[1], 6.0);
    }
  });
}

TEST(Comm, BackToBackReductionsDoNotInterleave) {
  // Regression: reduce_sum used kAnySource, so a fast rank's contribution
  // to reduction k+1 could be folded into reduction k on the root.
  World::run(6, [](Comm& comm) {
    for (int round = 1; round <= 20; ++round) {
      auto result = comm.reduce_sum({static_cast<double>(round)}, 0);
      if (comm.rank() == 0) {
        ASSERT_EQ(result.size(), 1u);
        EXPECT_DOUBLE_EQ(result[0], 6.0 * round);
      }
    }
  });
}

TEST(Comm, AllreduceSumOnEveryRank) {
  World::run(4, [](Comm& comm) {
    auto result = comm.allreduce_sum({1.0});
    ASSERT_EQ(result.size(), 1u);
    EXPECT_DOUBLE_EQ(result[0], 4.0);
  });
}

TEST(Comm, GatherPreservesRankOrder) {
  World::run(4, [](Comm& comm) {
    auto all = comm.gather({static_cast<double>(comm.rank() * 10)}, 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(all.size(), 4u);
      for (std::size_t r = 0; r < 4; ++r) {
        EXPECT_DOUBLE_EQ(all[r][0], static_cast<double>(r * 10));
      }
    }
  });
}

TEST(Comm, SingleRankCollectivesAreNoOps) {
  World::run(1, [](Comm& comm) {
    std::vector<double> data = {1.0};
    comm.bcast(data);
    comm.barrier();
    auto r = comm.allreduce_sum({2.0});
    EXPECT_DOUBLE_EQ(r[0], 2.0);
  });
}

// --- spawn: the paper's Fig. 1 master/worker pattern ---

TEST(Spawn, MasterReceivesFromAllWorkers) {
  World::run(1, [](Comm& master) {
    auto handle = master.spawn(4, [](Comm& worker, InterComm& parent) {
      parent.send(0, 1, {static_cast<double>(worker.rank())});
    });
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) {
      Message m = handle.comm().recv(kAnySource, 1);
      sum += m.data[0];
    }
    EXPECT_DOUBLE_EQ(sum, 6.0);
    handle.join();
  });
}

TEST(Spawn, MasterToWorkerDirection) {
  World::run(1, [](Comm& master) {
    auto handle = master.spawn(3, [](Comm& worker, InterComm& parent) {
      Message m = parent.recv(0, 5);
      parent.send(0, 6, {m.data[0] * 2.0});
      (void)worker;
    });
    for (std::size_t w = 0; w < 3; ++w) {
      handle.comm().send(w, 5, {static_cast<double>(w + 1)});
    }
    double sum = 0.0;
    for (int i = 0; i < 3; ++i) {
      sum += handle.comm().recv(kAnySource, 6).data[0];
    }
    EXPECT_DOUBLE_EQ(sum, 12.0);  // 2+4+6
    handle.join();
  });
}

TEST(Spawn, WorkersHaveTheirOwnIntraComm) {
  World::run(1, [](Comm& master) {
    auto handle = master.spawn(4, [](Comm& worker, InterComm& parent) {
      // Workers allreduce among themselves, then rank 0 reports.
      auto total = worker.allreduce_sum({1.0});
      if (worker.rank() == 0) parent.send(0, 2, total);
    });
    Message m = handle.comm().recv(kAnySource, 2);
    EXPECT_DOUBLE_EQ(m.data[0], 4.0);
    handle.join();
  });
}

TEST(Spawn, NestedSpawn) {
  // A worker can itself spawn a sub-group (recursive dynamic process
  // management).
  World::run(1, [](Comm& master) {
    auto handle = master.spawn(1, [](Comm& worker, InterComm& parent) {
      auto inner = worker.spawn(2, [](Comm&, InterComm& p) {
        p.send(0, 3, {1.0});
      });
      double s = 0.0;
      for (int i = 0; i < 2; ++i) s += inner.comm().recv().data[0];
      inner.join();
      parent.send(0, 4, {s});
    });
    EXPECT_DOUBLE_EQ(handle.comm().recv().data[0], 2.0);
    handle.join();
  });
}

// --- matching determinism and edge cases ---

TEST(Comm, AnySourceAnyTagMatchesEarliestPosted) {
  // All three messages are queued before the first recv (self-sends are
  // synchronous), so this pins the matching rule itself: among matching
  // messages the earliest-posted wins — post order, not tag order.
  World::run(1, [](Comm& comm) {
    comm.send(0, /*tag=*/3, {3.0});
    comm.send(0, /*tag=*/1, {1.0});
    comm.send(0, /*tag=*/2, {2.0});
    EXPECT_EQ(comm.recv(kAnySource, kAnyTag).tag, 3);
    EXPECT_EQ(comm.recv(kAnySource, kAnyTag).tag, 1);
    EXPECT_EQ(comm.recv(kAnySource, kAnyTag).tag, 2);
  });
}

TEST(Comm, SelectiveRecvSkipsNonMatching) {
  // A selective recv picks the earliest *matching* message and leaves the
  // rest queued in their original order.
  World::run(1, [](Comm& comm) {
    comm.send(0, /*tag=*/5, {5.0});
    comm.send(0, /*tag=*/6, {6.0});
    comm.send(0, /*tag=*/5, {55.0});
    EXPECT_DOUBLE_EQ(comm.recv(0, /*tag=*/6).data[0], 6.0);
    EXPECT_DOUBLE_EQ(comm.recv(0, /*tag=*/5).data[0], 5.0);
    EXPECT_DOUBLE_EQ(comm.recv(0, /*tag=*/5).data[0], 55.0);
  });
}

TEST(Comm, ZeroLengthMessagesAreDelivered) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/4, {});
    } else {
      Message m = comm.recv(0, /*tag=*/4);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 4);
      EXPECT_TRUE(m.data.empty());
    }
  });
}

TEST(Spawn, ZeroLengthMessagesCrossTheChannel) {
  World::run(1, [](Comm& comm) {
    auto handle = comm.spawn(1, [](Comm&, InterComm& parent) {
      Message m = parent.recv(kAnySource, /*tag=*/1);
      EXPECT_TRUE(m.data.empty());
      parent.send(0, /*tag=*/2, {});
    });
    handle.comm().send(0, /*tag=*/1, {});
    EXPECT_TRUE(handle.comm().recv(kAnySource, /*tag=*/2).data.empty());
    handle.join();
  });
}

TEST(Comm, RecvForDeliversWithinDeadline) {
  World::run(2, [](Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, /*tag=*/8, {42.0});
    } else {
      std::optional<Message> m =
          comm.recv_for(0, /*tag=*/8, std::chrono::seconds(30));
      ASSERT_TRUE(m.has_value());
      EXPECT_DOUBLE_EQ(m->data[0], 42.0);
    }
  });
}

TEST(Comm, RecvForTimesOutAndLeavesQueueIntact) {
  // The peer stays alive (spinning) so the expiry is a plain timeout in
  // every build; a message sent afterwards is still receivable — a timed-out
  // recv_for must not consume or reorder anything.
  std::atomic<bool> timed_out{false};
  World::run(2, [&timed_out](Comm& comm) {
    if (comm.rank() == 0) {
      std::optional<Message> m =
          comm.recv_for(1, /*tag=*/9, std::chrono::milliseconds(20));
      EXPECT_FALSE(m.has_value());
      timed_out.store(true);
      EXPECT_DOUBLE_EQ(comm.recv(1, /*tag=*/9).data[0], 9.0);
    } else {
      while (!timed_out.load()) std::this_thread::yield();
      comm.send(0, /*tag=*/9, {9.0});
    }
  });
}

// --- VirtualRanks ---

TEST(VirtualClock, MakespanIsMaxBusy) {
  VirtualRanks ranks(3);
  ranks.charge(0, 5.0);
  ranks.charge(1, 2.0);
  ranks.charge(1, 4.0);
  EXPECT_DOUBLE_EQ(ranks.makespan(), 6.0);
  EXPECT_DOUBLE_EQ(ranks.total_work(), 11.0);
}

TEST(VirtualClock, GreedySchedulingBalances) {
  VirtualRanks ranks(4);
  std::vector<double> tasks(16, 1.0);
  ranks.schedule_greedy(tasks);
  EXPECT_DOUBLE_EQ(ranks.makespan(), 4.0);  // 16 unit tasks over 4 ranks
}

TEST(VirtualClock, SingleRankSerializes) {
  VirtualRanks ranks(1);
  ranks.schedule_greedy({1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(ranks.makespan(), 6.0);
}

TEST(VirtualClock, SpeedupUpperBoundedByRankCount) {
  std::vector<double> tasks;
  for (int i = 0; i < 100; ++i) tasks.push_back(0.5 + 0.01 * i);
  VirtualRanks serial(1), parallel(8);
  serial.schedule_greedy(tasks);
  parallel.schedule_greedy(tasks);
  const double speedup = serial.makespan() / parallel.makespan();
  EXPECT_GT(speedup, 6.0);
  EXPECT_LE(speedup, 8.0 + 1e-9);
}

TEST(VirtualClock, ChargeAllAndReset) {
  VirtualRanks ranks(2);
  ranks.charge_all(3.0);
  EXPECT_DOUBLE_EQ(ranks.total_work(), 6.0);
  ranks.reset();
  EXPECT_DOUBLE_EQ(ranks.makespan(), 0.0);
}

}  // namespace
