// Parity tests for the blocked Cholesky against the unblocked reference,
// across sizes straddling the block boundary (1, 127, 128, 129, 300), for
// both the serial runner and a real ThreadPool runner, and through the
// jitter-retry path the GP stack relies on for near-singular covariances.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/blocked_cholesky.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using gptune::common::Rng;
using gptune::linalg::blocked_cholesky;
using gptune::linalg::CholeskyFactor;
using gptune::linalg::Matrix;

// Random SPD matrix: B B^T + n I is PD with comfortable margin.
Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += b(i, k) * b(j, k);
      a(i, j) = s;
    }
  }
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

// Only the lower triangle is the contract: the unblocked reference leaves
// the upper triangle of its scratch untouched, so compare L entries only.
double max_lower_diff(const Matrix& a, const Matrix& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

class BlockedCholeskyParity : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BlockedCholeskyParity, SerialMatchesReference) {
  const std::size_t n = GetParam();
  Rng rng(1000 + n);
  const Matrix a = random_spd(n, rng);

  auto blocked = blocked_cholesky(a, 128);
  auto reference = CholeskyFactor::factor(a);
  ASSERT_TRUE(blocked.has_value());
  ASSERT_TRUE(reference.has_value());

  // Same decomposition up to floating-point summation order; the factor of
  // a well-conditioned matrix is stable, so the tolerance can be tight.
  EXPECT_LT(max_lower_diff(blocked->lower(), reference->lower()),
            1e-9 * static_cast<double>(n));

  // L L^T must reproduce A.
  const Matrix& l = blocked->lower();
  double recon_err = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k <= j; ++k) s += l(i, k) * l(j, k);
      recon_err = std::max(recon_err, std::abs(s - a(i, j)));
    }
  }
  EXPECT_LT(recon_err, 1e-8 * static_cast<double>(n));
}

TEST_P(BlockedCholeskyParity, PooledIsBitwiseEqualToSerial) {
  // Tile tasks write disjoint regions and every phase is barriered, so the
  // pooled factorization must be *bitwise* identical to the serial one,
  // whatever order the workers interleave in.
  const std::size_t n = GetParam();
  Rng rng(2000 + n);
  const Matrix a = random_spd(n, rng);

  auto serial = blocked_cholesky(a, 128);
  ASSERT_TRUE(serial.has_value());

  gptune::rt::ThreadPool pool(4);
  auto pooled = blocked_cholesky(a, 128, pool.batch_runner());
  ASSERT_TRUE(pooled.has_value());

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      EXPECT_EQ(pooled->lower()(i, j), serial->lower()(i, j))
          << "tile-deterministic factor differs at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockedCholeskyParity,
                         ::testing::Values(std::size_t{1}, std::size_t{127},
                                           std::size_t{128}, std::size_t{129},
                                           std::size_t{300}));

TEST(BlockedCholeskyJitter, SingularMatrixNeedsAndGetsJitter) {
  // Rank-1 PSD matrix: v v^T is singular, so the plain factorization (both
  // blocked and unblocked) must fail, while the jitter retry succeeds and
  // reports the jitter it applied. The blocked factorization of the
  // explicitly jittered matrix must then agree with the retry's factor —
  // the exact fallback chain GpRegression and LcmModel::build rely on.
  const std::size_t n = 130;  // crosses the 128 block boundary
  Rng rng(77);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = v[i] * v[j];
  }

  EXPECT_FALSE(blocked_cholesky(a, 128).has_value());
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());

  double applied = 0.0;
  auto jittered = CholeskyFactor::factor_with_jitter(a, 1e-10, 1e-2, &applied);
  ASSERT_TRUE(jittered.has_value());
  EXPECT_GT(applied, 0.0);

  Matrix aj = a;
  for (std::size_t i = 0; i < n; ++i) aj(i, i) += applied;
  auto blocked = blocked_cholesky(aj, 128);
  ASSERT_TRUE(blocked.has_value());
  EXPECT_LT(max_lower_diff(blocked->lower(), jittered->lower()), 1e-8);
}

TEST(BlockedCholeskyJitter, WellConditionedNeedsNoJitter) {
  Rng rng(78);
  const Matrix a = random_spd(64, rng);
  double applied = -1.0;
  auto f = CholeskyFactor::factor_with_jitter(a, 1e-10, 1e-2, &applied);
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(applied, 0.0);  // jitter ladder starts at the plain factor
}

}  // namespace
