// Tests for parameter spaces and sampling designs: encode/decode round
// trips across parameter types, constraint handling, and Latin hypercube
// stratification.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "core/sampler.hpp"
#include "core/space.hpp"

namespace {

using namespace gptune::core;
using gptune::common::Rng;

Space mixed_space() {
  Space s;
  s.add_real("x", 0.5, 2.0);
  s.add_integer("n", 1, 100, /*log_scale=*/true);
  s.add_categorical("alg", {"a", "b", "c"});
  return s;
}

TEST(Space, DimAndNames) {
  const Space s = mixed_space();
  EXPECT_EQ(s.dim(), 3u);
  EXPECT_EQ(s.index_of("n"), 1u);
  EXPECT_EQ(s.index_of("missing"), 3u);
  EXPECT_EQ(s.parameter(2).type, ParamType::kCategorical);
}

TEST(Space, RealNormalizeRoundTrip) {
  Space s;
  s.add_real("x", -2.0, 6.0);
  const Config c = {1.0};
  const auto u = s.normalize(c);
  EXPECT_NEAR(u[0], 3.0 / 8.0, 1e-12);
  EXPECT_NEAR(s.denormalize(u)[0], 1.0, 1e-12);
}

TEST(Space, LogScaleRealRoundTrip) {
  Space s;
  s.add_real("x", 1.0, 10000.0, /*log_scale=*/true);
  const auto u = s.normalize({100.0});
  EXPECT_NEAR(u[0], 0.5, 1e-12);  // log-midpoint of 1..1e4
  EXPECT_NEAR(s.denormalize({0.5})[0], 100.0, 1e-9);
}

TEST(Space, IntegerRoundsOnDenormalize) {
  Space s;
  s.add_integer("n", 0, 10);
  EXPECT_DOUBLE_EQ(s.denormalize({0.51})[0], 5.0);
  EXPECT_DOUBLE_EQ(s.denormalize({0.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.denormalize({1.0})[0], 10.0);
}

TEST(Space, LogIntegerCoversDecades) {
  Space s;
  s.add_integer("n", 1, 1024, /*log_scale=*/true);
  EXPECT_DOUBLE_EQ(s.denormalize({0.0})[0], 1.0);
  EXPECT_DOUBLE_EQ(s.denormalize({1.0})[0], 1024.0);
  EXPECT_DOUBLE_EQ(s.denormalize({0.5})[0], 32.0);
}

TEST(Space, CategoricalSnapsToIndices) {
  Space s;
  s.add_categorical("c", {"p", "q", "r", "t"});
  EXPECT_DOUBLE_EQ(s.denormalize({0.0})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.denormalize({0.99})[0], 3.0);
  EXPECT_DOUBLE_EQ(s.denormalize({1.0})[0], 3.0);
  // Quartile mapping: each category owns an equal slice of [0,1].
  EXPECT_DOUBLE_EQ(s.denormalize({0.3})[0], 1.0);
}

TEST(Space, CategoricalRoundTripAllValues) {
  Space s;
  s.add_categorical("c", {"p", "q", "r"});
  for (double idx = 0; idx < 3; ++idx) {
    const auto u = s.normalize({idx});
    EXPECT_DOUBLE_EQ(s.denormalize(u)[0], idx);
  }
}

TEST(Space, SingleCategoryDegenerate) {
  Space s;
  s.add_categorical("c", {"only"});
  EXPECT_DOUBLE_EQ(s.denormalize({0.7})[0], 0.0);
  EXPECT_DOUBLE_EQ(s.normalize({0.0})[0], 0.5);
}

TEST(Space, NormalizeClampsOutOfRange) {
  Space s;
  s.add_real("x", 0.0, 1.0);
  EXPECT_DOUBLE_EQ(s.normalize({5.0})[0], 1.0);
  EXPECT_DOUBLE_EQ(s.normalize({-5.0})[0], 0.0);
}

TEST(Space, InvalidDefinitionsThrow) {
  Space s;
  EXPECT_THROW(s.add_real("x", 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(s.add_real("x", -1.0, 1.0, true), std::invalid_argument);
  EXPECT_THROW(s.add_integer("n", 5, 4), std::invalid_argument);
  EXPECT_THROW(s.add_categorical("c", {}), std::invalid_argument);
}

TEST(Space, ConstraintsEnforced) {
  Space s;
  s.add_integer("p", 1, 64);
  s.add_integer("p_r", 1, 64);
  s.add_constraint("p_r <= p",
                   [](const Config& c) { return c[1] <= c[0]; });
  EXPECT_TRUE(s.feasible({8, 4}));
  EXPECT_FALSE(s.feasible({4, 8}));
}

TEST(Space, SampleFeasibleRespectsConstraints) {
  Space s;
  s.add_integer("p", 1, 64);
  s.add_integer("p_r", 1, 64);
  s.add_constraint("p_r <= p",
                   [](const Config& c) { return c[1] <= c[0]; });
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_TRUE(s.feasible(s.sample_feasible(rng)));
  }
}

TEST(Space, FormatRendersTypes) {
  const Space s = mixed_space();
  const std::string out = s.format({1.25, 10, 2});
  EXPECT_NE(out.find("x=1.25"), std::string::npos);
  EXPECT_NE(out.find("n=10"), std::string::npos);
  EXPECT_NE(out.find("alg=c"), std::string::npos);
}

// --- samplers ---

TEST(Sampler, LatinHypercubeStratifiesEveryDimension) {
  Rng rng(2);
  const std::size_t n = 10, d = 3;
  const auto points = gptune::core::latin_hypercube(n, d, rng);
  ASSERT_EQ(points.size(), n);
  for (std::size_t dim = 0; dim < d; ++dim) {
    std::set<std::size_t> cells;
    for (const auto& p : points) {
      EXPECT_GE(p[dim], 0.0);
      EXPECT_LT(p[dim], 1.0);
      cells.insert(static_cast<std::size_t>(p[dim] * n));
    }
    EXPECT_EQ(cells.size(), n) << "dimension " << dim << " not stratified";
  }
}

TEST(Sampler, LatinHypercubeDeterministicPerSeed) {
  Rng a(3), b(3);
  const auto p1 = gptune::core::latin_hypercube(8, 2, a);
  const auto p2 = gptune::core::latin_hypercube(8, 2, b);
  EXPECT_EQ(p1, p2);
}

TEST(Sampler, UniformDesignInUnitBox) {
  Rng rng(4);
  for (const auto& p : gptune::core::uniform_design(50, 4, rng)) {
    for (double v : p) {
      EXPECT_GE(v, 0.0);
      EXPECT_LT(v, 1.0);
    }
  }
}

TEST(Sampler, InitialConfigsFeasibleAndCounted) {
  Space s;
  s.add_integer("p", 1, 64);
  s.add_integer("p_r", 1, 64);
  s.add_constraint("p_r <= p",
                   [](const Config& c) { return c[1] <= c[0]; });
  Rng rng(5);
  const auto configs = sample_initial_configs(s, 20, rng);
  EXPECT_EQ(configs.size(), 20u);
  for (const auto& c : configs) EXPECT_TRUE(s.feasible(c));
}

TEST(Sampler, InitialConfigsSnapTypes) {
  const Space s = mixed_space();
  Rng rng(6);
  for (const auto& c :
       sample_initial_configs(s, 30, rng, InitialDesign::kUniform)) {
    EXPECT_DOUBLE_EQ(c[1], std::round(c[1]));  // integer
    EXPECT_DOUBLE_EQ(c[2], std::round(c[2]));  // categorical index
    EXPECT_GE(c[2], 0.0);
    EXPECT_LE(c[2], 2.0);
  }
}

}  // namespace
