// Unit + property tests for linalg/: matrix kernels against identities,
// Cholesky/LU/QR against reconstruction residuals across random sizes,
// NNLS constraints, symmetric eigensolver.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "linalg/blocked_cholesky.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/eigen_sym.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"

namespace {

using gptune::common::Rng;
using namespace gptune::linalg;

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix a = random_matrix(n, n + 3, rng);
  Matrix s = syrk(a);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += 0.5;
  return s;
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, IdentityMultiplication) {
  Rng rng(1);
  const Matrix a = random_matrix(5, 5, rng);
  const Matrix i = Matrix::identity(5);
  EXPECT_LT(Matrix::max_abs_diff(matmul(a, i), a), 1e-14);
  EXPECT_LT(Matrix::max_abs_diff(matmul(i, a), a), 1e-14);
}

TEST(Matrix, TransposeInvolution) {
  Rng rng(2);
  const Matrix a = random_matrix(4, 7, rng);
  EXPECT_LT(Matrix::max_abs_diff(a.transpose().transpose(), a), 1e-15);
}

TEST(Matrix, MatmulAssociativityShape) {
  Rng rng(3);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 5, rng);
  const Matrix c = random_matrix(5, 2, rng);
  const Matrix left = matmul(matmul(a, b), c);
  const Matrix right = matmul(a, matmul(b, c));
  EXPECT_LT(Matrix::max_abs_diff(left, right), 1e-12);
}

TEST(Matrix, MatvecMatchesMatmul) {
  Rng rng(4);
  const Matrix a = random_matrix(6, 3, rng);
  Vector x = {1.0, -2.0, 0.5};
  Matrix xm(3, 1);
  for (std::size_t i = 0; i < 3; ++i) xm(i, 0) = x[i];
  const Matrix ym = matmul(a, xm);
  const Vector y = matvec(a, x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(y[i], ym(i, 0), 1e-14);
}

TEST(Matrix, MatvecTransposed) {
  Rng rng(5);
  const Matrix a = random_matrix(4, 6, rng);
  Vector x(4);
  for (auto& v : x) v = rng.normal();
  const Vector expected = matvec(a.transpose(), x);
  const Vector got = matvec_transposed(a, x);
  EXPECT_LT(max_abs_diff(expected, got), 1e-13);
}

TEST(Matrix, SyrkIsAAt) {
  Rng rng(6);
  const Matrix a = random_matrix(5, 3, rng);
  EXPECT_LT(Matrix::max_abs_diff(syrk(a), matmul(a, a.transpose())), 1e-12);
}

TEST(Matrix, BlockExtraction) {
  Matrix m = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  const Matrix b = m.block(1, 1, 2, 2);
  EXPECT_DOUBLE_EQ(b(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(b(1, 1), 9.0);
}

TEST(Matrix, VectorKernels) {
  Vector a = {1.0, 2.0, 3.0};
  Vector b = {4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 32.0);
  EXPECT_DOUBLE_EQ(norm2({3.0, 4.0}), 5.0);
  Vector y = b;
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[2], 12.0);
}

// --- Cholesky (parameterized over size) ---

class CholeskySizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskySizes, ReconstructsMatrix) {
  Rng rng(100 + GetParam());
  const Matrix a = random_spd(GetParam(), rng);
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  const Matrix rec = matmul(f->lower(), f->lower().transpose());
  EXPECT_LT(Matrix::max_abs_diff(rec, a), 1e-8 * a.frobenius_norm());
}

TEST_P(CholeskySizes, SolveResidualSmall) {
  Rng rng(200 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  const Vector x = f->solve(b);
  const Vector r = matvec(a, x) - b;
  EXPECT_LT(norm2(r), 1e-8 * norm2(b));
}

TEST_P(CholeskySizes, LogDetMatchesLu) {
  Rng rng(300 + GetParam());
  const Matrix a = random_spd(GetParam(), rng);
  auto f = CholeskyFactor::factor(a);
  auto lu = LuFactor::factor(a);
  ASSERT_TRUE(f && lu);
  EXPECT_NEAR(f->log_det(), std::log(lu->det()), 1e-6 * GetParam());
}

TEST_P(CholeskySizes, InverseTimesMatrixIsIdentity) {
  Rng rng(400 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_spd(n, rng);
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  const Matrix id = matmul(f->inverse(), a);
  EXPECT_LT(Matrix::max_abs_diff(id, Matrix::identity(n)), 1e-7);
}

TEST_P(CholeskySizes, BlockedMatchesUnblocked) {
  Rng rng(500 + GetParam());
  const Matrix a = random_spd(GetParam(), rng);
  auto ref = CholeskyFactor::factor(a);
  auto blocked = blocked_cholesky(a, 3);
  ASSERT_TRUE(ref && blocked);
  EXPECT_LT(Matrix::max_abs_diff(ref->lower(), blocked->lower()), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskySizes,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 40, 64, 97));

TEST(Cholesky, RejectsIndefinite) {
  Matrix a = {{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());
}

TEST(Cholesky, JitterRecoversNearSingular) {
  // Rank-1 PSD matrix: plain factorization fails, jitter succeeds.
  Matrix a = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(CholeskyFactor::factor(a).has_value());
  double jitter = -1.0;
  auto f = CholeskyFactor::factor_with_jitter(a, 1e-10, 1e-2, &jitter);
  ASSERT_TRUE(f.has_value());
  EXPECT_GT(jitter, 0.0);
}

TEST(Cholesky, TriangularSolvesConsistent) {
  Rng rng(42);
  const Matrix a = random_spd(10, rng);
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f);
  Vector b(10);
  for (auto& v : b) v = rng.normal();
  // L (L^T x) = b should equal full solve.
  const Vector x1 = f->solve(b);
  const Vector x2 = f->solve_lower_transposed(f->solve_lower(b));
  EXPECT_LT(max_abs_diff(x1, x2), 1e-12);
}

TEST(Cholesky, MatrixSolveMatchesColumnSolves) {
  Rng rng(43);
  const Matrix a = random_spd(8, rng);
  const Matrix b = random_matrix(8, 3, rng);
  auto f = CholeskyFactor::factor(a);
  ASSERT_TRUE(f);
  const Matrix x = f->solve(b);
  const Matrix residual = matmul(a, x) - b;
  EXPECT_LT(residual.frobenius_norm(), 1e-8);
}

TEST(BlockedCholesky, WorksWithBlockLargerThanMatrix) {
  Rng rng(44);
  const Matrix a = random_spd(7, rng);
  auto f = blocked_cholesky(a, 64);
  ASSERT_TRUE(f.has_value());
  const Matrix rec = matmul(f->lower(), f->lower().transpose());
  EXPECT_LT(Matrix::max_abs_diff(rec, a), 1e-8);
}

TEST(BlockedCholesky, FailsOnIndefinite) {
  Matrix a = {{1.0, 2.0}, {2.0, 1.0}};
  EXPECT_FALSE(blocked_cholesky(a, 1).has_value());
}

TEST(BlockedCholesky, FlopCount) {
  EXPECT_DOUBLE_EQ(cholesky_flops(10), 1000.0 / 3.0);
}

// --- LU ---

class LuSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LuSizes, SolveResidual) {
  Rng rng(600 + GetParam());
  const std::size_t n = GetParam();
  const Matrix a = random_matrix(n, n, rng);
  Vector b(n);
  for (auto& v : b) v = rng.normal();
  auto f = LuFactor::factor(a);
  ASSERT_TRUE(f.has_value());
  const Vector r = matvec(a, f->solve(b)) - b;
  EXPECT_LT(norm2(r), 1e-8 * (norm2(b) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Sizes, LuSizes,
                         ::testing::Values(1, 2, 4, 9, 17, 33, 50));

TEST(Lu, DetOfKnownMatrix) {
  Matrix a = {{2.0, 0.0}, {0.0, 3.0}};
  auto f = LuFactor::factor(a);
  ASSERT_TRUE(f);
  EXPECT_NEAR(f->det(), 6.0, 1e-12);
}

TEST(Lu, DetSignWithPivoting) {
  Matrix a = {{0.0, 1.0}, {1.0, 0.0}};  // det = -1
  auto f = LuFactor::factor(a);
  ASSERT_TRUE(f);
  EXPECT_NEAR(f->det(), -1.0, 1e-12);
}

TEST(Lu, SingularRejected) {
  Matrix a = {{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_FALSE(LuFactor::factor(a).has_value());
}

// --- QR ---

class QrShapes
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(QrShapes, ReconstructionAndOrthogonality) {
  Rng rng(700 + GetParam().first);
  const auto [m, n] = GetParam();
  const Matrix a = random_matrix(m, n, rng);
  const auto f = QrFactor::factor(a);
  const Matrix q = f.thin_q();
  const Matrix r = f.r();
  EXPECT_LT(Matrix::max_abs_diff(matmul(q, r), a), 1e-10);
  const Matrix qtq = matmul(q.transpose(), q);
  EXPECT_LT(Matrix::max_abs_diff(qtq, Matrix::identity(n)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrShapes,
    ::testing::Values(std::make_pair(3, 3), std::make_pair(5, 2),
                      std::make_pair(10, 7), std::make_pair(30, 4),
                      std::make_pair(50, 20)));

TEST(Qr, LeastSquaresRecoversExactSolution) {
  Rng rng(46);
  const Matrix a = random_matrix(12, 4, rng);
  Vector x_true = {1.0, -2.0, 0.5, 3.0};
  const Vector b = matvec(a, x_true);
  auto x = least_squares(a, b);
  ASSERT_TRUE(x.has_value());
  EXPECT_LT(max_abs_diff(*x, x_true), 1e-9);
}

TEST(Qr, LeastSquaresNormalEquations) {
  // Residual of LS solution must be orthogonal to the column space.
  Rng rng(47);
  const Matrix a = random_matrix(15, 3, rng);
  Vector b(15);
  for (auto& v : b) v = rng.normal();
  auto x = least_squares(a, b);
  ASSERT_TRUE(x);
  const Vector r = b - matvec(a, *x);
  const Vector atr = matvec_transposed(a, r);
  EXPECT_LT(norm2(atr), 1e-9);
}

TEST(Qr, RankDeficientReturnsNullopt) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = 1.0;
    a(i, 1) = 2.0;  // second column is 2x the first
  }
  Vector b = {1.0, 2.0, 3.0, 4.0};
  EXPECT_FALSE(least_squares(a, b).has_value());
}

// --- NNLS ---

TEST(Nnls, MatchesUnconstrainedWhenInterior) {
  Rng rng(48);
  const Matrix a = random_matrix(20, 3, rng);
  Vector x_true = {2.0, 1.0, 3.0};  // strictly positive
  const Vector b = matvec(a, x_true);
  const Vector x = nnls(a, b);
  EXPECT_LT(max_abs_diff(x, x_true), 1e-7);
}

TEST(Nnls, ClampsNegativeComponents) {
  // Construct a problem whose unconstrained LS solution has a negative
  // entry: NNLS must return all-nonnegative with that entry at 0.
  Matrix a = {{1.0, 0.0}, {0.0, 1.0}, {0.0, 0.0}};
  Vector b = {2.0, -3.0, 0.0};
  const Vector x = nnls(a, b);
  EXPECT_NEAR(x[0], 2.0, 1e-10);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(Nnls, AllNegativeTargetGivesZero) {
  Matrix a = {{1.0}, {1.0}};
  Vector b = {-1.0, -2.0};
  const Vector x = nnls(a, b);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
}

TEST(Nnls, ResidualNotWorseThanZeroVector) {
  Rng rng(49);
  const Matrix a = random_matrix(10, 4, rng);
  Vector b(10);
  for (auto& v : b) v = rng.normal();
  const Vector x = nnls(a, b);
  for (double v : x) EXPECT_GE(v, 0.0);
  EXPECT_LE(norm2(b - matvec(a, x)), norm2(b) + 1e-12);
}

// --- symmetric eigensolver ---

TEST(EigenSym, DiagonalMatrix) {
  Matrix a = {{3.0, 0.0}, {0.0, 1.0}};
  const auto e = eigen_sym(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
}

TEST(EigenSym, ReconstructsMatrix) {
  Rng rng(50);
  Matrix a = random_matrix(8, 8, rng);
  a = a + a.transpose();  // symmetrize
  const auto e = eigen_sym(a);
  // A = V diag(w) V^T
  Matrix vd = e.vectors;
  for (std::size_t j = 0; j < 8; ++j) {
    for (std::size_t i = 0; i < 8; ++i) vd(i, j) *= e.values[j];
  }
  const Matrix rec = matmul(vd, e.vectors.transpose());
  EXPECT_LT(Matrix::max_abs_diff(rec, a), 1e-8);
}

TEST(EigenSym, SpdHasPositiveEigenvalues) {
  Rng rng(51);
  const Matrix a = random_spd(12, rng);
  EXPECT_GT(min_eigenvalue(a), 0.0);
}

TEST(EigenSym, TraceEqualsEigenvalueSum) {
  Rng rng(52);
  Matrix a = random_matrix(6, 6, rng);
  a = a + a.transpose();
  const auto e = eigen_sym(a);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 6; ++i) {
    trace += a(i, i);
    sum += e.values[i];
  }
  EXPECT_NEAR(trace, sum, 1e-9);
}

}  // namespace
