// Tests for the rtcheck protocol checker (src/runtime/rtcheck.hpp).
//
// Each checker test seeds one misuse class — deadlock cycle, collective
// mismatch, message leak, invalid send, unjoined spawn — and asserts the
// checker *reports* it (and unwinds the group) instead of hanging. The
// checker tests skip in a plain build; the binary is built in every
// configuration so the plain build also compiles the API surface. The
// gptune_lint analyzer's tests live in tests/test_lint.cpp.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/comm.hpp"
#include "runtime/rtcheck.hpp"

namespace rt = gptune::rt;
namespace rtcheck = gptune::rt::rtcheck;

using std::chrono::milliseconds;

namespace {

/// Concatenated finding messages of one kind, for substring asserts.
std::string messages_of(rtcheck::FindingKind kind) {
  std::string all;
  for (const auto& f : rtcheck::findings()) {
    if (f.kind == kind) all += f.message + "\n";
  }
  return all;
}

class RtCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!rtcheck::enabled()) {
      GTEST_SKIP() << "built without GPTUNE_RTCHECK";
    }
    rtcheck::reset();
  }
  void TearDown() override {
    if (rtcheck::enabled()) rtcheck::reset();
  }
};

}  // namespace

// --- deadlock detection -----------------------------------------------------

TEST_F(RtCheckTest, MutualRecvCycleIsReportedAndUnwound) {
  // Classic two-rank cycle: each waits for a message the other never sends.
  // Without the checker this hangs forever; with it, World::run returns.
  rt::World::run(2, [](rt::Comm& comm) {
    const int peer = comm.rank() == 0 ? 1 : 0;
    rt::Message m = comm.recv(peer, /*tag=*/7);
    (void)m;
    ADD_FAILURE() << "recv completed; expected RtCheckError unwind";
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kDeadlock), 1u);
  const std::string report = messages_of(rtcheck::FindingKind::kDeadlock);
  // The report names both waiters and the tag each is stuck on.
  EXPECT_NE(report.find("rank 0"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 1"), std::string::npos) << report;
  EXPECT_NE(report.find("tag=7"), std::string::npos) << report;
#if defined(GPTUNE_TELEMETRY)
  // The report embeds the flight recorder's per-rank timeline — the last
  // events of every thread, including the recv instants each rank logged
  // right before getting stuck (DESIGN.md §3.12).
  EXPECT_NE(report.find("flight recorder"), std::string::npos) << report;
  EXPECT_NE(report.find("recv src="), std::string::npos) << report;
#endif
}

TEST_F(RtCheckTest, RecvFromSelfIsProvablyStuck) {
  rt::World::run(1, [](rt::Comm& comm) {
    EXPECT_THROW(comm.recv(/*source=*/0, /*tag=*/3), rtcheck::RtCheckError);
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kDeadlock), 1u);
}

TEST_F(RtCheckTest, RecvFromExitedPeerIsReported) {
  rt::World::run(2, [](rt::Comm& comm) {
    if (comm.rank() == 1) return;  // exits without ever sending
    EXPECT_THROW(comm.recv(/*source=*/1, /*tag=*/4), rtcheck::RtCheckError);
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kDeadlock), 1u);
  EXPECT_NE(messages_of(rtcheck::FindingKind::kDeadlock).find("exited"),
            std::string::npos);
}

TEST_F(RtCheckTest, DeadlineOnLivePeerReportsTimeoutNotDeadlock) {
  // Rank 1 is alive (spinning on the flag) but silent: the expiring deadline
  // must classify as a timeout — the wait was not provably stuck.
  std::atomic<bool> release{false};
  rt::World::run(2, [&release](rt::Comm& comm) {
    if (comm.rank() == 0) {
      std::optional<rt::Message> m =
          comm.recv_for(/*source=*/1, /*tag=*/5, milliseconds(50));
      EXPECT_FALSE(m.has_value());
      release.store(true);
    } else {
      while (!release.load()) std::this_thread::yield();
    }
  });
  EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kDeadlock), 0u);
  EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kTimeout), 1u);
}

// --- collective checking ----------------------------------------------------

TEST_F(RtCheckTest, BarrierVersusReduceMismatchIsReported) {
  rt::World::run(2, [](rt::Comm& comm) {
    try {
      if (comm.rank() == 0) {
        comm.barrier();
      } else {
        comm.reduce_sum({1.0, 2.0}, /*root=*/0);
      }
    } catch (const rtcheck::RtCheckError&) {
      // Whichever rank arrives second observes the divergence.
    }
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kCollectiveMismatch), 1u);
  const std::string report =
      messages_of(rtcheck::FindingKind::kCollectiveMismatch);
  EXPECT_NE(report.find("barrier"), std::string::npos) << report;
  EXPECT_NE(report.find("reduce"), std::string::npos) << report;
}

TEST_F(RtCheckTest, ReducePayloadSizeMismatchIsReported) {
  rt::World::run(2, [](rt::Comm& comm) {
    try {
      std::vector<double> contribution(comm.rank() == 0 ? 2 : 3, 1.0);
      comm.reduce_sum(contribution, /*root=*/0);
    } catch (const rtcheck::RtCheckError&) {
    }
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kCollectiveMismatch), 1u);
}

TEST_F(RtCheckTest, MatchedCollectivesAreClean) {
  rt::World::run(4, [](rt::Comm& comm) {
    comm.barrier();
    std::vector<double> x{static_cast<double>(comm.rank())};
    comm.bcast(x, 0);
    comm.allreduce_sum({1.0});
    comm.barrier();
  });
  EXPECT_TRUE(rtcheck::findings().empty());
}

// --- teardown checks --------------------------------------------------------

TEST_F(RtCheckTest, UnreceivedMessageIsReportedAtTeardown) {
  rt::World::run(2, [](rt::Comm& comm) {
    if (comm.rank() == 0) comm.send(1, /*tag=*/11, {1.0, 2.0, 3.0});
    // Rank 1 exits without receiving.
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kMessageLeak), 1u);
  const std::string report = messages_of(rtcheck::FindingKind::kMessageLeak);
  EXPECT_NE(report.find("tag=11"), std::string::npos) << report;
  EXPECT_NE(report.find("3 double(s)"), std::string::npos) << report;
}

TEST_F(RtCheckTest, SendToInvalidRankIsReported) {
  rt::World::run(1, [](rt::Comm& comm) {
    EXPECT_THROW(comm.send(5, /*tag=*/0, {1.0}), rtcheck::RtCheckError);
  });
  EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kInvalidSend), 1u);
}

TEST_F(RtCheckTest, SendAfterSpawnJoinIsReported) {
  rt::Comm driver = rt::World::self();
  rt::SpawnHandle handle =
      driver.spawn(2, [](rt::Comm&, rt::InterComm& parent) {
        (void)parent.recv(rt::kAnySource, /*tag=*/1);
      });
  handle.comm().send(0, /*tag=*/1, {});
  handle.comm().send(1, /*tag=*/1, {});
  handle.join();
  // The channel is finalized: a late send must be diagnosed, not dropped.
  EXPECT_THROW(handle.comm().send(0, /*tag=*/2, {}), rtcheck::RtCheckError);
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kInvalidSend), 1u);
  EXPECT_NE(messages_of(rtcheck::FindingKind::kInvalidSend).find("joined"),
            std::string::npos);
}

TEST_F(RtCheckTest, AuditFlagsUnjoinedSpawn) {
  rt::Comm driver = rt::World::self();
  {
    rt::SpawnHandle handle =
        driver.spawn(1, [](rt::Comm&, rt::InterComm&) {});
    EXPECT_EQ(rtcheck::audit_unjoined(), 1u);
    EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kUnjoinedSpawn), 1u);
    handle.join();
  }
  // Joined now: a fresh audit is clean.
  EXPECT_EQ(rtcheck::audit_unjoined(), 0u);
}

// --- persistent-group lifecycle ----------------------------------------------
// The search and objective worker groups live for a whole tuning run:
// workers loop on recv and exit on a negative stop tag. These tests seed
// the misuse classes specific to that protocol.

namespace {

/// The persistent worker loop the eval engine / search group use: serve
/// jobs (echo the tag back) until a negative stop tag arrives.
void persistent_worker(rt::Comm&, rt::InterComm& parent) {
  for (;;) {
    rt::Message msg = parent.recv();
    if (msg.tag < 0) break;
    parent.send(0, msg.tag, {1.0});
  }
}

constexpr int kStop = -2;

}  // namespace

TEST_F(RtCheckTest, JobSentAfterStopLeaksAtGroupTeardown) {
  {
    rt::Comm driver = rt::World::self();
    rt::SpawnHandle handle = driver.spawn(1, persistent_worker);
    // Work protocol misuse: the terminate handshake is already queued when
    // a straggler job is shipped. The worker exits on the stop tag and the
    // job is never received.
    handle.comm().send(0, kStop, {});
    handle.comm().send(0, /*tag=*/5, {1.0, 2.0});
    handle.join();
  }  // channel teardown runs the leak check
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kMessageLeak), 1u);
  EXPECT_NE(messages_of(rtcheck::FindingKind::kMessageLeak).find("tag=5"),
            std::string::npos);
}

TEST_F(RtCheckTest, SendAfterTerminateHandshakeIsReported) {
  rt::Comm driver = rt::World::self();
  rt::SpawnHandle handle = driver.spawn(2, persistent_worker);
  // One served round trip, then a clean terminate handshake.
  handle.comm().send(1, /*tag=*/0, {});
  (void)handle.comm().recv();
  for (std::size_t r = 0; r < 2; ++r) handle.comm().send(r, kStop, {});
  handle.join();
  // Dispatching into the terminated group must be diagnosed, not dropped.
  EXPECT_THROW(handle.comm().send(0, /*tag=*/1, {}), rtcheck::RtCheckError);
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kInvalidSend), 1u);
  EXPECT_NE(messages_of(rtcheck::FindingKind::kInvalidSend).find("joined"),
            std::string::npos);
}

TEST_F(RtCheckTest, UnjoinedPersistentGroupIsFlaggedUntilJoined) {
  rt::Comm driver = rt::World::self();
  rt::SpawnHandle handle = driver.spawn(2, persistent_worker);
  EXPECT_EQ(rtcheck::live_spawn_count(), 1u);
  // Stop tags make every worker exit, but exited ranks are not a join:
  // an owner that drops the handle without joining is still an offender.
  for (std::size_t r = 0; r < 2; ++r) handle.comm().send(r, kStop, {});
  EXPECT_EQ(rtcheck::audit_unjoined(), 1u);
  EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kUnjoinedSpawn), 1u);
  handle.join();
  EXPECT_EQ(rtcheck::live_spawn_count(), 0u);
  EXPECT_EQ(rtcheck::audit_unjoined(), 0u);
}

// --- async stream protocol (DESIGN.md §3.9) ---------------------------------
// The hook entry points only exist in a GPTUNE_RTCHECK build (call sites
// in the engine are compiled out otherwise), so these tests are
// compile-time gated like the hooks themselves.

#if defined(GPTUNE_RTCHECK)

TEST_F(RtCheckTest, AsyncCleanStreamLeavesNothingOutstanding) {
  int anchor = 0;
  const void* owner = &anchor;
  rtcheck::hooks::on_async_submit(owner, 0);
  rtcheck::hooks::on_async_submit(owner, 1);
  EXPECT_EQ(rtcheck::async_outstanding(), 2u);
  rtcheck::hooks::on_async_delivered(owner, 1);
  rtcheck::hooks::on_async_delivered(owner, 0);
  EXPECT_EQ(rtcheck::async_outstanding(), 0u);
  rtcheck::hooks::on_async_owner_destroyed(owner);
  EXPECT_TRUE(rtcheck::findings().empty());
}

TEST_F(RtCheckTest, AsyncDoubleSubmitAndUnmatchedDeliveryAreFindings) {
  int anchor = 0;
  const void* owner = &anchor;
  rtcheck::hooks::on_async_submit(owner, 4);
  rtcheck::hooks::on_async_submit(owner, 4);  // double submit
  rtcheck::hooks::on_async_delivered(owner, 9);  // never submitted
  const std::string msgs = messages_of(rtcheck::FindingKind::kAsyncProtocol);
  EXPECT_NE(msgs.find("submitted twice"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("without a matching submit"), std::string::npos) << msgs;
  rtcheck::hooks::on_async_delivered(owner, 4);
  rtcheck::hooks::on_async_owner_destroyed(owner);
}

TEST_F(RtCheckTest, AsyncOwnerDestroyedWithInFlightItemsIsAFinding) {
  int anchor = 0;
  const void* owner = &anchor;
  rtcheck::hooks::on_async_submit(owner, 0);
  rtcheck::hooks::on_async_submit(owner, 1);
  rtcheck::hooks::on_async_owner_destroyed(owner);
  const std::string msgs =
      messages_of(rtcheck::FindingKind::kAsyncOutstanding);
  EXPECT_NE(msgs.find("destroyed with 2 undelivered"), std::string::npos)
      << msgs;
  // The owner's book is closed either way.
  EXPECT_EQ(rtcheck::async_outstanding(), 0u);
}

#endif  // GPTUNE_RTCHECK

