// Tests for the rtcheck protocol checker (src/runtime/rtcheck.hpp) and the
// gptune_lint rule engine (tools/gptune_lint/linter.hpp).
//
// Each checker test seeds one misuse class — deadlock cycle, collective
// mismatch, message leak, invalid send, unjoined spawn — and asserts the
// checker *reports* it (and unwinds the group) instead of hanging. The
// checker tests skip in a plain build; the lint tests always run. Built in
// every configuration so the plain build also compiles the API surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "linter.hpp"
#include "runtime/comm.hpp"
#include "runtime/rtcheck.hpp"

namespace rt = gptune::rt;
namespace rtcheck = gptune::rt::rtcheck;
namespace lint = gptune::lint;

using std::chrono::milliseconds;

namespace {

/// Concatenated finding messages of one kind, for substring asserts.
std::string messages_of(rtcheck::FindingKind kind) {
  std::string all;
  for (const auto& f : rtcheck::findings()) {
    if (f.kind == kind) all += f.message + "\n";
  }
  return all;
}

class RtCheckTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!rtcheck::enabled()) {
      GTEST_SKIP() << "built without GPTUNE_RTCHECK";
    }
    rtcheck::reset();
  }
  void TearDown() override {
    if (rtcheck::enabled()) rtcheck::reset();
  }
};

}  // namespace

// --- deadlock detection -----------------------------------------------------

TEST_F(RtCheckTest, MutualRecvCycleIsReportedAndUnwound) {
  // Classic two-rank cycle: each waits for a message the other never sends.
  // Without the checker this hangs forever; with it, World::run returns.
  rt::World::run(2, [](rt::Comm& comm) {
    const int peer = comm.rank() == 0 ? 1 : 0;
    rt::Message m = comm.recv(peer, /*tag=*/7);
    (void)m;
    ADD_FAILURE() << "recv completed; expected RtCheckError unwind";
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kDeadlock), 1u);
  const std::string report = messages_of(rtcheck::FindingKind::kDeadlock);
  // The report names both waiters and the tag each is stuck on.
  EXPECT_NE(report.find("rank 0"), std::string::npos) << report;
  EXPECT_NE(report.find("rank 1"), std::string::npos) << report;
  EXPECT_NE(report.find("tag=7"), std::string::npos) << report;
}

TEST_F(RtCheckTest, RecvFromSelfIsProvablyStuck) {
  rt::World::run(1, [](rt::Comm& comm) {
    EXPECT_THROW(comm.recv(/*source=*/0, /*tag=*/3), rtcheck::RtCheckError);
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kDeadlock), 1u);
}

TEST_F(RtCheckTest, RecvFromExitedPeerIsReported) {
  rt::World::run(2, [](rt::Comm& comm) {
    if (comm.rank() == 1) return;  // exits without ever sending
    EXPECT_THROW(comm.recv(/*source=*/1, /*tag=*/4), rtcheck::RtCheckError);
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kDeadlock), 1u);
  EXPECT_NE(messages_of(rtcheck::FindingKind::kDeadlock).find("exited"),
            std::string::npos);
}

TEST_F(RtCheckTest, DeadlineOnLivePeerReportsTimeoutNotDeadlock) {
  // Rank 1 is alive (spinning on the flag) but silent: the expiring deadline
  // must classify as a timeout — the wait was not provably stuck.
  std::atomic<bool> release{false};
  rt::World::run(2, [&release](rt::Comm& comm) {
    if (comm.rank() == 0) {
      std::optional<rt::Message> m =
          comm.recv_for(/*source=*/1, /*tag=*/5, milliseconds(50));
      EXPECT_FALSE(m.has_value());
      release.store(true);
    } else {
      while (!release.load()) std::this_thread::yield();
    }
  });
  EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kDeadlock), 0u);
  EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kTimeout), 1u);
}

// --- collective checking ----------------------------------------------------

TEST_F(RtCheckTest, BarrierVersusReduceMismatchIsReported) {
  rt::World::run(2, [](rt::Comm& comm) {
    try {
      if (comm.rank() == 0) {
        comm.barrier();
      } else {
        comm.reduce_sum({1.0, 2.0}, /*root=*/0);
      }
    } catch (const rtcheck::RtCheckError&) {
      // Whichever rank arrives second observes the divergence.
    }
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kCollectiveMismatch), 1u);
  const std::string report =
      messages_of(rtcheck::FindingKind::kCollectiveMismatch);
  EXPECT_NE(report.find("barrier"), std::string::npos) << report;
  EXPECT_NE(report.find("reduce"), std::string::npos) << report;
}

TEST_F(RtCheckTest, ReducePayloadSizeMismatchIsReported) {
  rt::World::run(2, [](rt::Comm& comm) {
    try {
      std::vector<double> contribution(comm.rank() == 0 ? 2 : 3, 1.0);
      comm.reduce_sum(contribution, /*root=*/0);
    } catch (const rtcheck::RtCheckError&) {
    }
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kCollectiveMismatch), 1u);
}

TEST_F(RtCheckTest, MatchedCollectivesAreClean) {
  rt::World::run(4, [](rt::Comm& comm) {
    comm.barrier();
    std::vector<double> x{static_cast<double>(comm.rank())};
    comm.bcast(x, 0);
    comm.allreduce_sum({1.0});
    comm.barrier();
  });
  EXPECT_TRUE(rtcheck::findings().empty());
}

// --- teardown checks --------------------------------------------------------

TEST_F(RtCheckTest, UnreceivedMessageIsReportedAtTeardown) {
  rt::World::run(2, [](rt::Comm& comm) {
    if (comm.rank() == 0) comm.send(1, /*tag=*/11, {1.0, 2.0, 3.0});
    // Rank 1 exits without receiving.
  });
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kMessageLeak), 1u);
  const std::string report = messages_of(rtcheck::FindingKind::kMessageLeak);
  EXPECT_NE(report.find("tag=11"), std::string::npos) << report;
  EXPECT_NE(report.find("3 double(s)"), std::string::npos) << report;
}

TEST_F(RtCheckTest, SendToInvalidRankIsReported) {
  rt::World::run(1, [](rt::Comm& comm) {
    EXPECT_THROW(comm.send(5, /*tag=*/0, {1.0}), rtcheck::RtCheckError);
  });
  EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kInvalidSend), 1u);
}

TEST_F(RtCheckTest, SendAfterSpawnJoinIsReported) {
  rt::Comm driver = rt::World::self();
  rt::SpawnHandle handle =
      driver.spawn(2, [](rt::Comm&, rt::InterComm& parent) {
        (void)parent.recv(rt::kAnySource, /*tag=*/1);
      });
  handle.comm().send(0, /*tag=*/1, {});
  handle.comm().send(1, /*tag=*/1, {});
  handle.join();
  // The channel is finalized: a late send must be diagnosed, not dropped.
  EXPECT_THROW(handle.comm().send(0, /*tag=*/2, {}), rtcheck::RtCheckError);
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kInvalidSend), 1u);
  EXPECT_NE(messages_of(rtcheck::FindingKind::kInvalidSend).find("joined"),
            std::string::npos);
}

TEST_F(RtCheckTest, AuditFlagsUnjoinedSpawn) {
  rt::Comm driver = rt::World::self();
  {
    rt::SpawnHandle handle =
        driver.spawn(1, [](rt::Comm&, rt::InterComm&) {});
    EXPECT_EQ(rtcheck::audit_unjoined(), 1u);
    EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kUnjoinedSpawn), 1u);
    handle.join();
  }
  // Joined now: a fresh audit is clean.
  EXPECT_EQ(rtcheck::audit_unjoined(), 0u);
}

// --- persistent-group lifecycle ----------------------------------------------
// The search and objective worker groups live for a whole tuning run:
// workers loop on recv and exit on a negative stop tag. These tests seed
// the misuse classes specific to that protocol.

namespace {

/// The persistent worker loop the eval engine / search group use: serve
/// jobs (echo the tag back) until a negative stop tag arrives.
void persistent_worker(rt::Comm&, rt::InterComm& parent) {
  for (;;) {
    rt::Message msg = parent.recv();
    if (msg.tag < 0) break;
    parent.send(0, msg.tag, {1.0});
  }
}

constexpr int kStop = -2;

}  // namespace

TEST_F(RtCheckTest, JobSentAfterStopLeaksAtGroupTeardown) {
  {
    rt::Comm driver = rt::World::self();
    rt::SpawnHandle handle = driver.spawn(1, persistent_worker);
    // Work protocol misuse: the terminate handshake is already queued when
    // a straggler job is shipped. The worker exits on the stop tag and the
    // job is never received.
    handle.comm().send(0, kStop, {});
    handle.comm().send(0, /*tag=*/5, {1.0, 2.0});
    handle.join();
  }  // channel teardown runs the leak check
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kMessageLeak), 1u);
  EXPECT_NE(messages_of(rtcheck::FindingKind::kMessageLeak).find("tag=5"),
            std::string::npos);
}

TEST_F(RtCheckTest, SendAfterTerminateHandshakeIsReported) {
  rt::Comm driver = rt::World::self();
  rt::SpawnHandle handle = driver.spawn(2, persistent_worker);
  // One served round trip, then a clean terminate handshake.
  handle.comm().send(1, /*tag=*/0, {});
  (void)handle.comm().recv();
  for (std::size_t r = 0; r < 2; ++r) handle.comm().send(r, kStop, {});
  handle.join();
  // Dispatching into the terminated group must be diagnosed, not dropped.
  EXPECT_THROW(handle.comm().send(0, /*tag=*/1, {}), rtcheck::RtCheckError);
  EXPECT_GE(rtcheck::count(rtcheck::FindingKind::kInvalidSend), 1u);
  EXPECT_NE(messages_of(rtcheck::FindingKind::kInvalidSend).find("joined"),
            std::string::npos);
}

TEST_F(RtCheckTest, UnjoinedPersistentGroupIsFlaggedUntilJoined) {
  rt::Comm driver = rt::World::self();
  rt::SpawnHandle handle = driver.spawn(2, persistent_worker);
  EXPECT_EQ(rtcheck::live_spawn_count(), 1u);
  // Stop tags make every worker exit, but exited ranks are not a join:
  // an owner that drops the handle without joining is still an offender.
  for (std::size_t r = 0; r < 2; ++r) handle.comm().send(r, kStop, {});
  EXPECT_EQ(rtcheck::audit_unjoined(), 1u);
  EXPECT_EQ(rtcheck::count(rtcheck::FindingKind::kUnjoinedSpawn), 1u);
  handle.join();
  EXPECT_EQ(rtcheck::live_spawn_count(), 0u);
  EXPECT_EQ(rtcheck::audit_unjoined(), 0u);
}

// --- async stream protocol (DESIGN.md §3.9) ---------------------------------
// The hook entry points only exist in a GPTUNE_RTCHECK build (call sites
// in the engine are compiled out otherwise), so these tests are
// compile-time gated like the hooks themselves.

#if defined(GPTUNE_RTCHECK)

TEST_F(RtCheckTest, AsyncCleanStreamLeavesNothingOutstanding) {
  int anchor = 0;
  const void* owner = &anchor;
  rtcheck::hooks::on_async_submit(owner, 0);
  rtcheck::hooks::on_async_submit(owner, 1);
  EXPECT_EQ(rtcheck::async_outstanding(), 2u);
  rtcheck::hooks::on_async_delivered(owner, 1);
  rtcheck::hooks::on_async_delivered(owner, 0);
  EXPECT_EQ(rtcheck::async_outstanding(), 0u);
  rtcheck::hooks::on_async_owner_destroyed(owner);
  EXPECT_TRUE(rtcheck::findings().empty());
}

TEST_F(RtCheckTest, AsyncDoubleSubmitAndUnmatchedDeliveryAreFindings) {
  int anchor = 0;
  const void* owner = &anchor;
  rtcheck::hooks::on_async_submit(owner, 4);
  rtcheck::hooks::on_async_submit(owner, 4);  // double submit
  rtcheck::hooks::on_async_delivered(owner, 9);  // never submitted
  const std::string msgs = messages_of(rtcheck::FindingKind::kAsyncProtocol);
  EXPECT_NE(msgs.find("submitted twice"), std::string::npos) << msgs;
  EXPECT_NE(msgs.find("without a matching submit"), std::string::npos) << msgs;
  rtcheck::hooks::on_async_delivered(owner, 4);
  rtcheck::hooks::on_async_owner_destroyed(owner);
}

TEST_F(RtCheckTest, AsyncOwnerDestroyedWithInFlightItemsIsAFinding) {
  int anchor = 0;
  const void* owner = &anchor;
  rtcheck::hooks::on_async_submit(owner, 0);
  rtcheck::hooks::on_async_submit(owner, 1);
  rtcheck::hooks::on_async_owner_destroyed(owner);
  const std::string msgs =
      messages_of(rtcheck::FindingKind::kAsyncOutstanding);
  EXPECT_NE(msgs.find("destroyed with 2 undelivered"), std::string::npos)
      << msgs;
  // The owner's book is closed either way.
  EXPECT_EQ(rtcheck::async_outstanding(), 0u);
}

#endif  // GPTUNE_RTCHECK

// --- lint rule engine (runs in every build) ---------------------------------

namespace {

std::vector<lint::Finding> lint_snippet(const std::string& path,
                                        const std::string& code,
                                        std::size_t* suppressed = nullptr) {
  return lint::lint_source(path, code, suppressed);
}

}  // namespace

TEST(GptuneLint, FlagsRandomDevice) {
  auto f = lint_snippet("src/core/x.cpp",
                        "std::mt19937 gen{std::random_device{}()};\n");
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "random-device");
  EXPECT_EQ(f[0].line, 1u);
}

TEST(GptuneLint, FlagsTimeSeedAndRand) {
  auto f = lint_snippet("src/core/x.cpp",
                        "srand(time(nullptr));\n"
                        "int v = rand();\n");
  ASSERT_EQ(f.size(), 3u);  // srand(, time(nullptr), rand()
  EXPECT_EQ(f[0].rule, "rand");
  EXPECT_EQ(f[1].rule, "time-seed");
  EXPECT_EQ(f[2].rule, "rand");
}

TEST(GptuneLint, FlagsRawThreadOutsideRuntimeOnly) {
  const std::string code = "std::thread t([] {});\n";
  EXPECT_EQ(lint_snippet("src/core/x.cpp", code).size(), 1u);
  EXPECT_EQ(lint_snippet("src/core/x.cpp", code)[0].rule, "raw-thread");
  // The runtime layer is the one place raw threads are allowed.
  EXPECT_TRUE(lint_snippet("src/runtime/comm.cpp", code).empty());
}

TEST(GptuneLint, FlagsArrivalOrderRecvOutsideSanctionedFiles) {
  const std::string wildcard = "rt::Message m = comm.recv();\n";
  const std::string any_source = "auto m = comm.recv(rt::kAnySource, 3);\n";
  auto f = lint_snippet("src/core/x.cpp", wildcard);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "arrival-recv");
  EXPECT_EQ(lint_snippet("src/core/x.cpp", any_source).size(), 1u);
  // Pinned-source receives are deterministic and stay legal everywhere.
  EXPECT_TRUE(lint_snippet("src/core/x.cpp", "auto m = comm.recv(0);\n")
                  .empty());
  // The runtime layer and the completion-log delivery policy are the two
  // sanctioned homes of arrival-order receives; tests are out of scope.
  EXPECT_TRUE(lint_snippet("src/runtime/comm.cpp", wildcard).empty());
  EXPECT_TRUE(
      lint_snippet("src/core/completion_log.cpp", wildcard).empty());
  EXPECT_TRUE(lint_snippet("tests/test_runtime.cpp", wildcard).empty());
}

TEST(GptuneLint, FlagsHistoryDirectOutsideHistoryOnly) {
  const std::string code = "for (const auto& r : db.records()) use(r);\n";
  auto f = lint_snippet("src/core/mla.cpp", code);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "history-direct");
  EXPECT_TRUE(lint_snippet("src/core/history.hpp", code).empty());
}

TEST(GptuneLint, FlagsUnorderedIterationIncludingAliases) {
  auto direct = lint_snippet("src/core/x.cpp",
                             "std::unordered_map<int, int> counts;\n"
                             "for (const auto& [k, v] : counts) use(k, v);\n");
  ASSERT_EQ(direct.size(), 1u);
  EXPECT_EQ(direct[0].rule, "unordered-iter");
  EXPECT_EQ(direct[0].line, 2u);

  auto aliased =
      lint_snippet("src/core/x.cpp",
                   "using ConfigSet = std::unordered_set<Config, Hash>;\n"
                   "ConfigSet seen;\n"
                   "for (const auto& c : seen) use(c);\n");
  ASSERT_EQ(aliased.size(), 1u);
  EXPECT_EQ(aliased[0].line, 3u);

  // Membership tests and ordered-container iteration stay clean.
  EXPECT_TRUE(lint_snippet("src/core/x.cpp",
                           "std::unordered_set<int> seen;\n"
                           "if (seen.count(3)) use();\n"
                           "std::vector<int> v;\n"
                           "for (int x : v) use(x);\n")
                  .empty());
}

TEST(GptuneLint, FlagsFullRefactorInRefitHotPath) {
  // Direct O(N^3) factorizations in the gp/core refit path must go through
  // IncrementalFitState (DESIGN.md §3.10) or carry a deliberate
  // suppression; the linalg layer implements the factorizations and the
  // tests/benches compare against them on purpose.
  const std::string blocked = "auto f = linalg::blocked_cholesky(k, 128);\n";
  const std::string jittered =
      "auto f = CholeskyFactor::factor_with_jitter(k, 1e-10, 1e-2, &j);\n";
  auto f = lint_snippet("src/gp/x.cpp", blocked);
  ASSERT_EQ(f.size(), 1u);
  EXPECT_EQ(f[0].rule, "full-refactor");
  EXPECT_EQ(lint_snippet("src/core/x.cpp", jittered).size(), 1u);
  // The extension entry points are the sanctioned alternative, not a hit.
  EXPECT_TRUE(lint_snippet("src/gp/x.cpp",
                           "ok = linalg::blocked_cholesky_extend(w, n0, 128);\n")
                  .empty());
  // Out-of-scope layers: factorization home, tests, tools.
  EXPECT_TRUE(lint_snippet("src/linalg/blocked_cholesky.cpp", blocked).empty());
  EXPECT_TRUE(lint_snippet("tests/test_linalg.cpp", blocked).empty());
  // Deliberate from-scratch sites annotate themselves.
  std::size_t suppressed = 0;
  EXPECT_TRUE(lint_snippet("src/gp/x.cpp",
                           "// gptune-lint: allow(full-refactor)\n" + blocked,
                           &suppressed)
                  .empty());
  EXPECT_EQ(suppressed, 1u);
}

TEST(GptuneLint, SuppressionOnSameOrPrecedingLine) {
  std::size_t suppressed = 0;
  EXPECT_TRUE(lint_snippet("src/core/x.cpp",
                           "int v = rand();  // gptune-lint: allow(rand)\n",
                           &suppressed)
                  .empty());
  EXPECT_EQ(suppressed, 1u);

  suppressed = 0;
  EXPECT_TRUE(lint_snippet("src/core/x.cpp",
                           "// gptune-lint: allow(rand)\n"
                           "int v = rand();\n",
                           &suppressed)
                  .empty());
  EXPECT_EQ(suppressed, 1u);

  // A suppression two lines up does not reach, and the wrong rule name
  // suppresses nothing.
  EXPECT_EQ(lint_snippet("src/core/x.cpp",
                         "// gptune-lint: allow(rand)\n"
                         "\n"
                         "int v = rand();\n")
                .size(),
            1u);
  EXPECT_EQ(lint_snippet("src/core/x.cpp",
                         "int v = rand();  // gptune-lint: allow(time-seed)\n")
                .size(),
            1u);
  // allow(all) wildcards every rule on the line.
  EXPECT_TRUE(
      lint_snippet("src/core/x.cpp",
                   "srand(time(nullptr));  // gptune-lint: allow(all)\n")
          .empty());
}

TEST(GptuneLint, FlagsWallClockOutsideSanctionedFiles) {
  const std::string code =
      "auto t0 = std::chrono::steady_clock::now();\n"
      "auto t1 = std::chrono::system_clock::now();\n";
  auto f = lint_snippet("src/core/x.cpp", code);
  ASSERT_EQ(f.size(), 2u);
  EXPECT_EQ(f[0].rule, "wall-clock");
  EXPECT_EQ(f[0].line, 1u);
  EXPECT_EQ(f[1].line, 2u);

  // The sanctioned consumers: the timer wrapper, the telemetry layer, and
  // the runtime (mailbox deadlines).
  EXPECT_TRUE(lint_snippet("src/common/timer.hpp", code).empty());
  EXPECT_TRUE(
      lint_snippet("src/common/telemetry/telemetry.cpp", code).empty());
  EXPECT_TRUE(lint_snippet("src/runtime/comm.cpp", code).empty());

  // Annotated suppressions work as for every other rule.
  std::size_t suppressed = 0;
  EXPECT_TRUE(
      lint_snippet("src/core/x.cpp",
                   "auto t = std::chrono::steady_clock::now();"
                   "  // gptune-lint: allow(wall-clock)\n",
                   &suppressed)
          .empty());
  EXPECT_EQ(suppressed, 1u);
}

TEST(GptuneLint, IgnoresCommentsAndStringLiterals) {
  EXPECT_TRUE(lint_snippet("src/core/x.cpp",
                           "// std::random_device in a comment\n"
                           "/* rand() in a block\n"
                           "   comment spanning lines */\n"
                           "const char* s = \"std::thread rand()\";\n")
                  .empty());
}

TEST(GptuneLint, JsonSummaryIsMachineReadable) {
  lint::Result result;
  result.files_scanned = 2;
  result.findings.push_back(
      {"rand", "src/x.cpp", 3, "banned", "int v = rand();"});
  const std::string json = lint::to_json(result);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rand\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos) << json;
}
