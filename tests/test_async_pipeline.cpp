// Tests of the asynchronous tuning pipeline (DESIGN.md §3.9): the engine's
// stream interface, the completion-log record/replay contract (the ISSUE's
// tier-1 battery: async replay-deterministic at objective worker counts 2
// and 4, also under injected faults), the JSON round-trip, the
// GPTUNE_RECORD/GPTUNE_REPLAY environment plumbing, fail-fast on stale
// logs, and the multi-objective fallback to the sync loop.
//
// gtest_discover_tests runs each TEST in its own process, so setenv state
// and rtcheck registry state never leak between tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <vector>

#include "apps/fault_injection.hpp"
#include "core/async_pipeline.hpp"
#include "core/completion_log.hpp"
#include "core/eval_engine.hpp"
#include "core/mla.hpp"
#include "runtime/rtcheck.hpp"

namespace {

using namespace gptune;
using namespace gptune::core;

Space box2d() {
  Space s;
  s.add_real("x", 0.0, 1.0);
  s.add_real("y", 0.0, 1.0);
  return s;
}

// Pure single-objective family: minimum at (t, 1 - t), value 0.01.
MultiObjectiveFn family_fn() {
  return [](const TaskVector& t, const Config& c) {
    const double dx = c[0] - t[0];
    const double dy = c[1] - (1.0 - t[0]);
    return std::vector<double>{dx * dx + dy * dy + 0.01};
  };
}

// Deterministic virtual cost: the objective value itself (a simulated
// runtime), so makespans and timeouts are reproducible.
EvalPolicy simulated_policy() {
  EvalPolicy policy;
  policy.virtual_cost = [](const TaskVector&, const Config&,
                           const std::vector<double>& y) {
    return y.empty() ? 1.0 : y[0];
  };
  return policy;
}

MlaOptions async_options(std::size_t workers) {
  MlaOptions opt;
  opt.budget_per_task = 14;
  opt.model_restarts = 2;
  opt.max_lbfgs_iterations = 20;
  opt.seed = 42;
  opt.async = true;
  opt.objective_workers = workers;
  opt.evaluation = simulated_policy();
  return opt;
}

const std::vector<TaskVector> kTasks = {{0.25}, {0.75}};

MlaResult run_async(const MlaOptions& opt) {
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  return tuner.run(kTasks);
}

void expect_same_trajectory(const MlaResult& a, const MlaResult& b) {
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t i = 0; i < a.tasks.size(); ++i) {
    ASSERT_EQ(a.tasks[i].evals.size(), b.tasks[i].evals.size());
    for (std::size_t j = 0; j < a.tasks[i].evals.size(); ++j) {
      EXPECT_EQ(a.tasks[i].evals[j].config, b.tasks[i].evals[j].config)
          << "task " << i << " eval " << j;
      EXPECT_EQ(a.tasks[i].evals[j].objectives, b.tasks[i].evals[j].objectives)
          << "task " << i << " eval " << j;
    }
  }
}

// The replay contract proper: same delivery order, item for item. The vt
// fields are informational and compared separately (see expect_same_log)
// because crashed attempts charge measured wall time as their virtual
// cost, which is not bitwise reproducible.
void expect_same_log_order(const CompletionLog& a, const CompletionLog& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.events()[i].seq, b.events()[i].seq);
    EXPECT_EQ(a.events()[i].item, b.events()[i].item);
    EXPECT_EQ(a.events()[i].task, b.events()[i].task);
    EXPECT_EQ(a.events()[i].worker, b.events()[i].worker);
  }
}

void expect_same_log(const CompletionLog& a, const CompletionLog& b) {
  expect_same_log_order(a, b);
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    EXPECT_EQ(a.events()[i].vt_start, b.events()[i].vt_start);
    EXPECT_EQ(a.events()[i].vt_finish, b.events()[i].vt_finish);
  }
}

// --- engine stream interface ------------------------------------------------

TEST(EvalEngineStream, StreamMatchesBatchOutcomes) {
  std::vector<EvalItem> items;
  for (std::size_t i = 0; i < 12; ++i) {
    const double v = static_cast<double>(i) / 12.0;
    items.push_back({i % 2, Config{v, 1.0 - v}});
  }
  for (std::size_t workers : {1u, 3u}) {
    EvalEngine batch_engine(family_fn(), 1, workers, simulated_policy());
    const auto batch = batch_engine.evaluate(kTasks, items);

    EvalEngine stream_engine(family_fn(), 1, workers, simulated_policy());
    std::vector<std::size_t> ids;
    for (const auto& item : items) {
      ids.push_back(stream_engine.submit(item.task_index,
                                         kTasks[item.task_index], item.config));
    }
    EXPECT_EQ(stream_engine.inflight(), items.size());
    std::vector<EvalOutcome> by_id(items.size());
    CompletionDelivery live;
    while (stream_engine.inflight() > 0) {
      EvalCompletion c = stream_engine.next_completion(live);
      ASSERT_LT(c.id, by_id.size());
      by_id[c.id] = std::move(c.outcome);
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(by_id[ids[i]].objectives, batch[i].objectives);
      EXPECT_EQ(by_id[ids[i]].attempts, batch[i].attempts);
      EXPECT_EQ(by_id[ids[i]].penalized, batch[i].penalized);
    }
  }
}

TEST(EvalEngineStream, BatchEvaluateWithStreamInFlightThrows) {
  EvalEngine engine(family_fn(), 1, 1, simulated_policy());
  engine.submit(0, kTasks[0], {0.5, 0.5});
  EXPECT_THROW(engine.evaluate(kTasks, {{0, Config{0.1, 0.9}}}),
               std::logic_error);
  CompletionDelivery live;
  (void)engine.next_completion(live);
  EXPECT_THROW(engine.next_completion(live), std::logic_error);
}

// --- async MLA determinism and replay ---------------------------------------

TEST(AsyncMla, InlineModeDeterministicAcrossRuns) {
  // One worker: completions arrive in dispatch order, so even the live
  // path is deterministic run to run.
  const MlaResult a = run_async(async_options(1));
  const MlaResult b = run_async(async_options(1));
  expect_same_trajectory(a, b);
  expect_same_log(a.completion_log, b.completion_log);
}

TEST(AsyncMla, FullBudgetAndAccounting) {
  const MlaResult r = run_async(async_options(4));
  std::size_t total = 0;
  for (const auto& th : r.tasks) {
    EXPECT_EQ(th.evals.size(), 14u);
    total += th.evals.size();
    for (const auto& e : th.evals) {
      EXPECT_TRUE(std::isfinite(e.objectives[0]));
    }
  }
  EXPECT_EQ(r.evaluations, total);
  EXPECT_EQ(r.completion_log.size(), total);
  EXPECT_GT(r.async_virtual_makespan, 0.0);
  EXPECT_GT(r.worker_occupancy, 0.0);
  EXPECT_LE(r.worker_occupancy, 1.0);
  ASSERT_EQ(r.profiles.size(), 3u);
  EXPECT_EQ(r.profiles[0].phase, "objective");
  EXPECT_EQ(r.profiles[0].invocations, total);
  EXPECT_GT(r.profiles[1].invocations, 0u);  // model fits
  EXPECT_GT(r.profiles[2].invocations, 0u);  // candidate generations
  // Clean run: every submitted candidate was delivered (0 in a plain
  // build, where the probe is compiled to a stub).
  EXPECT_EQ(rt::rtcheck::async_outstanding(), 0u);
}

TEST(AsyncMla, ReplayReproducesRecordedTrajectoryBitwise) {
  for (std::size_t workers : {2u, 4u}) {
    const MlaResult live = run_async(async_options(workers));
    ASSERT_FALSE(live.completion_log.empty());

    MlaOptions opt = async_options(workers);
    opt.replay = &live.completion_log;
    const MlaResult replayed = run_async(opt);
    expect_same_trajectory(live, replayed);
    expect_same_log(live.completion_log, replayed.completion_log);
  }
}

TEST(AsyncMla, FaultedRunIsReplayDeterministic) {
  apps::FaultSpec spec;
  spec.crash_rate = 0.1;
  spec.nan_rate = 0.1;
  spec.hang_rate = 0.1;
  spec.hang_factor = 1.0e3;
  spec.seed = 11;  // heal_after = 0: permanent faults, stateless and
                   // order-independent, so record/replay stays exact.

  auto run = [&](const CompletionLog* replay) {
    MlaOptions opt = async_options(4);
    opt.budget_per_task = 12;
    opt.evaluation.timeout_seconds = 50.0;  // kills "hung" runs (~>= 1000)
    opt.replay = replay;
    MultitaskTuner tuner(box2d(), apps::with_faults(family_fn(), spec), opt);
    return tuner.run(kTasks);
  };

  const MlaResult live = run(nullptr);
  EXPECT_GT(live.eval_stats.penalized, 0u);
  for (const auto& th : live.tasks) {
    EXPECT_EQ(th.evals.size(), 12u);
    for (const auto& e : th.evals) {
      EXPECT_TRUE(std::isfinite(e.objectives[0]));
    }
  }

  const MlaResult replayed = run(&live.completion_log);
  expect_same_trajectory(live, replayed);
  expect_same_log_order(live.completion_log, replayed.completion_log);
  EXPECT_EQ(replayed.eval_stats.penalized, live.eval_stats.penalized);
  EXPECT_EQ(replayed.eval_stats.timeouts, live.eval_stats.timeouts);
}

TEST(AsyncMla, NoDuplicateConfigDispatchedPerTask) {
  const MlaResult r = run_async(async_options(4));
  for (const auto& th : r.tasks) {
    for (std::size_t i = 0; i < th.evals.size(); ++i) {
      for (std::size_t j = i + 1; j < th.evals.size(); ++j) {
        EXPECT_NE(th.evals[i].config, th.evals[j].config)
            << "duplicate dispatch at evals " << i << " and " << j;
      }
    }
  }
}

TEST(AsyncMla, StaleReplayLogFailsFast) {
  const MlaResult live = run_async(async_options(2));

  // A log forcing an id this run never dispatched: detected before the
  // blocking receive, so the run throws instead of hanging.
  CompletionLog foreign;
  foreign.append({0, 9999, 0, 0, 0.0, 1.0});
  MlaOptions opt = async_options(2);
  opt.replay = &foreign;
  EXPECT_THROW(run_async(opt), std::runtime_error);

  // A truncated log exhausts mid-stream: same fail-fast contract.
  CompletionLog truncated;
  truncated.append(live.completion_log.events().front());
  opt.replay = &truncated;
  EXPECT_THROW(run_async(opt), std::runtime_error);
}

TEST(AsyncMla, MultiObjectiveFallsBackToSync) {
  auto two_obj = [](const TaskVector& t, const Config& c) {
    const double dx = c[0] - t[0];
    const double dy = c[1] - (1.0 - t[0]);
    return std::vector<double>{dx * dx + 0.01, dy * dy + 0.01};
  };
  MlaOptions opt = async_options(2);
  opt.num_objectives = 2;
  opt.budget_per_task = 10;

  MultitaskTuner async_tuner(box2d(), two_obj, opt);
  const MlaResult a = async_tuner.run(kTasks);
  EXPECT_TRUE(a.completion_log.empty());  // sync loop ran

  opt.async = false;
  MultitaskTuner sync_tuner(box2d(), two_obj, opt);
  const MlaResult b = sync_tuner.run(kTasks);
  expect_same_trajectory(a, b);
}

// --- completion-log serialization and env plumbing --------------------------

TEST(CompletionLogJson, RoundTripPreservesEveryField) {
  CompletionLog log;
  log.append({0, 3, 1, 2, 0.0, 0.1});
  log.append({1, 0, 0, 0, 0.1, 1.0 / 3.0});  // needs %.17g to survive
  log.append({2, 7, 1, 3, 1.0 / 3.0, 12345.6789012345678});

  std::string error;
  auto parsed = CompletionLog::from_json(log.to_json(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  expect_same_log(log, *parsed);

  EXPECT_FALSE(CompletionLog::from_json("not json", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      CompletionLog::from_json("{\"version\": 2, \"events\": []}", &error)
          .has_value());
}

TEST(CompletionLogJson, SaveLoadRoundTrip) {
  const std::string path = "test_async_pipeline_log.json";
  CompletionLog log;
  log.append({0, 1, 0, 0, 0.0, 0.25});
  ASSERT_TRUE(log.save(path));
  std::string error;
  auto loaded = CompletionLog::load(path, &error);
  ASSERT_TRUE(loaded.has_value()) << error;
  expect_same_log(log, *loaded);
  std::remove(path.c_str());
  EXPECT_FALSE(CompletionLog::load(path, &error).has_value());
}

TEST(AsyncMla, RecordAndReplayThroughEnvironment) {
  const std::string path = "test_async_pipeline_env_log.json";
  ::setenv("GPTUNE_RECORD", path.c_str(), 1);
  const MlaResult recorded = run_async(async_options(2));
  ::unsetenv("GPTUNE_RECORD");

  std::string error;
  auto log = CompletionLog::load(path, &error);
  ASSERT_TRUE(log.has_value()) << error;
  EXPECT_EQ(log->size(), recorded.completion_log.size());

  ::setenv("GPTUNE_REPLAY", path.c_str(), 1);
  const MlaResult replayed = run_async(async_options(2));
  ::unsetenv("GPTUNE_REPLAY");
  std::remove(path.c_str());
  expect_same_trajectory(recorded, replayed);
  expect_same_log(recorded.completion_log, replayed.completion_log);
}

TEST(AsyncMla, MissingReplayFileThrows) {
  ::setenv("GPTUNE_REPLAY", "test_async_pipeline_no_such_log.json", 1);
  EXPECT_THROW(run_async(async_options(2)), std::runtime_error);
  ::unsetenv("GPTUNE_REPLAY");
}

}  // namespace
