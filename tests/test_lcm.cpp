// Tests for the LCM multitask GP — the paper's core machinery: covariance
// structure (Eq. 4), exact analytic gradients of the log marginal
// likelihood (property sweep over random shapes and hyperparameters),
// posterior prediction (Eqs. 5-6), cross-task information transfer, and the
// multi-start trainer including its spawned-worker parallel path.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gp/kernel.hpp"
#include "gp/lcm.hpp"
#include "gp/trainer.hpp"
#include "linalg/eigen_sym.hpp"

namespace {

using namespace gptune::gp;
using gptune::common::Rng;

MultiTaskData random_data(std::size_t tasks, std::size_t samples,
                          std::size_t dim, Rng& rng) {
  MultiTaskData data;
  for (std::size_t i = 0; i < tasks; ++i) {
    Matrix x(samples, dim);
    Vector y(samples);
    for (std::size_t j = 0; j < samples; ++j) {
      for (std::size_t m = 0; m < dim; ++m) x(j, m) = rng.uniform();
      y[j] = rng.normal();
    }
    data.x.push_back(std::move(x));
    data.y.push_back(std::move(y));
  }
  return data;
}

TEST(MultiTaskData, FlattenLayout) {
  Rng rng(1);
  auto data = random_data(3, 4, 2, rng);
  Matrix ax;
  Vector ay;
  std::vector<std::size_t> task_of;
  data.flatten(&ax, &ay, &task_of);
  EXPECT_EQ(ax.rows(), 12u);
  EXPECT_EQ(ay.size(), 12u);
  EXPECT_EQ(task_of[0], 0u);
  EXPECT_EQ(task_of[4], 1u);
  EXPECT_EQ(task_of[11], 2u);
  EXPECT_DOUBLE_EQ(ax(5, 1), data.x[1](1, 1));
  EXPECT_DOUBLE_EQ(ay[9], data.y[2][1]);
}

TEST(MultiTaskData, RaggedSampleCounts) {
  MultiTaskData data;
  data.x.push_back(Matrix(2, 1, 0.5));
  data.y.push_back({1.0, 2.0});
  data.x.push_back(Matrix(3, 1, 0.2));
  data.y.push_back({3.0, 4.0, 5.0});
  EXPECT_EQ(data.total_samples(), 5u);
  Matrix ax;
  Vector ay;
  std::vector<std::size_t> task_of;
  data.flatten(&ax, &ay, &task_of);
  EXPECT_EQ(task_of, (std::vector<std::size_t>{0, 0, 1, 1, 1}));
}

TEST(LcmShape, ParameterLayoutDisjointAndComplete) {
  LcmShape s;
  s.num_latent = 2;
  s.dim = 3;
  s.num_tasks = 4;
  EXPECT_EQ(s.num_hyperparameters(), 2u * 3u + 2u * 2u * 4u + 4u);
  std::vector<bool> used(s.num_hyperparameters(), false);
  auto mark = [&](std::size_t idx) {
    ASSERT_LT(idx, used.size());
    EXPECT_FALSE(used[idx]);
    used[idx] = true;
  };
  for (std::size_t q = 0; q < 2; ++q) {
    for (std::size_t m = 0; m < 3; ++m) mark(s.idx_log_l(q, m));
    for (std::size_t i = 0; i < 4; ++i) mark(s.idx_a(q, i));
    for (std::size_t i = 0; i < 4; ++i) mark(s.idx_log_b(q, i));
  }
  for (std::size_t i = 0; i < 4; ++i) mark(s.idx_log_d(i));
  for (bool u : used) EXPECT_TRUE(u);
}

TEST(LcmCovariance, SymmetricAndPsd) {
  Rng rng(2);
  LcmShape shape{2, 2, 3};
  auto data = random_data(3, 5, 2, rng);
  Matrix ax;
  Vector ay;
  std::vector<std::size_t> task_of;
  data.flatten(&ax, &ay, &task_of);
  const auto theta = random_lcm_theta(shape, rng);
  const Matrix k = lcm_covariance(shape, theta, ax, task_of);
  EXPECT_LT(Matrix::max_abs_diff(k, k.transpose()), 1e-12);
  EXPECT_GT(gptune::linalg::min_eigenvalue(k), 0.0);  // d_i nugget makes PD
}

TEST(LcmCovariance, SingleTaskReducesToScaledSeKernel) {
  // With Q = 1, delta = 1: K = (a^2 + b) k(x, x') + d I.
  Rng rng(3);
  LcmShape shape{1, 2, 1};
  std::vector<double> theta(shape.num_hyperparameters());
  theta[shape.idx_log_l(0, 0)] = std::log(0.5);
  theta[shape.idx_log_l(0, 1)] = std::log(0.7);
  theta[shape.idx_a(0, 0)] = 2.0;
  theta[shape.idx_log_b(0, 0)] = std::log(0.25);
  theta[shape.idx_log_d(0)] = std::log(0.01);

  Matrix x(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    x(i, 0) = rng.uniform();
    x(i, 1) = rng.uniform();
  }
  const std::vector<std::size_t> task_of = {0, 0, 0};
  const Matrix k = lcm_covariance(shape, theta, x, task_of);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      Vector xi = {x(i, 0), x(i, 1)}, xj = {x(j, 0), x(j, 1)};
      double expected = (4.0 + 0.25) * se_ard(xi, xj, {0.5, 0.7});
      if (i == j) expected += 0.01;
      EXPECT_NEAR(k(i, j), expected, 1e-12);
    }
  }
}

TEST(LcmCovariance, CrossTaskEntriesUseOnlyMixingTerms) {
  // Between different tasks the b and d terms must not appear.
  LcmShape shape{1, 1, 2};
  std::vector<double> theta(shape.num_hyperparameters(), 0.0);
  theta[shape.idx_log_l(0, 0)] = std::log(1.0);
  theta[shape.idx_a(0, 0)] = 1.5;
  theta[shape.idx_a(0, 1)] = -2.0;
  theta[shape.idx_log_b(0, 0)] = std::log(10.0);  // must not leak cross-task
  theta[shape.idx_log_b(0, 1)] = std::log(10.0);
  theta[shape.idx_log_d(0)] = std::log(5.0);
  theta[shape.idx_log_d(1)] = std::log(5.0);

  Matrix x(2, 1);
  x(0, 0) = 0.3;
  x(1, 0) = 0.3;  // same point, different tasks
  const std::vector<std::size_t> task_of = {0, 1};
  const Matrix k = lcm_covariance(shape, theta, x, task_of);
  EXPECT_NEAR(k(0, 1), 1.5 * -2.0 * 1.0, 1e-12);
}

// --- gradient property sweep over random shapes ---

struct LcmSweepParam {
  std::size_t q, dim, tasks, samples;
  std::uint64_t seed;
};

class LcmGradientSweep : public ::testing::TestWithParam<LcmSweepParam> {};

TEST_P(LcmGradientSweep, AnalyticMatchesFiniteDifference) {
  const auto p = GetParam();
  Rng rng(p.seed);
  LcmShape shape{p.q, p.dim, p.tasks};
  auto data = random_data(p.tasks, p.samples, p.dim, rng);
  Matrix ax;
  Vector ay;
  std::vector<std::size_t> task_of;
  data.flatten(&ax, &ay, &task_of);
  const auto theta = random_lcm_theta(shape, rng);

  std::vector<double> grad;
  auto lml = lcm_lml(shape, theta, ax, ay, task_of, &grad);
  ASSERT_TRUE(lml.has_value());
  ASSERT_EQ(grad.size(), theta.size());

  const double h = 1e-5;
  for (std::size_t k = 0; k < theta.size(); ++k) {
    auto tp = theta, tm = theta;
    tp[k] += h;
    tm[k] -= h;
    auto lp = lcm_lml(shape, tp, ax, ay, task_of, nullptr);
    auto lm = lcm_lml(shape, tm, ax, ay, task_of, nullptr);
    ASSERT_TRUE(lp && lm);
    const double fd = (*lp - *lm) / (2.0 * h);
    EXPECT_NEAR(grad[k], fd, 2e-4 * (std::abs(fd) + 1.0))
        << "theta component " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LcmGradientSweep,
    ::testing::Values(LcmSweepParam{1, 1, 1, 6, 11},
                      LcmSweepParam{1, 2, 2, 5, 12},
                      LcmSweepParam{2, 3, 3, 6, 13},
                      LcmSweepParam{3, 2, 4, 4, 14},
                      LcmSweepParam{2, 1, 5, 5, 15},
                      LcmSweepParam{4, 2, 2, 7, 16}));

// --- posterior behaviour ---

TEST(LcmModel, InterpolatesEachTask) {
  Rng rng(20);
  // Two related tasks: y = sin(5x) and y = sin(5x) + 0.5.
  MultiTaskData data;
  for (int task = 0; task < 2; ++task) {
    Matrix x(12, 1);
    Vector y(12);
    for (std::size_t j = 0; j < 12; ++j) {
      x(j, 0) = static_cast<double>(j) / 11.0;
      y[j] = std::sin(5.0 * x(j, 0)) + 0.5 * task;
    }
    data.x.push_back(x);
    data.y.push_back(y);
  }
  LcmFitOptions opt;
  opt.num_restarts = 3;
  opt.seed = 99;
  auto model = fit_lcm(data, opt);
  ASSERT_TRUE(model.has_value());
  for (int task = 0; task < 2; ++task) {
    for (std::size_t j = 0; j < 12; ++j) {
      const double x = static_cast<double>(j) / 11.0;
      const auto pred = model->predict(task, {x});
      EXPECT_NEAR(pred.mean, std::sin(5.0 * x) + 0.5 * task, 0.15)
          << "task " << task << " x " << x;
    }
  }
}

TEST(LcmModel, TransfersAcrossTasks) {
  // Task 0 has dense samples of sin(4x); task 1 has only 3 samples of the
  // strongly correlated 2*sin(4x). The multitask posterior for task 1
  // should beat a prior-mean prediction in between its samples.
  Rng rng(21);
  MultiTaskData data;
  {
    Matrix x(15, 1);
    Vector y(15);
    for (std::size_t j = 0; j < 15; ++j) {
      x(j, 0) = static_cast<double>(j) / 14.0;
      y[j] = std::sin(4.0 * x(j, 0));
    }
    data.x.push_back(x);
    data.y.push_back(y);
  }
  {
    Matrix x(3, 1);
    Vector y(3);
    const double xs[3] = {0.0, 0.5, 1.0};
    for (std::size_t j = 0; j < 3; ++j) {
      x(j, 0) = xs[j];
      y[j] = 2.0 * std::sin(4.0 * xs[j]);
    }
    data.x.push_back(x);
    data.y.push_back(y);
  }
  LcmFitOptions opt;
  opt.num_restarts = 4;
  opt.seed = 7;
  auto model = fit_lcm(data, opt);
  ASSERT_TRUE(model.has_value());
  // Probe between task-1 samples where only transfer can help.
  double err = 0.0;
  for (double x : {0.2, 0.3, 0.7, 0.8}) {
    err = std::max(err,
                   std::abs(model->predict(1, {x}).mean -
                            2.0 * std::sin(4.0 * x)));
  }
  EXPECT_LT(err, 0.8);  // prior mean alone would err by up to ~2.8
}

TEST(LcmModel, VarianceShrinksAtData) {
  Rng rng(22);
  auto data = random_data(2, 8, 2, rng);
  LcmFitOptions opt;
  opt.seed = 5;
  auto model = fit_lcm(data, opt);
  ASSERT_TRUE(model.has_value());
  const Vector at_sample = {data.x[0](0, 0), data.x[0](0, 1)};
  const Vector far = {-5.0, 7.0};
  EXPECT_LT(model->predict(0, at_sample).variance,
            model->predict(0, far).variance);
}

TEST(LcmModel, PredictionInOriginalUnits) {
  // Task outputs around 1000: predictions must come back in that range
  // (catches missing un-standardization).
  Rng rng(23);
  MultiTaskData data;
  Matrix x(6, 1);
  Vector y(6);
  for (std::size_t j = 0; j < 6; ++j) {
    x(j, 0) = static_cast<double>(j) / 5.0;
    y[j] = 1000.0 + 50.0 * std::sin(3.0 * x(j, 0));
  }
  data.x.push_back(x);
  data.y.push_back(y);
  LcmFitOptions opt;
  opt.seed = 3;
  auto model = fit_lcm(data, opt);
  ASSERT_TRUE(model.has_value());
  const auto pred = model->predict(0, {0.5});
  EXPECT_GT(pred.mean, 900.0);
  EXPECT_LT(pred.mean, 1100.0);
}

TEST(LcmTrainer, DefaultLatentCountIsMinTasksThree) {
  Rng rng(24);
  auto data = random_data(5, 4, 1, rng);
  LcmFitOptions opt;
  opt.seed = 8;
  auto model = fit_lcm(data, opt);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(model->shape().num_latent, 3u);

  auto data2 = random_data(2, 4, 1, rng);
  auto model2 = fit_lcm(data2, opt);
  ASSERT_TRUE(model2.has_value());
  EXPECT_EQ(model2->shape().num_latent, 2u);
}

TEST(LcmTrainer, WarmStartReproducesShape) {
  Rng rng(25);
  auto data = random_data(2, 6, 2, rng);
  LcmFitOptions opt;
  opt.num_restarts = 2;
  opt.seed = 12;
  auto first = fit_lcm(data, opt);
  ASSERT_TRUE(first.has_value());
  opt.warm_start = first->theta();
  opt.num_restarts = 1;
  LcmFitStats stats;
  auto second = fit_lcm(data, opt, &stats);
  ASSERT_TRUE(second.has_value());
  // Warm-started refit should be at least as good as the first fit.
  EXPECT_GE(second->log_likelihood() + 1e-6, first->log_likelihood());
}

TEST(LcmTrainer, StatsReported) {
  Rng rng(26);
  auto data = random_data(2, 5, 1, rng);
  LcmFitOptions opt;
  opt.num_restarts = 3;
  opt.seed = 1;
  LcmFitStats stats;
  auto model = fit_lcm(data, opt, &stats);
  ASSERT_TRUE(model.has_value());
  EXPECT_EQ(stats.restarts_attempted, 3u);
  EXPECT_GT(stats.total_lbfgs_evaluations, 0u);
}

TEST(LcmTrainer, SpawnedWorkersMatchSerialQuality) {
  // The parallel (spawned ranks) path must produce a usable model whose
  // likelihood is comparable to the serial path with the same restarts.
  Rng rng(27);
  auto data = random_data(3, 5, 1, rng);
  LcmFitOptions serial;
  serial.num_restarts = 4;
  serial.seed = 2;
  serial.num_workers = 1;
  auto m1 = fit_lcm(data, serial);
  LcmFitOptions parallel = serial;
  parallel.num_workers = 4;
  auto m2 = fit_lcm(data, parallel);
  ASSERT_TRUE(m1 && m2);
  // Same restart list, same math: identical best likelihood.
  EXPECT_NEAR(m1->log_likelihood(), m2->log_likelihood(), 1e-6);
}

TEST(LcmTrainer, FitImprovesOverRandomTheta) {
  Rng rng(28);
  auto data = random_data(3, 8, 2, rng);
  LcmShape shape{3, 2, 3};
  // Standardize the way the trainer does, then compare likelihoods.
  LcmFitOptions opt;
  opt.num_latent = 3;
  opt.num_restarts = 2;
  opt.seed = 30;
  LcmFitStats stats;
  auto model = fit_lcm(data, opt, &stats);
  ASSERT_TRUE(model.has_value());
  auto random_model =
      LcmModel::build(data, shape, random_lcm_theta(shape, rng));
  ASSERT_TRUE(random_model.has_value());
  EXPECT_GT(model->log_likelihood(), random_model->log_likelihood());
}

}  // namespace
