// Telemetry layer tests: the JSON reader, the metrics registry, span
// recording, and the ISSUE acceptance test — the same MLA seed with
// telemetry off and on yields a bitwise-identical trajectory, a valid
// Chrome trace covering all three phases with >= 2 distinct worker
// identities, and a metrics snapshot with nonzero eval/trainer counters.
//
// gtest_discover_tests runs each TEST in its own process, so env-toggle
// and buffered-trace state never leaks between tests.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "apps/analytical.hpp"
#include "common/log.hpp"
#include "common/telemetry/json.hpp"
#include "common/telemetry/telemetry.hpp"
#include "core/mla.hpp"

namespace {

using namespace gptune;
using telemetry::JsonValue;

// --- JSON reader ------------------------------------------------------------

TEST(TelemetryJson, ParsesScalarsArraysObjects) {
  std::string error;
  const JsonValue v = JsonValue::parse(
      "{\"a\": 1.5, \"b\": [true, false, null, \"x\\ny\"], \"c\": {}}",
      &error);
  EXPECT_TRUE(error.empty()) << error;
  ASSERT_TRUE(v.is_object());
  ASSERT_NE(v.find("a"), nullptr);
  EXPECT_DOUBLE_EQ(v.find("a")->as_number(), 1.5);
  ASSERT_NE(v.find("b"), nullptr);
  ASSERT_TRUE(v.find("b")->is_array());
  const auto& items = v.find("b")->items();
  ASSERT_EQ(items.size(), 4u);
  EXPECT_TRUE(items[0].as_bool());
  EXPECT_FALSE(items[1].as_bool());
  EXPECT_TRUE(items[2].is_null());
  EXPECT_EQ(items[3].as_string(), "x\ny");
  ASSERT_NE(v.find("c"), nullptr);
  EXPECT_TRUE(v.find("c")->is_object());
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(TelemetryJson, PreservesObjectMemberOrder) {
  std::string error;
  const JsonValue v =
      JsonValue::parse("{\"z\": 1, \"a\": 2, \"m\": 3}", &error);
  EXPECT_TRUE(error.empty());
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(TelemetryJson, ReportsErrors) {
  std::string error;
  JsonValue::parse("{\"a\": }", &error);
  EXPECT_FALSE(error.empty());
  error.clear();
  JsonValue::parse("[1, 2", &error);
  EXPECT_FALSE(error.empty());
  error.clear();
  JsonValue::parse("{} trailing", &error);
  EXPECT_FALSE(error.empty());
  // Negative/exponent numbers parse.
  const JsonValue n = JsonValue::parse("-1.25e2", &error);
  EXPECT_TRUE(error.empty());
  EXPECT_DOUBLE_EQ(n.as_number(), -125.0);
}

#if defined(GPTUNE_TELEMETRY)

// --- metrics registry -------------------------------------------------------

TEST(TelemetryMetrics, CounterGaugeBasics) {
  auto& c = telemetry::counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  // Same name, same counter.
  EXPECT_EQ(telemetry::counter("test.counter").value(), 5u);

  auto& g = telemetry::gauge("test.gauge");
  g.set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.set(-7.0);
  EXPECT_DOUBLE_EQ(telemetry::gauge("test.gauge").value(), -7.0);
}

TEST(TelemetryMetrics, HistogramBucketsAndMoments) {
  auto& h = telemetry::histogram("test.hist");
  h.record(0.0);   // nonpositive bucket
  h.record(1.0);
  h.record(1.5);   // same power-of-two bucket as 1.0
  h.record(100.0);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 102.5);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 100.0);
  EXPECT_EQ(telemetry::Histogram::bucket_of(1.0),
            telemetry::Histogram::bucket_of(1.5));
  EXPECT_NE(telemetry::Histogram::bucket_of(1.0),
            telemetry::Histogram::bucket_of(100.0));
  EXPECT_EQ(telemetry::Histogram::bucket_of(-3.0), 0u);
  // bucket_floor(bucket_of(v)) <= v < next floor, for in-range v.
  const std::size_t b = telemetry::Histogram::bucket_of(13.0);
  EXPECT_LE(telemetry::Histogram::bucket_floor(b), 13.0);
  EXPECT_GT(telemetry::Histogram::bucket_floor(b + 1), 13.0);
}

TEST(TelemetryMetrics, HistogramQuantiles) {
  auto& h = telemetry::histogram("test.quantiles");
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty histogram
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));
  // Bucket-interpolated estimates: exact ranks are not promised, but every
  // quantile must be monotone, clamped to [min, max], and in the right
  // region of the distribution.
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_GE(p50, h.min());
  EXPECT_LE(p99, h.max());
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 25.0);
  EXPECT_LT(p50, 75.0);
  EXPECT_GT(p95, 64.0);  // the top power-of-two bucket holds 65..100
  // Out-of-range q clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.quantile(-1.0), h.quantile(0.0));
  EXPECT_DOUBLE_EQ(h.quantile(2.0), h.quantile(1.0));

  // The snapshot surfaces them per histogram.
  std::string error;
  const JsonValue v = JsonValue::parse(telemetry::metrics_json(), &error);
  ASSERT_TRUE(error.empty()) << error;
  const JsonValue* row = v.find("histograms")->find("test.quantiles");
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ(row->find("p50")->as_number(), p50);
  EXPECT_DOUBLE_EQ(row->find("p95")->as_number(), p95);
  EXPECT_DOUBLE_EQ(row->find("p99")->as_number(), p99);
}

TEST(TelemetryJson, WriterEscapesControlCharacters) {
  // Regression: raw control characters (< 0x20) in a span name or log line
  // must never corrupt a snapshot — the shared writer escapes them, and
  // the reader decodes them back.
  std::string nasty = "q\" b\\ n\n r\r t\t f\f b\b";
  for (char c = 1; c < 0x20; ++c) nasty.push_back(c);
  const std::string escaped = telemetry::json_escape(nasty);
  for (char c : escaped) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u)
        << "raw control char leaked into escaped output";
  }
  std::string error;
  const JsonValue round =
      JsonValue::parse("\"" + escaped + "\"", &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(round.as_string(), nasty);
}

TEST(TelemetryMetrics, SnapshotIsValidJsonWithStableOrder) {
  telemetry::counter("b.counter").add(2);
  telemetry::counter("a.counter").add(1);
  telemetry::gauge("g.x").set(1.5);
  telemetry::histogram("h.x").record(3.0);
  std::string error;
  const JsonValue v = JsonValue::parse(telemetry::metrics_json(), &error);
  ASSERT_TRUE(error.empty()) << error;
  const JsonValue* counters = v.find("counters");
  ASSERT_NE(counters, nullptr);
  // std::map registry => sorted key order in the snapshot.
  ASSERT_GE(counters->members().size(), 2u);
  EXPECT_EQ(counters->members()[0].first, "a.counter");
  EXPECT_EQ(counters->members()[1].first, "b.counter");
  EXPECT_DOUBLE_EQ(counters->find("b.counter")->as_number(), 2.0);
  const JsonValue* h = v.find("histograms");
  ASSERT_NE(h, nullptr);
  ASSERT_NE(h->find("h.x"), nullptr);
  EXPECT_DOUBLE_EQ(h->find("h.x")->find("count")->as_number(), 1.0);
  EXPECT_DOUBLE_EQ(h->find("h.x")->find("sum")->as_number(), 3.0);
}

// --- tracing ----------------------------------------------------------------

TEST(TelemetryTrace, DisabledByDefaultAndCostsNothing) {
  EXPECT_FALSE(telemetry::trace_enabled());
  { telemetry::Span span("cat", "noop"); }
  telemetry::instant("cat", "noop");
  std::string error;
  const JsonValue v = JsonValue::parse(telemetry::trace_json(), &error);
  ASSERT_TRUE(error.empty()) << error;
  // Only metadata events (if any identities registered), no X/i events.
  for (const JsonValue& e : v.find("traceEvents")->items()) {
    EXPECT_EQ(e.find("ph")->as_string(), "M");
  }
}

TEST(TelemetryTrace, RecordsSpansWithIdentityAndVirtualClock) {
  telemetry::configure_trace("unused_path.json");
  ASSERT_TRUE(telemetry::trace_enabled());
  telemetry::set_identity("rank", 3);
  EXPECT_STREQ(telemetry::identity().role, "rank");
  EXPECT_EQ(telemetry::identity().rank, 3);

  telemetry::advance_virtual(1.5);
  {
    telemetry::Span span("model", "outer");
    span.arg("n", 42.0);
    telemetry::Span inner("model", "inner");
    telemetry::instant("comm", "ping");
  }
  telemetry::configure_trace("");  // stop recording before reading back

  std::string error;
  const JsonValue v = JsonValue::parse(telemetry::trace_json(), &error);
  ASSERT_TRUE(error.empty()) << error;
  const JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);

  bool saw_outer = false, saw_inner = false, saw_instant = false;
  bool saw_thread_name = false;
  for (const JsonValue& e : events->items()) {
    const std::string& ph = e.find("ph")->as_string();
    const std::string name =
        e.find("name") != nullptr ? e.find("name")->as_string() : "";
    if (ph == "M" && name == "thread_name" &&
        e.find("args")->find("name")->as_string() == "rank/3") {
      saw_thread_name = true;
    }
    if (ph == "X" && name == "outer") {
      saw_outer = true;
      EXPECT_EQ(e.find("cat")->as_string(), "model");
      EXPECT_GE(e.find("dur")->as_number(), 0.0);
      EXPECT_DOUBLE_EQ(e.find("args")->find("vt")->as_number(), 1.5);
      EXPECT_DOUBLE_EQ(e.find("args")->find("n")->as_number(), 42.0);
    }
    if (ph == "X" && name == "inner") saw_inner = true;
    if (ph == "i" && name == "ping") {
      saw_instant = true;
      EXPECT_EQ(e.find("s")->as_string(), "t");
    }
  }
  EXPECT_TRUE(saw_thread_name);
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_instant);
  EXPECT_DOUBLE_EQ(telemetry::virtual_clock(), 1.5);
}

TEST(TelemetryTrace, EnvTogglesAreReadOnFirstUse) {
  // The no-code-changes GPTUNE_TRACE=... workflow: the lazy init reads the
  // environment on the first enabled-check. reset_for_testing un-latches
  // the toggles in case an earlier test in this process already tripped it.
  ::setenv("GPTUNE_TRACE", "env_trace.json", 1);
  ::setenv("GPTUNE_METRICS", "env_metrics.json", 1);
  telemetry::reset_for_testing();
  EXPECT_TRUE(telemetry::trace_enabled());
  EXPECT_TRUE(telemetry::metrics_enabled());
  ::unsetenv("GPTUNE_TRACE");
  ::unsetenv("GPTUNE_METRICS");
  telemetry::reset_for_testing();
  EXPECT_FALSE(telemetry::trace_enabled());
  EXPECT_FALSE(telemetry::metrics_enabled());
}

// --- log sink + identity ----------------------------------------------------

TEST(TelemetryLog, LinesCarryLevelAndIdentityThroughSink) {
  telemetry::set_identity("worker", 7);
  std::vector<std::string> lines;
  common::set_log_sink([&lines](const std::string& line) {
    lines.push_back(line);
  });
  common::set_log_level(common::LogLevel::kInfo);
  common::log_info("hello ", 42);
  common::log_debug("dropped below threshold");
  common::log_warn("world");
  common::set_log_sink(nullptr);
  common::set_log_level(common::LogLevel::kWarn);

  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0], "[INFO][worker/7] hello 42");
  EXPECT_EQ(lines[1], "[WARN][worker/7] world");
}

// --- acceptance: telemetry never perturbs the trajectory --------------------

/// Bitwise fingerprint of a tuning trajectory: every config value and
/// objective of every evaluation, in order, as exact bit patterns.
std::vector<std::uint64_t> fingerprint(const core::MlaResult& result) {
  std::vector<std::uint64_t> bits;
  auto push = [&bits](double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    std::memcpy(&b, &v, sizeof(b));
    bits.push_back(b);
  };
  for (const auto& th : result.tasks) {
    for (const auto& e : th.evals) {
      for (double v : e.config) push(v);
      for (double v : e.objectives) push(v);
    }
  }
  return bits;
}

core::MlaResult run_mla() {
  core::MlaOptions opt;
  opt.budget_per_task = 8;
  opt.model_restarts = 1;
  opt.max_lbfgs_iterations = 5;
  opt.seed = 2024;
  opt.objective_workers = 2;
  opt.search_workers = 2;
  core::MultitaskTuner tuner(apps::analytical_tuning_space(),
                             apps::analytical_fn(), opt);
  return tuner.run({{0.5}, {1.5}, {2.5}});
}

TEST(TelemetryAcceptance, TracedRunIsBitwiseIdenticalAndTraceIsComplete) {
  // Run 1: telemetry off (the default).
  ASSERT_FALSE(telemetry::trace_enabled());
  const core::MlaResult untraced = run_mla();
  const auto untraced_bits = fingerprint(untraced);
  ASSERT_FALSE(untraced_bits.empty());

  // Run 2: the same seed with GPTUNE_TRACE + GPTUNE_METRICS on.
  const std::string trace_path = "test_telemetry_trace.json";
  const std::string metrics_path = "test_telemetry_metrics.json";
  ::setenv("GPTUNE_TRACE", trace_path.c_str(), 1);
  ::setenv("GPTUNE_METRICS", metrics_path.c_str(), 1);
  telemetry::configure_trace(trace_path);
  telemetry::configure_metrics(metrics_path);
  const core::MlaResult traced = run_mla();
  telemetry::flush();              // writes both configured paths
  telemetry::configure_trace("");  // then stop recording

  // Determinism contract: bitwise-identical trajectory.
  EXPECT_EQ(fingerprint(traced), untraced_bits);
  // And the profile rollup covers the three phases in fixed order.
  ASSERT_EQ(traced.profiles.size(), 3u);
  EXPECT_EQ(traced.profiles[0].phase, "objective");
  EXPECT_EQ(traced.profiles[1].phase, "modeling");
  EXPECT_EQ(traced.profiles[2].phase, "search");
  EXPECT_GT(traced.profiles[0].invocations, 0u);
  // Invocations share one unit — how many times the phase body ran. The
  // sync loop runs one model fit and one search round per iteration, and
  // one evaluation round per iteration plus the sampling round.
  EXPECT_EQ(traced.profiles[1].invocations, traced.profiles[2].invocations);
  EXPECT_EQ(traced.profiles[0].invocations,
            traced.profiles[2].invocations + 1);

  // The emitted trace must parse as Chrome trace_event JSON...
  std::FILE* f = std::fopen(trace_path.c_str(), "rb");
  ASSERT_NE(f, nullptr) << "flush() did not write " << trace_path;
  std::string trace_text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    trace_text.append(buf, n);
  }
  std::fclose(f);
  std::string error;
  const JsonValue trace = JsonValue::parse(trace_text, &error);
  ASSERT_TRUE(error.empty()) << error;
  const JsonValue* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());

  // ...containing spans from all three phases, with >= 2 distinct rank
  // identities among the objective spans (objective_workers = 2).
  std::set<std::string> cats;
  std::set<int> objective_tids;
  for (const JsonValue& e : events->items()) {
    if (e.find("ph")->as_string() != "X") continue;
    const JsonValue* cat = e.find("cat");
    if (cat == nullptr) continue;
    cats.insert(cat->as_string());
    if (cat->as_string() == "objective" &&
        e.find("name")->as_string() == "eval_item") {
      objective_tids.insert(static_cast<int>(e.find("tid")->as_number()));
    }
  }
  EXPECT_TRUE(cats.count("model")) << "no model-phase spans";
  EXPECT_TRUE(cats.count("search")) << "no search-phase spans";
  EXPECT_TRUE(cats.count("objective")) << "no objective-phase spans";
  EXPECT_GE(objective_tids.size(), 2u)
      << "expected eval_item spans from >= 2 worker identities";

  // The metrics snapshot has nonzero eval and trainer counters.
  std::FILE* mf = std::fopen(metrics_path.c_str(), "rb");
  ASSERT_NE(mf, nullptr) << "flush() did not write " << metrics_path;
  std::string metrics_text;
  while ((n = std::fread(buf, 1, sizeof(buf), mf)) > 0) {
    metrics_text.append(buf, n);
  }
  std::fclose(mf);
  const JsonValue metrics = JsonValue::parse(metrics_text, &error);
  ASSERT_TRUE(error.empty()) << error;
  const JsonValue* counters = metrics.find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_NE(counters->find("eval.items"), nullptr);
  EXPECT_GT(counters->find("eval.items")->as_number(), 0.0);
  ASSERT_NE(counters->find("trainer.restarts"), nullptr);
  EXPECT_GT(counters->find("trainer.restarts")->as_number(), 0.0);

  ::unsetenv("GPTUNE_TRACE");
  ::unsetenv("GPTUNE_METRICS");
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

#else  // !GPTUNE_TELEMETRY

TEST(Telemetry, CompiledOut) {
  // -DGPTUNE_TELEMETRY=OFF: every hook is an inline no-op; just prove the
  // API surface still links and returns its neutral values.
  EXPECT_FALSE(telemetry::trace_enabled());
  telemetry::Span span("cat", "noop");
  telemetry::counter("x").add();
  EXPECT_EQ(telemetry::counter("x").value(), 0u);
  std::string error;
  JsonValue::parse(telemetry::trace_json(), &error);
  EXPECT_TRUE(error.empty());
}

#endif  // GPTUNE_TELEMETRY

}  // namespace
