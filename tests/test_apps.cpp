// Sanity tests for the application simulators: determinism per seed/trial,
// monotone scaling in task size, interior optima in the tuning parameters,
// and the qualitative structure each paper experiment relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/analytical.hpp"
#include "apps/hypre_sim.hpp"
#include "apps/machine.hpp"
#include "apps/mhd_sim.hpp"
#include "apps/scalapack_sim.hpp"
#include "apps/superlu_sim.hpp"

namespace {

using namespace gptune::apps;
using gptune::core::Config;
using gptune::core::TaskVector;

// --- analytical (Eq. 11) ---

TEST(Analytical, MatchesFormulaAtKnownPoint) {
  // At x = 0: cos = 1, all sin terms are 0 => y = 1.
  EXPECT_NEAR(analytical_objective(1.0, 0.0), 1.0, 1e-12);
}

TEST(Analytical, EnvelopeBoundsFunction) {
  // |y - 1| <= 5 * exp(-(x+1)^(t+1)).
  for (double t : {0.0, 2.0, 5.0}) {
    for (double x = 0.0; x <= 1.0; x += 0.01) {
      const double bound = 5.0 * std::exp(-std::pow(x + 1.0, t + 1.0));
      EXPECT_LE(std::abs(analytical_objective(t, x) - 1.0), bound + 1e-9);
    }
  }
}

TEST(Analytical, HigherTaskMoreOscillatory) {
  // Count sign changes of the derivative (sampled) as a roughness proxy.
  auto roughness = [](double t) {
    int changes = 0;
    double prev = analytical_objective(t, 0.0);
    double prev_diff = 0.0;
    for (double x = 0.001; x <= 0.3; x += 0.001) {
      const double v = analytical_objective(t, x);
      const double diff = v - prev;
      if (diff * prev_diff < 0.0) ++changes;
      prev = v;
      prev_diff = diff;
    }
    return changes;
  };
  EXPECT_GT(roughness(6.0), roughness(0.0));
}

TEST(Analytical, TrueMinimumBelowOne) {
  for (double t : {0.0, 1.0, 3.0}) {
    EXPECT_LT(analytical_true_minimum(t, 20001), 1.0);
  }
}

TEST(Analytical, NoisyModelDeterministicAndClose) {
  const double a = analytical_noisy_model(2.0, 0.4, 7);
  const double b = analytical_noisy_model(2.0, 0.4, 7);
  EXPECT_DOUBLE_EQ(a, b);
  const double c = analytical_noisy_model(2.0, 0.4, 8);
  EXPECT_NE(a, c);
  // 10% noise: the model tracks the objective.
  const double y = analytical_objective(2.0, 0.4);
  EXPECT_NEAR(a, y, std::abs(y) * 0.5 + 1e-9);
}

TEST(Analytical, TunerAdapter) {
  const auto fn = analytical_fn();
  const auto out = fn({1.5}, {0.3});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0], analytical_objective(1.5, 0.3));
}

// --- PDGEQRF ---

class PdgeqrfTest : public ::testing::Test {
 protected:
  MachineConfig mc_{64, 32};  // paper: 64 Cori nodes
  PdgeqrfSim sim_{mc_};
  TaskVector task_{10000, 10000};
  Config good_{64, 1024, 32};  // b, p, p_r
};

TEST_F(PdgeqrfTest, DeterministicPerTrial) {
  EXPECT_DOUBLE_EQ(sim_.runtime(task_, good_, 0), sim_.runtime(task_, good_, 0));
  EXPECT_NE(sim_.runtime(task_, good_, 0), sim_.runtime(task_, good_, 1));
}

TEST_F(PdgeqrfTest, BestOfTrialsIsMin) {
  const double b3 = sim_.best_of_trials(task_, good_, 3);
  for (int t = 0; t < 3; ++t) {
    EXPECT_LE(b3, sim_.runtime(task_, good_, t) + 1e-15);
  }
}

TEST_F(PdgeqrfTest, RuntimeGrowsWithMatrixSize) {
  const double small = sim_.best_of_trials({4000, 4000}, good_);
  const double large = sim_.best_of_trials({20000, 20000}, good_);
  EXPECT_GT(large, 5.0 * small);  // O(n^3): 125x flops, comm dilutes it
}

TEST_F(PdgeqrfTest, BlockSizeHasInteriorOptimum) {
  const double tiny = sim_.best_of_trials(task_, {4, 1024, 32});
  const double mid = sim_.best_of_trials(task_, {64, 1024, 32});
  const double huge = sim_.best_of_trials(task_, {512, 1024, 32});
  EXPECT_LT(mid, tiny);
  EXPECT_LT(mid, huge);
}

TEST_F(PdgeqrfTest, ExtremeGridAspectIsSlow) {
  const double balanced = sim_.best_of_trials(task_, {64, 1024, 32});
  const double column_grid = sim_.best_of_trials(task_, {64, 1024, 1024});
  EXPECT_LT(balanced, column_grid);
}

TEST_F(PdgeqrfTest, WideMatrixPositiveAndSymmetric) {
  // Regression: m < n made the Eq. (10) volume term negative. A wide QR
  // must cost the same as the tall QR of the transpose.
  const double wide = sim_.best_of_trials({10000, 30000}, good_);
  const double tall = sim_.best_of_trials({30000, 10000}, good_);
  EXPECT_GT(wide, 0.0);
  // Identical cost model; only the measurement noise (hashed from the raw
  // task vector) differs between the two orientations.
  EXPECT_NEAR(wide, tall, 0.25 * tall);
  for (double b : {8.0, 64.0, 512.0}) {
    EXPECT_GT(sim_.runtime({5000, 18000}, {b, 512, 16}), 0.0);
  }
}

TEST_F(PdgeqrfTest, QrFlopsFormula) {
  EXPECT_DOUBLE_EQ(PdgeqrfSim::qr_flops(3000, 3000),
                   2.0 * 9e6 * 6000.0 / 3.0);
}

TEST_F(PdgeqrfTest, ModelFeaturesPositive) {
  const auto f = PdgeqrfSim::model_features(task_, good_);
  ASSERT_EQ(f.size(), 3u);
  for (double v : f) EXPECT_GT(v, 0.0);
}

TEST_F(PdgeqrfTest, PerformanceModelCorrelatesWithRuntime) {
  // The Eq. 7 model (even with textbook coefficients) must rank a good
  // configuration under a terrible one.
  auto model = sim_.make_performance_model();
  const Config bad = {4, 128, 128};
  EXPECT_LT(model.evaluate(task_, good_)[0], model.evaluate(task_, bad)[0]);
}

TEST_F(PdgeqrfTest, TuningSpaceConstraint) {
  auto space = sim_.tuning_space();
  EXPECT_EQ(space.dim(), 3u);
  EXPECT_FALSE(space.feasible({64, 128, 256}));  // p_r > p
  EXPECT_TRUE(space.feasible({64, 256, 128}));
}

// --- PDSYEVX ---

TEST(Pdsyevx, CubicScalingInM) {
  PdsyevxSim sim{MachineConfig{1, 32}};
  const Config x = {32, 32, 4};
  const double t1 = sim.best_of_trials({3000}, x);
  const double t2 = sim.best_of_trials({7000}, x);
  // (7/3)^3 = 12.7; communication dilutes, expect at least ~6x.
  EXPECT_GT(t2, 6.0 * t1);
}

TEST(Pdsyevx, ProcessCountTradeoffExists) {
  PdsyevxSim sim{MachineConfig{1, 32}};
  // With one node, more MPI processes means fewer threads each; both
  // extremes should lose against something in between or be close.
  const double p1 = sim.best_of_trials({7000}, {32, 1, 1});
  const double p32 = sim.best_of_trials({7000}, {32, 32, 4});
  EXPECT_GT(p1, 0.0);
  EXPECT_GT(p32, 0.0);
}

TEST(Pdsyevx, ObjectiveAdapterShape) {
  PdsyevxSim sim{MachineConfig{1, 32}};
  const auto out = sim.objective(3)({5000}, {32, 16, 4});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_GT(out[0], 0.0);
}

// --- SuperLU ---

TEST(Superlu, CatalogHasPaperMatrices) {
  const auto& cat = SuperluSim::catalog();
  EXPECT_EQ(cat.size(), 8u);
  EXPECT_EQ(SuperluSim::matrix_index("Si2"), 0u);
  EXPECT_EQ(SuperluSim::matrix_index("SiO"), 7u);
  EXPECT_THROW(SuperluSim::matrix_index("nope"), std::out_of_range);
}

TEST(Superlu, LargerMatrixTakesLonger) {
  SuperluSim sim{MachineConfig{8, 32}};
  const Config x = SuperluSim::default_config();
  const double si2 = sim.factorize({0}, x).time_seconds;    // Si2 (small)
  const double sio = sim.factorize({7}, x).time_seconds;    // SiO (large)
  EXPECT_GT(sio, 10.0 * si2);
}

TEST(Superlu, NaturalOrderingIsWorst) {
  SuperluSim sim{MachineConfig{8, 32}};
  for (double matrix : {1.0, 5.0, 7.0}) {
    Config natural = SuperluSim::default_config();
    natural[0] = 0;  // NATURAL
    Config metis = SuperluSim::default_config();
    metis[0] = 3;  // METIS
    EXPECT_GT(sim.factorize({matrix}, natural).time_seconds,
              sim.factorize({matrix}, metis).time_seconds);
  }
}

TEST(Superlu, TimeMemoryTradeoffInNsup) {
  // Large supernodes: faster, more memory. Small: slower, leaner — the
  // structure behind the paper's Fig. 7 Pareto front and Table 5.
  SuperluSim sim{MachineConfig{8, 32}};
  Config small_nsup = SuperluSim::default_config();
  small_nsup[4] = 32;
  Config large_nsup = SuperluSim::default_config();
  large_nsup[4] = 320;
  const auto rs = sim.factorize({6}, small_nsup);
  const auto rl = sim.factorize({6}, large_nsup);
  EXPECT_LT(rl.time_seconds, rs.time_seconds);
  EXPECT_GT(rl.memory_bytes, rs.memory_bytes);
}

TEST(Superlu, LookaheadHelpsThenSaturates) {
  SuperluSim sim{MachineConfig{8, 32}};
  Config look2 = SuperluSim::default_config();
  look2[1] = 2;
  Config look10 = SuperluSim::default_config();
  look10[1] = 10;
  EXPECT_GT(sim.factorize({6}, look2).time_seconds,
            sim.factorize({6}, look10).time_seconds);
}

TEST(Superlu, MultiObjectiveAdapterShape) {
  SuperluSim sim{MachineConfig{8, 32}};
  const auto out = sim.objective_time_memory()({0}, SuperluSim::default_config());
  ASSERT_EQ(out.size(), 2u);
  EXPECT_GT(out[0], 0.0);
  EXPECT_GT(out[1], 0.0);
}

TEST(Superlu, DeterministicPerTrial) {
  SuperluSim sim;
  const auto a = sim.factorize({3}, SuperluSim::default_config(), 5);
  const auto b = sim.factorize({3}, SuperluSim::default_config(), 5);
  EXPECT_DOUBLE_EQ(a.time_seconds, b.time_seconds);
  EXPECT_DOUBLE_EQ(a.memory_bytes, b.memory_bytes);
}

// --- hypre ---

TEST(Hypre, TwelveParameters) {
  HypreSim sim{MachineConfig{1, 32}};
  EXPECT_EQ(sim.tuning_space().dim(), 12u);
}

TEST(Hypre, ProcessGridConstraint) {
  HypreSim sim{MachineConfig{1, 32}};
  auto space = sim.tuning_space();
  Config c = {1, 1, 0, 0.5, 0.1, 4, 1, 1.0, 1.0, 4, 4, 2};  // 32 procs: ok
  EXPECT_TRUE(space.feasible(c));
  c[9] = 8;
  c[10] = 8;
  c[11] = 8;  // 512 > 32
  EXPECT_FALSE(space.feasible(c));
}

TEST(Hypre, LargerGridTakesLonger) {
  // A 20^3 grid on 32 processes is latency bound, so the gap is smaller
  // than the 125x point ratio; it must still be decisively slower.
  HypreSim sim{MachineConfig{1, 32}};
  const Config x = {1, 1, 3, 0.4, 0.05, 4, 1, 1.0, 1.0, 4, 4, 2};
  const double small = sim.solve_time({20, 20, 20}, x);
  const double large = sim.solve_time({100, 100, 100}, x);
  EXPECT_GT(large, 5.0 * small);
}

TEST(Hypre, StrongThresholdHasInteriorOptimum) {
  HypreSim sim{MachineConfig{1, 32}};
  const TaskVector task = {60, 60, 60};
  auto with_theta = [&](double theta) {
    const Config x = {1, 1, 3, theta, 0.05, 4, 1, 1.0, 1.0, 4, 4, 2};
    return sim.iterations(task, x);
  };
  // Iterations at the extremes should exceed a mid value.
  const double lo = with_theta(0.1);
  const double mid = with_theta(0.45);
  const double hi = with_theta(0.9);
  EXPECT_LE(mid, lo);
  EXPECT_LE(mid, hi);
}

TEST(Hypre, IterationCountDrivesTime) {
  HypreSim sim{MachineConfig{1, 32}};
  const TaskVector task = {50, 50, 50};
  // Jacobi (weak smoother) needs more iterations than Chebyshev.
  Config jacobi = {2, 0, 1, 0.4, 0.05, 4, 1, 1.0, 1.0, 4, 4, 2};
  Config cheby = jacobi;
  cheby[1] = 3;
  EXPECT_GT(sim.iterations(task, jacobi), sim.iterations(task, cheby));
}

TEST(Hypre, DecompositionAffectsTime) {
  HypreSim sim{MachineConfig{1, 32}};
  const TaskVector task = {100, 100, 10};  // slab-shaped domain
  const Config balanced = {1, 1, 3, 0.4, 0.05, 4, 1, 1.0, 1.0, 8, 4, 1};
  const Config bad = {1, 1, 3, 0.4, 0.05, 4, 1, 1.0, 1.0, 1, 1, 32};
  EXPECT_LT(sim.solve_time(task, balanced, 0),
            sim.solve_time(task, bad, 0));
}

// --- MHD codes ---

TEST(M3dc1, RuntimeScalesWithSteps) {
  // Periodic refactorization plus per-step solves: super-linear in chunks
  // of refactor_every, bounded by perfectly linear scaling.
  M3dc1Sim sim{MachineConfig{1, 32}};
  const Config x = {1, 3, 4, 128, 20};
  const double t1 = sim.runtime({1}, x);
  const double t10 = sim.runtime({10}, x);
  EXPECT_GT(t10, 3.0 * t1);
  EXPECT_LT(t10, 20.0 * t1);
}

TEST(M3dc1, OptimalConfigStableAcrossSteps) {
  // The paper's trick: tune on few steps, deploy on many. The ordering of
  // two configurations must be preserved between t=1 and t=15.
  M3dc1Sim sim{MachineConfig{1, 32}};
  const Config good = {1, 3, 4, 192, 24};
  const Config bad = {0, 0, 32, 16, 4};
  EXPECT_LT(sim.runtime({1}, good), sim.runtime({1}, bad));
  EXPECT_LT(sim.runtime({15}, good), sim.runtime({15}, bad));
}

TEST(M3dc1, FiveTuningParameters) {
  M3dc1Sim sim{MachineConfig{1, 32}};
  EXPECT_EQ(sim.tuning_space().dim(), 5u);
}

TEST(Nimrod, SevenTuningParameters) {
  NimrodSim sim;
  EXPECT_EQ(sim.tuning_space().dim(), 7u);
}

TEST(Nimrod, AssemblyBlockingHasInteriorOptimum) {
  NimrodSim sim;
  auto with_blocks = [&](double nb) {
    return sim.runtime({5}, {1, 3, 8, 128, 20, nb, nb});
  };
  const double b1 = with_blocks(1);
  const double b8 = with_blocks(8);
  const double b32 = with_blocks(32);
  EXPECT_LT(b8, b1);
  EXPECT_LT(b8, b32);
}

TEST(Nimrod, StepsDominateRuntime) {
  NimrodSim sim;
  const Config x = {1, 3, 8, 128, 20, 8, 8};
  EXPECT_GT(sim.runtime({15}, x), 3.0 * sim.runtime({3}, x));
}

TEST(MachineModel, BlockEfficiencyMonotone) {
  EXPECT_LT(MachineConfig::block_efficiency(4),
            MachineConfig::block_efficiency(64));
  EXPECT_LT(MachineConfig::block_efficiency(64), 1.0);
}

TEST(MachineModel, HashDeterministic) {
  EXPECT_EQ(hash_double(1, 3.14), hash_double(1, 3.14));
  EXPECT_NE(hash_double(1, 3.14), hash_double(2, 3.14));
  EXPECT_NE(hash_double(1, 3.14), hash_double(1, 3.15));
}

}  // namespace
