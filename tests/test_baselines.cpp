// Tests for the baseline tuners (OpenTuner-lite bandit ensemble and
// HpBandSter-lite TPE) through the common SingleTaskTuner interface.
#include <gtest/gtest.h>

#include <cmath>

#include "baselines/hpbandster_lite.hpp"
#include "baselines/opentuner_lite.hpp"
#include "baselines/single_task_gptune.hpp"
#include "baselines/ytopt_lite.hpp"
#include "opt/direct_search.hpp"

namespace {

using namespace gptune;
using namespace gptune::baselines;

core::Space quadratic_space() {
  core::Space s;
  s.add_real("x", 0.0, 1.0);
  s.add_real("y", 0.0, 1.0);
  return s;
}

core::MultiObjectiveFn quadratic_fn() {
  return [](const core::TaskVector& t, const core::Config& c) {
    const double dx = c[0] - t[0], dy = c[1] - t[1];
    return std::vector<double>{dx * dx + dy * dy + 0.01};
  };
}

core::Space mixed_space() {
  core::Space s;
  s.add_categorical("alg", {"slow", "fast", "medium"});
  s.add_integer("n", 1, 64, true);
  s.add_real("w", 0.0, 1.0);
  return s;
}

core::MultiObjectiveFn mixed_fn() {
  // Best: alg=fast (index 1), n near 16, w near 0.3.
  return [](const core::TaskVector&, const core::Config& c) {
    const double alg_penalty = c[0] == 1 ? 0.0 : (c[0] == 2 ? 0.5 : 1.0);
    const double n_penalty = std::abs(std::log2(c[1] / 16.0));
    const double w_penalty = 4.0 * (c[2] - 0.3) * (c[2] - 0.3);
    return std::vector<double>{alg_penalty + n_penalty + w_penalty + 0.1};
  };
}

class BaselineSuite
    : public ::testing::TestWithParam<std::shared_ptr<SingleTaskTuner>> {};

TEST_P(BaselineSuite, SpendsExactBudget) {
  auto tuner = GetParam();
  auto history = tuner->tune({0.5, 0.5}, quadratic_space(), quadratic_fn(),
                             15, 1);
  EXPECT_EQ(history.evals.size(), 15u);
}

TEST_P(BaselineSuite, SolvesEasyQuadratic) {
  auto tuner = GetParam();
  auto history = tuner->tune({0.4, 0.6}, quadratic_space(), quadratic_fn(),
                             60, 2);
  EXPECT_LT(history.best(), 0.05);
}

TEST_P(BaselineSuite, HandlesMixedSpace) {
  auto tuner = GetParam();
  auto history = tuner->tune({0.0}, mixed_space(), mixed_fn(), 40, 3);
  // All configs valid.
  for (const auto& e : history.evals) {
    EXPECT_GE(e.config[0], 0.0);
    EXPECT_LE(e.config[0], 2.0);
    EXPECT_GE(e.config[1], 1.0);
    EXPECT_LE(e.config[1], 64.0);
  }
  EXPECT_LT(history.best(), 1.2);
}

TEST_P(BaselineSuite, DeterministicPerSeed) {
  auto tuner = GetParam();
  auto h1 = tuner->tune({0.5, 0.5}, quadratic_space(), quadratic_fn(), 12, 7);
  auto h2 = tuner->tune({0.5, 0.5}, quadratic_space(), quadratic_fn(), 12, 7);
  ASSERT_EQ(h1.evals.size(), h2.evals.size());
  for (std::size_t i = 0; i < h1.evals.size(); ++i) {
    EXPECT_EQ(h1.evals[i].config, h2.evals[i].config);
  }
}

TEST_P(BaselineSuite, BestSoFarIsMonotone) {
  auto tuner = GetParam();
  auto history =
      tuner->tune({0.3, 0.3}, quadratic_space(), quadratic_fn(), 20, 9);
  const auto curve = history.best_so_far();
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_LE(curve[i], curve[i - 1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllTuners, BaselineSuite,
    ::testing::Values(std::make_shared<OpenTunerLite>(),
                      std::make_shared<HpBandSterLite>(),
                      std::make_shared<YtoptLite>(),
                      std::make_shared<SingleTaskGpTune>()),
    [](const auto& suite_info) {
      std::string n = suite_info.param->name();
      for (char& c : n) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return n;
    });

TEST(OpenTunerLite, BeatsPureRandomOnSmoothProblem) {
  // With a decent budget the bandit should exploit; compare to random
  // search with the same budget (aggregate over seeds to be robust).
  OpenTunerLite ot;
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto h = ot.tune({0.7, 0.2}, quadratic_space(), quadratic_fn(), 50, seed);
    common::Rng rng(seed + 100);
    auto rnd = opt::random_search_minimize(
        [&](const opt::Point& u) {
          return quadratic_fn()({0.7, 0.2},
                                quadratic_space().denormalize(u))[0];
        },
        opt::Box::unit(2), rng, 50);
    if (h.best() <= rnd.value) ++wins;
  }
  EXPECT_GE(wins, 4);
}

TEST(HpBandSterLite, TpeExploitsGoodRegion) {
  // After the random warmup, TPE proposals should concentrate: the late
  // half of evaluations should be better than the early half on average.
  HpBandSterLite hb;
  auto h = hb.tune({0.5, 0.5}, quadratic_space(), quadratic_fn(), 40, 11);
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < 20; ++i) early += h.evals[i].objectives[0];
  for (std::size_t i = 20; i < 40; ++i) late += h.evals[i].objectives[0];
  EXPECT_LT(late, early);
}

TEST(SingleTaskGpTune, AccumulatesPhaseTimes) {
  SingleTaskGpTune gp;
  gp.tune({0.5, 0.5}, quadratic_space(), quadratic_fn(), 10, 3);
  EXPECT_GT(gp.times().modeling, 0.0);
  gp.reset_times();
  EXPECT_EQ(gp.times().modeling, 0.0);
}

TEST(Names, AreStable) {
  EXPECT_EQ(OpenTunerLite().name(), "OpenTuner");
  EXPECT_EQ(HpBandSterLite().name(), "HpBandSter");
  EXPECT_EQ(YtoptLite().name(), "ytopt");
  EXPECT_EQ(SingleTaskGpTune().name(), "GPTune-1task");
}

TEST(YtoptLite, PureTpeAfterWarmup) {
  // ytopt-lite never takes random interleave steps after the warmup; its
  // late-phase proposals should concentrate like HpBandSter's.
  YtoptLite yt;
  auto h = yt.tune({0.5, 0.5}, quadratic_space(), quadratic_fn(), 40, 13);
  double early = 0.0, late = 0.0;
  for (std::size_t i = 0; i < 20; ++i) early += h.evals[i].objectives[0];
  for (std::size_t i = 20; i < 40; ++i) late += h.evals[i].objectives[0];
  EXPECT_LT(late, early);
}

}  // namespace
