// Numerical-correctness harness for the parallel multistart LCM trainer:
// high-order finite-difference validation of the analytic NLL gradient,
// golden-value regression pinning the fitted hyperparameters for a fixed
// seed, bitwise 1-vs-4-worker determinism, per-restart RNG stream
// reproducibility, and the Gram memoization contract.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "gp/lcm.hpp"
#include "gp/trainer.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using namespace gptune::gp;
using gptune::common::Rng;

// Deterministic two-task data set used by the golden and determinism tests:
// correlated smooth objectives so the fit is well posed.
MultiTaskData deterministic_data() {
  MultiTaskData data;
  for (int task = 0; task < 2; ++task) {
    Matrix x(8, 2);
    Vector y(8);
    for (std::size_t j = 0; j < 8; ++j) {
      x(j, 0) = static_cast<double>(j) / 7.0;
      x(j, 1) = static_cast<double>((3 * j) % 8) / 7.0;
      y[j] = std::sin(4.0 * x(j, 0)) + 0.5 * x(j, 1) * x(j, 1) +
             0.3 * task * std::cos(3.0 * x(j, 0));
    }
    data.x.push_back(std::move(x));
    data.y.push_back(std::move(y));
  }
  return data;
}

// --- gradient correctness ---

TEST(TrainerNumerics, GradientMatchesFourthOrderFiniteDifference) {
  // Tighter than the broad sweep in test_lcm: 4th-order central differences
  // (O(h^4) truncation) push the FD error floor far below the 1e-5 relative
  // tolerance demanded here, so any analytic-gradient defect — including one
  // introduced by the Gram memoization, which this shared evaluator
  // exercises across probes — shows up.
  Rng rng(41);
  LcmShape shape{2, 2, 3};
  MultiTaskData data;
  for (std::size_t i = 0; i < 3; ++i) {
    Matrix x(5, 2);
    Vector y(5);
    for (std::size_t j = 0; j < 5; ++j) {
      x(j, 0) = rng.uniform();
      x(j, 1) = rng.uniform();
      y[j] = rng.normal();
    }
    data.x.push_back(std::move(x));
    data.y.push_back(std::move(y));
  }
  Matrix ax;
  Vector ay;
  std::vector<std::size_t> task_of;
  data.flatten(&ax, &ay, &task_of);

  auto theta = random_lcm_theta(shape, rng);
  // Keep the covariance comfortably positive definite so every FD probe
  // stays on the smooth (no-jitter) path.
  for (std::size_t i = 0; i < shape.num_tasks; ++i) {
    theta[shape.idx_log_d(i)] = std::log(1e-2);
  }

  const LcmEvalContext ctx(shape, ax, ay, task_of);
  LcmEvaluator evaluator(ctx);

  std::vector<double> grad;
  auto lml = evaluator.lml(theta, &grad);
  ASSERT_TRUE(lml.has_value());
  ASSERT_EQ(grad.size(), theta.size());

  const double h = 5e-4;
  auto f = [&](const std::vector<double>& t) {
    auto v = evaluator.lml(t, nullptr);
    EXPECT_TRUE(v.has_value());
    return v.value_or(0.0);
  };
  for (std::size_t k = 0; k < theta.size(); ++k) {
    auto t1 = theta, t2 = theta, t3 = theta, t4 = theta;
    t1[k] += h;
    t2[k] -= h;
    t3[k] += 2.0 * h;
    t4[k] -= 2.0 * h;
    const double fd =
        (8.0 * (f(t1) - f(t2)) - (f(t3) - f(t4))) / (12.0 * h);
    const double rel_err =
        std::abs(grad[k] - fd) /
        std::max(1.0, std::abs(grad[k]) + std::abs(fd));
    EXPECT_LT(rel_err, 1e-5) << "theta component " << k << ": analytic "
                             << grad[k] << " vs FD " << fd;
  }
}

TEST(TrainerNumerics, EvaluatorMatchesFreeFunction) {
  // The memoizing evaluator and the stateless wrapper must agree exactly.
  Rng rng(42);
  LcmShape shape{2, 1, 2};
  MultiTaskData data;
  for (std::size_t i = 0; i < 2; ++i) {
    Matrix x(6, 1);
    Vector y(6);
    for (std::size_t j = 0; j < 6; ++j) {
      x(j, 0) = rng.uniform();
      y[j] = rng.normal();
    }
    data.x.push_back(std::move(x));
    data.y.push_back(std::move(y));
  }
  Matrix ax;
  Vector ay;
  std::vector<std::size_t> task_of;
  data.flatten(&ax, &ay, &task_of);
  const LcmEvalContext ctx(shape, ax, ay, task_of);
  LcmEvaluator evaluator(ctx);

  for (std::uint64_t trial = 0; trial < 4; ++trial) {
    const auto theta = random_lcm_theta(shape, rng);
    std::vector<double> g1, g2;
    auto v1 = evaluator.lml(theta, &g1);
    auto v2 = lcm_lml(shape, theta, ax, ay, task_of, &g2);
    ASSERT_TRUE(v1 && v2);
    EXPECT_EQ(*v1, *v2);
    ASSERT_EQ(g1.size(), g2.size());
    for (std::size_t k = 0; k < g1.size(); ++k) EXPECT_EQ(g1[k], g2[k]);
  }
}

TEST(TrainerNumerics, GramMemoizationHitsOnRepeatedLengthscales) {
  Rng rng(43);
  LcmShape shape{2, 2, 2};
  MultiTaskData data;
  for (std::size_t i = 0; i < 2; ++i) {
    Matrix x(4, 2);
    Vector y(4);
    for (std::size_t j = 0; j < 4; ++j) {
      x(j, 0) = rng.uniform();
      x(j, 1) = rng.uniform();
      y[j] = rng.normal();
    }
    data.x.push_back(std::move(x));
    data.y.push_back(std::move(y));
  }
  Matrix ax;
  Vector ay;
  std::vector<std::size_t> task_of;
  data.flatten(&ax, &ay, &task_of);
  const LcmEvalContext ctx(shape, ax, ay, task_of);
  LcmEvaluator evaluator(ctx);

  auto theta = random_lcm_theta(shape, rng);
  std::vector<double> grad;
  auto v1 = evaluator.lml(theta, &grad);
  ASSERT_TRUE(v1.has_value());
  EXPECT_EQ(evaluator.cache_stats().gram_misses, shape.num_latent);
  EXPECT_EQ(evaluator.cache_stats().gram_hits, 0u);

  // Same lengthscales (only mixing terms change): every Gram is reused.
  theta[shape.idx_a(0, 0)] += 0.25;
  theta[shape.idx_log_d(1)] += 0.1;
  auto v2 = evaluator.lml(theta, &grad);
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(evaluator.cache_stats().gram_misses, shape.num_latent);
  EXPECT_EQ(evaluator.cache_stats().gram_hits, shape.num_latent);

  // Changing one latent's lengthscale recomputes only that latent.
  theta[shape.idx_log_l(1, 0)] += 0.05;
  auto v3 = evaluator.lml(theta, &grad);
  ASSERT_TRUE(v3.has_value());
  EXPECT_EQ(evaluator.cache_stats().gram_misses, shape.num_latent + 1);
  EXPECT_EQ(evaluator.cache_stats().gram_hits, 2 * shape.num_latent - 1);
}

// --- restart stream reproducibility ---

TEST(TrainerNumerics, RestartSeedsAreDistinctStreams) {
  const std::uint64_t seed = 7;
  std::vector<std::uint64_t> seen;
  for (std::size_t s = 0; s < 64; ++s) {
    const auto v = lcm_restart_seed(seed, s);
    for (auto prev : seen) EXPECT_NE(v, prev) << "restart " << s;
    seen.push_back(v);
  }
  // A different fit seed yields a different family of streams.
  EXPECT_NE(lcm_restart_seed(7, 0), lcm_restart_seed(8, 0));
}

// --- determinism across worker counts ---

TEST(TrainerNumerics, WorkerCountDoesNotChangeResult) {
  // The contract from trainer.hpp: a fit is bitwise identical for a fixed
  // seed regardless of worker count. Exact == on every hyperparameter.
  const auto data = deterministic_data();
  LcmFitOptions serial;
  serial.num_latent = 2;
  serial.num_restarts = 4;
  serial.seed = 17;
  serial.num_workers = 1;

  LcmFitOptions parallel = serial;
  parallel.num_workers = 4;

  LcmFitStats s1, s4;
  auto m1 = fit_lcm(data, serial, &s1);
  auto m4 = fit_lcm(data, parallel, &s4);
  ASSERT_TRUE(m1 && m4);
  EXPECT_EQ(s1.workers_used, 1u);
  EXPECT_EQ(s4.workers_used, 4u);

  EXPECT_EQ(m1->log_likelihood(), m4->log_likelihood());
  ASSERT_EQ(m1->theta().size(), m4->theta().size());
  for (std::size_t k = 0; k < m1->theta().size(); ++k) {
    EXPECT_EQ(m1->theta()[k], m4->theta()[k]) << "theta component " << k;
  }
  // Both runs did the same optimization work, just distributed differently.
  EXPECT_EQ(s1.restarts_attempted, s4.restarts_attempted);
  EXPECT_EQ(s1.total_lbfgs_evaluations, s4.total_lbfgs_evaluations);
  EXPECT_EQ(s1.gram_cache_hits, s4.gram_cache_hits);
  EXPECT_EQ(s1.gram_cache_misses, s4.gram_cache_misses);
}

TEST(TrainerNumerics, ExternalPoolMatchesTransientPool) {
  // Passing a long-lived pool (the MLA loop's usage) must not change the
  // result either.
  const auto data = deterministic_data();
  LcmFitOptions opt;
  opt.num_latent = 2;
  opt.num_restarts = 3;
  opt.seed = 23;
  opt.num_workers = 3;
  auto transient = fit_lcm(data, opt);

  gptune::rt::ThreadPool pool(3);
  opt.pool = &pool;
  auto external = fit_lcm(data, opt);
  ASSERT_TRUE(transient && external);
  EXPECT_EQ(transient->log_likelihood(), external->log_likelihood());
  for (std::size_t k = 0; k < transient->theta().size(); ++k) {
    EXPECT_EQ(transient->theta()[k], external->theta()[k]);
  }
}

// --- golden-value regression ---

TEST(TrainerNumerics, GoldenFitForFixedSeed) {
  // Pins the full fit pipeline (restart streams, L-BFGS trajectory, Gram
  // memoization, blocked factorization) for seed 123. These values were
  // captured from the implementation at the time this test was written; a
  // change here means the numerics changed, which must be deliberate.
  const auto data = deterministic_data();
  LcmFitOptions opt;
  opt.num_latent = 2;
  opt.num_restarts = 2;
  opt.seed = 123;
  LcmFitStats stats;
  auto model = fit_lcm(data, opt, &stats);
  ASSERT_TRUE(model.has_value());

  EXPECT_NEAR(model->log_likelihood(), 6.3627579657399664, 1e-8);
  const std::vector<double> golden_theta = {
      -3.3173269956926719,   // log l^0_0
      -0.60276516941998126,  // log l^0_1
      -0.076811144478321908, // log l^1_0
      6.9077552789821368,    // log l^1_1
      -0.75634874501359473,  // a_{0,0}
      -0.62295905913576388,  // a_{1,0}
      3.9927935997544264,    // a_{0,1}
      4.6891609635164677,    // a_{1,1}
      -17.008930912301917,   // log b_{0,0}
      -12.952296623402921,   // log b_{1,0}
      -8.7361680595597981,   // log b_{0,1}
      -9.0947964953552454,   // log b_{1,1}
      -18.420680743952367,   // log d_0
      -18.420680743952367,   // log d_1
  };
  ASSERT_EQ(model->theta().size(), golden_theta.size());
  for (std::size_t k = 0; k < golden_theta.size(); ++k) {
    EXPECT_NEAR(model->theta()[k], golden_theta[k], 1e-8)
        << "theta component " << k;
  }
  EXPECT_EQ(stats.total_lbfgs_evaluations, 143u);
}

}  // namespace
