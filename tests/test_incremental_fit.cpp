// IncrementalFitState (DESIGN.md §3.10): the extended posterior must be
// bitwise identical to the rebuilt one — the property that lets the MLA
// loop flip incremental refits on without changing any trajectory — and
// the reuse bookkeeping (extends / rebuilds / ordering resets, jittered
// factors never extended) must be observable through stats(). Plus the
// single-task analogue, GpRegression::extend.
#include <gtest/gtest.h>

#include <cmath>
#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "gp/gp_regression.hpp"
#include "gp/incremental.hpp"
#include "gp/lcm.hpp"
#include "linalg/blocked_cholesky.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using gptune::common::Rng;
using gptune::gp::GpHyperparameters;
using gptune::gp::GpRegression;
using gptune::gp::IncrementalFitState;
using gptune::gp::LcmModel;
using gptune::gp::LcmShape;
using gptune::gp::Matrix;
using gptune::gp::MultiTaskData;
using gptune::gp::Vector;

MultiTaskData random_data(std::size_t tasks, std::size_t samples,
                          std::size_t dim, std::uint64_t seed) {
  Rng rng(seed);
  MultiTaskData data;
  data.x.resize(tasks);
  data.y.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    data.x[i] = Matrix(samples, dim);
    data.y[i].resize(samples);
    for (std::size_t j = 0; j < samples; ++j) {
      for (std::size_t m = 0; m < dim; ++m) data.x[i](j, m) = rng.uniform();
      data.y[i][j] = rng.normal();
    }
  }
  return data;
}

// Appends `extra` fresh samples to every task.
void append_samples(MultiTaskData& data, std::size_t extra,
                    std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t dim = data.dim();
  for (std::size_t i = 0; i < data.num_tasks(); ++i) {
    const std::size_t old = data.x[i].rows();
    Matrix grown(old + extra, dim);
    for (std::size_t j = 0; j < old; ++j) {
      for (std::size_t m = 0; m < dim; ++m) grown(j, m) = data.x[i](j, m);
    }
    for (std::size_t j = old; j < old + extra; ++j) {
      for (std::size_t m = 0; m < dim; ++m) grown(j, m) = rng.uniform();
      data.y[i].push_back(rng.normal());
    }
    data.x[i] = std::move(grown);
  }
}

std::vector<double> smooth_theta(const LcmShape& shape, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> theta(shape.num_hyperparameters());
  for (std::size_t q = 0; q < shape.num_latent; ++q) {
    for (std::size_t m = 0; m < shape.dim; ++m) {
      theta[shape.idx_log_l(q, m)] = std::log(rng.uniform(0.3, 1.0));
    }
    for (std::size_t i = 0; i < shape.num_tasks; ++i) {
      theta[shape.idx_a(q, i)] = rng.normal(0.0, 0.7);
      theta[shape.idx_log_b(q, i)] = std::log(0.05);
    }
  }
  for (std::size_t i = 0; i < shape.num_tasks; ++i) {
    theta[shape.idx_log_d(i)] = std::log(1e-3);
  }
  return theta;
}

// Bitwise model comparison through the public surface: likelihood plus
// posterior mean/variance at probe points for every task.
void expect_models_bitwise_equal(const LcmModel& a, const LcmModel& b,
                                 std::uint64_t probe_seed) {
  EXPECT_EQ(a.log_likelihood(), b.log_likelihood());
  ASSERT_EQ(a.shape().num_tasks, b.shape().num_tasks);
  Rng rng(probe_seed);
  for (std::size_t t = 0; t < a.shape().num_tasks; ++t) {
    for (int p = 0; p < 4; ++p) {
      Vector x(a.shape().dim);
      for (auto& v : x) v = rng.uniform();
      const auto pa = a.predict(t, x);
      const auto pb = b.predict(t, x);
      EXPECT_EQ(pa.mean, pb.mean);
      EXPECT_EQ(pa.variance, pb.variance);
    }
  }
}

TEST(IncrementalFit, FirstRefreshMatchesLcmModelBuild) {
  // With no cached state the generation ordering is the task-major flatten,
  // so the first refresh must agree bitwise with LcmModel::build.
  MultiTaskData data = random_data(3, 9, 2, 31);
  LcmShape shape{2, 2, 3};
  const auto theta = smooth_theta(shape, 5);

  IncrementalFitState state;
  auto incremental = state.refresh(data, shape, theta);
  auto built = LcmModel::build(data, shape, theta);
  ASSERT_TRUE(incremental.has_value());
  ASSERT_TRUE(built.has_value());
  expect_models_bitwise_equal(*incremental, *built, 91);
  EXPECT_EQ(state.stats().rebuilds, 1u);
  EXPECT_EQ(state.stats().extends, 0u);
}

TEST(IncrementalFit, ExtendedPosteriorBitwiseEqualsRebuilt) {
  // The core trajectory guarantee: with identical refresh sequences, the
  // extending state and the rebuild-only state produce bitwise-equal
  // models at every step.
  MultiTaskData data = random_data(2, 8, 2, 32);
  LcmShape shape{2, 2, 2};
  const auto theta = smooth_theta(shape, 6);

  IncrementalFitState extending, rebuilding;
  auto e0 = extending.refresh(data, shape, theta, gptune::linalg::serial_runner(),
                              /*allow_extend=*/true);
  auto r0 = rebuilding.refresh(data, shape, theta,
                               gptune::linalg::serial_runner(),
                               /*allow_extend=*/false);
  ASSERT_TRUE(e0.has_value());
  ASSERT_TRUE(r0.has_value());
  expect_models_bitwise_equal(*e0, *r0, 92);

  for (int round = 0; round < 3; ++round) {
    append_samples(data, 2, 100 + round);
    auto e = extending.refresh(data, shape, theta,
                               gptune::linalg::serial_runner(), true);
    auto r = rebuilding.refresh(data, shape, theta,
                                gptune::linalg::serial_runner(), false);
    ASSERT_TRUE(e.has_value());
    ASSERT_TRUE(r.has_value());
    expect_models_bitwise_equal(*e, *r, 93 + round);
  }
  EXPECT_EQ(extending.stats().extends, 3u);
  EXPECT_EQ(extending.stats().rebuilds, 1u);
  EXPECT_EQ(extending.stats().appended_rows, 12u);
  EXPECT_EQ(rebuilding.stats().extends, 0u);
  EXPECT_EQ(rebuilding.stats().rebuilds, 4u);
}

TEST(IncrementalFit, PooledExtensionBitwiseEqualsSerial) {
  MultiTaskData data = random_data(2, 70, 2, 33);
  LcmShape shape{2, 2, 2};
  const auto theta = smooth_theta(shape, 7);

  gptune::rt::ThreadPool pool(4);
  IncrementalFitState serial_state, pooled_state;
  ASSERT_TRUE(serial_state.refresh(data, shape, theta).has_value());
  ASSERT_TRUE(pooled_state
                  .refresh(data, shape, theta, pool.batch_runner())
                  .has_value());
  append_samples(data, 5, 200);
  auto s = serial_state.refresh(data, shape, theta);
  auto p = pooled_state.refresh(data, shape, theta, pool.batch_runner());
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(serial_state.stats().extends, 1u);
  EXPECT_EQ(pooled_state.stats().extends, 1u);
  expect_models_bitwise_equal(*s, *p, 94);
}

TEST(IncrementalFit, ThetaChangeRebuildsButKeepsOrdering) {
  MultiTaskData data = random_data(2, 6, 2, 34);
  LcmShape shape{1, 2, 2};
  const auto theta_a = smooth_theta(shape, 8);
  const auto theta_b = smooth_theta(shape, 9);

  IncrementalFitState state;
  ASSERT_TRUE(state.refresh(data, shape, theta_a).has_value());
  append_samples(data, 2, 300);
  // New hyperparameters: must refactorize...
  ASSERT_TRUE(state.refresh(data, shape, theta_b).has_value());
  EXPECT_EQ(state.stats().rebuilds, 2u);
  EXPECT_EQ(state.stats().extends, 0u);
  EXPECT_EQ(state.stats().ordering_resets, 0u);
  // ...but the ordering survived, so a same-theta append extends again.
  append_samples(data, 2, 301);
  ASSERT_TRUE(state.refresh(data, shape, theta_b).has_value());
  EXPECT_EQ(state.stats().extends, 1u);
}

TEST(IncrementalFit, PrefixEditResetsOrdering) {
  MultiTaskData data = random_data(2, 6, 2, 35);
  LcmShape shape{1, 2, 2};
  const auto theta = smooth_theta(shape, 10);

  IncrementalFitState state;
  ASSERT_TRUE(state.refresh(data, shape, theta).has_value());
  // A re-encoded feature (the §3.3 performance-model normalization moving)
  // rewrites previously seen x rows: the ordering must restart.
  data.x[0](1, 0) += 0.25;
  ASSERT_TRUE(state.refresh(data, shape, theta).has_value());
  EXPECT_EQ(state.stats().ordering_resets, 1u);
  EXPECT_EQ(state.stats().rebuilds, 2u);
  EXPECT_EQ(state.stats().extends, 0u);
}

TEST(IncrementalFit, ShrinkingHistoryResetsOrdering) {
  MultiTaskData data = random_data(2, 6, 2, 36);
  LcmShape shape{1, 2, 2};
  const auto theta = smooth_theta(shape, 11);

  IncrementalFitState state;
  ASSERT_TRUE(state.refresh(data, shape, theta).has_value());
  data.x[1] = data.x[1].block(0, 0, 4, 2);
  data.y[1].resize(4);
  ASSERT_TRUE(state.refresh(data, shape, theta).has_value());
  EXPECT_EQ(state.stats().ordering_resets, 1u);
}

TEST(IncrementalFit, JitteredFactorIsNeverExtended) {
  // Duplicate samples with a vanishing nugget force the jitter fallback;
  // a jittered factor is inexact, so the next refresh must rebuild even
  // when theta is unchanged and the growth is append-only.
  MultiTaskData data = random_data(1, 4, 2, 37);
  data.x[0] = Matrix(8, 2);
  data.y[0].assign(8, 0.0);
  Rng rng(38);
  for (std::size_t j = 0; j < 4; ++j) {
    const double a = rng.uniform(), b = rng.uniform();
    // Each point twice: the covariance is singular up to the nugget.
    for (std::size_t copy = 0; copy < 2; ++copy) {
      data.x[0](2 * j + copy, 0) = a;
      data.x[0](2 * j + copy, 1) = b;
      data.y[0][2 * j + copy] = rng.normal();
    }
  }
  LcmShape shape{1, 2, 1};
  auto theta = smooth_theta(shape, 12);
  theta[shape.idx_log_d(0)] = std::log(1e-300);  // nugget below rounding

  IncrementalFitState state;
  auto first = state.refresh(data, shape, theta);
  ASSERT_TRUE(first.has_value());
  EXPECT_GT(state.jitter(), 0.0);
  EXPECT_EQ(state.stats().rebuilds, 1u);

  append_samples(data, 2, 400);
  auto second = state.refresh(data, shape, theta);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(state.stats().extends, 0u);
  EXPECT_EQ(state.stats().rebuilds, 2u);
}

TEST(GpRegressionExtend, BitwiseEqualsRebuildOnConcatenatedData) {
  const std::size_t n = 40, k = 7, d = 2;
  Rng rng(41);
  Matrix x(n + k, d);
  Vector y(n + k);
  for (std::size_t i = 0; i < n + k; ++i) {
    for (std::size_t m = 0; m < d; ++m) x(i, m) = rng.uniform();
    y[i] = rng.normal();
  }
  GpHyperparameters hp;
  hp.lengthscales = {0.4, 0.6};
  hp.signal_variance = 1.3;
  hp.noise_variance = 1e-4;

  auto full = GpRegression::with_hyperparameters(x, y, hp);
  ASSERT_TRUE(full.has_value());

  const Matrix x_old = x.block(0, 0, n, d);
  const Vector y_old(y.begin(), y.begin() + n);
  const Matrix x_new = x.block(n, 0, k, d);
  const Vector y_new(y.begin() + n, y.end());
  auto gp = GpRegression::with_hyperparameters(x_old, y_old, hp);
  ASSERT_TRUE(gp.has_value());
  ASSERT_TRUE(gp->extend(x_new, y_new));

  EXPECT_EQ(gp->log_marginal_likelihood(), full->log_marginal_likelihood());
  for (int p = 0; p < 5; ++p) {
    Vector probe(d);
    for (auto& v : probe) v = rng.uniform();
    const auto pe = gp->predict(probe);
    const auto pf = full->predict(probe);
    EXPECT_EQ(pe.mean, pf.mean);
    EXPECT_EQ(pe.variance, pf.variance);
  }
}

TEST(GpRegressionExtend, RefusesJitteredFactor) {
  // Two identical points at zero noise: the exact factorization fails, the
  // jitter fallback builds the posterior, and extend() must then refuse
  // (an extension of an inexact factor would not match a rebuild).
  Matrix x(2, 1);
  x(0, 0) = 0.5;
  x(1, 0) = 0.5;
  Vector y = {1.0, 1.0};
  GpHyperparameters hp;
  hp.lengthscales = {0.5};
  hp.signal_variance = 1.0;
  hp.noise_variance = 0.0;

  auto gp = GpRegression::with_hyperparameters(x, y, hp);
  ASSERT_TRUE(gp.has_value());
  Matrix x_new(1, 1);
  x_new(0, 0) = 0.9;
  EXPECT_FALSE(gp->extend(x_new, {2.0}));
}

}  // namespace
