// Tests for core/ building blocks around the tuner: Expected Improvement
// properties, history database round-trips, performance-model coefficient
// refitting (paper §3.3), and the WinTask/stability metrics (§6.6).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/acquisition.hpp"
#include "core/history.hpp"
#include "core/metrics.hpp"
#include "core/perf_model.hpp"

namespace {

using namespace gptune::core;

// --- Expected Improvement ---

TEST(ExpectedImprovement, NonNegative) {
  for (double mean : {-2.0, 0.0, 1.0, 5.0}) {
    for (double var : {0.0, 0.01, 1.0, 100.0}) {
      EXPECT_GE(expected_improvement(mean, var, 1.0), 0.0);
    }
  }
}

TEST(ExpectedImprovement, ZeroVarianceIsDeterministicImprovement) {
  EXPECT_DOUBLE_EQ(expected_improvement(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(expected_improvement(2.0, 0.0, 1.0), 0.0);
}

TEST(ExpectedImprovement, IncreasesWithUncertainty) {
  // At mean equal to the incumbent, EI is sigma * phi(0) — monotone in
  // sigma.
  const double e1 = expected_improvement(1.0, 0.01, 1.0);
  const double e2 = expected_improvement(1.0, 1.0, 1.0);
  const double e3 = expected_improvement(1.0, 4.0, 1.0);
  EXPECT_LT(e1, e2);
  EXPECT_LT(e2, e3);
}

TEST(ExpectedImprovement, DecreasesAsMeanWorsens) {
  const double good = expected_improvement(0.0, 1.0, 1.0);
  const double bad = expected_improvement(2.0, 1.0, 1.0);
  EXPECT_GT(good, bad);
}

TEST(ExpectedImprovement, ClosedFormValue) {
  // mean = best, var = 1: EI = sigma * phi(0) = 0.39894...
  EXPECT_NEAR(expected_improvement(1.0, 1.0, 1.0), 0.3989422804, 1e-8);
}

TEST(ExpectedImprovement, DominatedByDeterministicGapForTinyVariance) {
  EXPECT_NEAR(expected_improvement(0.0, 1e-18, 1.0), 1.0, 1e-9);
}

TEST(LowerConfidenceBound, KappaZeroIsMean) {
  EXPECT_DOUBLE_EQ(lower_confidence_bound(3.0, 4.0, 0.0), 3.0);
  EXPECT_DOUBLE_EQ(lower_confidence_bound(3.0, 4.0, 1.0), 1.0);
}

// --- HistoryDb ---

HistoryRecord rec(std::vector<double> task, Config config,
                  std::vector<double> obj) {
  return {std::move(task), std::move(config), std::move(obj)};
}

TEST(HistoryDb, AddAndQueryByTask) {
  HistoryDb db;
  db.add(rec({1.0, 2.0}, {0.5}, {10.0}));
  db.add(rec({1.0, 2.0}, {0.7}, {8.0}));
  db.add(rec({3.0, 4.0}, {0.1}, {1.0}));
  EXPECT_EQ(db.size(), 3u);
  EXPECT_EQ(db.for_task({1.0, 2.0}).size(), 2u);
  EXPECT_EQ(db.for_task({9.0, 9.0}).size(), 0u);
  EXPECT_EQ(db.for_task({1.0}).size(), 0u);  // dimension mismatch
}

TEST(HistoryDb, BestForTask) {
  HistoryDb db;
  db.add(rec({1.0}, {0.5}, {10.0}));
  db.add(rec({1.0}, {0.7}, {8.0}));
  db.add(rec({1.0}, {0.9}, {12.0}));
  auto best = db.best_for_task({1.0});
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->objectives[0], 8.0);
  EXPECT_DOUBLE_EQ(best->config[0], 0.7);
}

TEST(HistoryDb, BestForTaskSecondObjective) {
  HistoryDb db;
  db.add(rec({1.0}, {0.5}, {10.0, 100.0}));
  db.add(rec({1.0}, {0.7}, {8.0, 300.0}));
  auto best = db.best_for_task({1.0}, 1);
  ASSERT_TRUE(best.has_value());
  EXPECT_DOUBLE_EQ(best->objectives[1], 100.0);
}

TEST(HistoryDb, BestForMissingTaskIsNull) {
  HistoryDb db;
  EXPECT_FALSE(db.best_for_task({1.0}).has_value());
}

TEST(HistoryDb, MergeCombines) {
  HistoryDb a, b;
  a.add(rec({1.0}, {0.1}, {1.0}));
  b.add(rec({2.0}, {0.2}, {2.0}));
  a.merge(b);
  EXPECT_EQ(a.size(), 2u);
}

TEST(HistoryDb, SaveLoadRoundTrip) {
  HistoryDb db;
  db.add(rec({1.5, -2.25}, {0.125, 3.0, 7.0}, {0.001, 42.0}));
  db.add(rec({8.0}, {}, {1e-30}));
  const std::string path = "/tmp/gptune_history_test.txt";
  ASSERT_TRUE(db.save(path));
  auto loaded = HistoryDb::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  // gptune-lint: allow(lock-discipline) reason: freshly loaded db on a
  // single thread; no concurrent writer can exist yet
  const auto& r0 = loaded->records()[0];
  EXPECT_EQ(r0.task, (std::vector<double>{1.5, -2.25}));
  EXPECT_EQ(r0.config, (Config{0.125, 3.0, 7.0}));
  EXPECT_EQ(r0.objectives, (std::vector<double>{0.001, 42.0}));
  EXPECT_DOUBLE_EQ(  // gptune-lint: allow(lock-discipline) reason: idle db
      loaded->records()[1].objectives[0], 1e-30);
  std::remove(path.c_str());
}

TEST(HistoryDb, LoadRejectsGarbage) {
  const std::string path = "/tmp/gptune_history_bad.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("not a history file\n1 2 3\n", f);
    fclose(f);
  }
  EXPECT_FALSE(HistoryDb::load(path).has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(HistoryDb::load("/nonexistent/path").has_value());
}

// --- performance models ---

TEST(LinearCombinationModel, EvaluatesWeightedSum) {
  LinearCombinationModel model(
      [](const TaskVector& t, const Config& c) {
        return std::vector<double>{t[0], c[0]};
      },
      {2.0, 3.0});
  const auto y = model.evaluate({10.0}, {5.0});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 10.0 + 3.0 * 5.0);
}

TEST(LinearCombinationModel, UpdateRecoversTrueCoefficients) {
  // Objective generated by known non-negative coefficients: NNLS refit
  // should recover them (this is the Eq. 7 t_flop/t_msg/t_vol estimation).
  LinearCombinationModel model(
      [](const TaskVector& t, const Config& c) {
        return std::vector<double>{t[0] * c[0], c[1], 1.0};
      },
      {1.0, 1.0, 1.0});
  const std::vector<double> truth = {0.5, 2.0, 0.25};
  std::vector<TaskVector> tasks;
  std::vector<Config> configs;
  std::vector<double> objectives;
  gptune::common::Rng rng(9);
  for (int i = 0; i < 30; ++i) {
    tasks.push_back({rng.uniform(1.0, 10.0)});
    configs.push_back({rng.uniform(0.0, 5.0), rng.uniform(0.0, 5.0)});
    const double y = truth[0] * tasks.back()[0] * configs.back()[0] +
                     truth[1] * configs.back()[1] + truth[2];
    objectives.push_back(y);
  }
  model.update(tasks, configs, objectives);
  for (std::size_t k = 0; k < 3; ++k) {
    EXPECT_NEAR(model.coefficients()[k], truth[k], 1e-6);
  }
}

TEST(LinearCombinationModel, UpdateSkipsWhenUnderdetermined) {
  LinearCombinationModel model(
      [](const TaskVector&, const Config& c) {
        return std::vector<double>{c[0], c[1], 1.0};
      },
      {1.0, 2.0, 3.0});
  model.update({{1.0}}, {{1.0, 1.0}}, {5.0});  // 1 sample < 3 coefficients
  EXPECT_EQ(model.coefficients(), (std::vector<double>{1.0, 2.0, 3.0}));
}

TEST(CallableModel, PassesThrough) {
  CallableModel model(
      [](const TaskVector& t, const Config& c) {
        return std::vector<double>{t[0] + c[0], t[0] - c[0]};
      },
      2);
  EXPECT_EQ(model.output_dim(), 2u);
  const auto y = model.evaluate({3.0}, {1.0});
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
}

// --- metrics ---

TEST(Metrics, WinTaskCountsTiesAsWins) {
  // Paper legends count ratio >= 1 as a GPTune win.
  EXPECT_DOUBLE_EQ(win_task({1.0, 2.0, 3.0}, {1.0, 3.0, 2.0}), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(win_task({}, {}), 0.0);
}

TEST(Metrics, StabilityPerfectTunerIsOne) {
  // A tuner that finds y_star immediately has stability exactly 1.
  EXPECT_DOUBLE_EQ(stability({5.0, 5.0, 5.0}, 5.0), 1.0);
}

TEST(Metrics, StabilityPenalizesSlowConvergence) {
  const double slow = stability({10.0, 8.0, 5.0}, 5.0);
  const double fast = stability({5.0, 5.0, 5.0}, 5.0);
  EXPECT_GT(slow, fast);
  EXPECT_NEAR(slow, (2.0 + 1.6 + 1.0) / 3.0, 1e-12);
}

TEST(Metrics, MeanStabilityAveragesTasks) {
  const double m = mean_stability({{2.0}, {4.0}}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(m, (2.0 + 2.0) / 2.0);
}

TEST(Metrics, BestRatioDefinition) {
  const auto r = best_ratio({1.0, 4.0}, {2.0, 2.0});
  EXPECT_DOUBLE_EQ(r[0], 2.0);   // other tuner 2x worse: GPTune wins
  EXPECT_DOUBLE_EQ(r[1], 0.5);   // other tuner 2x better
}

TEST(Metrics, WinTaskExactTieOnEveryTaskIsFullWin) {
  // A == B per task: ratio best_B / best_A == 1 counts as an A win on
  // every task (paper legends use >= 1), so the fraction is exactly 1.
  EXPECT_DOUBLE_EQ(win_task({2.0, 5.0, 7.5}, {2.0, 5.0, 7.5}), 1.0);
  // Symmetric consequence: win_task(B, A) over the same vectors is also 1;
  // the metric is not a zero-sum split at ties.
  EXPECT_DOUBLE_EQ(win_task({2.0}, {2.0}) + win_task({2.0}, {2.0}), 2.0);
}

TEST(Metrics, WinTaskSingleTask) {
  EXPECT_DOUBLE_EQ(win_task({1.0}, {2.0}), 1.0);
  EXPECT_DOUBLE_EQ(win_task({2.0}, {1.0}), 0.0);
}

TEST(Metrics, StabilityEmptyCurveIsZero) {
  // No samples: defined as 0 (no anytime information), not NaN.
  EXPECT_DOUBLE_EQ(stability({}, 5.0), 0.0);
}

TEST(Metrics, StabilityNonpositiveYStarIsZero) {
  // y_star <= 0 would make the ratio meaningless (runtime objectives are
  // strictly positive); guarded to 0 rather than dividing.
  EXPECT_DOUBLE_EQ(stability({1.0, 2.0}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(stability({1.0, 2.0}, -3.0), 0.0);
}

TEST(Metrics, StabilitySingleSampleCurve) {
  // One sample equal to y_star: ideal stability of exactly 1.
  EXPECT_DOUBLE_EQ(stability({5.0}, 5.0), 1.0);
  // One sample twice y_star: stability 2.
  EXPECT_DOUBLE_EQ(stability({10.0}, 5.0), 2.0);
}

TEST(Metrics, StabilityYStarEqualToCurveBest) {
  // y_star equals the curve's own final best (this tuner found the
  // cross-tuner optimum): the last term contributes exactly 1.
  const AnytimeCurve curve = {8.0, 6.0, 4.0};
  EXPECT_NEAR(stability(curve, 4.0), (2.0 + 1.5 + 1.0) / 3.0, 1e-12);
}

TEST(Metrics, MeanStabilityEmptyAndMixedCurves) {
  EXPECT_DOUBLE_EQ(mean_stability({}, {}), 0.0);
  // An empty per-task curve contributes its stability of 0 to the mean.
  const double m = mean_stability({{}, {4.0}}, {1.0, 2.0});
  EXPECT_DOUBLE_EQ(m, (0.0 + 2.0) / 2.0);
}

}  // namespace
