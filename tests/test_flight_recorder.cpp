// Flight recorder + run manifest tests (DESIGN.md §3.12): ring
// wraparound keeps the newest events, the async-signal-safe dump writes
// parseable JSON (exercised both directly and through a real fatal
// signal in a death test), heartbeat snapshots fire on virtual-clock
// thresholds, the manifest schema round-trips through the telemetry JSON
// reader, and — the observe-only contract — a tuning run with recorder +
// heartbeat + manifest enabled lands on a bitwise-identical trajectory.
//
// gtest_discover_tests runs each TEST in its own process under ctest, so
// global recorder config never leaks between ctest entries; tests that
// change config still reset_for_testing() to stay order-independent when
// the whole binary runs at once.
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "apps/analytical.hpp"
#include "common/telemetry/flight_recorder.hpp"
#include "common/telemetry/json.hpp"
#include "common/telemetry/telemetry.hpp"
#include "core/mla.hpp"
#include "core/run_manifest.hpp"

#if defined(GPTUNE_TELEMETRY)

namespace {

using namespace gptune;
namespace fr = telemetry::flight_recorder;
using telemetry::JsonValue;

std::string make_temp_dir() {
  char tmpl[] = "/tmp/gptune_fr_XXXXXX";
  const char* dir = mkdtemp(tmpl);
  EXPECT_NE(dir, nullptr);
  return dir != nullptr ? dir : ".";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The calling thread's ring in a parsed dump, located by its label.
const JsonValue* find_ring(const JsonValue& dump, const std::string& label) {
  const JsonValue* rings = dump.find("rings");
  if (rings == nullptr || !rings->is_array()) return nullptr;
  for (const JsonValue& ring : rings->items()) {
    const JsonValue* thread = ring.find("thread");
    if (thread != nullptr && thread->as_string() == label) return &ring;
  }
  return nullptr;
}

TEST(FlightRecorder, RingWrapsKeepingTheMostRecentEvents) {
  telemetry::set_identity("wrap", 7);
  const std::size_t total = fr::kRingCapacity * 3 + 8;
  for (std::size_t i = 0; i < total; ++i) {
    char text[32];
    std::snprintf(text, sizeof(text), "ev%zu", i);
    fr::note_text(fr::EventKind::kInstant, "wraptest", text);
  }

  std::string error;
  const JsonValue dump = JsonValue::parse(fr::dump_json("unit"), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(dump.find("schema")->as_string(), "gptune-flight-dump/1");

  const JsonValue* ring = find_ring(dump, "wrap/7");
  ASSERT_NE(ring, nullptr) << "no ring labeled wrap/7 in dump";
  const JsonValue* events = ring->find("events");
  ASSERT_NE(events, nullptr);
  // Full ring: exactly kRingCapacity survivors, and they are the *last*
  // kRingCapacity notes in order — "ev0" has been overwritten.
  ASSERT_EQ(events->items().size(), fr::kRingCapacity);
  char expect[32];
  std::snprintf(expect, sizeof(expect), "ev%zu", total - 1);
  EXPECT_EQ(events->items().back().find("text")->as_string(), expect);
  std::snprintf(expect, sizeof(expect), "ev%zu", total - fr::kRingCapacity);
  EXPECT_EQ(events->items().front().find("text")->as_string(), expect);
  EXPECT_GE(ring->find("total_events")->as_number(),
            static_cast<double>(total));
}

TEST(FlightRecorder, TextIsTruncatedNotOverflowed) {
  telemetry::set_identity("trunc", 0);
  const std::string longtext(fr::kTextCapacity * 4, 'x');
  fr::note_text(fr::EventKind::kLog, "truncate", longtext.c_str());

  std::string error;
  const JsonValue dump = JsonValue::parse(fr::dump_json("unit"), &error);
  ASSERT_TRUE(error.empty()) << error;
  const JsonValue* ring = find_ring(dump, "trunc/0");
  ASSERT_NE(ring, nullptr);
  const auto& events = ring->find("events")->items();
  ASSERT_FALSE(events.empty());
  const std::string& text = events.back().find("text")->as_string();
  EXPECT_LT(text.size(), fr::kTextCapacity);
  EXPECT_EQ(text, std::string(text.size(), 'x'));
}

TEST(FlightRecorder, SignalSafeDumpIsParseableJsonWithEscaping) {
  telemetry::set_identity("sigsafe", 3);
  // Text with every class the escaper must handle: quote, backslash,
  // short-escape control chars, and a raw \u00XX control char.
  fr::note_text(fr::EventKind::kInstant, "esc", "q\" b\\ n\n t\t x\x01 end");

  const std::string dir = make_temp_dir();
  const std::string path = dir + "/signal_safe.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fr::dump_signal_safe(fileno(f), "unit-signal-safe");
  std::fclose(f);

  std::string error;
  const JsonValue dump = JsonValue::parse(slurp(path), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(dump.find("schema")->as_string(), "gptune-flight-dump/1");
  EXPECT_EQ(dump.find("reason")->as_string(), "unit-signal-safe");
  const JsonValue* ring = find_ring(dump, "sigsafe/3");
  ASSERT_NE(ring, nullptr);
  const auto& events = ring->find("events")->items();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().find("text")->as_string(),
            "q\" b\\ n\n t\t x\x01 end");
}

// The real crash path: a fatal signal in a child process must leave
// flight_dump_crash.json behind — the handler re-raises, so the child
// still dies by SIGABRT. Reentrancy: the dump itself runs *inside* the
// signal handler over rings the dying threads may still own.
TEST(FlightRecorderDeathTest, FatalSignalWritesCrashDump) {
  const std::string dir = make_temp_dir();
  fr::configure_dump_dir(dir);
  telemetry::set_identity("doomed", 1);
  fr::note_text(fr::EventKind::kInstant, "crash", "last words");

  EXPECT_EXIT(std::abort(), ::testing::KilledBySignal(SIGABRT), "");

  std::string error;
  const JsonValue dump =
      JsonValue::parse(slurp(dir + "/flight_dump_crash.json"), &error);
  ASSERT_TRUE(error.empty())
      << "crash dump missing or unparseable: " << error;
  EXPECT_EQ(dump.find("schema")->as_string(), "gptune-flight-dump/1");
  EXPECT_EQ(dump.find("reason")->as_string(), "signal:SIGABRT");
  const JsonValue* ring = find_ring(dump, "doomed/1");
  ASSERT_NE(ring, nullptr);
  const auto& events = ring->find("events")->items();
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.back().find("text")->as_string(), "last words");
  fr::reset_for_testing();
}

TEST(FlightRecorder, TimelineTextShowsRecentEventsPerThread) {
  telemetry::set_identity("timeline", 5);
  fr::note(fr::EventKind::kSpanBegin, "phase", "modeling");
  const std::string text = fr::timeline_text(8);
  EXPECT_NE(text.find("[timeline/5]"), std::string::npos) << text;
  EXPECT_NE(text.find("phase/modeling"), std::string::npos) << text;
}

TEST(FlightRecorder, HeartbeatFiresOnVirtualThreshold) {
  const std::string dir = make_temp_dir();
  fr::reset_for_testing();
  fr::configure_dump_dir(dir);
  fr::configure_heartbeat(0.5);

  fr::heartbeat_tick(0.2);
  EXPECT_FALSE(std::ifstream(dir + "/heartbeat.json").good())
      << "heartbeat fired below the threshold";
  fr::heartbeat_tick(0.4);  // total 0.6 crosses 0.5

  std::string error;
  const JsonValue hb = JsonValue::parse(slurp(dir + "/heartbeat.json"), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(hb.find("schema")->as_string(), "gptune-heartbeat/1");
  EXPECT_GE(hb.find("virtual_seconds")->as_number(), 0.5);
  ASSERT_NE(hb.find("metrics"), nullptr);
  EXPECT_TRUE(hb.find("metrics")->is_object());
  ASSERT_NE(hb.find("flight"), nullptr);
  EXPECT_EQ(hb.find("flight")->find("schema")->as_string(),
            "gptune-flight-dump/1");
  fr::reset_for_testing();
}

// --- Run manifest -----------------------------------------------------------

core::Space demo_space() {
  core::Space space;
  space.add_real("x", 0.0, 1.0);
  space.add_integer("nb", 1, 64, /*log_scale=*/true);
  space.add_categorical("layout", {"row", "col"});
  space.add_constraint("nb_small",
                       [](const core::Config& c) { return c[1] <= 32.0; });
  return space;
}

core::MlaResult tiny_run(core::MlaOptions options) {
  core::Space space;
  space.add_real("x", 0.0, 1.0);
  core::MultiObjectiveFn objective = [](const core::TaskVector& task,
                                        const core::Config& config) {
    return std::vector<double>{
        apps::analytical_objective(task[0], config[0])};
  };
  core::MultitaskTuner tuner(space, objective, options);
  std::vector<core::TaskVector> tasks = {{1.0}, {6.0}};
  return tuner.run(tasks);
}

core::MlaOptions tiny_options() {
  core::MlaOptions options;
  options.budget_per_task = 8;
  options.initial_samples = 4;
  options.seed = 99;
  options.objective_workers = 2;
  return options;
}

TEST(RunManifest, SchemaRoundTripsThroughJsonReader) {
  const core::Space space = demo_space();
  core::MlaOptions options = tiny_options();
  const std::vector<core::TaskVector> tasks = {{1.0}, {6.0}};

  core::RunManifest manifest;  // disabled: pure rendering, no file IO
  manifest.begin(space, options, tasks);

  std::string error;
  const JsonValue begin = JsonValue::parse(manifest.begin_json(), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(begin.find("schema")->as_string(), "gptune-run-manifest/1");
  EXPECT_EQ(begin.find("status")->as_string(), "running");
  EXPECT_EQ(begin.find("seed")->as_number(), 99.0);
  ASSERT_NE(begin.find("options"), nullptr);
  EXPECT_EQ(begin.find("options")->find("budget_per_task")->as_number(), 8.0);
  const JsonValue* sp = begin.find("space");
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->find("dim")->as_number(), 3.0);
  ASSERT_EQ(sp->find("params")->items().size(), 3u);
  const auto& params = sp->find("params")->items();
  EXPECT_EQ(params[0].find("type")->as_string(), "real");
  EXPECT_EQ(params[1].find("type")->as_string(), "integer");
  EXPECT_TRUE(params[1].find("log_scale")->as_bool());
  EXPECT_EQ(params[2].find("type")->as_string(), "categorical");
  ASSERT_EQ(params[2].find("categories")->items().size(), 2u);
  EXPECT_EQ(sp->find("constraints")->items()[0].as_string(), "nb_small");

  // The finalized document for a real (tiny) run.
  const core::MlaResult result = tiny_run(tiny_options());
  const JsonValue final_doc =
      JsonValue::parse(manifest.final_json(result), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(final_doc.find("status")->as_string(), "complete");
  EXPECT_EQ(final_doc.find("evaluations")->as_number(),
            static_cast<double>(result.evaluations));
  ASSERT_EQ(final_doc.find("best")->items().size(), 2u);
  EXPECT_FALSE(final_doc.find("profiles")->items().empty());
  EXPECT_EQ(final_doc.find("trajectory_digest")->as_string().rfind("0x", 0),
            0u);
  ASSERT_NE(final_doc.find("metrics"), nullptr);
  EXPECT_TRUE(final_doc.find("metrics")->is_object());
}

TEST(RunManifest, SpaceHashSeparatesSpacesAndIsStable) {
  const core::Space a = demo_space();
  const core::Space b = demo_space();
  EXPECT_EQ(core::RunManifest::space_hash(a), core::RunManifest::space_hash(b));

  core::Space c;
  c.add_real("x", 0.0, 2.0);  // one bound differs from demo_space's "x"
  c.add_integer("nb", 1, 64, true);
  c.add_categorical("layout", {"row", "col"});
  c.add_constraint("nb_small",
                   [](const core::Config& cc) { return cc[1] <= 32.0; });
  EXPECT_NE(core::RunManifest::space_hash(a), core::RunManifest::space_hash(c));
}

// The §3.12 observe-only contract: recorder + heartbeat + manifest all on
// must leave the tuning trajectory bitwise identical.
TEST(RunManifest, FullObservabilityIsObserveOnly) {
  const core::MlaResult plain = tiny_run(tiny_options());

  const std::string dir = make_temp_dir();
  const std::string manifest_path = dir + "/manifest.json";
  fr::reset_for_testing();
  fr::configure_dump_dir(dir);
  fr::configure_heartbeat(0.001);
  setenv("GPTUNE_MANIFEST", manifest_path.c_str(), 1);
  const core::MlaResult observed = tiny_run(tiny_options());
  unsetenv("GPTUNE_MANIFEST");
  fr::reset_for_testing();

  EXPECT_EQ(core::RunManifest::trajectory_digest(plain),
            core::RunManifest::trajectory_digest(observed));
  ASSERT_EQ(plain.tasks.size(), observed.tasks.size());
  for (std::size_t i = 0; i < plain.tasks.size(); ++i) {
    EXPECT_EQ(plain.tasks[i].best(), observed.tasks[i].best());
    EXPECT_EQ(plain.tasks[i].best_config(), observed.tasks[i].best_config());
  }

  // And the instrumented run left a complete, parseable manifest behind.
  std::string error;
  const JsonValue doc = JsonValue::parse(slurp(manifest_path), &error);
  ASSERT_TRUE(error.empty()) << error;
  EXPECT_EQ(doc.find("status")->as_string(), "complete");
  EXPECT_EQ(doc.find("schema")->as_string(), "gptune-run-manifest/1");
}

}  // namespace

#else  // !GPTUNE_TELEMETRY

TEST(FlightRecorder, CompiledOut) {
  // The OFF build still links: every hook is an inline no-op.
  gptune::telemetry::flight_recorder::note(
      gptune::telemetry::flight_recorder::EventKind::kInstant, "x", "y");
  EXPECT_FALSE(gptune::telemetry::flight_recorder::dump_now("unit"));
}

#endif  // GPTUNE_TELEMETRY
