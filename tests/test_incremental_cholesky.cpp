// Incremental factor maintenance (DESIGN.md §3.10):
//   * blocked_cholesky_extend must be *bitwise* identical to refactorizing
//     the extended matrix from scratch — the contract the incremental LCM
//     refit's trajectory guarantee rests on — across append boundaries
//     straddling the 128 tile edge, serial and pooled;
//   * rank-1/rank-k up/downdates and row removal (the penalized-sample
//     shapes) agree with a fresh factorization to rounding;
//   * non-PD extensions and downdates report failure instead of returning
//     a garbage factor.
#include <gtest/gtest.h>

#include <cmath>
#include <utility>

#include "common/rng.hpp"
#include "linalg/blocked_cholesky.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/incremental_cholesky.hpp"
#include "linalg/matrix.hpp"
#include "runtime/thread_pool.hpp"

namespace {

using gptune::common::Rng;
using gptune::linalg::blocked_cholesky;
using gptune::linalg::blocked_cholesky_extend;
using gptune::linalg::cholesky_rank1_downdate;
using gptune::linalg::cholesky_rank1_update;
using gptune::linalg::cholesky_rank_k_downdate;
using gptune::linalg::cholesky_rank_k_update;
using gptune::linalg::cholesky_remove_row;
using gptune::linalg::CholeskyFactor;
using gptune::linalg::Matrix;
using gptune::linalg::Vector;

Matrix random_spd(std::size_t n, Rng& rng) {
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < n; ++k) s += b(i, k) * b(j, k);
      a(i, j) = s;
    }
  }
  for (std::size_t i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

double max_lower_diff(const Matrix& a, const Matrix& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m = std::max(m, std::abs(a(i, j) - b(i, j)));
    }
  }
  return m;
}

// Working matrix for an extension: the factor of the leading n_old block in
// rows [0, n_old), raw covariance rows below — the exact layout
// blocked_cholesky_extend documents.
Matrix extension_input(const Matrix& a, const Matrix& l_old,
                       std::size_t n_old) {
  const std::size_t n = a.rows();
  Matrix w(n, n, 0.0);
  for (std::size_t i = 0; i < n_old; ++i) {
    for (std::size_t j = 0; j <= i; ++j) w(i, j) = l_old(i, j);
  }
  for (std::size_t i = n_old; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) w(i, j) = a(i, j);
  }
  return w;
}

// (n_old, appended) pairs straddling the 128 tile boundary from both sides:
// append within the first tile, across one boundary, starting exactly on a
// boundary, multi-tile, and the single-row refit shape.
class CholeskyExtendBitwise
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(CholeskyExtendBitwise, SerialMatchesFullRefactorization) {
  const auto [n_old, appended] = GetParam();
  const std::size_t n = n_old + appended;
  Rng rng(4000 + 7 * n_old + appended);
  const Matrix a = random_spd(n, rng);
  const Matrix a_old = a.block(0, 0, n_old, n_old);

  auto full = blocked_cholesky(a, 128);
  auto old_factor = blocked_cholesky(a_old, 128);
  ASSERT_TRUE(full.has_value());
  ASSERT_TRUE(old_factor.has_value());

  Matrix w = extension_input(a, old_factor->lower(), n_old);
  ASSERT_TRUE(blocked_cholesky_extend(w, n_old, 128));

  // Bitwise, not tolerance: the extension replays the exact operation
  // sequence of the full blocked factorization on the new rows.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(w(i, j), full->lower()(i, j))
          << "extend diverges from refactorization at (" << i << "," << j
          << ")";
    }
  }
}

TEST_P(CholeskyExtendBitwise, PooledMatchesSerial) {
  const auto [n_old, appended] = GetParam();
  const std::size_t n = n_old + appended;
  Rng rng(5000 + 7 * n_old + appended);
  const Matrix a = random_spd(n, rng);
  const Matrix a_old = a.block(0, 0, n_old, n_old);

  auto old_factor = blocked_cholesky(a_old, 128);
  ASSERT_TRUE(old_factor.has_value());

  Matrix serial = extension_input(a, old_factor->lower(), n_old);
  ASSERT_TRUE(blocked_cholesky_extend(serial, n_old, 128));

  gptune::rt::ThreadPool pool(4);
  Matrix pooled = extension_input(a, old_factor->lower(), n_old);
  ASSERT_TRUE(blocked_cholesky_extend(pooled, n_old, 128,
                                      pool.batch_runner()));

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(pooled(i, j), serial(i, j))
          << "pooled extension differs at (" << i << "," << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CholeskyExtendBitwise,
    ::testing::Values(std::make_pair(std::size_t{100}, std::size_t{28}),
                      std::make_pair(std::size_t{120}, std::size_t{16}),
                      std::make_pair(std::size_t{128}, std::size_t{64}),
                      std::make_pair(std::size_t{250}, std::size_t{80}),
                      std::make_pair(std::size_t{256}, std::size_t{1}),
                      std::make_pair(std::size_t{64}, std::size_t{200})));

TEST(CholeskyExtend, NoopWhenNothingAppended) {
  Rng rng(11);
  const Matrix a = random_spd(40, rng);
  auto factor = blocked_cholesky(a, 128);
  ASSERT_TRUE(factor.has_value());
  Matrix w = factor->lower();
  EXPECT_TRUE(blocked_cholesky_extend(w, 40, 128));
  EXPECT_EQ(max_lower_diff(w, factor->lower()), 0.0);
}

TEST(CholeskyExtend, NonPositiveDefiniteExtensionFails) {
  // Appending an exact duplicate of row 0 makes the extended matrix
  // singular: the Schur complement of the new row is zero, so the extension
  // must hit a non-positive pivot and report failure (the incremental refit
  // then falls back to a jittered refactorization).
  const std::size_t n_old = 130, n = n_old + 1;
  Rng rng(12);
  const Matrix a_old = random_spd(n_old, rng);
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n_old; ++i) {
    for (std::size_t j = 0; j < n_old; ++j) a(i, j) = a_old(i, j);
  }
  for (std::size_t j = 0; j < n_old; ++j) {
    a(n_old, j) = a_old(0, j);
    a(j, n_old) = a_old(j, 0);
  }
  a(n_old, n_old) = a_old(0, 0);

  auto old_factor = blocked_cholesky(a_old, 128);
  ASSERT_TRUE(old_factor.has_value());
  Matrix w = extension_input(a, old_factor->lower(), n_old);
  EXPECT_FALSE(blocked_cholesky_extend(w, n_old, 128));
}

TEST(CholeskyExtend, FlopsAreTheNewRowShare) {
  using gptune::linalg::cholesky_extend_flops;
  using gptune::linalg::cholesky_flops;
  EXPECT_DOUBLE_EQ(cholesky_extend_flops(100, 128),
                   cholesky_flops(128) - cholesky_flops(100));
  EXPECT_DOUBLE_EQ(cholesky_extend_flops(0, 64), cholesky_flops(64));
  EXPECT_DOUBLE_EQ(cholesky_extend_flops(64, 64), 0.0);
}

TEST(CholeskyRank1, UpdateMatchesRefactorization) {
  const std::size_t n = 60;
  Rng rng(21);
  const Matrix a = random_spd(n, rng);
  Vector v(n);
  for (auto& x : v) x = rng.normal();

  auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  Matrix l = factor->lower();
  cholesky_rank1_update(l, v);

  Matrix au = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) au(i, j) += v[i] * v[j];
  }
  auto fresh = CholeskyFactor::factor(au);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_LT(max_lower_diff(l, fresh->lower()), 1e-9 * static_cast<double>(n));
}

TEST(CholeskyRank1, DowndateMatchesRefactorization) {
  const std::size_t n = 60;
  Rng rng(22);
  const Matrix a = random_spd(n, rng);
  // Small enough perturbation that A - v v^T stays comfortably PD
  // (random_spd adds +n to the diagonal).
  Vector v(n);
  for (auto& x : v) x = 0.1 * rng.normal();

  auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());
  Matrix l = factor->lower();
  ASSERT_TRUE(cholesky_rank1_downdate(l, v));

  Matrix ad = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) ad(i, j) -= v[i] * v[j];
  }
  auto fresh = CholeskyFactor::factor(ad);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_LT(max_lower_diff(l, fresh->lower()), 1e-9 * static_cast<double>(n));
}

TEST(CholeskyRank1, DowndateDetectsLostPositiveDefiniteness) {
  // A = I, v = 2 e_0: A - v v^T has -3 in the corner; the rotation sweep
  // must refuse rather than produce NaNs.
  const std::size_t n = 8;
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) l(i, i) = 1.0;
  Vector v(n, 0.0);
  v[0] = 2.0;
  EXPECT_FALSE(cholesky_rank1_downdate(l, v));
}

TEST(CholeskyRankK, UpdateThenDowndateRoundTrips) {
  const std::size_t n = 70, k = 3;
  Rng rng(23);
  const Matrix a = random_spd(n, rng);
  Matrix v(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < k; ++j) v(i, j) = 0.3 * rng.normal();
  }

  auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());

  // Parity of the rank-k update against refactorizing A + V V^T.
  Matrix l = factor->lower();
  cholesky_rank_k_update(l, v);
  Matrix au = a;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double s = 0.0;
      for (std::size_t c = 0; c < k; ++c) s += v(i, c) * v(j, c);
      au(i, j) += s;
    }
  }
  auto fresh = CholeskyFactor::factor(au);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_LT(max_lower_diff(l, fresh->lower()), 1e-9 * static_cast<double>(n));

  // Downdating by the same V must return to the original factor.
  ASSERT_TRUE(cholesky_rank_k_downdate(l, v));
  EXPECT_LT(max_lower_diff(l, factor->lower()),
            1e-8 * static_cast<double>(n));
}

class CholeskyRemoveRow : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CholeskyRemoveRow, MatchesRefactorizationOfReducedMatrix) {
  // The delete-a-penalized-sample shape: drop row/column idx from A and
  // compare the repaired factor against factoring the reduced matrix.
  const std::size_t n = 12;
  const std::size_t idx = GetParam();
  Rng rng(24);
  const Matrix a = random_spd(n, rng);
  auto factor = CholeskyFactor::factor(a);
  ASSERT_TRUE(factor.has_value());

  const Matrix reduced_l = cholesky_remove_row(factor->lower(), idx);

  Matrix ar(n - 1, n - 1);
  for (std::size_t i = 0, ri = 0; i < n; ++i) {
    if (i == idx) continue;
    for (std::size_t j = 0, rj = 0; j < n; ++j) {
      if (j == idx) continue;
      ar(ri, rj) = a(i, j);
      ++rj;
    }
    ++ri;
  }
  auto fresh = CholeskyFactor::factor(ar);
  ASSERT_TRUE(fresh.has_value());
  EXPECT_LT(max_lower_diff(reduced_l, fresh->lower()),
            1e-10 * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(FirstMiddleLast, CholeskyRemoveRow,
                         ::testing::Values(std::size_t{0}, std::size_t{5},
                                           std::size_t{11}));

}  // namespace
