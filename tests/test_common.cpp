// Unit tests for common/: RNG determinism and distribution sanity,
// statistics helpers, logging levels.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace {

using gptune::common::Rng;
using gptune::common::RunningStats;

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double s = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) s += rng.uniform();
  EXPECT_NEAR(s / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(17);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 6);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntSingleValue) {
  Rng rng(19);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(42, 42), 42);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(23);
  const int n = 200000;
  double s = 0.0, s2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    s += v;
    s2 += v * v;
  }
  EXPECT_NEAR(s / n, 0.0, 0.02);
  EXPECT_NEAR(s2 / n, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(29);
  const int n = 50000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.normal(10.0, 2.0);
  EXPECT_NEAR(s / n, 10.0, 0.1);
}

TEST(Rng, LognormalPositive) {
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, LognormalMedianNearOne) {
  Rng rng(37);
  std::vector<double> v(20001);
  for (auto& x : v) x = rng.lognormal(0.0, 0.3);
  EXPECT_NEAR(gptune::common::median(v), 1.0, 0.05);
}

TEST(Rng, GammaMeanIsShapeTimesScale) {
  Rng rng(41);
  const int n = 50000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) s += rng.gamma(3.0, 2.0);
  EXPECT_NEAR(s / n, 6.0, 0.15);
}

TEST(Rng, GammaShapeBelowOne) {
  Rng rng(43);
  const int n = 50000;
  double s = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gamma(0.5, 1.0);
    EXPECT_GT(v, 0.0);
    s += v;
  }
  EXPECT_NEAR(s / n, 0.5, 0.05);
}

TEST(Rng, GammaRejectsBadArguments) {
  Rng rng(47);
  EXPECT_THROW(rng.gamma(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(rng.gamma(1.0, -1.0), std::invalid_argument);
}

TEST(Rng, CategoricalProportions) {
  Rng rng(53);
  std::vector<double> w = {1.0, 3.0};
  int count1 = 0;
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    if (rng.categorical(w) == 1) ++count1;
  }
  EXPECT_NEAR(static_cast<double>(count1) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalSkipsZeroWeight) {
  Rng rng(59);
  std::vector<double> w = {0.0, 1.0, 0.0};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.categorical(w), 1u);
}

TEST(Rng, CategoricalThrowsOnAllZero) {
  Rng rng(61);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(w), std::invalid_argument);
}

TEST(Rng, PermutationIsPermutation) {
  Rng rng(67);
  const auto p = rng.permutation(50);
  std::set<std::size_t> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0u);
  EXPECT_EQ(*s.rbegin(), 49u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(71);
  Rng child = parent.split();
  // The child stream should differ from the parent's continuation.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

// --- stats ---

TEST(Stats, MeanAndVariance) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(gptune::common::mean(v), 2.5);
  EXPECT_NEAR(gptune::common::variance(v), 5.0 / 3.0, 1e-12);
}

TEST(Stats, EmptyVectorDefaults) {
  std::vector<double> v;
  EXPECT_EQ(gptune::common::mean(v), 0.0);
  EXPECT_EQ(gptune::common::variance(v), 0.0);
  EXPECT_TRUE(std::isinf(gptune::common::min(v)));
  EXPECT_TRUE(std::isnan(gptune::common::median(v)));
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(gptune::common::median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(gptune::common::median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(Stats, QuantileInterpolates) {
  std::vector<double> v = {0.0, 1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(gptune::common::quantile(v, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(gptune::common::quantile(v, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(gptune::common::quantile(v, 0.25), 1.0);
  EXPECT_DOUBLE_EQ(gptune::common::quantile(v, 0.5), 2.0);
}

TEST(Stats, MinMax) {
  std::vector<double> v = {3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(gptune::common::min(v), -1.0);
  EXPECT_DOUBLE_EQ(gptune::common::max(v), 7.0);
}

TEST(Stats, NormalPdfPeak) {
  EXPECT_NEAR(gptune::common::normal_pdf(0.0), 0.3989422804, 1e-9);
  EXPECT_NEAR(gptune::common::normal_pdf(1.0),
              gptune::common::normal_pdf(-1.0), 1e-15);
}

TEST(Stats, NormalCdfValues) {
  EXPECT_NEAR(gptune::common::normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(gptune::common::normal_cdf(1.959964), 0.975, 1e-5);
  EXPECT_NEAR(gptune::common::normal_cdf(-1.959964), 0.025, 1e-5);
}

TEST(Stats, RunningStatsMatchesBatch) {
  gptune::common::Rng rng(73);
  std::vector<double> v(500);
  RunningStats rs;
  for (auto& x : v) {
    x = rng.normal(3.0, 2.0);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), gptune::common::mean(v), 1e-10);
  EXPECT_NEAR(rs.variance(), gptune::common::variance(v), 1e-8);
  EXPECT_DOUBLE_EQ(rs.min(), gptune::common::min(v));
  EXPECT_DOUBLE_EQ(rs.max(), gptune::common::max(v));
}

TEST(Stats, RunningStatsEmpty) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_EQ(rs.mean(), 0.0);
  EXPECT_EQ(rs.variance(), 0.0);
}

// --- log ---

TEST(Log, LevelFilters) {
  using gptune::common::LogLevel;
  gptune::common::set_log_level(LogLevel::kError);
  EXPECT_EQ(gptune::common::log_level(), LogLevel::kError);
  gptune::common::log_info("suppressed ", 42);  // must not crash
  gptune::common::set_log_level(LogLevel::kWarn);
}

}  // namespace
