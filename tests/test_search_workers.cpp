// Determinism battery for the persistent search-worker group (paper Fig. 1
// search workers): distinct per-(task, iteration) RNG streams, index-order
// collection, spawn-once-per-run lifecycle, and bitwise-identical MLA
// trajectories at any search_workers count on both the single-objective
// PSO path and the multi-objective NSGA-II path — with and without
// injected objective faults.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "apps/fault_injection.hpp"
#include "common/telemetry/telemetry.hpp"
#include "core/mla.hpp"
#include "core/search_workers.hpp"
#include "runtime/rtcheck.hpp"

namespace {

using namespace gptune;
using namespace gptune::core;

Space box2d() {
  Space s;
  s.add_real("x", 0.0, 1.0);
  s.add_real("y", 0.0, 1.0);
  return s;
}

// Pure single-objective family: minimum at (t, 1 - t), value 0.01.
MultiObjectiveFn family_fn() {
  return [](const TaskVector& t, const Config& c) {
    const double dx = c[0] - t[0];
    const double dy = c[1] - (1.0 - t[0]);
    return std::vector<double>{dx * dx + dy * dy + 0.01};
  };
}

// Convex trade-off: f1 likes x = 0, f2 likes x = 1; y is mild slack.
MultiObjectiveFn biobjective_fn() {
  return [](const TaskVector&, const Config& c) {
    const double f1 = c[0] * c[0] + 0.2 * c[1] * c[1] + 0.01;
    const double f2 =
        (c[0] - 1.0) * (c[0] - 1.0) + 0.2 * c[1] * c[1] + 0.01;
    return std::vector<double>{f1, f2};
  };
}

// Deterministic virtual cost (the objective value itself) so timeouts and
// makespans are reproducible.
EvalPolicy simulated_policy() {
  EvalPolicy policy;
  policy.virtual_cost = [](const TaskVector&, const Config&,
                           const std::vector<double>& y) {
    return y.empty() ? 1.0 : y[0];
  };
  return policy;
}

MlaOptions fast_options() {
  MlaOptions opt;
  opt.budget_per_task = 14;
  opt.model_restarts = 2;
  opt.max_lbfgs_iterations = 20;
  opt.seed = 42;
  return opt;
}

/// Bitwise fingerprint of a trajectory: every config value and objective
/// of every evaluation, in order, as exact bit patterns.
std::vector<std::uint64_t> fingerprint(const MlaResult& result) {
  std::vector<std::uint64_t> bits;
  auto push = [&bits](double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    std::memcpy(&b, &v, sizeof(b));
    bits.push_back(b);
  };
  for (const auto& th : result.tasks) {
    for (const auto& e : th.evals) {
      for (double v : e.config) push(v);
      for (double v : e.objectives) push(v);
    }
  }
  return bits;
}

// --- RNG stream derivation (satellite: SplitMix64 replaces the old
// xor-of-multiplies scheme, which could collide across pairs) ------------

TEST(SearchStreamSeed, DistinctAcrossTaskIterationGrid) {
  std::set<std::uint64_t> streams;
  const std::size_t n = 64;
  for (std::size_t task = 0; task < n; ++task) {
    for (std::size_t iteration = 0; iteration < n; ++iteration) {
      streams.insert(search_stream_seed(1234, task, iteration));
    }
  }
  EXPECT_EQ(streams.size(), n * n);
}

TEST(SearchStreamSeed, DependsOnBaseSeed) {
  EXPECT_NE(search_stream_seed(1, 3, 5), search_stream_seed(2, 3, 5));
}

// --- group protocol: index order, RNG parity, clean lifecycle -----------

TEST(SearchWorkers, DispatchCollectsInIndexOrderAtAnyWorkerCount) {
  // Job: first uniform draw of the stream, labeled with the task index.
  SearchWorkerGroup::SearchFn fn = [](std::size_t task,
                                      common::Rng& rng) -> std::vector<Config> {
    return {Config{static_cast<double>(task), rng.uniform()}};
  };
  const std::vector<std::size_t> tasks = {4, 1, 7, 2, 9};

  SearchWorkerGroup inline_group(1, 99);
  const auto base = inline_group.dispatch(tasks, 3, fn);
  ASSERT_EQ(base.size(), tasks.size());
  for (std::size_t a = 0; a < tasks.size(); ++a) {
    EXPECT_EQ(base[a].configs[0][0], static_cast<double>(tasks[a]));
  }

  for (std::size_t workers : {2u, 4u, 8u}) {
    SearchWorkerGroup group(workers, 99);
    EXPECT_TRUE(group.spawned());
    // Two dispatches over the same live group (different iterations), as
    // the tuner issues across MLA iterations.
    for (std::size_t iteration : {3u, 4u}) {
      const auto got = group.dispatch(tasks, iteration, fn);
      const auto want = inline_group.dispatch(tasks, iteration, fn);
      ASSERT_EQ(got.size(), want.size());
      for (std::size_t a = 0; a < got.size(); ++a) {
        EXPECT_EQ(got[a].configs, want[a].configs)
            << "workers=" << workers << " job " << a;
      }
    }
  }
}

TEST(SearchWorkers, TeardownIsCleanUnderRtcheck) {
  {
    SearchWorkerGroup group(4, 7);
    SearchWorkerGroup::SearchFn fn =
        [](std::size_t, common::Rng& rng) -> std::vector<Config> {
      return {Config{rng.uniform()}};
    };
    group.dispatch({0, 1, 2}, 0, fn);
  }
  // Terminate handshake done: no leaked messages, no live spawned group.
  // (Both checks are trivially clean in a build without GPTUNE_RTCHECK.)
  EXPECT_EQ(rt::rtcheck::count(rt::rtcheck::FindingKind::kMessageLeak), 0u);
  EXPECT_EQ(rt::rtcheck::live_spawn_count(), 0u);
}

// --- MLA trajectory identity across worker counts -----------------------

TEST(SearchWorkers, SingleObjectiveTrajectoryIdenticalAcrossWorkerCounts) {
  auto run = [](std::size_t workers) {
    MlaOptions opt = fast_options();
    opt.search_workers = workers;
    MultitaskTuner tuner(box2d(), family_fn(), opt);
    return tuner.run({{0.2}, {0.5}, {0.8}});
  };
  const auto base = fingerprint(run(1));
  ASSERT_FALSE(base.empty());
  for (std::size_t workers : {2u, 4u}) {
    EXPECT_EQ(fingerprint(run(workers)), base) << "workers=" << workers;
  }
}

TEST(SearchWorkers, MultiObjectiveTrajectoryIdenticalAcrossWorkerCounts) {
  auto run = [](std::size_t workers) {
    MlaOptions opt = fast_options();
    opt.num_objectives = 2;
    opt.budget_per_task = 16;
    opt.batch_k = 3;
    opt.search_workers = workers;
    MultitaskTuner tuner(box2d(), biobjective_fn(), opt);
    return tuner.run({{0.0}, {1.0}});
  };
  const auto base = fingerprint(run(1));
  ASSERT_FALSE(base.empty());
  for (std::size_t workers : {2u, 4u}) {
    EXPECT_EQ(fingerprint(run(workers)), base) << "workers=" << workers;
  }
}

TEST(SearchWorkers, FaultyTrajectoryIdenticalAcrossWorkerCounts) {
  apps::FaultSpec spec;
  spec.crash_rate = 0.1;
  spec.nan_rate = 0.1;
  spec.hang_rate = 0.1;
  spec.hang_factor = 1.0e3;
  spec.seed = 11;

  auto run = [&](std::size_t workers) {
    MlaOptions opt = fast_options();
    opt.budget_per_task = 12;
    opt.search_workers = workers;
    opt.objective_workers = 2;  // both persistent groups live at once
    opt.evaluation = simulated_policy();
    opt.evaluation.timeout_seconds = 50.0;  // kills "hung" runs
    MultitaskTuner tuner(box2d(), apps::with_faults(family_fn(), spec), opt);
    return tuner.run({{0.25}, {0.75}});
  };

  const MlaResult base = run(1);
  EXPECT_GT(base.eval_stats.penalized, 0u);  // faults actually fired
  const auto base_bits = fingerprint(base);
  for (std::size_t workers : {2u, 4u}) {
    const MlaResult other = run(workers);
    EXPECT_EQ(other.eval_stats.penalized, base.eval_stats.penalized);
    EXPECT_EQ(fingerprint(other), base_bits) << "workers=" << workers;
  }
}

// --- spawn-once lifecycle (acceptance: one search spawn per run) --------

#if defined(GPTUNE_TELEMETRY)
TEST(SearchWorkers, GroupIsSpawnedOncePerRunNotPerIteration) {
  MlaOptions opt = fast_options();
  opt.search_workers = 4;  // many iterations, one spawn
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  const std::uint64_t before = telemetry::counter("runtime.spawns").value();
  auto result = tuner.run({{0.2}, {0.8}});
  const std::uint64_t after = telemetry::counter("runtime.spawns").value();
  // The run spans several MLA iterations...
  ASSERT_GE(result.tasks[0].evals.size(), 14u);
  // ...but exactly one group was spawned: the search workers (the eval
  // engine spawns none at objective_workers = 1).
  EXPECT_EQ(after - before, 1u);
  // And it is torn down by run end (trivially 0 without GPTUNE_RTCHECK).
  EXPECT_EQ(rt::rtcheck::live_spawn_count(), 0u);
}
#endif  // GPTUNE_TELEMETRY

TEST(SearchWorkers, MlaRunIsProtocolCleanUnderRtcheck) {
  if (!rt::rtcheck::enabled()) {
    GTEST_SKIP() << "built without GPTUNE_RTCHECK";
  }
  rt::rtcheck::reset();
  MlaOptions opt = fast_options();
  opt.num_objectives = 2;
  opt.budget_per_task = 12;
  opt.batch_k = 3;
  opt.search_workers = 3;
  opt.objective_workers = 2;
  MultitaskTuner tuner(box2d(), biobjective_fn(), opt);
  tuner.run({{0.0}, {1.0}});
  EXPECT_TRUE(rt::rtcheck::findings().empty());
  EXPECT_EQ(rt::rtcheck::live_spawn_count(), 0u);
  rt::rtcheck::reset();
}

}  // namespace
