// Table-driven tests for the gptune_lint analyzer, fed by the on-disk
// fixture corpus (tests/lint_fixtures/, one file per rule behavior).
//
// Each FixtureCase runs one fixture through the real analyzer at a mocked
// tree path — the rules are path-scoped, so the same file can be a
// violation in src/core/ and sanctioned in src/runtime/ — and asserts the
// exact `rule@line` findings plus the allow() suppression count. The
// cross-file passes (guarded-name collection for lock-discipline, include
// cycles for layering) are driven through lint_sources() on the
// crossfile/ sets. The fixture directory itself is skipped by lint_paths,
// so the deliberate violations never trip the lint_tree gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "linter.hpp"

namespace lint = gptune::lint;

namespace {

std::string fixture_path(const std::string& name) {
  return std::string(GPTUNE_LINT_FIXTURE_DIR) + "/" + name;
}

std::string read_fixture(const std::string& name) {
  std::ifstream in(fixture_path(name), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << fixture_path(name);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Findings rendered as "rule@line rule@line ..." in report order, so a
/// test failure shows the full delta in one line.
std::string findings_key(const std::vector<lint::Finding>& findings) {
  std::string out;
  for (const auto& f : findings) {
    if (!out.empty()) out += " ";
    out += f.rule + "@" + std::to_string(f.line);
  }
  return out;
}

struct FixtureCase {
  const char* name;        ///< test instantiation label
  const char* fixture;     ///< file under tests/lint_fixtures/
  const char* mock_path;   ///< virtual tree location handed to the analyzer
  const char* expect;      ///< expected findings_key(); "" = clean
  std::size_t suppressed;  ///< expected allow() suppression count
};

const FixtureCase kCases[] = {
    // Determinism pattern rules, positive and path-scoped negative.
    {"random_device", "random_device.cpp", "src/core/x.cpp",
     "random-device@1", 0},
    {"rand_and_time_seed", "rand_time_seed.cpp", "src/core/x.cpp",
     "rand@1 time-seed@1 rand@2", 0},
    {"raw_thread_in_core", "raw_thread.cpp", "src/core/x.cpp",
     "raw-thread@1", 0},
    {"raw_thread_in_runtime_ok", "raw_thread.cpp", "src/runtime/comm.cpp",
     "", 0},
    {"arrival_recv_wildcard", "arrival_recv_wildcard.cpp", "src/core/x.cpp",
     "arrival-recv@1", 0},
    {"arrival_recv_any_source", "arrival_recv_any_source.cpp",
     "src/core/x.cpp", "arrival-recv@1", 0},
    {"arrival_recv_pinned_ok", "arrival_recv_pinned.cpp", "src/core/x.cpp",
     "", 0},
    {"arrival_recv_runtime_ok", "arrival_recv_wildcard.cpp",
     "src/runtime/comm.cpp", "", 0},
    {"arrival_recv_completion_log_ok", "arrival_recv_wildcard.cpp",
     "src/core/completion_log.cpp", "", 0},
    {"arrival_recv_tests_ok", "arrival_recv_wildcard.cpp",
     "tests/test_runtime.cpp", "", 0},
    {"wall_clock_in_core", "wall_clock.cpp", "src/core/x.cpp",
     "wall-clock@1 wall-clock@2", 0},
    {"wall_clock_timer_ok", "wall_clock.cpp", "src/common/timer.hpp", "", 0},
    {"wall_clock_telemetry_ok", "wall_clock.cpp",
     "src/common/telemetry/telemetry.cpp", "", 0},
    {"wall_clock_runtime_ok", "wall_clock.cpp", "src/runtime/comm.cpp",
     "", 0},
    {"full_refactor_in_gp", "full_refactor_blocked.cpp", "src/gp/x.cpp",
     "full-refactor@1", 0},
    {"full_refactor_jitter_in_core", "full_refactor_jitter.cpp",
     "src/core/x.cpp", "full-refactor@1", 0},
    {"full_refactor_extend_ok", "full_refactor_extend.cpp", "src/gp/x.cpp",
     "", 0},
    {"full_refactor_linalg_home_ok", "full_refactor_blocked.cpp",
     "src/linalg/blocked_cholesky.cpp", "", 0},
    {"full_refactor_tests_ok", "full_refactor_blocked.cpp",
     "tests/test_linalg.cpp", "", 0},
    {"full_refactor_suppressed", "full_refactor_suppressed.cpp",
     "src/gp/x.cpp", "", 1},
    {"unordered_iter_direct", "unordered_iter_direct.cpp", "src/core/x.cpp",
     "unordered-iter@2", 0},
    {"unordered_iter_alias", "unordered_iter_alias.cpp", "src/core/x.cpp",
     "unordered-iter@3", 0},
    {"unordered_iter_clean", "unordered_iter_clean.cpp", "src/core/x.cpp",
     "", 0},

    // Suppression reach: same line, preceding line, a contiguous run of
    // comment-only lines — but not across a blank line, and never for a
    // different rule.
    {"suppress_same_line", "suppress_same_line.cpp", "src/core/x.cpp", "",
     1},
    {"suppress_preceding_line", "suppress_preceding_line.cpp",
     "src/core/x.cpp", "", 1},
    {"suppress_comment_run", "suppress_comment_run.cpp", "src/core/x.cpp",
     "", 1},
    {"suppress_blank_gap_fails", "suppress_blank_gap.cpp", "src/core/x.cpp",
     "rand@3", 0},
    {"suppress_wrong_rule_fails", "suppress_wrong_rule.cpp",
     "src/core/x.cpp", "rand@1", 0},
    {"suppress_all_wildcard", "suppress_all.cpp", "src/core/x.cpp", "", 2},

    // suppression-audit: every allow() must carry a reason. The directive
    // still suppresses (so one misuse yields one finding, not two), but
    // the audit finding itself cannot be suppressed away.
    {"audit_missing_reason", "audit_missing_reason.cpp", "src/core/x.cpp",
     "suppression-audit@1", 1},
    {"audit_with_reason_ok", "audit_with_reason.cpp", "src/core/x.cpp", "",
     1},

    // Lexer: comments and string literals are invisible to the rules,
    // including raw strings and backslash line continuations.
    {"comment_string_immunity", "comment_string_immunity.cpp",
     "src/core/x.cpp", "", 0},
    {"raw_string_immunity", "raw_string.cpp", "src/core/x.cpp", "", 0},
    {"line_continuation", "line_continuation.cpp", "src/core/x.cpp",
     "rand@5", 0},

    // Layering: includes may only point at the same layer or a strictly
    // lower rank (common < linalg < opt/runtime < gp < core < apps);
    // equal-rank cross-layer includes are banned too.
    {"layering_runtime_includes_core", "layering_violation.cpp",
     "src/runtime/foo.cpp", "layering@1", 0},
    {"layering_peer_layer", "layering_peer.cpp", "src/runtime/x.cpp",
     "layering@1", 0},
    {"layering_downward_ok", "layering_ok.cpp", "src/core/foo.cpp", "", 0},

    // lock-discipline blanket rule: records() hands out the HistoryDb
    // store without the mutex; only its home file gets it for free.
    {"lock_records_outside_home", "lock_records.cpp", "src/core/mla.cpp",
     "lock-discipline@1", 0},
    {"lock_records_home_ok", "lock_records.cpp", "src/core/history.hpp", "",
     0},
    {"lock_records_suppressed", "lock_records_suppressed.cpp",
     "src/core/mla.cpp", "", 1},
};

class LintFixtureTest : public ::testing::TestWithParam<FixtureCase> {};

TEST_P(LintFixtureTest, MatchesExpectedFindings) {
  const FixtureCase& c = GetParam();
  const std::string content = read_fixture(c.fixture);
  ASSERT_FALSE(content.empty()) << c.fixture;
  std::size_t suppressed = 0;
  const auto findings = lint::lint_source(c.mock_path, content, &suppressed);
  EXPECT_EQ(findings_key(findings), c.expect)
      << c.fixture << " at " << c.mock_path;
  EXPECT_EQ(suppressed, c.suppressed) << c.fixture;
}

INSTANTIATE_TEST_SUITE_P(Corpus, LintFixtureTest, ::testing::ValuesIn(kCases),
                         [](const ::testing::TestParamInfo<FixtureCase>& i) {
                           return std::string(i.param.name);
                         });

// --- cross-file passes ------------------------------------------------------

TEST(LintCrossFile, GuardedFieldAccessOutsideAccessors) {
  const std::vector<lint::SourceFile> files = {
      {"src/core/decl.hpp", read_fixture("crossfile/decl.hpp")},
      {"src/core/use_bad.cpp", read_fixture("crossfile/use_bad.cpp")},
      {"src/core/use_ok.cpp", read_fixture("crossfile/use_ok.cpp")},
      {"src/core/use_shadow.cpp", read_fixture("crossfile/use_shadow.cpp")},
  };
  // A HistoryDb declared in one file, misused through a non-accessor member
  // in another: only the cross-file pass can see it. The accessor calls in
  // use_ok and the same-named-but-different-type local in use_shadow stay
  // clean.
  const lint::Result r = lint::lint_sources(files);
  ASSERT_EQ(r.findings.size(), 1u) << findings_key(r.findings);
  EXPECT_EQ(r.findings[0].rule, "lock-discipline");
  EXPECT_EQ(r.findings[0].file, "src/core/use_bad.cpp");
  EXPECT_EQ(r.findings[0].line, 2u);

  // Single-TU linting of the misuse alone cannot know the type of
  // `history` and must stay silent — that is what lint_sources adds.
  EXPECT_TRUE(lint::lint_source("src/core/use_bad.cpp",
                                read_fixture("crossfile/use_bad.cpp"))
                  .empty());
}

TEST(LintCrossFile, IncludeCycleIsReported) {
  const std::vector<lint::SourceFile> files = {
      {"src/core/cycle_a.hpp", read_fixture("crossfile/cycle_a.hpp")},
      {"src/core/cycle_b.hpp", read_fixture("crossfile/cycle_b.hpp")},
  };
  const lint::Result r = lint::lint_sources(files);
  ASSERT_FALSE(r.findings.empty());
  EXPECT_EQ(r.findings[0].rule, "layering");
  EXPECT_NE(r.findings[0].message.find("cycle"), std::string::npos)
      << r.findings[0].message;
}

// --- catalog and reporting --------------------------------------------------

TEST(LintCatalog, ListsEveryRule) {
  const auto& rules = lint::rules();
  std::vector<std::string> names;
  for (const auto& r : rules) {
    EXPECT_FALSE(r.name.empty());
    EXPECT_FALSE(r.summary.empty()) << r.name;
    names.push_back(r.name);
  }
  for (const char* required :
       {"random-device", "time-seed", "rand", "raw-thread", "wall-clock",
        "full-refactor", "arrival-recv", "layering", "lock-discipline",
        "suppression-audit", "unordered-iter"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << required << " missing from the catalog";
  }
}

TEST(LintCatalog, JsonSummaryIsMachineReadable) {
  lint::Result result;
  result.files_scanned = 2;
  result.findings.push_back(
      {"rand", "src/x.cpp", 3, "banned", "int v = rand();"});
  const std::string json = lint::to_json(result);
  EXPECT_NE(json.find("\"files_scanned\": 2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"rand\": 1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"line\": 3"), std::string::npos) << json;
}

TEST(LintCatalog, FixtureDirectoryIsSkippedByPathScan) {
  // The corpus is full of deliberate violations; a path scan over it must
  // skip the directory wholesale (lint_tree depends on this).
  const lint::Result r = lint::lint_paths({GPTUNE_LINT_FIXTURE_DIR});
  EXPECT_EQ(r.files_scanned, 0u);
  EXPECT_TRUE(r.findings.empty()) << findings_key(r.findings);
}

}  // namespace
