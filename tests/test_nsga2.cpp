// Tests for NSGA-II and the Pareto utilities: dominance semantics,
// non-dominated sorting layers, crowding distance, and front quality on the
// ZDT1 benchmark with a known Pareto front.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "opt/nsga2.hpp"

namespace {

using namespace gptune::opt;
using gptune::common::Rng;

TEST(Dominance, StrictAndEqualCases) {
  EXPECT_TRUE(dominates({1.0, 1.0}, {2.0, 2.0}));
  EXPECT_TRUE(dominates({1.0, 2.0}, {2.0, 2.0}));
  EXPECT_FALSE(dominates({1.0, 3.0}, {2.0, 2.0}));  // trade-off
  EXPECT_FALSE(dominates({2.0, 2.0}, {2.0, 2.0}));  // equal
  EXPECT_FALSE(dominates({2.0, 2.0}, {1.0, 1.0}));
}

TEST(Dominance, SingleObjectiveReducesToLess) {
  EXPECT_TRUE(dominates({1.0}, {2.0}));
  EXPECT_FALSE(dominates({2.0}, {1.0}));
}

TEST(NonDominatedSort, LayersAreCorrect) {
  // Three layers along the diagonal: (0,0) < (1,1) < (2,2) plus one
  // trade-off point (0, 2) that sits on the first front with (0,0)?
  // No: (0,0) dominates (0,2)? (0<=0, 0<2, strictly better) yes.
  const std::vector<std::vector<double>> values = {
      {0.0, 0.0}, {1.0, 1.0}, {2.0, 2.0}, {0.0, 2.0}, {2.0, 0.0}};
  const auto fronts = non_dominated_sort(values);
  ASSERT_GE(fronts.size(), 2u);
  EXPECT_EQ(fronts[0], std::vector<std::size_t>{0});
  // Second front: (1,1), (0,2), (2,0) are mutually non-dominating.
  EXPECT_EQ(fronts[1].size(), 3u);
}

TEST(NonDominatedSort, AllNonDominatedIsOneFront) {
  const std::vector<std::vector<double>> values = {
      {0.0, 3.0}, {1.0, 2.0}, {2.0, 1.0}, {3.0, 0.0}};
  const auto fronts = non_dominated_sort(values);
  EXPECT_EQ(fronts.size(), 1u);
  EXPECT_EQ(fronts[0].size(), 4u);
}

TEST(NonDominatedSort, ChainGivesOneFrontEach) {
  const std::vector<std::vector<double>> values = {
      {2.0, 2.0}, {1.0, 1.0}, {0.0, 0.0}};
  const auto fronts = non_dominated_sort(values);
  ASSERT_EQ(fronts.size(), 3u);
  EXPECT_EQ(fronts[0][0], 2u);
  EXPECT_EQ(fronts[2][0], 0u);
}

TEST(CrowdingDistance, BoundaryPointsInfinite) {
  const std::vector<std::vector<double>> values = {
      {0.0, 3.0}, {1.0, 2.0}, {2.0, 1.0}, {3.0, 0.0}};
  const std::vector<std::size_t> front = {0, 1, 2, 3};
  const auto d = crowding_distance(values, front);
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[3]));
  EXPECT_FALSE(std::isinf(d[1]));
  EXPECT_FALSE(std::isinf(d[2]));
}

TEST(CrowdingDistance, DenserRegionGetsSmallerDistance) {
  // Points: two clustered in the middle, one spread out.
  const std::vector<std::vector<double>> values = {
      {0.0, 1.0}, {0.45, 0.55}, {0.5, 0.5}, {1.0, 0.0}};
  const std::vector<std::size_t> front = {0, 1, 2, 3};
  const auto d = crowding_distance(values, front);
  // The two middle points are crowded; both finite, and each less than the
  // "spread" a boundary point would have.
  EXPECT_LT(d[1], 1.5);
  EXPECT_LT(d[2], 1.5);
}

TEST(CrowdingDistance, TwoPointsBothInfinite) {
  const std::vector<std::vector<double>> values = {{0.0, 1.0}, {1.0, 0.0}};
  const auto d = crowding_distance(values, {0, 1});
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[1]));
}

TEST(ParetoFilter, RemovesDominated) {
  const std::vector<std::vector<double>> values = {
      {1.0, 1.0}, {0.5, 2.0}, {2.0, 0.5}, {1.5, 1.5}};
  const auto keep = pareto_filter(values);
  EXPECT_EQ(keep.size(), 3u);  // {1.5,1.5} dominated by {1,1}
  for (std::size_t idx : keep) EXPECT_NE(idx, 3u);
}

TEST(ParetoFilter, DuplicatesAllKept) {
  const std::vector<std::vector<double>> values = {{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_EQ(pareto_filter(values).size(), 2u);  // equal points don't dominate
}

// --- edge cases guarding the parallel search fan-out against ordering
// drift: duplicate objectives, crowding ties, and run-to-run stability ---

TEST(NonDominatedSort, DuplicateObjectivesShareAFront) {
  // Equal vectors never dominate each other, so duplicates must land on
  // the same front — and ahead of anything they jointly dominate.
  const std::vector<std::vector<double>> values = {
      {1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}, {1.0, 1.0}};
  const auto fronts = non_dominated_sort(values);
  ASSERT_EQ(fronts.size(), 2u);
  EXPECT_EQ(fronts[0], (std::vector<std::size_t>{0, 1, 3}));
  EXPECT_EQ(fronts[1], std::vector<std::size_t>{2});
}

TEST(CrowdingDistance, AllIdenticalFrontIsDeterministic) {
  // Degenerate front: every point has the same objectives, so hi - lo is
  // zero in both coordinates. The per-objective sweep pins the sorted
  // boundary to infinity and skips interior accumulation; with a stable
  // sort the "boundary" is the first/last point in front order, the same
  // on every call.
  const std::vector<std::vector<double>> values = {
      {1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}, {1.0, 2.0}};
  const std::vector<std::size_t> front = {0, 1, 2, 3};
  const auto first = crowding_distance(values, front);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_TRUE(std::isinf(first[0]));
  EXPECT_TRUE(std::isinf(first[3]));
  EXPECT_EQ(first[1], 0.0);
  EXPECT_EQ(first[2], 0.0);
  EXPECT_EQ(crowding_distance(values, front), first);
}

TEST(CrowdingDistance, SymmetricInteriorPointsTieExactly) {
  // Two interior points in symmetric positions must get bitwise-equal
  // distances — the tie a survival truncation then has to break stably.
  const std::vector<std::vector<double>> values = {
      {0.0, 3.0}, {1.0, 2.0}, {2.0, 1.0}, {3.0, 0.0}};
  const std::vector<std::size_t> front = {0, 1, 2, 3};
  const auto d = crowding_distance(values, front);
  EXPECT_EQ(d[1], d[2]);
  EXPECT_FALSE(std::isinf(d[1]));
}

TEST(Nsga2, RepeatedRunsGiveIdenticalFrontOrdering) {
  // Same seed, twice: points and values must match element-wise in order,
  // not just as sets. A plain std::sort on tied crowding distances would
  // leave this to libstdc++'s pivot choices; the tuner's worker-count
  // determinism contract needs it pinned.
  auto run = [] {
    Rng rng(123);
    Nsga2Options opt;
    opt.population = 40;
    opt.generations = 25;
    // A plateaued second objective manufactures duplicate objective
    // vectors and crowding ties inside the survival truncation.
    auto f = [](const Point& x) {
      const double f1 = std::floor(x[0] * 4.0) / 4.0;
      return std::vector<double>{f1, 1.0 - f1};
    };
    return nsga2_minimize(f, Box::unit(3), rng, opt);
  };
  const auto a = run();
  const auto b = run();
  ASSERT_EQ(a.size(), b.size());
  ASSERT_GE(a.size(), 1u);
  EXPECT_EQ(a.points, b.points);
  EXPECT_EQ(a.values, b.values);
}

// --- ZDT1: known Pareto front f2 = 1 - sqrt(f1) at g = 1 ---

std::vector<double> zdt1(const Point& x) {
  const double f1 = x[0];
  double g = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) g += x[i];
  g = 1.0 + 9.0 * g / static_cast<double>(x.size() - 1);
  const double f2 = g * (1.0 - std::sqrt(f1 / g));
  return {f1, f2};
}

TEST(Nsga2, Zdt1FrontQuality) {
  Rng rng(77);
  Nsga2Options opt;
  opt.population = 60;
  opt.generations = 60;
  const auto front = nsga2_minimize(zdt1, Box::unit(6), rng, opt);
  ASSERT_GE(front.size(), 10u);
  // Every front point should be near the true front f2 = 1 - sqrt(f1).
  double worst_gap = 0.0;
  for (const auto& v : front.values) {
    const double expected_f2 = 1.0 - std::sqrt(v[0]);
    worst_gap = std::max(worst_gap, v[1] - expected_f2);
  }
  EXPECT_LT(worst_gap, 0.25);
}

TEST(Nsga2, FrontIsMutuallyNonDominating) {
  Rng rng(78);
  Nsga2Options opt;
  opt.population = 30;
  opt.generations = 15;
  const auto front = nsga2_minimize(zdt1, Box::unit(4), rng, opt);
  for (std::size_t i = 0; i < front.size(); ++i) {
    for (std::size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(dominates(front.values[i], front.values[j]))
          << "front point " << i << " dominates " << j;
    }
  }
}

TEST(Nsga2, FrontSpreadsAcrossObjectiveSpace) {
  Rng rng(79);
  Nsga2Options opt;
  opt.population = 60;
  opt.generations = 40;
  const auto front = nsga2_minimize(zdt1, Box::unit(5), rng, opt);
  double min_f1 = 1e9, max_f1 = -1e9;
  for (const auto& v : front.values) {
    min_f1 = std::min(min_f1, v[0]);
    max_f1 = std::max(max_f1, v[0]);
  }
  EXPECT_LT(min_f1, 0.15);
  EXPECT_GT(max_f1, 0.7);
}

TEST(Nsga2, PointsWithinBox) {
  Rng rng(80);
  Box box{{-1.0, 2.0}, {0.0, 3.0}};
  auto f = [](const Point& x) {
    return std::vector<double>{x[0] * x[0], (x[1] - 2.5) * (x[1] - 2.5)};
  };
  Nsga2Options opt;
  opt.population = 20;
  opt.generations = 10;
  const auto front = nsga2_minimize(f, box, rng, opt);
  for (const auto& p : front.points) EXPECT_TRUE(box.contains(p));
}

TEST(Nsga2, SingleObjectiveDegeneratesToMinimization) {
  Rng rng(81);
  auto f = [](const Point& x) {
    return std::vector<double>{(x[0] - 0.25) * (x[0] - 0.25)};
  };
  Nsga2Options opt;
  opt.population = 20;
  opt.generations = 20;
  const auto front = nsga2_minimize(f, Box::unit(1), rng, opt);
  ASSERT_GE(front.size(), 1u);
  EXPECT_NEAR(front.points[0][0], 0.25, 0.05);
}

}  // namespace
