// Tests for the single-task GP stack: kernel identities and positive
// semi-definiteness, marginal-likelihood gradient vs finite differences
// (property sweep), posterior interpolation and uncertainty behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "gp/gp_regression.hpp"
#include "gp/kernel.hpp"
#include "linalg/eigen_sym.hpp"

namespace {

using namespace gptune::gp;
using gptune::common::Rng;

Matrix random_points(std::size_t n, std::size_t d, Rng& rng) {
  Matrix x(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) x(i, j) = rng.uniform();
  }
  return x;
}

TEST(Kernel, UnitAtZeroDistance) {
  std::vector<double> ls = {0.5, 0.2};
  EXPECT_DOUBLE_EQ(se_ard({0.3, 0.7}, {0.3, 0.7}, ls), 1.0);
}

TEST(Kernel, SymmetricAndBounded) {
  Rng rng(1);
  std::vector<double> ls = {0.4, 0.6, 0.3};
  for (int i = 0; i < 50; ++i) {
    Vector a = {rng.uniform(), rng.uniform(), rng.uniform()};
    Vector b = {rng.uniform(), rng.uniform(), rng.uniform()};
    const double kab = se_ard(a, b, ls);
    EXPECT_DOUBLE_EQ(kab, se_ard(b, a, ls));
    EXPECT_GT(kab, 0.0);
    EXPECT_LE(kab, 1.0);
  }
}

TEST(Kernel, DecaysWithDistance) {
  std::vector<double> ls = {0.2};
  const double near = se_ard({0.5}, {0.55}, ls);
  const double far = se_ard({0.5}, {0.9}, ls);
  EXPECT_GT(near, far);
}

TEST(Kernel, ArdIgnoresIrrelevantDimension) {
  // Huge lengthscale in dim 1 makes it irrelevant.
  std::vector<double> ls = {0.2, 1e6};
  const double a = se_ard({0.5, 0.0}, {0.5, 1.0}, ls);
  EXPECT_NEAR(a, 1.0, 1e-9);
}

TEST(Kernel, GramMatrixIsPsd) {
  Rng rng(2);
  const Matrix x = random_points(15, 3, rng);
  const Matrix k = se_ard_gram(x, {0.3, 0.5, 0.7});
  EXPECT_GT(gptune::linalg::min_eigenvalue(k), -1e-9);
}

TEST(Kernel, GramFromDistancesMatchesDirect) {
  Rng rng(3);
  const Matrix x = random_points(10, 4, rng);
  const std::vector<double> ls = {0.2, 0.4, 0.8, 1.0};
  const Matrix direct = se_ard_gram(x, ls);
  const auto dist = squared_distance_per_dim(x);
  const Matrix from_dist = se_ard_gram_from_distances(dist, ls);
  EXPECT_LT(Matrix::max_abs_diff(direct, from_dist), 1e-13);
}

TEST(Kernel, CrossMatrixConsistent) {
  Rng rng(4);
  const Matrix x = random_points(6, 2, rng);
  const std::vector<double> ls = {0.3, 0.3};
  const Matrix cross = se_ard_cross(x, x, ls);
  const Matrix gram = se_ard_gram(x, ls);
  EXPECT_LT(Matrix::max_abs_diff(cross, gram), 1e-14);
}

// --- hyperparameter packing ---

TEST(GpHyperparameters, PackUnpackRoundTrip) {
  GpHyperparameters hp;
  hp.lengthscales = {0.1, 2.5};
  hp.signal_variance = 3.0;
  hp.noise_variance = 1e-5;
  const auto theta = hp.pack();
  const auto hp2 = GpHyperparameters::unpack(theta, 2);
  EXPECT_NEAR(hp2.lengthscales[0], 0.1, 1e-12);
  EXPECT_NEAR(hp2.lengthscales[1], 2.5, 1e-12);
  EXPECT_NEAR(hp2.signal_variance, 3.0, 1e-12);
  EXPECT_NEAR(hp2.noise_variance, 1e-5, 1e-17);
}

// --- gradient property sweep ---

class GpGradientSweep : public ::testing::TestWithParam<int> {};

TEST_P(GpGradientSweep, AnalyticMatchesFiniteDifference) {
  Rng rng(1000 + GetParam());
  const std::size_t n = 8, d = 2;
  const Matrix x = random_points(n, d, rng);
  Vector y(n);
  for (auto& v : y) v = rng.normal();

  std::vector<double> theta(d + 2);
  for (std::size_t i = 0; i < d; ++i) theta[i] = std::log(rng.uniform(0.2, 1.0));
  theta[d] = std::log(rng.uniform(0.5, 2.0));
  theta[d + 1] = std::log(rng.uniform(1e-3, 1e-1));

  std::vector<double> grad;
  auto lml = GpRegression::lml_and_gradient(x, y, theta, &grad);
  ASSERT_TRUE(lml.has_value());

  const double h = 1e-6;
  for (std::size_t k = 0; k < theta.size(); ++k) {
    auto tp = theta, tm = theta;
    tp[k] += h;
    tm[k] -= h;
    auto lp = GpRegression::lml_and_gradient(x, y, tp, nullptr);
    auto lm = GpRegression::lml_and_gradient(x, y, tm, nullptr);
    ASSERT_TRUE(lp && lm);
    const double fd = (*lp - *lm) / (2.0 * h);
    EXPECT_NEAR(grad[k], fd, 1e-4 * (std::abs(fd) + 1.0))
        << "theta component " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GpGradientSweep, ::testing::Range(0, 8));

// --- posterior behaviour ---

TEST(GpRegression, InterpolatesTrainingDataAtLowNoise) {
  Rng rng(5);
  const std::size_t n = 10;
  Matrix x = random_points(n, 1, rng);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) y[i] = std::sin(6.0 * x(i, 0));
  GpHyperparameters hp;
  hp.lengthscales = {0.3};
  hp.signal_variance = 1.0;
  hp.noise_variance = 1e-8;
  auto gp = GpRegression::with_hyperparameters(x, y, hp);
  ASSERT_TRUE(gp.has_value());
  for (std::size_t i = 0; i < n; ++i) {
    const auto pred = gp->predict({x(i, 0)});
    EXPECT_NEAR(pred.mean, y[i], 1e-3);
    EXPECT_LT(pred.variance, 1e-3);
  }
}

TEST(GpRegression, UncertaintyGrowsAwayFromData) {
  Matrix x(2, 1);
  x(0, 0) = 0.4;
  x(1, 0) = 0.5;
  Vector y = {0.0, 0.1};
  GpHyperparameters hp;
  hp.lengthscales = {0.1};
  hp.signal_variance = 1.0;
  hp.noise_variance = 1e-6;
  auto gp = GpRegression::with_hyperparameters(x, y, hp);
  ASSERT_TRUE(gp);
  const auto near = gp->predict({0.45});
  const auto far = gp->predict({0.95});
  EXPECT_LT(near.variance, far.variance);
  EXPECT_NEAR(far.variance, 1.0, 0.05);  // reverts to prior
}

TEST(GpRegression, PredictionRevertsToMeanFarAway) {
  Matrix x(3, 1);
  x(0, 0) = 0.1;
  x(1, 0) = 0.15;
  x(2, 0) = 0.2;
  Vector y = {5.0, 5.1, 4.9};  // mean about 5
  GpHyperparameters hp;
  hp.lengthscales = {0.05};
  hp.signal_variance = 1.0;
  hp.noise_variance = 1e-4;
  auto gp = GpRegression::with_hyperparameters(x, y, hp);
  ASSERT_TRUE(gp);
  EXPECT_NEAR(gp->predict({0.95}).mean, 5.0, 0.05);
}

TEST(GpRegression, FitRecoversSmoothFunction) {
  Rng rng(6);
  const std::size_t n = 25;
  Matrix x = random_points(n, 1, rng);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = std::sin(4.0 * x(i, 0)) + 0.01 * rng.normal();
  }
  GpFitOptions opt;
  opt.num_restarts = 3;
  auto gp = GpRegression::fit(x, y, opt);
  ASSERT_TRUE(gp.has_value());
  // Held-out prediction accuracy.
  double max_err = 0.0;
  for (double t = 0.05; t < 1.0; t += 0.1) {
    const double pred = gp->predict({t}).mean;
    max_err = std::max(max_err, std::abs(pred - std::sin(4.0 * t)));
  }
  EXPECT_LT(max_err, 0.15);
}

TEST(GpRegression, FitLikelihoodBeatsRandomHyperparameters) {
  Rng rng(7);
  const std::size_t n = 15;
  Matrix x = random_points(n, 2, rng);
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = x(i, 0) * x(i, 0) + std::cos(3.0 * x(i, 1));
  }
  auto fitted = GpRegression::fit(x, y);
  ASSERT_TRUE(fitted);
  GpHyperparameters bad;
  bad.lengthscales = {5.0, 0.001};
  bad.signal_variance = 0.01;
  bad.noise_variance = 0.5;
  auto manual = GpRegression::with_hyperparameters(x, y, bad);
  ASSERT_TRUE(manual);
  EXPECT_GT(fitted->log_marginal_likelihood(),
            manual->log_marginal_likelihood());
}

TEST(GpRegression, VarianceNonNegativeEverywhere) {
  Rng rng(8);
  Matrix x = random_points(20, 2, rng);
  Vector y(20);
  for (auto& v : y) v = rng.normal();
  auto gp = GpRegression::fit(x, y);
  ASSERT_TRUE(gp);
  for (int i = 0; i < 200; ++i) {
    const auto p = gp->predict({rng.uniform(), rng.uniform()});
    EXPECT_GE(p.variance, 0.0);
  }
}

}  // namespace
