// Tests of the objective-evaluation engine (paper Fig. 1 objective-worker
// group): index-order determinism at any worker count, the timeout/retry/
// penalty policy, deterministic fault injection, concurrent history
// archiving, and the TLA batch-evaluation path built on top of it.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "apps/fault_injection.hpp"
#include "core/completion_log.hpp"
#include "core/eval_engine.hpp"
#include "core/mla.hpp"
#include "core/tla.hpp"

namespace {

using namespace gptune;
using namespace gptune::core;

Space box2d() {
  Space s;
  s.add_real("x", 0.0, 1.0);
  s.add_real("y", 0.0, 1.0);
  return s;
}

// Pure single-objective family: minimum at (t, 1 - t), value 0.01.
MultiObjectiveFn family_fn() {
  return [](const TaskVector& t, const Config& c) {
    const double dx = c[0] - t[0];
    const double dy = c[1] - (1.0 - t[0]);
    return std::vector<double>{dx * dx + dy * dy + 0.01};
  };
}

// Deterministic virtual cost: the objective value itself (a simulated
// runtime), so timeouts and makespans are reproducible.
EvalPolicy simulated_policy() {
  EvalPolicy policy;
  policy.virtual_cost = [](const TaskVector&, const Config&,
                           const std::vector<double>& y) {
    return y.empty() ? 1.0 : y[0];
  };
  return policy;
}

std::vector<EvalItem> grid_items(std::size_t n) {
  std::vector<EvalItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = static_cast<double>(i) / static_cast<double>(n);
    items.push_back({i % 2, Config{v, 1.0 - v}});
  }
  return items;
}

const std::vector<TaskVector> kTasks = {{0.2}, {0.8}};

TEST(EvalEngine, OutcomesIdenticalAcrossWorkerCounts) {
  const auto items = grid_items(13);
  std::vector<std::vector<EvalOutcome>> runs;
  for (std::size_t workers : {1u, 2u, 4u}) {
    EvalEngine engine(family_fn(), 1, workers, simulated_policy());
    runs.push_back(engine.evaluate(kTasks, items));
  }
  for (std::size_t r = 1; r < runs.size(); ++r) {
    ASSERT_EQ(runs[r].size(), runs[0].size());
    for (std::size_t i = 0; i < runs[0].size(); ++i) {
      EXPECT_EQ(runs[r][i].objectives, runs[0][i].objectives);
      EXPECT_EQ(runs[r][i].penalized, runs[0][i].penalized);
      EXPECT_EQ(runs[r][i].attempts, runs[0][i].attempts);
    }
  }
}

TEST(EvalEngine, FaultyOutcomesIdenticalAcrossWorkerCounts) {
  apps::FaultSpec spec;
  spec.crash_rate = 0.2;
  spec.nan_rate = 0.2;
  spec.seed = 7;
  const auto items = grid_items(16);
  std::vector<std::vector<EvalOutcome>> runs;
  std::size_t penalized = 0;
  for (std::size_t workers : {1u, 4u}) {
    EvalEngine engine(apps::with_faults(family_fn(), spec), 1, workers,
                      simulated_policy());
    runs.push_back(engine.evaluate(kTasks, items));
    penalized = engine.stats().penalized;
  }
  EXPECT_GT(penalized, 0u);  // faults actually fired
  for (std::size_t i = 0; i < runs[0].size(); ++i) {
    EXPECT_EQ(runs[1][i].objectives, runs[0][i].objectives);
    EXPECT_EQ(runs[1][i].penalized, runs[0][i].penalized);
    EXPECT_TRUE(std::isfinite(runs[1][i].objectives[0]));
  }
}

TEST(EvalEngine, PenaltyIsFactorTimesWorstClean) {
  EvalPolicy policy;
  policy.penalty_factor = 10.0;
  policy.penalty_floor = 10.0;
  auto objective = [](const TaskVector&, const Config& c) {
    if (c[0] < 0.0) {
      return std::vector<double>{std::numeric_limits<double>::quiet_NaN()};
    }
    return std::vector<double>{c[0]};
  };
  EvalEngine engine(objective, 1, 1, policy);
  // Clean observations up to 50, then a failure.
  std::vector<EvalItem> items = {
      {0, {7.0}}, {0, {50.0}}, {0, {3.0}}, {0, {-1.0}}};
  auto outcomes = engine.evaluate({{0.0}}, items);
  EXPECT_FALSE(outcomes[1].penalized);
  EXPECT_TRUE(outcomes[3].penalized);
  EXPECT_DOUBLE_EQ(outcomes[3].objectives[0], 10.0 * 50.0);
}

TEST(EvalEngine, PenaltiesDoNotCompound) {
  EvalPolicy policy;
  policy.penalty_factor = 10.0;
  policy.penalty_floor = 10.0;
  auto objective = [](const TaskVector&, const Config& c) {
    if (c[0] < 0.0) {
      return std::vector<double>{std::numeric_limits<double>::quiet_NaN()};
    }
    return std::vector<double>{c[0]};
  };
  EvalEngine engine(objective, 1, 1, policy);
  engine.evaluate({{0.0}}, {{0, {20.0}}});
  // Repeated failures: every penalty derives from the worst *clean*
  // observation (20), never from earlier penalties (200).
  for (int round = 0; round < 5; ++round) {
    auto outcomes = engine.evaluate({{0.0}}, {{0, {-1.0}}});
    EXPECT_DOUBLE_EQ(outcomes[0].objectives[0], 200.0);
  }
}

TEST(EvalEngine, ObserveSeedsPenaltyBaseline) {
  EvalPolicy policy;
  policy.penalty_factor = 10.0;
  EvalEngine engine(
      [](const TaskVector&, const Config&) {
        return std::vector<double>{std::numeric_limits<double>::infinity()};
      },
      1, 1, policy);
  engine.observe({300.0});  // e.g. an archived evaluation
  auto outcomes = engine.evaluate({{0.0}}, {{0, {0.5}}});
  EXPECT_DOUBLE_EQ(outcomes[0].objectives[0], 3000.0);
}

TEST(EvalEngine, RetryHealsTransientFault) {
  apps::FaultSpec spec;
  spec.crash_rate = 1.0;   // every config faults...
  spec.heal_after = 1;     // ...once
  EvalPolicy policy;
  policy.max_retries = 2;
  EvalEngine engine(apps::with_faults(family_fn(), spec), 1, 1, policy);
  auto outcomes = engine.evaluate({{0.2}}, {{0, {0.2, 0.8}}});
  EXPECT_FALSE(outcomes[0].penalized);
  EXPECT_EQ(outcomes[0].attempts, 2u);
  EXPECT_NEAR(outcomes[0].objectives[0], 0.01, 1e-12);
  EXPECT_EQ(engine.stats().retries, 1u);
  EXPECT_EQ(engine.stats().failed_attempts, 0u);
}

// A configuration that fails every attempt must exhaust the retry budget
// and come back penalized — deterministically, with exactly one archived
// record, never a hang or a double archive.
TEST(EvalEngine, RetryBudgetExhaustionPenalizesDeterministically) {
  // x > 0.5 fails on every attempt; clean values stay below penalty_floor
  // so the penalty (factor * floor = 100) is order-independent.
  auto objective = [](const TaskVector&, const Config& c) {
    if (c[0] > 0.5) throw std::runtime_error("permanent failure");
    return std::vector<double>{1.0 + c[0]};
  };
  EvalPolicy policy;
  policy.max_retries = 2;

  const auto items = grid_items(8);  // items 5..7 have x > 0.5
  std::vector<std::vector<EvalOutcome>> runs;
  for (std::size_t workers : {1u, 4u}) {
    HistoryDb db;
    EvalEngine engine(objective, 1, workers, policy, &db);
    runs.push_back(engine.evaluate(kTasks, items));
    const auto& outcomes = runs.back();
    ASSERT_EQ(outcomes.size(), items.size());
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      const bool faulty = items[i].config[0] > 0.5;
      EXPECT_EQ(outcomes[i].penalized, faulty) << "item " << i;
      // 1 initial attempt + max_retries on failure, exactly 1 when clean.
      EXPECT_EQ(outcomes[i].attempts, faulty ? 3u : 1u) << "item " << i;
      EXPECT_TRUE(std::isfinite(outcomes[i].objectives[0]));
      if (faulty) {
        EXPECT_DOUBLE_EQ(outcomes[i].objectives[0],
                         policy.penalty_factor * policy.penalty_floor);
      }
    }
    // Exactly one archive per item: clean results from the workers,
    // penalties from the master — never both.
    EXPECT_EQ(db.size(), items.size());
    EXPECT_EQ(engine.stats().penalized, 3u);
    EXPECT_EQ(engine.stats().retries, 6u);
    EXPECT_EQ(engine.stats().failed_attempts, 9u);
  }
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(runs[1][i].objectives, runs[0][i].objectives);
    EXPECT_EQ(runs[1][i].attempts, runs[0][i].attempts);
    EXPECT_EQ(runs[1][i].penalized, runs[0][i].penalized);
  }
}

// The async stream path applies the same retry/penalty policy per
// completion: outcomes match the batch path item for item.
TEST(EvalEngine, RetryBudgetExhaustionIdenticalInStreamMode) {
  auto objective = [](const TaskVector&, const Config& c) {
    if (c[0] > 0.5) throw std::runtime_error("permanent failure");
    return std::vector<double>{1.0 + c[0]};
  };
  EvalPolicy policy;
  policy.max_retries = 2;
  const auto items = grid_items(8);

  for (std::size_t workers : {1u, 4u}) {
    EvalEngine batch_engine(objective, 1, workers, policy);
    const auto batch = batch_engine.evaluate(kTasks, items);

    HistoryDb db;
    EvalEngine stream_engine(objective, 1, workers, policy, &db);
    std::vector<std::size_t> ids;
    for (const auto& item : items) {
      ids.push_back(stream_engine.submit(item.task_index,
                                         kTasks[item.task_index], item.config));
    }
    std::vector<EvalOutcome> by_id(items.size());
    CompletionDelivery live;
    while (stream_engine.inflight() > 0) {
      EvalCompletion c = stream_engine.next_completion(live);
      by_id.at(c.id) = std::move(c.outcome);
    }
    for (std::size_t i = 0; i < items.size(); ++i) {
      EXPECT_EQ(by_id[ids[i]].objectives, batch[i].objectives);
      EXPECT_EQ(by_id[ids[i]].attempts, batch[i].attempts);
      EXPECT_EQ(by_id[ids[i]].penalized, batch[i].penalized);
    }
    EXPECT_EQ(db.size(), items.size());
    EXPECT_EQ(stream_engine.stats().penalized, 3u);
    EXPECT_EQ(stream_engine.stats().retries, 6u);
  }
}

TEST(EvalEngine, TimeoutChargesExactlyTheTimeout) {
  EvalPolicy policy = simulated_policy();
  policy.timeout_seconds = 10.0;
  auto objective = [](const TaskVector&, const Config& c) {
    return std::vector<double>{c[0] > 0.5 ? 100.0 : 1.0};
  };
  EvalEngine engine(objective, 1, 1, policy);
  auto outcomes =
      engine.evaluate({{0.0}}, {{0, {0.1}}, {0, {0.9}}});
  EXPECT_FALSE(outcomes[0].timed_out);
  EXPECT_DOUBLE_EQ(outcomes[0].virtual_seconds, 1.0);
  EXPECT_TRUE(outcomes[1].timed_out);
  EXPECT_TRUE(outcomes[1].penalized);
  EXPECT_DOUBLE_EQ(outcomes[1].virtual_seconds, 10.0);
  EXPECT_TRUE(std::isfinite(outcomes[1].objectives[0]));
  EXPECT_EQ(engine.stats().timeouts, 1u);
}

TEST(EvalEngine, VirtualMakespanReflectsWorkerCount) {
  // 8 items of simulated cost 1.0 each: serial work 8, 4 workers -> 2.
  auto objective = [](const TaskVector&, const Config&) {
    return std::vector<double>{1.0};
  };
  EvalEngine engine(objective, 1, 4, simulated_policy());
  engine.evaluate(kTasks, grid_items(8));
  EXPECT_DOUBLE_EQ(engine.last_batch().virtual_work, 8.0);
  EXPECT_DOUBLE_EQ(engine.last_batch().virtual_makespan, 2.0);
}

TEST(EvalEngine, ConcurrentWorkersArchiveEveryEvaluation) {
  HistoryDb db;
  EvalEngine engine(family_fn(), 1, 4, simulated_policy(), &db);
  const auto items = grid_items(64);
  auto outcomes = engine.evaluate(kTasks, items);
  EXPECT_EQ(outcomes.size(), 64u);
  EXPECT_EQ(db.size(), 64u);
}

// --- TLA batch evaluation over the engine ---

TEST(Tla, TransferAndEvaluateRunsAndArchives) {
  Space task_space;
  task_space.add_real("t", 0.0, 1.0);
  HistoryDb db;
  // Archive two solved source tasks.
  for (double t : {0.2, 0.8}) {
    db.add({{t}, {t, 1.0 - t}, family_fn()({t}, {t, 1.0 - t})});
  }
  TlaEvalOptions options;
  options.objective_workers = 2;
  options.evaluation = simulated_policy();
  auto results = transfer_and_evaluate(db, task_space, box2d(),
                                       {{0.4}, {0.6}}, family_fn(), 1,
                                       options);
  ASSERT_EQ(results.size(), 2u);
  for (const auto& r : results) {
    ASSERT_TRUE(r.config.has_value());
    ASSERT_EQ(r.objectives.size(), 1u);
    EXPECT_FALSE(r.penalized);
    // Transfer should land near the interpolated optimum.
    EXPECT_LT(r.objectives[0], 0.2);
  }
  EXPECT_EQ(db.size(), 4u);  // two sources + two new evaluations
}

// --- MLA under injected faults (full budget, finite penalties,
// worker-count-independent trajectory) ---

TEST(MlaWithFaults, FullBudgetFinitePenaltiesDeterministicAcrossWorkers) {
  apps::FaultSpec spec;
  spec.crash_rate = 0.1;
  spec.nan_rate = 0.1;
  spec.hang_rate = 0.1;
  spec.hang_factor = 1.0e3;
  spec.seed = 11;

  auto run = [&](std::size_t workers) {
    MlaOptions opt;
    opt.budget_per_task = 12;
    opt.model_restarts = 2;
    opt.max_lbfgs_iterations = 20;
    opt.seed = 42;
    opt.objective_workers = workers;
    opt.evaluation = simulated_policy();
    opt.evaluation.timeout_seconds = 50.0;  // kills "hung" runs (~>= 1000)
    // Fresh injector per run: identical spec => identical fault pattern.
    MultitaskTuner tuner(box2d(), apps::with_faults(family_fn(), spec), opt);
    return tuner.run({{0.25}, {0.75}});
  };

  const MlaResult base = run(1);
  EXPECT_GT(base.eval_stats.penalized, 0u);
  EXPECT_GT(base.eval_stats.timeouts, 0u);
  for (const auto& th : base.tasks) {
    EXPECT_EQ(th.evals.size(), 12u);
    for (const auto& e : th.evals) {
      EXPECT_TRUE(std::isfinite(e.objectives[0]));
    }
  }

  for (std::size_t workers : {2u, 4u}) {
    const MlaResult other = run(workers);
    EXPECT_EQ(other.eval_stats.penalized, base.eval_stats.penalized);
    ASSERT_EQ(other.tasks.size(), base.tasks.size());
    for (std::size_t i = 0; i < base.tasks.size(); ++i) {
      ASSERT_EQ(other.tasks[i].evals.size(), base.tasks[i].evals.size());
      for (std::size_t j = 0; j < base.tasks[i].evals.size(); ++j) {
        EXPECT_EQ(other.tasks[i].evals[j].config,
                  base.tasks[i].evals[j].config);
        EXPECT_EQ(other.tasks[i].evals[j].objectives,
                  base.tasks[i].evals[j].objectives);
      }
    }
  }
}

}  // namespace
