// Integration tests of the full MLA tuner (Algorithms 1 and 2): budget
// accounting, improvement over random search, multitask transfer, the
// performance-model path, multi-objective Pareto behaviour, history
// reuse, and the parallel (spawned-worker) search path.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/analytical.hpp"
#include "core/metrics.hpp"
#include "core/mla.hpp"
#include "opt/direct_search.hpp"

namespace {

using namespace gptune;
using namespace gptune::core;

Space box2d() {
  Space s;
  s.add_real("x", 0.0, 1.0);
  s.add_real("y", 0.0, 1.0);
  return s;
}

// Smooth task family: minimum at (t, 1 - t), value 0.01.
MultiObjectiveFn family_fn() {
  return [](const TaskVector& t, const Config& c) {
    const double dx = c[0] - t[0];
    const double dy = c[1] - (1.0 - t[0]);
    return std::vector<double>{dx * dx + dy * dy + 0.01};
  };
}

MlaOptions fast_options() {
  MlaOptions opt;
  opt.budget_per_task = 14;
  opt.model_restarts = 2;
  opt.max_lbfgs_iterations = 20;
  opt.seed = 42;
  return opt;
}

TEST(Mla, SpendsExactBudgetPerTask) {
  MultitaskTuner tuner(box2d(), family_fn(), fast_options());
  auto result = tuner.run({{0.2}, {0.5}, {0.8}});
  ASSERT_EQ(result.tasks.size(), 3u);
  for (const auto& th : result.tasks) {
    EXPECT_EQ(th.evals.size(), 14u);
  }
  EXPECT_EQ(result.evaluations, 42u);
}

TEST(Mla, InitialSamplesDefaultIsHalfBudget) {
  MlaOptions opt = fast_options();
  opt.budget_per_task = 20;
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  EXPECT_EQ(tuner.options().initial_samples, 10u);
}

TEST(Mla, FindsNearOptimum) {
  MultitaskTuner tuner(box2d(), family_fn(), fast_options());
  auto result = tuner.run({{0.3}});
  EXPECT_LT(result.tasks[0].best(), 0.05);
  const Config best = result.tasks[0].best_config();
  EXPECT_NEAR(best[0], 0.3, 0.25);
}

TEST(Mla, BeatsRandomSearchAtEqualBudget) {
  int wins = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    MlaOptions opt = fast_options();
    opt.seed = seed;
    MultitaskTuner tuner(box2d(), family_fn(), opt);
    auto result = tuner.run({{0.35}});
    common::Rng rng(seed + 77);
    auto rnd = opt::random_search_minimize(
        [&](const opt::Point& u) { return family_fn()({0.35}, u)[0]; },
        opt::Box::unit(2), rng, 14);
    if (result.tasks[0].best() <= rnd.value) ++wins;
  }
  EXPECT_GE(wins, 4);
}

TEST(Mla, MultitaskSharingHelpsSparseTasks) {
  // delta tasks at budget 8 each vs single task at budget 8: the multitask
  // run sees 5x the data through the LCM and should do at least as well on
  // the shared task (aggregated over seeds).
  double multi_total = 0.0, single_total = 0.0;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    MlaOptions opt = fast_options();
    opt.budget_per_task = 8;
    opt.seed = seed;
    MultitaskTuner multi(box2d(), family_fn(), opt);
    auto mres = multi.run({{0.1}, {0.3}, {0.5}, {0.7}, {0.9}});
    multi_total += mres.tasks[2].best();

    MlaOptions opt1 = opt;
    MultitaskTuner single(box2d(), family_fn(), opt1);
    auto sres = single.run({{0.5}});
    single_total += sres.tasks[0].best();
  }
  EXPECT_LE(multi_total, single_total * 1.5);
}

TEST(Mla, PhaseTimesPopulated) {
  MultitaskTuner tuner(box2d(), family_fn(), fast_options());
  auto result = tuner.run({{0.4}});
  EXPECT_GT(result.times.modeling, 0.0);
  EXPECT_GT(result.times.search, 0.0);
  EXPECT_GE(result.times.objective, 0.0);
  EXPECT_GT(result.model_refits, 0u);
}

TEST(Mla, RefitPeriodReducesRefits) {
  MlaOptions every = fast_options();
  every.refit_period = 1;
  MlaOptions sparse = fast_options();
  sparse.refit_period = 3;
  MultitaskTuner t1(box2d(), family_fn(), every);
  MultitaskTuner t2(box2d(), family_fn(), sparse);
  auto r1 = t1.run({{0.2}});
  auto r2 = t2.run({{0.2}});
  EXPECT_GT(r1.model_refits, r2.model_refits);
  EXPECT_EQ(r2.tasks[0].evals.size(), every.budget_per_task);
}

TEST(Mla, DeterministicPerSeed) {
  MultitaskTuner t1(box2d(), family_fn(), fast_options());
  MultitaskTuner t2(box2d(), family_fn(), fast_options());
  auto r1 = t1.run({{0.6}});
  auto r2 = t2.run({{0.6}});
  ASSERT_EQ(r1.tasks[0].evals.size(), r2.tasks[0].evals.size());
  for (std::size_t i = 0; i < r1.tasks[0].evals.size(); ++i) {
    EXPECT_EQ(r1.tasks[0].evals[i].config, r2.tasks[0].evals[i].config);
  }
}

TEST(Mla, ParallelSearchMatchesSerialStructure) {
  MlaOptions serial = fast_options();
  serial.search_workers = 1;
  MlaOptions parallel = fast_options();
  parallel.search_workers = 3;
  MultitaskTuner t1(box2d(), family_fn(), serial);
  MultitaskTuner t2(box2d(), family_fn(), parallel);
  auto r1 = t1.run({{0.2}, {0.5}, {0.8}});
  auto r2 = t2.run({{0.2}, {0.5}, {0.8}});
  // Same budget accounting and comparable quality.
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(r2.tasks[i].evals.size(), serial.budget_per_task);
  }
  double q1 = 0.0, q2 = 0.0;
  for (std::size_t i = 0; i < 3; ++i) {
    q1 += r1.tasks[i].best();
    q2 += r2.tasks[i].best();
  }
  EXPECT_LT(q2, q1 + 0.3);
}

TEST(Mla, TrajectoryIdenticalAcrossObjectiveWorkerCounts) {
  // Evaluation-engine determinism guarantee: a fixed seed yields a bitwise
  // identical tuning trajectory no matter how many objective workers run.
  auto run = [](std::size_t workers) {
    MlaOptions opt = fast_options();
    opt.objective_workers = workers;
    MultitaskTuner tuner(box2d(), family_fn(), opt);
    return tuner.run({{0.2}, {0.7}});
  };
  const MlaResult base = run(1);
  for (std::size_t workers : {2u, 4u}) {
    const MlaResult other = run(workers);
    ASSERT_EQ(other.tasks.size(), base.tasks.size());
    for (std::size_t i = 0; i < base.tasks.size(); ++i) {
      ASSERT_EQ(other.tasks[i].evals.size(), base.tasks[i].evals.size());
      for (std::size_t j = 0; j < base.tasks[i].evals.size(); ++j) {
        EXPECT_EQ(other.tasks[i].evals[j].config,
                  base.tasks[i].evals[j].config);
        EXPECT_EQ(other.tasks[i].evals[j].objectives,
                  base.tasks[i].evals[j].objectives);
      }
    }
  }
}

TEST(Mla, IncrementalRefitTrajectoryBitwiseIdentical) {
  // The incremental refit (DESIGN.md §3.10) extends the covariance factor
  // bitwise identically to a rebuild, so toggling it must not move a
  // single evaluation. refit_period > 1 exercises the cheap refresh path
  // where the extension actually fires (unchanged theta, appended rows).
  auto run = [](bool incremental) {
    MlaOptions opt = fast_options();
    opt.refit_period = 3;
    opt.incremental_refit = incremental;
    MultitaskTuner tuner(box2d(), family_fn(), opt);
    return tuner.run({{0.2}, {0.7}});
  };
  const MlaResult on = run(true);
  const MlaResult off = run(false);
  ASSERT_EQ(on.tasks.size(), off.tasks.size());
  for (std::size_t i = 0; i < on.tasks.size(); ++i) {
    ASSERT_EQ(on.tasks[i].evals.size(), off.tasks[i].evals.size());
    for (std::size_t j = 0; j < on.tasks[i].evals.size(); ++j) {
      EXPECT_EQ(on.tasks[i].evals[j].config, off.tasks[i].evals[j].config);
      EXPECT_EQ(on.tasks[i].evals[j].objectives,
                off.tasks[i].evals[j].objectives);
    }
  }
}

TEST(Mla, IncrementalRefitTrajectoryBitwiseIdenticalAsync) {
  // Same guarantee through the async pipeline's sample-count refit
  // trigger, which reuses modeling_phase and therefore the same
  // IncrementalFitState plumbing.
  auto run = [](bool incremental) {
    MlaOptions opt = fast_options();
    opt.async = true;
    opt.refit_period = 3;
    opt.incremental_refit = incremental;
    MultitaskTuner tuner(box2d(), family_fn(), opt);
    return tuner.run({{0.2}, {0.7}});
  };
  const MlaResult on = run(true);
  const MlaResult off = run(false);
  ASSERT_EQ(on.tasks.size(), off.tasks.size());
  for (std::size_t i = 0; i < on.tasks.size(); ++i) {
    ASSERT_EQ(on.tasks[i].evals.size(), off.tasks[i].evals.size());
    for (std::size_t j = 0; j < on.tasks[i].evals.size(); ++j) {
      EXPECT_EQ(on.tasks[i].evals[j].config, off.tasks[i].evals[j].config);
      EXPECT_EQ(on.tasks[i].evals[j].objectives,
                off.tasks[i].evals[j].objectives);
    }
  }
}

TEST(Mla, VirtualTimesPopulated) {
  MlaOptions opt = fast_options();
  opt.objective_workers = 2;
  opt.evaluation.virtual_cost = [](const TaskVector&, const Config&,
                                   const std::vector<double>& y) {
    return y[0];  // simulated runtime: the objective value itself
  };
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  auto result = tuner.run({{0.4}, {0.6}});
  EXPECT_GT(result.virtual_times.objective, 0.0);
  EXPECT_GT(result.virtual_times.modeling, 0.0);
  EXPECT_GT(result.virtual_times.search, 0.0);
  // The makespan over 2 workers cannot exceed the serial work.
  EXPECT_LE(result.virtual_times.objective,
            result.eval_stats.virtual_work + 1e-12);
  EXPECT_EQ(result.eval_stats.items, result.evaluations);
}

TEST(Mla, ParallelModelWorkersWork) {
  MlaOptions opt = fast_options();
  opt.model_workers = 2;
  opt.model_restarts = 2;
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  auto result = tuner.run({{0.4}, {0.6}});
  EXPECT_LT(result.tasks[0].best(), 0.2);
}

TEST(Mla, LogObjectiveOptionWorks) {
  MlaOptions opt = fast_options();
  opt.log_objective = true;
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  auto result = tuner.run({{0.3}});
  EXPECT_LT(result.tasks[0].best(), 0.1);
}

TEST(Mla, MeanOnlyAcquisitionStillImproves) {
  MlaOptions opt = fast_options();
  opt.use_ei = false;  // exploitation-only ablation
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  auto result = tuner.run({{0.5}});
  EXPECT_LT(result.tasks[0].best(), 0.3);
}

// --- performance models (§3.3) ---

TEST(Mla, PerformanceModelHelpsOnHardObjective) {
  // Paper §3.3 / Fig. 4: a coarse model pays off when the objective is
  // highly non-convex and the budget is small. Use the paper's analytical
  // function with its noisy model (the Fig. 4-left setup, scaled down).
  CallableModel model(
      [](const TaskVector& t, const Config& c) {
        return std::vector<double>{
            apps::analytical_noisy_model(t[0], c[0], 777)};
      },
      1);
  std::vector<TaskVector> tasks = {{4.0}, {6.0}, {8.0}};
  double with_total = 0.0, without_total = 0.0;
  for (std::uint64_t seed = 0; seed < 2; ++seed) {
    MlaOptions with_model = fast_options();
    with_model.budget_per_task = 12;
    with_model.seed = seed;
    with_model.performance_model = &model;
    MultitaskTuner t1(apps::analytical_tuning_space(),
                      apps::analytical_fn(), with_model);
    for (const auto& th : t1.run(tasks).tasks) with_total += th.best();

    MlaOptions without = fast_options();
    without.budget_per_task = 12;
    without.seed = seed;
    MultitaskTuner t2(apps::analytical_tuning_space(),
                      apps::analytical_fn(), without);
    for (const auto& th : t2.run(tasks).tasks) without_total += th.best();
  }
  EXPECT_LE(with_total, without_total * 1.05);
}

TEST(Mla, LinearModelCoefficientsUpdatedDuringRun) {
  LinearCombinationModel model(
      [](const TaskVector& t, const Config& c) {
        const double dx = c[0] - t[0];
        const double dy = c[1] - (1.0 - t[0]);
        return std::vector<double>{dx * dx + dy * dy, 1.0};
      },
      {1e-6, 1e-6});
  MlaOptions opt = fast_options();
  opt.performance_model = &model;
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  tuner.run({{0.4}});
  // True objective = 1.0 * feature0 + 0.01 * feature1.
  EXPECT_NEAR(model.coefficients()[0], 1.0, 0.2);
  EXPECT_NEAR(model.coefficients()[1], 0.01, 0.05);
}

// --- history (archive & reuse) ---

TEST(Mla, HistoryRecordsEveryEvaluation) {
  HistoryDb db;
  MlaOptions opt = fast_options();
  opt.history = &db;
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  auto result = tuner.run({{0.3}, {0.7}});
  EXPECT_EQ(db.size(), result.evaluations);
}

TEST(Mla, HistoryReuseSeedsNewRun) {
  HistoryDb db;
  {
    MlaOptions opt = fast_options();
    opt.history = &db;
    MultitaskTuner tuner(box2d(), family_fn(), opt);
    tuner.run({{0.3}});
  }
  const std::size_t first_run = db.size();
  // Second session on the same task: archived samples show up as free
  // extra evals in the task history.
  MlaOptions opt = fast_options();
  opt.budget_per_task = 6;
  opt.history = &db;
  MultitaskTuner tuner(box2d(), family_fn(), opt);
  auto result = tuner.run({{0.3}});
  EXPECT_GT(result.tasks[0].evals.size(), 6u);
  EXPECT_GE(db.size(), first_run + 1);
  // Reused knowledge: final best at least as good as the archived best.
  EXPECT_LE(result.tasks[0].best(),
            db.best_for_task({0.3})->objectives[0] + 1e-12);
}

// --- multi-objective (Algorithm 2) ---

MultiObjectiveFn biobjective_fn() {
  // Classic convex trade-off: f1 = x^2 + eps, f2 = (x-1)^2 + eps over x,
  // second dim y is noise-free slack both objectives mildly dislike.
  return [](const TaskVector&, const Config& c) {
    const double f1 = c[0] * c[0] + 0.2 * c[1] * c[1] + 0.01;
    const double f2 =
        (c[0] - 1.0) * (c[0] - 1.0) + 0.2 * c[1] * c[1] + 0.01;
    return std::vector<double>{f1, f2};
  };
}

TEST(MlaMultiObjective, BudgetRespected) {
  MlaOptions opt = fast_options();
  opt.num_objectives = 2;
  opt.budget_per_task = 16;
  opt.batch_k = 3;
  MultitaskTuner tuner(box2d(), biobjective_fn(), opt);
  auto result = tuner.run({{0.0}});
  EXPECT_EQ(result.tasks[0].evals.size(), 16u);
}

TEST(MlaMultiObjective, ParetoFrontSpansTradeoff) {
  MlaOptions opt = fast_options();
  opt.num_objectives = 2;
  opt.budget_per_task = 30;
  opt.batch_k = 4;
  MultitaskTuner tuner(box2d(), biobjective_fn(), opt);
  auto result = tuner.run({{0.0}});
  const auto front = result.tasks[0].pareto();
  ASSERT_GE(front.size(), 3u);
  // Front points must be mutually non-dominating (checked by pareto()),
  // and span both ends of the trade-off: some point good at f1, some at f2.
  double best_f1 = 1e9, best_f2 = 1e9;
  for (const auto& e : front) {
    best_f1 = std::min(best_f1, e.objectives[0]);
    best_f2 = std::min(best_f2, e.objectives[1]);
  }
  EXPECT_LT(best_f1, 0.3);
  EXPECT_LT(best_f2, 0.3);
}

TEST(MlaMultiObjective, FrontDominatesMostRandomPoints) {
  MlaOptions opt = fast_options();
  opt.num_objectives = 2;
  opt.budget_per_task = 24;
  MultitaskTuner tuner(box2d(), biobjective_fn(), opt);
  auto result = tuner.run({{0.0}});
  const auto front = result.tasks[0].pareto();

  common::Rng rng(5);
  std::size_t dominated = 0, total = 40;
  for (std::size_t i = 0; i < total; ++i) {
    const Config c = {rng.uniform(), rng.uniform()};
    const auto y = biobjective_fn()({0.0}, c);
    for (const auto& e : front) {
      if (gptune::opt::dominates(e.objectives, y)) {
        ++dominated;
        break;
      }
    }
  }
  EXPECT_GT(dominated, total / 2);
}

TEST(Mla, NoDuplicateConfigDispatchedAcrossIterations) {
  // The per-task seen-config sets persist in the run state across
  // iterations, so a configuration evaluated in iteration k can never be
  // dispatched again in iteration k+n (regression: the sets used to be
  // rebuilt from history inside each search phase).
  MultitaskTuner tuner(box2d(), family_fn(), fast_options());
  auto result = tuner.run({{0.2}, {0.8}});
  for (const auto& th : result.tasks) {
    for (std::size_t i = 0; i < th.evals.size(); ++i) {
      for (std::size_t j = i + 1; j < th.evals.size(); ++j) {
        EXPECT_NE(th.evals[i].config, th.evals[j].config)
            << "duplicate dispatch at evals " << i << " and " << j;
      }
    }
  }
}

TEST(TaskHistory, Accessors) {
  TaskHistory th;
  th.evals.push_back({{0.1}, {3.0}});
  th.evals.push_back({{0.2}, {1.0}});
  th.evals.push_back({{0.3}, {2.0}});
  EXPECT_DOUBLE_EQ(th.best(), 1.0);
  EXPECT_DOUBLE_EQ(th.worst(), 3.0);
  EXPECT_EQ(th.best_config(), (Config{0.2}));
  EXPECT_EQ(th.best_so_far(), (std::vector<double>{3.0, 1.0, 1.0}));
}

}  // namespace
