#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace gptune::linalg {

EigenSym eigen_sym(const Matrix& a_in, double tol, std::size_t max_sweeps) {
  const std::size_t n = a_in.rows();
  assert(a_in.cols() == n);
  Matrix a = a_in;
  Matrix v = Matrix::identity(n);

  auto off_norm = [&a, n] {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) s += a(i, j) * a(i, j);
    }
    return std::sqrt(2.0 * s);
  };

  const double scale = std::max(a.frobenius_norm(), 1e-300);
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_norm() <= tol * scale) break;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) <= 1e-300) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Rotate rows/cols p, q of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        // Accumulate eigenvectors.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  EigenSym result;
  result.values.resize(n);
  for (std::size_t i = 0; i < n; ++i) result.values[i] = a(i, i);
  // Sort ascending and permute eigenvector columns accordingly.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&result](std::size_t x, std::size_t y) {
    return result.values[x] < result.values[y];
  });
  Vector sorted_vals(n);
  Matrix sorted_vecs(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    sorted_vals[j] = result.values[order[j]];
    for (std::size_t i = 0; i < n; ++i) sorted_vecs(i, j) = v(i, order[j]);
  }
  result.values = std::move(sorted_vals);
  result.vectors = std::move(sorted_vecs);
  return result;
}

double min_eigenvalue(const Matrix& a) {
  return eigen_sym(a).values.front();
}

}  // namespace gptune::linalg
