#include "linalg/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

namespace gptune::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& r : rows) {
    if (r.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), r.begin(), r.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* src = row_ptr(r);
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = src[c];
  }
  return t;
}

Matrix Matrix::block(std::size_t r0, std::size_t c0, std::size_t nr,
                     std::size_t nc) const {
  assert(r0 + nr <= rows_ && c0 + nc <= cols_);
  Matrix b(nr, nc);
  for (std::size_t r = 0; r < nr; ++r) {
    const double* src = row_ptr(r0 + r) + c0;
    std::copy(src, src + nc, b.row_ptr(r));
  }
  return b;
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

double Matrix::frobenius_norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& a, const Matrix& b) {
  assert(a.rows() == b.rows() && a.cols() == b.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < a.data_.size(); ++i) {
    m = std::max(m, std::abs(a.data_[i] - b.data_[i]));
  }
  return m;
}

Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
Matrix operator*(Matrix a, double s) { return a *= s; }
Matrix operator*(double s, Matrix a) { return a *= s; }

Matrix matmul(const Matrix& a, const Matrix& b) {
  assert(a.cols() == b.rows());
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n, 0.0);
  constexpr std::size_t kBlock = 64;
  for (std::size_t ii = 0; ii < m; ii += kBlock) {
    const std::size_t i_end = std::min(ii + kBlock, m);
    for (std::size_t kk = 0; kk < k; kk += kBlock) {
      const std::size_t k_end = std::min(kk + kBlock, k);
      for (std::size_t i = ii; i < i_end; ++i) {
        double* crow = c.row_ptr(i);
        const double* arow = a.row_ptr(i);
        for (std::size_t p = kk; p < k_end; ++p) {
          const double av = arow[p];
          const double* brow = b.row_ptr(p);
          for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  return c;
}

Vector matvec(const Matrix& a, const Vector& x) {
  assert(a.cols() == x.size());
  Vector y(a.rows(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.row_ptr(r);
    double s = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) s += arow[c] * x[c];
    y[r] = s;
  }
  return y;
}

Vector matvec_transposed(const Matrix& a, const Vector& x) {
  assert(a.rows() == x.size());
  Vector y(a.cols(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double* arow = a.row_ptr(r);
    const double xv = x[r];
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += arow[c] * xv;
  }
  return y;
}

Matrix syrk(const Matrix& a) {
  const std::size_t m = a.rows(), k = a.cols();
  Matrix c(m, m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    const double* ai = a.row_ptr(i);
    for (std::size_t j = 0; j <= i; ++j) {
      const double* aj = a.row_ptr(j);
      double s = 0.0;
      for (std::size_t p = 0; p < k; ++p) s += ai[p] * aj[p];
      c(i, j) = s;
      c(j, i) = s;
    }
  }
  return c;
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  assert(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(Vector& v, double s) {
  for (double& x : v) x *= s;
}

Vector operator+(Vector a, const Vector& b) {
  axpy(1.0, b, a);
  return a;
}

Vector operator-(Vector a, const Vector& b) {
  axpy(-1.0, b, a);
  return a;
}

Vector operator*(Vector a, double s) {
  scale(a, s);
  return a;
}

double max_abs_diff(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

}  // namespace gptune::linalg
