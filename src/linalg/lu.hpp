// LU factorization with partial pivoting, for general square systems.
//
// Used by the application simulators (e.g. the SuperLU cost calibration) and
// as a reference solver in tests.
#pragma once

#include <optional>
#include <vector>

#include "linalg/matrix.hpp"

namespace gptune::linalg {

/// PA = LU with partial pivoting; L unit-lower and U upper share `lu_`.
class LuFactor {
 public:
  /// Returns nullopt if the matrix is singular to working precision.
  [[nodiscard]] static std::optional<LuFactor> factor(const Matrix& a);

  std::size_t size() const { return lu_.rows(); }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// det(A), including the pivot sign.
  double det() const;

 private:
  LuFactor(Matrix lu, std::vector<std::size_t> perm, int sign)
      : lu_(std::move(lu)), perm_(std::move(perm)), sign_(sign) {}
  Matrix lu_;
  std::vector<std::size_t> perm_;
  int sign_;
};

}  // namespace gptune::linalg
