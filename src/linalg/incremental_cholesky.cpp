#include "linalg/incremental_cholesky.hpp"

#include <cassert>
#include <cmath>

namespace gptune::linalg {

namespace {

// Shared rotation sweep over columns [start, n): Givens rotations for the
// update (sigma = +1), hyperbolic rotations for the downdate (sigma = -1).
bool rank1_sweep(Matrix& l, Vector& v, std::size_t start, double sigma) {
  const std::size_t n = l.rows();
  assert(l.cols() == n && v.size() == n);
  for (std::size_t j = start; j < n; ++j) {
    const double ljj = l(j, j);
    const double d = ljj * ljj + sigma * v[j] * v[j];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double r = std::sqrt(d);
    const double c = r / ljj;
    const double s = v[j] / ljj;
    l(j, j) = r;
    for (std::size_t i = j + 1; i < n; ++i) {
      double& lij = l(i, j);
      lij = (lij + sigma * s * v[i]) / c;
      v[i] = c * v[i] - s * lij;
    }
  }
  return true;
}

}  // namespace

void cholesky_rank1_update(Matrix& l, Vector v) {
  // With sigma = +1 the pivot r^2 = l_jj^2 + v_j^2 > 0 always holds.
  const bool ok = rank1_sweep(l, v, 0, 1.0);
  assert(ok);
  (void)ok;
}

bool cholesky_rank1_downdate(Matrix& l, Vector v) {
  return rank1_sweep(l, v, 0, -1.0);
}

void cholesky_rank_k_update(Matrix& l, const Matrix& v) {
  assert(v.rows() == l.rows());
  Vector col(v.rows());
  for (std::size_t k = 0; k < v.cols(); ++k) {
    for (std::size_t i = 0; i < v.rows(); ++i) col[i] = v(i, k);
    cholesky_rank1_update(l, col);
  }
}

bool cholesky_rank_k_downdate(Matrix& l, const Matrix& v) {
  assert(v.rows() == l.rows());
  Vector col(v.rows());
  for (std::size_t k = 0; k < v.cols(); ++k) {
    for (std::size_t i = 0; i < v.rows(); ++i) col[i] = v(i, k);
    if (!cholesky_rank1_downdate(l, col)) return false;
  }
  return true;
}

Matrix cholesky_remove_row(const Matrix& l, std::size_t idx) {
  const std::size_t n = l.rows();
  assert(l.cols() == n && idx < n);
  Matrix out(n - 1, n - 1, 0.0);
  // Rows above the removed one are untouched; rows below shift up and drop
  // column idx.
  for (std::size_t i = 0; i < n - 1; ++i) {
    const std::size_t src_i = i < idx ? i : i + 1;
    for (std::size_t j = 0; j <= i; ++j) {
      const std::size_t src_j = j < idx ? j : j + 1;
      out(i, j) = l(src_i, src_j);
    }
  }
  if (idx + 1 >= n) return out;  // last row: nothing to repair
  // The deleted column idx contributed l23 l23^T to the trailing block's
  // Gram; folding it back in is a rank-1 update of the trailing factor.
  Vector v(n - 1, 0.0);
  for (std::size_t i = idx + 1; i < n; ++i) v[i - 1] = l(i, idx);
  const bool ok = rank1_sweep(out, v, idx, 1.0);
  assert(ok);
  (void)ok;
  return out;
}

}  // namespace gptune::linalg
