// Rank-k Cholesky factor maintenance: up/downdates and row removal.
//
// Complements blocked_cholesky_extend (the append-structured rank-k path
// the incremental LCM refit uses) with the classical hyperbolic-rotation
// update/downdate pair: given L with A = L L^T, produce the factor of
// A +/- v v^T in O(n^2) instead of refactorizing in O(n^3). Row removal —
// the shape of dropping a penalized sample from the training set — deletes
// row/column `idx` and repairs the trailing factor with one rank-1 update.
//
// Unlike the extension (bitwise identical to refactorization by
// construction), these rotate existing factor entries and therefore agree
// with a fresh factorization only to rounding; parity is tested to tight
// tolerances in tests/test_incremental_cholesky.cpp.
#pragma once

#include "linalg/matrix.hpp"

namespace gptune::linalg {

/// In-place rank-1 update: L becomes the factor of A + v v^T.
/// `v` is consumed as rotation scratch.
void cholesky_rank1_update(Matrix& l, Vector v);

/// In-place rank-1 downdate: L becomes the factor of A - v v^T.
/// Returns false (leaving `l` partially rotated — discard it) when the
/// downdated matrix is not positive definite to working precision.
[[nodiscard]] bool cholesky_rank1_downdate(Matrix& l, Vector v);

/// Rank-k update: columns of `v` (n x k) applied as successive rank-1
/// updates; L becomes the factor of A + V V^T.
void cholesky_rank_k_update(Matrix& l, const Matrix& v);

/// Rank-k downdate: L becomes the factor of A - V V^T, or false if any
/// intermediate downdate loses positive definiteness.
[[nodiscard]] bool cholesky_rank_k_downdate(Matrix& l, const Matrix& v);

/// Factor of A with row/column `idx` deleted: drops the factor row/column
/// and repairs the trailing block with a rank-1 *update* by the removed
/// column (the standard delete-row identity). O(n^2).
[[nodiscard]] Matrix cholesky_remove_row(const Matrix& l,
                                          std::size_t idx);

}  // namespace gptune::linalg
