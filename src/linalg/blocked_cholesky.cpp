#include "linalg/blocked_cholesky.hpp"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>

#include "common/telemetry/telemetry.hpp"

namespace gptune::linalg {

TaskBatchRunner serial_runner() {
  return [](std::vector<std::function<void()>>&& tasks) {
    for (auto& t : tasks) t();
  };
}

namespace {

// Solves X * L_kk^T = A_ik for the panel tile in place:
// row i of the factor, column block k. A_ik is nr x nb, L_kk is nb x nb lower.
void trsm_tile(Matrix& a, std::size_t i0, std::size_t k0, std::size_t nr,
               std::size_t nb) {
  for (std::size_t r = 0; r < nr; ++r) {
    double* arow = a.row_ptr(i0 + r) + k0;
    for (std::size_t c = 0; c < nb; ++c) {
      double s = arow[c];
      const double* lrow = a.row_ptr(k0 + c) + k0;
      for (std::size_t k = 0; k < c; ++k) s -= arow[k] * lrow[k];
      arow[c] = s / lrow[c];
    }
  }
}

// A_ij -= L_ik * L_jk^T for trailing tiles (i >= j in the lower triangle).
void update_tile(Matrix& a, std::size_t i0, std::size_t j0, std::size_t k0,
                 std::size_t ni, std::size_t nj, std::size_t nb) {
  for (std::size_t r = 0; r < ni; ++r) {
    const double* li = a.row_ptr(i0 + r) + k0;
    double* arow = a.row_ptr(i0 + r) + j0;
    // When i0 == j0 only the lower part of the diagonal tile is needed,
    // but computing the full tile keeps the kernel branch-free; the upper
    // triangle is discarded by the final POTRF pass.
    for (std::size_t c = 0; c < nj; ++c) {
      const double* lj = a.row_ptr(j0 + c) + k0;
      double s = 0.0;
      for (std::size_t k = 0; k < nb; ++k) s += li[k] * lj[k];
      arow[c] -= s;
    }
  }
}

// Unblocked Cholesky of the nb x nb diagonal tile at (k0, k0).
bool potrf_tile(Matrix& a, std::size_t k0, std::size_t nb) {
  for (std::size_t j = 0; j < nb; ++j) {
    double* lj = a.row_ptr(k0 + j) + k0;
    double d = lj[j];
    for (std::size_t k = 0; k < j; ++k) d -= lj[k] * lj[k];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    lj[j] = std::sqrt(d);
    const double inv = 1.0 / lj[j];
    for (std::size_t i = j + 1; i < nb; ++i) {
      double* li = a.row_ptr(k0 + i) + k0;
      double s = li[j];
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      li[j] = s * inv;
    }
  }
  return true;
}

// Diagonal-tile POTRF restricted to appended rows. Columns left of
// `first_new` are final factor columns: only their new-row entries are
// computed, with the identical `s * inv` idiom potrf_tile uses (inv is the
// reciprocal of the stored diagonal, which equals the reciprocal potrf_tile
// computed right after its sqrt). Columns at or past `first_new` get the
// full potrf treatment. With first_new == 0 this is exactly potrf_tile.
bool potrf_extend_tile(Matrix& a, std::size_t k0, std::size_t nb,
                       std::size_t first_new) {
  for (std::size_t j = 0; j < nb; ++j) {
    double* lj = a.row_ptr(k0 + j) + k0;
    if (j >= first_new) {
      double d = lj[j];
      for (std::size_t k = 0; k < j; ++k) d -= lj[k] * lj[k];
      if (d <= 0.0 || !std::isfinite(d)) return false;
      lj[j] = std::sqrt(d);
    }
    const double inv = 1.0 / lj[j];
    for (std::size_t i = std::max(j + 1, first_new); i < nb; ++i) {
      double* li = a.row_ptr(k0 + i) + k0;
      double s = li[j];
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      li[j] = s * inv;
    }
  }
  return true;
}

}  // namespace

std::optional<CholeskyFactor> blocked_cholesky(const Matrix& a,
                                               std::size_t block_size,
                                               const TaskBatchRunner& runner) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  if (block_size == 0) block_size = 64;
  telemetry::Span chol_span("model", "cholesky");
  chol_span.arg("n", static_cast<double>(n));
  static auto& factorizations = telemetry::counter("linalg.cholesky.count");
  static auto& flops = telemetry::counter("linalg.cholesky.flops");
  factorizations.add();
  flops.add(static_cast<std::uint64_t>(cholesky_flops(n)));
  Matrix l = a;

  for (std::size_t k0 = 0; k0 < n; k0 += block_size) {
    const std::size_t nb = std::min(block_size, n - k0);
    if (!potrf_tile(l, k0, nb)) return std::nullopt;

    // Panel: all row tiles below the diagonal tile are independent.
    {
      std::vector<std::function<void()>> tasks;
      for (std::size_t i0 = k0 + nb; i0 < n; i0 += block_size) {
        const std::size_t ni = std::min(block_size, n - i0);
        tasks.push_back([&l, i0, k0, ni, nb] { trsm_tile(l, i0, k0, ni, nb); });
      }
      if (!tasks.empty()) runner(std::move(tasks));
    }

    // Trailing update: all (i, j) tile pairs with i >= j are independent.
    {
      std::vector<std::function<void()>> tasks;
      for (std::size_t j0 = k0 + nb; j0 < n; j0 += block_size) {
        const std::size_t nj = std::min(block_size, n - j0);
        for (std::size_t i0 = j0; i0 < n; i0 += block_size) {
          const std::size_t ni = std::min(block_size, n - i0);
          tasks.push_back([&l, i0, j0, k0, ni, nj, nb] {
            update_tile(l, i0, j0, k0, ni, nj, nb);
          });
        }
      }
      if (!tasks.empty()) runner(std::move(tasks));
    }
  }

  // Zero the strictly upper triangle.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
  }
  return CholeskyFactor::from_lower(std::move(l));
}

bool blocked_cholesky_extend(Matrix& l, std::size_t n_old,
                             std::size_t block_size,
                             const TaskBatchRunner& runner) {
  const std::size_t n = l.rows();
  assert(l.cols() == n);
  assert(n_old <= n);
  if (block_size == 0) block_size = 64;
  if (n_old >= n) return true;
  telemetry::Span span("model", "cholesky_extend");
  span.arg("n", static_cast<double>(n));
  span.arg("k", static_cast<double>(n - n_old));
  static auto& extensions = telemetry::counter("linalg.cholesky.extend.count");
  static auto& flops = telemetry::counter("linalg.cholesky.flops");
  extensions.add();
  flops.add(static_cast<std::uint64_t>(cholesky_extend_flops(n_old, n)));

  // The same k-block sweep as blocked_cholesky, with every tile kernel
  // restricted to rows >= n_old: tiles fully above the append boundary are
  // already final and are skipped outright; the boundary-straddling
  // diagonal tile gets the mixed POTRF variant. Old-row values read by the
  // restricted kernels are final factor entries, exactly what the full
  // algorithm would read at the same step.
  for (std::size_t k0 = 0; k0 < n; k0 += block_size) {
    const std::size_t nb = std::min(block_size, n - k0);
    if (k0 + nb > n_old) {
      const std::size_t first_new = n_old > k0 ? n_old - k0 : 0;
      if (!potrf_extend_tile(l, k0, nb, first_new)) return false;
    }

    {
      std::vector<std::function<void()>> tasks;
      for (std::size_t i0 = k0 + nb; i0 < n; i0 += block_size) {
        const std::size_t ni = std::min(block_size, n - i0);
        const std::size_t first_row = std::max(i0, n_old);
        if (first_row >= i0 + ni) continue;
        const std::size_t nr = i0 + ni - first_row;
        tasks.push_back(
            [&l, first_row, k0, nr, nb] { trsm_tile(l, first_row, k0, nr, nb); });
      }
      if (!tasks.empty()) runner(std::move(tasks));
    }

    {
      std::vector<std::function<void()>> tasks;
      for (std::size_t j0 = k0 + nb; j0 < n; j0 += block_size) {
        const std::size_t nj = std::min(block_size, n - j0);
        for (std::size_t i0 = j0; i0 < n; i0 += block_size) {
          const std::size_t ni = std::min(block_size, n - i0);
          const std::size_t first_row = std::max(i0, n_old);
          if (first_row >= i0 + ni) continue;
          const std::size_t nr = i0 + ni - first_row;
          tasks.push_back([&l, first_row, j0, k0, nr, nj, nb] {
            update_tile(l, first_row, j0, k0, nr, nj, nb);
          });
        }
      }
      if (!tasks.empty()) runner(std::move(tasks));
    }
  }

  // Zero the strictly upper triangle of the appended region: the new
  // columns of the old rows and everything right of the diagonal in the
  // new rows.
  for (std::size_t i = 0; i < n_old; ++i) {
    for (std::size_t j = n_old; j < n; ++j) l(i, j) = 0.0;
  }
  for (std::size_t i = n_old; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
  }
  return true;
}

double cholesky_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0;
}

double cholesky_extend_flops(std::size_t n_old, std::size_t n) {
  return cholesky_flops(n) - cholesky_flops(n_old);
}

}  // namespace gptune::linalg
