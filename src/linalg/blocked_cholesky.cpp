#include "linalg/blocked_cholesky.hpp"

#include <atomic>
#include <cassert>
#include <cmath>

#include "common/telemetry/telemetry.hpp"

namespace gptune::linalg {

TaskBatchRunner serial_runner() {
  return [](std::vector<std::function<void()>>&& tasks) {
    for (auto& t : tasks) t();
  };
}

namespace {

// Solves X * L_kk^T = A_ik for the panel tile in place:
// row i of the factor, column block k. A_ik is nr x nb, L_kk is nb x nb lower.
void trsm_tile(Matrix& a, std::size_t i0, std::size_t k0, std::size_t nr,
               std::size_t nb) {
  for (std::size_t r = 0; r < nr; ++r) {
    double* arow = a.row_ptr(i0 + r) + k0;
    for (std::size_t c = 0; c < nb; ++c) {
      double s = arow[c];
      const double* lrow = a.row_ptr(k0 + c) + k0;
      for (std::size_t k = 0; k < c; ++k) s -= arow[k] * lrow[k];
      arow[c] = s / lrow[c];
    }
  }
}

// A_ij -= L_ik * L_jk^T for trailing tiles (i >= j in the lower triangle).
void update_tile(Matrix& a, std::size_t i0, std::size_t j0, std::size_t k0,
                 std::size_t ni, std::size_t nj, std::size_t nb) {
  for (std::size_t r = 0; r < ni; ++r) {
    const double* li = a.row_ptr(i0 + r) + k0;
    double* arow = a.row_ptr(i0 + r) + j0;
    // When i0 == j0 only the lower part of the diagonal tile is needed,
    // but computing the full tile keeps the kernel branch-free; the upper
    // triangle is discarded by the final POTRF pass.
    for (std::size_t c = 0; c < nj; ++c) {
      const double* lj = a.row_ptr(j0 + c) + k0;
      double s = 0.0;
      for (std::size_t k = 0; k < nb; ++k) s += li[k] * lj[k];
      arow[c] -= s;
    }
  }
}

// Unblocked Cholesky of the nb x nb diagonal tile at (k0, k0).
bool potrf_tile(Matrix& a, std::size_t k0, std::size_t nb) {
  for (std::size_t j = 0; j < nb; ++j) {
    double* lj = a.row_ptr(k0 + j) + k0;
    double d = lj[j];
    for (std::size_t k = 0; k < j; ++k) d -= lj[k] * lj[k];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    lj[j] = std::sqrt(d);
    const double inv = 1.0 / lj[j];
    for (std::size_t i = j + 1; i < nb; ++i) {
      double* li = a.row_ptr(k0 + i) + k0;
      double s = li[j];
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      li[j] = s * inv;
    }
  }
  return true;
}

}  // namespace

std::optional<CholeskyFactor> blocked_cholesky(const Matrix& a,
                                               std::size_t block_size,
                                               const TaskBatchRunner& runner) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  if (block_size == 0) block_size = 64;
  telemetry::Span chol_span("model", "cholesky");
  chol_span.arg("n", static_cast<double>(n));
  static auto& factorizations = telemetry::counter("linalg.cholesky.count");
  static auto& flops = telemetry::counter("linalg.cholesky.flops");
  factorizations.add();
  flops.add(static_cast<std::uint64_t>(cholesky_flops(n)));
  Matrix l = a;

  for (std::size_t k0 = 0; k0 < n; k0 += block_size) {
    const std::size_t nb = std::min(block_size, n - k0);
    if (!potrf_tile(l, k0, nb)) return std::nullopt;

    // Panel: all row tiles below the diagonal tile are independent.
    {
      std::vector<std::function<void()>> tasks;
      for (std::size_t i0 = k0 + nb; i0 < n; i0 += block_size) {
        const std::size_t ni = std::min(block_size, n - i0);
        tasks.push_back([&l, i0, k0, ni, nb] { trsm_tile(l, i0, k0, ni, nb); });
      }
      if (!tasks.empty()) runner(std::move(tasks));
    }

    // Trailing update: all (i, j) tile pairs with i >= j are independent.
    {
      std::vector<std::function<void()>> tasks;
      for (std::size_t j0 = k0 + nb; j0 < n; j0 += block_size) {
        const std::size_t nj = std::min(block_size, n - j0);
        for (std::size_t i0 = j0; i0 < n; i0 += block_size) {
          const std::size_t ni = std::min(block_size, n - i0);
          tasks.push_back([&l, i0, j0, k0, ni, nj, nb] {
            update_tile(l, i0, j0, k0, ni, nj, nb);
          });
        }
      }
      if (!tasks.empty()) runner(std::move(tasks));
    }
  }

  // Zero the strictly upper triangle.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) l(i, j) = 0.0;
  }
  return CholeskyFactor::from_lower(std::move(l));
}

double cholesky_flops(std::size_t n) {
  const double nd = static_cast<double>(n);
  return nd * nd * nd / 3.0;
}

}  // namespace gptune::linalg
