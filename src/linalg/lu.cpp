#include "linalg/lu.hpp"

#include <cassert>
#include <cmath>

namespace gptune::linalg {

std::optional<LuFactor> LuFactor::factor(const Matrix& a) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  Matrix lu = a;
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  int sign = 1;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest |entry| in column k at or below the diagonal.
    std::size_t piv = k;
    double best = std::abs(lu(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(lu(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) return std::nullopt;
    if (piv != k) {
      for (std::size_t c = 0; c < n; ++c) std::swap(lu(k, c), lu(piv, c));
      std::swap(perm[k], perm[piv]);
      sign = -sign;
    }
    const double pivot = lu(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu(i, k) / pivot;
      lu(i, k) = m;
      double* li = lu.row_ptr(i);
      const double* lk = lu.row_ptr(k);
      for (std::size_t c = k + 1; c < n; ++c) li[c] -= m * lk[c];
    }
  }
  return LuFactor(std::move(lu), std::move(perm), sign);
}

Vector LuFactor::solve(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(n);
  // Apply permutation, then forward substitution with unit L.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    const double* li = lu_.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * x[k];
    x[i] = s;
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = x[i];
    const double* li = lu_.row_ptr(i);
    for (std::size_t k = i + 1; k < n; ++k) s -= li[k] * x[k];
    x[i] = s / li[i];
  }
  return x;
}

double LuFactor::det() const {
  double d = static_cast<double>(sign_);
  for (std::size_t i = 0; i < size(); ++i) d *= lu_(i, i);
  return d;
}

}  // namespace gptune::linalg
