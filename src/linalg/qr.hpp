// Householder QR, linear least squares, and non-negative least squares.
//
// The tuner fits performance-model coefficients (t_flop, t_msg, t_vol in
// paper Eq. 7) with NNLS each iteration; tests use QR as the dense reference
// the ScaLAPACK PDGEQRF simulator is modeled after.
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace gptune::linalg {

/// Householder QR of an m x n matrix (m >= n), A = Q R.
class QrFactor {
 public:
  static QrFactor factor(const Matrix& a);

  std::size_t rows() const { return qr_.rows(); }
  std::size_t cols() const { return qr_.cols(); }

  /// Upper-triangular R (n x n).
  Matrix r() const;

  /// Explicit thin Q (m x n). O(m n^2); intended for tests.
  Matrix thin_q() const;

  /// Applies Q^T to a length-m vector.
  Vector apply_qt(const Vector& b) const;

  /// Minimizes ||A x - b||_2. Returns nullopt if R is numerically singular.
  [[nodiscard]] std::optional<Vector> solve_least_squares(
      const Vector& b) const;

 private:
  QrFactor(Matrix qr, Vector tau) : qr_(std::move(qr)), tau_(std::move(tau)) {}
  Matrix qr_;   // R in the upper triangle, Householder vectors below.
  Vector tau_;  // Householder scalars.
};

/// Least squares ||A x - b|| via QR; nullopt if rank-deficient.
[[nodiscard]] std::optional<Vector> least_squares(const Matrix& a,
                                                  const Vector& b);

/// Non-negative least squares (Lawson–Hanson active set):
/// argmin_{x >= 0} ||A x - b||_2. Always returns (possibly zero) x.
Vector nnls(const Matrix& a, const Vector& b, std::size_t max_iter = 0);

}  // namespace gptune::linalg
