// Blocked right-looking Cholesky with pluggable parallel execution.
//
// This plays the role ScaLAPACK plays inside GPTune's modeling phase: the
// delta*epsilon covariance matrix is factored in tiles, and the independent
// tile updates of each step are handed to an executor that may run them on
// worker ranks (see runtime/). The algorithm is the textbook right-looking
// variant: POTRF on the diagonal tile, TRSM down the panel, SYRK/GEMM on the
// trailing submatrix.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace gptune::linalg {

/// Runs a batch of independent tasks to completion (order irrelevant).
/// The serial default just invokes them in sequence; runtime/ provides a
/// worker-pool implementation.
using TaskBatchRunner =
    std::function<void(std::vector<std::function<void()>>&&)>;

/// Executes every task in the calling thread.
TaskBatchRunner serial_runner();

/// Factors symmetric positive definite `a` into the lower-triangular L
/// (returned via CholeskyFactor) using tiles of `block_size`, dispatching
/// the independent updates of each step through `runner`.
/// Returns nullopt on a non-positive pivot.
std::optional<CholeskyFactor> blocked_cholesky(
    const Matrix& a, std::size_t block_size,
    const TaskBatchRunner& runner = serial_runner());

/// Flop count of an n x n Cholesky (n^3/3 leading order), used by the
/// virtual-clock speedup study to charge simulated time per tile.
double cholesky_flops(std::size_t n);

}  // namespace gptune::linalg
