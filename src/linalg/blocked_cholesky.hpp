// Blocked right-looking Cholesky with pluggable parallel execution.
//
// This plays the role ScaLAPACK plays inside GPTune's modeling phase: the
// delta*epsilon covariance matrix is factored in tiles, and the independent
// tile updates of each step are handed to an executor that may run them on
// worker ranks (see runtime/). The algorithm is the textbook right-looking
// variant: POTRF on the diagonal tile, TRSM down the panel, SYRK/GEMM on the
// trailing submatrix.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace gptune::linalg {

/// Runs a batch of independent tasks to completion (order irrelevant).
/// The serial default just invokes them in sequence; runtime/ provides a
/// worker-pool implementation.
using TaskBatchRunner =
    std::function<void(std::vector<std::function<void()>>&&)>;

/// Executes every task in the calling thread.
TaskBatchRunner serial_runner();

/// Factors symmetric positive definite `a` into the lower-triangular L
/// (returned via CholeskyFactor) using tiles of `block_size`, dispatching
/// the independent updates of each step through `runner`.
/// Returns nullopt on a non-positive pivot.
[[nodiscard]] std::optional<CholeskyFactor> blocked_cholesky(
    const Matrix& a, std::size_t block_size,
    const TaskBatchRunner& runner = serial_runner());

/// Extends an existing blocked Cholesky factor by appended rows, in place.
///
/// `l` is the full (n x n) working matrix of the extended system:
///   * rows [0, n_old) hold the final lower-triangular factor of the leading
///     n_old x n_old covariance block, exactly as produced by
///     blocked_cholesky with the SAME block_size;
///   * rows [n_old, n) hold the new covariance rows K(r, 0..r) in their
///     lower triangle (upper-triangle content is ignored and zeroed).
///
/// On success the new rows are replaced by factor rows and `l` is the
/// factor of the extended covariance. Cost is O(n_old^2 * k) for k appended
/// rows instead of the O(n^3) of refactorizing from scratch.
///
/// Bitwise contract (what makes incremental refits trajectory-safe): the
/// blocked right-looking algorithm computes every factor entry through an
/// operation sequence that depends only on rows at or above it — k-block
/// boundaries are fixed multiples of block_size and each per-entry
/// reduction runs in a fixed order — so the result equals, bit for bit,
/// blocked_cholesky of the full extended matrix. Verified exactly by
/// tests/test_incremental_cholesky.cpp.
///
/// Returns false on a non-positive pivot (extended matrix not PD to
/// working precision); `l`'s new rows are garbage in that case and the
/// caller should fall back to a full (jittered) refactorization.
[[nodiscard]] bool blocked_cholesky_extend(Matrix& l, std::size_t n_old,
                             std::size_t block_size,
                             const TaskBatchRunner& runner = serial_runner());

/// Flop count of an n x n Cholesky (n^3/3 leading order), used by the
/// virtual-clock speedup study to charge simulated time per tile.
double cholesky_flops(std::size_t n);

/// Flop count of extending an n_old-row factor to n rows (the new-row share
/// of the full factorization: (n^3 - n_old^3)/3 leading order).
double cholesky_extend_flops(std::size_t n_old, std::size_t n);

}  // namespace gptune::linalg
