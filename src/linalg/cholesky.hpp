// Cholesky factorization and solves for symmetric positive definite systems.
//
// The GP stack factors covariance matrices here. `CholeskyFactor` keeps the
// lower-triangular factor and exposes the operations marginal-likelihood
// computation needs: solve, log-determinant, and explicit inverse (for the
// trace terms in the gradient).
#pragma once

#include <optional>

#include "linalg/matrix.hpp"

namespace gptune::linalg {

/// Lower-triangular Cholesky factor L with A = L L^T.
class CholeskyFactor {
 public:
  /// Factors `a` (symmetric positive definite). Returns nullopt if a
  /// non-positive pivot is hit (matrix not PD to working precision).
  [[nodiscard]] static std::optional<CholeskyFactor> factor(
      const Matrix& a);

  /// Factors `a + jitter*I`, growing jitter by 10x up to `max_jitter` until
  /// the factorization succeeds. Returns nullopt if even max_jitter fails.
  /// `applied_jitter`, when non-null, receives the jitter actually used.
  [[nodiscard]] static std::optional<CholeskyFactor> factor_with_jitter(
      const Matrix& a, double initial_jitter = 1e-10,
      double max_jitter = 1e-2, double* applied_jitter = nullptr);

  /// Wraps an already-computed lower-triangular factor (e.g. from the
  /// blocked algorithm). The caller guarantees `l` is a valid factor.
  static CholeskyFactor from_lower(Matrix l) {
    return CholeskyFactor(std::move(l));
  }

  std::size_t size() const { return l_.rows(); }
  const Matrix& lower() const { return l_; }

  /// Solves A x = b.
  Vector solve(const Vector& b) const;

  /// Solves A X = B column-wise.
  Matrix solve(const Matrix& b) const;

  /// Solves L x = b (forward substitution).
  Vector solve_lower(const Vector& b) const;

  /// Solves L^T x = b (back substitution).
  Vector solve_lower_transposed(const Vector& b) const;

  /// log det(A) = 2 * sum log L_ii.
  double log_det() const;

  /// Explicit A^{-1} (symmetric). O(n^3); used for gradient trace terms.
  Matrix inverse() const;

 private:
  explicit CholeskyFactor(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

/// In-place unblocked lower Cholesky of the leading n x n of `a`.
/// Returns false on a non-positive pivot. Upper triangle is left untouched.
/// Exposed separately so the blocked algorithm can reuse it per diagonal tile.
[[nodiscard]] bool cholesky_in_place(Matrix& a);

}  // namespace gptune::linalg
