// Dense row-major matrix and the vector/matrix kernels the GP stack needs.
//
// This is the repo's "LAPACK substrate": deliberately dependency-free,
// cache-blocked where it matters (matmul, syrk), and sized for covariance
// matrices of a few thousand rows.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <vector>

namespace gptune::linalg {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  /// Builds from nested initializer lists; all rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Raw pointer to the start of row r (contiguous cols() doubles).
  double* row_ptr(std::size_t r) { return data_.data() + r * cols_; }
  const double* row_ptr(std::size_t r) const { return data_.data() + r * cols_; }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Matrix transpose() const;

  /// Copies the sub-block [r0, r0+nr) x [c0, c0+nc).
  Matrix block(std::size_t r0, std::size_t c0, std::size_t nr,
               std::size_t nc) const;

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double s);

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Max |a_ij - b_ij|; matrices must be the same shape.
  static double max_abs_diff(const Matrix& a, const Matrix& b);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double s);
Matrix operator*(double s, Matrix a);

/// C = A * B (cache-blocked ikj loop order).
Matrix matmul(const Matrix& a, const Matrix& b);

/// y = A * x.
Vector matvec(const Matrix& a, const Vector& x);

/// y = A^T * x.
Vector matvec_transposed(const Matrix& a, const Vector& x);

/// C = A * A^T (symmetric rank-k update, only computes lower then mirrors).
Matrix syrk(const Matrix& a);

// --- vector kernels ---

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
/// y += alpha * x.
void axpy(double alpha, const Vector& x, Vector& y);
void scale(Vector& v, double s);
Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector a, double s);
double max_abs_diff(const Vector& a, const Vector& b);

}  // namespace gptune::linalg
