// Symmetric eigendecomposition (cyclic Jacobi).
//
// Used as the dense reference behind the PDSYEVX simulator and by tests that
// check kernel matrices are positive semi-definite.
#pragma once

#include "linalg/matrix.hpp"

namespace gptune::linalg {

struct EigenSym {
  Vector values;        ///< Ascending eigenvalues.
  Matrix vectors;       ///< Column j is the eigenvector for values[j].
};

/// Eigendecomposition of a symmetric matrix by the cyclic Jacobi method.
/// Robust and simple; O(n^3) per sweep, adequate for test-sized matrices.
[[nodiscard]] EigenSym eigen_sym(const Matrix& a, double tol = 1e-12,
                   std::size_t max_sweeps = 64);

/// Smallest eigenvalue (convenience for PSD checks).
double min_eigenvalue(const Matrix& a);

}  // namespace gptune::linalg
