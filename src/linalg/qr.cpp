#include "linalg/qr.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace gptune::linalg {

QrFactor QrFactor::factor(const Matrix& a) {
  const std::size_t m = a.rows(), n = a.cols();
  assert(m >= n);
  Matrix qr = a;
  Vector tau(n, 0.0);

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += qr(i, k) * qr(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      tau[k] = 0.0;
      continue;
    }
    const double alpha = qr(k, k) >= 0.0 ? -norm : norm;
    const double v0 = qr(k, k) - alpha;
    // Normalize so v[k] = 1 implicitly; store v[i]/v0 below the diagonal.
    for (std::size_t i = k + 1; i < m; ++i) qr(i, k) /= v0;
    tau[k] = -v0 / alpha;  // tau = 2 / (v^T v) with v[k] = 1 normalization
    qr(k, k) = alpha;

    // Apply H = I - tau v v^T to the remaining columns.
    for (std::size_t c = k + 1; c < n; ++c) {
      double s = qr(k, c);
      for (std::size_t i = k + 1; i < m; ++i) s += qr(i, k) * qr(i, c);
      s *= tau[k];
      qr(k, c) -= s;
      for (std::size_t i = k + 1; i < m; ++i) qr(i, c) -= s * qr(i, k);
    }
  }
  return QrFactor(std::move(qr), std::move(tau));
}

Matrix QrFactor::r() const {
  const std::size_t n = cols();
  Matrix r(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) r(i, j) = qr_(i, j);
  }
  return r;
}

Vector QrFactor::apply_qt(const Vector& b) const {
  const std::size_t m = rows(), n = cols();
  assert(b.size() == m);
  Vector y = b;
  for (std::size_t k = 0; k < n; ++k) {
    if (tau_[k] == 0.0) continue;
    double s = y[k];
    for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * y[i];
    s *= tau_[k];
    y[k] -= s;
    for (std::size_t i = k + 1; i < m; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Matrix QrFactor::thin_q() const {
  const std::size_t m = rows(), n = cols();
  Matrix q(m, n, 0.0);
  // Q = H_0 H_1 ... H_{n-1} applied to the first n identity columns.
  // Build column by column: Q e_j = H_0 ... H_{n-1} e_j.
  for (std::size_t j = 0; j < n; ++j) {
    Vector e(m, 0.0);
    e[j] = 1.0;
    // Apply H_{n-1} ... H_0 in reverse so the product equals Q.
    for (std::size_t kk = n; kk > 0; --kk) {
      const std::size_t k = kk - 1;
      if (tau_[k] == 0.0) continue;
      double s = e[k];
      for (std::size_t i = k + 1; i < m; ++i) s += qr_(i, k) * e[i];
      s *= tau_[k];
      e[k] -= s;
      for (std::size_t i = k + 1; i < m; ++i) e[i] -= s * qr_(i, k);
    }
    for (std::size_t i = 0; i < m; ++i) q(i, j) = e[i];
  }
  return q;
}

std::optional<Vector> QrFactor::solve_least_squares(const Vector& b) const {
  const std::size_t n = cols();
  Vector y = apply_qt(b);
  // Singular if any diagonal of R is negligible relative to the largest.
  double rmax = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    rmax = std::max(rmax, std::abs(qr_(i, i)));
  }
  // Back substitution on R.
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    const double rii = qr_(i, i);
    if (std::abs(rii) <= 1e-12 * rmax) return std::nullopt;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= qr_(i, k) * x[k];
    x[i] = s / rii;
  }
  return x;
}

std::optional<Vector> least_squares(const Matrix& a, const Vector& b) {
  return QrFactor::factor(a).solve_least_squares(b);
}

Vector nnls(const Matrix& a, const Vector& b, std::size_t max_iter) {
  const std::size_t m = a.rows(), n = a.cols();
  assert(b.size() == m);
  if (max_iter == 0) max_iter = 3 * n + 30;

  Vector x(n, 0.0);
  std::vector<bool> passive(n, false);
  Vector residual = b;  // b - A x, x = 0 initially

  for (std::size_t iter = 0; iter < max_iter; ++iter) {
    // Gradient of 1/2||Ax-b||^2 is -A^T residual; pick the most negative
    // component among the active (zero) set.
    Vector w = matvec_transposed(a, residual);
    std::size_t best = n;
    double best_w = 1e-10;
    for (std::size_t j = 0; j < n; ++j) {
      if (!passive[j] && w[j] > best_w) {
        best_w = w[j];
        best = j;
      }
    }
    if (best == n) break;  // KKT satisfied
    passive[best] = true;

    // Inner loop: solve unconstrained LS on the passive set; move variables
    // that go negative back to the active set.
    for (;;) {
      std::vector<std::size_t> pidx;
      for (std::size_t j = 0; j < n; ++j) {
        if (passive[j]) pidx.push_back(j);
      }
      Matrix ap(m, pidx.size());
      for (std::size_t r = 0; r < m; ++r) {
        for (std::size_t c = 0; c < pidx.size(); ++c) {
          ap(r, c) = a(r, pidx[c]);
        }
      }
      auto z = least_squares(ap, b);
      if (!z) {
        // Rank-deficient subproblem: drop the most recently added variable.
        passive[best] = false;
        break;
      }
      bool all_positive = true;
      for (double v : *z) {
        if (v <= 0.0) {
          all_positive = false;
          break;
        }
      }
      if (all_positive) {
        std::fill(x.begin(), x.end(), 0.0);
        for (std::size_t c = 0; c < pidx.size(); ++c) x[pidx[c]] = (*z)[c];
        break;
      }
      // Step from x toward z, stopping at the first variable hitting zero.
      double alpha = 1.0;
      for (std::size_t c = 0; c < pidx.size(); ++c) {
        const double xj = x[pidx[c]];
        const double zj = (*z)[c];
        if (zj <= 0.0) alpha = std::min(alpha, xj / (xj - zj));
      }
      for (std::size_t c = 0; c < pidx.size(); ++c) {
        const std::size_t j = pidx[c];
        x[j] += alpha * ((*z)[c] - x[j]);
        if (x[j] <= 1e-12) {
          x[j] = 0.0;
          passive[j] = false;
        }
      }
    }
    residual = b - matvec(a, x);
  }
  return x;
}

}  // namespace gptune::linalg
