#include "linalg/cholesky.hpp"

#include <cassert>
#include <cmath>

namespace gptune::linalg {

bool cholesky_in_place(Matrix& a) {
  const std::size_t n = a.rows();
  assert(a.cols() == n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = a(j, j);
    const double* lj = a.row_ptr(j);
    for (std::size_t k = 0; k < j; ++k) d -= lj[k] * lj[k];
    if (d <= 0.0 || !std::isfinite(d)) return false;
    const double ljj = std::sqrt(d);
    a(j, j) = ljj;
    const double inv = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a(i, j);
      const double* li = a.row_ptr(i);
      for (std::size_t k = 0; k < j; ++k) s -= li[k] * lj[k];
      a(i, j) = s * inv;
    }
  }
  // Zero the strictly upper triangle so lower() is a clean factor.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) a(i, j) = 0.0;
  }
  return true;
}

std::optional<CholeskyFactor> CholeskyFactor::factor(const Matrix& a) {
  Matrix l = a;
  if (!cholesky_in_place(l)) return std::nullopt;
  return CholeskyFactor(std::move(l));
}

std::optional<CholeskyFactor> CholeskyFactor::factor_with_jitter(
    const Matrix& a, double initial_jitter, double max_jitter,
    double* applied_jitter) {
  if (auto f = factor(a)) {
    if (applied_jitter) *applied_jitter = 0.0;
    return f;
  }
  for (double jitter = initial_jitter; jitter <= max_jitter; jitter *= 10.0) {
    Matrix b = a;
    for (std::size_t i = 0; i < b.rows(); ++i) b(i, i) += jitter;
    if (auto f = factor(b)) {
      if (applied_jitter) *applied_jitter = jitter;
      return f;
    }
  }
  return std::nullopt;
}

Vector CholeskyFactor::solve_lower(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    const double* li = l_.row_ptr(i);
    for (std::size_t k = 0; k < i; ++k) s -= li[k] * x[k];
    x[i] = s / li[i];
  }
  return x;
}

Vector CholeskyFactor::solve_lower_transposed(const Vector& b) const {
  const std::size_t n = size();
  assert(b.size() == n);
  Vector x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l_(k, i) * x[k];
    x[i] = s / l_(i, i);
  }
  return x;
}

Vector CholeskyFactor::solve(const Vector& b) const {
  return solve_lower_transposed(solve_lower(b));
}

Matrix CholeskyFactor::solve(const Matrix& b) const {
  const std::size_t n = size();
  assert(b.rows() == n);
  Matrix x(n, b.cols());
  Vector col(n);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n; ++r) col[r] = b(r, c);
    Vector sol = solve(col);
    for (std::size_t r = 0; r < n; ++r) x(r, c) = sol[r];
  }
  return x;
}

double CholeskyFactor::log_det() const {
  double s = 0.0;
  for (std::size_t i = 0; i < size(); ++i) s += std::log(l_(i, i));
  return 2.0 * s;
}

Matrix CholeskyFactor::inverse() const {
  const std::size_t n = size();
  // Invert L, storing the transpose so both phases stream rows:
  // linvt(c, i) = (L^{-1})(i, c). Row c of linvt is column c of L^{-1},
  // contiguous in k for the substitution's inner dot product.
  Matrix linvt(n, n, 0.0);
  for (std::size_t c = 0; c < n; ++c) {
    double* lc = linvt.row_ptr(c);
    lc[c] = 1.0 / l_(c, c);
    for (std::size_t i = c + 1; i < n; ++i) {
      const double* li = l_.row_ptr(i);
      double s = 0.0;
      for (std::size_t k = c; k < i; ++k) s -= li[k] * lc[k];
      lc[i] = s / li[i];
    }
  }
  // A^{-1}(i,j) = sum_{k >= max(i,j)} linvt(i,k) * linvt(j,k): a dot of
  // two contiguous row tails.
  Matrix inv(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double* ri = linvt.row_ptr(i);
    for (std::size_t j = 0; j <= i; ++j) {
      const double* rj = linvt.row_ptr(j);
      double s = 0.0;
      for (std::size_t k = i; k < n; ++k) s += ri[k] * rj[k];
      inv(i, j) = s;
      inv(j, i) = s;
    }
  }
  return inv;
}

}  // namespace gptune::linalg
