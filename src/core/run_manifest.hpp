// Run manifest — schema-versioned provenance record for one MLA run
// (DESIGN.md §3.12).
//
// A tuning run that crashed, hung, or simply finished a week ago is only
// diagnosable if the run itself recorded what it was: which options, which
// seed, which space, which binary. The manifest is that record — a JSON
// artifact written *at run start* (status "running", so an interrupted run
// still leaves its configuration behind) and rewritten at exit (status
// "complete") with the outcome: per-phase profiles, evaluation statistics,
// a metrics snapshot, and a trajectory digest (an FNV-1a hash of each
// task's best-so-far curve) that lets two runs be compared for bitwise
// trajectory identity without storing the trajectories.
//
// Enabled by `GPTUNE_MANIFEST=<path>` (or programmatically); when disabled
// every call is a cheap no-op. Like telemetry, the manifest is
// observe-only: nothing in the tuner reads it back, so trajectories are
// bitwise identical with the manifest on or off (tier-1 asserted). This is
// the provenance format the future multi-tenant HistoryDb will ingest
// (ROADMAP: production tuning service).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/mla.hpp"
#include "core/space.hpp"

namespace gptune::core {

class RunManifest {
 public:
  /// Disabled manifest: begin()/finalize() are no-ops.
  RunManifest() = default;
  /// Writes to `path` ("" disables).
  explicit RunManifest(std::string path) : path_(std::move(path)) {}
  /// Path from GPTUNE_MANIFEST (unset/empty disables).
  static RunManifest from_env();

  bool enabled() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  /// Captures the run's identity and writes the status:"running" document.
  /// `space` must outlive the manifest (it belongs to the tuner).
  void begin(const Space& space, const MlaOptions& options,
             const std::vector<TaskVector>& tasks);

  /// Rewrites the manifest with status:"complete" plus the outcome:
  /// profiles, eval stats, best objectives, trajectory digest, and the
  /// current telemetry metrics snapshot.
  void finalize(const MlaResult& result);

  /// Pure renderers behind begin()/finalize(), for tests: the exact JSON
  /// document each one writes. Valid only after begin() captured the run.
  std::string begin_json() const;
  std::string final_json(const MlaResult& result) const;

  /// FNV-1a over the space's structure: parameter names/kinds/bounds/
  /// log-scale/categories and the constraint names. Two runs with equal
  /// hashes searched the same space.
  static std::uint64_t space_hash(const Space& space);

  /// FNV-1a over each task's best-so-far curve (objective 0) — the
  /// "optimum sequence". Equal digests == bitwise-identical trajectories.
  static std::uint64_t trajectory_digest(const MlaResult& result);

 private:
  std::string path_;
  const Space* space_ = nullptr;
  MlaOptions options_;
  std::vector<TaskVector> tasks_;
};

}  // namespace gptune::core
