// Event-driven tuning manager — the async pipeline (DESIGN.md §3.9).
//
// The synchronous MLA loop is a barrier pipeline: fit the model, search
// one candidate per active task, evaluate the whole batch, repeat — so
// every iteration stalls on its slowest objective evaluation. This
// manager kills the barrier. It keeps a per-task in-flight candidate set
// topped up through the EvalEngine stream interface: whenever a
// completion is delivered, the result is archived, the model is refit on
// a sample-count trigger (not an iteration counter), and the freed
// capacity is immediately refilled with fresh candidates from
// constant-liar batch acquisition (core/acquisition) — so objective
// workers only idle when the remaining budget cannot fill them.
//
// Determinism contract: every manager decision (what to dispatch next,
// when to refit, which RNG stream a candidate uses) is a pure function of
// (options, seed, completion delivery order) — never of wall or virtual
// time. Recording the delivery order in a CompletionLog and feeding it
// back therefore reproduces the trajectory bitwise; see completion_log.hpp.
//
// Virtual-clock accounting mirrors the sync engine's idealized model: only
// objective costs occupy the worker ranks, and items are list-scheduled
// greedily onto the earliest-free *virtual* rank in delivery order (the
// wall-time rank that happened to run an item on this host is recorded in
// the log but does not bind the virtual schedule — wall-time load says
// nothing about simulated cost). An item stamped at manager virtual time T
// runs over [max(T, earliest rank free), +cost]; follow-up candidates are
// stamped at the virtual finish of the completion that freed the capacity.
// The stream makespan and the occupancy Σcost / (workers × makespan) are
// what BENCH_async compares against the sync barrier pipeline. Model fits
// and candidate searches overlap evaluations on the manager, so they
// charge the modeling/search phase buckets but never the evaluation clock.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.hpp"
#include "core/completion_log.hpp"
#include "core/config_set.hpp"
#include "core/eval_engine.hpp"
#include "core/mla.hpp"
#include "core/space.hpp"

namespace gptune::core {

class AsyncPipeline {
 public:
  /// Tuner callbacks: the pipeline owns scheduling, the tuner owns
  /// modeling and acquisition (it has the GP, the encodings, the PSO).
  struct Hooks {
    /// Fits/refreshes the model from the histories the pipeline has been
    /// appending to. Called on the manager thread between completions.
    std::function<void(bool refit)> fit;
    /// Proposes one candidate for `task`. `busy` holds the task's
    /// in-flight configurations (constant-liar repulsion targets); `rng`
    /// is the candidate's private deterministic stream. Infeasible or
    /// model-free proposals fall back to random feasible draws inside.
    std::function<Config(std::size_t task, const std::vector<Config>& busy,
                         common::Rng& rng)>
        candidate;
  };

  /// Scheduling knobs, pre-resolved by the caller (no zero sentinels).
  struct Options {
    std::size_t budget_per_task = 0;
    std::size_t inflight_per_task = 1;  ///< candidate cap per task
    std::size_t refit_samples = 1;      ///< completions between refits
    std::size_t refit_period = 1;       ///< every n-th fit re-optimizes theta
    std::uint64_t seed = 0;
  };

  struct Report {
    CompletionLog log;            ///< delivery order, virtual timestamps
    double makespan = 0.0;        ///< virtual-clock end of the last item
    double occupancy = 0.0;       ///< Σ item cost / (workers × makespan)
    double objective_wall = 0.0;  ///< wall blocked on completions
    double search_wall = 0.0;     ///< wall generating candidates
    std::size_t completions = 0;
    std::size_t fits = 0;
    std::size_t candidates = 0;  ///< generated after the initial design
    std::size_t dispatched = 0;  ///< total submitted items
  };

  AsyncPipeline(const Options& options, const Space& space,
                EvalEngine& engine, Hooks hooks);

  /// Drives the whole run: dispatches `initial` (the per-task initial
  /// design), then streams completions — archiving into `histories`,
  /// deduplicating new candidates against `seen` (in-flight configs are
  /// inserted at dispatch time) — until every task's budget is committed
  /// and the stream has drained. `replay`, when non-null, forces the
  /// recorded delivery order. `histories` must already count any archived
  /// seed evaluations (they consume budget).
  Report run(std::vector<TaskHistory>& histories, std::vector<ConfigSet>& seen,
             const std::vector<std::vector<Config>>& initial,
             const CompletionLog* replay);

 private:
  Options options_;
  const Space& space_;
  EvalEngine& engine_;
  Hooks hooks_;
};

}  // namespace gptune::core
