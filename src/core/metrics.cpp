#include "core/metrics.hpp"

#include <cassert>

namespace gptune::core {

double win_task(const std::vector<double>& best_a,
                const std::vector<double>& best_b) {
  assert(best_a.size() == best_b.size());
  if (best_a.empty()) return 0.0;
  std::size_t wins = 0;
  for (std::size_t i = 0; i < best_a.size(); ++i) {
    if (best_a[i] <= best_b[i]) ++wins;
  }
  return static_cast<double>(wins) / static_cast<double>(best_a.size());
}

double stability(const AnytimeCurve& best_so_far, double y_star) {
  if (best_so_far.empty() || y_star <= 0.0) return 0.0;
  double s = 0.0;
  for (double v : best_so_far) s += v / y_star;
  return s / static_cast<double>(best_so_far.size());
}

double mean_stability(const std::vector<AnytimeCurve>& curves,
                      const std::vector<double>& y_star) {
  assert(curves.size() == y_star.size());
  if (curves.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < curves.size(); ++i) {
    s += stability(curves[i], y_star[i]);
  }
  return s / static_cast<double>(curves.size());
}

std::vector<double> best_ratio(const std::vector<double>& best_a,
                               const std::vector<double>& best_b) {
  assert(best_a.size() == best_b.size());
  std::vector<double> r(best_a.size());
  for (std::size_t i = 0; i < best_a.size(); ++i) {
    r[i] = best_a[i] > 0.0 ? best_b[i] / best_a[i] : 1.0;
  }
  return r;
}

}  // namespace gptune::core
