#include "core/acquisition.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace gptune::core {

double expected_improvement(double mean, double variance, double best) {
  const double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma < 1e-12) return std::max(best - mean, 0.0);
  const double z = (best - mean) / sigma;
  return (best - mean) * common::normal_cdf(z) +
         sigma * common::normal_pdf(z);
}

double lower_confidence_bound(double mean, double variance, double kappa) {
  return mean - kappa * std::sqrt(std::max(variance, 0.0));
}

double signed_log(double v) {
  return v >= 0.0 ? std::log1p(v) : -std::log1p(-v);
}

std::vector<double> encode_config(const AcquisitionContext& ctx,
                                  const TaskVector& task, const Config& c) {
  std::vector<double> enc = ctx.space->normalize(c);
  if (ctx.performance_model) {
    const auto raw = ctx.performance_model->evaluate(task, c);
    const auto& lo = *ctx.feature_lo;
    const auto& hi = *ctx.feature_hi;
    for (std::size_t k = 0; k < raw.size(); ++k) {
      const double g = signed_log(raw[k]);
      double u = 0.5;
      if (k < lo.size() && hi[k] - lo[k] > 1e-12) {
        u = std::clamp((g - lo[k]) / (hi[k] - lo[k]), 0.0, 1.0);
      }
      enc.push_back(u);
    }
  }
  return enc;
}

std::function<double(const opt::Point&)> single_objective_acquisition(
    const AcquisitionContext& ctx, const gp::LcmModel& model,
    std::size_t task_index, const TaskVector& task, double incumbent) {
  return [ctx, &model, task_index, task, incumbent](
             const opt::Point& u) -> double {
    Config c = ctx.space->denormalize(u);
    if (!ctx.space->feasible(c)) return 1e6;
    const auto enc = encode_config(ctx, task, c);
    const auto pred = model.predict(task_index, enc);
    if (ctx.use_ei) {
      return -expected_improvement(pred.mean, pred.variance, incumbent);
    }
    return pred.mean;
  };
}

std::function<double(const opt::Point&)> constant_liar_acquisition(
    std::function<double(const opt::Point&)> base,
    const std::vector<opt::Point>& busy, double bandwidth, double penalty) {
  if (busy.empty()) return base;
  const double inv_two_h2 = 1.0 / (2.0 * bandwidth * bandwidth);
  return [base = std::move(base), busy, inv_two_h2,
          penalty](const opt::Point& u) -> double {
    double bump = 0.0;
    for (const opt::Point& b : busy) {
      double d2 = 0.0;
      const std::size_t n = std::min(u.size(), b.size());
      for (std::size_t k = 0; k < n; ++k) {
        const double d = u[k] - b[k];
        d2 += d * d;
      }
      bump += std::exp(-d2 * inv_two_h2);
    }
    return base(u) + penalty * bump;
  };
}

std::function<std::vector<double>(const opt::Point&)>
multi_objective_acquisition(
    const AcquisitionContext& ctx,
    const std::vector<std::optional<gp::LcmModel>>& models,
    std::size_t task_index, const TaskVector& task,
    std::vector<double> incumbents) {
  return [ctx, &models, task_index, task,
          incumbents = std::move(incumbents)](
             const opt::Point& u) -> std::vector<double> {
    Config c = ctx.space->denormalize(u);
    std::vector<double> out(incumbents.size(), 1e6);
    if (!ctx.space->feasible(c)) return out;
    const auto enc = encode_config(ctx, task, c);
    for (std::size_t s = 0; s < incumbents.size(); ++s) {
      if (!models[s]) continue;
      const auto pred = models[s]->predict(task_index, enc);
      out[s] = ctx.use_ei
                   ? -expected_improvement(pred.mean, pred.variance,
                                           incumbents[s])
                   : pred.mean;
    }
    return out;
  };
}

}  // namespace gptune::core
