#include "core/acquisition.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace gptune::core {

double expected_improvement(double mean, double variance, double best) {
  const double sigma = std::sqrt(std::max(variance, 0.0));
  if (sigma < 1e-12) return std::max(best - mean, 0.0);
  const double z = (best - mean) / sigma;
  return (best - mean) * common::normal_cdf(z) +
         sigma * common::normal_pdf(z);
}

double lower_confidence_bound(double mean, double variance, double kappa) {
  return mean - kappa * std::sqrt(std::max(variance, 0.0));
}

}  // namespace gptune::core
