#include "core/eval_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "common/log.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/timer.hpp"
#include "core/completion_log.hpp"
#include "runtime/comm.hpp"
#include "runtime/rtcheck.hpp"
#include "runtime/virtual_clock.hpp"

namespace gptune::core {

namespace {
/// Control tag telling a worker to exit its receive loop (work items use
/// their non-negative item index as the tag).
constexpr int kStopTag = -2;

/// Wire format of one work item: [task_dim, config_dim, task..., config...].
std::vector<double> encode_payload(const TaskVector& task,
                                   const Config& config) {
  std::vector<double> payload;
  payload.reserve(2 + task.size() + config.size());
  payload.push_back(static_cast<double>(task.size()));
  payload.push_back(static_cast<double>(config.size()));
  payload.insert(payload.end(), task.begin(), task.end());
  payload.insert(payload.end(), config.begin(), config.end());
  return payload;
}
}  // namespace

/// The spawned objective-worker group (paper Fig. 1): a parent-side
/// inter-communicator plus the joinable worker threads behind it. Workers
/// block on recv between batches and exit on kStopTag.
struct EvalEngine::Group {
  rt::Comm master;
  rt::SpawnHandle handle;
  std::size_t size;

  Group(rt::Comm m, rt::SpawnHandle h, std::size_t n)
      : master(std::move(m)), handle(std::move(h)), size(n) {}
};

EvalEngine::EvalEngine(MultiObjectiveFn objective, std::size_t num_objectives,
                       std::size_t workers, EvalPolicy policy,
                       HistoryDb* history)
    : objective_(std::move(objective)),
      num_objectives_(std::max<std::size_t>(1, num_objectives)),
      workers_(std::max<std::size_t>(1, workers)),
      policy_(std::move(policy)),
      history_(history),
      worst_clean_(num_objectives_,
                   -std::numeric_limits<double>::infinity()) {
  if (workers_ <= 1) return;

  rt::Comm master = rt::World::self();
  auto handle = master.spawn(
      workers_, [this](rt::Comm& worker, rt::InterComm& parent) {
        telemetry::set_identity("objective", static_cast<int>(worker.rank()));
        for (;;) {
          // Pinned-source receive: the parent is the only sender, so this
          // is FIFO-deterministic (and exempt from the arrival-recv lint).
          rt::Message msg = parent.recv(0);
          if (msg.tag < 0) break;
          const auto& d = msg.data;
          const auto task_dim = static_cast<std::size_t>(d[0]);
          const auto config_dim = static_cast<std::size_t>(d[1]);
          TaskVector task(d.begin() + 2, d.begin() + 2 + task_dim);
          Config config(d.begin() + 2 + task_dim,
                        d.begin() + 2 + task_dim + config_dim);
          Attempted a = run_item(task, config);
          // Archive clean results immediately (HistoryDb is mutex-guarded),
          // so an interrupted run keeps every finished evaluation.
          if (!a.failed && history_) {
            history_->add({std::move(task), std::move(config), a.objectives});
          }
          std::vector<double> reply;
          reply.reserve(5 + a.objectives.size());
          reply.push_back(static_cast<double>(a.attempts));
          reply.push_back(a.failed ? 1.0 : 0.0);
          reply.push_back(a.timed_out ? 1.0 : 0.0);
          reply.push_back(a.virtual_seconds);
          reply.push_back(static_cast<double>(a.objectives.size()));
          reply.insert(reply.end(), a.objectives.begin(), a.objectives.end());
          parent.send(0, msg.tag, std::move(reply));
        }
      });
  group_ = std::make_unique<Group>(std::move(master), std::move(handle),
                                   workers_);
  // Idle pool for the async stream interface: every rank starts idle, in
  // rank order, so the first W submits go to ranks 0..W-1.
  for (std::size_t r = 0; r < workers_; ++r) idle_workers_.push_back(r);
}

EvalEngine::~EvalEngine() {
#if defined(GPTUNE_RTCHECK)
  rt::rtcheck::hooks::on_async_owner_destroyed(this);
#endif
  if (!group_) return;
  for (std::size_t r = 0; r < group_->size; ++r) {
    group_->handle.comm().send(r, kStopTag, {});
  }
  group_->handle.join();
}

EvalEngine::Attempted EvalEngine::run_item(const TaskVector& task,
                                           const Config& config) const {
  telemetry::Span item_span("objective", "eval_item");
  Attempted out;
  const std::size_t max_attempts = 1 + policy_.max_retries;
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    out.attempts = attempt + 1;
    out.timed_out = false;
    common::Timer timer;
    std::vector<double> y;
    bool crashed = false;
    try {
      y = objective_(task, config);
    } catch (...) {
      // An application run that crashes must not take the tuner with it.
      crashed = true;
    }
    const double wall = timer.seconds();

    bool clean = !crashed && y.size() == num_objectives_;
    if (clean) {
      for (double v : y) {
        if (!std::isfinite(v)) {
          clean = false;
          break;
        }
      }
    }

    double cost = wall;
    if (policy_.virtual_cost && !crashed && y.size() == num_objectives_) {
      const double c = policy_.virtual_cost(task, config, y);
      if (std::isfinite(c) && c >= 0.0) cost = c;
    }
    if (policy_.timeout_seconds > 0.0 && cost > policy_.timeout_seconds) {
      // A run past the limit would have been killed: no usable result, and
      // the clock is charged exactly the timeout.
      clean = false;
      out.timed_out = true;
      cost = policy_.timeout_seconds;
      y.clear();
    }
    out.virtual_seconds += cost;
    out.objectives = std::move(y);
    out.failed = !clean;
    if (clean) break;
  }
  item_span.arg("vt_cost", out.virtual_seconds);
  telemetry::advance_virtual(out.virtual_seconds);
  return out;
}

void EvalEngine::evaluate_serial(const std::vector<TaskVector>& tasks,
                                 const std::vector<EvalItem>& items,
                                 std::vector<Attempted>& raw) {
  for (std::size_t i = 0; i < items.size(); ++i) {
    const TaskVector& task = tasks[items[i].task_index];
    raw[i] = run_item(task, items[i].config);
    if (!raw[i].failed && history_) {
      history_->add({task, items[i].config, raw[i].objectives});
    }
  }
}

void EvalEngine::evaluate_spawned(const std::vector<TaskVector>& tasks,
                                  const std::vector<EvalItem>& items,
                                  std::vector<Attempted>& raw) {
  rt::InterComm& comm = group_->handle.comm();
  // Static assignment (item i -> worker i mod W): deterministic, and the
  // mailbox transport is unbounded so all work can be shipped up front.
  for (std::size_t i = 0; i < items.size(); ++i) {
    const TaskVector& task = tasks[items[i].task_index];
    comm.send(i % group_->size, static_cast<int>(i),
              encode_payload(task, items[i].config));
  }
  // Replies land by arrival order through the sanctioned delivery policy
  // (live mode); results are then placed by index, so arrival order never
  // reaches the trajectory.
  CompletionDelivery arrival;
  for (std::size_t received = 0; received < items.size(); ++received) {
    rt::Message msg = arrival.next(comm);
    Attempted a;
    const auto& d = msg.data;
    a.attempts = static_cast<std::size_t>(d[0]);
    a.failed = d[1] != 0.0;
    a.timed_out = d[2] != 0.0;
    a.virtual_seconds = d[3];
    const auto n_obj = static_cast<std::size_t>(d[4]);
    a.objectives.assign(d.begin() + 5, d.begin() + 5 + n_obj);
    raw[static_cast<std::size_t>(msg.tag)] = std::move(a);
  }
}

EvalOutcome EvalEngine::finalize(Attempted&& a, const TaskVector& task,
                                 const Config& config, std::size_t label) {
  EvalOutcome o;
  o.attempts = a.attempts;
  o.timed_out = a.timed_out;
  o.virtual_seconds = a.virtual_seconds;
  if (!a.failed) {
    o.objectives = std::move(a.objectives);
    for (std::size_t s = 0; s < num_objectives_; ++s) {
      worst_clean_[s] = std::max(worst_clean_[s], o.objectives[s]);
    }
    return o;
  }
  o.penalized = true;
  o.objectives.assign(num_objectives_, 0.0);
  for (std::size_t s = 0; s < num_objectives_; ++s) {
    if (s < a.objectives.size() && std::isfinite(a.objectives[s])) {
      // Partial result: keep the components that did come back finite.
      o.objectives[s] = a.objectives[s];
    } else {
      o.objectives[s] = policy_.penalty_factor *
                        std::max(worst_clean_[s], policy_.penalty_floor);
    }
  }
  common::log_warn("evaluation of item ", label, " failed after ", o.attempts,
                   o.timed_out ? " attempt(s) (timeout)" : " attempt(s)",
                   "; recording penalty ", o.objectives[0]);
  if (history_) {
    history_->add({task, config, o.objectives});
  }
  return o;
}

std::vector<EvalOutcome> EvalEngine::evaluate(
    const std::vector<TaskVector>& tasks, const std::vector<EvalItem>& items) {
  if (inflight_ > 0) {
    const std::string what =
        "batch evaluate() with async candidates still in flight";
#if defined(GPTUNE_RTCHECK)
    rt::rtcheck::hooks::on_async_misuse(this, what);
#endif
    throw std::logic_error("EvalEngine::evaluate: " + what);
  }
  common::Timer wall;
  telemetry::Span batch_span("objective", "eval_batch");
  batch_span.arg("items", static_cast<double>(items.size()));
  std::vector<Attempted> raw(items.size());
  if (group_ && items.size() > 1) {
    evaluate_spawned(tasks, items, raw);
  } else {
    evaluate_serial(tasks, items, raw);
  }

  // Master-side penalty pass, in item-index order: deterministic at any
  // worker count, and the baseline (worst clean value) only ever grows from
  // genuine observations — penalties cannot compound.
  std::vector<EvalOutcome> outcomes(items.size());
  EvalBatchReport report;
  report.items = items.size();
  std::vector<double> costs(items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    Attempted& a = raw[i];
    costs[i] = a.virtual_seconds;
    report.retries += a.attempts - 1;
    stats_.attempts += a.attempts;
    if (a.failed) {
      report.failed_attempts += a.attempts;
      if (a.timed_out) ++report.timeouts;
      ++report.penalized;
    }
    outcomes[i] = finalize(std::move(a), tasks[items[i].task_index],
                           items[i].config, i);
  }

  // Virtual-clock makespan: greedy list scheduling of the per-item costs
  // over the worker ranks, in index order — deterministic, and the schedule
  // a dynamically self-scheduling master/worker pool achieves.
  rt::VirtualRanks ranks(workers_);
  ranks.schedule_greedy(costs);
  report.virtual_makespan = ranks.makespan();
  report.virtual_work = ranks.total_work();
  report.wall_seconds = wall.seconds();

  static auto& items_counter = telemetry::counter("eval.items");
  static auto& attempts_counter = telemetry::counter("eval.attempts");
  static auto& retries_counter = telemetry::counter("eval.retries");
  static auto& timeouts_counter = telemetry::counter("eval.timeouts");
  static auto& penalized_counter = telemetry::counter("eval.penalized");
  items_counter.add(report.items);
  attempts_counter.add(report.items + report.retries);
  retries_counter.add(report.retries);
  timeouts_counter.add(report.timeouts);
  penalized_counter.add(report.penalized);

  last_batch_ = report;
  ++stats_.batches;
  stats_.items += report.items;
  stats_.failed_attempts += report.failed_attempts;
  stats_.retries += report.retries;
  stats_.timeouts += report.timeouts;
  stats_.penalized += report.penalized;
  stats_.wall_seconds += report.wall_seconds;
  stats_.virtual_makespan += report.virtual_makespan;
  stats_.virtual_work += report.virtual_work;
  return outcomes;
}

void EvalEngine::ship_item(std::size_t id, std::size_t worker) {
  StreamItem& item = stream_[id];
  item.worker = worker;
  item.state = StreamState::kRunning;
  group_->handle.comm().send(worker, static_cast<int>(id),
                             encode_payload(item.task, item.config));
}

std::size_t EvalEngine::submit(std::size_t task_index, const TaskVector& task,
                               const Config& config) {
  const std::size_t id = stream_.size();
  StreamItem item;
  item.task = task;
  item.config = config;
  item.task_index = task_index;
  stream_.push_back(std::move(item));
  ++inflight_;
#if defined(GPTUNE_RTCHECK)
  rt::rtcheck::hooks::on_async_submit(this, id);
#endif
  static auto& dispatched_counter = telemetry::counter("async.dispatched");
  static auto& inflight_gauge = telemetry::gauge("async.inflight");
  dispatched_counter.add(1);
  inflight_gauge.set(static_cast<double>(inflight_));
  if (!group_) {
    // Inline mode (workers == 1): the caller thread is the lone objective
    // rank, so the item runs now; delivery order is still decided by
    // next_completion(), which keeps replay semantics uniform.
    StreamItem& stored = stream_[id];
    stored.result = run_item(stored.task, stored.config);
    if (!stored.result.failed && history_) {
      history_->add({stored.task, stored.config, stored.result.objectives});
    }
    stored.state = StreamState::kRunning;
    inline_done_.push_back(id);
    return id;
  }
  if (!idle_workers_.empty()) {
    const std::size_t w = idle_workers_.front();
    idle_workers_.pop_front();
    ship_item(id, w);
  } else {
    stream_queue_.push_back(id);
  }
  return id;
}

EvalCompletion EvalEngine::next_completion(CompletionDelivery& delivery) {
  if (inflight_ == 0) {
    throw std::logic_error("EvalEngine::next_completion: nothing in flight");
  }
  // Validate a replay-forced id before blocking on its reply: a stale or
  // foreign log must fail fast instead of hanging a selective receive that
  // can never be satisfied.
  if (const auto forced = delivery.forced_id()) {
    const bool known = *forced < stream_.size();
    if (!known || stream_[*forced].state != StreamState::kRunning) {
      const std::string what =
          "replay forces completion #" + std::to_string(*forced) +
          (known ? " which is not awaiting delivery"
                 : " which was never dispatched");
#if defined(GPTUNE_RTCHECK)
      rt::rtcheck::hooks::on_async_misuse(this, what);
#endif
      throw std::runtime_error("EvalEngine::next_completion: " + what);
    }
  }
  std::size_t id = 0;
  if (!group_) {
    if (const auto forced = delivery.forced_id()) {
      id = *forced;
      inline_done_.erase(
          std::find(inline_done_.begin(), inline_done_.end(), id));
    } else {
      id = inline_done_.front();
      inline_done_.pop_front();
    }
  } else {
    rt::Message msg = delivery.next(group_->handle.comm());
    id = static_cast<std::size_t>(msg.tag);
    const auto& d = msg.data;
    Attempted a;
    a.attempts = static_cast<std::size_t>(d[0]);
    a.failed = d[1] != 0.0;
    a.timed_out = d[2] != 0.0;
    a.virtual_seconds = d[3];
    const auto n_obj = static_cast<std::size_t>(d[4]);
    a.objectives.assign(d.begin() + 5, d.begin() + 5 + n_obj);
    stream_[id].result = std::move(a);
    // Self-scheduling: the rank that just finished takes the backlog front
    // (if any) or rejoins the idle pool. Both are pure functions of the
    // delivery order, which is what makes the schedule replayable.
    const std::size_t w = stream_[id].worker;
    if (!stream_queue_.empty()) {
      const std::size_t next_id = stream_queue_.front();
      stream_queue_.pop_front();
      ship_item(next_id, w);
    } else {
      idle_workers_.push_back(w);
    }
  }
  delivery.advance();
  StreamItem& item = stream_[id];
  item.state = StreamState::kDelivered;
  --inflight_;
#if defined(GPTUNE_RTCHECK)
  rt::rtcheck::hooks::on_async_delivered(this, id);
#endif

  EvalCompletion completion;
  completion.id = id;
  completion.task_index = item.task_index;
  completion.worker = item.worker;
  completion.outcome =
      finalize(std::move(item.result), item.task, item.config, id);

  ++stats_.items;
  stats_.attempts += completion.outcome.attempts;
  stats_.retries += completion.outcome.attempts - 1;
  stats_.virtual_work += completion.outcome.virtual_seconds;
  if (completion.outcome.penalized) {
    ++stats_.penalized;
    stats_.failed_attempts += completion.outcome.attempts;
    if (completion.outcome.timed_out) ++stats_.timeouts;
  }
  static auto& completions_counter = telemetry::counter("async.completions");
  static auto& inflight_gauge = telemetry::gauge("async.inflight");
  completions_counter.add(1);
  inflight_gauge.set(static_cast<double>(inflight_));
  return completion;
}

std::vector<double> EvalEngine::evaluate_one(const TaskVector& task,
                                             const Config& config) {
  const std::vector<TaskVector> tasks = {task};
  std::vector<EvalItem> items(1);
  items[0].config = config;
  return evaluate(tasks, items).front().objectives;
}

void EvalEngine::observe(const std::vector<double>& objectives) {
  const std::size_t n = std::min(objectives.size(), num_objectives_);
  for (std::size_t s = 0; s < n; ++s) {
    if (std::isfinite(objectives[s])) {
      worst_clean_[s] = std::max(worst_clean_[s], objectives[s]);
    }
  }
}

}  // namespace gptune::core
