// Multitask Learning Autotuning — the paper's primary contribution
// (Algorithms 1 and 2).
//
// MultitaskTuner runs Bayesian optimization jointly over delta tasks:
//   1. Sampling phase: epsilon_tot/2 LHS configurations per task, evaluated
//      through the black-box objective.
//   2. Modeling phase: one LCM multitask GP per objective, hyperparameters
//      by multi-start L-BFGS on the exact marginal likelihood.
//   3. Search phase: per task, PSO maximizes Expected Improvement (single
//      objective) or NSGA-II explores the per-objective EI vector (multi
//      objective); the chosen configurations are evaluated and the loop
//      repeats until the per-task budget epsilon_tot is exhausted.
//
// Optional features, matching the paper:
//   * coarse performance models appended as extra GP features, with
//     on-the-fly coefficient refits (§3.3);
//   * history archiving/reuse across runs (§1 goal 3);
//   * parallel modeling (restarts over a per-run thread pool) and parallel
//     search (tasks over a persistent spawned worker group) (§4, Fig. 1);
//     both groups live for the whole run, like the objective workers.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/completion_log.hpp"
#include "core/eval_engine.hpp"
#include "core/history.hpp"
#include "core/perf_model.hpp"
#include "core/sampler.hpp"
#include "core/space.hpp"
#include "gp/trainer.hpp"
#include "opt/nsga2.hpp"
#include "opt/pso.hpp"

namespace gptune::core {

/// Per-phase time breakdown (paper Table 3 reports these). Used twice in
/// MlaResult: once for wall-clock on this host, once for the virtual-clock
/// makespans over the configured worker counts (see DESIGN.md §1 — on a
/// 1-core container the makespan is the quantity a real distributed run
/// would measure).
struct PhaseTimes {
  double objective = 0.0;  ///< time spent inside the black-box function
  double modeling = 0.0;   ///< LCM hyperparameter fitting
  double search = 0.0;     ///< acquisition optimization
  double total() const { return objective + modeling + search; }
};

struct EvalRecord {
  Config config;
  std::vector<double> objectives;
};

/// Everything observed for one task during a run.
struct TaskHistory {
  TaskVector task;
  std::vector<EvalRecord> evals;  ///< in evaluation order

  /// Best objectives[index] value observed.
  double best(std::size_t index = 0) const;
  /// Configuration achieving best(index).
  Config best_config(std::size_t index = 0) const;
  /// Worst objectives[index] value observed.
  double worst(std::size_t index = 0) const;
  /// best-so-far curve: element j = min over evals[0..j] (anytime metric).
  std::vector<double> best_so_far(std::size_t index = 0) const;
  /// Non-dominated subset of evals (multi-objective result).
  std::vector<EvalRecord> pareto() const;
};

struct MlaOptions {
  std::size_t num_objectives = 1;       ///< gamma
  std::size_t budget_per_task = 20;     ///< epsilon_tot
  std::size_t initial_samples = 0;      ///< epsilon; 0 means epsilon_tot/2
  std::size_t num_latent = 0;           ///< Q; 0 means min(delta, 3)
  std::size_t model_restarts = 2;       ///< n_start (paper §4.3)
  std::size_t max_lbfgs_iterations = 30;
  /// Refit hyperparameters every `refit_period` MLA iterations; other
  /// iterations refresh the posterior at the cached hyperparameters
  /// (cheap) so every new sample still informs the model.
  std::size_t refit_period = 1;
  /// Reuse the previous iteration's covariance factor when hyperparameters
  /// are unchanged and samples were only appended, extending it in
  /// O(N^2 k) instead of refactorizing in O(N^3) (DESIGN.md §3.10). The
  /// extension is bitwise identical to the rebuild, so toggling this flag
  /// never changes a tuning trajectory — false exists for benchmarking the
  /// cost of the full-refactor path.
  bool incremental_refit = true;
  std::size_t model_workers = 1;        ///< ranks for hyperparameter restarts
  /// Search-worker ranks (paper Fig. 1): a persistent group spawned once
  /// per run that fans the per-task acquisition searches — PSO or NSGA-II
  /// — across MLA iterations. A fixed seed yields an identical tuning
  /// trajectory at any value.
  std::size_t search_workers = 1;
  /// Objective-worker ranks spawned by the evaluation engine (paper Fig. 1).
  /// A fixed seed yields an identical tuning trajectory at any value.
  std::size_t objective_workers = 1;
  /// Timeout/retry/penalty policy applied to every objective run.
  EvalPolicy evaluation;
  std::size_t batch_k = 4;              ///< points/iteration (Algorithm 2)
  std::uint64_t seed = 1234;
  opt::PsoOptions pso;
  opt::Nsga2Options nsga2;
  InitialDesign initial_design = InitialDesign::kLatinHypercube;
  /// Optional coarse performance model (not owned). Enables §3.3.
  PerformanceModel* performance_model = nullptr;
  /// false switches EI off in favor of posterior-mean-only acquisition
  /// (exploitation-only ablation bench).
  bool use_ei = true;
  /// Model log(y) instead of y. Appropriate for strictly positive
  /// objectives like runtime, whose noise and parameter effects are
  /// multiplicative; EI is computed consistently in log space.
  bool log_objective = false;
  /// Optional archive (not owned): pre-existing matching records seed the
  /// run; every new evaluation is appended.
  HistoryDb* history = nullptr;

  /// Asynchronous pipeline (DESIGN.md §3.9): replaces the lockstep
  /// fit → search → evaluate iteration with an event-driven manager that
  /// dispatches the next candidate the moment an objective worker frees
  /// up, generating follow-ups with constant-liar batch acquisition and
  /// refitting on a sample-count trigger. Async runs are
  /// *replay*-deterministic (see MlaResult::completion_log), not
  /// bitwise-identical across worker counts like the sync mode.
  /// Single-objective only; multi-objective runs fall back to sync.
  bool async = false;
  /// Async: in-flight candidate cap per task; 0 means batch_k.
  std::size_t async_inflight = 0;
  /// Async: refit the model after this many completions since the last
  /// fit; 0 means one refit per `delta` completions (one per task — the
  /// per-iteration cadence of the sync loop).
  std::size_t async_refit_samples = 0;
  /// Async: replay a recorded completion log (not owned; must outlive the
  /// run). The run reproduces the recorded trajectory bitwise and fails
  /// fast (throws) on a log that does not match this configuration.
  /// The GPTUNE_REPLAY=log.json environment variable is the file-based
  /// equivalent; this pointer takes precedence.
  const CompletionLog* replay = nullptr;
};

/// One row of the per-phase profile (paper Fig. 1 phases): how often the
/// phase ran and where its time went, on both clocks. Derived from the
/// same accounting as PhaseTimes; printed by the fig3/trainer benches and
/// by tools/trace_summarize. `invocations` counts how many times the
/// phase body ran, uniformly: evaluation rounds for "objective" (sampling
/// round + one per search round), model fits for "modeling", search
/// rounds for "search" — in async mode, completions / fits / candidate
/// generations respectively.
struct PhaseProfile {
  std::string phase;           ///< "objective" | "modeling" | "search"
  std::size_t invocations = 0;
  double wall_seconds = 0.0;
  double virtual_seconds = 0.0;
};

struct MlaResult {
  std::vector<TaskHistory> tasks;
  /// Wall-clock phase times on this host.
  PhaseTimes times;
  /// Virtual-clock phase makespans: objective batches list-scheduled over
  /// objective_workers, model restarts over model_workers, per-task
  /// searches over search_workers. With every worker count at 1 these
  /// degenerate to serial sums.
  PhaseTimes virtual_times;
  /// Evaluation-engine accounting (attempts, retries, timeouts, penalties).
  EvalStats eval_stats;
  /// Per-phase rollup of `times`/`virtual_times` with invocation counts,
  /// in fixed order: objective, modeling, search.
  std::vector<PhaseProfile> profiles;
  std::size_t model_refits = 0;
  std::size_t evaluations = 0;

  /// Async mode only (empty/zero for sync runs): the recorded completion
  /// delivery order — feed it back via MlaOptions::replay (or save it and
  /// use GPTUNE_REPLAY=) to reproduce this run's trajectory bitwise.
  CompletionLog completion_log;
  /// Async mode: fraction of objective-worker virtual time spent busy,
  /// sum(item costs) / (workers * virtual makespan).
  double worker_occupancy = 0.0;
  /// Async mode: virtual-clock makespan of the whole evaluation stream
  /// (the quantity the occupancy/speedup bench compares against sync).
  double async_virtual_makespan = 0.0;
};

class MultitaskTuner {
 public:
  MultitaskTuner(Space tuning_space, MultiObjectiveFn objective,
                 MlaOptions options);

  /// Runs MLA over the given tasks (Algorithm 1 when num_objectives == 1,
  /// Algorithm 2 otherwise).
  MlaResult run(const std::vector<TaskVector>& tasks);

  const Space& space() const { return space_; }
  const MlaOptions& options() const { return options_; }

 private:
  struct State;  // per-run working data

  /// Per-task history seeding + initial-design construction, shared by the
  /// sync sampling phase and the async pipeline's initial dispatch.
  std::vector<std::vector<Config>> initial_design(State& state);
  void sampling_phase(State& state);
  void modeling_phase(State& state, bool refit);
  void search_phase_single(State& state);
  void search_phase_multi(State& state);
  void evaluate_batch(State& state,
                      const std::vector<std::vector<Config>>& per_task);
  /// Event-driven pipeline behind MlaOptions::async (DESIGN.md §3.9).
  void run_async(State& state);

  Space space_;
  MultiObjectiveFn objective_;
  MlaOptions options_;
};

}  // namespace gptune::core
