#include "core/space.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace gptune::core {

Space& Space::add_real(std::string name, double lo, double hi,
                       bool log_scale) {
  if (!(lo < hi)) throw std::invalid_argument("add_real: need lo < hi");
  if (log_scale && lo <= 0.0) {
    throw std::invalid_argument("add_real: log scale needs lo > 0");
  }
  Parameter p;
  p.name = std::move(name);
  p.type = ParamType::kReal;
  p.lo = lo;
  p.hi = hi;
  p.log_scale = log_scale;
  params_.push_back(std::move(p));
  return *this;
}

Space& Space::add_integer(std::string name, long lo, long hi,
                          bool log_scale) {
  if (!(lo <= hi)) throw std::invalid_argument("add_integer: need lo <= hi");
  if (log_scale && lo <= 0) {
    throw std::invalid_argument("add_integer: log scale needs lo > 0");
  }
  Parameter p;
  p.name = std::move(name);
  p.type = ParamType::kInteger;
  p.lo = static_cast<double>(lo);
  p.hi = static_cast<double>(hi);
  p.log_scale = log_scale;
  params_.push_back(std::move(p));
  return *this;
}

Space& Space::add_categorical(std::string name,
                              std::vector<std::string> values) {
  if (values.empty()) {
    throw std::invalid_argument("add_categorical: need at least one value");
  }
  Parameter p;
  p.name = std::move(name);
  p.type = ParamType::kCategorical;
  p.lo = 0.0;
  p.hi = static_cast<double>(values.size() - 1);
  p.categories = std::move(values);
  params_.push_back(std::move(p));
  return *this;
}

Space& Space::add_constraint(std::string name,
                             std::function<bool(const Config&)> predicate) {
  constraints_.push_back({std::move(name), std::move(predicate)});
  return *this;
}

std::size_t Space::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    if (params_[i].name == name) return i;
  }
  return params_.size();
}

double Space::normalize_one(std::size_t i, double v) const {
  const Parameter& p = params_[i];
  switch (p.type) {
    case ParamType::kCategorical: {
      if (p.categories.size() == 1) return 0.5;
      return std::clamp(v / (static_cast<double>(p.categories.size()) - 1.0),
                        0.0, 1.0);
    }
    case ParamType::kReal:
    case ParamType::kInteger: {
      double lo = p.lo, hi = p.hi, x = v;
      if (p.log_scale) {
        lo = std::log(lo);
        hi = std::log(hi);
        x = std::log(std::max(v, p.lo));
      }
      if (hi - lo <= 0.0) return 0.5;
      return std::clamp((x - lo) / (hi - lo), 0.0, 1.0);
    }
  }
  return 0.0;
}

double Space::denormalize_one(std::size_t i, double u) const {
  const Parameter& p = params_[i];
  u = std::clamp(u, 0.0, 1.0);
  switch (p.type) {
    case ParamType::kCategorical: {
      const double k = static_cast<double>(p.categories.size());
      return std::min(std::floor(u * k), k - 1.0);
    }
    case ParamType::kReal: {
      if (p.log_scale) {
        return std::exp(std::log(p.lo) +
                        u * (std::log(p.hi) - std::log(p.lo)));
      }
      return p.lo + u * (p.hi - p.lo);
    }
    case ParamType::kInteger: {
      double v;
      if (p.log_scale) {
        v = std::exp(std::log(p.lo) + u * (std::log(p.hi) - std::log(p.lo)));
      } else {
        v = p.lo + u * (p.hi - p.lo);
      }
      return std::clamp(std::round(v), p.lo, p.hi);
    }
  }
  return 0.0;
}

opt::Point Space::normalize(const Config& concrete) const {
  assert(concrete.size() == dim());
  opt::Point u(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    u[i] = normalize_one(i, concrete[i]);
  }
  return u;
}

Config Space::denormalize(const opt::Point& unit) const {
  assert(unit.size() == dim());
  Config c(dim());
  for (std::size_t i = 0; i < dim(); ++i) {
    c[i] = denormalize_one(i, unit[i]);
  }
  return c;
}

bool Space::feasible(const Config& concrete) const {
  for (const auto& constraint : constraints_) {
    if (!constraint.predicate(concrete)) return false;
  }
  return true;
}

Config Space::sample_feasible(common::Rng& rng,
                              std::size_t max_attempts) const {
  Config c(dim());
  for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
    for (std::size_t i = 0; i < dim(); ++i) {
      c[i] = denormalize_one(i, rng.uniform());
    }
    if (feasible(c)) return c;
  }
  return c;  // best effort: caller may re-check feasibility
}

std::string Space::format(const Config& concrete) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < dim(); ++i) {
    if (i) os << ", ";
    const Parameter& p = params_[i];
    os << p.name << "=";
    switch (p.type) {
      case ParamType::kCategorical:
        os << p.categories[static_cast<std::size_t>(concrete[i])];
        break;
      case ParamType::kInteger:
        os << static_cast<long>(concrete[i]);
        break;
      case ParamType::kReal:
        os << concrete[i];
        break;
    }
  }
  return os.str();
}

}  // namespace gptune::core
