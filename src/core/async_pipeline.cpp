#include "core/async_pipeline.hpp"

#include <algorithm>
#include <utility>

#include "common/telemetry/telemetry.hpp"
#include "common/timer.hpp"
#include "core/search_workers.hpp"

namespace gptune::core {

AsyncPipeline::AsyncPipeline(const Options& options, const Space& space,
                             EvalEngine& engine, Hooks hooks)
    : options_(options),
      space_(space),
      engine_(engine),
      hooks_(std::move(hooks)) {}

AsyncPipeline::Report AsyncPipeline::run(
    std::vector<TaskHistory>& histories, std::vector<ConfigSet>& seen,
    const std::vector<std::vector<Config>>& initial,
    const CompletionLog* replay) {
  telemetry::Span manager_span("async", "manager_loop");
  const std::size_t delta = histories.size();
  Report report;

  // Per-task scheduling state. `committed` counts evaluations that will
  // exist when the stream drains (archived seeds + everything dispatched);
  // the budget check runs against it so the pipeline never over-commits.
  std::vector<std::size_t> committed(delta, 0);
  std::vector<std::size_t> inflight_task(delta, 0);
  std::vector<std::vector<std::pair<std::size_t, Config>>> busy(delta);
  std::vector<std::size_t> candidate_seq(delta, 0);
  for (std::size_t i = 0; i < delta; ++i) {
    committed[i] = histories[i].evals.size();
  }
  std::vector<Config> id_config;  // dispatch id -> configuration

  // Observe-only depth instrumentation: one gauge per task (current
  // in-flight count, readable live from a heartbeat snapshot) plus a
  // histogram of the depth at every dispatch — gptune_report's starvation
  // rule compares its mean against the configured cap.
  std::vector<telemetry::Gauge*> inflight_gauges(delta, nullptr);
  for (std::size_t i = 0; i < delta; ++i) {
    inflight_gauges[i] =
        &telemetry::gauge("async.in_flight.task" + std::to_string(i));
  }
  static auto& depth_hist = telemetry::histogram("async.in_flight.depth");

  // Virtual-clock model (see file comment of async_pipeline.hpp): items
  // list-schedule onto the earliest-free virtual rank in delivery order;
  // follow-up candidates are stamped at the virtual finish of the
  // completion whose processing generated them.
  std::vector<double> vt_free(engine_.workers(), 0.0);
  std::vector<double> vt_submit;  // dispatch id -> manager vt at submit
  double vt_stamp = 0.0;          // vt of the completion being processed
  double vt_now = 0.0;            // makespan so far
  double total_cost = 0.0;
  std::vector<std::pair<double, double>> jobs;  // (stamp, cost) per delivery

  auto dispatch = [&](std::size_t task, Config config) {
    seen[task].insert(config);
    const std::size_t id = engine_.submit(task, histories[task].task, config);
    if (id_config.size() <= id) id_config.resize(id + 1);
    if (vt_submit.size() <= id) vt_submit.resize(id + 1, 0.0);
    vt_submit[id] = vt_stamp;
    busy[task].emplace_back(id, config);
    id_config[id] = std::move(config);
    ++inflight_task[task];
    ++committed[task];
    ++report.dispatched;
    inflight_gauges[task]->set(static_cast<double>(inflight_task[task]));
    depth_hist.record(static_cast<double>(inflight_task[task]));
  };

  // Tops every eligible task back up to the in-flight cap, preferring the
  // emptiest (then lowest-indexed) task — a deterministic fairness rule.
  auto top_up = [&] {
    static auto& candidates_counter = telemetry::counter("async.candidates");
    for (;;) {
      std::size_t pick = delta;
      for (std::size_t i = 0; i < delta; ++i) {
        if (committed[i] >= options_.budget_per_task) continue;
        if (inflight_task[i] >= options_.inflight_per_task) continue;
        if (pick == delta || inflight_task[i] < inflight_task[pick]) pick = i;
      }
      if (pick == delta) return;

      common::Timer timer;
      telemetry::Span span("async", "generate_candidate");
      span.arg("task", static_cast<double>(pick));
      // Private deterministic stream per (task, candidate ordinal) — the
      // async analogue of the sync per-(task, iteration) search streams.
      common::Rng rng(
          search_stream_seed(options_.seed, pick, candidate_seq[pick]++));
      std::vector<Config> busy_configs;
      busy_configs.reserve(busy[pick].size());
      for (const auto& [id, c] : busy[pick]) {
        (void)id;
        busy_configs.push_back(c);
      }
      Config candidate = hooks_.candidate(pick, busy_configs, rng);
      // Dedup against everything evaluated *or in flight*; collisions are
      // replaced by random feasible draws (bounded — a duplicate still
      // terminates, exactly like the sync search's single redraw).
      for (int redraw = 0; redraw < 16 && seen[pick].count(candidate) > 0;
           ++redraw) {
        candidate = space_.sample_feasible(rng);
      }
      report.search_wall += timer.seconds();
      ++report.candidates;
      candidates_counter.add(1);
      dispatch(pick, std::move(candidate));
    }
  };

  // Sample-count fit trigger: the first fit waits for the full initial
  // design (the async analogue of "model after the sampling phase"); after
  // that, every `refit_samples` completions. Whether a fit re-optimizes
  // hyperparameters or just refreshes the posterior follows refit_period,
  // with the fit ordinal playing the sync iteration's role.
  std::size_t since_fit = 0;
  std::size_t total_initial = 0;
  bool fitted = false;
  auto maybe_fit = [&] {
    static auto& fits_counter = telemetry::counter("async.fits");
    static auto& refit_trigger = telemetry::counter("async.refit.trigger");
    const bool due = fitted ? since_fit >= options_.refit_samples
                            : report.completions >= total_initial;
    if (!due) return;
    refit_trigger.add(1);
    const bool refit = options_.refit_period == 0
                           ? report.fits == 0
                           : report.fits % options_.refit_period == 0;
    hooks_.fit(refit);
    ++report.fits;
    fits_counter.add(1);
    fitted = true;
    since_fit = 0;
  };

  for (std::size_t i = 0; i < delta; ++i) {
    for (const Config& c : initial[i]) dispatch(i, c);
  }
  total_initial = report.dispatched;
  top_up();  // tiny initial designs start below the cap — fill them

  CompletionDelivery delivery =
      replay ? CompletionDelivery(replay) : CompletionDelivery();
  while (engine_.inflight() > 0) {
    common::Timer wait_timer;
    EvalCompletion c = engine_.next_completion(delivery);
    report.objective_wall += wait_timer.seconds();
    ++report.completions;
    ++since_fit;

    const double cost = c.outcome.virtual_seconds;
    const std::size_t rank = static_cast<std::size_t>(
        std::min_element(vt_free.begin(), vt_free.end()) - vt_free.begin());
    const double start = std::max(vt_submit[c.id], vt_free[rank]);
    const double finish = start + cost;
    vt_free[rank] = finish;
    vt_stamp = finish;
    vt_now = std::max(vt_now, finish);
    total_cost += cost;
    jobs.emplace_back(vt_submit[c.id], cost);
    report.log.append({report.completions - 1, c.id, c.task_index, c.worker,
                       start, finish});

    histories[c.task_index].evals.push_back(
        {std::move(id_config[c.id]), std::move(c.outcome.objectives)});
    --inflight_task[c.task_index];
    inflight_gauges[c.task_index]->set(
        static_cast<double>(inflight_task[c.task_index]));
    auto& task_busy = busy[c.task_index];
    for (auto it = task_busy.begin(); it != task_busy.end(); ++it) {
      if (it->first == c.id) {
        task_busy.erase(it);
        break;
      }
    }

    // Order matters and is part of the replay contract: refit (if due)
    // sees the new sample, then the freed capacity is refilled with
    // candidates from the refreshed model.
    maybe_fit();
    top_up();
  }

  // Reported makespan: the self-scheduling pool schedule. The per-event
  // log timestamps above place items in delivery order, which on this host
  // is wall order — a conservative, causally consistent schedule. A real
  // worker pool pulls items in the order the manager *generates* them, so
  // the honest makespan re-schedules every (generation stamp, cost) job in
  // stamp order onto the earliest-free rank (ties kept in delivery order).
  std::stable_sort(jobs.begin(), jobs.end(),
                   [](const auto& a, const auto& b) { return a.first < b.first; });
  std::fill(vt_free.begin(), vt_free.end(), 0.0);
  for (const auto& [stamp, cost] : jobs) {
    auto it = std::min_element(vt_free.begin(), vt_free.end());
    *it = std::max(stamp, *it) + cost;
  }
  report.makespan =
      jobs.empty() ? 0.0 : *std::max_element(vt_free.begin(), vt_free.end());
  const double capacity =
      static_cast<double>(engine_.workers()) * report.makespan;
  report.occupancy = capacity > 0.0 ? total_cost / capacity : 0.0;
  static auto& occupancy_gauge = telemetry::gauge("async.occupancy");
  occupancy_gauge.set(report.occupancy);
  manager_span.arg("completions", static_cast<double>(report.completions));
  manager_span.arg("occupancy", report.occupancy);
  return report;
}

}  // namespace gptune::core
