#include "core/history.hpp"

#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>

namespace gptune::core {

namespace {
bool task_matches(const TaskVector& a, const TaskVector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}
}  // namespace

void HistoryDb::add(HistoryRecord record) {
  common::MutexLock lock(mutex_);
  records_.push_back(std::move(record));
}

std::vector<HistoryRecord> HistoryDb::for_task(const TaskVector& task,
                                               double tol) const {
  common::MutexLock lock(mutex_);
  std::vector<HistoryRecord> out;
  for (const auto& r : records_) {
    if (task_matches(r.task, task, tol)) out.push_back(r);
  }
  return out;
}

std::optional<HistoryRecord> HistoryDb::best_for_task(
    const TaskVector& task, std::size_t objective_index, double tol) const {
  common::MutexLock lock(mutex_);
  std::optional<HistoryRecord> best;
  double best_value = std::numeric_limits<double>::infinity();
  for (const auto& r : records_) {
    if (!task_matches(r.task, task, tol)) continue;
    if (objective_index >= r.objectives.size()) continue;
    if (r.objectives[objective_index] < best_value) {
      best_value = r.objectives[objective_index];
      best = r;
    }
  }
  return best;
}

void HistoryDb::merge(const HistoryDb& other) {
  auto theirs = other.snapshot();
  common::MutexLock lock(mutex_);
  records_.insert(records_.end(), std::make_move_iterator(theirs.begin()),
                  std::make_move_iterator(theirs.end()));
}

bool HistoryDb::save(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  os << "gptune-history v1\n";
  os.precision(17);
  common::MutexLock lock(mutex_);
  for (const auto& r : records_) {
    os << r.task.size() << " " << r.config.size() << " "
       << r.objectives.size();
    for (double v : r.task) os << " " << v;
    for (double v : r.config) os << " " << v;
    for (double v : r.objectives) os << " " << v;
    os << "\n";
  }
  return static_cast<bool>(os);
}

std::optional<HistoryDb> HistoryDb::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  std::string header;
  std::getline(is, header);
  if (header != "gptune-history v1") return std::nullopt;

  HistoryDb db;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::size_t nt = 0, nc = 0, no = 0;
    if (!(ls >> nt >> nc >> no)) return std::nullopt;
    HistoryRecord r;
    r.task.resize(nt);
    r.config.resize(nc);
    r.objectives.resize(no);
    for (double& v : r.task) {
      if (!(ls >> v)) return std::nullopt;
    }
    for (double& v : r.config) {
      if (!(ls >> v)) return std::nullopt;
    }
    for (double& v : r.objectives) {
      if (!(ls >> v)) return std::nullopt;
    }
    db.add(std::move(r));
  }
  return db;
}

}  // namespace gptune::core
