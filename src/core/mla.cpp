#include "core/mla.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>

#include "common/log.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/timer.hpp"
#include "core/acquisition.hpp"
#include "core/async_pipeline.hpp"
#include "core/config_set.hpp"
#include "core/run_manifest.hpp"
#include "core/search_workers.hpp"
#include "gp/incremental.hpp"
#include "runtime/thread_pool.hpp"
#include "runtime/virtual_clock.hpp"

namespace gptune::core {

// --- TaskHistory ---

double TaskHistory::best(std::size_t index) const {
  double b = std::numeric_limits<double>::infinity();
  for (const auto& e : evals) {
    if (index < e.objectives.size()) b = std::min(b, e.objectives[index]);
  }
  return b;
}

Config TaskHistory::best_config(std::size_t index) const {
  double b = std::numeric_limits<double>::infinity();
  Config c;
  for (const auto& e : evals) {
    if (index < e.objectives.size() && e.objectives[index] < b) {
      b = e.objectives[index];
      c = e.config;
    }
  }
  return c;
}

double TaskHistory::worst(std::size_t index) const {
  double w = -std::numeric_limits<double>::infinity();
  for (const auto& e : evals) {
    if (index < e.objectives.size()) w = std::max(w, e.objectives[index]);
  }
  return w;
}

std::vector<double> TaskHistory::best_so_far(std::size_t index) const {
  std::vector<double> curve;
  curve.reserve(evals.size());
  double b = std::numeric_limits<double>::infinity();
  for (const auto& e : evals) {
    if (index < e.objectives.size()) b = std::min(b, e.objectives[index]);
    curve.push_back(b);
  }
  return curve;
}

std::vector<EvalRecord> TaskHistory::pareto() const {
  std::vector<std::vector<double>> values;
  values.reserve(evals.size());
  for (const auto& e : evals) values.push_back(e.objectives);
  std::vector<EvalRecord> front;
  for (std::size_t idx : opt::pareto_filter(values)) {
    front.push_back(evals[idx]);
  }
  return front;
}

// --- State ---

struct MultitaskTuner::State {
  std::vector<TaskVector> tasks;
  common::Rng rng{0};
  MlaResult result;

  // One model (and warm-start hyperparameters) per objective.
  std::vector<std::optional<gp::LcmModel>> models;
  std::vector<std::vector<double>> warm_theta;

  // Per-objective incremental refit state (DESIGN.md §3.10): owns the
  // generation-ordered covariance factor reused across modeling phases.
  std::vector<gp::IncrementalFitState> fit_state;

  // Long-lived pool for the modeling phase (paper Fig. 1 model workers):
  // created once per run and reused by every refit, so worker threads are
  // not respawned each MLA iteration.
  std::unique_ptr<rt::ThreadPool> model_pool;

  // Long-lived objective-worker group (paper Fig. 1): owns the spawned
  // evaluation ranks, the failure policy, and history recording.
  std::unique_ptr<EvalEngine> eval;

  // Long-lived search-worker group (paper Fig. 1): spawned once per run,
  // reused by both search phases every iteration, terminated with a
  // stop-tag handshake when the run's State is destroyed.
  std::unique_ptr<SearchWorkerGroup> search_group;

  // Performance-model feature normalization (min/max of the signed-log
  // transform over the current samples), refreshed every modeling phase.
  std::vector<double> feature_lo, feature_hi;

  // Per-task seen-config dedup sets (core/config_set.hpp), persisted for
  // the whole run: history seeds enter in the sampling phase, every
  // evaluated (or, async, dispatched) configuration as it is committed.
  // Search phases only read them — no per-iteration rebuild.
  std::vector<ConfigSet> seen;

  // Per-modeling-phase accounting: wall-clock spent inside fit_lcm and its
  // virtual-clock makespan over model_workers (restarts list-scheduled).
  double fit_wall = 0.0;
  double fit_virtual = 0.0;

  std::size_t iteration = 0;

  // Uniform per-phase invocation counters for MlaResult::profiles: how
  // many times each phase body ran (see PhaseProfile).
  std::size_t objective_invocations = 0;
  std::size_t modeling_invocations = 0;
  std::size_t search_invocations = 0;
};

namespace {

double maybe_log(bool log_objective, double v) {
  return log_objective ? std::log(std::max(v, 1e-300)) : v;
}

/// Constant-liar repulsion constants (normalized space): a bump of width
/// ~10% of the unit box around each in-flight point, tall enough to
/// dominate any nearby acquisition optimum.
constexpr double kLiarBandwidth = 0.1;
constexpr double kLiarPenalty = 100.0;

}  // namespace

MultitaskTuner::MultitaskTuner(Space tuning_space, MultiObjectiveFn objective,
                               MlaOptions options)
    : space_(std::move(tuning_space)),
      objective_(std::move(objective)),
      options_(std::move(options)) {
  if (options_.initial_samples == 0) {
    options_.initial_samples = std::max<std::size_t>(
        2, options_.budget_per_task / 2);
  }
  options_.initial_samples =
      std::min(options_.initial_samples, options_.budget_per_task);
}

std::vector<std::vector<Config>> MultitaskTuner::initial_design(State& state) {
  const std::size_t delta = state.tasks.size();
  state.result.tasks.resize(delta);
  state.seen.resize(delta);
  std::vector<std::vector<Config>> batches(delta);

  for (std::size_t i = 0; i < delta; ++i) {
    state.result.tasks[i].task = state.tasks[i];
    std::size_t needed = options_.initial_samples;

    // Reuse archived evaluations for this exact task (free samples). They
    // also seed the engine's penalty baseline, as live observations would.
    if (options_.history) {
      for (const auto& rec : options_.history->for_task(state.tasks[i])) {
        if (rec.objectives.size() != options_.num_objectives) continue;
        if (rec.config.size() != space_.dim()) continue;
        state.eval->observe(rec.objectives);
        state.seen[i].insert(rec.config);
        state.result.tasks[i].evals.push_back({rec.config, rec.objectives});
      }
    }

    batches[i] = sample_initial_configs(space_, needed, state.rng,
                                        options_.initial_design);
  }
  return batches;
}

void MultitaskTuner::sampling_phase(State& state) {
  telemetry::Span phase_span("objective", "sampling_phase");
  auto batches = initial_design(state);
  evaluate_batch(state, batches);
}

void MultitaskTuner::modeling_phase(State& state, bool refit) {
  telemetry::Span phase_span("model", "modeling_phase");
  phase_span.arg("iteration", static_cast<double>(state.iteration));
  const std::size_t delta = state.tasks.size();
  ++state.modeling_invocations;
  state.fit_wall = 0.0;
  state.fit_virtual = 0.0;

  // Performance-model update phase (§3.3): refit model coefficients from
  // all observed primary-objective samples, then refresh the feature
  // normalization used by the enriched encoding.
  if (options_.performance_model) {
    std::vector<TaskVector> tasks;
    std::vector<Config> configs;
    std::vector<double> y0;
    for (const auto& th : state.result.tasks) {
      for (const auto& e : th.evals) {
        tasks.push_back(th.task);
        configs.push_back(e.config);
        y0.push_back(e.objectives[0]);
      }
    }
    options_.performance_model->update(tasks, configs, y0);

    const std::size_t fd = options_.performance_model->output_dim();
    state.feature_lo.assign(fd, std::numeric_limits<double>::infinity());
    state.feature_hi.assign(fd, -std::numeric_limits<double>::infinity());
    for (std::size_t n = 0; n < tasks.size(); ++n) {
      const auto raw =
          options_.performance_model->evaluate(tasks[n], configs[n]);
      for (std::size_t k = 0; k < fd; ++k) {
        const double g = signed_log(raw[k]);
        state.feature_lo[k] = std::min(state.feature_lo[k], g);
        state.feature_hi[k] = std::max(state.feature_hi[k], g);
      }
    }
  }

  state.models.resize(options_.num_objectives);
  state.warm_theta.resize(options_.num_objectives);
  state.fit_state.resize(options_.num_objectives);

  const AcquisitionContext acq{&space_,           options_.performance_model,
                               &state.feature_lo, &state.feature_hi,
                               options_.use_ei,   options_.log_objective};

  for (std::size_t s = 0; s < options_.num_objectives; ++s) {
    gp::MultiTaskData data;
    data.x.resize(delta);
    data.y.resize(delta);
    for (std::size_t i = 0; i < delta; ++i) {
      const auto& evals = state.result.tasks[i].evals;
      const std::size_t extra =
          options_.performance_model
              ? options_.performance_model->output_dim()
              : 0;
      data.x[i] = gp::Matrix(evals.size(), space_.dim() + extra);
      data.y[i].resize(evals.size());
      for (std::size_t j = 0; j < evals.size(); ++j) {
        const auto enc = encode_config(acq, state.tasks[i], evals[j].config);
        for (std::size_t m = 0; m < enc.size(); ++m) data.x[i](j, m) = enc[m];
        data.y[i][j] = maybe_log(options_.log_objective,
                                 evals[j].objectives[s]);
      }
    }

    gp::LcmShape shape;
    shape.num_tasks = delta;
    shape.dim = data.dim();
    shape.num_latent = options_.num_latent > 0
                           ? options_.num_latent
                           : std::min<std::size_t>(delta, 3);

    if (refit || state.warm_theta[s].size() != shape.num_hyperparameters()) {
      if (options_.model_workers > 1 && !state.model_pool) {
        state.model_pool =
            std::make_unique<rt::ThreadPool>(options_.model_workers);
      }
      gp::LcmFitOptions fit;
      fit.num_latent = shape.num_latent;
      fit.num_restarts = options_.model_restarts;
      fit.max_lbfgs_iterations = options_.max_lbfgs_iterations;
      fit.seed = options_.seed + 7919 * (state.iteration + 1) + s;
      fit.num_workers = options_.model_workers;
      fit.pool = state.model_pool.get();
      fit.warm_start = state.warm_theta[s];
      // The posterior is assembled by the incremental fit state below, not
      // by fit_lcm's own LcmModel::build — the call is for fit_stats (the
      // optimized theta and per-restart times), so the model is discarded.
      fit.build_posterior = false;
      gp::LcmFitStats fit_stats;
      (void)gp::fit_lcm(data, fit, &fit_stats);
      // Virtual modeling time: the measured per-restart times
      // list-scheduled over the model workers (makespan), instead of their
      // wall-clock sum on this host.
      state.fit_wall += fit_stats.fit_seconds;
      rt::VirtualRanks model_ranks(options_.model_workers);
      model_ranks.schedule_greedy(fit_stats.restart_seconds);
      state.fit_virtual += model_ranks.makespan();
      std::optional<gp::LcmModel> model;
      if (!fit_stats.best_theta.empty()) {
        // A restart won: refresh the posterior at the new hyperparameters.
        // When they moved, this refactorizes; when the warm start stood
        // (L-BFGS converged in place), the cached factor is extended.
        model = state.fit_state[s].refresh(
            data, shape, fit_stats.best_theta,
            state.model_pool ? state.model_pool->batch_runner()
                             : linalg::serial_runner(),
            options_.incremental_refit);
      }
      if (model) {
        state.warm_theta[s] = model->theta();
        state.models[s] = std::move(model);
        ++state.result.model_refits;
      } else {
        common::log_warn("modeling phase: objective ", s,
                         " fit failed; keeping previous model");
      }
    } else {
      // Posterior refresh at cached hyperparameters: new samples enter the
      // covariance without re-optimizing theta. This is the incremental
      // hot path — append-only growth at fixed theta extends the cached
      // factor in O(N^2 k).
      auto model = state.fit_state[s].refresh(
          data, shape, state.warm_theta[s],
          state.model_pool ? state.model_pool->batch_runner()
                           : linalg::serial_runner(),
          options_.incremental_refit);
      if (model) state.models[s] = std::move(model);
    }
  }
}

void MultitaskTuner::search_phase_single(State& state) {
  telemetry::Span phase_span("search", "search_phase");
  phase_span.arg("iteration", static_cast<double>(state.iteration));
  const std::size_t delta = state.tasks.size();
  ++state.search_invocations;
  if (!state.models[0]) {
    // No model (all fits failed): fall back to random sampling.
    std::vector<std::vector<Config>> batches(delta);
    for (std::size_t i = 0; i < delta; ++i) {
      if (state.result.tasks[i].evals.size() < options_.budget_per_task) {
        batches[i].push_back(space_.sample_feasible(state.rng));
      }
    }
    evaluate_batch(state, batches);
    return;
  }
  const gp::LcmModel& model = *state.models[0];

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < delta; ++i) {
    if (state.result.tasks[i].evals.size() < options_.budget_per_task) {
      active.push_back(i);
    }
  }

  // Per-task seen-config sets: persisted in State across iterations
  // (updated as evaluations commit), so duplicate detection is O(1) per
  // candidate with no per-iteration rebuild. Read-only during the
  // (possibly parallel) searches.
  const std::vector<ConfigSet>& seen = state.seen;

  const AcquisitionContext acq{&space_,           options_.performance_model,
                               &state.feature_lo, &state.feature_hi,
                               options_.use_ei,   options_.log_objective};

  // Candidate search for one task: PSO maximizing EI in the unit box.
  // Reads tuner state only; runs on a persistent spawned search rank when
  // search_workers > 1, inline on the master otherwise.
  SearchWorkerGroup::SearchFn search_task =
      [&](std::size_t i, common::Rng& rng) -> std::vector<Config> {
    const double incumbent =
        maybe_log(options_.log_objective, state.result.tasks[i].best(0));
    auto acquisition =
        single_objective_acquisition(acq, model, i, state.tasks[i], incumbent);
    // Seed half the swarm at feasible configurations: with tight
    // constraints (e.g. 3D process grids) a uniformly initialized swarm
    // can start entirely inside the infeasibility penalty plateau.
    opt::PsoOptions pso = options_.pso;
    for (std::size_t s = 0; s < pso.swarm_size / 2; ++s) {
      pso.initial_points.push_back(
          space_.normalize(space_.sample_feasible(rng)));
    }
    auto best = opt::pso_minimize(acquisition, opt::Box::unit(space_.dim()),
                                  rng, pso);
    Config candidate = space_.denormalize(best.x);

    // Deduplicate: an already-evaluated configuration carries no new
    // information; replace with a random feasible draw.
    if (seen[i].count(candidate) > 0) {
      candidate = space_.sample_feasible(rng);
    }
    if (!space_.feasible(candidate)) candidate = space_.sample_feasible(rng);
    return {std::move(candidate)};
  };

  auto results =
      state.search_group->dispatch(active, state.iteration, search_task);

  std::vector<std::vector<Config>> batches(delta);
  std::vector<double> active_costs(active.size(), 0.0);
  for (std::size_t a = 0; a < active.size(); ++a) {
    batches[active[a]] = std::move(results[a].configs);
    active_costs[a] = results[a].seconds;
  }

  // Virtual search time: the measured per-task search costs list-scheduled
  // over search_workers (makespan), not their serial sum on this host.
  rt::VirtualRanks search_ranks(options_.search_workers);
  search_ranks.schedule_greedy(active_costs);
  state.result.virtual_times.search += search_ranks.makespan();

  evaluate_batch(state, batches);
}

void MultitaskTuner::search_phase_multi(State& state) {
  telemetry::Span phase_span("search", "search_phase");
  phase_span.arg("iteration", static_cast<double>(state.iteration));
  const std::size_t delta = state.tasks.size();
  ++state.search_invocations;
  const std::size_t gamma = options_.num_objectives;

  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < delta; ++i) {
    if (state.result.tasks[i].evals.size() < options_.budget_per_task) {
      active.push_back(i);
    }
  }

  const AcquisitionContext acq{&space_,           options_.performance_model,
                               &state.feature_lo, &state.feature_hi,
                               options_.use_ei,   options_.log_objective};

  // NSGA-II batch search for one task, fanned over the same persistent
  // group as the single-objective path (static assignment, index-order
  // collection). Reads tuner state only.
  SearchWorkerGroup::SearchFn search_task =
      [&](std::size_t i, common::Rng& rng) -> std::vector<Config> {
    const auto& th = state.result.tasks[i];
    const std::size_t remaining =
        options_.budget_per_task - th.evals.size();
    const std::size_t k = std::min(options_.batch_k, remaining);

    std::vector<double> incumbents(gamma);
    for (std::size_t s = 0; s < gamma; ++s) {
      incumbents[s] = maybe_log(options_.log_objective, th.best(s));
    }

    // Vector acquisition: minimize (-EI_1, ..., -EI_gamma) with NSGA-II.
    auto acquisition = multi_objective_acquisition(
        acq, state.models, i, state.tasks[i], std::move(incumbents));

    opt::Nsga2Options nsga2 = options_.nsga2;
    for (std::size_t s = 0; s < nsga2.population / 2; ++s) {
      nsga2.initial_points.push_back(
          space_.normalize(space_.sample_feasible(rng)));
    }
    auto front = opt::nsga2_minimize(acquisition,
                                     opt::Box::unit(space_.dim()), rng,
                                     nsga2);

    // Pick up to k distinct new configurations from the acquisition front.
    // History dedup is O(1) per candidate via the run-persistent seen set;
    // `chosen` stays a linear scan (at most batch_k entries).
    const ConfigSet& seen = state.seen[i];
    std::vector<Config> chosen;
    for (const auto& u : front.points) {
      if (chosen.size() >= k) break;
      Config c = space_.denormalize(u);
      if (!space_.feasible(c)) continue;
      bool duplicate = seen.count(c) > 0;
      for (const auto& b : chosen) {
        if (b == c) {
          duplicate = true;
          break;
        }
      }
      if (!duplicate) chosen.push_back(std::move(c));
    }
    while (chosen.size() < k) {
      chosen.push_back(space_.sample_feasible(rng));
    }
    return chosen;
  };

  auto results =
      state.search_group->dispatch(active, state.iteration, search_task);

  std::vector<std::vector<Config>> batches(delta);
  std::vector<double> active_costs(active.size(), 0.0);
  for (std::size_t a = 0; a < active.size(); ++a) {
    batches[active[a]] = std::move(results[a].configs);
    active_costs[a] = results[a].seconds;
  }

  // Per-task searches list-scheduled over search_workers for the
  // virtual-clock search makespan.
  rt::VirtualRanks search_ranks(options_.search_workers);
  search_ranks.schedule_greedy(active_costs);
  state.result.virtual_times.search += search_ranks.makespan();

  evaluate_batch(state, batches);
}

void MultitaskTuner::evaluate_batch(
    State& state, const std::vector<std::vector<Config>>& per_task) {
  // Flatten the per-task batches into one item list in (task, config)
  // order; the engine returns outcomes in the same index order, so the
  // trajectory is identical at any objective_workers count.
  std::vector<EvalItem> items;
  for (std::size_t i = 0; i < per_task.size(); ++i) {
    for (const auto& c : per_task[i]) {
      items.push_back({i, c});
    }
  }
  if (items.empty()) return;

  ++state.objective_invocations;
  auto outcomes = state.eval->evaluate(state.tasks, items);
  for (std::size_t n = 0; n < items.size(); ++n) {
    state.seen[items[n].task_index].insert(items[n].config);
    state.result.tasks[items[n].task_index].evals.push_back(
        {std::move(items[n].config), std::move(outcomes[n].objectives)});
    ++state.result.evaluations;
  }
  const EvalBatchReport& report = state.eval->last_batch();
  state.result.times.objective += report.wall_seconds;
  state.result.virtual_times.objective += report.virtual_makespan;
}

MlaResult MultitaskTuner::run(const std::vector<TaskVector>& tasks) {
  assert(!tasks.empty());
  // Provenance first: the status:"running" manifest hits disk before any
  // tuning work, so even a crashed run leaves its configuration behind.
  // Observe-only — nothing below reads it back.
  RunManifest manifest = RunManifest::from_env();
  manifest.begin(space_, options_, tasks);

  State state;
  state.tasks = tasks;
  state.rng = common::Rng(options_.seed);
  state.eval = std::make_unique<EvalEngine>(
      objective_, options_.num_objectives, options_.objective_workers,
      options_.evaluation, options_.history);

  if (options_.async) {
    if (options_.num_objectives == 1) {
      run_async(state);
      manifest.finalize(state.result);
      return state.result;
    }
    common::log_warn("mla: async pipeline supports a single objective; "
                     "falling back to the synchronous loop");
  }

  state.search_group = std::make_unique<SearchWorkerGroup>(
      options_.search_workers, options_.seed);

  common::log_info("mla: ", tasks.size(), " tasks, budget ",
                   options_.budget_per_task, "/task, seed ", options_.seed);
  sampling_phase(state);

  auto budget_left = [&] {
    for (const auto& th : state.result.tasks) {
      if (th.evals.size() < options_.budget_per_task) return true;
    }
    return false;
  };

  while (budget_left()) {
    {
      common::Timer timer;
      const bool refit = options_.refit_period == 0
                             ? state.iteration == 0
                             : state.iteration % options_.refit_period == 0;
      modeling_phase(state, refit);
      const double wall = timer.seconds();
      state.result.times.modeling += wall;
      // Non-fit bookkeeping runs on the master either way; only the fit
      // itself parallelizes over model workers.
      state.result.virtual_times.modeling +=
          std::max(0.0, wall - state.fit_wall) + state.fit_virtual;
    }
    {
      common::Timer timer;
      // evaluate_batch accounts its own time under `objective`; subtract it
      // from the search bucket afterwards.
      const double objective_before = state.result.times.objective;
      if (options_.num_objectives == 1) {
        search_phase_single(state);
      } else {
        search_phase_multi(state);
      }
      state.result.times.search +=
          timer.seconds() -
          (state.result.times.objective - objective_before);
    }
    ++state.iteration;
    if (common::log_level() <= common::LogLevel::kInfo) {
      double best = std::numeric_limits<double>::infinity();
      for (const auto& th : state.result.tasks) {
        best = std::min(best, th.best());
      }
      common::log_info("mla: iteration ", state.iteration,
                       " done, best objective ", best);
    }
  }
  state.result.eval_stats = state.eval->stats();

  // Per-phase profile rollup (fixed order). Invocations share one unit —
  // how many times each phase body ran (see PhaseProfile): evaluation
  // rounds, model fits, search rounds.
  auto& profiles = state.result.profiles;
  profiles.clear();
  profiles.push_back({"objective", state.objective_invocations,
                      state.result.times.objective,
                      state.result.virtual_times.objective});
  profiles.push_back({"modeling", state.modeling_invocations,
                      state.result.times.modeling,
                      state.result.virtual_times.modeling});
  profiles.push_back({"search", state.search_invocations,
                      state.result.times.search,
                      state.result.virtual_times.search});
  manifest.finalize(state.result);
  return state.result;
}

void MultitaskTuner::run_async(State& state) {
  const std::size_t delta = state.tasks.size();
  common::log_info("mla[async]: ", delta, " tasks, budget ",
                   options_.budget_per_task, "/task, seed ", options_.seed,
                   ", workers ", options_.objective_workers);

  auto batches = initial_design(state);

  const AcquisitionContext acq{&space_,           options_.performance_model,
                               &state.feature_lo, &state.feature_hi,
                               options_.use_ei,   options_.log_objective};

  AsyncPipeline::Hooks hooks;
  // Model (re)fit between completions: same modeling phase as the sync
  // loop — the fit ordinal stands in for the iteration counter, so fit
  // seeds advance exactly as sync iterations would.
  hooks.fit = [&](bool refit) {
    common::Timer timer;
    modeling_phase(state, refit);
    const double wall = timer.seconds();
    state.result.times.modeling += wall;
    state.result.virtual_times.modeling +=
        std::max(0.0, wall - state.fit_wall) + state.fit_virtual;
    ++state.iteration;
  };
  // One candidate: PSO over the constant-liar-wrapped EI when a model
  // exists (the repulsion bumps sit at the task's in-flight points, so
  // concurrent candidates spread out), random feasible draw before the
  // first successful fit.
  hooks.candidate = [&](std::size_t i, const std::vector<Config>& busy,
                        common::Rng& rng) -> Config {
    if (state.models.empty() || !state.models[0]) {
      return space_.sample_feasible(rng);
    }
    const gp::LcmModel& model = *state.models[0];
    const double incumbent =
        maybe_log(options_.log_objective, state.result.tasks[i].best(0));
    auto base =
        single_objective_acquisition(acq, model, i, state.tasks[i], incumbent);
    std::vector<opt::Point> busy_points;
    busy_points.reserve(busy.size());
    for (const Config& b : busy) busy_points.push_back(space_.normalize(b));
    auto acquisition = constant_liar_acquisition(std::move(base), busy_points,
                                                 kLiarBandwidth, kLiarPenalty);
    opt::PsoOptions pso = options_.pso;
    for (std::size_t s = 0; s < pso.swarm_size / 2; ++s) {
      pso.initial_points.push_back(
          space_.normalize(space_.sample_feasible(rng)));
    }
    auto best = opt::pso_minimize(acquisition, opt::Box::unit(space_.dim()),
                                  rng, pso);
    Config candidate = space_.denormalize(best.x);
    if (!space_.feasible(candidate)) candidate = space_.sample_feasible(rng);
    return candidate;
  };

  AsyncPipeline::Options pipeline_options;
  pipeline_options.budget_per_task = options_.budget_per_task;
  pipeline_options.inflight_per_task =
      options_.async_inflight > 0 ? options_.async_inflight : options_.batch_k;
  pipeline_options.refit_samples = options_.async_refit_samples > 0
                                       ? options_.async_refit_samples
                                       : std::max<std::size_t>(1, delta);
  pipeline_options.refit_period = options_.refit_period;
  pipeline_options.seed = options_.seed;

  // Replay source: the in-memory log wins; GPTUNE_REPLAY=log.json is the
  // file-based equivalent for record/replay across processes.
  CompletionLog loaded_log;
  const CompletionLog* replay = options_.replay;
  if (replay == nullptr) {
    if (const char* env = std::getenv("GPTUNE_REPLAY"); env && *env != '\0') {
      std::string error;
      auto loaded = CompletionLog::load(env, &error);
      if (!loaded) throw std::runtime_error("GPTUNE_REPLAY: " + error);
      loaded_log = std::move(*loaded);
      replay = &loaded_log;
      common::log_info("mla[async]: replaying ", loaded_log.size(),
                       " completions from ", env);
    }
  }

  AsyncPipeline pipeline(pipeline_options, space_, *state.eval,
                         std::move(hooks));
  AsyncPipeline::Report report =
      pipeline.run(state.result.tasks, state.seen, batches, replay);

  state.result.evaluations += report.completions;
  state.result.times.objective += report.objective_wall;
  state.result.times.search += report.search_wall;
  // Manager-side candidate generation is serial, so its virtual charge is
  // its wall time; the evaluation stream's virtual time is its makespan.
  state.result.virtual_times.objective += report.makespan;
  state.result.virtual_times.search += report.search_wall;
  state.result.eval_stats = state.eval->stats();
  state.result.completion_log = std::move(report.log);
  state.result.worker_occupancy = report.occupancy;
  state.result.async_virtual_makespan = report.makespan;

  auto& profiles = state.result.profiles;
  profiles.clear();
  profiles.push_back({"objective", report.completions,
                      state.result.times.objective,
                      state.result.virtual_times.objective});
  profiles.push_back({"modeling", state.modeling_invocations,
                      state.result.times.modeling,
                      state.result.virtual_times.modeling});
  profiles.push_back({"search", report.candidates, state.result.times.search,
                      state.result.virtual_times.search});

  if (const char* env = std::getenv("GPTUNE_RECORD"); env && *env != '\0') {
    if (state.result.completion_log.save(env)) {
      common::log_info("mla[async]: recorded ",
                       state.result.completion_log.size(), " completions to ",
                       env);
    } else {
      common::log_warn("mla[async]: failed to write completion log to ", env);
    }
  }

  common::log_info("mla[async]: ", report.completions, " completions, ",
                   report.fits, " fits, occupancy ", report.occupancy);
}

}  // namespace gptune::core
