// Transfer Learning Autotuning (TLA): propose a configuration for a task
// that has never been evaluated, from archived results of related tasks.
//
// This is the GPTune software's companion feature to MLA (the paper's goal
// 3 — reuse of tuning data — taken one step further): when an application
// must run *now* on a new problem size, the archive of previously tuned
// tasks is regressed to predict a good configuration with zero new
// evaluations. The estimator is Nadaraya-Watson kernel regression over the
// normalized task space: numeric tuning parameters are the kernel-weighted
// mean of the per-source-task best configurations, categoricals the
// kernel-weighted mode.
#pragma once

#include <optional>
#include <vector>

#include "core/eval_engine.hpp"
#include "core/history.hpp"
#include "core/space.hpp"

namespace gptune::core {

struct TlaOptions {
  /// Gaussian kernel bandwidth in normalized task space.
  double bandwidth = 0.3;
  /// Objective index defining "best" per source task.
  std::size_t objective_index = 0;
};

/// Options for transfer_and_evaluate: the TLA prediction knobs plus the
/// evaluation-engine configuration used to run the predicted configs.
struct TlaEvalOptions {
  TlaOptions tla;
  /// Objective-worker ranks for the batch evaluation (paper Fig. 1); the
  /// predicted configurations for all new tasks run concurrently.
  std::size_t objective_workers = 1;
  /// Timeout/retry/penalty policy for the evaluation runs.
  EvalPolicy evaluation;
};

/// transfer_best_config prediction plus its measured objectives.
struct TlaEvaluation {
  TaskVector task;
  /// nullopt when the archive had no usable source task; then no
  /// evaluation ran and `objectives` is empty.
  std::optional<Config> config;
  std::vector<double> objectives;
  bool penalized = false;  ///< the run failed; objectives are penalties
};

/// Predicts a configuration for `new_task` from the archive.
///
/// `task_space` normalizes task vectors so distances are meaningful across
/// task parameters of different scales. Source tasks are the distinct task
/// vectors present in `history`. Returns nullopt if the archive contains
/// no usable source task.
std::optional<Config> transfer_best_config(const HistoryDb& history,
                                           const Space& task_space,
                                           const Space& tuning_space,
                                           const TaskVector& new_task,
                                           const TlaOptions& options = {});

/// Predicts one configuration per new task and evaluates the predictions
/// through an EvalEngine (objective_workers concurrent ranks, with the
/// policy's timeout/retry/penalty handling). Every measured result is
/// appended to `history`, so successive TLA calls improve the archive.
/// Results are returned in `new_tasks` order.
std::vector<TlaEvaluation> transfer_and_evaluate(
    HistoryDb& history, const Space& task_space, const Space& tuning_space,
    const std::vector<TaskVector>& new_tasks,
    const MultiObjectiveFn& objective, std::size_t num_objectives,
    const TlaEvalOptions& options = {});

}  // namespace gptune::core
