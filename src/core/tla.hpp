// Transfer Learning Autotuning (TLA): propose a configuration for a task
// that has never been evaluated, from archived results of related tasks.
//
// This is the GPTune software's companion feature to MLA (the paper's goal
// 3 — reuse of tuning data — taken one step further): when an application
// must run *now* on a new problem size, the archive of previously tuned
// tasks is regressed to predict a good configuration with zero new
// evaluations. The estimator is Nadaraya-Watson kernel regression over the
// normalized task space: numeric tuning parameters are the kernel-weighted
// mean of the per-source-task best configurations, categoricals the
// kernel-weighted mode.
#pragma once

#include <optional>

#include "core/history.hpp"
#include "core/space.hpp"

namespace gptune::core {

struct TlaOptions {
  /// Gaussian kernel bandwidth in normalized task space.
  double bandwidth = 0.3;
  /// Objective index defining "best" per source task.
  std::size_t objective_index = 0;
};

/// Predicts a configuration for `new_task` from the archive.
///
/// `task_space` normalizes task vectors so distances are meaningful across
/// task parameters of different scales. Source tasks are the distinct task
/// vectors present in `history`. Returns nullopt if the archive contains
/// no usable source task.
std::optional<Config> transfer_best_config(const HistoryDb& history,
                                           const Space& task_space,
                                           const Space& tuning_space,
                                           const TaskVector& new_task,
                                           const TlaOptions& options = {});

}  // namespace gptune::core
