#include "core/run_manifest.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/telemetry/json.hpp"
#include "common/telemetry/telemetry.hpp"

namespace gptune::core {

namespace {

// The version the binary was built from, baked in at configure time (see
// src/core/CMakeLists.txt). "unknown" outside a git checkout.
#if !defined(GPTUNE_GIT_DESCRIBE)
#define GPTUNE_GIT_DESCRIBE "unknown"
#endif

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, sizeof(v)); }

void fnv_double(std::uint64_t& h, double v) {
  // Bit pattern, not value: the digest certifies bitwise identity.
  fnv_bytes(h, &v, sizeof(v));
}

void fnv_string(std::uint64_t& h, const std::string& s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

void append_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

void append_string(std::ostringstream& os, const std::string& s) {
  os << '"' << telemetry::json_escape(s) << '"';
}

const char* param_type_name(ParamType type) {
  switch (type) {
    case ParamType::kReal: return "real";
    case ParamType::kInteger: return "integer";
    case ParamType::kCategorical: return "categorical";
  }
  return "?";
}

/// Environment toggles worth recording for reproduction. Values are copied
/// verbatim (they are paths and small scalars, not secrets).
constexpr const char* kRecordedEnv[] = {
    "GPTUNE_TRACE",   "GPTUNE_METRICS",  "GPTUNE_DUMP_DIR",
    "GPTUNE_HEARTBEAT", "GPTUNE_MANIFEST", "GPTUNE_LOG",
    "GPTUNE_RECORD",  "GPTUNE_REPLAY",
};

void append_header(std::ostringstream& os, const Space& space,
                   const MlaOptions& o,
                   const std::vector<TaskVector>& tasks,
                   const char* status) {
  os << "{\n  \"schema\": \"gptune-run-manifest/1\",\n  \"status\": \""
     << status << "\",\n";
  os << "  \"git_describe\": ";
  append_string(os, GPTUNE_GIT_DESCRIBE);
  os << ",\n  \"build\": {\"compiler\": ";
  append_string(os, __VERSION__);
  os << ", \"telemetry\": "
#if defined(GPTUNE_TELEMETRY)
     << "true"
#else
     << "false"
#endif
     << ", \"rtcheck\": "
#if defined(GPTUNE_RTCHECK)
     << "true"
#else
     << "false"
#endif
     << ", \"ndebug\": "
#if defined(NDEBUG)
     << "true"
#else
     << "false"
#endif
     << "},\n";

  os << "  \"env\": {";
  bool first = true;
  for (const char* name : kRecordedEnv) {
    const char* value = std::getenv(name);
    if (value == nullptr || value[0] == '\0') continue;
    os << (first ? "" : ", ");
    append_string(os, name);
    os << ": ";
    append_string(os, value);
    first = false;
  }
  os << "},\n";

  os << "  \"seed\": " << o.seed << ",\n  \"options\": {"
     << "\"num_objectives\": " << o.num_objectives
     << ", \"budget_per_task\": " << o.budget_per_task
     << ", \"initial_samples\": " << o.initial_samples
     << ", \"num_latent\": " << o.num_latent
     << ", \"model_restarts\": " << o.model_restarts
     << ", \"max_lbfgs_iterations\": " << o.max_lbfgs_iterations
     << ", \"refit_period\": " << o.refit_period
     << ", \"incremental_refit\": " << (o.incremental_refit ? "true" : "false")
     << ", \"model_workers\": " << o.model_workers
     << ", \"search_workers\": " << o.search_workers
     << ", \"objective_workers\": " << o.objective_workers
     << ", \"batch_k\": " << o.batch_k
     << ", \"use_ei\": " << (o.use_ei ? "true" : "false")
     << ", \"log_objective\": " << (o.log_objective ? "true" : "false")
     << ", \"async\": " << (o.async ? "true" : "false")
     << ", \"async_inflight\": " << o.async_inflight
     << ", \"async_refit_samples\": " << o.async_refit_samples
     << ", \"performance_model\": "
     << (o.performance_model != nullptr ? "true" : "false")
     << ", \"history\": " << (o.history != nullptr ? "true" : "false")
     << ", \"replay\": " << (o.replay != nullptr ? "true" : "false") << "},\n";

  os << "  \"tasks\": [";
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "[";
    for (std::size_t j = 0; j < tasks[i].size(); ++j) {
      os << (j == 0 ? "" : ", ");
      append_number(os, tasks[i][j]);
    }
    os << "]";
  }
  os << "],\n";

  os << "  \"space\": {\"dim\": " << space.dim() << ", \"hash\": \""
     << hex64(RunManifest::space_hash(space)) << "\", \"constraints\": [";
  for (std::size_t i = 0; i < space.constraints().size(); ++i) {
    os << (i == 0 ? "" : ", ");
    append_string(os, space.constraints()[i].name);
  }
  os << "], \"params\": [";
  for (std::size_t i = 0; i < space.dim(); ++i) {
    const Parameter& p = space.parameter(i);
    os << (i == 0 ? "" : ", ") << "{\"name\": ";
    append_string(os, p.name);
    os << ", \"type\": \"" << param_type_name(p.type) << "\"";
    if (p.type == ParamType::kCategorical) {
      os << ", \"categories\": [";
      for (std::size_t c = 0; c < p.categories.size(); ++c) {
        os << (c == 0 ? "" : ", ");
        append_string(os, p.categories[c]);
      }
      os << "]";
    } else {
      os << ", \"lo\": ";
      append_number(os, p.lo);
      os << ", \"hi\": ";
      append_number(os, p.hi);
      os << ", \"log_scale\": " << (p.log_scale ? "true" : "false");
    }
    os << "}";
  }
  os << "]}";
}

}  // namespace

RunManifest RunManifest::from_env() {
  const char* path = std::getenv("GPTUNE_MANIFEST");
  if (path == nullptr || path[0] == '\0') return RunManifest{};
  return RunManifest{std::string(path)};
}

std::uint64_t RunManifest::space_hash(const Space& space) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, space.dim());
  for (std::size_t i = 0; i < space.dim(); ++i) {
    const Parameter& p = space.parameter(i);
    fnv_string(h, p.name);
    fnv_u64(h, static_cast<std::uint64_t>(p.type));
    fnv_double(h, p.lo);
    fnv_double(h, p.hi);
    fnv_u64(h, p.log_scale ? 1 : 0);
    fnv_u64(h, p.num_categories());
    for (const auto& c : p.categories) fnv_string(h, c);
  }
  fnv_u64(h, space.constraints().size());
  for (const auto& c : space.constraints()) fnv_string(h, c.name);
  return h;
}

std::uint64_t RunManifest::trajectory_digest(const MlaResult& result) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, result.tasks.size());
  for (const auto& th : result.tasks) {
    const auto curve = th.best_so_far(0);
    fnv_u64(h, curve.size());
    for (const double v : curve) fnv_double(h, v);
  }
  return h;
}

void RunManifest::begin(const Space& space, const MlaOptions& options,
                        const std::vector<TaskVector>& tasks) {
  space_ = &space;
  options_ = options;
  tasks_ = tasks;
  if (!enabled()) return;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (out) out << begin_json();
}

void RunManifest::finalize(const MlaResult& result) {
  if (!enabled() || space_ == nullptr) return;
  std::ofstream out(path_, std::ios::binary | std::ios::trunc);
  if (out) out << final_json(result);
}

std::string RunManifest::begin_json() const {
  std::ostringstream os;
  append_header(os, *space_, options_, tasks_, "running");
  os << "\n}\n";
  return os.str();
}

std::string RunManifest::final_json(const MlaResult& result) const {
  std::ostringstream os;
  append_header(os, *space_, options_, tasks_, "complete");
  os << ",\n  \"evaluations\": " << result.evaluations
     << ",\n  \"model_refits\": " << result.model_refits
     << ",\n  \"trajectory_digest\": \"" << hex64(trajectory_digest(result))
     << "\",\n";

  os << "  \"best\": [";
  for (std::size_t i = 0; i < result.tasks.size(); ++i) {
    os << (i == 0 ? "" : ", ");
    append_number(os, result.tasks[i].evals.empty() ? 0.0
                                                    : result.tasks[i].best(0));
  }
  os << "],\n";

  os << "  \"profiles\": [";
  for (std::size_t i = 0; i < result.profiles.size(); ++i) {
    const PhaseProfile& p = result.profiles[i];
    os << (i == 0 ? "" : ", ") << "{\"phase\": ";
    append_string(os, p.phase);
    os << ", \"invocations\": " << p.invocations << ", \"wall_seconds\": ";
    append_number(os, p.wall_seconds);
    os << ", \"virtual_seconds\": ";
    append_number(os, p.virtual_seconds);
    os << "}";
  }
  os << "],\n";

  const EvalStats& es = result.eval_stats;
  os << "  \"eval_stats\": {\"batches\": " << es.batches
     << ", \"items\": " << es.items << ", \"attempts\": " << es.attempts
     << ", \"failed_attempts\": " << es.failed_attempts
     << ", \"retries\": " << es.retries << ", \"timeouts\": " << es.timeouts
     << ", \"penalized\": " << es.penalized << ", \"virtual_makespan\": ";
  append_number(os, es.virtual_makespan);
  os << ", \"virtual_work\": ";
  append_number(os, es.virtual_work);
  os << "},\n";

  os << "  \"worker_occupancy\": ";
  append_number(os, result.worker_occupancy);
  os << ",\n  \"async_virtual_makespan\": ";
  append_number(os, result.async_virtual_makespan);
  os << ",\n";

  // Embedded metrics snapshot (same document GPTUNE_METRICS would write),
  // so the report tool needs only the manifest for counter-based rules.
  std::string metrics = telemetry::metrics_json();
  while (!metrics.empty() &&
         (metrics.back() == '\n' || metrics.back() == ' ')) {
    metrics.pop_back();
  }
  os << "  \"metrics\": " << metrics << "\n}\n";
  return os.str();
}

}  // namespace gptune::core
