// Evaluation metrics of paper §6.6: final performance (WinTask) and anytime
// performance (stability).
#pragma once

#include <cstddef>
#include <vector>

namespace gptune::core {

/// best-so-far curve of one tuner on one task: element j is the best
/// objective among samples 0..j.
using AnytimeCurve = std::vector<double>;

/// Fraction (in [0,1]) of tasks where tuner A's final best is at least as
/// good as tuner B's (ratio best_B / best_A >= 1, matching the paper's
/// figure legends). `best_a[i]` / `best_b[i]` are the per-task minima.
double win_task(const std::vector<double>& best_a,
                const std::vector<double>& best_b);

/// Stability of one tuner on one task (paper §6.6):
///   mean_j ( best-so-far_j ) / y_star
/// where y_star is the best value found by ANY tuner on that task.
/// 1.0 is ideal; larger is worse.
double stability(const AnytimeCurve& best_so_far, double y_star);

/// Mean stability over tasks: curves[i] is tuner's anytime curve on task i,
/// y_star[i] the cross-tuner best for task i.
double mean_stability(const std::vector<AnytimeCurve>& curves,
                      const std::vector<double>& y_star);

/// Per-task ratios best_b[i] / best_a[i] (paper Fig. 6's y-axis; >= 1 means
/// tuner A wins task i).
std::vector<double> best_ratio(const std::vector<double>& best_a,
                               const std::vector<double>& best_b);

}  // namespace gptune::core
