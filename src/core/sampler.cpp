#include "core/sampler.hpp"

namespace gptune::core {

std::vector<opt::Point> latin_hypercube(std::size_t n, std::size_t dim,
                                        common::Rng& rng) {
  std::vector<opt::Point> points(n, opt::Point(dim));
  for (std::size_t d = 0; d < dim; ++d) {
    const auto perm = rng.permutation(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double cell = static_cast<double>(perm[i]);
      points[i][d] = (cell + rng.uniform()) / static_cast<double>(n);
    }
  }
  return points;
}

std::vector<opt::Point> uniform_design(std::size_t n, std::size_t dim,
                                       common::Rng& rng) {
  std::vector<opt::Point> points(n, opt::Point(dim));
  for (auto& p : points) {
    for (double& v : p) v = rng.uniform();
  }
  return points;
}

std::vector<Config> sample_initial_configs(const Space& space, std::size_t n,
                                           common::Rng& rng,
                                           InitialDesign design) {
  const auto unit = design == InitialDesign::kLatinHypercube
                        ? latin_hypercube(n, space.dim(), rng)
                        : uniform_design(n, space.dim(), rng);
  std::vector<Config> configs;
  configs.reserve(n);
  for (const auto& u : unit) {
    Config c = space.denormalize(u);
    if (!space.feasible(c)) c = space.sample_feasible(rng);
    configs.push_back(std::move(c));
  }
  return configs;
}

}  // namespace gptune::core
