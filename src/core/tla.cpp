#include "core/tla.hpp"

#include <cmath>
#include <map>
#include <vector>

namespace gptune::core {

namespace {

/// Distinct task vectors in the archive with each one's best config.
struct SourceTask {
  TaskVector task;
  Config best_config;
  double best_value;
};

}  // namespace

std::optional<Config> transfer_best_config(const HistoryDb& history,
                                           const Space& task_space,
                                           const Space& tuning_space,
                                           const TaskVector& new_task,
                                           const TlaOptions& options) {
  // Group records by task vector (exact match keys the archive's tasks).
  std::map<TaskVector, SourceTask> sources;
  // Snapshot read of a quiescent archive: transfer runs before any worker
  // gptune-lint: allow(lock-discipline) reason: snapshot read of a
  // quiescent archive; transfer runs before any worker writes to the db
  for (const auto& r : history.records()) {
    if (r.task.size() != task_space.dim()) continue;
    if (r.config.size() != tuning_space.dim()) continue;
    if (options.objective_index >= r.objectives.size()) continue;
    const double v = r.objectives[options.objective_index];
    auto it = sources.find(r.task);
    if (it == sources.end()) {
      sources.emplace(r.task, SourceTask{r.task, r.config, v});
    } else if (v < it->second.best_value) {
      it->second.best_config = r.config;
      it->second.best_value = v;
    }
  }
  if (sources.empty()) return std::nullopt;

  const opt::Point u_new = task_space.normalize(new_task);
  const double h2 = options.bandwidth * options.bandwidth;

  // Kernel weights per source task.
  std::vector<const SourceTask*> tasks;
  std::vector<double> weights;
  double weight_sum = 0.0;
  for (const auto& [key, src] : sources) {
    const opt::Point u_src = task_space.normalize(src.task);
    double dist2 = 0.0;
    for (std::size_t k = 0; k < u_new.size(); ++k) {
      const double diff = u_new[k] - u_src[k];
      dist2 += diff * diff;
    }
    const double w = std::exp(-0.5 * dist2 / h2);
    tasks.push_back(&src);
    weights.push_back(w);
    weight_sum += w;
  }
  if (weight_sum <= 0.0) {
    // All sources are effectively infinitely far: fall back to the
    // globally best archived configuration.
    const SourceTask* best = tasks.front();
    for (const auto* t : tasks) {
      if (t->best_value < best->best_value) best = t;
    }
    return best->best_config;
  }

  // Blend per parameter: weighted mean in normalized coordinates for
  // numeric parameters, weighted mode for categoricals.
  opt::Point blended(tuning_space.dim(), 0.0);
  for (std::size_t p = 0; p < tuning_space.dim(); ++p) {
    if (tuning_space.parameter(p).type == ParamType::kCategorical) {
      std::map<double, double> votes;
      for (std::size_t s = 0; s < tasks.size(); ++s) {
        votes[tasks[s]->best_config[p]] += weights[s];
      }
      double best_cat = 0.0, best_votes = -1.0;
      for (const auto& [cat, v] : votes) {
        if (v > best_votes) {
          best_votes = v;
          best_cat = cat;
        }
      }
      // Represent the chosen category in normalized coordinates so the
      // final denormalize maps it back exactly.
      Config probe(tuning_space.dim(), 0.0);
      probe[p] = best_cat;
      blended[p] = tuning_space.normalize(probe)[p];
    } else {
      double acc = 0.0;
      for (std::size_t s = 0; s < tasks.size(); ++s) {
        acc += weights[s] *
               tuning_space.normalize(tasks[s]->best_config)[p];
      }
      blended[p] = acc / weight_sum;
    }
  }
  Config result = tuning_space.denormalize(blended);
  if (!tuning_space.feasible(result)) {
    // Nearest-source fallback keeps feasibility guarantees simple.
    std::size_t nearest = 0;
    for (std::size_t s = 1; s < weights.size(); ++s) {
      if (weights[s] > weights[nearest]) nearest = s;
    }
    result = tasks[nearest]->best_config;
  }
  return result;
}

std::vector<TlaEvaluation> transfer_and_evaluate(
    HistoryDb& history, const Space& task_space, const Space& tuning_space,
    const std::vector<TaskVector>& new_tasks,
    const MultiObjectiveFn& objective, std::size_t num_objectives,
    const TlaEvalOptions& options) {
  std::vector<TlaEvaluation> results(new_tasks.size());
  std::vector<TaskVector> eval_tasks;
  std::vector<EvalItem> items;
  for (std::size_t i = 0; i < new_tasks.size(); ++i) {
    results[i].task = new_tasks[i];
    results[i].config = transfer_best_config(history, task_space,
                                             tuning_space, new_tasks[i],
                                             options.tla);
    if (results[i].config) {
      items.push_back({eval_tasks.size(), *results[i].config});
      eval_tasks.push_back(new_tasks[i]);
    }
  }
  if (items.empty()) return results;

  EvalEngine engine(objective, num_objectives, options.objective_workers,
                    options.evaluation, &history);
  // Seed the penalty baseline from the archive's clean observations, as a
  // continued MLA run would. Quiescent snapshot read: the engine has not
  // started yet.
  // gptune-lint: allow(lock-discipline) reason: quiescent snapshot read
  // before the evaluation engine spawns any writer
  for (const auto& r : history.records()) {
    engine.observe(r.objectives);
  }
  auto outcomes = engine.evaluate(eval_tasks, items);

  std::size_t n = 0;
  for (auto& res : results) {
    if (!res.config) continue;
    res.objectives = std::move(outcomes[n].objectives);
    res.penalized = outcomes[n].penalized;
    ++n;
  }
  return results;
}

}  // namespace gptune::core
