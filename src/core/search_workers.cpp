#include "core/search_workers.hpp"

#include <algorithm>
#include <utility>

#include "common/telemetry/telemetry.hpp"
#include "common/timer.hpp"
#include "core/completion_log.hpp"
#include "runtime/comm.hpp"

namespace gptune::core {

std::uint64_t search_stream_seed(std::uint64_t seed, std::size_t task,
                                 std::size_t iteration) {
  auto mix = [](std::uint64_t z) {
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  };
  std::uint64_t z = mix(seed + 0x9e3779b97f4a7c15ULL * (task + 1));
  return mix(z + 0x9e3779b97f4a7c15ULL * (iteration + 1));
}

namespace {
/// Control tag telling a worker to exit its receive loop (jobs use their
/// non-negative job index as the tag, like the evaluation engine).
constexpr int kStopTag = -2;

/// Reply payload: [seconds, n_configs, dim, configs...] — every config in
/// one search shares the tuning-space dimension.
std::vector<double> encode_reply(const SearchResult& result) {
  const std::size_t dim =
      result.configs.empty() ? 0 : result.configs.front().size();
  std::vector<double> reply;
  reply.reserve(3 + result.configs.size() * dim);
  reply.push_back(result.seconds);
  reply.push_back(static_cast<double>(result.configs.size()));
  reply.push_back(static_cast<double>(dim));
  for (const auto& c : result.configs) {
    reply.insert(reply.end(), c.begin(), c.end());
  }
  return reply;
}

SearchResult decode_reply(const std::vector<double>& d) {
  SearchResult result;
  result.seconds = d[0];
  const auto n = static_cast<std::size_t>(d[1]);
  const auto dim = static_cast<std::size_t>(d[2]);
  result.configs.reserve(n);
  for (std::size_t c = 0; c < n; ++c) {
    result.configs.emplace_back(d.begin() + 3 + c * dim,
                                d.begin() + 3 + (c + 1) * dim);
  }
  return result;
}

}  // namespace

/// The spawned search-worker group: a parent-side inter-communicator plus
/// the joinable worker threads behind it. Workers block on recv between
/// iterations and exit on kStopTag.
struct SearchWorkerGroup::Group {
  rt::Comm master;
  rt::SpawnHandle handle;

  Group(rt::Comm m, rt::SpawnHandle h)
      : master(std::move(m)), handle(std::move(h)) {}
};

SearchWorkerGroup::SearchWorkerGroup(std::size_t workers, std::uint64_t seed)
    : seed_(seed), workers_(std::max<std::size_t>(1, workers)) {
  if (workers_ <= 1) return;

  rt::Comm master = rt::World::self();
  auto handle = master.spawn(
      workers_, [this](rt::Comm& worker, rt::InterComm& parent) {
        telemetry::set_identity("search", static_cast<int>(worker.rank()));
        // One span per rank covering its whole lifetime: the group (and
        // hence the span) persists across MLA iterations.
        telemetry::Span rank_span("search", "search_worker");
        for (;;) {
          // Pinned-source receive: the master is the only sender, so this
          // is FIFO-deterministic (and exempt from the arrival-recv lint).
          rt::Message msg = parent.recv(0);
          if (msg.tag < 0) break;
          const auto task = static_cast<std::size_t>(msg.data[0]);
          const auto iteration = static_cast<std::size_t>(msg.data[1]);
          common::Rng rng(search_stream_seed(seed_, task, iteration));
          SearchResult result;
          {
            telemetry::Span job_span("search", "search_task");
            job_span.arg("task", static_cast<double>(task));
            common::Timer timer;
            result.configs = (*current_fn_)(task, rng);
            result.seconds = timer.seconds();
          }
          telemetry::advance_virtual(result.seconds);
          parent.send(0, msg.tag, encode_reply(result));
        }
      });
  group_ = std::make_unique<Group>(std::move(master), std::move(handle));
}

SearchWorkerGroup::~SearchWorkerGroup() {
  if (!group_) return;
  for (std::size_t r = 0; r < workers_; ++r) {
    group_->handle.comm().send(r, kStopTag, {});
  }
  group_->handle.join();
}

std::vector<SearchResult> SearchWorkerGroup::dispatch(
    const std::vector<std::size_t>& tasks, std::size_t iteration,
    const SearchFn& fn) {
  static auto& dispatch_counter = telemetry::counter("search.dispatch");
  static auto& idle_counter = telemetry::counter("search.idle");
  dispatch_counter.add(tasks.size());
  if (workers_ > tasks.size()) idle_counter.add(workers_ - tasks.size());

  std::vector<SearchResult> results(tasks.size());
  if (!group_) {
    // Inline mode: same per-job RNG streams and index order as the
    // spawned path, so results are bitwise identical.
    for (std::size_t a = 0; a < tasks.size(); ++a) {
      common::Rng rng(search_stream_seed(seed_, tasks[a], iteration));
      telemetry::Span job_span("search", "search_task");
      job_span.arg("task", static_cast<double>(tasks[a]));
      common::Timer timer;
      results[a].configs = fn(tasks[a], rng);
      results[a].seconds = timer.seconds();
    }
    return results;
  }

  // Publish the job function, then ship all jobs up front (the mailbox
  // transport is unbounded); workers see the publish through the mailbox
  // mutex before their first job of this dispatch.
  current_fn_ = &fn;
  rt::InterComm& comm = group_->handle.comm();
  for (std::size_t a = 0; a < tasks.size(); ++a) {
    comm.send(a % workers_, static_cast<int>(a),
              {static_cast<double>(tasks[a]), static_cast<double>(iteration)});
  }
  // Replies arrive through the sanctioned arrival-order delivery policy
  // and are placed by index, so completion order never reaches the
  // trajectory.
  CompletionDelivery arrival;
  for (std::size_t received = 0; received < tasks.size(); ++received) {
    rt::Message msg = arrival.next(comm);
    results[static_cast<std::size_t>(msg.tag)] = decode_reply(msg.data);
  }
  current_fn_ = nullptr;
  return results;
}

}  // namespace gptune::core
