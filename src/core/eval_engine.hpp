// Objective-evaluation engine — the paper's Fig. 1 objective-worker group.
//
// The tuner master spawns model, search, and *objective* worker groups over
// inter-communicators; until now only the first two existed here and every
// chosen configuration was evaluated in a serial loop on the driver thread.
// EvalEngine closes that gap: it owns a group of objective workers spawned
// via runtime::Comm::spawn, ships (task, config) work items to them over the
// inter-communicator, and collects results back by item index.
//
// Guarantees the serial loop could not express:
//
//   * Determinism at any worker count. Work is assigned statically (item i
//     -> worker i mod W), results are placed by index, and the
//     failure-penalty pass runs on the master in index order — so for a
//     pure objective the outcome sequence is bitwise identical for any
//     `workers`, and a fixed tuner seed yields one trajectory.
//   * Fault tolerance. A run that throws, returns the wrong arity, or
//     produces non-finite values is retried up to `max_retries` times and
//     then penalized with a large-but-finite value derived from the worst
//     *clean* (finite, non-penalized) observation — penalties never feed
//     back into the baseline, so repeated failures no longer compound
//     geometrically.
//   * Timeouts. Each attempt is charged a virtual-clock cost (by default
//     its measured wall time; benches/simulators supply the simulated
//     runtime instead). A cost above `timeout_seconds` counts as a killed
//     run: the attempt fails, and the clock is charged exactly the timeout.
//   * Virtual-clock makespan. Per-item costs are list-scheduled greedily
//     over `workers` virtual ranks (the schedule a self-scheduling
//     master/worker pool achieves), so the reported objective-phase time is
//     a makespan, not a sum — the quantity a real distributed run measures.
//   * Concurrent archiving. Clean results are appended to an optional
//     (mutex-guarded) HistoryDb by the workers as they complete, so an
//     interrupted run still archives every finished evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/history.hpp"
#include "core/space.hpp"

namespace gptune::core {

/// Black-box evaluation of one task at one configuration. Returns the
/// gamma objective values (all minimized). This is the expensive call —
/// in the paper, a full application run on the parallel machine.
using MultiObjectiveFn =
    std::function<std::vector<double>(const TaskVector&, const Config&)>;

/// Robustness policy for the objective-evaluation phase.
struct EvalPolicy {
  /// Wall/virtual seconds after which one attempt counts as a killed run;
  /// 0 disables the timeout.
  double timeout_seconds = 0.0;
  /// Failed attempts are re-run this many times before being penalized.
  std::size_t max_retries = 0;
  /// Penalty recorded for an unrecoverable failure:
  /// penalty_factor * max(worst clean observation, penalty_floor).
  double penalty_factor = 10.0;
  double penalty_floor = 10.0;
  /// Virtual-clock cost of one attempt, in seconds. Null charges measured
  /// wall time; simulators supply their simulated runtime so the Fig. 3
  /// scaling study sees the costs a real machine would.
  std::function<double(const TaskVector&, const Config&,
                       const std::vector<double>&)>
      virtual_cost;
};

/// One unit of work: evaluate tasks[task_index] at config.
struct EvalItem {
  std::size_t task_index = 0;
  Config config;
};

/// One finished work item, in the same order the items were submitted.
struct EvalOutcome {
  /// Objective values, always finite: measured when the run succeeded,
  /// penalty values where it did not.
  std::vector<double> objectives;
  std::size_t attempts = 1;
  bool penalized = false;  ///< every attempt failed; objectives are penalties
  bool timed_out = false;  ///< the final failure was a timeout
  double virtual_seconds = 0.0;  ///< virtual cost summed over attempts
};

/// Accounting for one evaluate() call.
struct EvalBatchReport {
  std::size_t items = 0;
  double wall_seconds = 0.0;
  /// Virtual-clock critical path over the worker ranks (what a real
  /// distributed run would measure).
  double virtual_makespan = 0.0;
  /// Sum of per-item virtual costs (the serial-equivalent work).
  double virtual_work = 0.0;
  std::size_t failed_attempts = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t penalized = 0;
};

/// Cumulative engine statistics across batches.
struct EvalStats {
  std::size_t batches = 0;
  std::size_t items = 0;
  std::size_t attempts = 0;
  std::size_t failed_attempts = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t penalized = 0;
  double wall_seconds = 0.0;
  double virtual_makespan = 0.0;
  double virtual_work = 0.0;
};

class EvalEngine {
 public:
  /// Spawns `workers` objective ranks (1 evaluates inline on the caller).
  /// `history`, if given, receives every evaluation (not owned; HistoryDb
  /// is internally mutex-guarded, so concurrent worker writes are safe).
  EvalEngine(MultiObjectiveFn objective, std::size_t num_objectives,
             std::size_t workers, EvalPolicy policy,
             HistoryDb* history = nullptr);
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  /// Evaluates every item; outcomes are returned in item order regardless
  /// of worker count or completion order.
  std::vector<EvalOutcome> evaluate(const std::vector<TaskVector>& tasks,
                                    const std::vector<EvalItem>& items);

  /// Convenience for sequential callers (the baseline tuners): one item,
  /// returns its sanitized objectives.
  std::vector<double> evaluate_one(const TaskVector& task,
                                   const Config& config);

  /// Feeds an externally observed clean objective vector (e.g. archived
  /// samples seeding a run) into the penalty baseline.
  void observe(const std::vector<double>& objectives);

  std::size_t workers() const { return workers_; }
  const EvalPolicy& policy() const { return policy_; }
  const EvalBatchReport& last_batch() const { return last_batch_; }
  const EvalStats& stats() const { return stats_; }

 private:
  struct Attempted;  // raw (pre-penalty) result of one item
  struct Group;      // spawned worker group + inter-communicator

  Attempted run_item(const TaskVector& task, const Config& config) const;
  void evaluate_serial(const std::vector<TaskVector>& tasks,
                       const std::vector<EvalItem>& items,
                       std::vector<Attempted>& raw);
  void evaluate_spawned(const std::vector<TaskVector>& tasks,
                        const std::vector<EvalItem>& items,
                        std::vector<Attempted>& raw);

  MultiObjectiveFn objective_;
  std::size_t num_objectives_;
  std::size_t workers_;
  EvalPolicy policy_;
  HistoryDb* history_;

  /// Worst clean (finite, non-penalized) value seen per objective; the
  /// penalty baseline. Never updated from penalties, so failures cannot
  /// inflate it.
  std::vector<double> worst_clean_;

  std::unique_ptr<Group> group_;
  EvalBatchReport last_batch_;
  EvalStats stats_;
};

}  // namespace gptune::core
