// Objective-evaluation engine — the paper's Fig. 1 objective-worker group.
//
// The tuner master spawns model, search, and *objective* worker groups over
// inter-communicators; until now only the first two existed here and every
// chosen configuration was evaluated in a serial loop on the driver thread.
// EvalEngine closes that gap: it owns a group of objective workers spawned
// via runtime::Comm::spawn, ships (task, config) work items to them over the
// inter-communicator, and collects results back by item index.
//
// Guarantees the serial loop could not express:
//
//   * Determinism at any worker count. Work is assigned statically (item i
//     -> worker i mod W), results are placed by index, and the
//     failure-penalty pass runs on the master in index order — so for a
//     pure objective the outcome sequence is bitwise identical for any
//     `workers`, and a fixed tuner seed yields one trajectory.
//   * Fault tolerance. A run that throws, returns the wrong arity, or
//     produces non-finite values is retried up to `max_retries` times and
//     then penalized with a large-but-finite value derived from the worst
//     *clean* (finite, non-penalized) observation — penalties never feed
//     back into the baseline, so repeated failures no longer compound
//     geometrically.
//   * Timeouts. Each attempt is charged a virtual-clock cost (by default
//     its measured wall time; benches/simulators supply the simulated
//     runtime instead). A cost above `timeout_seconds` counts as a killed
//     run: the attempt fails, and the clock is charged exactly the timeout.
//   * Virtual-clock makespan. Per-item costs are list-scheduled greedily
//     over `workers` virtual ranks (the schedule a self-scheduling
//     master/worker pool achieves), so the reported objective-phase time is
//     a makespan, not a sum — the quantity a real distributed run measures.
//   * Concurrent archiving. Clean results are appended to an optional
//     (mutex-guarded) HistoryDb by the workers as they complete, so an
//     interrupted run still archives every finished evaluation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "core/history.hpp"
#include "core/space.hpp"

namespace gptune::core {

class CompletionDelivery;  // core/completion_log.hpp

/// Black-box evaluation of one task at one configuration. Returns the
/// gamma objective values (all minimized). This is the expensive call —
/// in the paper, a full application run on the parallel machine.
using MultiObjectiveFn =
    std::function<std::vector<double>(const TaskVector&, const Config&)>;

/// Robustness policy for the objective-evaluation phase.
struct EvalPolicy {
  /// Wall/virtual seconds after which one attempt counts as a killed run;
  /// 0 disables the timeout.
  double timeout_seconds = 0.0;
  /// Failed attempts are re-run this many times before being penalized.
  std::size_t max_retries = 0;
  /// Penalty recorded for an unrecoverable failure:
  /// penalty_factor * max(worst clean observation, penalty_floor).
  double penalty_factor = 10.0;
  double penalty_floor = 10.0;
  /// Virtual-clock cost of one attempt, in seconds. Null charges measured
  /// wall time; simulators supply their simulated runtime so the Fig. 3
  /// scaling study sees the costs a real machine would.
  std::function<double(const TaskVector&, const Config&,
                       const std::vector<double>&)>
      virtual_cost;
};

/// One unit of work: evaluate tasks[task_index] at config.
struct EvalItem {
  std::size_t task_index = 0;
  Config config;
};

/// One finished work item, in the same order the items were submitted.
struct EvalOutcome {
  /// Objective values, always finite: measured when the run succeeded,
  /// penalty values where it did not.
  std::vector<double> objectives;
  std::size_t attempts = 1;
  bool penalized = false;  ///< every attempt failed; objectives are penalties
  bool timed_out = false;  ///< the final failure was a timeout
  double virtual_seconds = 0.0;  ///< virtual cost summed over attempts
};

/// Accounting for one evaluate() call.
struct EvalBatchReport {
  std::size_t items = 0;
  double wall_seconds = 0.0;
  /// Virtual-clock critical path over the worker ranks (what a real
  /// distributed run would measure).
  double virtual_makespan = 0.0;
  /// Sum of per-item virtual costs (the serial-equivalent work).
  double virtual_work = 0.0;
  std::size_t failed_attempts = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t penalized = 0;
};

/// One delivered completion from the async stream interface (DESIGN.md
/// §3.9): the dispatch id submit() returned, the task it belonged to, the
/// objective rank that ran it, and the finalized (penalty-passed) outcome.
struct EvalCompletion {
  std::size_t id = 0;
  std::size_t task_index = 0;
  std::size_t worker = 0;
  EvalOutcome outcome;
};

/// Cumulative engine statistics across batches.
struct EvalStats {
  std::size_t batches = 0;
  std::size_t items = 0;
  std::size_t attempts = 0;
  std::size_t failed_attempts = 0;
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t penalized = 0;
  double wall_seconds = 0.0;
  double virtual_makespan = 0.0;
  double virtual_work = 0.0;
};

class EvalEngine {
 public:
  /// Spawns `workers` objective ranks (1 evaluates inline on the caller).
  /// `history`, if given, receives every evaluation (not owned; HistoryDb
  /// is internally mutex-guarded, so concurrent worker writes are safe).
  EvalEngine(MultiObjectiveFn objective, std::size_t num_objectives,
             std::size_t workers, EvalPolicy policy,
             HistoryDb* history = nullptr);
  ~EvalEngine();

  EvalEngine(const EvalEngine&) = delete;
  EvalEngine& operator=(const EvalEngine&) = delete;

  /// Evaluates every item; outcomes are returned in item order regardless
  /// of worker count or completion order.
  std::vector<EvalOutcome> evaluate(const std::vector<TaskVector>& tasks,
                                    const std::vector<EvalItem>& items);

  /// Convenience for sequential callers (the baseline tuners): one item,
  /// returns its sanitized objectives.
  std::vector<double> evaluate_one(const TaskVector& task,
                                   const Config& config);

  /// Feeds an externally observed clean objective vector (e.g. archived
  /// samples seeding a run) into the penalty baseline.
  void observe(const std::vector<double>& objectives);

  // --- Async stream interface (DESIGN.md §3.9) -------------------------
  //
  // The batch evaluate() above is a barrier: it ships a whole batch and
  // blocks until every item is back. The stream interface removes the
  // barrier: submit() hands one item to the group immediately (to the
  // longest-idle worker, or a FIFO backlog when all are busy — the
  // self-scheduling pool the paper's Fig. 1 master runs), and
  // next_completion() delivers finished items one at a time in the order
  // chosen by the CompletionDelivery policy (arrival order live, recorded
  // order under replay). Penalty finalization happens per completion in
  // delivery order, so a replayed run reproduces penalties bitwise.
  //
  // The two interfaces must not be interleaved: calling evaluate() while
  // stream items are outstanding throws (and is reported by rtcheck).

  /// Dispatches one item; returns its dense dispatch id (also the reply
  /// message tag and the `item` field of the completion log).
  std::size_t submit(std::size_t task_index, const TaskVector& task,
                     const Config& config);

  /// Blocks for the next completion under `delivery`'s ordering policy.
  /// Throws std::logic_error with nothing in flight, std::runtime_error
  /// when a replay log forces an id this engine never dispatched (stale or
  /// foreign log).
  EvalCompletion next_completion(CompletionDelivery& delivery);

  /// Submitted-but-undelivered item count.
  std::size_t inflight() const { return inflight_; }

  std::size_t workers() const { return workers_; }
  const EvalPolicy& policy() const { return policy_; }
  const EvalBatchReport& last_batch() const { return last_batch_; }
  const EvalStats& stats() const { return stats_; }

 private:
  /// Raw result of one item before the master's penalty pass.
  struct Attempted {
    std::vector<double> objectives;  ///< last attempt's values; may be dirty
    std::size_t attempts = 1;
    bool failed = false;
    bool timed_out = false;
    double virtual_seconds = 0.0;
  };
  struct Group;  // spawned worker group + inter-communicator

  /// Lifecycle of one stream item.
  enum class StreamState {
    kQueued,     ///< submitted, waiting for an idle worker
    kRunning,    ///< shipped to a worker (or, inline mode, result ready)
    kDelivered,  ///< returned by next_completion()
  };
  struct StreamItem {
    TaskVector task;
    Config config;
    std::size_t task_index = 0;
    std::size_t worker = 0;
    StreamState state = StreamState::kQueued;
    Attempted result;  ///< inline mode only; spawned replies carry it
  };

  Attempted run_item(const TaskVector& task, const Config& config) const;
  /// Master-side penalty pass for one item: updates the worst-clean
  /// baseline from clean results, substitutes penalties (and archives
  /// them) otherwise. `label` only names the item in the failure log line.
  EvalOutcome finalize(Attempted&& a, const TaskVector& task,
                       const Config& config, std::size_t label);
  void ship_item(std::size_t id, std::size_t worker);
  void evaluate_serial(const std::vector<TaskVector>& tasks,
                       const std::vector<EvalItem>& items,
                       std::vector<Attempted>& raw);
  void evaluate_spawned(const std::vector<TaskVector>& tasks,
                        const std::vector<EvalItem>& items,
                        std::vector<Attempted>& raw);

  MultiObjectiveFn objective_;
  std::size_t num_objectives_;
  std::size_t workers_;
  EvalPolicy policy_;
  HistoryDb* history_;

  /// Worst clean (finite, non-penalized) value seen per objective; the
  /// penalty baseline. Never updated from penalties, so failures cannot
  /// inflate it.
  std::vector<double> worst_clean_;

  std::unique_ptr<Group> group_;
  EvalBatchReport last_batch_;
  EvalStats stats_;

  /// Async stream state. stream_ is dense by dispatch id; the deques hold
  /// ids (backlog) and ranks (idle pool, longest-idle first) — all updated
  /// only at submit/delivery, so the dispatch schedule is a deterministic
  /// function of the completion delivery order.
  std::vector<StreamItem> stream_;
  std::deque<std::size_t> stream_queue_;
  std::deque<std::size_t> idle_workers_;
  std::deque<std::size_t> inline_done_;  ///< inline mode: undelivered ids
  std::size_t inflight_ = 0;
};

}  // namespace gptune::core
