#include "core/perf_model.hpp"

#include <cassert>

#include "linalg/qr.hpp"

namespace gptune::core {

LinearCombinationModel::LinearCombinationModel(
    FeatureFn features, std::vector<double> initial_coefficients)
    : features_(std::move(features)),
      coefficients_(std::move(initial_coefficients)) {}

std::vector<double> LinearCombinationModel::evaluate(
    const TaskVector& task, const Config& config) const {
  const auto f = features_(task, config);
  assert(f.size() == coefficients_.size());
  double s = 0.0;
  for (std::size_t k = 0; k < f.size(); ++k) s += coefficients_[k] * f[k];
  return {s};
}

void LinearCombinationModel::update(const std::vector<TaskVector>& tasks,
                                    const std::vector<Config>& configs,
                                    const std::vector<double>& objectives) {
  assert(tasks.size() == configs.size() &&
         configs.size() == objectives.size());
  const std::size_t n = tasks.size();
  const std::size_t k = coefficients_.size();
  if (n < k) return;  // not enough data to refit

  linalg::Matrix a(n, k);
  linalg::Vector b(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto f = features_(tasks[r], configs[r]);
    assert(f.size() == k);
    for (std::size_t c = 0; c < k; ++c) a(r, c) = f[c];
    b[r] = objectives[r];
  }
  // The coefficients are per-operation times, so non-negativity is physical.
  linalg::Vector fit = linalg::nnls(a, b);
  // Keep the previous coefficients if the fit degenerated to all-zero.
  double sum = 0.0;
  for (double v : fit) sum += v;
  if (sum > 0.0) coefficients_ = std::move(fit);
}

}  // namespace gptune::core
