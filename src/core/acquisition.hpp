// Acquisition functions for the MLA search phase (paper §3.1, phase 3).
//
// Expected Improvement for minimization:
//   EI(x) = (y_best - mu) Phi(z) + sigma phi(z),  z = (y_best - mu) / sigma.
// The search phase maximizes EI per task with PSO; the multi-objective
// variant exposes the per-objective EI vector to NSGA-II (paper §3.2).
#pragma once

#include <functional>

namespace gptune::core {

/// EI for minimization given posterior (mean, variance) and the incumbent
/// best observed value. Zero when variance is (numerically) zero and the
/// mean offers no improvement.
double expected_improvement(double mean, double variance, double best);

/// Lower confidence bound mu - kappa*sigma (exploitation ablation uses
/// kappa = 0, i.e. posterior mean only).
double lower_confidence_bound(double mean, double variance, double kappa);

}  // namespace gptune::core
