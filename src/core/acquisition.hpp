// Acquisition functions for the MLA search phase (paper §3.1, phase 3).
//
// Expected Improvement for minimization:
//   EI(x) = (y_best - mu) Phi(z) + sigma phi(z),  z = (y_best - mu) / sigma.
// The search phase maximizes EI per task with PSO; the multi-objective
// variant exposes the per-objective EI vector to NSGA-II (paper §3.2).
// The per-task acquisition closures are built here — not inline in the
// tuner — so the master's serial path and the spawned search workers run
// the exact same objective over the exact same encoding.
#pragma once

#include <cstddef>
#include <functional>
#include <optional>
#include <vector>

#include "core/perf_model.hpp"
#include "core/space.hpp"
#include "gp/trainer.hpp"
#include "opt/problem.hpp"

namespace gptune::core {

/// EI for minimization given posterior (mean, variance) and the incumbent
/// best observed value. Zero when variance is (numerically) zero and the
/// mean offers no improvement.
double expected_improvement(double mean, double variance, double best);

/// Lower confidence bound mu - kappa*sigma (exploitation ablation uses
/// kappa = 0, i.e. posterior mean only).
double lower_confidence_bound(double mean, double variance, double kappa);

/// log1p with sign symmetry: compresses performance-model outputs of
/// either sign onto a comparable scale before normalization (§3.3).
double signed_log(double v);

/// Read-only view of the tuner state an acquisition needs: the tuning
/// space, the optional performance model with its feature normalization,
/// and the acquisition flavor flags. Built once per search phase and
/// shared by every per-task search (including spawned search workers), so
/// the referenced state must stay immutable while searches run.
struct AcquisitionContext {
  const Space* space = nullptr;
  const PerformanceModel* performance_model = nullptr;  ///< may be null
  const std::vector<double>* feature_lo = nullptr;
  const std::vector<double>* feature_hi = nullptr;
  bool use_ei = true;
  bool log_objective = false;
};

/// Encodes (task, config) for the GP: normalized tuning parameters plus,
/// when a performance model is attached, its normalized outputs (§3.3).
std::vector<double> encode_config(const AcquisitionContext& ctx,
                                  const TaskVector& task, const Config& c);

/// Scalar acquisition for the single-objective search: -EI of `model` for
/// task `task_index` at the denormalized point (posterior mean when
/// use_ei is off); infeasible points get a flat 1e6 penalty. PSO
/// minimizes this. `model` must outlive the returned closure.
std::function<double(const opt::Point&)> single_objective_acquisition(
    const AcquisitionContext& ctx, const gp::LcmModel& model,
    std::size_t task_index, const TaskVector& task, double incumbent);

/// Constant-liar batch acquisition (async pipeline, DESIGN.md §3.9): wraps
/// a scalar acquisition-to-minimize with an additive Gaussian repulsion
/// bump at each in-flight ("busy") normalized point,
///   a'(u) = a(u) + penalty * sum_b exp(-|u - b|^2 / (2 h^2)),
/// so concurrent candidates for the same task spread out instead of piling
/// onto the current acquisition optimum. With no busy points the base
/// closure is returned unchanged (bitwise-identical to the plain search).
/// `busy` is copied; `base` is captured by value.
std::function<double(const opt::Point&)> constant_liar_acquisition(
    std::function<double(const opt::Point&)> base,
    const std::vector<opt::Point>& busy, double bandwidth, double penalty);

/// Vector acquisition for the multi-objective search: the per-objective
/// -EI vector (objectives whose model fit failed contribute the flat
/// penalty). NSGA-II minimizes this. `models` must outlive the closure.
std::function<std::vector<double>(const opt::Point&)>
multi_objective_acquisition(
    const AcquisitionContext& ctx,
    const std::vector<std::optional<gp::LcmModel>>& models,
    std::size_t task_index, const TaskVector& task,
    std::vector<double> incumbents);

}  // namespace gptune::core
