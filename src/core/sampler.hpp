// Initial sampling designs for the MLA sampling phase (paper §3.1, phase 1).
//
// GPTune draws the epsilon_tot/2 initial configurations per task with Latin
// hypercube sampling (its Python code uses lhsmdu); an LHS design stratifies
// every dimension so few samples still cover the box. Constrained spaces are
// handled by rejection against Space::feasible.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "core/space.hpp"
#include "opt/problem.hpp"

namespace gptune::core {

/// `n` points in [0,1]^dim, one per row stratum per dimension (maximin-free
/// plain LHS: each dimension's [0,1] is split into n cells, each cell used
/// exactly once, position within a cell uniform).
std::vector<opt::Point> latin_hypercube(std::size_t n, std::size_t dim,
                                        common::Rng& rng);

/// `n` i.i.d. uniform points in [0,1]^dim.
std::vector<opt::Point> uniform_design(std::size_t n, std::size_t dim,
                                       common::Rng& rng);

enum class InitialDesign { kLatinHypercube, kUniform };

/// `n` feasible concrete configurations of `space`. LHS points that violate
/// constraints are replaced by feasible rejection samples, preserving count.
std::vector<Config> sample_initial_configs(
    const Space& space, std::size_t n, common::Rng& rng,
    InitialDesign design = InitialDesign::kLatinHypercube);

}  // namespace gptune::core
