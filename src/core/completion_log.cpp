#include "core/completion_log.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "common/telemetry/json.hpp"

namespace gptune::core {

namespace {

/// Round-trippable double rendering (same convention as the telemetry
/// writers: shortest form that parses back to the identical bit pattern).
std::string render_double(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool read_size(const telemetry::JsonValue& obj, const char* key,
               std::size_t* out) {
  const telemetry::JsonValue* v = obj.find(key);
  if (v == nullptr || v->type() != telemetry::JsonValue::Type::kNumber) {
    return false;
  }
  if (v->as_number() < 0.0) return false;
  *out = static_cast<std::size_t>(v->as_number());
  return true;
}

bool read_double(const telemetry::JsonValue& obj, const char* key,
                 double* out) {
  const telemetry::JsonValue* v = obj.find(key);
  if (v == nullptr || v->type() != telemetry::JsonValue::Type::kNumber) {
    return false;
  }
  *out = v->as_number();
  return true;
}

}  // namespace

std::string CompletionLog::to_json() const {
  std::ostringstream os;
  os << "{\"version\":1,\"events\":[";
  for (std::size_t i = 0; i < events_.size(); ++i) {
    const CompletionEvent& e = events_[i];
    if (i > 0) os << ',';
    os << "\n {\"seq\":" << e.seq << ",\"item\":" << e.item
       << ",\"task\":" << e.task << ",\"worker\":" << e.worker
       << ",\"vt_start\":" << render_double(e.vt_start)
       << ",\"vt_finish\":" << render_double(e.vt_finish) << '}';
  }
  os << "\n]}\n";
  return os.str();
}

std::optional<CompletionLog> CompletionLog::from_json(const std::string& text,
                                                      std::string* error) {
  std::string parse_error;
  const telemetry::JsonValue root = telemetry::JsonValue::parse(
      text, &parse_error);
  auto fail = [&](const std::string& why) -> std::optional<CompletionLog> {
    if (error != nullptr) *error = why;
    return std::nullopt;
  };
  if (!root.is_object()) {
    return fail(parse_error.empty() ? "completion log: not a JSON object"
                                    : parse_error);
  }
  const telemetry::JsonValue* version = root.find("version");
  if (version == nullptr || version->as_number() != 1.0) {
    return fail("completion log: unsupported schema version");
  }
  const telemetry::JsonValue* events = root.find("events");
  if (events == nullptr || !events->is_array()) {
    return fail("completion log: missing events array");
  }
  CompletionLog log;
  for (std::size_t i = 0; i < events->items().size(); ++i) {
    const telemetry::JsonValue& item = events->items()[i];
    CompletionEvent e;
    if (!item.is_object() || !read_size(item, "seq", &e.seq) ||
        !read_size(item, "item", &e.item) ||
        !read_size(item, "task", &e.task) ||
        !read_size(item, "worker", &e.worker) ||
        !read_double(item, "vt_start", &e.vt_start) ||
        !read_double(item, "vt_finish", &e.vt_finish)) {
      return fail("completion log: malformed event at index " +
                  std::to_string(i));
    }
    log.append(e);
  }
  return log;
}

bool CompletionLog::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << to_json();
  return static_cast<bool>(out);
}

std::optional<CompletionLog> CompletionLog::load(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "completion log: cannot open " + path;
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return from_json(text.str(), error);
}

std::optional<std::size_t> CompletionDelivery::forced_id() const {
  if (log_ == nullptr || cursor_ >= log_->size()) return std::nullopt;
  return log_->events()[cursor_].item;
}

rt::Message CompletionDelivery::next(rt::InterComm& comm) {
  if (log_ == nullptr) {
    // Live arrival order: the one sanctioned wildcard receive outside
    // src/runtime/ — whatever order this yields is what gets recorded.
    return comm.recv();
  }
  const std::optional<std::size_t> id = forced_id();
  if (!id.has_value()) {
    throw std::runtime_error(
        "completion replay: log exhausted after " +
        std::to_string(cursor_) +
        " event(s) but more completions are outstanding (log recorded "
        "under different options?)");
  }
  // Tag-selective receive: the mailbox blocks until the logged item's
  // reply is available, so delivery order matches the recording exactly.
  return comm.recv(rt::kAnySource, static_cast<int>(*id));
}

void CompletionDelivery::advance() {
  if (log_ != nullptr) ++cursor_;
}

}  // namespace gptune::core
