// Coarse performance models (paper §3.3).
//
// A performance model is an analytic estimate y~(t, x) of some feature of
// the objective (flops, messages, volume, time). GPTune appends the model
// values as extra GP input features: the enriched point is [x, y~(t, x)]
// in a space of dimension beta + gamma-tilde, which lets the LCM exploit
// the model's shape with far fewer samples.
//
// Models may carry their own hyperparameters (the t_flop/t_msg/t_vol
// coefficients of Eq. 7); update() refits them from the observed samples
// before each modeling phase, as §3.3 prescribes ("a bad hyperparameter
// estimate will result in worse tuning performance").
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/space.hpp"

namespace gptune::core {

using TaskVector = std::vector<double>;

class PerformanceModel {
 public:
  virtual ~PerformanceModel() = default;

  /// gamma-tilde: number of model outputs appended as GP features.
  virtual std::size_t output_dim() const = 0;

  /// Model estimates for (task, configuration).
  virtual std::vector<double> evaluate(const TaskVector& task,
                                       const Config& config) const = 0;

  /// Refits internal hyperparameters from observed objective samples.
  /// Default: stateless model, nothing to update.
  virtual void update(const std::vector<TaskVector>& /*tasks*/,
                      const std::vector<Config>& /*configs*/,
                      const std::vector<double>& /*objectives*/) {}
};

/// A model of the form y~ = sum_k c_k * f_k(t, x) with non-negative
/// coefficients c_k refit by NNLS against the observed objective in every
/// update() — the generic machinery behind paper Eq. (7), where
/// f = (C_flop, C_msg, C_vol) and c = (t_flop, t_msg, t_vol).
class LinearCombinationModel : public PerformanceModel {
 public:
  using FeatureFn =
      std::function<std::vector<double>(const TaskVector&, const Config&)>;

  /// `features` returns the k feature values; `initial_coefficients` seeds
  /// c before the first update (size must match the feature count).
  LinearCombinationModel(FeatureFn features,
                         std::vector<double> initial_coefficients);

  std::size_t output_dim() const override { return 1; }

  std::vector<double> evaluate(const TaskVector& task,
                               const Config& config) const override;

  void update(const std::vector<TaskVector>& tasks,
              const std::vector<Config>& configs,
              const std::vector<double>& objectives) override;

  const std::vector<double>& coefficients() const { return coefficients_; }

 private:
  FeatureFn features_;
  std::vector<double> coefficients_;
};

/// Wraps a plain callable as a stateless PerformanceModel.
class CallableModel : public PerformanceModel {
 public:
  using Fn = std::function<std::vector<double>(const TaskVector&,
                                               const Config&)>;
  CallableModel(Fn fn, std::size_t output_dim)
      : fn_(std::move(fn)), output_dim_(output_dim) {}

  std::size_t output_dim() const override { return output_dim_; }
  std::vector<double> evaluate(const TaskVector& task,
                               const Config& config) const override {
    return fn_(task, config);
  }

 private:
  Fn fn_;
  std::size_t output_dim_;
};

}  // namespace gptune::core
