// Tuning-data archive (paper goal 3: "Support archiving and reusing tuning
// data from multiple executions to allow tuning to improve over time").
//
// Every function evaluation (task parameters, tuning configuration,
// objective values) can be appended to a HistoryDb, saved to a plain-text
// file, reloaded in a later session, and injected into a new MLA run as
// pre-existing samples for matching tasks.
#pragma once

#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/space.hpp"

namespace gptune::core {

using TaskVector = std::vector<double>;

struct HistoryRecord {
  TaskVector task;
  Config config;
  std::vector<double> objectives;
};

/// Mutating and querying member functions are mutex-guarded, so concurrent
/// objective workers (core/eval_engine) can record evaluations safely.
/// records() hands out a direct reference and is the one exception: callers
/// must not hold it across concurrent add()s.
class HistoryDb {
 public:
  HistoryDb() = default;
  HistoryDb(const HistoryDb& other) : records_(other.snapshot()) {}
  HistoryDb(HistoryDb&& other) noexcept : records_(other.take()) {}
  HistoryDb& operator=(const HistoryDb& other) {
    if (this != &other) {
      auto copy = other.snapshot();
      std::lock_guard<std::mutex> lock(mutex_);
      records_ = std::move(copy);
    }
    return *this;
  }
  HistoryDb& operator=(HistoryDb&& other) noexcept {
    if (this != &other) {
      auto taken = other.take();
      std::lock_guard<std::mutex> lock(mutex_);
      records_ = std::move(taken);
    }
    return *this;
  }

  void add(HistoryRecord record);
  const std::vector<HistoryRecord>& records() const { return records_; }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_.size();
  }

  /// Records whose task vector matches `task` within `tol` per component.
  std::vector<HistoryRecord> for_task(const TaskVector& task,
                                      double tol = 1e-9) const;

  /// Best (minimal objectives[objective_index]) record for `task`.
  std::optional<HistoryRecord> best_for_task(
      const TaskVector& task, std::size_t objective_index = 0,
      double tol = 1e-9) const;

  /// Appends every record of `other`.
  void merge(const HistoryDb& other);

  /// Writes a versioned whitespace-separated text file. Returns false on
  /// I/O failure.
  bool save(const std::string& path) const;

  /// Loads a file produced by save(); nullopt on parse or I/O failure.
  static std::optional<HistoryDb> load(const std::string& path);

 private:
  std::vector<HistoryRecord> snapshot() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
  }
  std::vector<HistoryRecord> take() noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    return std::move(records_);
  }

  mutable std::mutex mutex_;
  std::vector<HistoryRecord> records_;
};

}  // namespace gptune::core
