// Tuning-data archive (paper goal 3: "Support archiving and reusing tuning
// data from multiple executions to allow tuning to improve over time").
//
// Every function evaluation (task parameters, tuning configuration,
// objective values) can be appended to a HistoryDb, saved to a plain-text
// file, reloaded in a later session, and injected into a new MLA run as
// pre-existing samples for matching tasks.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/annotations.hpp"
#include "common/sync.hpp"
#include "core/space.hpp"

namespace gptune::core {

using TaskVector = std::vector<double>;

struct HistoryRecord {
  TaskVector task;
  Config config;
  std::vector<double> objectives;
};

/// Mutating and querying member functions are mutex-guarded, so concurrent
/// objective workers (core/eval_engine) can record evaluations safely.
/// records() hands out a direct reference and is the one exception: callers
/// must not hold it across concurrent add()s.
class HistoryDb {
 public:
  HistoryDb() = default;
  HistoryDb(const HistoryDb& other) : records_(other.snapshot()) {}
  HistoryDb(HistoryDb&& other) noexcept : records_(other.take()) {}
  HistoryDb& operator=(const HistoryDb& other) {
    if (this != &other) {
      auto copy = other.snapshot();
      common::MutexLock lock(mutex_);
      records_ = std::move(copy);
    }
    return *this;
  }
  HistoryDb& operator=(HistoryDb&& other) noexcept {
    if (this != &other) {
      auto taken = other.take();
      common::MutexLock lock(mutex_);
      records_ = std::move(taken);
    }
    return *this;
  }

  void add(HistoryRecord record);
  /// The documented escape hatch: hands out the store without the mutex
  /// (hence no analysis), for quiescent snapshot reads only. Call sites
  /// outside this file must carry a reasoned lock-discipline suppression.
  const std::vector<HistoryRecord>& records() const
      GPTUNE_NO_THREAD_SAFETY_ANALYSIS {
    return records_;
  }
  std::size_t size() const {
    common::MutexLock lock(mutex_);
    return records_.size();
  }

  /// Records whose task vector matches `task` within `tol` per component.
  std::vector<HistoryRecord> for_task(const TaskVector& task,
                                      double tol = 1e-9) const;

  /// Best (minimal objectives[objective_index]) record for `task`.
  std::optional<HistoryRecord> best_for_task(
      const TaskVector& task, std::size_t objective_index = 0,
      double tol = 1e-9) const;

  /// Appends every record of `other`.
  void merge(const HistoryDb& other);

  /// Writes a versioned whitespace-separated text file. Returns false on
  /// I/O failure.
  bool save(const std::string& path) const;

  /// Loads a file produced by save(); nullopt on parse or I/O failure.
  static std::optional<HistoryDb> load(const std::string& path);

 private:
  std::vector<HistoryRecord> snapshot() const {
    common::MutexLock lock(mutex_);
    return records_;
  }
  std::vector<HistoryRecord> take() noexcept {
    common::MutexLock lock(mutex_);
    return std::move(records_);
  }

  mutable common::Mutex mutex_;
  std::vector<HistoryRecord> records_ GPTUNE_GUARDED_BY(mutex_);
};

}  // namespace gptune::core
