// Hash-set of configurations keyed by exact bit patterns.
//
// Duplicate detection must be bitwise: two configurations are "the same
// evaluation" only if every value compares equal, and the tuner's
// determinism contract (DESIGN.md §3.4) means revisiting a config is pure
// waste, not noise averaging. The hasher folds ±0.0 together (they compare
// equal) and otherwise hashes raw bit patterns, so the set agrees exactly
// with operator== on the underlying doubles.
//
// Shared by the synchronous search phases (per-task seen sets persisted in
// the run State) and the async pipeline (dedup against both finished and
// in-flight candidates).
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/space.hpp"

namespace gptune::core {

/// Hash over the exact bit patterns of a configuration's values (±0.0
/// merged, since they compare equal).
struct ConfigHasher {
  std::size_t operator()(const Config& c) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ c.size();
    for (double v : c) {
      if (v == 0.0) v = 0.0;
      std::uint64_t bits;
      static_assert(sizeof(bits) == sizeof(v));
      __builtin_memcpy(&bits, &v, sizeof(bits));
      h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    }
    return static_cast<std::size_t>(h);
  }
};

/// O(1) membership over evaluated (or dispatched) configurations. Never
/// iterated — iteration order would feed hash order into the trajectory.
using ConfigSet = std::unordered_set<Config, ConfigHasher>;

}  // namespace gptune::core
