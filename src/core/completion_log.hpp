// Completion log — the async pipeline's replay-determinism substrate.
//
// The synchronous MLA loop is bitwise deterministic because every batch is
// collected in item-index order. The async pipeline (DESIGN.md §3.9)
// deliberately gives that up: the manager reacts to objective completions
// in *arrival* order, which depends on host scheduling. Its determinism
// contract is therefore replay-based: every delivered completion is
// recorded here (delivery sequence, dispatch id, task, objective rank,
// virtual-clock interval), and feeding the log back into a second run
// forces the identical delivery order — for a pure objective the replayed
// trajectory is bitwise identical to the recorded one.
//
// Two pieces live here:
//   * CompletionLog — the schema'd event list, serialized to JSON (written
//     by hand like the other telemetry artifacts, read back through
//     common/telemetry/json) so runs can be archived and replayed across
//     processes via GPTUNE_RECORD= / GPTUNE_REPLAY=.
//   * CompletionDelivery — the single sanctioned arrival-order receive
//     outside src/runtime/ (the gptune_lint `arrival-recv` rule pins every
//     other completion-ordering recv to this module). Live mode takes
//     whichever worker reply arrives first; replay mode turns the wildcard
//     receive into a tag-selective one, so the mailbox itself enforces the
//     recorded order.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "runtime/comm.hpp"

namespace gptune::core {

/// One objective-evaluation completion as the async manager processed it.
struct CompletionEvent {
  std::size_t seq = 0;     ///< 0-based delivery order
  std::size_t item = 0;    ///< engine dispatch id (the message tag)
  std::size_t task = 0;    ///< task index the item belonged to
  std::size_t worker = 0;  ///< objective rank that ran it
  /// Virtual-clock interval the item occupied on that rank. Informational
  /// (occupancy/Gantt reconstruction); replay matches on `item` only, so
  /// wall-derived jitter in the timestamps never breaks a replay.
  double vt_start = 0.0;
  double vt_finish = 0.0;
};

/// Ordered record of every completion one async run delivered.
class CompletionLog {
 public:
  void append(const CompletionEvent& event) { events_.push_back(event); }
  const std::vector<CompletionEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Schema'd JSON rendering: {"version":1,"events":[{...},...]}.
  std::string to_json() const;
  /// Parses to_json() output; returns nullopt (and sets `error` when
  /// non-null) on malformed input or an unknown schema version.
  static std::optional<CompletionLog> from_json(const std::string& text,
                                                std::string* error = nullptr);

  /// File convenience used by the GPTUNE_RECORD / GPTUNE_REPLAY hooks.
  bool save(const std::string& path) const;
  static std::optional<CompletionLog> load(const std::string& path,
                                           std::string* error = nullptr);

 private:
  std::vector<CompletionEvent> events_;
};

/// Delivery policy for completion messages on an inter-communicator: live
/// (arrival order, the order that gets recorded) or replay (the logged
/// order, enforced with tag-selective receives).
class CompletionDelivery {
 public:
  /// Live mode: next() returns whichever reply arrives first.
  CompletionDelivery() = default;
  /// Replay mode: next() returns the replies in `log`'s order. The log is
  /// not owned and must outlive the delivery.
  explicit CompletionDelivery(const CompletionLog* log) : log_(log) {}

  bool replaying() const { return log_ != nullptr; }

  /// Replaying: the dispatch id the next completion must carry; nullopt in
  /// live mode or once the log is exhausted.
  std::optional<std::size_t> forced_id() const;

  /// Receives the next completion message from `comm` under this policy.
  /// Replaying past the end of the log throws std::runtime_error — a log
  /// recorded under different options cannot silently half-replay.
  rt::Message next(rt::InterComm& comm);

  /// Consumes one log entry; the caller invokes this once per delivered
  /// completion (including completions satisfied without a message, e.g.
  /// the engine's inline mode).
  void advance();

 private:
  const CompletionLog* log_ = nullptr;
  std::size_t cursor_ = 0;
};

}  // namespace gptune::core
