// Parameter spaces (paper §2): the Task Parameter Input Space IS, the Tuning
// Parameter Space PS, and the constraints between parameters.
//
// Each parameter is real, integer, or categorical (the paper's three types,
// e.g. SuperLU_DIST's COLPERM). Concrete configurations are stored as
// vectors of doubles (integers rounded, categoricals as indices); the GP
// operates on a normalized [0,1]^beta encoding produced here. Constraints
// (e.g. p_r <= p for acceptable process grids) are arbitrary predicates on
// concrete values, checked at sampling/search time.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::core {

/// A concrete parameter assignment: one double per parameter
/// (integers rounded, categoricals by index).
using Config = std::vector<double>;

enum class ParamType { kReal, kInteger, kCategorical };

struct Parameter {
  std::string name;
  ParamType type = ParamType::kReal;
  double lo = 0.0;                       ///< real/integer lower bound
  double hi = 1.0;                       ///< real/integer upper bound
  bool log_scale = false;                ///< normalize in log space
  std::vector<std::string> categories;   ///< categorical labels

  std::size_t num_categories() const { return categories.size(); }
};

/// Predicate over concrete configurations.
struct Constraint {
  std::string name;
  std::function<bool(const Config&)> predicate;
};

/// An ordered set of parameters plus constraints; used for both task
/// parameters (IS) and tuning parameters (PS).
class Space {
 public:
  Space& add_real(std::string name, double lo, double hi,
                  bool log_scale = false);
  Space& add_integer(std::string name, long lo, long hi,
                     bool log_scale = false);
  Space& add_categorical(std::string name, std::vector<std::string> values);
  Space& add_constraint(std::string name,
                        std::function<bool(const Config&)> predicate);

  std::size_t dim() const { return params_.size(); }
  const Parameter& parameter(std::size_t i) const { return params_[i]; }
  const std::vector<Constraint>& constraints() const { return constraints_; }

  /// Index of the parameter with `name`; dim() if absent.
  std::size_t index_of(const std::string& name) const;

  /// Concrete -> unit box.
  opt::Point normalize(const Config& concrete) const;

  /// Unit box -> concrete (rounds integers, snaps categoricals).
  Config denormalize(const opt::Point& unit) const;

  /// All constraints satisfied?
  bool feasible(const Config& concrete) const;

  /// Uniform random *feasible* concrete configuration; at most
  /// `max_attempts` rejections before returning the last draw regardless.
  Config sample_feasible(common::Rng& rng,
                         std::size_t max_attempts = 1000) const;

  /// Human-readable rendering "name=value, ..." for logs and tables.
  std::string format(const Config& concrete) const;

 private:
  double normalize_one(std::size_t i, double v) const;
  double denormalize_one(std::size_t i, double u) const;

  std::vector<Parameter> params_;
  std::vector<Constraint> constraints_;
};

}  // namespace gptune::core
