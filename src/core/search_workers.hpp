// Persistent spawned search-worker group (paper Fig. 1 search workers).
//
// The model pool and the evaluation engine's objective group already live
// for the whole MLA run; this class closes the remaining Fig. 1 gap by
// keeping the search ranks alive across iterations too. The master spawns
// `search_workers` ranks once per run; each iteration it dispatches one
// job per active task (static assignment: job a -> rank a mod W) and
// collects the candidate batches in job-index order, so the tuning
// trajectory is bitwise identical at any worker count. Workers idle in
// recv between iterations and exit on a terminate handshake whose
// teardown rtcheck audits for leaked messages and unjoined ranks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "core/space.hpp"

namespace gptune::core {

/// Deterministic per-(task, iteration) RNG stream: chained SplitMix64
/// finalizers, one per coordinate (the trainer's lcm_restart_seed idiom).
/// Each finalizer is a bijection of the 64-bit state, so unlike the old
/// xor-of-multiplies scheme, distinct (task, iteration) pairs cannot
/// collapse onto one stream by cancellation.
std::uint64_t search_stream_seed(std::uint64_t seed, std::size_t task,
                                 std::size_t iteration);

/// One task's search outcome: the proposed configurations plus the
/// measured wall time of the search (list-scheduled into the virtual
/// search makespan by the caller).
struct SearchResult {
  std::vector<Config> configs;
  double seconds = 0.0;
};

class SearchWorkerGroup {
 public:
  /// Runs the acquisition search for one task. Receives the task index
  /// and a private RNG stream derived from (seed, task, iteration); must
  /// only read shared tuner state, since it may run on a spawned rank
  /// while other tasks' searches are in flight.
  using SearchFn = std::function<std::vector<Config>(std::size_t task_index,
                                                     common::Rng& rng)>;

  /// Spawns `workers` ranks once. With workers <= 1 nothing is spawned
  /// and dispatch() runs every job inline on the caller — one code path
  /// for both modes, same RNG streams, same results.
  SearchWorkerGroup(std::size_t workers, std::uint64_t seed);
  /// Terminate handshake: one stop tag per rank, then join.
  ~SearchWorkerGroup();

  SearchWorkerGroup(const SearchWorkerGroup&) = delete;
  SearchWorkerGroup& operator=(const SearchWorkerGroup&) = delete;

  std::size_t workers() const { return workers_; }
  /// True when worker ranks were actually spawned (workers > 1).
  bool spawned() const { return group_ != nullptr; }

  /// Runs `fn` once per entry of `tasks` (the active-task slice for this
  /// iteration) and returns the results in the same index order
  /// regardless of worker count or completion order. Blocks until every
  /// reply has arrived; `fn` is not retained past the call.
  std::vector<SearchResult> dispatch(const std::vector<std::size_t>& tasks,
                                     std::size_t iteration,
                                     const SearchFn& fn);

 private:
  struct Group;

  std::uint64_t seed_;
  std::size_t workers_;
  /// The dispatch in flight's job function. Published before the job
  /// messages are sent — the mailbox mutex orders that write before any
  /// worker's read — and cleared once every reply has been collected.
  const SearchFn* current_fn_ = nullptr;
  std::unique_ptr<Group> group_;
};

}  // namespace gptune::core
