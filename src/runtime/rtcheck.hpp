// rtcheck — runtime verification for the message-passing substrate.
//
// Real MPI codes lean on correctness tools (MUST, Marmot) to catch *protocol*
// bugs that sanitizers cannot see: deadlocked receives, mismatched
// collectives, messages still queued at teardown, sends to ranks that have
// already exited. This module is that tool for `src/runtime/`.
//
// The checker is compile-time gated on GPTUNE_RTCHECK (a CMake option). When
// the macro is off, every hook in comm.cpp / thread_pool.cpp is preprocessed
// away and this header only contributes the (trivially cheap) finding types —
// an unchecked build pays zero overhead, verified by bench_trainer_scaling.
//
// When enabled, the instrumented runtime maintains a global registry of
// blocked operations (a wait-for graph over "actors": intra-communicator
// ranks and inter-communicator endpoints). Detection is *event driven* — it
// runs when an operation blocks, when a rank exits, when a deadline expires,
// and when a group or channel is torn down — so a true deadlock is reported
// (and the deadlocked waiters unwound with RtCheckError) instead of hanging,
// deterministically and without timers. See DESIGN.md §3.6 for the liveness
// fixpoint algorithm and its soundness argument.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

namespace gptune::rt::rtcheck {

/// Compile-time switch; mirrors the GPTUNE_RTCHECK macro.
#if defined(GPTUNE_RTCHECK)
inline constexpr bool kEnabled = true;
#else
inline constexpr bool kEnabled = false;
#endif

/// True when the runtime was built with -DGPTUNE_RTCHECK=ON.
inline bool enabled() { return kEnabled; }

/// One class of protocol misuse the checker reports.
enum class FindingKind {
  kDeadlock,            ///< cycle of blocked ranks; every waiter unwound
  kTimeout,             ///< a deadline expired; message holds a wait snapshot
  kCollectiveMismatch,  ///< ranks of one group in different collectives
  kMessageLeak,         ///< messages still queued at group/channel teardown
  kInvalidSend,         ///< send to an out-of-range or finalized rank
  kUnjoinedSpawn,       ///< spawned group never joined (reported by audit())
  kPoolMisuse,          ///< ThreadPool destroyed with a batch still waiting
  kAsyncProtocol,       ///< async stream misuse (replay of unknown id,
                        ///< batch evaluate with items in flight)
  kAsyncOutstanding,    ///< async owner destroyed with undelivered items
};

/// Human-readable rule name ("deadlock", "message-leak", ...).
const char* kind_name(FindingKind kind);

/// One recorded diagnostic. `message` carries the per-rank
/// "who waits on whom, which tag" detail for deadlocks/timeouts.
struct Finding {
  FindingKind kind = FindingKind::kDeadlock;
  std::string message;
};

/// Thrown out of a blocked runtime call when the checker has proven the wait
/// can never be satisfied. World::run / Comm::spawn catch it at the thread
/// boundary so the whole group unwinds and reports instead of hanging.
class RtCheckError : public std::runtime_error {
 public:
  explicit RtCheckError(const std::string& what) : std::runtime_error(what) {}
};

/// Copy of every finding recorded since the last reset(). Thread-safe.
/// Always available; empty in an unchecked build.
std::vector<Finding> findings();

/// Number of recorded findings of one kind. Thread-safe.
std::size_t count(FindingKind kind);

/// Clears findings and all checker bookkeeping (test isolation). Must not be
/// called while instrumented groups are live.
void reset();

/// Scans for spawned groups whose handle was never joined; records one
/// kUnjoinedSpawn finding per offender and returns how many were found.
std::size_t audit_unjoined();

/// Number of spawned groups currently live (created but not yet joined).
/// Persistent-group audit: lets tests assert a long-lived worker group is
/// spawned once per run and fully torn down at run end. Records nothing.
std::size_t live_spawn_count();

/// Async-stream audit: total submitted-but-undelivered candidates across
/// all live async owners (EvalEngine streams). A quiesced pipeline must
/// read zero. Records nothing. Always available; 0 in an unchecked build.
std::size_t async_outstanding();

}  // namespace gptune::rt::rtcheck

// ---------------------------------------------------------------------------
// Internal instrumentation hooks. Only comm.cpp / thread_pool.cpp call these,
// and only under `#if defined(GPTUNE_RTCHECK)`; they are defined (in
// rtcheck.cpp) only for checked builds.
#if defined(GPTUNE_RTCHECK)

#include <condition_variable>
#include <memory>
#include <mutex>

namespace gptune::rt {

struct Message;

namespace detail {
class Mailbox;
struct GroupState;
struct InterChannel;
}  // namespace detail

namespace rtcheck::hooks {

/// The registry's record of one blocked operation. The waiting thread owns a
/// shared_ptr; the analyzer pokes `poisoned`/`reason` under the wait mutex
/// and notifies the wait cv, so the waiter observes both under its own lock.
struct WaitToken {
  std::mutex* wait_mutex = nullptr;
  std::condition_variable* wait_cv = nullptr;
  bool poisoned = false;   ///< guarded by *wait_mutex
  /// Set by the waiter (under *wait_mutex) the moment its wait is satisfied,
  /// before it deregisters — so the analyzer never mistakes a waking thread
  /// for a stuck one.
  bool done = false;
  std::string reason;      ///< guarded by *wait_mutex
  // Registry-internal fields (guarded by the registry mutex).
  int kind = 0;            ///< 0 = recv, 1 = barrier, 2 = pool wait
  const void* waitable = nullptr;  ///< Mailbox* / GroupState* / pool id
  int source = 0;
  int tag = 0;
  std::size_t generation = 0;  ///< barrier: the generation being waited out
  bool analyzed = false;   ///< block-time analysis already ran once
};

using WaitTokenPtr = std::shared_ptr<WaitToken>;

/// Envelope summary of a queued-but-never-received message (leak reports).
struct MessageStub {
  int source = 0;
  int tag = 0;
  std::size_t size = 0;
};

// --- lifecycle registration ---
void on_group_created(const detail::GroupState* group);
/// Leak check + deregistration; `leftover` is indexed by rank.
void on_group_teardown(const detail::GroupState* group,
                       const std::vector<std::vector<MessageStub>>& leftover);
void on_rank_started(const detail::GroupState* group, std::size_t rank);
void on_rank_exited(const detail::GroupState* group, std::size_t rank);
void on_spawn_created(const detail::InterChannel* channel,
                      const detail::GroupState* parent_group,
                      std::size_t parent_rank,
                      const detail::GroupState* child_group);
void on_spawn_joined(const detail::InterChannel* channel);
/// Leak check (both directions) + deregistration at channel destruction.
void on_channel_teardown(
    const detail::InterChannel* channel,
    const std::vector<std::vector<MessageStub>>& to_local,
    const std::vector<std::vector<MessageStub>>& to_remote);

// --- point to point ---
/// Registers intent to block in Mailbox::take. Call *before* taking the
/// mailbox lock; never call registry functions while holding it.
WaitTokenPtr begin_recv(const detail::Mailbox* box, std::mutex* wait_mutex,
                        std::condition_variable* wait_cv, int source, int tag);
/// Runs the deadlock analysis for a waiter that found its queue empty.
/// Call without holding the mailbox lock; re-check token->poisoned after.
void analyze_blocked(const WaitTokenPtr& token);
/// Deadline expired: records a kDeadlock (if proven) or kTimeout finding
/// with a full snapshot of the wait-for graph.
void on_deadline_expired(const WaitTokenPtr& token);
/// Removes the record. Call without holding the wait mutex.
void end_wait(const WaitTokenPtr& token);

/// Send-target validation; records kInvalidSend and throws RtCheckError on
/// out-of-range destinations or finalized channels.
void check_send_intra(const detail::GroupState* group, std::size_t source,
                      std::size_t dest, int tag);
void check_send_inter(const detail::InterChannel* channel, bool parent_side,
                      std::size_t remote_rank, std::size_t remote_size,
                      int tag);

// --- collectives ---
/// Epoch-sequenced collective signature check; records kCollectiveMismatch,
/// poisons the group's blocked waiters, and throws on divergence.
/// `payload` < 0 means "size not semantically constrained" (barrier, gather).
void enter_collective(const detail::GroupState* group, std::size_t rank,
                      const char* kind, std::size_t root, long payload);
/// Registers a blocked barrier waiter (same contract as begin_recv).
WaitTokenPtr begin_barrier(const detail::GroupState* group, std::size_t rank,
                           std::mutex* wait_mutex,
                           std::condition_variable* wait_cv);

// --- thread pool ---
void on_pool_created(const void* pool, std::size_t threads);
void on_pool_destroyed(const void* pool);
WaitTokenPtr begin_pool_wait(const void* pool, std::mutex* wait_mutex,
                             std::condition_variable* wait_cv,
                             const char* what);

// --- async stream (core/eval_engine submit/next_completion) ---
/// Tracks one dispatched candidate per (owner, id); `owner` is the engine.
void on_async_submit(const void* owner, std::size_t id);
/// Marks (owner, id) delivered; records kAsyncProtocol if it was never
/// submitted or was already delivered (double delivery).
void on_async_delivered(const void* owner, std::size_t id);
/// Caller-detected stream misuse (replay forcing an unknown id, batch
/// evaluate with items in flight): records a kAsyncProtocol finding.
void on_async_misuse(const void* owner, const std::string& what);
/// Teardown audit: records kAsyncOutstanding when the owner still had
/// undelivered items, then forgets the owner.
void on_async_owner_destroyed(const void* owner);

}  // namespace rtcheck::hooks
}  // namespace gptune::rt

#endif  // GPTUNE_RTCHECK
