#include "runtime/thread_pool.hpp"

#include <cassert>

#include "common/telemetry/telemetry.hpp"
#include "runtime/rtcheck.hpp"

namespace gptune::rt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] {
      telemetry::set_identity("pool", static_cast<int>(i));
      worker_loop();
    });
  }
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::on_pool_created(this, num_threads);
#endif
}

ThreadPool::~ThreadPool() {
#if defined(GPTUNE_RTCHECK)
  // Flags a destructor racing an in-flight run_batch/wait_idle (kPoolMisuse).
  rtcheck::hooks::on_pool_destroyed(this);
#endif
  {
    common::MutexLock lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    common::MutexLock lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
#if defined(GPTUNE_RTCHECK)
  // Registered so a deadlock/timeout snapshot shows threads parked here.
  rtcheck::hooks::WaitTokenPtr token =
      rtcheck::hooks::begin_pool_wait(this, &mutex_.native(),
                                      &cv_idle_.native(), "wait_idle");
#endif
  {
    common::MutexLock lock(mutex_);
    cv_idle_.wait(lock,
                  [this]() GPTUNE_REQUIRES(mutex_) { return in_flight_ == 0; });
  }
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::end_wait(token);
#endif
}

namespace {

/// Completion state shared by one run_batch call and its wrapped tasks.
struct BatchState {
  common::Mutex mutex;
  common::CondVar cv;
  std::size_t remaining GPTUNE_GUARDED_BY(mutex) = 0;
};

}  // namespace

void ThreadPool::run_batch(std::vector<std::function<void()>>&& tasks) {
  if (tasks.empty()) return;
  auto state = std::make_shared<BatchState>();
  {
    common::MutexLock lock(state->mutex);
    state->remaining = tasks.size();
  }
  for (auto& t : tasks) {
    submit([state, task = std::move(t)] {
      task();
      common::MutexLock lock(state->mutex);
      if (--state->remaining == 0) state->cv.notify_all();
    });
  }
  // Help drain the queue while this batch runs: the caller acts as an
  // extra worker, and a run_batch issued from inside a pool task cannot
  // deadlock waiting for workers that are all similarly blocked.
  for (;;) {
    {
      common::MutexLock lock(state->mutex);
      if (state->remaining == 0) return;
    }
    if (!try_run_one()) {
#if defined(GPTUNE_RTCHECK)
      // Registered so a deadlock/timeout snapshot shows the parked batch.
      rtcheck::hooks::WaitTokenPtr token = rtcheck::hooks::begin_pool_wait(
          this, &state->mutex.native(), &state->cv.native(), "run_batch");
#endif
      {
        common::MutexLock lock(state->mutex);
        state->cv.wait(lock, [&]() GPTUNE_REQUIRES(state->mutex) {
          return state->remaining == 0;
        });
      }
#if defined(GPTUNE_RTCHECK)
      rtcheck::hooks::end_wait(token);
#endif
      return;
    }
  }
}

linalg::TaskBatchRunner ThreadPool::batch_runner() {
  return [this](std::vector<std::function<void()>>&& tasks) {
    run_batch(std::move(tasks));
  };
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  {
    common::MutexLock lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  run_task(task);
  finish_task();
  return true;
}

void ThreadPool::run_task(const std::function<void()>& task) {
  static auto& tasks_run = telemetry::counter("runtime.pool.tasks");
  tasks_run.add();
  telemetry::Span span("pool", "task");
  task();
}

void ThreadPool::finish_task() {
  common::MutexLock lock(mutex_);
  --in_flight_;
  if (in_flight_ == 0) cv_idle_.notify_all();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      common::MutexLock lock(mutex_);
      cv_work_.wait(lock, [this]() GPTUNE_REQUIRES(mutex_) {
        return stop_ || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    run_task(task);
    finish_task();
  }
}

}  // namespace gptune::rt
