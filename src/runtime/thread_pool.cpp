#include "runtime/thread_pool.hpp"

#include <cassert>

namespace gptune::rt {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) num_threads = 1;
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  cv_work_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::run_batch(std::vector<std::function<void()>>&& tasks) {
  for (auto& t : tasks) submit(std::move(t));
  wait_idle();
}

linalg::TaskBatchRunner ThreadPool::batch_runner() {
  return [this](std::vector<std::function<void()>>&& tasks) {
    run_batch(std::move(tasks));
  };
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_work_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace gptune::rt
