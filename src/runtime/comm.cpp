#include "runtime/comm.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

#include "common/telemetry/flight_recorder.hpp"
#include "common/telemetry/telemetry.hpp"
#include "runtime/rtcheck.hpp"

namespace gptune::rt {

namespace detail {

void Mailbox::post(Message msg) {
  std::size_t depth = 0;
  {
    common::MutexLock lock(mutex_);
    queue_.push_back(std::move(msg));
    depth = queue_.size();
  }
  cv_.notify_all();
  static auto& depth_hist = telemetry::histogram("runtime.mailbox.depth");
  depth_hist.record(static_cast<double>(depth));
}

namespace {
bool matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}
}  // namespace

// The rtcheck protocol inside take_impl: register the wait *before* taking
// the mailbox lock, never call the registry while holding it, and deregister
// after releasing it — so the registry mutex and the mailbox mutex only ever
// nest registry -> mailbox (in the analyzer) and lock-order cycles are
// impossible. The analyzer may poison the token (under the mailbox mutex)
// and notify the cv; the waiter observes that under its own lock and unwinds
// with RtCheckError instead of blocking forever.
std::optional<Message> Mailbox::take_impl(
    int source, int tag,
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::WaitTokenPtr token = rtcheck::hooks::begin_recv(
      this, &mutex_.native(), &cv_.native(), source, tag);
  bool analyzed = false;
#endif
  common::MutexLock lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        queue_.erase(it);
#if defined(GPTUNE_RTCHECK)
        token->done = true;  // satisfied: analyzer must not count this wait
#endif
        lock.unlock();
#if defined(GPTUNE_RTCHECK)
        rtcheck::hooks::end_wait(token);
#endif
        return m;
      }
    }
#if defined(GPTUNE_RTCHECK)
    if (token->poisoned) {
      const std::string why = token->reason;
      lock.unlock();
      rtcheck::hooks::end_wait(token);
      throw rtcheck::RtCheckError(why);
    }
    if (!analyzed) {
      // First time the queue came up empty: run the deadlock analysis once
      // (event-driven detection), then rescan — a message may have landed
      // while the lock was released.
      analyzed = true;
      lock.unlock();
      rtcheck::hooks::analyze_blocked(token);
      lock.lock();
      continue;
    }
#endif
    if (deadline) {
      if (cv_.wait_until(lock, *deadline) == std::cv_status::timeout) {
        // One final scan so a message that raced the timeout still wins.
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (matches(*it, source, tag)) {
            Message m = std::move(*it);
            queue_.erase(it);
#if defined(GPTUNE_RTCHECK)
            token->done = true;
#endif
            lock.unlock();
#if defined(GPTUNE_RTCHECK)
            rtcheck::hooks::end_wait(token);
#endif
            return m;
          }
        }
        lock.unlock();
#if defined(GPTUNE_RTCHECK)
        rtcheck::hooks::on_deadline_expired(token);
        rtcheck::hooks::end_wait(token);
#endif
        return std::nullopt;
      }
    } else {
      cv_.wait(lock);
    }
  }
}

Message Mailbox::take(int source, int tag) {
  std::optional<Message> m = take_impl(source, tag, std::nullopt);
  // Without a deadline take_impl only returns on a match (or throws).
  return std::move(*m);
}

std::optional<Message> Mailbox::take(int source, int tag,
                                     std::chrono::nanoseconds timeout) {
  return take_impl(source, tag, std::chrono::steady_clock::now() + timeout);
}

bool Mailbox::try_take(int source, int tag, Message* out) {
  common::MutexLock lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      *out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

bool Mailbox::has_matching(int source, int tag) const {
  common::MutexLock lock(mutex_);
  return std::any_of(queue_.begin(), queue_.end(), [&](const Message& m) {
    return matches(m, source, tag);
  });
}

std::vector<std::tuple<int, int, std::size_t>> Mailbox::leftover() const {
  common::MutexLock lock(mutex_);
  std::vector<std::tuple<int, int, std::size_t>> out;
  out.reserve(queue_.size());
  for (const Message& m : queue_) {
    out.emplace_back(m.source, m.tag, m.data.size());
  }
  return out;
}

GroupState::GroupState(std::size_t n) : mailboxes(n), size(n) {
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::on_group_created(this);
#endif
}

GroupState::~GroupState() {
#if defined(GPTUNE_RTCHECK)
  std::vector<std::vector<rtcheck::hooks::MessageStub>> leaked(size);
  for (std::size_t r = 0; r < size; ++r) {
    for (const auto& [source, tag, n] : mailboxes[r].leftover()) {
      leaked[r].push_back(rtcheck::hooks::MessageStub{source, tag, n});
    }
  }
  rtcheck::hooks::on_group_teardown(this, leaked);
#endif
}

InterChannel::InterChannel(std::size_t local_n, std::size_t remote_n)
    : to_local(local_n), to_remote(remote_n) {}

InterChannel::~InterChannel() {
#if defined(GPTUNE_RTCHECK)
  auto summarize = [](const std::vector<Mailbox>& boxes) {
    std::vector<std::vector<rtcheck::hooks::MessageStub>> leaked(boxes.size());
    for (std::size_t i = 0; i < boxes.size(); ++i) {
      for (const auto& [source, tag, n] : boxes[i].leftover()) {
        leaked[i].push_back(rtcheck::hooks::MessageStub{source, tag, n});
      }
    }
    return leaked;
  };
  rtcheck::hooks::on_channel_teardown(this, summarize(to_local),
                                      summarize(to_remote));
#endif
}

}  // namespace detail

// --- InterComm ---

void InterComm::send(std::size_t remote_rank, int tag,
                     std::vector<double> data) {
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::check_send_inter(channel_.get(), is_parent_side_,
                                   remote_rank, remote_size_, tag);
#endif
  assert(remote_rank < remote_size_);
  Message m;
  m.source = static_cast<int>(local_rank_);
  m.tag = tag;
  m.data = std::move(data);
  auto& box = is_parent_side_ ? channel_->to_remote[remote_rank]
                              : channel_->to_local[remote_rank];
  box.post(std::move(m));
}

Message InterComm::recv(int source, int tag) {
  auto& box = is_parent_side_ ? channel_->to_local[local_rank_]
                              : channel_->to_remote[local_rank_];
  return box.take(source, tag);
}

std::optional<Message> InterComm::recv_for(int source, int tag,
                                           std::chrono::nanoseconds timeout) {
  auto& box = is_parent_side_ ? channel_->to_local[local_rank_]
                              : channel_->to_remote[local_rank_];
  return box.take(source, tag, timeout);
}

bool InterComm::try_recv(int source, int tag, Message* out) {
  auto& box = is_parent_side_ ? channel_->to_local[local_rank_]
                              : channel_->to_remote[local_rank_];
  return box.try_take(source, tag, out);
}

void SpawnHandle::join() {
  if (threads_.empty()) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
#if defined(GPTUNE_RTCHECK)
  if (comm_.channel_) rtcheck::hooks::on_spawn_joined(comm_.channel_.get());
#endif
}

// --- Comm ---

void Comm::send(std::size_t dest, int tag, std::vector<double> data) {
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::check_send_intra(group_.get(), rank_, dest, tag);
#endif
  static auto& sends = telemetry::counter("runtime.sends");
  sends.add();
  telemetry::instant("comm", "send");
  {
    // Endpoint detail for post-mortem timelines: a deadlock report that
    // shows "send dst=2 tag=7" beats a bare "send".
    char detail[64];
    std::snprintf(detail, sizeof(detail), "send dst=%d tag=%d",
                  static_cast<int>(dest), tag);
    telemetry::flight_recorder::note_text(
        telemetry::flight_recorder::EventKind::kInstant, "comm", detail);
  }
  assert(dest < size());
  Message m;
  m.source = static_cast<int>(rank_);
  m.tag = tag;
  m.data = std::move(data);
  group_->mailboxes[dest].post(std::move(m));
}

Message Comm::recv(int source, int tag) {
  telemetry::Span span("comm", "recv");
  {
    char detail[64];
    std::snprintf(detail, sizeof(detail), "recv src=%d tag=%d", source, tag);
    telemetry::flight_recorder::note_text(
        telemetry::flight_recorder::EventKind::kInstant, "comm", detail);
  }
  return group_->mailboxes[rank_].take(source, tag);
}

std::optional<Message> Comm::recv_for(int source, int tag,
                                      std::chrono::nanoseconds timeout) {
  return group_->mailboxes[rank_].take(source, tag, timeout);
}

bool Comm::try_recv(int source, int tag, Message* out) {
  return group_->mailboxes[rank_].try_take(source, tag, out);
}

void Comm::barrier() {
  telemetry::Span span("comm", "barrier");
  auto& g = *group_;
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::enter_collective(group_.get(), rank_, "barrier", 0, -1);
  rtcheck::hooks::WaitTokenPtr token = rtcheck::hooks::begin_barrier(
      group_.get(), rank_, &g.barrier_mutex.native(), &g.barrier_cv.native());
  bool analyzed = false;
#endif
  common::MutexLock lock(g.barrier_mutex);
  const std::size_t my_generation = g.barrier_generation;
#if defined(GPTUNE_RTCHECK)
  // Recorded under barrier_mutex (== the token's wait mutex) so the analyzer
  // can tell a waiter whose generation was already released — woken but not
  // yet deregistered — from one that is genuinely stuck.
  token->generation = my_generation;
#endif
  if (++g.barrier_count == g.size) {
    g.barrier_count = 0;
    ++g.barrier_generation;
    g.barrier_cv.notify_all();
#if defined(GPTUNE_RTCHECK)
    token->done = true;
    lock.unlock();
    rtcheck::hooks::end_wait(token);
#endif
  } else {
#if defined(GPTUNE_RTCHECK)
    for (;;) {
      if (g.barrier_generation != my_generation) {
        token->done = true;
        break;
      }
      if (token->poisoned) {
        const std::string why = token->reason;
        lock.unlock();
        rtcheck::hooks::end_wait(token);
        throw rtcheck::RtCheckError(why);
      }
      if (!analyzed) {
        analyzed = true;
        lock.unlock();
        rtcheck::hooks::analyze_blocked(token);
        lock.lock();
        continue;
      }
      g.barrier_cv.wait(lock);
    }
    lock.unlock();
    rtcheck::hooks::end_wait(token);
#else
    g.barrier_cv.wait(
        lock, [&g, my_generation]() GPTUNE_REQUIRES(g.barrier_mutex) {
          return g.barrier_generation != my_generation;
        });
#endif
  }
}

namespace {
constexpr int kCollectiveTag = -1000;  // reserved; below user tag space
}

void Comm::bcast(std::vector<double>& data, std::size_t root) {
  telemetry::Span span("comm", "bcast");
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::enter_collective(group_.get(), rank_, "bcast", root, -1);
#endif
  if (size() == 1) return;
  if (rank_ == root) {
    for (std::size_t r = 0; r < size(); ++r) {
      if (r != root) send(r, kCollectiveTag, data);
    }
  } else {
    data = recv(static_cast<int>(root), kCollectiveTag).data;
  }
}

std::vector<double> Comm::reduce_sum(const std::vector<double>& contribution,
                                     std::size_t root) {
  telemetry::Span span("comm", "reduce_sum");
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::enter_collective(group_.get(), rank_, "reduce", root,
                                   static_cast<long>(contribution.size()));
#endif
  if (rank_ != root) {
    send(root, kCollectiveTag, contribution);
    return {};
  }
  // Receive from each source explicitly: with kAnySource a fast rank's
  // contribution to the *next* reduction could be folded into this one.
  std::vector<double> acc = contribution;
  for (std::size_t r = 0; r < size(); ++r) {
    if (r == root) continue;
    Message m = recv(static_cast<int>(r), kCollectiveTag);
    assert(m.data.size() == acc.size());
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += m.data[i];
  }
  return acc;
}

std::vector<double> Comm::allreduce_sum(
    const std::vector<double>& contribution) {
  std::vector<double> result = reduce_sum(contribution, 0);
  if (rank_ != 0) result.resize(contribution.size());
  bcast(result, 0);
  return result;
}

std::vector<std::vector<double>> Comm::gather(const std::vector<double>& data,
                                              std::size_t root) {
  telemetry::Span span("comm", "gather");
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::enter_collective(group_.get(), rank_, "gather", root, -1);
#endif
  if (rank_ != root) {
    send(root, kCollectiveTag, data);
    return {};
  }
  std::vector<std::vector<double>> all(size());
  all[root] = data;
  for (std::size_t r = 0; r < size(); ++r) {
    if (r == root) continue;
    Message m = recv(static_cast<int>(r), kCollectiveTag);
    all[r] = std::move(m.data);
  }
  return all;
}

SpawnHandle Comm::spawn(std::size_t n,
                        std::function<void(Comm&, InterComm&)> fn) const {
  assert(n >= 1);
  static auto& spawns = telemetry::counter("runtime.spawns");
  spawns.add();
  telemetry::instant("comm", "spawn");
  auto channel = std::make_shared<detail::InterChannel>(1, n);
  auto child_group = std::make_shared<detail::GroupState>(n);
#if defined(GPTUNE_RTCHECK)
  rtcheck::hooks::on_spawn_created(channel.get(), group_.get(), rank_,
                                   child_group.get());
#endif

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    threads.emplace_back([channel, child_group, r, fn] {
      telemetry::set_identity("worker", static_cast<int>(r));
      telemetry::Span lifetime("comm", "spawned_rank");
      Comm child_comm(child_group, r);
      InterComm parent(channel, /*is_parent_side=*/false, r,
                       /*remote_size=*/1);
#if defined(GPTUNE_RTCHECK)
      rtcheck::hooks::on_rank_started(child_group.get(), r);
      try {
        fn(child_comm, parent);
      } catch (const rtcheck::RtCheckError&) {
        // Already recorded as a finding; unwind the rank instead of hanging
        // the group (report-instead-of-hang is the whole point).
      }
      rtcheck::hooks::on_rank_exited(child_group.get(), r);
#else
      fn(child_comm, parent);
#endif
    });
  }
  InterComm spawned(channel, /*is_parent_side=*/true, /*local_rank=*/0, n);
  return SpawnHandle(std::move(spawned), std::move(threads));
}

// --- World ---

Comm World::self() {
  return Comm(std::make_shared<detail::GroupState>(1), 0);
}

void World::run(std::size_t n, const std::function<void(Comm&)>& fn) {
  assert(n >= 1);
  auto group = std::make_shared<detail::GroupState>(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    threads.emplace_back([group, r, &fn] {
      telemetry::set_identity("rank", static_cast<int>(r));
      telemetry::Span lifetime("comm", "world_rank");
      Comm comm(group, r);
#if defined(GPTUNE_RTCHECK)
      rtcheck::hooks::on_rank_started(group.get(), r);
      try {
        fn(comm);
      } catch (const rtcheck::RtCheckError&) {
        // Already recorded; exit the rank so the world can join and report.
      }
      rtcheck::hooks::on_rank_exited(group.get(), r);
#else
      fn(comm);
#endif
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace gptune::rt
