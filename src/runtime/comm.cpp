#include "runtime/comm.hpp"

#include <algorithm>
#include <cassert>

namespace gptune::rt {

namespace detail {

void Mailbox::post(Message msg) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(msg));
  }
  cv_.notify_all();
}

namespace {
bool matches(const Message& m, int source, int tag) {
  return (source == kAnySource || m.source == source) &&
         (tag == kAnyTag || m.tag == tag);
}
}  // namespace

Message Mailbox::take(int source, int tag) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (matches(*it, source, tag)) {
        Message m = std::move(*it);
        queue_.erase(it);
        return m;
      }
    }
    cv_.wait(lock);
  }
}

bool Mailbox::try_take(int source, int tag, Message* out) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (matches(*it, source, tag)) {
      *out = std::move(*it);
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

GroupState::GroupState(std::size_t n) : mailboxes(n), size(n) {}

InterChannel::InterChannel(std::size_t local_n, std::size_t remote_n)
    : to_local(local_n), to_remote(remote_n) {}

}  // namespace detail

// --- InterComm ---

void InterComm::send(std::size_t remote_rank, int tag,
                     std::vector<double> data) {
  assert(remote_rank < remote_size_);
  Message m;
  m.source = static_cast<int>(local_rank_);
  m.tag = tag;
  m.data = std::move(data);
  auto& box = is_parent_side_ ? channel_->to_remote[remote_rank]
                              : channel_->to_local[remote_rank];
  box.post(std::move(m));
}

Message InterComm::recv(int source, int tag) {
  auto& box = is_parent_side_ ? channel_->to_local[local_rank_]
                              : channel_->to_remote[local_rank_];
  return box.take(source, tag);
}

bool InterComm::try_recv(int source, int tag, Message* out) {
  auto& box = is_parent_side_ ? channel_->to_local[local_rank_]
                              : channel_->to_remote[local_rank_];
  return box.try_take(source, tag, out);
}

void SpawnHandle::join() {
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

// --- Comm ---

void Comm::send(std::size_t dest, int tag, std::vector<double> data) {
  assert(dest < size());
  Message m;
  m.source = static_cast<int>(rank_);
  m.tag = tag;
  m.data = std::move(data);
  group_->mailboxes[dest].post(std::move(m));
}

Message Comm::recv(int source, int tag) {
  return group_->mailboxes[rank_].take(source, tag);
}

bool Comm::try_recv(int source, int tag, Message* out) {
  return group_->mailboxes[rank_].try_take(source, tag, out);
}

void Comm::barrier() {
  auto& g = *group_;
  std::unique_lock<std::mutex> lock(g.barrier_mutex);
  const std::size_t my_generation = g.barrier_generation;
  if (++g.barrier_count == g.size) {
    g.barrier_count = 0;
    ++g.barrier_generation;
    g.barrier_cv.notify_all();
  } else {
    g.barrier_cv.wait(lock, [&g, my_generation] {
      return g.barrier_generation != my_generation;
    });
  }
}

namespace {
constexpr int kCollectiveTag = -1000;  // reserved; below user tag space
}

void Comm::bcast(std::vector<double>& data, std::size_t root) {
  if (size() == 1) return;
  if (rank_ == root) {
    for (std::size_t r = 0; r < size(); ++r) {
      if (r != root) send(r, kCollectiveTag, data);
    }
  } else {
    data = recv(static_cast<int>(root), kCollectiveTag).data;
  }
}

std::vector<double> Comm::reduce_sum(const std::vector<double>& contribution,
                                     std::size_t root) {
  if (rank_ != root) {
    send(root, kCollectiveTag, contribution);
    return {};
  }
  // Receive from each source explicitly: with kAnySource a fast rank's
  // contribution to the *next* reduction could be folded into this one.
  std::vector<double> acc = contribution;
  for (std::size_t r = 0; r < size(); ++r) {
    if (r == root) continue;
    Message m = recv(static_cast<int>(r), kCollectiveTag);
    assert(m.data.size() == acc.size());
    for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += m.data[i];
  }
  return acc;
}

std::vector<double> Comm::allreduce_sum(
    const std::vector<double>& contribution) {
  std::vector<double> result = reduce_sum(contribution, 0);
  if (rank_ != 0) result.resize(contribution.size());
  bcast(result, 0);
  return result;
}

std::vector<std::vector<double>> Comm::gather(const std::vector<double>& data,
                                              std::size_t root) {
  if (rank_ != root) {
    send(root, kCollectiveTag, data);
    return {};
  }
  std::vector<std::vector<double>> all(size());
  all[root] = data;
  for (std::size_t r = 0; r < size(); ++r) {
    if (r == root) continue;
    Message m = recv(static_cast<int>(r), kCollectiveTag);
    all[r] = std::move(m.data);
  }
  return all;
}

SpawnHandle Comm::spawn(std::size_t n,
                        std::function<void(Comm&, InterComm&)> fn) const {
  assert(n >= 1);
  auto channel = std::make_shared<detail::InterChannel>(1, n);
  auto child_group = std::make_shared<detail::GroupState>(n);

  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    threads.emplace_back([channel, child_group, r, n, fn] {
      Comm child_comm(child_group, r);
      InterComm parent(channel, /*is_parent_side=*/false, r,
                       /*remote_size=*/1);
      fn(child_comm, parent);
    });
  }
  InterComm spawned(channel, /*is_parent_side=*/true, /*local_rank=*/0, n);
  return SpawnHandle(std::move(spawned), std::move(threads));
}

// --- World ---

Comm World::self() {
  return Comm(std::make_shared<detail::GroupState>(1), 0);
}

void World::run(std::size_t n, const std::function<void(Comm&)>& fn) {
  assert(n >= 1);
  auto group = std::make_shared<detail::GroupState>(n);
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t r = 0; r < n; ++r) {
    threads.emplace_back([group, r, &fn] {
      Comm comm(group, r);
      fn(comm);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace gptune::rt
