// Fixed-size worker pool used to execute independent task batches
// (tile updates in the blocked Cholesky, per-task EI searches, multi-start
// hyperparameter optimizations).
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/annotations.hpp"
#include "common/sync.hpp"
#include "linalg/blocked_cholesky.hpp"

namespace gptune::rt {

/// Worker pool with a shared FIFO queue. Threads live for the pool lifetime.
///
/// run_batch waits on its *own* batch only (not global idleness), and the
/// waiting thread helps drain the queue meanwhile. Both properties matter
/// to the trainer: multiple restarts fan out over the pool concurrently,
/// and a task running on a pool worker may itself run_batch a nested batch
/// (e.g. blocked-Cholesky tiles) without deadlocking.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return threads_.size(); }

  /// Enqueues one task; returns immediately.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait_idle();

  /// Runs a batch of independent tasks to completion. Safe to call from
  /// multiple threads at once and from inside a pool task; the calling
  /// thread executes queued work while it waits.
  void run_batch(std::vector<std::function<void()>>&& tasks);

  /// Adapts this pool to the linalg TaskBatchRunner interface.
  linalg::TaskBatchRunner batch_runner();

 private:
  void worker_loop();
  /// Pops and runs one queued task; false if the queue was empty.
  bool try_run_one();
  /// Executes `task` wrapped in a telemetry span + counter.
  static void run_task(const std::function<void()>& task);
  void finish_task();

  std::vector<std::thread> threads_;
  common::Mutex mutex_;
  common::CondVar cv_work_;
  common::CondVar cv_idle_;
  std::deque<std::function<void()>> queue_ GPTUNE_GUARDED_BY(mutex_);
  std::size_t in_flight_ GPTUNE_GUARDED_BY(mutex_) = 0;
  bool stop_ GPTUNE_GUARDED_BY(mutex_) = false;
};

}  // namespace gptune::rt
