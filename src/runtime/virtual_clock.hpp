// Virtual time accounting for the parallel speedup study (paper Fig. 3).
//
// The paper reports wall-clock phase times on Cori with 1 vs 32 MPI ranks.
// This container has one core, so real threads cannot exhibit those
// speedups; instead each simulated rank accumulates the compute time its
// assigned work *would* take, and the reported parallel time is the makespan
// (max busy time over ranks) — exactly the quantity a real distributed run
// measures. Costs are charged from operation counts via a calibrated
// flop rate, so the O(N^3) modeling / O(N^2) search shapes are preserved.
#pragma once

#include <cstddef>
#include <vector>

namespace gptune::rt {

/// Tracks per-rank accumulated busy seconds.
class VirtualRanks {
 public:
  explicit VirtualRanks(std::size_t num_ranks);

  std::size_t size() const { return busy_.size(); }

  /// Adds `seconds` of work to rank `r`.
  void charge(std::size_t r, double seconds);

  /// Adds `seconds` to every rank (e.g. a replicated/broadcast step).
  void charge_all(double seconds);

  /// Assigns each task cost to the currently least-loaded rank
  /// (greedy list scheduling) and charges it. Returns the makespan delta
  /// contributed by this batch.
  double schedule_greedy(const std::vector<double>& task_costs);

  /// Critical-path time: max over ranks of accumulated busy seconds.
  double makespan() const;

  /// Sum over ranks (the serial-equivalent work).
  double total_work() const;

  double busy(std::size_t r) const { return busy_[r]; }
  void reset();

 private:
  std::vector<double> busy_;
};

/// Simple machine model used to convert operation counts into virtual
/// seconds. Values loosely follow one Cori Haswell core.
struct CostModel {
  double flops_per_second = 2.0e9;   ///< sustained per-rank flop rate
  double seconds_per_flop() const { return 1.0 / flops_per_second; }
};

}  // namespace gptune::rt
