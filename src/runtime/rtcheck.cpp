// rtcheck registry: wait-for graph, liveness fixpoint, finding store.
//
// Lock discipline (the checker must not deadlock the program it is
// checking): the single registry mutex is always acquired *first*; the
// analyzer may then briefly take one wait mutex (a mailbox's or a barrier's)
// at a time to inspect a queue or poison a waiter. Instrumented threads never
// call into the registry while holding a wait mutex — comm.cpp registers
// intent *before* locking and deregisters *after* unlocking — so the only
// nesting order is registry → wait, and ABBA is impossible.
#include "runtime/rtcheck.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <set>
#include <sstream>
#include <vector>

#include "common/annotations.hpp"
#include "common/log.hpp"
#include "common/sync.hpp"
#include "common/telemetry/flight_recorder.hpp"
#include "runtime/comm.hpp"

namespace gptune::rt::rtcheck {

const char* kind_name(FindingKind kind) {
  switch (kind) {
    case FindingKind::kDeadlock: return "deadlock";
    case FindingKind::kTimeout: return "timeout";
    case FindingKind::kCollectiveMismatch: return "collective-mismatch";
    case FindingKind::kMessageLeak: return "message-leak";
    case FindingKind::kInvalidSend: return "invalid-send";
    case FindingKind::kUnjoinedSpawn: return "unjoined-spawn";
    case FindingKind::kPoolMisuse: return "pool-misuse";
    case FindingKind::kAsyncProtocol: return "async-protocol";
    case FindingKind::kAsyncOutstanding: return "async-outstanding";
  }
  return "unknown";
}

#if defined(GPTUNE_RTCHECK)

namespace {

using hooks::WaitToken;
using hooks::WaitTokenPtr;

/// Rank lifecycle; "unknown" ranks (e.g. the driver thread behind
/// World::self) are conservatively assumed able to make progress.
enum class RankState { kUnknown, kRunning, kExited };

struct GroupInfo {
  std::size_t id = 0;
  std::size_t size = 0;
  std::vector<RankState> rank_state;
  // Collective sequence checking: the signature log indexed by epoch, and
  // each rank's own epoch counter.
  std::vector<std::string> op_kind;
  std::vector<std::size_t> op_root;
  std::vector<long> op_payload;
  std::vector<std::size_t> rank_epoch;
};

struct ChannelInfo {
  std::size_t id = 0;
  const detail::GroupState* child_group = nullptr;
  std::size_t child_n = 0;
  bool joined = false;
};

/// What one registered mailbox is: an intra-group inbox, a parent-side
/// inter-communicator inbox (fed by the children), or a child-side inbox
/// (fed by the parent).
struct EndpointInfo {
  enum Kind { kIntra, kParentInbox, kChildInbox } kind = kIntra;
  const void* owner = nullptr;  ///< GroupState* or InterChannel*
  std::size_t index = 0;        ///< rank within the group / channel side
};

/// An actor is one logical participant of the wait-for graph: a group rank
/// (rank >= 0) or a channel's parent endpoint (rank == -1).
struct ActorKey {
  const void* owner = nullptr;
  long rank = -1;
  bool operator<(const ActorKey& o) const {
    return owner != o.owner ? owner < o.owner : rank < o.rank;
  }
  bool operator==(const ActorKey& o) const {
    return owner == o.owner && rank == o.rank;
  }
};

struct Registry {
  common::Mutex mu;
  std::map<const void*, GroupInfo> groups GPTUNE_GUARDED_BY(mu);
  std::map<const void*, ChannelInfo> channels GPTUNE_GUARDED_BY(mu);
  // Mailbox* -> role
  std::map<const void*, EndpointInfo> endpoints GPTUNE_GUARDED_BY(mu);
  // ThreadPool* -> threads
  std::map<const void*, std::size_t> pools GPTUNE_GUARDED_BY(mu);
  std::vector<WaitTokenPtr> waits GPTUNE_GUARDED_BY(mu);
  std::vector<Finding> findings GPTUNE_GUARDED_BY(mu);
  /// Async streams: owner (EvalEngine*) -> submitted-but-undelivered ids.
  std::map<const void*, std::set<std::size_t>> async_owners
      GPTUNE_GUARDED_BY(mu);
  std::size_t next_group_id GPTUNE_GUARDED_BY(mu) = 0;
  std::size_t next_channel_id GPTUNE_GUARDED_BY(mu) = 0;
  std::size_t next_pool_id GPTUNE_GUARDED_BY(mu) = 0;
  std::map<const void*, std::size_t> pool_ids GPTUNE_GUARDED_BY(mu);
};

Registry& reg() {
  static Registry r;
  return r;
}

// --- naming (registry mutex held) ---

std::string group_name(Registry& r, const void* group)
    GPTUNE_REQUIRES(r.mu) {
  auto it = r.groups.find(group);
  if (it == r.groups.end()) return "group#?";
  return "group#" + std::to_string(it->second.id);
}

std::string channel_name(Registry& r, const void* channel)
    GPTUNE_REQUIRES(r.mu) {
  auto it = r.channels.find(channel);
  if (it == r.channels.end()) return "spawn#?";
  return "spawn#" + std::to_string(it->second.id);
}

std::string actor_name(Registry& r, const ActorKey& a)
    GPTUNE_REQUIRES(r.mu) {
  if (a.rank < 0) return channel_name(r, a.owner) + " parent";
  if (r.groups.count(a.owner)) {
    return group_name(r, a.owner) + " rank " + std::to_string(a.rank);
  }
  return channel_name(r, a.owner) + " rank " + std::to_string(a.rank);
}

std::string tag_name(int tag) {
  if (tag == kAnyTag) return "ANY";
  return std::to_string(tag);
}

std::string source_name(int source) {
  if (source == kAnySource) return "ANY";
  return std::to_string(source);
}

/// The actor a wait token belongs to (who is blocked).
ActorKey token_actor(Registry& r, const WaitToken& t)
    GPTUNE_REQUIRES(r.mu) {
  if (t.kind == 1) {  // barrier: waitable is the GroupState
    return ActorKey{t.waitable, t.source};
  }
  auto it = r.endpoints.find(t.waitable);
  if (it == r.endpoints.end()) return ActorKey{t.waitable, -2};
  const EndpointInfo& ep = it->second;
  switch (ep.kind) {
    case EndpointInfo::kIntra:
      return ActorKey{ep.owner, static_cast<long>(ep.index)};
    case EndpointInfo::kParentInbox:
      return ActorKey{ep.owner, -1};
    case EndpointInfo::kChildInbox: {
      auto ch = r.channels.find(ep.owner);
      const void* g = ch == r.channels.end() ? nullptr
                                             : ch->second.child_group;
      return ActorKey{g, static_cast<long>(ep.index)};
    }
  }
  return ActorKey{};
}

std::string describe_wait(Registry& r, const WaitToken& t)
    GPTUNE_REQUIRES(r.mu) {
  std::ostringstream os;
  if (t.kind == 2) {
    os << "thread-pool wait (" << (t.tag == 0 ? "run_batch" : "wait_idle")
       << " on pool#" << t.source << ")";
    return os.str();
  }
  os << actor_name(r, token_actor(r, t));
  if (t.kind == 1) {
    os << ": blocked in barrier";
  } else {
    os << ": blocked in recv(source=" << source_name(t.source)
       << ", tag=" << tag_name(t.tag) << ")";
  }
  return os.str();
}

void record_finding(Registry& r, FindingKind kind, std::string message)
    GPTUNE_REQUIRES(r.mu) {
  // Liveness findings gain the flight recorder's per-rank tail: the report
  // then shows not just who is stuck but what everyone last did. The ring
  // mutexes are leaves (the recorder never calls back into rtcheck), so
  // reading them under r.mu cannot cycle.
  if (kind == FindingKind::kDeadlock || kind == FindingKind::kTimeout ||
      kind == FindingKind::kCollectiveMismatch) {
    const std::string timeline = telemetry::flight_recorder::timeline_text();
    if (!timeline.empty()) {
      message += "\nflight recorder (last events per thread):\n";
      message += timeline;
    }
    const std::string reason = std::string("rtcheck:") + kind_name(kind);
    telemetry::flight_recorder::dump_now(reason.c_str());
  }
  common::log_warn("rtcheck [", kind_name(kind), "] ", message);
  r.findings.push_back(Finding{kind, std::move(message)});
}

/// Marks a waiter as doomed and wakes it; it unwinds with RtCheckError.
/// Locks the waiter's raw wait mutex (a std::mutex*, not a capability), so
/// the function sits outside the thread-safety analysis by design.
void poison(const WaitTokenPtr& t,
            const std::string& why) GPTUNE_NO_THREAD_SAFETY_ANALYSIS {
  {
    std::lock_guard<std::mutex> lock(*t->wait_mutex);
    if (t->poisoned) return;
    t->poisoned = true;
    t->reason = why;
  }
  t->wait_cv->notify_all();
}

/// True when the waiter is provably not stuck *right now*: it is unwinding
/// (poisoned), already satisfied (done), or — for barriers — its generation
/// has been released and the thread simply has not been scheduled yet.
/// All fields are read under the waiter's own wait mutex — including the
/// barrier generation, whose guarding mutex IS that wait mutex (the token
/// stores its native handle), a fact the analysis cannot see through the
/// raw pointer; hence the opt-out.
bool waiter_satisfied(const WaitTokenPtr& t) GPTUNE_NO_THREAD_SAFETY_ANALYSIS {
  std::lock_guard<std::mutex> lock(*t->wait_mutex);
  if (t->poisoned || t->done) return true;
  if (t->kind == 1) {
    const auto* g = static_cast<const detail::GroupState*>(t->waitable);
    if (g->barrier_generation != t->generation) return true;
  }
  return false;
}

/// One node of the liveness analysis: a blocked actor and the actors that
/// could unblock it (any-of for receives, all-of for barriers).
struct Blocked {
  WaitTokenPtr token;
  ActorKey actor;
  std::vector<ActorKey> deps;
  bool all_of = false;  ///< barrier: every dep must arrive
  bool live = false;
  std::string dep_text;
};

/// Liveness fixpoint over the wait-for graph (DESIGN.md §3.6): an actor is
/// *live* if it can still make progress. Non-blocked, non-exited actors are
/// live by assumption; a blocked receive is live if a matching message is
/// already queued or any potential sender is live; a blocked barrier is live
/// only if every absent group member is live. Whatever is not live at the
/// fixpoint can provably never be woken.
///
/// `subject`, when given, is the waiter whose deadline just expired: its
/// done/satisfied flags are ignored so the analysis judges the wait it was
/// actually stuck in.
std::vector<Blocked> compute_dead(Registry& r,
                                  const WaitToken* subject = nullptr)
    GPTUNE_REQUIRES(r.mu) {
  std::vector<Blocked> nodes;
  std::map<ActorKey, std::size_t> blocked_index;

  // Ranks currently inside a barrier (they count as "arrived").
  std::map<const void*, std::vector<long>> in_barrier;
  for (const auto& t : r.waits) {
    if (t->kind == 1) in_barrier[t->waitable].push_back(t->source);
  }

  for (const auto& t : r.waits) {
    if (t->kind == 2) continue;  // pool waits are outside the message graph
    const bool is_subject = subject != nullptr && t.get() == subject;
    if (!is_subject && waiter_satisfied(t)) continue;  // waking or unwinding
    Blocked b;
    b.token = t;
    b.actor = token_actor(r, *t);
    if (t->kind == 1) {
      b.all_of = true;
      auto git = r.groups.find(t->waitable);
      if (git == r.groups.end()) continue;
      const auto& arrived = in_barrier[t->waitable];
      std::ostringstream os;
      for (std::size_t rank = 0; rank < git->second.size; ++rank) {
        const long lr = static_cast<long>(rank);
        if (lr == t->source) continue;
        if (std::find(arrived.begin(), arrived.end(), lr) != arrived.end()) {
          continue;
        }
        b.deps.push_back(ActorKey{t->waitable, lr});
        os << (b.deps.size() > 1 ? "," : "") << rank;
      }
      b.dep_text = "waits on rank(s) {" + os.str() + "} to reach the barrier";
      if (b.deps.empty()) b.live = true;  // barrier is about to release
    } else {
      // A matching message already queued means the waiter is not stuck —
      // it is between its registration and its queue scan.
      const auto* box = static_cast<const detail::Mailbox*>(t->waitable);
      if (box->has_matching(t->source, t->tag)) {
        b.live = true;
      }
      auto eit = r.endpoints.find(t->waitable);
      if (eit == r.endpoints.end()) {
        b.live = true;  // unregistered mailbox: assume progress
      } else {
        const EndpointInfo& ep = eit->second;
        std::ostringstream os;
        if (ep.kind == EndpointInfo::kIntra) {
          auto git = r.groups.find(ep.owner);
          const std::size_t n = git == r.groups.end() ? 0 : git->second.size;
          for (std::size_t s = 0; s < n; ++s) {
            if (s == ep.index) continue;
            if (t->source != kAnySource &&
                t->source != static_cast<int>(s)) {
              continue;
            }
            b.deps.push_back(ActorKey{ep.owner, static_cast<long>(s)});
          }
          os << "waits on "
             << (t->source == kAnySource ? "any group rank"
                                         : "rank " + source_name(t->source));
        } else if (ep.kind == EndpointInfo::kParentInbox) {
          auto cit = r.channels.find(ep.owner);
          if (cit != r.channels.end()) {
            const ChannelInfo& ch = cit->second;
            for (std::size_t s = 0; s < ch.child_n; ++s) {
              if (t->source != kAnySource &&
                  t->source != static_cast<int>(s)) {
                continue;
              }
              b.deps.push_back(
                  ActorKey{ch.child_group, static_cast<long>(s)});
            }
          }
          os << "waits on "
             << (t->source == kAnySource
                     ? "any spawned worker"
                     : "worker rank " + source_name(t->source));
        } else {
          b.deps.push_back(ActorKey{ep.owner, -1});
          os << "waits on the parent endpoint";
        }
        b.dep_text = os.str();
      }
    }
    blocked_index[b.actor] = nodes.size();
    nodes.push_back(std::move(b));
  }

  // Base liveness of a dependency that is not itself blocked.
  auto base_live = [&](const ActorKey& a) {
    if (a.rank < 0) {
      auto cit = r.channels.find(a.owner);
      // A joined channel's parent endpoint will never send again.
      return cit == r.channels.end() || !cit->second.joined;
    }
    auto git = r.groups.find(a.owner);
    if (git == r.groups.end()) return true;
    if (a.rank >= static_cast<long>(git->second.rank_state.size())) {
      return true;
    }
    return git->second.rank_state[static_cast<std::size_t>(a.rank)] !=
           RankState::kExited;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& b : nodes) {
      if (b.live) continue;
      auto dep_live = [&](const ActorKey& d) {
        auto it = blocked_index.find(d);
        if (it != blocked_index.end()) return nodes[it->second].live;
        return base_live(d);
      };
      bool live;
      if (b.all_of) {
        live = std::all_of(b.deps.begin(), b.deps.end(), dep_live);
      } else {
        live = std::any_of(b.deps.begin(), b.deps.end(), dep_live);
      }
      if (live) {
        b.live = true;
        changed = true;
      }
    }
  }

  std::vector<Blocked> dead;
  for (auto& b : nodes) {
    if (!b.live) dead.push_back(std::move(b));
  }
  return dead;
}

/// Renders the per-rank "who waits on whom, which tag" report and poisons
/// every provably-stuck waiter. Returns true if anything was reported.
bool report_and_poison_dead(Registry& r, const std::string& headline)
    GPTUNE_REQUIRES(r.mu) {
  std::vector<Blocked> dead = compute_dead(r);
  if (dead.empty()) return false;
  std::ostringstream os;
  os << headline << " — " << dead.size()
     << " blocked operation(s) can never complete:";
  for (const auto& b : dead) {
    os << "\n  " << describe_wait(r, *b.token) << " — " << b.dep_text;
  }
  const std::string msg = os.str();
  record_finding(r, FindingKind::kDeadlock, msg);
  for (const auto& b : dead) poison(b.token, msg);
  return true;
}

std::string snapshot_waits(Registry& r) GPTUNE_REQUIRES(r.mu) {
  std::ostringstream os;
  if (r.waits.empty()) {
    os << "\n  (no other operation is blocked)";
    return os.str();
  }
  for (const auto& t : r.waits) {
    os << "\n  " << describe_wait(r, *t);
  }
  return os.str();
}

}  // namespace

std::vector<Finding> findings() {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  return r.findings;
}

std::size_t count(FindingKind kind) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  std::size_t n = 0;
  for (const auto& f : r.findings) {
    if (f.kind == kind) ++n;
  }
  return n;
}

void reset() {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  r.groups.clear();
  r.channels.clear();
  r.endpoints.clear();
  r.pools.clear();
  r.pool_ids.clear();
  r.waits.clear();
  r.findings.clear();
  r.async_owners.clear();
}

std::size_t audit_unjoined() {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  std::size_t found = 0;
  for (const auto& [channel, info] : r.channels) {
    if (info.joined) continue;
    ++found;
    record_finding(r, FindingKind::kUnjoinedSpawn,
                   channel_name(r, channel) + " (" +
                       std::to_string(info.child_n) +
                       " worker rank(s)) has not been joined");
  }
  return found;
}

std::size_t live_spawn_count() {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  std::size_t live = 0;
  for (const auto& [channel, info] : r.channels) {
    (void)channel;
    if (!info.joined) ++live;
  }
  return live;
}

std::size_t async_outstanding() {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  std::size_t outstanding = 0;
  for (const auto& [owner, ids] : r.async_owners) {
    (void)owner;
    outstanding += ids.size();
  }
  return outstanding;
}

namespace hooks {

void on_group_created(const detail::GroupState* group) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  GroupInfo info;
  info.id = r.next_group_id++;
  info.size = group->size;
  info.rank_state.assign(group->size, RankState::kUnknown);
  info.rank_epoch.assign(group->size, 0);
  r.groups.emplace(group, std::move(info));
  for (std::size_t i = 0; i < group->size; ++i) {
    r.endpoints[&group->mailboxes[i]] =
        EndpointInfo{EndpointInfo::kIntra, group, i};
  }
}

void on_group_teardown(const detail::GroupState* group,
                       const std::vector<std::vector<MessageStub>>& leftover) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  for (std::size_t rank = 0; rank < leftover.size(); ++rank) {
    for (const auto& m : leftover[rank]) {
      record_finding(
          r, FindingKind::kMessageLeak,
          group_name(r, group) + " rank " + std::to_string(rank) +
              ": message still queued at group teardown (source=" +
              std::to_string(m.source) + ", tag=" + std::to_string(m.tag) +
              ", " + std::to_string(m.size) + " double(s))");
    }
  }
  auto git = r.groups.find(group);
  if (git != r.groups.end()) {
    for (std::size_t i = 0; i < git->second.size; ++i) {
      r.endpoints.erase(&group->mailboxes[i]);
    }
    r.groups.erase(git);
  }
}

void on_rank_started(const detail::GroupState* group, std::size_t rank) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto git = r.groups.find(group);
  if (git == r.groups.end() || rank >= git->second.rank_state.size()) return;
  git->second.rank_state[rank] = RankState::kRunning;
}

void on_rank_exited(const detail::GroupState* group, std::size_t rank) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto git = r.groups.find(group);
  if (git == r.groups.end() || rank >= git->second.rank_state.size()) return;
  git->second.rank_state[rank] = RankState::kExited;
  // A waiter blocked on this rank can now be provably stuck.
  report_and_poison_dead(r, "deadlock (peer " + group_name(r, group) +
                                " rank " + std::to_string(rank) +
                                " exited)");
}

void on_spawn_created(const detail::InterChannel* channel,
                      const detail::GroupState* parent_group,
                      std::size_t parent_rank,
                      const detail::GroupState* child_group) {
  (void)parent_group;
  (void)parent_rank;
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  ChannelInfo info;
  info.id = r.next_channel_id++;
  info.child_group = child_group;
  info.child_n = channel->to_remote.size();
  r.channels.emplace(channel, std::move(info));
  for (std::size_t i = 0; i < channel->to_local.size(); ++i) {
    r.endpoints[&channel->to_local[i]] =
        EndpointInfo{EndpointInfo::kParentInbox, channel, i};
  }
  for (std::size_t i = 0; i < channel->to_remote.size(); ++i) {
    r.endpoints[&channel->to_remote[i]] =
        EndpointInfo{EndpointInfo::kChildInbox, channel, i};
  }
}

void on_spawn_joined(const detail::InterChannel* channel) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto cit = r.channels.find(channel);
  if (cit == r.channels.end() || cit->second.joined) return;
  cit->second.joined = true;
  // The parent endpoint will never send again; children are gone too.
  report_and_poison_dead(
      r, "deadlock (" + channel_name(r, channel) + " was joined)");
}

void on_channel_teardown(const detail::InterChannel* channel,
                         const std::vector<std::vector<MessageStub>>& to_local,
                         const std::vector<std::vector<MessageStub>>&
                             to_remote) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto leak = [&](const char* where, std::size_t index, const MessageStub& m) {
    record_finding(
        r, FindingKind::kMessageLeak,
        channel_name(r, channel) + " " + where + " " + std::to_string(index) +
            ": message still queued at channel teardown (source=" +
            std::to_string(m.source) + ", tag=" + std::to_string(m.tag) +
            ", " + std::to_string(m.size) + " double(s))");
  };
  for (std::size_t i = 0; i < to_local.size(); ++i) {
    for (const auto& m : to_local[i]) leak("parent inbox", i, m);
  }
  for (std::size_t i = 0; i < to_remote.size(); ++i) {
    for (const auto& m : to_remote[i]) leak("worker inbox", i, m);
  }
  auto cit = r.channels.find(channel);
  if (cit != r.channels.end()) {
    for (std::size_t i = 0; i < channel->to_local.size(); ++i) {
      r.endpoints.erase(&channel->to_local[i]);
    }
    for (std::size_t i = 0; i < channel->to_remote.size(); ++i) {
      r.endpoints.erase(&channel->to_remote[i]);
    }
    r.channels.erase(cit);
  }
}

WaitTokenPtr begin_recv(const detail::Mailbox* box, std::mutex* wait_mutex,
                        std::condition_variable* wait_cv, int source,
                        int tag) {
  auto token = std::make_shared<WaitToken>();
  token->wait_mutex = wait_mutex;
  token->wait_cv = wait_cv;
  token->kind = 0;
  token->waitable = box;
  token->source = source;
  token->tag = tag;
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  r.waits.push_back(token);
  return token;
}

WaitTokenPtr begin_barrier(const detail::GroupState* group, std::size_t rank,
                           std::mutex* wait_mutex,
                           std::condition_variable* wait_cv) {
  auto token = std::make_shared<WaitToken>();
  token->wait_mutex = wait_mutex;
  token->wait_cv = wait_cv;
  token->kind = 1;
  token->waitable = group;
  token->source = static_cast<int>(rank);
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  r.waits.push_back(token);
  return token;
}

void analyze_blocked(const WaitTokenPtr& token) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  if (token->analyzed) return;
  token->analyzed = true;
  report_and_poison_dead(r, "deadlock detected");
}

void on_deadline_expired(const WaitTokenPtr& token) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  // The deadline proves nothing by itself; re-run the analysis — if the
  // waiter is provably stuck this is a deadlock, otherwise report the
  // timeout with a wait-for snapshot so a slow peer is visible.
  std::vector<Blocked> dead = compute_dead(r, token.get());
  for (const auto& b : dead) {
    if (b.token == token) {
      std::ostringstream os;
      os << "deadline expired on a provably stuck receive:";
      for (const auto& d : dead) {
        os << "\n  " << describe_wait(r, *d.token) << " — " << d.dep_text;
      }
      const std::string msg = os.str();
      record_finding(r, FindingKind::kDeadlock, msg);
      for (const auto& d : dead) {
        if (d.token != token) poison(d.token, msg);
      }
      return;
    }
  }
  record_finding(r, FindingKind::kTimeout,
                 "deadline expired in " + describe_wait(r, *token) +
                     "; blocked operations at expiry:" + snapshot_waits(r));
}

void end_wait(const WaitTokenPtr& token) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto it = std::find(r.waits.begin(), r.waits.end(), token);
  if (it != r.waits.end()) r.waits.erase(it);
}

void check_send_intra(const detail::GroupState* group, std::size_t source,
                      std::size_t dest, int tag) {
  if (dest < group->size) return;  // fast path: no registry lock
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  const std::string msg =
      group_name(r, group) + " rank " + std::to_string(source) +
      ": send(tag=" + std::to_string(tag) + ") to invalid rank " +
      std::to_string(dest) + " (group size " + std::to_string(group->size) +
      ")";
  record_finding(r, FindingKind::kInvalidSend, msg);
  lock.unlock();
  throw RtCheckError(msg);
}

void check_send_inter(const detail::InterChannel* channel, bool parent_side,
                      std::size_t remote_rank, std::size_t remote_size,
                      int tag) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto cit = r.channels.find(channel);
  std::string msg;
  if (remote_rank >= remote_size) {
    msg = channel_name(r, channel) + " " +
          (parent_side ? "parent" : "worker") + ": send(tag=" +
          std::to_string(tag) + ") to invalid remote rank " +
          std::to_string(remote_rank) + " (remote size " +
          std::to_string(remote_size) + ")";
  } else if (cit != r.channels.end() && cit->second.joined) {
    msg = channel_name(r, channel) + " " +
          (parent_side ? "parent" : "worker") + ": send(tag=" +
          std::to_string(tag) + ", to remote rank " +
          std::to_string(remote_rank) +
          ") after the spawned group was joined (teardown)";
  } else {
    return;
  }
  record_finding(r, FindingKind::kInvalidSend, msg);
  lock.unlock();
  throw RtCheckError(msg);
}

void enter_collective(const detail::GroupState* group, std::size_t rank,
                      const char* kind, std::size_t root, long payload) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto git = r.groups.find(group);
  if (git == r.groups.end()) return;
  GroupInfo& g = git->second;
  if (rank >= g.rank_epoch.size()) return;
  const std::size_t epoch = g.rank_epoch[rank]++;
  if (epoch >= g.op_kind.size()) {
    g.op_kind.push_back(kind);
    g.op_root.push_back(root);
    g.op_payload.push_back(payload);
    return;
  }
  const bool kind_ok = g.op_kind[epoch] == kind;
  const bool root_ok = g.op_root[epoch] == root;
  const bool payload_ok = payload < 0 || g.op_payload[epoch] < 0 ||
                          g.op_payload[epoch] == payload;
  if (payload >= 0 && g.op_payload[epoch] < 0) g.op_payload[epoch] = payload;
  if (kind_ok && root_ok && payload_ok) return;

  std::ostringstream os;
  os << "collective mismatch in " << group_name(r, group) << " at epoch "
     << epoch << ": rank " << rank << " entered " << kind << "(root=" << root;
  if (payload >= 0) os << ", payload=" << payload;
  os << ") but the group's collective #" << epoch << " is "
     << g.op_kind[epoch] << "(root=" << g.op_root[epoch];
  if (g.op_payload[epoch] >= 0) os << ", payload=" << g.op_payload[epoch];
  os << ")";
  const std::string msg = os.str();
  record_finding(r, FindingKind::kCollectiveMismatch, msg);
  // The group's protocol is broken; unwind everything blocked in it.
  for (const auto& t : r.waits) {
    if (t->kind == 2) continue;
    const ActorKey a = token_actor(r, *t);
    if (a.owner == static_cast<const void*>(group)) poison(t, msg);
  }
  lock.unlock();
  throw RtCheckError(msg);
}

void on_pool_created(const void* pool, std::size_t threads) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  r.pools[pool] = threads;
  r.pool_ids.emplace(pool, r.next_pool_id++);
}

void on_pool_destroyed(const void* pool) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  for (const auto& t : r.waits) {
    if (t->kind == 2 && t->waitable == pool) {
      record_finding(r, FindingKind::kPoolMisuse,
                     "ThreadPool#" + std::to_string(r.pool_ids[pool]) +
                         " destroyed while a " +
                         (t->tag == 0 ? std::string("run_batch")
                                      : std::string("wait_idle")) +
                         " is still waiting on it");
    }
  }
  r.pools.erase(pool);
}

WaitTokenPtr begin_pool_wait(const void* pool, std::mutex* wait_mutex,
                             std::condition_variable* wait_cv,
                             const char* what) {
  auto token = std::make_shared<WaitToken>();
  token->wait_mutex = wait_mutex;
  token->wait_cv = wait_cv;
  token->kind = 2;
  token->waitable = pool;
  token->tag = std::string(what) == "run_batch" ? 0 : 1;
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto it = r.pool_ids.find(pool);
  token->source = it == r.pool_ids.end() ? -1
                                         : static_cast<int>(it->second);
  r.waits.push_back(token);
  return token;
}

void on_async_submit(const void* owner, std::size_t id) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto [it, inserted] = r.async_owners[owner].insert(id);
  (void)it;
  if (!inserted) {
    record_finding(r, FindingKind::kAsyncProtocol,
                   "async stream: candidate #" + std::to_string(id) +
                       " submitted twice by the same owner");
  }
}

void on_async_delivered(const void* owner, std::size_t id) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto it = r.async_owners.find(owner);
  if (it == r.async_owners.end() || it->second.erase(id) == 0) {
    record_finding(r, FindingKind::kAsyncProtocol,
                   "async stream: completion #" + std::to_string(id) +
                       " delivered without a matching submit (or twice)");
  }
}

void on_async_misuse(const void* owner, const std::string& what) {
  (void)owner;
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  record_finding(r, FindingKind::kAsyncProtocol, "async stream: " + what);
}

void on_async_owner_destroyed(const void* owner) {
  Registry& r = reg();
  common::MutexLock lock(r.mu);
  auto it = r.async_owners.find(owner);
  if (it == r.async_owners.end()) return;
  if (!it->second.empty()) {
    record_finding(r, FindingKind::kAsyncOutstanding,
                   "async stream: owner destroyed with " +
                       std::to_string(it->second.size()) +
                       " undelivered candidate(s) in flight");
  }
  r.async_owners.erase(it);
}

}  // namespace hooks

#else  // !GPTUNE_RTCHECK — finding store stubs for unchecked builds.

std::vector<Finding> findings() { return {}; }
std::size_t count(FindingKind) { return 0; }
void reset() {}
std::size_t audit_unjoined() { return 0; }
std::size_t live_spawn_count() { return 0; }
std::size_t async_outstanding() { return 0; }

#endif  // GPTUNE_RTCHECK

}  // namespace gptune::rt::rtcheck
