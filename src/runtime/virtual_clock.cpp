#include "runtime/virtual_clock.hpp"

#include <algorithm>
#include <cassert>

namespace gptune::rt {

VirtualRanks::VirtualRanks(std::size_t num_ranks)
    : busy_(num_ranks == 0 ? 1 : num_ranks, 0.0) {}

void VirtualRanks::charge(std::size_t r, double seconds) {
  assert(r < busy_.size());
  busy_[r] += seconds;
}

void VirtualRanks::charge_all(double seconds) {
  for (double& b : busy_) b += seconds;
}

double VirtualRanks::schedule_greedy(const std::vector<double>& task_costs) {
  const double before = makespan();
  for (double cost : task_costs) {
    auto it = std::min_element(busy_.begin(), busy_.end());
    *it += cost;
  }
  return makespan() - before;
}

double VirtualRanks::makespan() const {
  return *std::max_element(busy_.begin(), busy_.end());
}

double VirtualRanks::total_work() const {
  double s = 0.0;
  for (double b : busy_) s += b;
  return s;
}

void VirtualRanks::reset() {
  std::fill(busy_.begin(), busy_.end(), 0.0);
}

}  // namespace gptune::rt
