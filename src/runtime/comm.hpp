// Message-passing runtime modeled on the MPI subset GPTune uses (paper §4).
//
// The paper's driver runs on one MPI process and *spawns* worker groups via
// mpi4py's Spawn; master and workers exchange data through the resulting
// inter-communicator (paper Fig. 1). This module reproduces that programming
// model over std::thread:
//
//   * World::run(n, fn)       — launch an intra-communicator group of n ranks
//   * Comm                    — rank/size, send/recv, barrier, bcast,
//                               reduce/allreduce, gather
//   * Comm::spawn(n, fn)      — create a child group; the parent receives an
//                               InterComm (the paper's "SpawnedComm"), each
//                               child receives its own InterComm
//                               (the paper's "ParentComm" via Get_parent)
//
// Messages carry vectors of doubles plus an integer tag; that covers the
// tuner's needs (samples, hyperparameters, objective values) while keeping
// the transport simple and easily swappable for real MPI.
#pragma once

#include <chrono>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <tuple>
#include <vector>

#include "common/annotations.hpp"
#include "common/sync.hpp"

namespace gptune::rt {

/// Wildcards for recv matching (mirror MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A received message: payload plus the envelope that matched.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<double> data;
};

namespace detail {

/// One rank's inbox: a mutex-protected deque supporting selective receive.
/// Matching is deterministic: among queued messages that match (source, tag)
/// — including under kAnySource / kAnyTag — the earliest-posted one wins.
class Mailbox {
 public:
  void post(Message msg);
  /// Blocks until a message matching (source, tag) is available and pops it.
  /// Under GPTUNE_RTCHECK, throws rtcheck::RtCheckError instead of blocking
  /// forever when the checker proves the wait can never be satisfied.
  Message take(int source, int tag);
  /// Deadline variant: returns std::nullopt once `timeout` elapses with no
  /// matching message (after recording an rtcheck timeout/deadlock finding
  /// in checked builds). Lets tests observe a diagnosed deadlock
  /// deterministically instead of relying on ctest timeouts.
  std::optional<Message> take(int source, int tag,
                              std::chrono::nanoseconds timeout);
  /// Non-blocking variant; returns false if no matching message is queued.
  bool try_take(int source, int tag, Message* out);

  /// True if a matching message is currently queued (rtcheck liveness probe).
  bool has_matching(int source, int tag) const;
  /// Envelope summaries of everything still queued (rtcheck leak reports).
  std::vector<std::tuple<int, int, std::size_t>> leftover() const;

 private:
  std::optional<Message> take_impl(
      int source, int tag,
      const std::optional<std::chrono::steady_clock::time_point>& deadline);

  mutable common::Mutex mutex_;
  common::CondVar cv_;
  std::deque<Message> queue_ GPTUNE_GUARDED_BY(mutex_);
};

/// Shared state of one intra-communicator group.
struct GroupState {
  explicit GroupState(std::size_t n);
  /// Under GPTUNE_RTCHECK, reports messages still queued at teardown.
  ~GroupState();
  std::vector<Mailbox> mailboxes;
  // Sense-reversing central barrier.
  common::Mutex barrier_mutex;
  common::CondVar barrier_cv;
  std::size_t barrier_count GPTUNE_GUARDED_BY(barrier_mutex) = 0;
  std::size_t barrier_generation GPTUNE_GUARDED_BY(barrier_mutex) = 0;
  std::size_t size = 0;
};

/// Channel backing an inter-communicator: mailboxes for both directions.
struct InterChannel {
  explicit InterChannel(std::size_t local_n, std::size_t remote_n);
  /// Under GPTUNE_RTCHECK, reports messages still queued at teardown.
  ~InterChannel();
  std::vector<Mailbox> to_local;   // indexed by local rank
  std::vector<Mailbox> to_remote;  // indexed by remote rank
};

}  // namespace detail

class Comm;

/// Handle to a remote group created by Comm::spawn (or received by the
/// spawned ranks). Mirrors an MPI inter-communicator: sends address ranks of
/// the *remote* group; receives read this rank's inbox on the channel.
class InterComm {
 public:
  std::size_t local_rank() const { return local_rank_; }
  std::size_t remote_size() const { return remote_size_; }

  void send(std::size_t remote_rank, int tag, std::vector<double> data);
  Message recv(int source = kAnySource, int tag = kAnyTag);
  /// Deadline variant of recv: std::nullopt once `timeout` elapses (with an
  /// rtcheck timeout/deadlock finding recorded in checked builds).
  std::optional<Message> recv_for(int source, int tag,
                                  std::chrono::nanoseconds timeout);
  bool try_recv(int source, int tag, Message* out);

 private:
  friend class Comm;
  friend class SpawnHandle;
  InterComm(std::shared_ptr<detail::InterChannel> channel, bool is_parent_side,
            std::size_t local_rank, std::size_t remote_size)
      : channel_(std::move(channel)),
        is_parent_side_(is_parent_side),
        local_rank_(local_rank),
        remote_size_(remote_size) {}

  std::shared_ptr<detail::InterChannel> channel_;
  bool is_parent_side_;
  std::size_t local_rank_;
  std::size_t remote_size_;
};

/// Joinable handle to a spawned child group (parent side).
class SpawnHandle {
 public:
  SpawnHandle(InterComm comm, std::vector<std::thread> threads)
      : comm_(std::move(comm)), threads_(std::move(threads)) {}
  ~SpawnHandle() { join(); }
  SpawnHandle(SpawnHandle&&) = default;

  InterComm& comm() { return comm_; }
  /// Blocks until every spawned rank's function returns.
  void join();

 private:
  InterComm comm_;
  std::vector<std::thread> threads_;
};

/// Intra-communicator endpoint owned by one rank.
class Comm {
 public:
  std::size_t rank() const { return rank_; }
  std::size_t size() const { return group_->size; }

  // --- point to point ---
  void send(std::size_t dest, int tag, std::vector<double> data);
  Message recv(int source = kAnySource, int tag = kAnyTag);
  /// Deadline variant of recv: std::nullopt once `timeout` elapses (with an
  /// rtcheck timeout/deadlock finding recorded in checked builds).
  std::optional<Message> recv_for(int source, int tag,
                                  std::chrono::nanoseconds timeout);
  bool try_recv(int source, int tag, Message* out);

  // --- collectives (implemented over point-to-point, rooted at 0) ---
  void barrier();
  /// Root's `data` is distributed to all; others receive into `data`.
  void bcast(std::vector<double>& data, std::size_t root = 0);
  /// Element-wise sum across ranks; result valid on root only.
  std::vector<double> reduce_sum(const std::vector<double>& contribution,
                                 std::size_t root = 0);
  /// Element-wise sum, result on every rank.
  std::vector<double> allreduce_sum(const std::vector<double>& contribution);
  /// Concatenation of per-rank contributions in rank order; root only.
  std::vector<std::vector<double>> gather(const std::vector<double>& data,
                                          std::size_t root = 0);

  // --- dynamic process management (paper §4.1) ---
  /// Spawns `n` worker ranks, each running `fn(worker_comm, parent_comm)`.
  /// Returns the parent-side inter-communicator handle.
  SpawnHandle spawn(std::size_t n,
                    std::function<void(Comm&, InterComm&)> fn) const;

 private:
  friend class World;
  Comm(std::shared_ptr<detail::GroupState> group, std::size_t rank)
      : group_(std::move(group)), rank_(rank) {}

  std::shared_ptr<detail::GroupState> group_;
  std::size_t rank_;
};

/// Launches an intra-communicator group.
class World {
 public:
  /// Runs `fn(comm)` on `n` ranks (threads) and blocks until all return.
  static void run(std::size_t n, const std::function<void(Comm&)>& fn);

  /// A standalone single-rank communicator for the calling (driver) thread,
  /// mirroring MPI_COMM_SELF. Long-lived subsystems (e.g. the evaluation
  /// engine) spawn worker groups from it without entering World::run.
  static Comm self();
};

}  // namespace gptune::rt
