// Message-passing runtime modeled on the MPI subset GPTune uses (paper §4).
//
// The paper's driver runs on one MPI process and *spawns* worker groups via
// mpi4py's Spawn; master and workers exchange data through the resulting
// inter-communicator (paper Fig. 1). This module reproduces that programming
// model over std::thread:
//
//   * World::run(n, fn)       — launch an intra-communicator group of n ranks
//   * Comm                    — rank/size, send/recv, barrier, bcast,
//                               reduce/allreduce, gather
//   * Comm::spawn(n, fn)      — create a child group; the parent receives an
//                               InterComm (the paper's "SpawnedComm"), each
//                               child receives its own InterComm
//                               (the paper's "ParentComm" via Get_parent)
//
// Messages carry vectors of doubles plus an integer tag; that covers the
// tuner's needs (samples, hyperparameters, objective values) while keeping
// the transport simple and easily swappable for real MPI.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gptune::rt {

/// Wildcards for recv matching (mirror MPI_ANY_SOURCE / MPI_ANY_TAG).
inline constexpr int kAnySource = -1;
inline constexpr int kAnyTag = -1;

/// A received message: payload plus the envelope that matched.
struct Message {
  int source = 0;
  int tag = 0;
  std::vector<double> data;
};

namespace detail {

/// One rank's inbox: a mutex-protected deque supporting selective receive.
class Mailbox {
 public:
  void post(Message msg);
  /// Blocks until a message matching (source, tag) is available and pops it.
  Message take(int source, int tag);
  /// Non-blocking variant; returns false if no matching message is queued.
  bool try_take(int source, int tag, Message* out);

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<Message> queue_;
};

/// Shared state of one intra-communicator group.
struct GroupState {
  explicit GroupState(std::size_t n);
  std::vector<Mailbox> mailboxes;
  // Sense-reversing central barrier.
  std::mutex barrier_mutex;
  std::condition_variable barrier_cv;
  std::size_t barrier_count = 0;
  std::size_t barrier_generation = 0;
  std::size_t size = 0;
};

/// Channel backing an inter-communicator: mailboxes for both directions.
struct InterChannel {
  explicit InterChannel(std::size_t local_n, std::size_t remote_n);
  std::vector<Mailbox> to_local;   // indexed by local rank
  std::vector<Mailbox> to_remote;  // indexed by remote rank
};

}  // namespace detail

class Comm;

/// Handle to a remote group created by Comm::spawn (or received by the
/// spawned ranks). Mirrors an MPI inter-communicator: sends address ranks of
/// the *remote* group; receives read this rank's inbox on the channel.
class InterComm {
 public:
  std::size_t local_rank() const { return local_rank_; }
  std::size_t remote_size() const { return remote_size_; }

  void send(std::size_t remote_rank, int tag, std::vector<double> data);
  Message recv(int source = kAnySource, int tag = kAnyTag);
  bool try_recv(int source, int tag, Message* out);

 private:
  friend class Comm;
  InterComm(std::shared_ptr<detail::InterChannel> channel, bool is_parent_side,
            std::size_t local_rank, std::size_t remote_size)
      : channel_(std::move(channel)),
        is_parent_side_(is_parent_side),
        local_rank_(local_rank),
        remote_size_(remote_size) {}

  std::shared_ptr<detail::InterChannel> channel_;
  bool is_parent_side_;
  std::size_t local_rank_;
  std::size_t remote_size_;
};

/// Joinable handle to a spawned child group (parent side).
class SpawnHandle {
 public:
  SpawnHandle(InterComm comm, std::vector<std::thread> threads)
      : comm_(std::move(comm)), threads_(std::move(threads)) {}
  ~SpawnHandle() { join(); }
  SpawnHandle(SpawnHandle&&) = default;

  InterComm& comm() { return comm_; }
  /// Blocks until every spawned rank's function returns.
  void join();

 private:
  InterComm comm_;
  std::vector<std::thread> threads_;
};

/// Intra-communicator endpoint owned by one rank.
class Comm {
 public:
  std::size_t rank() const { return rank_; }
  std::size_t size() const { return group_->size; }

  // --- point to point ---
  void send(std::size_t dest, int tag, std::vector<double> data);
  Message recv(int source = kAnySource, int tag = kAnyTag);
  bool try_recv(int source, int tag, Message* out);

  // --- collectives (implemented over point-to-point, rooted at 0) ---
  void barrier();
  /// Root's `data` is distributed to all; others receive into `data`.
  void bcast(std::vector<double>& data, std::size_t root = 0);
  /// Element-wise sum across ranks; result valid on root only.
  std::vector<double> reduce_sum(const std::vector<double>& contribution,
                                 std::size_t root = 0);
  /// Element-wise sum, result on every rank.
  std::vector<double> allreduce_sum(const std::vector<double>& contribution);
  /// Concatenation of per-rank contributions in rank order; root only.
  std::vector<std::vector<double>> gather(const std::vector<double>& data,
                                          std::size_t root = 0);

  // --- dynamic process management (paper §4.1) ---
  /// Spawns `n` worker ranks, each running `fn(worker_comm, parent_comm)`.
  /// Returns the parent-side inter-communicator handle.
  SpawnHandle spawn(std::size_t n,
                    std::function<void(Comm&, InterComm&)> fn) const;

 private:
  friend class World;
  Comm(std::shared_ptr<detail::GroupState> group, std::size_t rank)
      : group_(std::move(group)), rank_(rank) {}

  std::shared_ptr<detail::GroupState> group_;
  std::size_t rank_;
};

/// Launches an intra-communicator group.
class World {
 public:
  /// Runs `fn(comm)` on `n` ranks (threads) and blocks until all return.
  static void run(std::size_t n, const std::function<void(Comm&)>& fn);

  /// A standalone single-rank communicator for the calling (driver) thread,
  /// mirroring MPI_COMM_SELF. Long-lived subsystems (e.g. the evaluation
  /// engine) spawn worker groups from it without entering World::run.
  static Comm self();
};

}  // namespace gptune::rt
