// Particle Swarm Optimization (Kennedy & Eberhart 1995).
//
// GPTune's search phase maximizes the Expected Improvement with PSO
// (paper §3.1, search phase); PSO is also one of the OpenTuner-style arms.
#pragma once

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::opt {

struct PsoOptions {
  std::size_t swarm_size = 40;
  std::size_t iterations = 60;
  double inertia = 0.72;           ///< velocity damping (Clerc constriction)
  double cognitive = 1.49;         ///< pull toward particle best
  double social = 1.49;            ///< pull toward swarm best
  double initial_velocity_scale = 0.1;  ///< fraction of box width
  /// Optional seed positions for the first particles (clamped to the box).
  /// Callers with constrained problems seed feasible points here so the
  /// swarm does not start entirely inside a penalty plateau.
  std::vector<Point> initial_points;
};

/// Minimizes `f` over `box`.
Result pso_minimize(const Objective& f, const Box& box, common::Rng& rng,
                    const PsoOptions& options = {});

}  // namespace gptune::opt
