// CMA-ES: covariance matrix adaptation evolution strategy (Hansen).
//
// A strong model-free global optimizer; included as an additional
// OpenTuner-style technique and as an ablation reference against the
// Bayesian tuner on continuous spaces.
#pragma once

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::opt {

struct CmaEsOptions {
  std::size_t max_evaluations = 600;
  std::size_t population = 0;      ///< lambda; 0 means 4 + 3 ln(dim)
  double initial_sigma = 0.3;      ///< step size, fraction of box width
};

/// Minimizes `f` over `box` (points clamped to the box before evaluation).
Result cmaes_minimize(const Objective& f, const Box& box, common::Rng& rng,
                      const CmaEsOptions& options = {});

}  // namespace gptune::opt
