#include "opt/differential_evolution.hpp"

#include <limits>

namespace gptune::opt {

Result differential_evolution_minimize(
    const Objective& f, const Box& box, common::Rng& rng,
    const DifferentialEvolutionOptions& options) {
  const std::size_t d = box.dim();
  const std::size_t np = std::max<std::size_t>(4, options.population);

  std::vector<Point> pop(np, Point(d));
  std::vector<double> fitness(np);
  Result best;
  best.value = std::numeric_limits<double>::infinity();

  auto eval = [&](const Point& x) {
    ++best.evaluations;
    const double v = f(x);
    if (v < best.value) {
      best.value = v;
      best.x = x;
    }
    return v;
  };

  for (std::size_t p = 0; p < np; ++p) {
    for (std::size_t i = 0; i < d; ++i) {
      pop[p][i] = rng.uniform(box.lo[i], box.hi[i]);
    }
    fitness[p] = eval(pop[p]);
  }

  auto pick_distinct = [&](std::size_t exclude) {
    std::size_t r;
    do {
      r = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(np) - 1));
    } while (r == exclude);
    return r;
  };

  while (best.evaluations < options.max_evaluations) {
    for (std::size_t p = 0;
         p < np && best.evaluations < options.max_evaluations; ++p) {
      const std::size_t a = pick_distinct(p);
      std::size_t b = pick_distinct(p);
      while (b == a) b = pick_distinct(p);
      std::size_t c = pick_distinct(p);
      while (c == a || c == b) c = pick_distinct(p);

      Point trial = pop[p];
      const auto forced = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(d) - 1));
      for (std::size_t i = 0; i < d; ++i) {
        if (i == forced || rng.uniform() < options.crossover_probability) {
          trial[i] = pop[a][i] +
                     options.differential_weight * (pop[b][i] - pop[c][i]);
        }
      }
      box.clamp(trial);
      const double trial_f = eval(trial);
      if (trial_f <= fitness[p]) {
        pop[p] = std::move(trial);
        fitness[p] = trial_f;
      }
    }
  }
  return best;
}

}  // namespace gptune::opt
