// Simulated annealing (Kirkpatrick et al. 1983) with geometric cooling.
// One of the model-free "global" methods of paper §5; an OpenTuner-style arm.
#pragma once

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::opt {

struct SimulatedAnnealingOptions {
  std::size_t max_evaluations = 500;
  double initial_temperature = 1.0;
  double cooling_rate = 0.98;      ///< T <- rate * T per step
  double step_scale = 0.15;        ///< proposal stddev as box-width fraction
};

Result simulated_annealing_minimize(
    const Objective& f, const Box& box, common::Rng& rng,
    const SimulatedAnnealingOptions& options = {});

}  // namespace gptune::opt
