#include "opt/nelder_mead.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

namespace gptune::opt {

namespace {

struct SimplexVertex {
  Point x;
  double f = 0.0;
};

// One Nelder–Mead run from a random start; spends at most `budget` evals.
Result run_once(const Objective& f, const Box& box, common::Rng& rng,
                const NelderMeadOptions& opt, std::size_t budget) {
  const std::size_t d = box.dim();
  Result out;
  out.value = std::numeric_limits<double>::infinity();

  auto eval = [&](const Point& x) {
    ++out.evaluations;
    const double v = f(x);
    if (v < out.value) {
      out.value = v;
      out.x = x;
    }
    return v;
  };

  std::vector<SimplexVertex> simplex(d + 1);
  Point origin(d);
  for (std::size_t i = 0; i < d; ++i) {
    origin[i] = rng.uniform(box.lo[i], box.hi[i]);
  }
  simplex[0] = {origin, eval(origin)};
  for (std::size_t v = 1; v <= d; ++v) {
    Point x = origin;
    const std::size_t i = v - 1;
    const double width = box.hi[i] - box.lo[i];
    x[i] += opt.initial_scale * width *
            (x[i] + opt.initial_scale * width <= box.hi[i] ? 1.0 : -1.0);
    box.clamp(x);
    simplex[v] = {x, eval(x)};
  }

  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;
  while (out.evaluations < budget) {
    std::sort(simplex.begin(), simplex.end(),
              [](const SimplexVertex& a, const SimplexVertex& b) {
                return a.f < b.f;
              });
    if (simplex.back().f - simplex.front().f < opt.tolerance) break;

    // Centroid of all but the worst vertex.
    Point centroid(d, 0.0);
    for (std::size_t v = 0; v < d; ++v) {
      for (std::size_t i = 0; i < d; ++i) centroid[i] += simplex[v].x[i];
    }
    for (double& c : centroid) c /= static_cast<double>(d);

    auto affine = [&](double coeff) {
      Point x(d);
      for (std::size_t i = 0; i < d; ++i) {
        x[i] = centroid[i] + coeff * (centroid[i] - simplex.back().x[i]);
      }
      box.clamp(x);
      return x;
    };

    const Point xr = affine(kAlpha);
    const double fr = eval(xr);
    if (fr < simplex.front().f) {
      const Point xe = affine(kGamma);
      const double fe = eval(xe);
      simplex.back() = fe < fr ? SimplexVertex{xe, fe} : SimplexVertex{xr, fr};
    } else if (fr < simplex[d - 1].f) {
      simplex.back() = {xr, fr};
    } else {
      const Point xc = affine(-kRho);
      const double fc = eval(xc);
      if (fc < simplex.back().f) {
        simplex.back() = {xc, fc};
      } else {
        // Shrink toward the best vertex.
        for (std::size_t v = 1; v <= d; ++v) {
          for (std::size_t i = 0; i < d; ++i) {
            simplex[v].x[i] = simplex[0].x[i] +
                              kSigma * (simplex[v].x[i] - simplex[0].x[i]);
          }
          simplex[v].f = eval(simplex[v].x);
          if (out.evaluations >= budget) break;
        }
      }
    }
  }
  return out;
}

}  // namespace

Result nelder_mead_minimize(const Objective& f, const Box& box,
                            common::Rng& rng,
                            const NelderMeadOptions& options) {
  const std::size_t runs = std::max<std::size_t>(1, options.restarts);
  const std::size_t per_run = options.max_evaluations / runs;
  Result best;
  best.value = std::numeric_limits<double>::infinity();
  for (std::size_t r = 0; r < runs; ++r) {
    Result one = run_once(f, box, rng, options, per_run);
    best.evaluations += one.evaluations;
    if (one.value < best.value) {
      best.value = one.value;
      best.x = one.x;
    }
  }
  return best;
}

}  // namespace gptune::opt
