// Shared interfaces for the optimizer suite.
//
// Every optimizer works on a box-constrained continuous problem; the tuner
// core maps its mixed integer/real/categorical spaces into the unit box
// before calling in (see core/space.hpp).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace gptune::opt {

using Point = std::vector<double>;

/// Scalar objective to MINIMIZE.
using Objective = std::function<double(const Point&)>;

/// Objective with analytic gradient (for L-BFGS).
/// Returns f(x) and fills `grad` (resized by the callee if needed).
using GradObjective = std::function<double(const Point&, Point&)>;

/// Vector objective to MINIMIZE component-wise (for NSGA-II).
using MultiObjective = std::function<std::vector<double>(const Point&)>;

/// Axis-aligned box constraints.
struct Box {
  Point lo;
  Point hi;

  std::size_t dim() const { return lo.size(); }

  /// Unit box [0,1]^d.
  static Box unit(std::size_t d) {
    return Box{Point(d, 0.0), Point(d, 1.0)};
  }

  /// Clamps x into the box in place.
  void clamp(Point& x) const {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] < lo[i]) x[i] = lo[i];
      if (x[i] > hi[i]) x[i] = hi[i];
    }
  }

  bool contains(const Point& x) const {
    for (std::size_t i = 0; i < x.size(); ++i) {
      if (x[i] < lo[i] || x[i] > hi[i]) return false;
    }
    return true;
  }
};

/// Result of a single-objective run.
struct Result {
  Point x;
  double value = 0.0;
  std::size_t evaluations = 0;
};

}  // namespace gptune::opt
