#include "opt/genetic.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace gptune::opt {

void sbx_crossover(const Point& p1, const Point& p2, const Box& box,
                   double eta, double probability, common::Rng& rng,
                   Point& c1, Point& c2) {
  const std::size_t d = p1.size();
  c1 = p1;
  c2 = p2;
  if (rng.uniform() > probability) return;
  for (std::size_t i = 0; i < d; ++i) {
    if (rng.uniform() > 0.5) continue;
    if (std::abs(p1[i] - p2[i]) < 1e-14) continue;
    const double u = rng.uniform();
    double beta;
    if (u <= 0.5) {
      beta = std::pow(2.0 * u, 1.0 / (eta + 1.0));
    } else {
      beta = std::pow(1.0 / (2.0 * (1.0 - u)), 1.0 / (eta + 1.0));
    }
    const double mean = 0.5 * (p1[i] + p2[i]);
    const double spread = 0.5 * std::abs(p2[i] - p1[i]);
    c1[i] = mean - beta * spread;
    c2[i] = mean + beta * spread;
  }
  box.clamp(c1);
  box.clamp(c2);
}

void polynomial_mutation(Point& x, const Box& box, double eta,
                         double probability, common::Rng& rng) {
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (rng.uniform() > probability) continue;
    const double lo = box.lo[i], hi = box.hi[i];
    const double width = hi - lo;
    if (width <= 0.0) continue;
    const double u = rng.uniform();
    double delta;
    if (u < 0.5) {
      const double dl = (x[i] - lo) / width;
      delta = std::pow(2.0 * u + (1.0 - 2.0 * u) *
                                     std::pow(1.0 - dl, eta + 1.0),
                       1.0 / (eta + 1.0)) -
              1.0;
    } else {
      const double dr = (hi - x[i]) / width;
      delta = 1.0 - std::pow(2.0 * (1.0 - u) + (2.0 * u - 1.0) *
                                                   std::pow(1.0 - dr,
                                                            eta + 1.0),
                             1.0 / (eta + 1.0));
    }
    x[i] += delta * width;
  }
  box.clamp(x);
}

Result genetic_minimize(const Objective& f, const Box& box, common::Rng& rng,
                        const GeneticOptions& options) {
  const std::size_t d = box.dim();
  const std::size_t pop_size = std::max<std::size_t>(4, options.population);
  const double pm = options.mutation_probability < 0.0
                        ? 1.0 / static_cast<double>(d)
                        : options.mutation_probability;

  struct Individual {
    Point x;
    double f;
  };
  std::vector<Individual> pop(pop_size);

  Result best;
  best.value = std::numeric_limits<double>::infinity();
  auto eval = [&](const Point& x) {
    ++best.evaluations;
    const double v = f(x);
    if (v < best.value) {
      best.value = v;
      best.x = x;
    }
    return v;
  };

  for (auto& ind : pop) {
    ind.x.resize(d);
    for (std::size_t i = 0; i < d; ++i) {
      ind.x[i] = rng.uniform(box.lo[i], box.hi[i]);
    }
    ind.f = eval(ind.x);
  }

  auto tournament = [&]() -> const Individual& {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pop_size) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pop_size) - 1));
    return pop[a].f <= pop[b].f ? pop[a] : pop[b];
  };

  while (best.evaluations < options.max_evaluations) {
    std::vector<Individual> children;
    children.reserve(pop_size);
    while (children.size() < pop_size &&
           best.evaluations + 2 <= options.max_evaluations) {
      Point c1, c2;
      sbx_crossover(tournament().x, tournament().x, box, options.sbx_eta,
                    options.crossover_probability, rng, c1, c2);
      polynomial_mutation(c1, box, options.mutation_eta, pm, rng);
      polynomial_mutation(c2, box, options.mutation_eta, pm, rng);
      children.push_back({c1, eval(c1)});
      children.push_back({c2, eval(c2)});
    }
    if (children.empty()) break;
    // (mu + lambda) elitist survival.
    for (auto& c : children) pop.push_back(std::move(c));
    std::sort(pop.begin(), pop.end(),
              [](const Individual& a, const Individual& b) {
                return a.f < b.f;
              });
    pop.resize(pop_size);
  }
  return best;
}

}  // namespace gptune::opt
