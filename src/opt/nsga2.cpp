#include "opt/nsga2.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "opt/genetic.hpp"

namespace gptune::opt {

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  bool strictly_better = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictly_better = true;
  }
  return strictly_better;
}

std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<std::vector<double>>& values) {
  const std::size_t n = values.size();
  std::vector<std::vector<std::size_t>> dominated_by(n);
  std::vector<std::size_t> domination_count(n, 0);
  std::vector<std::vector<std::size_t>> fronts;

  std::vector<std::size_t> first;
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      if (dominates(values[p], values[q])) {
        dominated_by[p].push_back(q);
      } else if (dominates(values[q], values[p])) {
        ++domination_count[p];
      }
    }
    if (domination_count[p] == 0) first.push_back(p);
  }
  fronts.push_back(std::move(first));

  std::size_t i = 0;
  while (!fronts[i].empty()) {
    std::vector<std::size_t> next;
    for (std::size_t p : fronts[i]) {
      for (std::size_t q : dominated_by[p]) {
        if (--domination_count[q] == 0) next.push_back(q);
      }
    }
    if (next.empty()) break;
    fronts.push_back(std::move(next));
    ++i;
  }
  return fronts;
}

std::vector<double> crowding_distance(
    const std::vector<std::vector<double>>& values,
    const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> distance(n, 0.0);
  if (n <= 2) {
    std::fill(distance.begin(), distance.end(),
              std::numeric_limits<double>::infinity());
    return distance;
  }
  const std::size_t m = values[front[0]].size();
  std::vector<std::size_t> order(n);
  for (std::size_t obj = 0; obj < m; ++obj) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    // Stable on duplicate objective values: ties keep front order, so the
    // distances (and hence survival) are a deterministic function of the
    // input regardless of libstdc++'s introsort pivot choices.
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return values[front[a]][obj] < values[front[b]][obj];
                     });
    const double lo = values[front[order.front()]][obj];
    const double hi = values[front[order.back()]][obj];
    distance[order.front()] = std::numeric_limits<double>::infinity();
    distance[order.back()] = std::numeric_limits<double>::infinity();
    if (hi - lo < 1e-300) continue;
    for (std::size_t i = 1; i + 1 < n; ++i) {
      distance[order[i]] += (values[front[order[i + 1]]][obj] -
                             values[front[order[i - 1]]][obj]) /
                            (hi - lo);
    }
  }
  return distance;
}

std::vector<std::size_t> pareto_filter(
    const std::vector<std::vector<double>>& values) {
  std::vector<std::size_t> keep;
  for (std::size_t i = 0; i < values.size(); ++i) {
    bool is_dominated = false;
    for (std::size_t j = 0; j < values.size(); ++j) {
      if (i != j && dominates(values[j], values[i])) {
        is_dominated = true;
        break;
      }
    }
    if (!is_dominated) keep.push_back(i);
  }
  return keep;
}

ParetoFront nsga2_minimize(const MultiObjective& f, const Box& box,
                           common::Rng& rng, const Nsga2Options& options) {
  const std::size_t d = box.dim();
  const std::size_t pop_size = std::max<std::size_t>(4, options.population);
  const double pm = options.mutation_probability < 0.0
                        ? 1.0 / static_cast<double>(d)
                        : options.mutation_probability;

  struct Individual {
    Point x;
    std::vector<double> f;
    std::size_t rank = 0;
    double crowding = 0.0;
  };
  std::vector<Individual> pop(pop_size);
  for (std::size_t p = 0; p < pop_size; ++p) {
    auto& ind = pop[p];
    if (p < options.initial_points.size() &&
        options.initial_points[p].size() == d) {
      ind.x = options.initial_points[p];
      box.clamp(ind.x);
    } else {
      ind.x.resize(d);
      for (std::size_t i = 0; i < d; ++i) {
        ind.x[i] = rng.uniform(box.lo[i], box.hi[i]);
      }
    }
    ind.f = f(ind.x);
  }

  auto assign_rank_and_crowding = [&](std::vector<Individual>& individuals) {
    std::vector<std::vector<double>> vals(individuals.size());
    for (std::size_t i = 0; i < individuals.size(); ++i) {
      vals[i] = individuals[i].f;
    }
    auto fronts = non_dominated_sort(vals);
    for (std::size_t r = 0; r < fronts.size(); ++r) {
      auto cd = crowding_distance(vals, fronts[r]);
      for (std::size_t i = 0; i < fronts[r].size(); ++i) {
        individuals[fronts[r][i]].rank = r;
        individuals[fronts[r][i]].crowding = cd[i];
      }
    }
    return fronts;
  };
  assign_rank_and_crowding(pop);

  auto crowded_less = [](const Individual& a, const Individual& b) {
    return a.rank < b.rank || (a.rank == b.rank && a.crowding > b.crowding);
  };
  auto tournament = [&]() -> const Individual& {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(pop.size()) - 1));
    return crowded_less(pop[a], pop[b]) ? pop[a] : pop[b];
  };

  for (std::size_t gen = 0; gen < options.generations; ++gen) {
    std::vector<Individual> combined = pop;
    while (combined.size() < 2 * pop_size) {
      Point c1, c2;
      sbx_crossover(tournament().x, tournament().x, box, options.sbx_eta,
                    options.crossover_probability, rng, c1, c2);
      polynomial_mutation(c1, box, options.mutation_eta, pm, rng);
      polynomial_mutation(c2, box, options.mutation_eta, pm, rng);
      combined.push_back({c1, f(c1), 0, 0.0});
      if (combined.size() < 2 * pop_size) {
        combined.push_back({c2, f(c2), 0, 0.0});
      }
    }
    auto fronts = assign_rank_and_crowding(combined);

    // Elitist survival: fill by whole fronts, break ties by crowding.
    std::vector<Individual> next;
    next.reserve(pop_size);
    for (const auto& front : fronts) {
      if (next.size() + front.size() <= pop_size) {
        for (std::size_t idx : front) next.push_back(combined[idx]);
      } else {
        std::vector<std::size_t> sorted = front;
        // Stable on crowding ties (common with duplicate objectives): the
        // surviving subset, and so the final front ordering, cannot drift
        // between runs or standard-library implementations.
        std::stable_sort(sorted.begin(), sorted.end(),
                         [&](std::size_t a, std::size_t b) {
                           return combined[a].crowding > combined[b].crowding;
                         });
        for (std::size_t idx : sorted) {
          if (next.size() >= pop_size) break;
          next.push_back(combined[idx]);
        }
      }
      if (next.size() >= pop_size) break;
    }
    pop = std::move(next);
    assign_rank_and_crowding(pop);
  }

  ParetoFront front;
  std::vector<std::vector<double>> vals(pop.size());
  for (std::size_t i = 0; i < pop.size(); ++i) vals[i] = pop[i].f;
  for (std::size_t idx : pareto_filter(vals)) {
    front.points.push_back(pop[idx].x);
    front.values.push_back(pop[idx].f);
  }
  return front;
}

}  // namespace gptune::opt
