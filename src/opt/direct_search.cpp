#include "opt/direct_search.hpp"

#include <limits>

namespace gptune::opt {

Result random_search_minimize(const Objective& f, const Box& box,
                              common::Rng& rng,
                              std::size_t max_evaluations) {
  const std::size_t d = box.dim();
  Result best;
  best.value = std::numeric_limits<double>::infinity();
  Point x(d);
  for (std::size_t e = 0; e < max_evaluations; ++e) {
    for (std::size_t i = 0; i < d; ++i) {
      x[i] = rng.uniform(box.lo[i], box.hi[i]);
    }
    const double v = f(x);
    ++best.evaluations;
    if (v < best.value) {
      best.value = v;
      best.x = x;
    }
  }
  return best;
}

Result grid_search_minimize(const Objective& f, const Box& box,
                            std::size_t points_per_dim) {
  const std::size_t d = box.dim();
  Result best;
  best.value = std::numeric_limits<double>::infinity();
  if (points_per_dim == 0) return best;

  Point x(d);
  std::vector<std::size_t> index(d, 0);
  for (;;) {
    for (std::size_t i = 0; i < d; ++i) {
      const double frac =
          points_per_dim == 1
              ? 0.5
              : static_cast<double>(index[i]) /
                    static_cast<double>(points_per_dim - 1);
      x[i] = box.lo[i] + frac * (box.hi[i] - box.lo[i]);
    }
    const double v = f(x);
    ++best.evaluations;
    if (v < best.value) {
      best.value = v;
      best.x = x;
    }
    // Odometer increment.
    std::size_t i = 0;
    while (i < d && ++index[i] == points_per_dim) {
      index[i] = 0;
      ++i;
    }
    if (i == d) break;
  }
  return best;
}

}  // namespace gptune::opt
