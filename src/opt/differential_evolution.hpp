// Differential evolution (DE/rand/1/bin). Extra model-free global method
// used in the ablation benches and available as a tuner arm.
#pragma once

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::opt {

struct DifferentialEvolutionOptions {
  std::size_t population = 30;
  std::size_t max_evaluations = 500;
  double differential_weight = 0.7;   ///< F
  double crossover_probability = 0.9; ///< CR
};

Result differential_evolution_minimize(
    const Objective& f, const Box& box, common::Rng& rng,
    const DifferentialEvolutionOptions& options = {});

}  // namespace gptune::opt
