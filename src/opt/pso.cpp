#include "opt/pso.hpp"

#include <limits>

namespace gptune::opt {

Result pso_minimize(const Objective& f, const Box& box, common::Rng& rng,
                    const PsoOptions& options) {
  const std::size_t d = box.dim();
  const std::size_t m = options.swarm_size;

  std::vector<Point> pos(m, Point(d)), vel(m, Point(d)), best_pos(m);
  std::vector<double> best_val(m, std::numeric_limits<double>::infinity());
  Result global;
  global.value = std::numeric_limits<double>::infinity();

  for (std::size_t p = 0; p < m; ++p) {
    if (p < options.initial_points.size() &&
        options.initial_points[p].size() == d) {
      pos[p] = options.initial_points[p];
      box.clamp(pos[p]);
      for (std::size_t i = 0; i < d; ++i) {
        vel[p][i] = rng.uniform(-1.0, 1.0) *
                    options.initial_velocity_scale * (box.hi[i] - box.lo[i]);
      }
    } else {
      for (std::size_t i = 0; i < d; ++i) {
        const double width = box.hi[i] - box.lo[i];
        pos[p][i] = rng.uniform(box.lo[i], box.hi[i]);
        vel[p][i] = rng.uniform(-1.0, 1.0) * options.initial_velocity_scale *
                    width;
      }
    }
    const double v = f(pos[p]);
    ++global.evaluations;
    best_pos[p] = pos[p];
    best_val[p] = v;
    if (v < global.value) {
      global.value = v;
      global.x = pos[p];
    }
  }

  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    for (std::size_t p = 0; p < m; ++p) {
      for (std::size_t i = 0; i < d; ++i) {
        const double r1 = rng.uniform();
        const double r2 = rng.uniform();
        vel[p][i] = options.inertia * vel[p][i] +
                    options.cognitive * r1 * (best_pos[p][i] - pos[p][i]) +
                    options.social * r2 * (global.x[i] - pos[p][i]);
        pos[p][i] += vel[p][i];
        // Reflect at box boundaries to keep particles interior.
        if (pos[p][i] < box.lo[i]) {
          pos[p][i] = box.lo[i];
          vel[p][i] = -0.5 * vel[p][i];
        } else if (pos[p][i] > box.hi[i]) {
          pos[p][i] = box.hi[i];
          vel[p][i] = -0.5 * vel[p][i];
        }
      }
      const double v = f(pos[p]);
      ++global.evaluations;
      if (v < best_val[p]) {
        best_val[p] = v;
        best_pos[p] = pos[p];
        if (v < global.value) {
          global.value = v;
          global.x = pos[p];
        }
      }
    }
  }
  return global;
}

}  // namespace gptune::opt
