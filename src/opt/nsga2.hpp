// NSGA-II (Deb et al. 2002): fast non-dominated sorting, crowding distance,
// elitist (mu + lambda) survival. GPTune's multi-objective search phase
// (paper §3.2, Algorithm 2) runs NSGA-II over the per-objective EI vector.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::opt {

struct Nsga2Options {
  std::size_t population = 60;
  std::size_t generations = 40;
  double crossover_probability = 0.9;
  double mutation_probability = -1.0;  ///< <0 means 1/dim
  double sbx_eta = 15.0;
  double mutation_eta = 20.0;
  /// Optional seed positions for the initial population (clamped to the
  /// box); see PsoOptions::initial_points.
  std::vector<Point> initial_points;
};

/// A set of mutually non-dominating solutions.
struct ParetoFront {
  std::vector<Point> points;
  std::vector<std::vector<double>> values;  ///< same order as points

  std::size_t size() const { return points.size(); }
};

/// Minimizes all components of `f` over `box`; returns the final
/// non-dominated front.
ParetoFront nsga2_minimize(const MultiObjective& f, const Box& box,
                           common::Rng& rng, const Nsga2Options& options = {});

// --- Pareto utilities (shared with the tuner core and metrics) ---

/// True if `a` Pareto-dominates `b` (<= everywhere, < somewhere; minimization).
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Fronts[0] is the non-dominated set, fronts[1] the next layer, etc.
/// Returns indices into `values`.
std::vector<std::vector<std::size_t>> non_dominated_sort(
    const std::vector<std::vector<double>>& values);

/// Crowding distance of each index within one front (Deb et al. §III-B).
std::vector<double> crowding_distance(
    const std::vector<std::vector<double>>& values,
    const std::vector<std::size_t>& front);

/// Indices of the non-dominated subset of `values`.
std::vector<std::size_t> pareto_filter(
    const std::vector<std::vector<double>>& values);

}  // namespace gptune::opt
