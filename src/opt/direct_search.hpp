// The two baseline searches every autotuning paper starts from (paper §5):
// stochastic random search and exhaustive grid search.
#pragma once

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::opt {

/// Uniform random sampling; best of `max_evaluations` draws.
Result random_search_minimize(const Objective& f, const Box& box,
                              common::Rng& rng, std::size_t max_evaluations);

/// Full factorial grid with `points_per_dim` levels per dimension.
/// Evaluation count is points_per_dim^dim — callers keep dim small.
Result grid_search_minimize(const Objective& f, const Box& box,
                            std::size_t points_per_dim);

}  // namespace gptune::opt
