// Limited-memory BFGS with strong-Wolfe line search.
//
// This is the hyperparameter optimizer of the modeling phase (paper §3.1):
// it maximizes the LCM log marginal likelihood from multiple random starts.
// The implementation minimizes, so callers negate.
#pragma once

#include "opt/problem.hpp"

namespace gptune::opt {

struct LbfgsOptions {
  std::size_t max_iterations = 200;
  std::size_t history = 10;          ///< number of (s, y) correction pairs
  double gradient_tolerance = 1e-6;  ///< stop when ||g||_inf below this
  double f_tolerance = 1e-12;        ///< stop on relative f stagnation
  std::size_t max_line_search_steps = 30;
  double wolfe_c1 = 1e-4;            ///< Armijo (sufficient decrease)
  double wolfe_c2 = 0.9;             ///< curvature condition
};

struct LbfgsResult {
  Point x;
  double value = 0.0;
  Point gradient;
  std::size_t iterations = 0;
  std::size_t evaluations = 0;
  bool converged = false;  ///< gradient tolerance reached
};

/// Minimizes `f` from `x0` (unconstrained).
LbfgsResult lbfgs_minimize(const GradObjective& f, const Point& x0,
                           const LbfgsOptions& options = {});

}  // namespace gptune::opt
