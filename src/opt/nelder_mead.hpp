// Nelder–Mead downhill simplex (1965) with box projection and restarts.
// One of the model-free "local" methods of paper §5; an OpenTuner-style arm.
#pragma once

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::opt {

struct NelderMeadOptions {
  std::size_t max_evaluations = 500;
  double initial_scale = 0.2;    ///< simplex edge as fraction of box width
  double tolerance = 1e-10;      ///< spread of simplex values to stop at
  std::size_t restarts = 3;      ///< random restarts within the budget
};

Result nelder_mead_minimize(const Objective& f, const Box& box,
                            common::Rng& rng,
                            const NelderMeadOptions& options = {});

}  // namespace gptune::opt
