#include "opt/lbfgs.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "linalg/matrix.hpp"

namespace gptune::opt {

namespace {

using linalg::axpy;
using linalg::dot;

double inf_norm(const Point& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

struct LineSearchResult {
  double step = 0.0;
  double f = 0.0;
  Point x;
  Point g;
  std::size_t evaluations = 0;
  bool ok = false;
};

// Strong-Wolfe line search (Nocedal & Wright Alg. 3.5/3.6, bisection zoom).
LineSearchResult line_search(const GradObjective& f, const Point& x0,
                             double f0, const Point& g0,
                             const Point& direction,
                             const LbfgsOptions& opt) {
  LineSearchResult out;
  const double d0 = dot(g0, direction);
  if (d0 >= 0.0) return out;  // not a descent direction

  auto eval_at = [&](double alpha, double& fv, Point& xv, Point& gv) {
    xv = x0;
    axpy(alpha, direction, xv);
    fv = f(xv, gv);
    ++out.evaluations;
  };

  double alpha_prev = 0.0, f_prev = f0;
  double alpha = 1.0;
  double alpha_max = 1e6;

  Point x_try, g_try;
  double f_try = 0.0;

  auto zoom = [&](double lo, double flo, double hi) -> bool {
    for (std::size_t i = 0; i < opt.max_line_search_steps; ++i) {
      const double a = 0.5 * (lo + hi);
      eval_at(a, f_try, x_try, g_try);
      if (f_try > f0 + opt.wolfe_c1 * a * d0 || f_try >= flo) {
        hi = a;
      } else {
        const double da = dot(g_try, direction);
        if (std::abs(da) <= -opt.wolfe_c2 * d0) {
          out.step = a;
          out.f = f_try;
          out.x = std::move(x_try);
          out.g = std::move(g_try);
          out.ok = true;
          return true;
        }
        if (da * (hi - lo) >= 0.0) hi = lo;
        lo = a;
        flo = f_try;
      }
      if (std::abs(hi - lo) < 1e-16) break;
    }
    // Accept the best point found if it at least decreases f.
    if (f_try < f0) {
      out.step = 0.5 * (lo + hi);
      out.f = f_try;
      out.x = std::move(x_try);
      out.g = std::move(g_try);
      out.ok = true;
      return true;
    }
    return false;
  };

  for (std::size_t i = 0; i < opt.max_line_search_steps; ++i) {
    eval_at(alpha, f_try, x_try, g_try);
    if (!std::isfinite(f_try)) {
      alpha *= 0.5;  // overflowed; shrink
      continue;
    }
    if (f_try > f0 + opt.wolfe_c1 * alpha * d0 ||
        (i > 0 && f_try >= f_prev)) {
      zoom(alpha_prev, f_prev, alpha);
      return out;
    }
    const double da = dot(g_try, direction);
    if (std::abs(da) <= -opt.wolfe_c2 * d0) {
      out.step = alpha;
      out.f = f_try;
      out.x = std::move(x_try);
      out.g = std::move(g_try);
      out.ok = true;
      return out;
    }
    if (da >= 0.0) {
      zoom(alpha, f_try, alpha_prev);
      return out;
    }
    alpha_prev = alpha;
    f_prev = f_try;
    alpha = std::min(2.0 * alpha, alpha_max);
  }
  return out;
}

}  // namespace

LbfgsResult lbfgs_minimize(const GradObjective& f, const Point& x0,
                           const LbfgsOptions& options) {
  const std::size_t n = x0.size();
  LbfgsResult result;
  result.x = x0;
  result.gradient.resize(n);
  result.value = f(result.x, result.gradient);
  result.evaluations = 1;

  std::deque<Point> s_list, y_list;
  std::deque<double> rho_list;

  for (std::size_t iter = 0; iter < options.max_iterations; ++iter) {
    result.iterations = iter;
    if (inf_norm(result.gradient) <= options.gradient_tolerance) {
      result.converged = true;
      return result;
    }

    // Two-loop recursion: d = -H g.
    Point q = result.gradient;
    std::vector<double> alphas(s_list.size());
    for (std::size_t k = s_list.size(); k > 0; --k) {
      const std::size_t i = k - 1;
      alphas[i] = rho_list[i] * dot(s_list[i], q);
      axpy(-alphas[i], y_list[i], q);
    }
    // Initial Hessian scaling gamma = s^T y / y^T y.
    if (!s_list.empty()) {
      const double sy = dot(s_list.back(), y_list.back());
      const double yy = dot(y_list.back(), y_list.back());
      if (yy > 0.0) linalg::scale(q, sy / yy);
    }
    for (std::size_t i = 0; i < s_list.size(); ++i) {
      const double beta = rho_list[i] * dot(y_list[i], q);
      axpy(alphas[i] - beta, s_list[i], q);
    }
    Point direction = q;
    linalg::scale(direction, -1.0);

    LineSearchResult ls =
        line_search(f, result.x, result.value, result.gradient, direction,
                    options);
    result.evaluations += ls.evaluations;
    if (!ls.ok) {
      // Try steepest descent once; if that also fails, stop.
      Point sd = result.gradient;
      linalg::scale(sd, -1.0 / std::max(inf_norm(result.gradient), 1e-12));
      ls = line_search(f, result.x, result.value, result.gradient, sd,
                       options);
      result.evaluations += ls.evaluations;
      if (!ls.ok) return result;
      direction = std::move(sd);
    }

    Point s = ls.x;
    for (std::size_t i = 0; i < n; ++i) s[i] -= result.x[i];
    Point y = ls.g;
    for (std::size_t i = 0; i < n; ++i) y[i] -= result.gradient[i];

    const double f_old = result.value;
    result.x = std::move(ls.x);
    result.value = ls.f;
    result.gradient = std::move(ls.g);

    const double sy = dot(s, y);
    if (sy > 1e-12 * linalg::norm2(s) * linalg::norm2(y)) {
      s_list.push_back(std::move(s));
      y_list.push_back(std::move(y));
      rho_list.push_back(1.0 / sy);
      if (s_list.size() > options.history) {
        s_list.pop_front();
        y_list.pop_front();
        rho_list.pop_front();
      }
    }

    if (std::abs(f_old - result.value) <=
        options.f_tolerance * (std::abs(f_old) + 1e-12)) {
      return result;
    }
  }
  return result;
}

}  // namespace gptune::opt
