#include "opt/cmaes.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "linalg/eigen_sym.hpp"
#include "linalg/matrix.hpp"

namespace gptune::opt {

Result cmaes_minimize(const Objective& f, const Box& box, common::Rng& rng,
                      const CmaEsOptions& options) {
  const std::size_t d = box.dim();
  const double nd = static_cast<double>(d);

  const std::size_t lambda =
      options.population > 0
          ? options.population
          : static_cast<std::size_t>(4.0 + std::floor(3.0 * std::log(nd)));
  const std::size_t mu = lambda / 2;

  // Log-linear recombination weights.
  std::vector<double> weights(mu);
  double wsum = 0.0;
  for (std::size_t i = 0; i < mu; ++i) {
    weights[i] = std::log(static_cast<double>(mu) + 0.5) -
                 std::log(static_cast<double>(i + 1));
    wsum += weights[i];
  }
  for (double& w : weights) w /= wsum;
  double mueff = 0.0;
  for (double w : weights) mueff += w * w;
  mueff = 1.0 / mueff;

  // Strategy parameters (Hansen's defaults).
  const double cc = (4.0 + mueff / nd) / (nd + 4.0 + 2.0 * mueff / nd);
  const double cs = (mueff + 2.0) / (nd + mueff + 5.0);
  const double c1 = 2.0 / ((nd + 1.3) * (nd + 1.3) + mueff);
  const double cmu = std::min(
      1.0 - c1, 2.0 * (mueff - 2.0 + 1.0 / mueff) /
                    ((nd + 2.0) * (nd + 2.0) + mueff));
  const double damps =
      1.0 + 2.0 * std::max(0.0, std::sqrt((mueff - 1.0) / (nd + 1.0)) - 1.0) +
      cs;
  const double chi_n =
      std::sqrt(nd) * (1.0 - 1.0 / (4.0 * nd) + 1.0 / (21.0 * nd * nd));

  // State: mean in normalized coordinates (work in box units directly).
  Point mean(d);
  std::vector<double> width(d);
  for (std::size_t i = 0; i < d; ++i) {
    width[i] = box.hi[i] - box.lo[i];
    mean[i] = rng.uniform(box.lo[i], box.hi[i]);
  }
  double sigma = options.initial_sigma;
  linalg::Matrix c_mat = linalg::Matrix::identity(d);
  Point p_c(d, 0.0), p_s(d, 0.0);

  Result best;
  best.value = std::numeric_limits<double>::infinity();

  linalg::Matrix bd = linalg::Matrix::identity(d);  // B * diag(sqrt(w))
  linalg::Matrix b_mat = linalg::Matrix::identity(d);
  Point d_vec(d, 1.0);
  std::size_t eigen_stale = 0;

  while (best.evaluations < options.max_evaluations) {
    // Refresh the eigendecomposition occasionally.
    if (eigen_stale == 0) {
      auto eig = linalg::eigen_sym(c_mat);
      b_mat = eig.vectors;
      for (std::size_t i = 0; i < d; ++i) {
        d_vec[i] = std::sqrt(std::max(eig.values[i], 1e-20));
      }
      for (std::size_t r = 0; r < d; ++r) {
        for (std::size_t col = 0; col < d; ++col) {
          bd(r, col) = b_mat(r, col) * d_vec[col];
        }
      }
      eigen_stale = 1 + d / 10;
    }
    --eigen_stale;

    // Sample lambda offspring y_k = B D z_k.
    struct Offspring {
      Point x;       // evaluated (clamped) point
      Point y;       // pre-clamp step in C-coordinates
      double value;
    };
    std::vector<Offspring> pop(lambda);
    std::size_t evaluated = 0;
    for (auto& o : pop) {
      Point z(d);
      for (double& v : z) v = rng.normal();
      o.y.assign(d, 0.0);
      for (std::size_t r = 0; r < d; ++r) {
        double s = 0.0;
        for (std::size_t col = 0; col < d; ++col) s += bd(r, col) * z[col];
        o.y[r] = s;
      }
      o.x.resize(d);
      for (std::size_t i = 0; i < d; ++i) {
        o.x[i] = mean[i] + sigma * o.y[i] * width[i];
      }
      box.clamp(o.x);
      o.value = f(o.x);
      ++best.evaluations;
      ++evaluated;
      if (o.value < best.value) {
        best.value = o.value;
        best.x = o.x;
      }
      if (best.evaluations >= options.max_evaluations) break;
    }
    // A truncated final generation cannot drive a meaningful update.
    pop.resize(evaluated);
    if (pop.size() < 2) break;
    std::sort(pop.begin(), pop.end(),
              [](const Offspring& a, const Offspring& b) {
                return a.value < b.value;
              });

    // Recombination: new mean and the weighted step y_w.
    Point y_w(d, 0.0);
    for (std::size_t i = 0; i < std::min(mu, pop.size()); ++i) {
      for (std::size_t k = 0; k < d; ++k) {
        y_w[k] += weights[i] * pop[i].y[k];
      }
    }
    for (std::size_t k = 0; k < d; ++k) {
      mean[k] += sigma * y_w[k] * width[k];
      mean[k] = std::clamp(mean[k], box.lo[k], box.hi[k]);
    }

    // Evolution paths. C^{-1/2} y = B D^{-1} B^T y.
    Point tmp(d, 0.0);
    for (std::size_t r = 0; r < d; ++r) {
      double s = 0.0;
      for (std::size_t k = 0; k < d; ++k) s += b_mat(k, r) * y_w[k];
      tmp[r] = s / d_vec[r];
    }
    Point c_inv_sqrt_yw(d, 0.0);
    for (std::size_t r = 0; r < d; ++r) {
      double s = 0.0;
      for (std::size_t k = 0; k < d; ++k) s += b_mat(r, k) * tmp[k];
      c_inv_sqrt_yw[r] = s;
    }
    for (std::size_t k = 0; k < d; ++k) {
      p_s[k] = (1.0 - cs) * p_s[k] +
               std::sqrt(cs * (2.0 - cs) * mueff) * c_inv_sqrt_yw[k];
    }
    const double ps_norm = linalg::norm2(p_s);
    const bool hsig =
        ps_norm / std::sqrt(1.0 - std::pow(1.0 - cs,
                                           2.0 * (best.evaluations /
                                                  std::max<std::size_t>(
                                                      1, lambda)))) <
        (1.4 + 2.0 / (nd + 1.0)) * chi_n;
    for (std::size_t k = 0; k < d; ++k) {
      p_c[k] = (1.0 - cc) * p_c[k] +
               (hsig ? std::sqrt(cc * (2.0 - cc) * mueff) * y_w[k] : 0.0);
    }

    // Covariance update: rank-1 (p_c) + rank-mu (weighted steps).
    const double c1a =
        c1 * (1.0 - (hsig ? 0.0 : 1.0) * cc * (2.0 - cc));
    for (std::size_t r = 0; r < d; ++r) {
      for (std::size_t col = 0; col < d; ++col) {
        double rank_mu = 0.0;
        for (std::size_t i = 0; i < std::min(mu, pop.size()); ++i) {
          rank_mu += weights[i] * pop[i].y[r] * pop[i].y[col];
        }
        c_mat(r, col) = (1.0 - c1a - cmu) * c_mat(r, col) +
                        c1 * p_c[r] * p_c[col] + cmu * rank_mu;
      }
    }

    // Step-size control.
    sigma *= std::exp((cs / damps) * (ps_norm / chi_n - 1.0));
    sigma = std::clamp(sigma, 1e-12, 10.0);
  }
  return best;
}

}  // namespace gptune::opt
