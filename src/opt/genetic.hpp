// Real-coded genetic algorithm: binary-tournament selection, simulated
// binary crossover (SBX), polynomial mutation, elitism.
// A model-free "global" method (paper §5); an OpenTuner-style arm; its
// variation operators are shared with NSGA-II.
#pragma once

#include "common/rng.hpp"
#include "opt/problem.hpp"

namespace gptune::opt {

struct GeneticOptions {
  std::size_t population = 30;
  std::size_t max_evaluations = 500;
  double crossover_probability = 0.9;
  double mutation_probability = -1.0;  ///< <0 means 1/dim
  double sbx_eta = 15.0;               ///< SBX distribution index
  double mutation_eta = 20.0;          ///< polynomial mutation index
};

Result genetic_minimize(const Objective& f, const Box& box, common::Rng& rng,
                        const GeneticOptions& options = {});

// --- variation operators shared with NSGA-II ---

/// Simulated binary crossover: produces two children from two parents.
void sbx_crossover(const Point& p1, const Point& p2, const Box& box,
                   double eta, double probability, common::Rng& rng,
                   Point& c1, Point& c2);

/// Polynomial mutation in place.
void polynomial_mutation(Point& x, const Box& box, double eta,
                         double probability, common::Rng& rng);

}  // namespace gptune::opt
