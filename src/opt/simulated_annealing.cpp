#include "opt/simulated_annealing.hpp"

#include <cmath>
#include <limits>

namespace gptune::opt {

Result simulated_annealing_minimize(const Objective& f, const Box& box,
                                    common::Rng& rng,
                                    const SimulatedAnnealingOptions& options) {
  const std::size_t d = box.dim();
  Result best;

  Point current(d);
  for (std::size_t i = 0; i < d; ++i) {
    current[i] = rng.uniform(box.lo[i], box.hi[i]);
  }
  double current_f = f(current);
  best.evaluations = 1;
  best.x = current;
  best.value = current_f;

  double temperature = options.initial_temperature;
  while (best.evaluations < options.max_evaluations) {
    Point proposal = current;
    for (std::size_t i = 0; i < d; ++i) {
      const double width = box.hi[i] - box.lo[i];
      proposal[i] += rng.normal(0.0, options.step_scale * width * temperature /
                                          options.initial_temperature);
    }
    box.clamp(proposal);
    const double proposal_f = f(proposal);
    ++best.evaluations;

    const double delta = proposal_f - current_f;
    if (delta <= 0.0 ||
        rng.uniform() < std::exp(-delta / std::max(temperature, 1e-12))) {
      current = std::move(proposal);
      current_f = proposal_f;
      if (current_f < best.value) {
        best.value = current_f;
        best.x = current;
      }
    }
    temperature *= options.cooling_rate;
  }
  return best;
}

}  // namespace gptune::opt
