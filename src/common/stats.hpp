// Small statistics helpers shared across the library: summary statistics,
// normal distribution functions used by Expected Improvement, and an online
// accumulator for streaming means/variances.
#pragma once

#include <cstddef>
#include <vector>

namespace gptune::common {

/// Arithmetic mean; 0 for an empty range.
double mean(const std::vector<double>& v);

/// Unbiased sample variance; 0 for fewer than two elements.
double variance(const std::vector<double>& v);

/// Square root of `variance`.
double stddev(const std::vector<double>& v);

/// Minimum element; +inf for an empty range.
double min(const std::vector<double>& v);

/// Maximum element; -inf for an empty range.
double max(const std::vector<double>& v);

/// Median (average of middle two for even sizes); NaN for an empty range.
double median(std::vector<double> v);

/// Linear-interpolated quantile, q in [0, 1]; NaN for an empty range.
double quantile(std::vector<double> v, double q);

/// Standard normal probability density.
double normal_pdf(double z);

/// Standard normal cumulative distribution (via erfc for tail accuracy).
double normal_cdf(double z);

/// Welford online accumulator for mean/variance without storing samples.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0; }
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace gptune::common
