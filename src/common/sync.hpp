// Annotated synchronization primitives for the thread-safety analysis.
//
// Clang's -Wthread-safety can only reason about lock types that carry
// capability attributes, and libstdc++'s std::mutex does not. These thin
// wrappers add the attributes (common/annotations.hpp) without changing
// behavior: Mutex IS-A std::mutex for locking purposes, MutexLock is a
// relockable scoped guard over it, and CondVar waits on a MutexLock. The
// native() accessors expose the underlying std:: objects for the rtcheck
// hooks, which identify waits by raw std::mutex*/std::condition_variable*
// (runtime/rtcheck.hpp) — handing the native handle to a checker does not
// transfer the capability, so those calls stay inside annotated code.
//
// Everything here is header-only and zero-overhead: off Clang the
// attributes vanish and each wrapper is exactly its std:: member.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/annotations.hpp"

namespace gptune::common {

/// std::mutex with capability attributes.
class GPTUNE_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() GPTUNE_ACQUIRE() { mu_.lock(); }
  void unlock() GPTUNE_RELEASE() { mu_.unlock(); }
  bool try_lock() GPTUNE_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// The raw handle, for rtcheck wait registration and CondVar interop.
  /// Locking through it bypasses the analysis — only hand it to code that
  /// identifies the mutex rather than acquires it.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped guard over a Mutex (a relockable std::unique_lock): acquires in
/// the constructor, releases in the destructor, and supports mid-scope
/// unlock()/lock() pairs (the mailbox wait loops need them).
class GPTUNE_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) GPTUNE_ACQUIRE(mu) : lock_(mu.native()) {}
  ~MutexLock() GPTUNE_RELEASE() = default;
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void unlock() GPTUNE_RELEASE() { lock_.unlock(); }
  void lock() GPTUNE_ACQUIRE() { lock_.lock(); }
  bool owns_lock() const { return lock_.owns_lock(); }

  /// The raw handle, for CondVar::wait* — which unlocks and relocks it,
  /// leaving the capability state unchanged across the call.
  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

/// std::condition_variable waiting on a MutexLock. The waits are not
/// annotated with capability requirements (a scoped guard is not a
/// capability expression); the caller holds the lock by construction and
/// the guarded-member accesses around the wait keep the analysis honest.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

  void wait(MutexLock& lock) { cv_.wait(lock.native()); }

  /// Predicate waits: `pred` runs with the lock held. Under Clang, write
  /// the lambda as `[&]() GPTUNE_REQUIRES(mu) { ... }` when it touches
  /// guarded members, so the analysis knows the lock protects the body.
  template <typename Pred>
  void wait(MutexLock& lock, Pred pred) GPTUNE_NO_THREAD_SAFETY_ANALYSIS {
    cv_.wait(lock.native(), std::move(pred));
  }

  template <typename Clock, typename Duration>
  std::cv_status wait_until(
      MutexLock& lock,
      const std::chrono::time_point<Clock, Duration>& deadline) {
    return cv_.wait_until(lock.native(), deadline);
  }

  /// The raw handle, for rtcheck wait registration.
  std::condition_variable& native() { return cv_; }

 private:
  std::condition_variable cv_;
};

}  // namespace gptune::common
