// Wall-clock stopwatch (header-only).
#pragma once

#include <chrono>

namespace gptune::common {

/// Monotonic stopwatch; starts on construction.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace gptune::common
