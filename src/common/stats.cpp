#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace gptune::common {

double mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return s / static_cast<double>(v.size() - 1);
}

double stddev(const std::vector<double>& v) { return std::sqrt(variance(v)); }

double min(const std::vector<double>& v) {
  double m = std::numeric_limits<double>::infinity();
  for (double x : v) m = std::min(m, x);
  return m;
}

double max(const std::vector<double>& v) {
  double m = -std::numeric_limits<double>::infinity();
  for (double x : v) m = std::max(m, x);
  return m;
}

double median(std::vector<double> v) { return quantile(std::move(v), 0.5); }

double quantile(std::vector<double> v, double q) {
  if (v.empty()) return std::numeric_limits<double>::quiet_NaN();
  q = std::clamp(q, 0.0, 1.0);
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::numbers::pi);
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::numbers::sqrt2);
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace gptune::common
