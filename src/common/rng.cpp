#include "common/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>
#include <stdexcept>

namespace gptune::common {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  return lo + (hi - lo) * uniform();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % span;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % span);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu_log, double sigma_log) {
  return std::exp(normal(mu_log, sigma_log));
}

double Rng::gamma(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("gamma: shape and scale must be positive");
  }
  if (shape < 1.0) {
    // Boost to shape+1 and correct with a power of a uniform.
    const double u = uniform();
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x, v;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: weights must sum to > 0");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(i) - 1));
    std::swap(idx[i - 1], idx[j]);
  }
  return idx;
}

Rng Rng::split() {
  Rng child(0);
  std::uint64_t s = next_u64();
  for (auto& w : child.state_) w = splitmix64(s);
  return child;
}

}  // namespace gptune::common
