// Minimal leveled logging through one shared thread-safe sink.
//
// Used by the tuner to report phase progress (the paper's "stats:" runlog)
// without polluting bench stdout, which carries the reproduced table rows.
// Each line is tagged `[LEVEL][role/rank]` with the calling thread's
// telemetry identity — the same identity trace spans carry — so worker
// output is attributable. The threshold defaults to warn and is settable
// from the environment: GPTUNE_LOG=debug|info|warn|error|off.
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace gptune::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped. Initialized from
/// GPTUNE_LOG on first use (default: kWarn); set_log_level overrides.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Where formatted lines go. The default sink writes to stderr; tests swap
/// in a capturing sink. Called with the full formatted line, one at a time,
/// under the logging mutex (thread-safe by construction). nullptr restores
/// the default.
using LogSink = std::function<void(const std::string& line)>;
void set_log_sink(LogSink sink);

/// Emits one line `[LEVEL][role/rank] message` through the sink if `level`
/// passes the threshold.
void log_message(LogLevel level, const std::string& message);

namespace detail {
inline void append_all(std::ostringstream&) {}
template <typename T, typename... Rest>
void append_all(std::ostringstream& os, const T& v, const Rest&... rest) {
  os << v;
  append_all(os, rest...);
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  if (log_level() > LogLevel::kDebug) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(LogLevel::kDebug, os.str());
}

template <typename... Args>
void log_info(const Args&... args) {
  if (log_level() > LogLevel::kInfo) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(LogLevel::kInfo, os.str());
}

template <typename... Args>
void log_warn(const Args&... args) {
  if (log_level() > LogLevel::kWarn) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(LogLevel::kWarn, os.str());
}

template <typename... Args>
void log_error(const Args&... args) {
  if (log_level() > LogLevel::kError) return;
  std::ostringstream os;
  detail::append_all(os, args...);
  log_message(LogLevel::kError, os.str());
}

}  // namespace gptune::common
