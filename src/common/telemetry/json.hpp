// Minimal JSON reader for telemetry artifacts (trace files, metrics
// snapshots, bench JSON). Recursive-descent, no dependencies; object
// members keep their source order (vector of pairs, not a hash map) so
// consumers never iterate an unordered container. This is a reader for
// our own well-formed output plus validation in tests/tools — not a
// general-purpose JSON library.
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

namespace gptune::telemetry {

/// Writer-side escaping shared by every JSON emitter in the tree
/// (telemetry traces/metrics, flight-recorder dumps, run manifests):
/// `"` and `\` are backslash-escaped and every control character below
/// 0x20 is rendered as `\u00XX`, so span names and log lines containing
/// newlines/tabs can never corrupt a snapshot. Returns the escaped text
/// WITHOUT surrounding quotes.
std::string json_escape(const std::string& raw);

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_object() const { return type_ == Type::kObject; }
  bool is_array() const { return type_ == Type::kArray; }

  /// Value accessors; wrong-type access returns the neutral value
  /// (false / 0.0 / "").
  bool as_bool() const { return type_ == Type::kBool && bool_; }
  double as_number() const { return type_ == Type::kNumber ? number_ : 0.0; }
  const std::string& as_string() const { return string_; }

  /// Array elements (empty unless is_array()).
  const std::vector<JsonValue>& items() const { return items_; }
  /// Object members in source order (empty unless is_object()).
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }
  /// First member with `key`, or nullptr.
  const JsonValue* find(const std::string& key) const;

  /// Parses `text`; on failure returns a kNull value and sets `error`
  /// (when non-null) to a one-line description with offset.
  static JsonValue parse(const std::string& text, std::string* error = nullptr);

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  friend class JsonParser;
};

}  // namespace gptune::telemetry
