// Flight recorder — always-on post-mortem ring buffers (DESIGN.md §3.12).
//
// The trace/metrics layer (telemetry.hpp) flushes at clean exit, which is
// exactly when a crashed, hung, or killed run never arrives. The flight
// recorder keeps a *fixed-size* per-thread ring of the most recent
// spans/instants/log lines — always, even when GPTUNE_TRACE is unset —
// and dumps it in three situations:
//
//   * fatal signals (SIGSEGV/SIGABRT): an async-signal-safe writer walks
//     the rings and writes `<GPTUNE_DUMP_DIR>/flight_dump_crash.json`
//     before the process dies;
//   * rtcheck findings: deadlock/collective-mismatch reports embed the
//     last-N-events timeline per rank (timeline_text()) and, when a dump
//     dir is configured, write a full `flight_dump_<seq>.json`;
//   * heartbeat: with `GPTUNE_HEARTBEAT=<virtual-secs>` set, every time
//     the process-wide virtual clock advances by that much a snapshot
//     (`heartbeat.json`: metrics + recent events) is rewritten, so a
//     service-style run emits progress without waiting for exit.
//
// Cost model: one bounded ring write per span/instant/log line (a memcpy
// into preallocated storage under an uncontended per-ring mutex) — cheap
// enough to leave on everywhere. Like the rest of the telemetry layer it
// is observe-only (nothing reads it back into tuner decisions; trajectory
// bitwise identical on/off, tier-1 asserted) and compiles away entirely
// under -DGPTUNE_TELEMETRY=OFF.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace gptune::telemetry::flight_recorder {

/// What one ring entry records. Span begin/end pair up a scope; kInstant
/// is a point event; kLog carries a copied log line in the entry text.
enum class EventKind : std::uint8_t {
  kSpanBegin = 0,
  kSpanEnd = 1,
  kInstant = 2,
  kLog = 3,
};

#if defined(GPTUNE_TELEMETRY)

/// Events per thread ring; the ring keeps the most recent kRingCapacity
/// and overwrites the oldest (wraparound is tier-1 tested).
inline constexpr std::size_t kRingCapacity = 64;
/// Max text payload copied into one entry (longer text is truncated).
inline constexpr std::size_t kTextCapacity = 96;
/// Max concurrently tracked thread rings; rings of exited threads are
/// reused, rings of live threads past the cap drop events (counted).
inline constexpr std::size_t kMaxRings = 128;

/// Mirrors telemetry::set_identity for the calling thread's ring, so dump
/// timelines group events under the same "role/rank" labels as traces.
/// Called by telemetry::set_identity — instrumented code never needs to.
void set_identity(const char* role, int rank);

/// Records one event with literal category/name (`cat`/`name` must point
/// at process-lifetime storage, like telemetry::Span arguments).
void note(EventKind kind, const char* cat, const char* name);

/// Records one event whose text is *copied* (truncated to kTextCapacity)
/// into the ring entry — for log lines and formatted detail.
void note_text(EventKind kind, const char* cat, const char* text);

/// Dump directory. configure_dump_dir("") disables file dumps (recording
/// continues); a non-empty dir enables them and installs the
/// SIGSEGV/SIGABRT handlers. Reads GPTUNE_DUMP_DIR on first use.
void configure_dump_dir(std::string dir);
bool dump_dir_configured();

/// Heartbeat period in *virtual* seconds (0 disables). Reads
/// GPTUNE_HEARTBEAT on first use. Called by telemetry::advance_virtual;
/// when the process-wide virtual clock crosses the next threshold,
/// `<dir>/heartbeat.json` is rewritten with metrics + recent events.
void configure_heartbeat(double virtual_seconds);

/// Internal: accumulates `seconds` onto the process-wide virtual clock
/// and writes a heartbeat snapshot when a threshold is crossed.
void heartbeat_tick(double seconds);

/// Cooperative dump (takes ring locks): writes
/// `<dir>/flight_dump_<seq>.json` with `reason` and every ring's recent
/// events. Returns false when no dump dir is configured or the write
/// failed. Safe from any thread; NOT safe from a signal handler.
bool dump_now(const char* reason);

/// The dump document as a JSON string (what dump_now writes) — for tests
/// and the heartbeat snapshot.
std::string dump_json(const char* reason);

/// Human-readable per-rank timeline of the last `last_n` events of every
/// ring ("  [role/rank] kind cat/name ..."), newest last. Embedded into
/// rtcheck deadlock/collective-mismatch reports.
std::string timeline_text(std::size_t last_n = 16);

/// Async-signal-safe dump: walks the rings without locks or allocation
/// and write(2)s JSON to `fd`. Only for fatal-signal handlers (reads may
/// race with writers — the process is dying); reentrancy is tier-1
/// tested via a raised signal.
void dump_signal_safe(int fd, const char* reason);

/// Events dropped because more than kMaxRings threads were live at once.
std::uint64_t dropped_events();

/// Forgets dump dir/heartbeat configuration and un-latches the env reads
/// (ring contents and claims survive — they are thread-owned). Tests only.
void reset_for_testing();

#else  // !defined(GPTUNE_TELEMETRY) — every hook collapses to a no-op.

inline void set_identity(const char*, int) {}
inline void note(EventKind, const char*, const char*) {}
inline void note_text(EventKind, const char*, const char*) {}
inline void configure_dump_dir(std::string) {}
inline bool dump_dir_configured() { return false; }
inline void configure_heartbeat(double) {}
inline void heartbeat_tick(double) {}
inline bool dump_now(const char*) { return false; }
inline std::string dump_json(const char*) {
  return "{\"schema\":\"gptune-flight-dump/1\",\"events\":[]}\n";
}
inline std::string timeline_text(std::size_t = 16) { return ""; }
inline void dump_signal_safe(int, const char*) {}
inline std::uint64_t dropped_events() { return 0; }
inline void reset_for_testing() {}

#endif  // GPTUNE_TELEMETRY

}  // namespace gptune::telemetry::flight_recorder
