// Telemetry layer: Chrome-trace spans + a counters/gauges/histograms
// registry (DESIGN.md §3.7).
//
// The paper's central performance claim (Fig. 1 / Fig. 3) is about where
// time goes *inside* the tuner — modeling vs. search vs. objective phases
// across master/worker groups. This module makes that observable without
// printf archaeology:
//
//   * Tracing. RAII `Span`s and `instant()` events carry the recording
//     thread's rank/worker identity and dual timestamps — wall clock plus
//     the thread's shadow virtual clock (see runtime/virtual_clock.hpp) —
//     and are appended to per-thread lock-free buffers. `trace_json()`
//     renders everything as Chrome `trace_event` JSON, loadable in
//     chrome://tracing or https://ui.perfetto.dev.
//   * Metrics. Named counters, gauges and power-of-two histograms, always
//     cheap enough to leave on (one relaxed atomic op); `metrics_json()`
//     snapshots them with stable key order.
//   * Identity. Each runtime thread declares who it is (role + rank:
//     "rank/0", "objective/3", "pool/1", ...) once via `set_identity`;
//     trace spans, metric dumps and common/log lines all tag with the same
//     identity.
//
// Toggling. Tracing is off unless `GPTUNE_TRACE=<path>` is set in the
// environment (or `configure_trace` is called); metrics snapshots are
// written at process exit when `GPTUNE_METRICS=<path>` is set. Like
// runtime/rtcheck, the whole layer is compile-time removable: configure
// with -DGPTUNE_TELEMETRY=OFF and every hook below collapses to an inline
// no-op.
//
// Determinism contract: telemetry observes, it never steers. Timestamps
// and counters are recorded but no tuner code path may branch on them, so
// the tuning trajectory is bitwise identical with tracing on or off
// (enforced by tests/test_telemetry.cpp).
#pragma once

#include <cstdint>
#include <string>

#if defined(GPTUNE_TELEMETRY)
#include <atomic>
#endif

namespace gptune::telemetry {

/// Who the calling thread is, in paper Fig. 1 terms: a role ("main",
/// "rank", "objective", "search", "pool", ...) plus a rank within it.
/// `role` must point at storage that outlives the process (string
/// literals); identities are set once per thread by the runtime layer.
struct Identity {
  const char* role = "main";
  int rank = 0;
};

#if defined(GPTUNE_TELEMETRY)

// --- identity -------------------------------------------------------------

/// Declares the calling thread's identity; subsequent spans, instants and
/// log lines from this thread carry it. `role` must be a string literal.
void set_identity(const char* role, int rank);
Identity identity();

// --- runtime toggles ------------------------------------------------------

/// True when span/instant recording is active. One relaxed atomic load;
/// reads GPTUNE_TRACE from the environment on first use.
bool trace_enabled();
/// True when a metrics snapshot will be written at exit (GPTUNE_METRICS).
bool metrics_enabled();

/// Programmatic overrides (tests, benches). A non-empty path enables
/// recording and is where flush() writes; "" disables.
void configure_trace(std::string path);
void configure_metrics(std::string path);

// --- shadow virtual clock -------------------------------------------------

/// Advances the calling thread's virtual clock (seconds). Instrumented
/// sites that know a virtual cost (the evaluation engine's per-item cost,
/// the trainer's restart times) charge it here so spans carry both wall
/// and virtual timestamps. Observed only — never read back by tuner code.
void advance_virtual(double seconds);
/// Current value of the calling thread's virtual clock.
double virtual_clock();

// --- tracing --------------------------------------------------------------

/// RAII span: records one Chrome `ph:"X"` (complete) event covering the
/// scope's lifetime. `category`/`name` must be string literals. Costs one
/// relaxed load when tracing is off.
class Span {
 public:
  Span(const char* category, const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches one numeric argument, rendered under the event's "args".
  /// `key` must be a string literal; the last call wins.
  void arg(const char* key, double value);

 private:
  const char* category_;
  const char* name_;
  const char* arg_key_ = nullptr;
  double arg_value_ = 0.0;
  double start_us_ = 0.0;
  double vstart_ = 0.0;
  bool active_;
};

/// Records one instant (`ph:"i"`, thread-scoped) event.
void instant(const char* category, const char* name);

// --- metrics --------------------------------------------------------------

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-value-wins instantaneous measurement.
class Gauge {
 public:
  void set(double value);
  double value() const;

 private:
  std::atomic<std::uint64_t> bits_{0};  ///< double stored as bit pattern
};

/// Power-of-two-bucket histogram with count/sum/min/max.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(double value);
  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double sum() const;
  double min() const;
  double max() const;
  std::uint64_t bucket_count(std::size_t bucket) const;
  /// Bucket-interpolated quantile estimate (q in [0,1], clamped), exact to
  /// within one power-of-two bucket and clamped to the observed [min, max].
  /// Snapshots p50/p95/p99 into metrics_json(). Returns 0 when empty.
  double quantile(double q) const;
  /// Inclusive lower bound of `bucket` (0 for the nonpositive bucket).
  static double bucket_floor(std::size_t bucket);
  /// Bucket index a value lands in.
  static std::size_t bucket_of(double value);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};
  std::atomic<std::uint64_t> min_bits_;
  std::atomic<std::uint64_t> max_bits_;

 public:
  Histogram();
};

/// Named lookup (created on first use; references stay valid for the
/// process lifetime). Call sites on hot paths should cache the reference:
///   static auto& c = telemetry::counter("eval.items");
Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

// --- output ---------------------------------------------------------------

/// All buffered trace events as Chrome trace_event JSON (an object with a
/// "traceEvents" array plus thread-name metadata for every identity).
std::string trace_json();

/// Snapshot of every registered counter/gauge/histogram as JSON with
/// stable (sorted) key order.
std::string metrics_json();

/// Writes trace_json()/metrics_json() to the configured paths (no-op for
/// unconfigured outputs). Registered atexit when env toggles are present,
/// so instrumented binaries need no code changes to emit telemetry.
void flush();

/// Zeroes every metric and un-latches the env toggles so the next
/// enabled-check re-reads GPTUNE_TRACE/GPTUNE_METRICS (tests only —
/// metric references stay valid; buffered trace events are kept).
void reset_for_testing();

#else  // !defined(GPTUNE_TELEMETRY) — every hook collapses to a no-op.

inline void set_identity(const char*, int) {}
inline Identity identity() { return {}; }
inline bool trace_enabled() { return false; }
inline bool metrics_enabled() { return false; }
inline void configure_trace(std::string) {}
inline void configure_metrics(std::string) {}
inline void advance_virtual(double) {}
inline double virtual_clock() { return 0.0; }

class Span {
 public:
  Span(const char*, const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  void arg(const char*, double) {}
};

inline void instant(const char*, const char*) {}

class Counter {
 public:
  void add(std::uint64_t = 1) {}
  std::uint64_t value() const { return 0; }
};
class Gauge {
 public:
  void set(double) {}
  double value() const { return 0.0; }
};
class Histogram {
 public:
  void record(double) {}
  std::uint64_t count() const { return 0; }
  double sum() const { return 0.0; }
  double quantile(double) const { return 0.0; }
};

Counter& counter(const std::string& name);
Gauge& gauge(const std::string& name);
Histogram& histogram(const std::string& name);

inline std::string trace_json() { return "{\"traceEvents\":[]}\n"; }
inline std::string metrics_json() {
  return "{\"counters\":{},\"gauges\":{},\"histograms\":{}}\n";
}
inline void flush() {}
inline void reset_for_testing() {}

#endif  // GPTUNE_TELEMETRY

}  // namespace gptune::telemetry
