#include "common/telemetry/telemetry.hpp"

#include <map>
#include <memory>
#include <vector>

#include "common/annotations.hpp"
#include "common/sync.hpp"

#if defined(GPTUNE_TELEMETRY)
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>

#include "common/telemetry/flight_recorder.hpp"
#include "common/telemetry/json.hpp"
#endif

namespace gptune::telemetry {

#if defined(GPTUNE_TELEMETRY)

namespace {

// --- event storage ---------------------------------------------------------
//
// Each thread appends to its own chunked buffer with no locks: events are
// written into a pre-allocated slot and published with one release store of
// the chunk's `used` counter (a new chunk is linked with a release store of
// `next`). The flusher walks chunks with acquire loads, so reading a
// finished thread's events needs no handshake with it. Buffers are owned by
// a process-lifetime registry and survive thread exit — spawned worker
// groups are long gone by the time the trace is written.

struct TraceEvent {
  char ph = 'X';               ///< 'X' complete, 'i' instant
  const char* cat = nullptr;
  const char* name = nullptr;
  const char* arg_key = nullptr;
  double ts_us = 0.0;          ///< wall microseconds since the trace epoch
  double dur_us = 0.0;
  double vt_s = 0.0;           ///< thread virtual clock at event start
  double arg_value = 0.0;
  int track = 0;               ///< identity track (trace tid)
};

struct Chunk {
  static constexpr std::size_t kCapacity = 512;
  TraceEvent events[kCapacity];
  std::atomic<std::size_t> used{0};
  std::atomic<Chunk*> next{nullptr};
};

struct ThreadBuffer {
  Chunk first;
  Chunk* tail = &first;  ///< owner thread only
};

struct Track {
  const char* role;
  int rank;
};

struct Registry {
  common::Mutex mutex;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers
      GPTUNE_GUARDED_BY(mutex);
  std::vector<Track> tracks GPTUNE_GUARDED_BY(mutex);
  std::map<std::string, Counter> counters GPTUNE_GUARDED_BY(mutex);
  std::map<std::string, Gauge> gauges GPTUNE_GUARDED_BY(mutex);
  std::map<std::string, Histogram> histograms GPTUNE_GUARDED_BY(mutex);
  std::string trace_path GPTUNE_GUARDED_BY(mutex);
  std::string metrics_path GPTUNE_GUARDED_BY(mutex);
  bool atexit_registered GPTUNE_GUARDED_BY(mutex) = false;
};

// Leaked on purpose: flush() may run from atexit, after static destructors
// of other translation units would have torn a static Registry down.
Registry& registry() {
  static Registry* r = new Registry;
  return *r;
}

struct Tls {
  ThreadBuffer* buffer = nullptr;
  int track = -1;
  double vclock = 0.0;
};
thread_local Tls t_tls;

std::atomic<int> g_trace_on{-1};  ///< -1 uninitialized, 0 off, 1 on
std::atomic<int> g_metrics_on{-1};

double now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

void register_atexit_locked(Registry& r) GPTUNE_REQUIRES(r.mutex) {
  if (r.atexit_registered) return;
  r.atexit_registered = true;
  std::atexit([] { flush(); });
}

/// Reads GPTUNE_TRACE / GPTUNE_METRICS once, on the first enabled() query.
void init_from_env(std::atomic<int>& flag, const char* env_var,
                   std::string Registry::* path_member) {
  Registry& r = registry();
  common::MutexLock lock(r.mutex);
  if (flag.load(std::memory_order_relaxed) != -1) return;  // lost the race
  const char* value = std::getenv(env_var);
  if (value != nullptr && value[0] != '\0') {
    r.*path_member = value;
    register_atexit_locked(r);
    flag.store(1, std::memory_order_relaxed);
  } else {
    flag.store(0, std::memory_order_relaxed);
  }
}

int current_track() {
  if (t_tls.track >= 0) return t_tls.track;
  // Unidentified thread: give it the default identity lazily.
  set_identity("main", 0);
  return t_tls.track;
}

void record(const TraceEvent& event) {
  if (t_tls.buffer == nullptr) {
    auto owned = std::make_unique<ThreadBuffer>();
    t_tls.buffer = owned.get();
    Registry& r = registry();
    common::MutexLock lock(r.mutex);
    r.buffers.push_back(std::move(owned));
  }
  ThreadBuffer& buf = *t_tls.buffer;
  Chunk* tail = buf.tail;
  std::size_t used = tail->used.load(std::memory_order_relaxed);
  if (used == Chunk::kCapacity) {
    Chunk* fresh = new Chunk;
    fresh->events[0] = event;
    fresh->used.store(1, std::memory_order_release);
    tail->next.store(fresh, std::memory_order_release);
    buf.tail = fresh;
    return;
  }
  tail->events[used] = event;
  tail->used.store(used + 1, std::memory_order_release);
}

// --- JSON helpers ----------------------------------------------------------

void append_escaped(std::ostringstream& os, const char* s) {
  // Shared with every other JSON emitter (json.hpp): also escapes control
  // characters below 0x20, so a span name or log line containing a newline
  // or tab cannot corrupt the trace/metrics snapshot.
  os << '"' << json_escape(s) << '"';
}

void append_number(std::ostringstream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";  // JSON has no inf/nan; snapshots must stay parseable
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  os << buf;
}

double bits_to_double(std::uint64_t bits) {
  return std::bit_cast<double>(bits);
}
std::uint64_t double_to_bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// fetch_add / fetch_min / fetch_max for doubles stored as bit patterns.
void atomic_double_add(std::atomic<std::uint64_t>& bits, double delta) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (!bits.compare_exchange_weak(
      old, double_to_bits(bits_to_double(old) + delta),
      std::memory_order_relaxed)) {
  }
}
void atomic_double_min(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (bits_to_double(old) > v &&
         !bits.compare_exchange_weak(old, double_to_bits(v),
                                     std::memory_order_relaxed)) {
  }
}
void atomic_double_max(std::atomic<std::uint64_t>& bits, double v) {
  std::uint64_t old = bits.load(std::memory_order_relaxed);
  while (bits_to_double(old) < v &&
         !bits.compare_exchange_weak(old, double_to_bits(v),
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

// --- identity --------------------------------------------------------------

void set_identity(const char* role, int rank) {
  Registry& r = registry();
  int id = 0;
  {
    common::MutexLock lock(r.mutex);
    id = static_cast<int>(r.tracks.size());
    r.tracks.push_back({role, rank});
  }
  t_tls.track = id;
  flight_recorder::set_identity(role, rank);
}

Identity identity() {
  if (t_tls.track < 0) return {};
  Registry& r = registry();
  common::MutexLock lock(r.mutex);
  const Track& t = r.tracks[static_cast<std::size_t>(t_tls.track)];
  return {t.role, t.rank};
}

// --- toggles ---------------------------------------------------------------

namespace {

// The first enabled-check initializes BOTH toggles: metrics counters are
// always-on and never consult metrics_enabled(), so a binary whose only
// telemetry touch is a Span must still honor GPTUNE_METRICS (the atexit
// flush writes whichever paths are configured).
void init_env_toggles() {
  if (g_trace_on.load(std::memory_order_relaxed) == -1) {
    init_from_env(g_trace_on, "GPTUNE_TRACE", &Registry::trace_path);
  }
  if (g_metrics_on.load(std::memory_order_relaxed) == -1) {
    init_from_env(g_metrics_on, "GPTUNE_METRICS", &Registry::metrics_path);
  }
}

}  // namespace

bool trace_enabled() {
  if (g_trace_on.load(std::memory_order_relaxed) == -1) init_env_toggles();
  return g_trace_on.load(std::memory_order_relaxed) == 1;
}

bool metrics_enabled() {
  if (g_metrics_on.load(std::memory_order_relaxed) == -1) init_env_toggles();
  return g_metrics_on.load(std::memory_order_relaxed) == 1;
}

void configure_trace(std::string path) {
  Registry& r = registry();
  common::MutexLock lock(r.mutex);
  const bool on = !path.empty();
  r.trace_path = std::move(path);
  if (on) register_atexit_locked(r);
  g_trace_on.store(on ? 1 : 0, std::memory_order_relaxed);
}

void configure_metrics(std::string path) {
  Registry& r = registry();
  common::MutexLock lock(r.mutex);
  const bool on = !path.empty();
  r.metrics_path = std::move(path);
  if (on) register_atexit_locked(r);
  g_metrics_on.store(on ? 1 : 0, std::memory_order_relaxed);
}

// --- shadow virtual clock --------------------------------------------------

void advance_virtual(double seconds) {
  if (seconds > 0.0) {
    t_tls.vclock += seconds;
    flight_recorder::heartbeat_tick(seconds);
  }
}

double virtual_clock() { return t_tls.vclock; }

// --- tracing ---------------------------------------------------------------

Span::Span(const char* category, const char* name)
    : category_(category), name_(name), active_(trace_enabled()) {
  // The flight recorder sees every span, traced or not — its rings are the
  // post-mortem record for runs where GPTUNE_TRACE was never set.
  flight_recorder::note(flight_recorder::EventKind::kSpanBegin, category,
                        name);
  if (!active_) return;
  start_us_ = now_us();
  vstart_ = t_tls.vclock;
}

Span::~Span() {
  flight_recorder::note(flight_recorder::EventKind::kSpanEnd, category_,
                        name_);
  if (!active_) return;
  TraceEvent event;
  event.ph = 'X';
  event.cat = category_;
  event.name = name_;
  event.arg_key = arg_key_;
  event.arg_value = arg_value_;
  event.ts_us = start_us_;
  event.dur_us = now_us() - start_us_;
  event.vt_s = vstart_;
  event.track = current_track();
  record(event);
}

void Span::arg(const char* key, double value) {
  if (!active_) return;
  arg_key_ = key;
  arg_value_ = value;
}

void instant(const char* category, const char* name) {
  flight_recorder::note(flight_recorder::EventKind::kInstant, category, name);
  if (!trace_enabled()) return;
  TraceEvent event;
  event.ph = 'i';
  event.cat = category;
  event.name = name;
  event.ts_us = now_us();
  event.vt_s = t_tls.vclock;
  event.track = current_track();
  record(event);
}

// --- metrics ---------------------------------------------------------------

void Gauge::set(double value) {
  bits_.store(double_to_bits(value), std::memory_order_relaxed);
}
double Gauge::value() const {
  return bits_to_double(bits_.load(std::memory_order_relaxed));
}

Histogram::Histogram()
    : min_bits_(double_to_bits(std::numeric_limits<double>::infinity())),
      max_bits_(double_to_bits(-std::numeric_limits<double>::infinity())) {}

std::size_t Histogram::bucket_of(double value) {
  if (!(value > 0.0)) return 0;
  int exp = 0;
  std::frexp(value, &exp);  // value = m * 2^exp, m in [0.5, 1)
  // Bucket b covers [2^(b-33), 2^(b-32)); clamp the tails.
  const int b = exp + 32;
  if (b < 1) return 1;
  if (b >= static_cast<int>(kBuckets)) return kBuckets - 1;
  return static_cast<std::size_t>(b);
}

double Histogram::bucket_floor(std::size_t bucket) {
  if (bucket == 0) return 0.0;
  return std::ldexp(1.0, static_cast<int>(bucket) - 33);
}

void Histogram::record(double value) {
  buckets_[bucket_of(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_double_add(sum_bits_, value);
  atomic_double_min(min_bits_, value);
  atomic_double_max(max_bits_, value);
}

double Histogram::sum() const {
  return bits_to_double(sum_bits_.load(std::memory_order_relaxed));
}
double Histogram::min() const {
  return bits_to_double(min_bits_.load(std::memory_order_relaxed));
}
double Histogram::max() const {
  return bits_to_double(max_bits_.load(std::memory_order_relaxed));
}
std::uint64_t Histogram::bucket_count(std::size_t bucket) const {
  return buckets_[bucket].load(std::memory_order_relaxed);
}

double Histogram::quantile(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const auto c = static_cast<double>(bucket_count(b));
    if (c == 0.0) continue;
    if (cum + c >= target) {
      // Interpolate linearly inside the bucket's [floor, next floor) span;
      // the last bucket interpolates toward the observed max instead of
      // its (clamped) upper bound.
      const double lo = bucket_floor(b);
      const double hi = b + 1 < kBuckets ? bucket_floor(b + 1) : max();
      const double frac = (target - cum) / c;
      double estimate = lo + (hi - lo) * frac;
      const double observed_min = min();
      const double observed_max = max();
      if (estimate < observed_min) estimate = observed_min;
      if (estimate > observed_max) estimate = observed_max;
      return estimate;
    }
    cum += c;
  }
  return max();
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  common::MutexLock lock(r.mutex);
  return r.counters[name];
}

Gauge& gauge(const std::string& name) {
  Registry& r = registry();
  common::MutexLock lock(r.mutex);
  return r.gauges[name];
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  common::MutexLock lock(r.mutex);
  return r.histograms[name];
}

// --- output ----------------------------------------------------------------

std::string trace_json() {
  Registry& r = registry();
  std::ostringstream os;
  os << "{\"traceEvents\":[\n";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",\n";
    first = false;
  };

  common::MutexLock lock(r.mutex);
  os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
        "\"args\":{\"name\":\"gptune\"}}";
  first = false;
  for (std::size_t t = 0; t < r.tracks.size(); ++t) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << t
       << ",\"name\":\"thread_name\",\"args\":{\"name\":";
    std::ostringstream label;
    label << r.tracks[t].role << "/" << r.tracks[t].rank;
    append_escaped(os, label.str().c_str());
    os << "}}";
  }
  for (const auto& buffer : r.buffers) {
    for (const Chunk* chunk = &buffer->first; chunk != nullptr;
         chunk = chunk->next.load(std::memory_order_acquire)) {
      const std::size_t used = chunk->used.load(std::memory_order_acquire);
      for (std::size_t i = 0; i < used; ++i) {
        const TraceEvent& e = chunk->events[i];
        sep();
        os << "{\"ph\":\"" << e.ph << "\",\"pid\":1,\"tid\":" << e.track
           << ",\"cat\":";
        append_escaped(os, e.cat);
        os << ",\"name\":";
        append_escaped(os, e.name);
        os << ",\"ts\":";
        append_number(os, e.ts_us);
        if (e.ph == 'X') {
          os << ",\"dur\":";
          append_number(os, e.dur_us);
        }
        if (e.ph == 'i') os << ",\"s\":\"t\"";
        os << ",\"args\":{\"vt\":";
        append_number(os, e.vt_s);
        if (e.arg_key != nullptr) {
          os << ",";
          append_escaped(os, e.arg_key);
          os << ":";
          append_number(os, e.arg_value);
        }
        os << "}}";
      }
    }
  }
  os << "\n]}\n";
  return os.str();
}

std::string metrics_json() {
  Registry& r = registry();
  std::ostringstream os;
  common::MutexLock lock(r.mutex);

  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : r.counters) {
    os << (first ? "\n    " : ",\n    ");
    append_escaped(os, name.c_str());
    os << ": " << c.value();
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, g] : r.gauges) {
    os << (first ? "\n    " : ",\n    ");
    append_escaped(os, name.c_str());
    os << ": ";
    append_number(os, g.value());
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : r.histograms) {
    os << (first ? "\n    " : ",\n    ");
    append_escaped(os, name.c_str());
    os << ": {\"count\": " << h.count() << ", \"sum\": ";
    append_number(os, h.count() > 0 ? h.sum() : 0.0);
    os << ", \"min\": ";
    append_number(os, h.count() > 0 ? h.min() : 0.0);
    os << ", \"max\": ";
    append_number(os, h.count() > 0 ? h.max() : 0.0);
    os << ", \"p50\": ";
    append_number(os, h.quantile(0.50));
    os << ", \"p95\": ";
    append_number(os, h.quantile(0.95));
    os << ", \"p99\": ";
    append_number(os, h.quantile(0.99));
    os << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h.bucket_count(b);
      if (n == 0) continue;
      os << (first_bucket ? "" : ", ") << "{\"floor\": ";
      append_number(os, Histogram::bucket_floor(b));
      os << ", \"count\": " << n << "}";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

void flush() {
  init_env_toggles();  // an explicit flush honors the env even if no
                       // enabled-check ran before it
  std::string trace_path, metrics_path;
  {
    Registry& r = registry();
    common::MutexLock lock(r.mutex);
    trace_path = r.trace_path;
    metrics_path = r.metrics_path;
  }
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary | std::ios::trunc);
    if (out) out << trace_json();
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary | std::ios::trunc);
    if (out) out << metrics_json();
  }
}

void reset_for_testing() {
  Registry& r = registry();
  common::MutexLock lock(r.mutex);
  // Buffers are owned by live threads; drop only events already published.
  // The simple, safe reset: forget finished buffers is impossible without
  // a thread handshake, so zero the metric values and leave trace buffers
  // to the natural per-test configure_trace("") gating.
  for (auto& [name, c] : r.counters) {
    while (c.value() != 0) {
      c.add(static_cast<std::uint64_t>(0) - c.value());
    }
  }
  for (auto& [name, g] : r.gauges) g.set(0.0);
  // Un-latch the env toggles so the next trace_enabled()/metrics_enabled()
  // re-reads GPTUNE_TRACE/GPTUNE_METRICS (tests exercise the env path).
  r.trace_path.clear();
  r.metrics_path.clear();
  g_trace_on.store(-1, std::memory_order_relaxed);
  g_metrics_on.store(-1, std::memory_order_relaxed);
}

#else  // !GPTUNE_TELEMETRY — dummies behind the inline no-op API.

Counter& counter(const std::string&) {
  static Counter c;
  return c;
}
Gauge& gauge(const std::string&) {
  static Gauge g;
  return g;
}
Histogram& histogram(const std::string&) {
  static Histogram h;
  return h;
}

#endif  // GPTUNE_TELEMETRY

}  // namespace gptune::telemetry
