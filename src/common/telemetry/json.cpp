#include "common/telemetry/json.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace gptune::telemetry {

std::string json_escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (u < 0x20) {
      // Control characters are invalid raw inside JSON strings; use the
      // short escapes where they exist, \u00XX elsewhere.
      switch (c) {
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default: {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(u >> 4) & 0xF];
          out += hex[u & 0xF];
          break;
        }
      }
    } else {
      out += c;
    }
  }
  return out;
}

class JsonParser {
 public:
  const std::string& text;
  std::size_t pos = 0;
  std::string error = {};

  bool fail(const std::string& what) {
    if (error.empty()) {
      std::ostringstream os;
      os << what << " at offset " << pos;
      error = os.str();
    }
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  bool consume(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool parse_literal(const char* lit) {
    std::size_t n = 0;
    while (lit[n] != '\0') ++n;
    if (text.compare(pos, n, lit) != 0) return false;
    pos += n;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (pos < text.size()) {
      char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) break;
        char esc = text[pos++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            // Keep it simple: decode Basic-Latin \u00xx, replace the rest
            // with '?'. Our own writers never emit \u escapes.
            if (pos + 4 > text.size()) return fail("truncated \\u escape");
            unsigned code = static_cast<unsigned>(
                std::strtoul(text.substr(pos, 4).c_str(), nullptr, 16));
            pos += 4;
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') return parse_object(out);
    if (c == '[') return parse_array(out);
    if (c == '"') {
      out.type_ = JsonValue::Type::kString;
      return parse_string(out.string_);
    }
    if (parse_literal("true")) {
      out.type_ = JsonValue::Type::kBool;
      out.bool_ = true;
      return true;
    }
    if (parse_literal("false")) {
      out.type_ = JsonValue::Type::kBool;
      out.bool_ = false;
      return true;
    }
    if (parse_literal("null")) {
      out.type_ = JsonValue::Type::kNull;
      return true;
    }
    return parse_number(out);
  }

  bool parse_number(JsonValue& out) {
    const char* begin = text.c_str() + pos;
    char* end = nullptr;
    double value = std::strtod(begin, &end);
    if (end == begin) return fail("expected value");
    pos += static_cast<std::size_t>(end - begin);
    out.type_ = JsonValue::Type::kNumber;
    out.number_ = value;
    return true;
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[')) return fail("expected '['");
    out.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!parse_value(item)) return false;
      out.items_.push_back(std::move(item));
      if (consume(',')) continue;
      if (consume(']')) return true;
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{')) return fail("expected '{'");
    out.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) return fail("expected ':'");
      JsonValue value;
      if (!parse_value(value)) return false;
      out.members_.emplace_back(std::move(key), std::move(value));
      if (consume(',')) continue;
      if (consume('}')) return true;
      return fail("expected ',' or '}'");
    }
  }
};

const JsonValue* JsonValue::find(const std::string& key) const {
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::parse(const std::string& text, std::string* error) {
  JsonParser parser{text};
  JsonValue root;
  bool ok = parser.parse_value(root);
  if (ok) {
    parser.skip_ws();
    if (parser.pos != text.size()) {
      ok = false;
      parser.fail("trailing content");
    }
  }
  if (!ok) {
    if (error != nullptr) *error = parser.error;
    return JsonValue{};
  }
  if (error != nullptr) error->clear();
  return root;
}

}  // namespace gptune::telemetry
