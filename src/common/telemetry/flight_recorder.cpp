#include "common/telemetry/flight_recorder.hpp"

#if defined(GPTUNE_TELEMETRY)

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <vector>

#include "common/annotations.hpp"
#include "common/sync.hpp"
#include "common/telemetry/json.hpp"
#include "common/telemetry/telemetry.hpp"

namespace gptune::telemetry::flight_recorder {

namespace {

// --- storage ---------------------------------------------------------------
//
// A fixed pool of per-thread rings in one leaked allocation. Everything the
// fatal-signal path touches is preallocated and reachable through a single
// atomic pointer: no heap, no registry growth, no locks on that path. The
// cooperative paths (note/dump_now/timeline_text/heartbeat) serialize on a
// tiny per-ring mutex, which keeps ThreadSanitizer and the thread-safety
// analysis on — only the dying-process signal writer reads racily.

struct Entry {
  EventKind kind = EventKind::kInstant;
  const char* cat = nullptr;    ///< string literal, may be null
  const char* name = nullptr;   ///< string literal, may be null
  double wall_us = 0.0;         ///< wall microseconds since recorder epoch
  double vt = 0.0;              ///< recording thread's virtual clock
  char text[kTextCapacity];     ///< copied payload ('\0'-terminated)
};

/// Ring lifecycle: kFree (never used) -> kLive (owned by a thread) ->
/// kReleased at thread exit (contents kept for post-mortem; a later thread
/// may reclaim the slot, resetting it).
enum : int { kFree = 0, kLive = 1, kReleased = 2 };

struct Ring {
  std::atomic<int> state{kFree};
  common::Mutex mu;
  const char* role GPTUNE_GUARDED_BY(mu) = "main";
  int rank GPTUNE_GUARDED_BY(mu) = 0;
  std::uint64_t head GPTUNE_GUARDED_BY(mu) = 0;  ///< events ever written
  Entry entries[kRingCapacity] GPTUNE_GUARDED_BY(mu) = {};
};

struct FrState {
  Ring rings[kMaxRings];
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint64_t> dump_seq{0};
  std::atomic<std::uint64_t> heartbeat_seq{0};

  common::Mutex cfg_mu;
  std::string dump_dir GPTUNE_GUARDED_BY(cfg_mu);
  std::atomic<int> dump_dir_on{0};  ///< 1 when dump_dir is non-empty
  std::atomic<bool> handlers_installed{false};
  /// Crash-dump path, precomputed so the signal handler never allocates.
  char crash_path[768] GPTUNE_GUARDED_BY(cfg_mu) = {};

  std::atomic<std::uint64_t> hb_period_bits{0};  ///< double bits; 0.0 = off
  std::atomic<std::uint64_t> hb_total_bits{0};   ///< global virtual clock
  std::atomic<std::uint64_t> hb_next_bits{0};    ///< next dump threshold

  std::atomic<int> env_state{-1};  ///< -1 unread, 1 read
};

/// Reached from the signal handler through one relaxed atomic load; set
/// exactly once, before any handler can be installed.
std::atomic<FrState*> g_fr{nullptr};

FrState& fr() {
  static FrState* s = [] {
    auto* created = new FrState;  // leaked: dumps may run during teardown
    g_fr.store(created, std::memory_order_release);
    return created;
  }();
  return *s;
}

double now_us() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

double bits_to_double(std::uint64_t bits) {
  return std::bit_cast<double>(bits);
}
std::uint64_t double_to_bits(double v) {
  return std::bit_cast<std::uint64_t>(v);
}

const char* kind_label(EventKind kind) {
  switch (kind) {
    case EventKind::kSpanBegin: return "span_begin";
    case EventKind::kSpanEnd: return "span_end";
    case EventKind::kInstant: return "instant";
    case EventKind::kLog: return "log";
  }
  return "?";
}

// --- per-thread ring claim -------------------------------------------------

struct TlsRing {
  Ring* ring = nullptr;
  ~TlsRing() {
    // Keep the contents for post-mortem dumps; the slot becomes reusable
    // only for threads started after this one exited.
    if (ring != nullptr) ring->state.store(kReleased, std::memory_order_release);
  }
};
thread_local TlsRing t_ring;

void init_from_env();  // forward

Ring* claim_ring() {
  if (t_ring.ring != nullptr) return t_ring.ring;
  FrState& s = fr();
  init_from_env();
  // Prefer never-used slots so released threads' history survives as long
  // as possible; fall back to reclaiming a released slot (its events are
  // forgotten — they belonged to a thread that exited cleanly).
  for (const int want : {kFree, kReleased}) {
    for (std::size_t i = 0; i < kMaxRings; ++i) {
      int expected = want;
      if (s.rings[i].state.compare_exchange_strong(
              expected, kLive, std::memory_order_acq_rel)) {
        Ring* r = &s.rings[i];
        const Identity id = identity();
        common::MutexLock lock(r->mu);
        if (want == kReleased) r->head = 0;
        r->role = id.role;
        r->rank = id.rank;
        t_ring.ring = r;
        return r;
      }
    }
  }
  s.dropped.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void record(EventKind kind, const char* cat, const char* name,
            const char* text) {
  Ring* r = claim_ring();
  if (r == nullptr) return;
  const double wall = now_us();
  const double vt = virtual_clock();
  common::MutexLock lock(r->mu);
  Entry& e = r->entries[r->head % kRingCapacity];
  e.kind = kind;
  e.cat = cat;
  e.name = name;
  e.wall_us = wall;
  e.vt = vt;
  if (text != nullptr) {
    std::size_t n = std::strlen(text);
    if (n >= kTextCapacity) n = kTextCapacity - 1;
    std::memcpy(e.text, text, n);
    e.text[n] = '\0';
  } else {
    e.text[0] = '\0';
  }
  ++r->head;
}

// --- cooperative snapshot --------------------------------------------------

struct RingSnapshot {
  std::string label;  ///< "role/rank"
  std::uint64_t total = 0;
  std::vector<Entry> recent;  ///< oldest first
};

std::vector<RingSnapshot> snapshot_rings() {
  FrState& s = fr();
  std::vector<RingSnapshot> out;
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    Ring& r = s.rings[i];
    if (r.state.load(std::memory_order_acquire) == kFree) continue;
    common::MutexLock lock(r.mu);
    if (r.head == 0) continue;
    RingSnapshot snap;
    std::ostringstream label;
    label << r.role << "/" << r.rank;
    snap.label = label.str();
    snap.total = r.head;
    const std::uint64_t n = std::min<std::uint64_t>(r.head, kRingCapacity);
    snap.recent.reserve(n);
    for (std::uint64_t k = r.head - n; k < r.head; ++k) {
      snap.recent.push_back(r.entries[k % kRingCapacity]);
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void append_entry_json(std::ostringstream& os, const Entry& e) {
  os << "{\"kind\":\"" << kind_label(e.kind) << "\"";
  if (e.cat != nullptr) os << ",\"cat\":\"" << json_escape(e.cat) << "\"";
  if (e.name != nullptr) os << ",\"name\":\"" << json_escape(e.name) << "\"";
  if (e.text[0] != '\0') {
    os << ",\"text\":\"" << json_escape(e.text) << "\"";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.3f", e.wall_us);
  os << ",\"wall_us\":" << buf;
  std::snprintf(buf, sizeof(buf), "%.9g", e.vt);
  os << ",\"vt\":" << buf << "}";
}

// --- configuration ---------------------------------------------------------

void crash_handler(int sig) {
  // First thing: restore default disposition, so a second fault inside the
  // handler (or the re-raise below) terminates instead of recursing.
  std::signal(sig, SIG_DFL);
  FrState* s = g_fr.load(std::memory_order_relaxed);
  if (s != nullptr && s->dump_dir_on.load(std::memory_order_relaxed) == 1) {
    // crash_path is written once at configure time and never reallocated;
    // reading it here races only with a reconfigure, which tests don't do
    // while also crashing. Reason for the analysis escape: a signal
    // handler cannot take cfg_mu.
    const char* path = [](FrState& state) GPTUNE_NO_THREAD_SAFETY_ANALYSIS {
      return state.crash_path;
    }(*s);
    const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dump_signal_safe(fd,
                       sig == SIGSEGV ? "signal:SIGSEGV" : "signal:SIGABRT");
      ::close(fd);
    }
  }
  ::raise(sig);
}

void install_handlers_once(FrState& s) {
  bool expected = false;
  if (!s.handlers_installed.compare_exchange_strong(expected, true)) return;
  struct sigaction action = {};
  action.sa_handler = &crash_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGSEGV, &action, nullptr);
  ::sigaction(SIGABRT, &action, nullptr);
}

/// Reads GPTUNE_DUMP_DIR / GPTUNE_HEARTBEAT once, on the first recorded
/// event (or the first explicit query).
void init_from_env() {
  FrState& s = fr();
  if (s.env_state.load(std::memory_order_acquire) != -1) return;
  common::MutexLock lock(s.cfg_mu);
  if (s.env_state.load(std::memory_order_relaxed) != -1) return;
  if (const char* dir = std::getenv("GPTUNE_DUMP_DIR");
      dir != nullptr && dir[0] != '\0') {
    s.dump_dir = dir;
    std::snprintf(s.crash_path, sizeof(s.crash_path),
                  "%s/flight_dump_crash.json", dir);
    s.dump_dir_on.store(1, std::memory_order_relaxed);
    install_handlers_once(s);
  }
  if (const char* hb = std::getenv("GPTUNE_HEARTBEAT");
      hb != nullptr && hb[0] != '\0') {
    const double period = std::strtod(hb, nullptr);
    if (period > 0.0) {
      s.hb_period_bits.store(double_to_bits(period), std::memory_order_relaxed);
      s.hb_next_bits.store(double_to_bits(period), std::memory_order_relaxed);
    }
  }
  s.env_state.store(1, std::memory_order_release);
}

std::string heartbeat_path_locked(FrState& s) GPTUNE_REQUIRES(s.cfg_mu) {
  return (s.dump_dir.empty() ? std::string(".") : s.dump_dir) +
         "/heartbeat.json";
}

void write_heartbeat(double total_virtual) {
  FrState& s = fr();
  std::string path;
  {
    common::MutexLock lock(s.cfg_mu);
    path = heartbeat_path_locked(s);
  }
  const std::uint64_t seq =
      s.heartbeat_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  std::ostringstream os;
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", total_virtual);
  os << "{\"schema\":\"gptune-heartbeat/1\",\"seq\":" << seq
     << ",\"virtual_seconds\":" << buf << ",\n\"metrics\":";
  std::string metrics = metrics_json();
  while (!metrics.empty() && (metrics.back() == '\n' || metrics.back() == ' ')) {
    metrics.pop_back();
  }
  os << metrics << ",\n\"flight\":" << dump_json("heartbeat") << "}\n";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (out) out << os.str();
}

// --- async-signal-safe writer ---------------------------------------------

void sig_write(int fd, const char* data, std::size_t n) {
  while (n > 0) {
    const ::ssize_t w = ::write(fd, data, n);
    if (w <= 0) return;
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

void sig_write_str(int fd, const char* s) { sig_write(fd, s, std::strlen(s)); }

void sig_write_u64(int fd, std::uint64_t v) {
  char buf[24];
  char* p = buf + sizeof(buf);
  *--p = '\0';
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  sig_write_str(fd, p);
}

/// Fixed-point rendering with 3 decimals — enough for microsecond stamps
/// and virtual seconds, and free of locale/allocation concerns.
void sig_write_fixed(int fd, double v) {
  if (!(v == v) || v > 9.0e15 || v < -9.0e15) {  // NaN or out of range
    sig_write_str(fd, "null");
    return;
  }
  if (v < 0) {
    sig_write_str(fd, "-");
    v = -v;
  }
  const auto whole = static_cast<std::uint64_t>(v);
  const auto milli =
      static_cast<std::uint64_t>((v - static_cast<double>(whole)) * 1000.0);
  sig_write_u64(fd, whole);
  sig_write_str(fd, ".");
  char frac[4] = {static_cast<char>('0' + milli / 100 % 10),
                  static_cast<char>('0' + milli / 10 % 10),
                  static_cast<char>('0' + milli % 10), '\0'};
  sig_write_str(fd, frac);
}

void sig_write_escaped(int fd, const char* s) {
  static const char* hex = "0123456789abcdef";
  sig_write_str(fd, "\"");
  for (; *s != '\0'; ++s) {
    const auto u = static_cast<unsigned char>(*s);
    if (*s == '"' || *s == '\\') {
      const char pair[3] = {'\\', *s, '\0'};
      sig_write_str(fd, pair);
    } else if (u < 0x20) {
      const char esc[7] = {'\\', 'u', '0', '0', hex[(u >> 4) & 0xF],
                           hex[u & 0xF], '\0'};
      sig_write_str(fd, esc);
    } else {
      sig_write(fd, s, 1);
    }
  }
  sig_write_str(fd, "\"");
}

}  // namespace

// --- public API ------------------------------------------------------------

void set_identity(const char* role, int rank) {
  Ring* r = claim_ring();
  if (r == nullptr) return;
  common::MutexLock lock(r->mu);
  r->role = role;
  r->rank = rank;
}

void note(EventKind kind, const char* cat, const char* name) {
  record(kind, cat, name, nullptr);
}

void note_text(EventKind kind, const char* cat, const char* text) {
  record(kind, cat, nullptr, text);
}

void configure_dump_dir(std::string dir) {
  FrState& s = fr();
  common::MutexLock lock(s.cfg_mu);
  s.env_state.store(1, std::memory_order_relaxed);  // explicit config wins
  s.dump_dir = std::move(dir);
  if (s.dump_dir.empty()) {
    s.dump_dir_on.store(0, std::memory_order_relaxed);
    return;
  }
  std::snprintf(s.crash_path, sizeof(s.crash_path), "%s/flight_dump_crash.json",
                s.dump_dir.c_str());
  s.dump_dir_on.store(1, std::memory_order_relaxed);
  install_handlers_once(s);
}

bool dump_dir_configured() {
  init_from_env();
  return fr().dump_dir_on.load(std::memory_order_relaxed) == 1;
}

void configure_heartbeat(double virtual_seconds) {
  FrState& s = fr();
  common::MutexLock lock(s.cfg_mu);
  s.env_state.store(1, std::memory_order_relaxed);
  const double period = virtual_seconds > 0.0 ? virtual_seconds : 0.0;
  s.hb_period_bits.store(double_to_bits(period), std::memory_order_relaxed);
  const double total = bits_to_double(s.hb_total_bits.load(std::memory_order_relaxed));
  s.hb_next_bits.store(double_to_bits(total + period), std::memory_order_relaxed);
}

void heartbeat_tick(double seconds) {
  if (!(seconds > 0.0)) return;
  FrState& s = fr();
  init_from_env();
  const double period =
      bits_to_double(s.hb_period_bits.load(std::memory_order_relaxed));
  // One relaxed load when the heartbeat is off — cheap enough for the
  // virtual-clock hot path.
  if (!(period > 0.0)) return;
  std::uint64_t old = s.hb_total_bits.load(std::memory_order_relaxed);
  double total = 0.0;
  for (;;) {
    total = bits_to_double(old) + seconds;
    if (s.hb_total_bits.compare_exchange_weak(old, double_to_bits(total),
                                              std::memory_order_relaxed)) {
      break;
    }
  }
  // First crosser claims the snapshot by advancing the threshold; losers
  // see the raised threshold and skip.
  std::uint64_t next_bits = s.hb_next_bits.load(std::memory_order_relaxed);
  for (;;) {
    const double next = bits_to_double(next_bits);
    if (total < next) return;
    double raised = next + period;
    while (raised <= total) raised += period;
    if (s.hb_next_bits.compare_exchange_weak(next_bits,
                                             double_to_bits(raised),
                                             std::memory_order_relaxed)) {
      break;
    }
  }
  write_heartbeat(total);
}

std::string dump_json(const char* reason) {
  init_from_env();
  const auto rings = snapshot_rings();
  std::ostringstream os;
  os << "{\"schema\":\"gptune-flight-dump/1\",\"reason\":\""
     << json_escape(reason == nullptr ? "" : reason) << "\",\"dropped_events\":"
     << fr().dropped.load(std::memory_order_relaxed) << ",\"rings\":[";
  bool first_ring = true;
  for (const auto& snap : rings) {
    os << (first_ring ? "\n" : ",\n");
    first_ring = false;
    os << "{\"thread\":\"" << json_escape(snap.label)
       << "\",\"total_events\":" << snap.total << ",\"events\":[";
    bool first_event = true;
    for (const Entry& e : snap.recent) {
      os << (first_event ? "\n" : ",\n");
      first_event = false;
      append_entry_json(os, e);
    }
    os << "]}";
  }
  os << "\n]}\n";
  return os.str();
}

bool dump_now(const char* reason) {
  if (!dump_dir_configured()) return false;
  FrState& s = fr();
  std::string dir;
  {
    common::MutexLock lock(s.cfg_mu);
    dir = s.dump_dir;
  }
  const std::uint64_t seq =
      s.dump_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  const std::string path =
      dir + "/flight_dump_" + std::to_string(seq) + ".json";
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << dump_json(reason);
  return static_cast<bool>(out);
}

std::string timeline_text(std::size_t last_n) {
  std::ostringstream os;
  for (const auto& snap : snapshot_rings()) {
    os << "  [" << snap.label << "] last "
       << std::min<std::uint64_t>(last_n, snap.recent.size()) << " of "
       << snap.total << " event(s):\n";
    const std::size_t skip =
        snap.recent.size() > last_n ? snap.recent.size() - last_n : 0;
    for (std::size_t i = skip; i < snap.recent.size(); ++i) {
      const Entry& e = snap.recent[i];
      char stamp[48];
      std::snprintf(stamp, sizeof(stamp), "%+12.3fms", e.wall_us / 1000.0);
      os << "    " << stamp << " " << kind_label(e.kind);
      if (e.cat != nullptr) {
        os << " " << e.cat;
        if (e.name != nullptr) os << "/" << e.name;
      }
      if (e.text[0] != '\0') os << " " << e.text;
      os << "\n";
    }
  }
  return os.str();
}

// Reads ring fields without their mutexes: only reachable from a fatal
// signal, where taking locks could self-deadlock and the process is about
// to die — racy reads are the best available evidence. Reason for the
// analysis escape: a signal handler cannot acquire the rings' mutexes.
void dump_signal_safe(int fd, const char* reason)
    GPTUNE_NO_THREAD_SAFETY_ANALYSIS {
  FrState* s = g_fr.load(std::memory_order_acquire);
  if (s == nullptr) {
    sig_write_str(fd, "{\"schema\":\"gptune-flight-dump/1\",\"rings\":[]}\n");
    return;
  }
  sig_write_str(fd, "{\"schema\":\"gptune-flight-dump/1\",\"reason\":");
  sig_write_escaped(fd, reason == nullptr ? "" : reason);
  sig_write_str(fd, ",\"dropped_events\":");
  sig_write_u64(fd, s->dropped.load(std::memory_order_relaxed));
  sig_write_str(fd, ",\"rings\":[");
  bool first_ring = true;
  for (std::size_t i = 0; i < kMaxRings; ++i) {
    Ring& r = s->rings[i];
    if (r.state.load(std::memory_order_relaxed) == kFree) continue;
    const std::uint64_t head = r.head;
    if (head == 0) continue;
    sig_write_str(fd, first_ring ? "\n" : ",\n");
    first_ring = false;
    sig_write_str(fd, "{\"thread\":");
    char label[64];
    std::snprintf(label, sizeof(label), "%s/%d",
                  r.role == nullptr ? "?" : r.role, r.rank);
    sig_write_escaped(fd, label);
    sig_write_str(fd, ",\"total_events\":");
    sig_write_u64(fd, head);
    sig_write_str(fd, ",\"events\":[");
    const std::uint64_t n = head < kRingCapacity ? head : kRingCapacity;
    for (std::uint64_t k = head - n; k < head; ++k) {
      const Entry& e = r.entries[k % kRingCapacity];
      sig_write_str(fd, k == head - n ? "\n" : ",\n");
      sig_write_str(fd, "{\"kind\":\"");
      sig_write_str(fd, kind_label(e.kind));
      sig_write_str(fd, "\"");
      if (e.cat != nullptr) {
        sig_write_str(fd, ",\"cat\":");
        sig_write_escaped(fd, e.cat);
      }
      if (e.name != nullptr) {
        sig_write_str(fd, ",\"name\":");
        sig_write_escaped(fd, e.name);
      }
      if (e.text[0] != '\0') {
        sig_write_str(fd, ",\"text\":");
        sig_write_escaped(fd, e.text);
      }
      sig_write_str(fd, ",\"wall_us\":");
      sig_write_fixed(fd, e.wall_us);
      sig_write_str(fd, ",\"vt\":");
      sig_write_fixed(fd, e.vt);
      sig_write_str(fd, "}");
    }
    sig_write_str(fd, "]}");
  }
  sig_write_str(fd, "\n]}\n");
}

std::uint64_t dropped_events() {
  return fr().dropped.load(std::memory_order_relaxed);
}

void reset_for_testing() {
  FrState& s = fr();
  common::MutexLock lock(s.cfg_mu);
  s.dump_dir.clear();
  s.dump_dir_on.store(0, std::memory_order_relaxed);
  s.hb_period_bits.store(0, std::memory_order_relaxed);
  s.hb_total_bits.store(0, std::memory_order_relaxed);
  s.hb_next_bits.store(0, std::memory_order_relaxed);
  s.env_state.store(-1, std::memory_order_relaxed);
}

}  // namespace gptune::telemetry::flight_recorder

#else  // !GPTUNE_TELEMETRY

// All hooks are inline no-ops in the header; nothing to define.

#endif  // GPTUNE_TELEMETRY
