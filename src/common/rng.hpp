// Seeded, splittable random number generation.
//
// Everything stochastic in the library (sampling, optimizer populations,
// simulator noise) draws from an explicitly seeded Rng so that runs are
// reproducible bit-for-bit. Rng wraps the xoshiro256** generator, which is
// small, fast, and has well-understood statistical quality.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace gptune::common {

/// Counter-based splittable PRNG (xoshiro256**).
///
/// `split()` derives an independent stream, so parallel components can each
/// own a generator without sharing mutable state across threads.
class Rng {
 public:
  /// Seeds the four 64-bit words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal variate (Box–Muller with caching).
  double normal();

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal variate: exp(N(mu_log, sigma_log)).
  double lognormal(double mu_log, double sigma_log);

  /// Gamma variate (Marsaglia–Tsang), shape k > 0, scale theta > 0.
  double gamma(double shape, double scale);

  /// Index in [0, weights.size()) drawn proportionally to `weights`
  /// (non-negative, not all zero).
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher–Yates shuffle of indices [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Derives an independent generator; deterministic in (state, call order).
  Rng split();

 private:
  std::array<std::uint64_t, 4> state_;
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace gptune::common
