#include "common/log.hpp"

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <utility>

#include "common/annotations.hpp"
#include "common/sync.hpp"
#include "common/telemetry/flight_recorder.hpp"
#include "common/telemetry/telemetry.hpp"

namespace gptune::common {

namespace {

std::atomic<bool> g_level_initialized{false};
std::atomic<LogLevel> g_level{LogLevel::kWarn};
Mutex g_io_mutex;

// Leaked on purpose: logging may run during static teardown, after a
// static sink's destructor would have fired.
LogSink* const g_sink GPTUNE_PT_GUARDED_BY(g_io_mutex) = new LogSink;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    default: return "?";
  }
}

LogLevel level_from_env() {
  const char* value = std::getenv("GPTUNE_LOG");
  if (value == nullptr) return LogLevel::kWarn;
  const std::string v = value;
  if (v == "debug") return LogLevel::kDebug;
  if (v == "info") return LogLevel::kInfo;
  if (v == "warn") return LogLevel::kWarn;
  if (v == "error") return LogLevel::kError;
  if (v == "off") return LogLevel::kOff;
  return LogLevel::kWarn;
}

}  // namespace

void set_log_level(LogLevel level) {
  g_level_initialized.store(true, std::memory_order_relaxed);
  g_level.store(level);
}

LogLevel log_level() {
  if (!g_level_initialized.load(std::memory_order_relaxed)) {
    // Benign race: every thread computes the same value from the env.
    g_level.store(level_from_env());
    g_level_initialized.store(true, std::memory_order_relaxed);
  }
  return g_level.load();
}

void set_log_sink(LogSink sink) {
  MutexLock lock(g_io_mutex);
  *g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  const telemetry::Identity id = telemetry::identity();
  // Every emitted line also lands in the flight-recorder ring, so crash
  // dumps and rtcheck timelines carry the most recent log context.
  telemetry::flight_recorder::note_text(
      telemetry::flight_recorder::EventKind::kLog, "log", message.c_str());
  std::ostringstream os;
  os << "[" << level_name(level) << "][" << id.role << "/" << id.rank << "] "
     << message;
  MutexLock lock(g_io_mutex);
  if (*g_sink) {
    (*g_sink)(os.str());
  } else {
    std::cerr << os.str() << "\n";
  }
}

}  // namespace gptune::common
