// Clang thread-safety capability attributes, compiled away elsewhere.
//
// The GPTUNE_* macros wrap __attribute__((...)) spellings understood by
// Clang's -Wthread-safety analysis, which proves at compile time that every
// access to a GPTUNE_GUARDED_BY(mu) member happens with `mu` held, that
// GPTUNE_REQUIRES(mu) functions are only called under the lock, and that
// lock/unlock pairs balance on every path. GCC and MSVC do not implement
// the analysis, so the macros expand to nothing there and the annotations
// cost nothing.
//
// The annotations only work on types that are themselves annotated as
// capabilities — libstdc++'s std::mutex is not — so the repo's lockable
// types live in common/sync.hpp (gptune::common::Mutex/MutexLock/CondVar)
// and every mutex-bearing layer uses those. The `threadsafety` lane
// (scripts/check.sh threadsafety) builds the tree with Clang and
// -Wthread-safety -Werror; DESIGN.md §3.11 documents the layer.
#pragma once

#if defined(__clang__) && !defined(SWIG)
#define GPTUNE_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GPTUNE_THREAD_ANNOTATION(x)
#endif

/// Marks a type as a capability (a lock). `x` names it in diagnostics.
#define GPTUNE_CAPABILITY(x) GPTUNE_THREAD_ANNOTATION(capability(x))

/// Marks an RAII type that acquires a capability in its constructor and
/// releases it in its destructor.
#define GPTUNE_SCOPED_CAPABILITY GPTUNE_THREAD_ANNOTATION(scoped_lockable)

/// Data members: may only be read/written while `x` is held.
#define GPTUNE_GUARDED_BY(x) GPTUNE_THREAD_ANNOTATION(guarded_by(x))

/// Pointer members: the pointed-to data is guarded by `x` (the pointer
/// itself is not).
#define GPTUNE_PT_GUARDED_BY(x) GPTUNE_THREAD_ANNOTATION(pt_guarded_by(x))

/// Functions: the caller must hold the capability (or capabilities).
#define GPTUNE_REQUIRES(...) \
  GPTUNE_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/// Functions: acquire the capability; the caller must not hold it.
#define GPTUNE_ACQUIRE(...) \
  GPTUNE_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/// Functions: release the capability; the caller must hold it.
#define GPTUNE_RELEASE(...) \
  GPTUNE_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/// Functions: acquire the capability iff the return value equals `b`.
#define GPTUNE_TRY_ACQUIRE(b, ...) \
  GPTUNE_THREAD_ANNOTATION(try_acquire_capability(b, __VA_ARGS__))

/// Functions: the caller must NOT hold the capability (deadlock guard).
#define GPTUNE_EXCLUDES(...) \
  GPTUNE_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/// Assertion points: the capability is known to be held here.
#define GPTUNE_ASSERT_CAPABILITY(x) \
  GPTUNE_THREAD_ANNOTATION(assert_capability(x))

/// Functions returning a reference to a capability.
#define GPTUNE_RETURN_CAPABILITY(x) \
  GPTUNE_THREAD_ANNOTATION(lock_returned(x))

/// Escape hatch for functions whose locking is deliberately outside the
/// analysis (cross-thread pokes in rtcheck, documented snapshot reads).
/// Every use carries a comment saying why, and the lock-discipline lint
/// rule still polices the call sites.
#define GPTUNE_NO_THREAD_SAFETY_ANALYSIS \
  GPTUNE_THREAD_ANNOTATION(no_thread_safety_analysis)
