// ytopt-style tuner (paper §6.1 lists it as the third supported external
// tuner; §5 describes the approach via Menon et al., IPDPS 2020): Bayesian
// optimization that selects candidates with a Tree Parzen Estimator, like
// HpBandSter, but *without* the multi-armed bandit / multi-fidelity
// framework — every step is pure TPE once the initial design is done.
#pragma once

#include "baselines/hpbandster_lite.hpp"

namespace gptune::baselines {

class YtoptLite : public SingleTaskTuner {
 public:
  YtoptLite() {
    HpBandSterOptions options;
    options.random_fraction = 0.0;  // no bandit, no random interleaving
    options.good_fraction = 0.3;
    tpe_ = HpBandSterLite(options);
  }

  std::string name() const override { return "ytopt"; }

  core::TaskHistory tune(const core::TaskVector& task,
                         const core::Space& space,
                         const core::MultiObjectiveFn& objective,
                         std::size_t budget, std::uint64_t seed) override {
    tpe_.set_evaluation(eval_policy_, objective_workers_);
    return tpe_.tune(task, space, objective, budget, seed);
  }

 private:
  HpBandSterLite tpe_{HpBandSterOptions{}};
};

}  // namespace gptune::baselines
