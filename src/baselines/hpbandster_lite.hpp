// HpBandSter-style tuner (Falkner et al., ICML 2018 "BOHB"; paper §5).
//
// HpBandSter couples Hyperband with a Tree Parzen Estimator (TPE): instead
// of directly maximizing EI on a GP, it models the densities l(x) of the
// best gamma-quantile observations and g(x) of the rest, and proposes the
// candidate maximizing l(x)/g(x). Following the paper's comparison setup
// (§6.6: "we disabled the multi-armed bandit feature since it requires
// running applications with varying fidelity"), only the TPE component is
// reproduced here: full-fidelity evaluations, KDE per dimension (Gaussian
// kernels on normalized numeric parameters, smoothed frequencies on
// categoricals).
#pragma once

#include "baselines/tuner_iface.hpp"

namespace gptune::baselines {

struct HpBandSterOptions {
  std::size_t min_points_in_model = 0;  ///< 0 means dim + 2
  double good_fraction = 0.25;          ///< top quantile modeled as l(x)
  std::size_t num_candidates = 32;      ///< samples from l(x) per step
  double bandwidth_floor = 0.03;        ///< minimum KDE bandwidth
  double random_fraction = 0.2;         ///< fraction of pure-random steps
};

class HpBandSterLite : public SingleTaskTuner {
 public:
  explicit HpBandSterLite(HpBandSterOptions options = {})
      : options_(options) {}

  std::string name() const override { return "HpBandSter"; }

  core::TaskHistory tune(const core::TaskVector& task,
                         const core::Space& space,
                         const core::MultiObjectiveFn& objective,
                         std::size_t budget, std::uint64_t seed) override;

 private:
  HpBandSterOptions options_;
};

}  // namespace gptune::baselines
