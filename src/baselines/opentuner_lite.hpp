// OpenTuner-style ensemble tuner (Ansel et al., PACT 2014; paper §5).
//
// OpenTuner frames autotuning as a multi-armed bandit over a collection of
// model-free search techniques: function evaluations are the resource, and
// a sliding-window AUC credit assignment adaptively allocates them to the
// technique that has recently produced the most improvements. This
// from-scratch reproduction implements the same structure with five arms:
//   random search, genetic crossover/mutation of elites, simulated-
//   annealing random walk, pattern (coordinate) search with step halving,
//   and differential-evolution steps around the incumbent.
// Arms are ask/tell: each proposes one configuration given the shared
// evaluation history.
#pragma once

#include "baselines/tuner_iface.hpp"

namespace gptune::baselines {

struct OpenTunerOptions {
  std::size_t bandit_window = 20;    ///< sliding window for AUC credit
  double exploration = 1.0;          ///< UCB exploration constant
  std::size_t elite_size = 5;        ///< parents pool for the GA arm
};

class OpenTunerLite : public SingleTaskTuner {
 public:
  explicit OpenTunerLite(OpenTunerOptions options = {})
      : options_(options) {}

  std::string name() const override { return "OpenTuner"; }

  core::TaskHistory tune(const core::TaskVector& task,
                         const core::Space& space,
                         const core::MultiObjectiveFn& objective,
                         std::size_t budget, std::uint64_t seed) override;

 private:
  OpenTunerOptions options_;
};

}  // namespace gptune::baselines
