#include "baselines/opentuner_lite.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "opt/genetic.hpp"

namespace gptune::baselines {

namespace {

using core::Config;
using core::Space;
using core::TaskHistory;

/// Indices of the `k` best evaluations so far (by first objective).
std::vector<std::size_t> elite_indices(const TaskHistory& history,
                                       std::size_t k) {
  std::vector<std::size_t> idx(history.evals.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
    return history.evals[a].objectives[0] < history.evals[b].objectives[0];
  });
  if (idx.size() > k) idx.resize(k);
  return idx;
}

// --- the five arms ---

Config arm_random(const Space& space, const TaskHistory&, common::Rng& rng,
                  std::size_t) {
  return space.sample_feasible(rng);
}

Config arm_genetic(const Space& space, const TaskHistory& history,
                   common::Rng& rng, std::size_t elite_size) {
  if (history.evals.size() < 2) return space.sample_feasible(rng);
  const auto elites = elite_indices(history, elite_size);
  const auto pick = [&] {
    return elites[static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(elites.size()) - 1))];
  };
  const opt::Point p1 = space.normalize(history.evals[pick()].config);
  const opt::Point p2 = space.normalize(history.evals[pick()].config);
  opt::Point c1, c2;
  const auto box = opt::Box::unit(space.dim());
  opt::sbx_crossover(p1, p2, box, 15.0, 1.0, rng, c1, c2);
  opt::polynomial_mutation(c1, box, 20.0,
                           1.0 / static_cast<double>(space.dim()), rng);
  Config c = space.denormalize(c1);
  return space.feasible(c) ? c : space.sample_feasible(rng);
}

Config arm_annealing(const Space& space, const TaskHistory& history,
                     common::Rng& rng, std::size_t) {
  if (history.evals.empty()) return space.sample_feasible(rng);
  // Walk around a random recent configuration with a temperature that
  // cools as the budget is consumed.
  const std::size_t n = history.evals.size();
  const std::size_t back = std::min<std::size_t>(5, n);
  const std::size_t base = n - 1 - static_cast<std::size_t>(rng.uniform_int(
                                       0, static_cast<std::int64_t>(back) - 1));
  opt::Point u = space.normalize(history.evals[base].config);
  const double temperature = 0.3 * std::exp(-static_cast<double>(n) / 40.0) +
                             0.02;
  for (double& v : u) v += rng.normal(0.0, temperature);
  opt::Box::unit(space.dim()).clamp(u);
  Config c = space.denormalize(u);
  return space.feasible(c) ? c : space.sample_feasible(rng);
}

Config arm_pattern(const Space& space, const TaskHistory& history,
                   common::Rng& rng, std::size_t) {
  if (history.evals.empty()) return space.sample_feasible(rng);
  // Coordinate step around the incumbent with a step that halves as the
  // history grows (Hooke-Jeeves flavored).
  opt::Point u = space.normalize(history.best_config(0));
  const double step =
      std::max(0.02, 0.4 * std::pow(0.9, static_cast<double>(
                                             history.evals.size())));
  const auto d = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(space.dim()) - 1));
  u[d] += rng.uniform() < 0.5 ? step : -step;
  opt::Box::unit(space.dim()).clamp(u);
  Config c = space.denormalize(u);
  return space.feasible(c) ? c : space.sample_feasible(rng);
}

Config arm_de(const Space& space, const TaskHistory& history,
              common::Rng& rng, std::size_t) {
  if (history.evals.size() < 3) return space.sample_feasible(rng);
  const std::size_t n = history.evals.size();
  const auto pick = [&] {
    return static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
  };
  opt::Point best = space.normalize(history.best_config(0));
  const opt::Point r1 = space.normalize(history.evals[pick()].config);
  const opt::Point r2 = space.normalize(history.evals[pick()].config);
  for (std::size_t i = 0; i < best.size(); ++i) {
    best[i] += 0.7 * (r1[i] - r2[i]);
  }
  opt::Box::unit(space.dim()).clamp(best);
  Config c = space.denormalize(best);
  return space.feasible(c) ? c : space.sample_feasible(rng);
}

using ArmFn = Config (*)(const Space&, const TaskHistory&, common::Rng&,
                         std::size_t);

}  // namespace

core::TaskHistory OpenTunerLite::tune(const core::TaskVector& task,
                                      const core::Space& space,
                                      const core::MultiObjectiveFn& objective,
                                      std::size_t budget,
                                      std::uint64_t seed) {
  static constexpr ArmFn kArms[] = {arm_random, arm_genetic, arm_annealing,
                                    arm_pattern, arm_de};
  constexpr std::size_t kNumArms = sizeof(kArms) / sizeof(kArms[0]);

  common::Rng rng(seed);
  TaskHistory history;
  history.task = task;
  auto engine = make_engine(objective);

  // Sliding window of (arm, improved?) outcomes for AUC credit: a recent
  // improvement is worth more than an old one.
  std::deque<std::pair<std::size_t, bool>> window;
  std::vector<std::size_t> uses(kNumArms, 0);
  double best = std::numeric_limits<double>::infinity();

  for (std::size_t e = 0; e < budget; ++e) {
    // Choose the arm: each arm at least once, then UCB on AUC credit.
    std::size_t arm;
    if (e < kNumArms) {
      arm = e;
    } else {
      double best_score = -std::numeric_limits<double>::infinity();
      arm = 0;
      for (std::size_t a = 0; a < kNumArms; ++a) {
        // AUC credit: sum of recency weights of this arm's improvements
        // within the window, normalized by its window usage.
        double credit = 0.0, weight_sum = 0.0;
        double w = 1.0;
        for (auto it = window.rbegin(); it != window.rend(); ++it) {
          if (it->first == a) {
            weight_sum += w;
            if (it->second) credit += w;
          }
          w *= 0.95;
        }
        const double exploit = weight_sum > 0.0 ? credit / weight_sum : 0.5;
        const double explore =
            options_.exploration *
            std::sqrt(2.0 * std::log(static_cast<double>(e + 1)) /
                      static_cast<double>(std::max<std::size_t>(1, uses[a])));
        const double score = exploit + explore;
        if (score > best_score) {
          best_score = score;
          arm = a;
        }
      }
    }

    const Config c = kArms[arm](space, history, rng, options_.elite_size);
    const auto y = engine->evaluate_one(task, c);
    history.evals.push_back({c, y});
    ++uses[arm];

    const bool improved = y[0] < best;
    if (improved) best = y[0];
    window.emplace_back(arm, improved);
    if (window.size() > options_.bandit_window) window.pop_front();
  }
  return history;
}

}  // namespace gptune::baselines
