// GPTune restricted to a single task (delta = 1): the MLA machinery with an
// ordinary single-task GP. Used as the "Single-task" rows of paper Table 3
// / Fig. 5 and to drive GPTune through the common SingleTaskTuner
// interface in the tuner-comparison benches.
#pragma once

#include "baselines/tuner_iface.hpp"

namespace gptune::baselines {

class SingleTaskGpTune : public SingleTaskTuner {
 public:
  /// `options` configures the underlying MLA run; budget/seed/task count
  /// are overridden per tune() call.
  explicit SingleTaskGpTune(core::MlaOptions options = {})
      : options_(options) {}

  std::string name() const override { return "GPTune-1task"; }

  core::TaskHistory tune(const core::TaskVector& task,
                         const core::Space& space,
                         const core::MultiObjectiveFn& objective,
                         std::size_t budget, std::uint64_t seed) override;

  /// Phase times accumulated over all tune() calls (paper Table 3).
  const core::PhaseTimes& times() const { return times_; }
  void reset_times() { times_ = {}; }

 private:
  core::MlaOptions options_;
  core::PhaseTimes times_;
};

}  // namespace gptune::baselines
