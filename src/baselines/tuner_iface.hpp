// Common single-task tuner interface.
//
// Paper §6.1: "To make it easier for users to try different autotuners, our
// interface allows the user to invoke them as well." Every baseline (and a
// delta=1 GPTune adapter) implements this interface, so the comparison
// benches drive all tuners identically.
#pragma once

#include <memory>
#include <string>

#include "core/mla.hpp"
#include "core/space.hpp"

namespace gptune::baselines {

class SingleTaskTuner {
 public:
  virtual ~SingleTaskTuner() = default;

  virtual std::string name() const = 0;

  /// Spends `budget` evaluations of `objective` on one task; returns the
  /// full evaluation history (first objective is the one minimized).
  virtual core::TaskHistory tune(const core::TaskVector& task,
                                 const core::Space& space,
                                 const core::MultiObjectiveFn& objective,
                                 std::size_t budget, std::uint64_t seed) = 0;
};

}  // namespace gptune::baselines
