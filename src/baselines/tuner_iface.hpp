// Common single-task tuner interface.
//
// Paper §6.1: "To make it easier for users to try different autotuners, our
// interface allows the user to invoke them as well." Every baseline (and a
// delta=1 GPTune adapter) implements this interface, so the comparison
// benches drive all tuners identically.
#pragma once

#include <algorithm>
#include <memory>
#include <string>

#include "core/mla.hpp"
#include "core/space.hpp"

namespace gptune::baselines {

class SingleTaskTuner {
 public:
  virtual ~SingleTaskTuner() = default;

  virtual std::string name() const = 0;

  /// Spends `budget` evaluations of `objective` on one task; returns the
  /// full evaluation history (first objective is the one minimized).
  virtual core::TaskHistory tune(const core::TaskVector& task,
                                 const core::Space& space,
                                 const core::MultiObjectiveFn& objective,
                                 std::size_t budget, std::uint64_t seed) = 0;

  /// Shared evaluation path: every baseline routes objective calls through
  /// a core::EvalEngine built from this policy, so all tuners in a
  /// comparison get identical timeout/retry/penalty handling and worker
  /// configuration (GPTune included, via its MlaOptions).
  void set_evaluation(core::EvalPolicy policy,
                      std::size_t objective_workers = 1) {
    eval_policy_ = std::move(policy);
    objective_workers_ = std::max<std::size_t>(1, objective_workers);
  }

 protected:
  /// Engine for one tune() call. Sequential tuners evaluate one candidate
  /// at a time, so the engine mainly contributes the robustness policy;
  /// batch-capable tuners get concurrency for free.
  std::unique_ptr<core::EvalEngine> make_engine(
      const core::MultiObjectiveFn& objective) const {
    return std::make_unique<core::EvalEngine>(objective, 1,
                                              objective_workers_,
                                              eval_policy_);
  }

  core::EvalPolicy eval_policy_;
  std::size_t objective_workers_ = 1;
};

}  // namespace gptune::baselines
