#include "baselines/single_task_gptune.hpp"

namespace gptune::baselines {

core::TaskHistory SingleTaskGpTune::tune(
    const core::TaskVector& task, const core::Space& space,
    const core::MultiObjectiveFn& objective, std::size_t budget,
    std::uint64_t seed) {
  core::MlaOptions options = options_;
  options.budget_per_task = budget;
  options.seed = seed;
  options.num_latent = 1;  // delta = 1: plain GP
  // Shared evaluation path (set_evaluation) wins over whatever the
  // constructor-supplied MlaOptions carried, so comparisons stay fair.
  options.objective_workers = objective_workers_;
  options.evaluation = eval_policy_;
  core::MultitaskTuner tuner(space, objective, options);
  core::MlaResult result = tuner.run({task});
  times_.objective += result.times.objective;
  times_.modeling += result.times.modeling;
  times_.search += result.times.search;
  return std::move(result.tasks.front());
}

}  // namespace gptune::baselines
