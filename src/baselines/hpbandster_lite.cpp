#include "baselines/hpbandster_lite.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

namespace gptune::baselines {

namespace {

using core::Config;
using core::Space;

/// One-dimensional kernel density estimate over normalized values in [0,1]
/// (numeric parameters) or category indices (categoricals).
struct DimensionKde {
  bool categorical = false;
  std::size_t num_categories = 0;
  std::vector<double> points;      ///< normalized samples (numeric)
  std::vector<double> cat_counts;  ///< smoothed counts (categorical)
  double bandwidth = 0.1;

  double density(double v) const {
    if (categorical) {
      const auto k = static_cast<std::size_t>(v);
      double total = 0.0;
      for (double c : cat_counts) total += c;
      return cat_counts[std::min(k, cat_counts.size() - 1)] / total;
    }
    double s = 0.0;
    for (double p : points) {
      const double z = (v - p) / bandwidth;
      s += std::exp(-0.5 * z * z);
    }
    return s / (static_cast<double>(points.size()) * bandwidth *
                std::sqrt(2.0 * std::numbers::pi)) +
           1e-12;
  }
};

DimensionKde build_kde(const Space& space, std::size_t dim,
                       const std::vector<Config>& configs,
                       double bandwidth_floor) {
  DimensionKde kde;
  const auto& param = space.parameter(dim);
  if (param.type == core::ParamType::kCategorical) {
    kde.categorical = true;
    kde.num_categories = param.num_categories();
    kde.cat_counts.assign(kde.num_categories, 1.0);  // Laplace smoothing
    for (const auto& c : configs) {
      kde.cat_counts[static_cast<std::size_t>(c[dim])] += 1.0;
    }
    return kde;
  }
  for (const auto& c : configs) {
    kde.points.push_back(space.normalize(c)[dim]);
  }
  // Scott's rule on [0,1]-normalized data, floored to stay exploratory.
  double mean = 0.0;
  for (double p : kde.points) mean += p;
  mean /= std::max<std::size_t>(1, kde.points.size());
  double var = 0.0;
  for (double p : kde.points) var += (p - mean) * (p - mean);
  var /= std::max<std::size_t>(1, kde.points.size());
  kde.bandwidth = std::max(
      bandwidth_floor,
      1.06 * std::sqrt(var) *
          std::pow(static_cast<double>(std::max<std::size_t>(
                       1, kde.points.size())),
                   -0.2));
  return kde;
}

/// Draws a candidate from the product of per-dimension "good" KDEs:
/// pick a good sample per dimension and jitter by the bandwidth.
Config sample_from_l(const Space& space, const std::vector<DimensionKde>& l,
                     const std::vector<Config>& good, common::Rng& rng) {
  opt::Point u(space.dim());
  for (std::size_t d = 0; d < space.dim(); ++d) {
    if (l[d].categorical) {
      u[d] = static_cast<double>(rng.categorical(l[d].cat_counts)) /
             std::max(1.0, static_cast<double>(l[d].num_categories - 1));
      if (l[d].num_categories == 1) u[d] = 0.0;
    } else {
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(good.size()) - 1));
      const double center = space.normalize(good[pick])[d];
      u[d] = std::clamp(center + rng.normal(0.0, l[d].bandwidth), 0.0, 1.0);
    }
  }
  return space.denormalize(u);
}

double log_density_ratio(const Space& space,
                         const std::vector<DimensionKde>& l,
                         const std::vector<DimensionKde>& g,
                         const Config& c) {
  const opt::Point u = space.normalize(c);
  double score = 0.0;
  for (std::size_t d = 0; d < space.dim(); ++d) {
    const double v = l[d].categorical ? c[d] : u[d];
    score += std::log(l[d].density(v)) - std::log(g[d].density(v));
  }
  return score;
}

}  // namespace

core::TaskHistory HpBandSterLite::tune(const core::TaskVector& task,
                                       const core::Space& space,
                                       const core::MultiObjectiveFn& objective,
                                       std::size_t budget,
                                       std::uint64_t seed) {
  common::Rng rng(seed);
  core::TaskHistory history;
  history.task = task;
  auto engine = make_engine(objective);

  const std::size_t min_points = options_.min_points_in_model > 0
                                     ? options_.min_points_in_model
                                     : space.dim() + 2;

  for (std::size_t e = 0; e < budget; ++e) {
    Config candidate;
    const bool random_step =
        history.evals.size() < min_points ||
        rng.uniform() < options_.random_fraction;
    if (random_step) {
      candidate = space.sample_feasible(rng);
    } else {
      // Split observations into good (top quantile) and bad.
      std::vector<std::size_t> idx(history.evals.size());
      for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
      std::sort(idx.begin(), idx.end(), [&](std::size_t a, std::size_t b) {
        return history.evals[a].objectives[0] <
               history.evals[b].objectives[0];
      });
      const std::size_t n_good = std::max<std::size_t>(
          2, static_cast<std::size_t>(options_.good_fraction *
                                      static_cast<double>(idx.size())));
      std::vector<Config> good, bad;
      for (std::size_t i = 0; i < idx.size(); ++i) {
        (i < n_good ? good : bad).push_back(history.evals[idx[i]].config);
      }
      if (bad.size() < 2) {
        candidate = space.sample_feasible(rng);
      } else {
        std::vector<DimensionKde> l(space.dim()), g(space.dim());
        for (std::size_t d = 0; d < space.dim(); ++d) {
          l[d] = build_kde(space, d, good, options_.bandwidth_floor);
          g[d] = build_kde(space, d, bad, options_.bandwidth_floor);
        }
        double best_score = -std::numeric_limits<double>::infinity();
        for (std::size_t c = 0; c < options_.num_candidates; ++c) {
          Config trial = sample_from_l(space, l, good, rng);
          if (!space.feasible(trial)) continue;
          const double score = log_density_ratio(space, l, g, trial);
          if (score > best_score) {
            best_score = score;
            candidate = std::move(trial);
          }
        }
        if (candidate.empty()) candidate = space.sample_feasible(rng);
      }
    }
    const auto y = engine->evaluate_one(task, candidate);
    history.evals.push_back({std::move(candidate), y});
  }
  return history;
}

}  // namespace gptune::baselines
