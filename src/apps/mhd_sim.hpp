// M3D_C1 and NIMROD simulators: time-marching extended-MHD fusion codes
// whose inner kernel is a preconditioned GMRES solve with SuperLU_DIST as a
// block-Jacobi subdomain solver (paper §6.2).
//
// SUBSTITUTION NOTE (see DESIGN.md §1): the production codes are replaced
// by a time-stepping cost model: a one-time SuperLU-style factorization of
// the poloidal-plane matrix (cost depends on the SuperLU tuning parameters,
// reusing the SuperluSim cost structure) plus, per time step, GMRES
// iterations of triangular solves and matvecs, and (NIMROD only) matrix
// assembly whose cost depends on the nxbl/nybl blocking. The task parameter
// is the number of time steps — small-step tasks are cheap proxies for the
// expensive production run, exactly the regime the paper's Table 3 (lower)
// exploits with multitask learning.
//
// Tuning parameters:
//   M3D_C1 (beta = 5): [ROWPERM, COLPERM, p_r, NSUP, NREL]
//   NIMROD (beta = 7): [ROWPERM, COLPERM, p_r, NSUP, NREL, nxbl, nybl]
// MPI count p is fixed per app (paper: 1 node for M3D_C1, 6 for NIMROD).
#pragma once

#include <cstdint>

#include "apps/machine.hpp"
#include "core/mla.hpp"
#include "core/space.hpp"

namespace gptune::apps {

class M3dc1Sim {
 public:
  explicit M3dc1Sim(MachineConfig machine = {}, double noise_sigma = 0.05,
                    std::uint64_t noise_seed = 3141);

  core::Space tuning_space() const;

  /// Simulated wall time for task [steps].
  double runtime(const core::TaskVector& task, const core::Config& x,
                 std::uint64_t trial = 0) const;

  core::MultiObjectiveFn objective(int trials = 1) const;

 protected:
  MachineConfig machine_;
  double noise_sigma_;
  std::uint64_t noise_seed_;
};

class NimrodSim {
 public:
  explicit NimrodSim(MachineConfig machine = MachineConfig{6, 32},
                     double noise_sigma = 0.05,
                     std::uint64_t noise_seed = 2718);

  core::Space tuning_space() const;

  double runtime(const core::TaskVector& task, const core::Config& x,
                 std::uint64_t trial = 0) const;

  core::MultiObjectiveFn objective(int trials = 1) const;

 private:
  MachineConfig machine_;
  double noise_sigma_;
  std::uint64_t noise_seed_;
};

}  // namespace gptune::apps
