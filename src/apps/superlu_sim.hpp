// SuperLU_DIST simulator: sparse LU factorization time and memory.
//
// SUBSTITUTION NOTE (see DESIGN.md §1): the paper tunes SuperLU_DIST on
// PARSEC matrices from the SuiteSparse collection. Neither the solver nor
// the downloads are available here, so this module carries a catalog of
// synthetic matrix statistics named after the paper's matrices (dimensions
// and nonzero counts follow the published SuiteSparse values) and an
// analytic cost model of right-looking supernodal sparse LU:
//   * fill-in depends on the column permutation (COLPERM, categorical);
//   * BLAS-3 efficiency grows with the maximum supernode size NSUP while
//     padding overhead grows too (the time/memory trade-off behind the
//     paper's Fig. 7 Pareto fronts);
//   * relaxed supernodes (NREL) amortize small-column overhead;
//   * look-ahead depth (LOOK) hides pipeline idle time;
//   * the 2D process grid (p, p_r) trades off imbalance and communication.
//
// Tuning parameters (beta = 6, paper Table 2):
//   x = [COLPERM, LOOK, p, p_r, NSUP, NREL], constraint p_r <= p.
// Task parameter: matrix index into catalog().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "apps/machine.hpp"
#include "core/mla.hpp"
#include "core/space.hpp"

namespace gptune::apps {

struct SparseMatrixStats {
  std::string name;
  double n = 0;           ///< dimension
  double nnz = 0;         ///< nonzeros of A
  double base_fill = 0;   ///< nnz(L+U)/nnz(A) under the best ordering
};

class SuperluSim {
 public:
  explicit SuperluSim(MachineConfig machine = {}, double noise_sigma = 0.04,
                      std::uint64_t noise_seed = 1807);

  /// The 8 PARSEC matrices of paper Figs. 6-7 (synthetic statistics).
  static const std::vector<SparseMatrixStats>& catalog();

  /// Index of `name` in catalog(); throws std::out_of_range if absent.
  static std::size_t matrix_index(const std::string& name);

  core::Space tuning_space() const;

  /// Paper Table 5's default configuration.
  static core::Config default_config();

  struct FactorizationResult {
    double time_seconds = 0.0;
    double memory_bytes = 0.0;
  };

  /// Simulates one factorization of catalog()[task[0]] at configuration x.
  FactorizationResult factorize(const core::TaskVector& task,
                                const core::Config& x,
                                std::uint64_t trial = 0) const;

  double time_of_best_trial(const core::TaskVector& task,
                            const core::Config& x, int trials = 1) const;

  /// gamma = 1 adapter: {factorization time}.
  core::MultiObjectiveFn objective_time(int trials = 1) const;

  /// gamma = 2 adapter: {factorization time, memory} (paper §6.7).
  core::MultiObjectiveFn objective_time_memory(int trials = 1) const;

 private:
  MachineConfig machine_;
  double noise_sigma_;
  std::uint64_t noise_seed_;
};

}  // namespace gptune::apps
