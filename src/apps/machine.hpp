// Machine model shared by the application simulators.
//
// The paper's experiments ran on NERSC Cori Haswell nodes (2x16-core Xeon
// E5-2698v3, Cray Aries interconnect). Since that testbed is unavailable,
// the simulators convert analytic operation counts into seconds through
// this model; the constants loosely follow one Cori Haswell node. Absolute
// values are not the point — the response-surface *shape* (block-size
// efficiency curves, latency/bandwidth trade-offs, thread scaling) is what
// the tuner sees and what the reproduction depends on.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>

namespace gptune::apps {

struct MachineConfig {
  std::size_t nodes = 1;
  std::size_t cores_per_node = 32;
  double peak_flops_per_core = 30.0e9;  ///< sustained DGEMM rate
  double network_latency = 2.0e-6;      ///< seconds per message
  double network_word_time = 1.4e-9;    ///< seconds per 8-byte word
  double memory_per_node_bytes = 128.0 * (1ull << 30);

  std::size_t total_cores() const { return nodes * cores_per_node; }

  /// Dense-kernel efficiency of block size b: small blocks degenerate to
  /// BLAS-2 (memory bound), large blocks saturate. Smooth saturating curve.
  static double block_efficiency(double b) {
    return b / (b + 40.0);
  }

  /// Per-process flop rate with `threads` OpenMP threads (sub-linear
  /// scaling: memory-bandwidth contention).
  double process_flops(double threads, double block) const {
    const double t = std::max(1.0, threads);
    return peak_flops_per_core * std::pow(t, 0.92) *
           block_efficiency(block);
  }
};

/// Deterministic 64-bit mix for reproducible simulator noise: same inputs,
/// same "measurement".
inline std::uint64_t hash_mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  h *= 0xbf58476d1ce4e5b9ULL;
  return h ^ (h >> 31);
}

inline std::uint64_t hash_double(std::uint64_t h, double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  __builtin_memcpy(&bits, &v, sizeof(bits));
  return hash_mix(h, bits);
}

}  // namespace gptune::apps
