// hypre simulator: GMRES preconditioned with BoomerAMG on a 3D Poisson
// problem (paper §6.2, Table 4).
//
// SUBSTITUTION NOTE (see DESIGN.md §1): the real hypre library is replaced
// by an algebraic-multigrid performance model with the paper's structure:
// a task is the grid (n1, n2, n3); the 12 tuning parameters are the 3D
// process grid plus the usual BoomerAMG knobs (coarsening, interpolation,
// smoother choices and their real-valued parameters). The model computes
//   * an AMG convergence factor rho from the algorithmic choices (each
//     choice shifts rho and the operator complexity; the optimal strong
//     threshold depends on the grid, which is what makes multitask
//     transfer valuable),
//   * iteration count from rho,
//   * setup + per-iteration costs from operator complexity, local block
//     sizes, and the surface-to-volume communication of the 3D
//     decomposition.
//
// Tuning parameters (beta = 12, paper Table 2):
//   [CoarsenType, RelaxType, InterpType, strong_threshold, trunc_factor,
//    P_max_elmts, agg_num_levels, relax_weight, outer_weight, npx, npy, npz]
// with constraint npx*npy*npz <= total cores.
#pragma once

#include <cstdint>

#include "apps/machine.hpp"
#include "core/mla.hpp"
#include "core/space.hpp"

namespace gptune::apps {

class HypreSim {
 public:
  explicit HypreSim(MachineConfig machine = {}, double noise_sigma = 0.04,
                    std::uint64_t noise_seed = 4242);

  core::Space tuning_space() const;

  /// Simulated GMRES+BoomerAMG solve time for task [n1, n2, n3].
  double solve_time(const core::TaskVector& task, const core::Config& x,
                    std::uint64_t trial = 0) const;

  core::MultiObjectiveFn objective(int trials = 1) const;

  /// Iteration count the model predicts (exposed for tests).
  double iterations(const core::TaskVector& task, const core::Config& x) const;

 private:
  MachineConfig machine_;
  double noise_sigma_;
  std::uint64_t noise_seed_;
};

}  // namespace gptune::apps
