#include "apps/scalapack_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace gptune::apps {

namespace {

double log2p(double v) { return std::log2(std::max(v, 1.0)); }

/// Multiplicative lognormal measurement noise, deterministic in all inputs.
double noise_factor(std::uint64_t seed, double sigma,
                    const core::TaskVector& task, const core::Config& x,
                    std::uint64_t trial) {
  std::uint64_t h = seed;
  for (double v : task) h = hash_double(h, v);
  for (double v : x) h = hash_double(h, v);
  h = hash_mix(h, trial);
  common::Rng rng(h);
  return rng.lognormal(0.0, sigma);
}

}  // namespace

// --- PDGEQRF ---

PdgeqrfSim::PdgeqrfSim(MachineConfig machine, double noise_sigma,
                       std::uint64_t noise_seed)
    : machine_(machine), noise_sigma_(noise_sigma), noise_seed_(noise_seed) {}

core::Space PdgeqrfSim::tuning_space() const {
  const long cores = static_cast<long>(machine_.total_cores());
  core::Space space;
  space.add_integer("b", 4, 512, /*log_scale=*/true);
  space.add_integer("p", std::max<long>(4, cores / 16), cores,
                    /*log_scale=*/true);
  space.add_integer("p_r", 1, cores, /*log_scale=*/true);
  space.add_constraint("p_r <= p", [](const core::Config& c) {
    return c[2] <= c[1];
  });
  return space;
}

double PdgeqrfSim::qr_flops(double m, double n) {
  if (m < n) std::swap(m, n);  // wide QR = LQ of the transpose
  return 2.0 * n * n * (3.0 * m - n) / 3.0;
}

std::vector<double> PdgeqrfSim::model_features(const core::TaskVector& task,
                                               const core::Config& x) {
  // Eqs. (8)-(10) assume a tall matrix (m >= n); a wide QR costs the same
  // as the LQ of its transpose, so normalize the orientation first.
  const double m = std::max(task[0], task[1]);
  const double n = std::min(task[0], task[1]);
  const double b = x[0];
  const double p = x[1];
  const double pr = std::min(x[2], p);
  const double pc = std::max(1.0, std::floor(p / pr));

  // Paper Eqs. (8)-(10) with b_r = b_c = b.
  const double c_flop = 2.0 * n * n * (3.0 * m - n) / (3.0 * p) +
                        b * n * n / (2.0 * pc) +
                        3.0 * b * n * (2.0 * m - n) / (2.0 * pr) +
                        b * b * n / (3.0 * pr);
  const double c_msg = 3.0 * n * log2p(pr) + (2.0 * n / b) * log2p(pc);
  const double c_vol =
      (n * n / pc + b * n) * log2p(pr) +
      ((m * n - n * n / 2.0) / pr + b * n / 2.0) * log2p(pc);
  return {c_flop, c_msg, c_vol};
}

double PdgeqrfSim::runtime(const core::TaskVector& task,
                           const core::Config& x, std::uint64_t trial) const {
  const double m = std::max(task[0], task[1]);
  const double n = std::min(task[0], task[1]);
  const double b = x[0];
  const double p = std::max(1.0, x[1]);
  const double pr = std::clamp(x[2], 1.0, p);
  const double pc = std::max(1.0, std::floor(p / pr));
  const double threads =
      std::max(1.0, std::floor(static_cast<double>(machine_.total_cores()) /
                               p));

  const auto f = model_features(task, x);

  // Flop term: per-process flop count over the effective process rate,
  // inflated by block-cyclic load imbalance (too-large blocks starve
  // small local sub-grids).
  const double imbalance =
      1.0 + 0.5 * b * pr / std::max(m, 1.0) + 0.5 * b * pc / std::max(n, 1.0);
  const double t_flop =
      f[0] / machine_.process_flops(threads, b) * imbalance;
  const double t_msg = f[1] * machine_.network_latency;
  const double t_vol = f[2] * machine_.network_word_time;

  // Penalty when the grid is deeper than the matrix: surplus processes
  // idle but still join every broadcast, so the slowdown saturates rather
  // than growing without bound.
  double starve = 1.0;
  if (m / pr < b) starve += std::min(4.0, b * pr / m - 1.0);
  if (n / pc < b) starve += std::min(4.0, b * pc / n - 1.0);

  const double base = (t_flop + t_msg + t_vol) * starve + 1e-3;
  return base * noise_factor(noise_seed_, noise_sigma_, task, x, trial);
}

double PdgeqrfSim::best_of_trials(const core::TaskVector& task,
                                  const core::Config& x, int trials) const {
  double best = runtime(task, x, 0);
  for (int t = 1; t < trials; ++t) {
    best = std::min(best, runtime(task, x, static_cast<std::uint64_t>(t)));
  }
  return best;
}

core::MultiObjectiveFn PdgeqrfSim::objective(int trials) const {
  return [this, trials](const core::TaskVector& task,
                        const core::Config& x) {
    return std::vector<double>{best_of_trials(task, x, trials)};
  };
}

core::LinearCombinationModel PdgeqrfSim::make_performance_model() const {
  // Initial coefficients: one over peak rate, latency, word time — the
  // "textbook" guess that update() then refits against observations.
  return core::LinearCombinationModel(
      &PdgeqrfSim::model_features,
      {1.0 / machine_.peak_flops_per_core, machine_.network_latency,
       machine_.network_word_time});
}

// --- PDSYEVX ---

PdsyevxSim::PdsyevxSim(MachineConfig machine, double noise_sigma,
                       std::uint64_t noise_seed)
    : machine_(machine), noise_sigma_(noise_sigma), noise_seed_(noise_seed) {}

core::Space PdsyevxSim::tuning_space() const {
  const long cores = static_cast<long>(machine_.total_cores());
  core::Space space;
  space.add_integer("b", 4, 256, /*log_scale=*/true);
  space.add_integer("p", std::max<long>(1, cores / 16), cores,
                    /*log_scale=*/true);
  space.add_integer("p_r", 1, cores, /*log_scale=*/true);
  space.add_constraint("p_r <= p", [](const core::Config& c) {
    return c[2] <= c[1];
  });
  return space;
}

double PdsyevxSim::runtime(const core::TaskVector& task,
                           const core::Config& x, std::uint64_t trial) const {
  const double m = task[0];
  const double b = x[0];
  const double p = std::max(1.0, x[1]);
  const double pr = std::clamp(x[2], 1.0, p);
  const double pc = std::max(1.0, std::floor(p / pr));
  const double threads =
      std::max(1.0, std::floor(static_cast<double>(machine_.total_cores()) /
                               p));

  // Householder tridiagonalization (4/3 m^3, half BLAS-2 and memory-bound)
  // plus eigenvector back-transformation (~2 m^3 BLAS-3).
  const double tri_flops = 4.0 / 3.0 * m * m * m / p;
  const double back_flops = 2.0 * m * m * m / p;
  // BLAS-2 half saturates at ~25% of peak regardless of block size.
  const double blas2_rate =
      0.25 * machine_.peak_flops_per_core * std::pow(threads, 0.85);
  const double blas3_rate = machine_.process_flops(threads, b);

  const double imbalance = 1.0 + 0.5 * b * (pr + pc) / std::max(m, 1.0);
  const double t_flop =
      (0.5 * tri_flops / blas2_rate + (0.5 * tri_flops + back_flops) /
                                          blas3_rate) *
      imbalance;

  // Panel broadcasts/reductions each of the ~m/b iterations.
  const double c_msg = (m / b) * (6.0 * log2p(pr) + 4.0 * log2p(pc));
  const double c_vol = (m * m / pc + b * m) * log2p(pr) +
                       (m * m / (2.0 * pr)) * log2p(pc);
  const double t_msg = c_msg * machine_.network_latency;
  const double t_vol = c_vol * machine_.network_word_time;

  double starve = 1.0;
  if (m / pr < b) starve += std::min(4.0, b * pr / m - 1.0);
  if (m / pc < b) starve += std::min(4.0, b * pc / m - 1.0);

  const double base = (t_flop + t_msg + t_vol) * starve + 1e-3;
  return base * noise_factor(noise_seed_, noise_sigma_, task, x, trial);
}

double PdsyevxSim::best_of_trials(const core::TaskVector& task,
                                  const core::Config& x, int trials) const {
  double best = runtime(task, x, 0);
  for (int t = 1; t < trials; ++t) {
    best = std::min(best, runtime(task, x, static_cast<std::uint64_t>(t)));
  }
  return best;
}

core::MultiObjectiveFn PdsyevxSim::objective(int trials) const {
  return [this, trials](const core::TaskVector& task,
                        const core::Config& x) {
    return std::vector<double>{best_of_trials(task, x, trials)};
  };
}

}  // namespace gptune::apps
