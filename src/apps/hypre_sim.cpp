#include "apps/hypre_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace gptune::apps {

namespace {

double noise_factor(std::uint64_t seed, double sigma,
                    const core::TaskVector& task, const core::Config& x,
                    std::uint64_t trial) {
  std::uint64_t h = seed;
  for (double v : task) h = hash_double(h, v);
  for (double v : x) h = hash_double(h, v);
  h = hash_mix(h, trial);
  common::Rng rng(h);
  return rng.lognormal(0.0, sigma);
}

// Convergence-factor multiplier and setup/operator-complexity multiplier
// per coarsening algorithm (index order of tuning_space()).
struct CoarsenTraits {
  double rho_mult;
  double complexity;
  double setup_mult;
};
constexpr CoarsenTraits kCoarsen[6] = {
    {1.00, 1.60, 1.45},  // CLJP: strong convergence, heavy complexity
    {0.95, 1.45, 1.25},  // Falgout
    {1.25, 1.10, 0.90},  // PMIS: cheap, weaker convergence
    {1.12, 1.18, 0.95},  // HMIS
    {0.92, 1.55, 1.35},  // Ruge-Stueben
    {1.08, 1.30, 1.10},  // CGC
};

struct RelaxTraits {
  double rho_mult;
  double flops_per_point;
};
constexpr RelaxTraits kRelax[4] = {
    {1.30, 2.0},  // Jacobi: cheap, weak
    {1.00, 3.0},  // hybrid Gauss-Seidel
    {0.92, 4.0},  // L1 Gauss-Seidel
    {0.88, 6.0},  // Chebyshev: strong, pricier
};

struct InterpTraits {
  double rho_mult;
  double complexity;
};
constexpr InterpTraits kInterp[6] = {
    {1.10, 1.25},  // classical
    {1.25, 1.00},  // direct
    {1.05, 1.12},  // multipass
    {0.90, 1.20},  // extended+i
    {1.00, 1.15},  // standard
    {1.15, 1.05},  // FF
};

}  // namespace

HypreSim::HypreSim(MachineConfig machine, double noise_sigma,
                   std::uint64_t noise_seed)
    : machine_(machine), noise_sigma_(noise_sigma), noise_seed_(noise_seed) {}

core::Space HypreSim::tuning_space() const {
  const long cores = static_cast<long>(machine_.total_cores());
  core::Space space;
  space.add_categorical("CoarsenType",
                        {"CLJP", "Falgout", "PMIS", "HMIS", "RS", "CGC"});
  space.add_categorical("RelaxType", {"Jacobi", "HybridGS", "L1GS", "Cheby"});
  space.add_categorical("InterpType", {"classical", "direct", "multipass",
                                       "ext+i", "standard", "FF"});
  space.add_real("strong_threshold", 0.1, 0.9);
  space.add_real("trunc_factor", 0.0, 0.5);
  space.add_integer("P_max_elmts", 1, 12);
  space.add_integer("agg_num_levels", 0, 4);
  space.add_real("relax_weight", 0.5, 1.5);
  space.add_real("outer_weight", 0.5, 1.5);
  space.add_integer("npx", 1, cores);
  space.add_integer("npy", 1, cores);
  space.add_integer("npz", 1, cores);
  space.add_constraint("npx*npy*npz <= cores",
                       [cores](const core::Config& c) {
                         return c[9] * c[10] * c[11] <=
                                static_cast<double>(cores);
                       });
  return space;
}

double HypreSim::iterations(const core::TaskVector& task,
                            const core::Config& x) const {
  const double n1 = task[0], n2 = task[1], n3 = task[2];
  const double total = n1 * n2 * n3;
  const auto coarsen = kCoarsen[static_cast<std::size_t>(x[0])];
  const auto relax = kRelax[static_cast<std::size_t>(x[1])];
  const auto interp = kInterp[static_cast<std::size_t>(x[2])];
  const double theta = x[3];
  const double trunc = x[4];
  const double pmax = x[5];
  const double agg = x[6];
  const double relax_wt = x[7];
  const double outer_wt = x[8];

  // Grid-dependent optimal strong threshold: larger/more anisotropic
  // problems want larger theta (this is the task dependence multitask
  // learning exploits).
  const double aspect =
      std::max({n1, n2, n3}) / std::max(1.0, std::min({n1, n2, n3}));
  double theta_opt = 0.25 + 0.04 * std::log2(std::max(total, 8.0) / 1e3) +
                     0.08 * std::log2(aspect);
  theta_opt = std::clamp(theta_opt, 0.2, 0.75);

  double rho = 0.12 * coarsen.rho_mult * relax.rho_mult * interp.rho_mult;
  rho *= 1.0 + 2.5 * (theta - theta_opt) * (theta - theta_opt);
  // Interpolation truncation: mild truncation is free, heavy truncation
  // hurts convergence; low P_max caps interpolation quality.
  rho *= 1.0 + 1.2 * trunc * trunc;
  rho *= 1.0 + 0.35 / (1.0 + pmax);
  // Aggressive coarsening trades convergence for complexity.
  rho *= 1.0 + 0.10 * agg;
  // Damping weights: quadratic penalty around the sweet spot.
  rho *= 1.0 + 0.8 * (relax_wt - 1.05) * (relax_wt - 1.05);
  rho *= 1.0 + 0.4 * (outer_wt - 1.0) * (outer_wt - 1.0);
  rho = std::clamp(rho, 0.02, 0.95);

  // GMRES to 1e-8 with AMG convergence factor rho per cycle.
  return std::ceil(std::log(1e-8) / std::log(rho));
}

double HypreSim::solve_time(const core::TaskVector& task,
                            const core::Config& x,
                            std::uint64_t trial) const {
  const double n1 = task[0], n2 = task[1], n3 = task[2];
  const double total = n1 * n2 * n3;
  const auto coarsen = kCoarsen[static_cast<std::size_t>(x[0])];
  const auto relax = kRelax[static_cast<std::size_t>(x[1])];
  const auto interp = kInterp[static_cast<std::size_t>(x[2])];
  const double trunc = x[4];
  const double pmax = x[5];
  const double agg = x[6];
  const double npx = std::max(1.0, x[9]);
  const double npy = std::max(1.0, x[10]);
  const double npz = std::max(1.0, x[11]);
  const double p = npx * npy * npz;

  // Operator complexity: sum over levels of nnz relative to the fine grid.
  double complexity = coarsen.complexity * interp.complexity;
  complexity *= (1.0 - 0.07 * agg);                 // aggressive coarsening
  complexity *= (1.0 - 0.25 * trunc);               // truncation trims P
  complexity *= (1.0 + 0.015 * pmax);               // rich interpolation
  complexity = std::max(complexity, 1.02);

  // Local block and surface-to-volume communication of the decomposition.
  const double lx = std::ceil(n1 / npx), ly = std::ceil(n2 / npy),
               lz = std::ceil(n3 / npz);
  const double local = lx * ly * lz;
  const double imbalance = local * p / total;       // >= 1
  const double surface = 2.0 * (lx * ly + ly * lz + lz * lx);
  const double levels =
      std::max(2.0, std::log2(std::max(total, 8.0)) / 3.0);

  const double rate = 0.08 * machine_.peak_flops_per_core;  // memory bound
  const double iters = iterations(task, x);

  // Per V-cycle: smoothing+residual+transfer work over all levels
  // (complexity folds the level sum in), plus per-level halo exchanges.
  const double flops_per_cycle =
      7.0 * complexity * local * relax.flops_per_point * imbalance;
  const double t_cycle_comp = flops_per_cycle / rate;
  const double t_cycle_comm =
      levels * (8.0 * machine_.network_latency +
                surface * machine_.network_word_time * 1.5);
  // GMRES orthogonalization on top of each preconditioner application.
  const double t_gmres =
      (6.0 * local * imbalance) / rate +
      2.0 * std::log2(std::max(p, 2.0)) * machine_.network_latency;

  // Setup: strength graph, coarsening, interpolation assembly.
  const double t_setup =
      coarsen.setup_mult * 25.0 * complexity * local * imbalance / rate +
      levels * 12.0 * machine_.network_latency;

  const double time =
      t_setup + iters * (t_cycle_comp + t_cycle_comm + t_gmres) + 1e-4;
  return time * noise_factor(noise_seed_, noise_sigma_, task, x, trial);
}

core::MultiObjectiveFn HypreSim::objective(int trials) const {
  return [this, trials](const core::TaskVector& task, const core::Config& x) {
    double best = solve_time(task, x, 0);
    for (int t = 1; t < trials; ++t) {
      best = std::min(best, solve_time(task, x, static_cast<std::uint64_t>(t)));
    }
    return std::vector<double>{best};
  };
}

}  // namespace gptune::apps
