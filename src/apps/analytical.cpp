#include "apps/analytical.hpp"

#include <cmath>
#include <numbers>

#include "apps/machine.hpp"
#include "common/rng.hpp"

namespace gptune::apps {

double analytical_objective(double t, double x) {
  const double two_pi = 2.0 * std::numbers::pi;
  double s = 0.0;
  for (int i = 1; i <= 5; ++i) {
    s += std::sin(two_pi * x * std::pow(t + 2.0, i));
  }
  return 1.0 + std::exp(-std::pow(x + 1.0, t + 1.0)) * std::cos(two_pi * x) * s;
}

core::Space analytical_tuning_space() {
  core::Space space;
  space.add_real("x", 0.0, 1.0);
  return space;
}

core::MultiObjectiveFn analytical_fn() {
  return [](const core::TaskVector& task, const core::Config& config) {
    return std::vector<double>{analytical_objective(task[0], config[0])};
  };
}

double analytical_noisy_model(double t, double x, std::uint64_t seed) {
  std::uint64_t h = hash_double(hash_double(seed, t), x);
  common::Rng rng(h);
  return (1.0 + 0.1 * rng.normal()) * analytical_objective(t, x);
}

double analytical_true_minimum(double t, std::size_t grid) {
  double best = analytical_objective(t, 0.0);
  double best_x = 0.0;
  for (std::size_t i = 1; i < grid; ++i) {
    const double x = static_cast<double>(i) / static_cast<double>(grid - 1);
    const double v = analytical_objective(t, x);
    if (v < best) {
      best = v;
      best_x = x;
    }
  }
  // Golden-section refinement around the grid winner.
  const double h = 1.0 / static_cast<double>(grid - 1);
  double lo = std::max(0.0, best_x - h), hi = std::min(1.0, best_x + h);
  const double invphi = (std::sqrt(5.0) - 1.0) / 2.0;
  double c = hi - invphi * (hi - lo);
  double d = lo + invphi * (hi - lo);
  double fc = analytical_objective(t, c), fd = analytical_objective(t, d);
  for (int it = 0; it < 60; ++it) {
    if (fc < fd) {
      hi = d;
      d = c;
      fd = fc;
      c = hi - invphi * (hi - lo);
      fc = analytical_objective(t, c);
    } else {
      lo = c;
      c = d;
      fc = fd;
      d = lo + invphi * (hi - lo);
      fd = analytical_objective(t, d);
    }
  }
  return std::min({best, fc, fd});
}

}  // namespace gptune::apps
