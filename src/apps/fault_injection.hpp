// Deterministic fault injection for objective functions.
//
// Real tuning runs fail in three characteristic ways the paper's target
// applications exhibit: the application crashes (bad configuration, OOM),
// diverges and reports NaN/inf, or hangs far past its expected runtime and
// is killed by the job scheduler. FaultInjector wraps any MultiObjectiveFn
// and reproduces all three, keyed by a deterministic hash of (seed, task,
// config) — the same configuration always fails the same way, independent
// of evaluation order or objective-worker count, so fault-injected tuning
// trajectories stay bitwise reproducible.
//
// Transient mode makes a faulty configuration succeed after `heal_after`
// failed attempts of that same (task, config), exercising the evaluation
// engine's retry path. The per-configuration attempt counter is
// mutex-guarded, and retries happen inside one engine worker, so healing is
// deterministic at any worker count too.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/annotations.hpp"
#include "common/sync.hpp"
#include "core/eval_engine.hpp"

namespace gptune::apps {

struct FaultSpec {
  /// Probability that a configuration crashes (throws). Disjoint ranges of
  /// one uniform draw: a configuration triggers at most one fault kind.
  double crash_rate = 0.0;
  /// Probability that objective 0 comes back NaN.
  double nan_rate = 0.0;
  /// Probability that the run "hangs": every objective is scaled by
  /// hang_factor, so an engine timeout keyed to the objective's virtual
  /// cost will kill it.
  double hang_rate = 0.0;
  double hang_factor = 1.0e3;
  /// When true, a crash fault aborts the whole process (SIGABRT) instead
  /// of throwing — the throw models an application failure the evaluation
  /// engine handles, the abort models the tuner process itself dying.
  /// Exercises the flight recorder's fatal-signal dump path
  /// (GPTUNE_DUMP_DIR; DESIGN.md §3.12) and the post-mortem report flow.
  bool hard_crash = false;
  /// Mixed into the fault hash; different seeds fault different configs.
  std::uint64_t seed = 0;
  /// 0 = faults are permanent. k > 0 = a faulty (task, config) succeeds on
  /// its (k+1)-th attempt (transient failure; exercises engine retries).
  std::size_t heal_after = 0;
};

class FaultInjector {
 public:
  FaultInjector(core::MultiObjectiveFn inner, FaultSpec spec)
      : inner_(std::move(inner)), spec_(spec) {}

  /// Evaluates the wrapped objective, possibly injecting a fault.
  std::vector<double> operator()(const core::TaskVector& task,
                                 const core::Config& config) const;

  /// Total faults injected so far (all kinds).
  std::size_t faults_injected() const {
    common::MutexLock lock(mutex_);
    return faults_injected_;
  }

 private:
  core::MultiObjectiveFn inner_;
  FaultSpec spec_;

  mutable common::Mutex mutex_;
  /// Failed-attempt count per (task, config) hash, for heal_after.
  mutable std::unordered_map<std::uint64_t, std::size_t> attempts_
      GPTUNE_GUARDED_BY(mutex_);
  mutable std::size_t faults_injected_ GPTUNE_GUARDED_BY(mutex_) = 0;
};

/// Convenience: a MultiObjectiveFn wrapping `inner` with `spec`'s faults
/// (shared-state copyable, as std::function requires).
core::MultiObjectiveFn with_faults(core::MultiObjectiveFn inner,
                                   const FaultSpec& spec);

}  // namespace gptune::apps
