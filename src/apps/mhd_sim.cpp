#include "apps/mhd_sim.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace gptune::apps {

namespace {

double log2p(double v) { return std::log2(std::max(v, 1.0)); }

double noise_factor(std::uint64_t seed, double sigma,
                    const core::TaskVector& task, const core::Config& x,
                    std::uint64_t trial) {
  std::uint64_t h = seed;
  for (double v : task) h = hash_double(h, v);
  for (double v : x) h = hash_double(h, v);
  h = hash_mix(h, trial);
  common::Rng rng(h);
  return rng.lognormal(0.0, sigma);
}

/// Shared solver-core cost model: factorization of the poloidal-plane
/// matrix plus per-step GMRES with triangular solves. Returns
/// {factor_seconds, per_step_seconds}.
struct SolverCost {
  double factor = 0.0;
  double per_step = 0.0;
};

SolverCost plane_solver_cost(const MachineConfig& machine, double n_plane,
                             double nnz_plane, double rowperm,
                             std::size_t colperm, double p, double pr,
                             double nsup, double nrel) {
  // Fill-in: column permutation dominates; a poor numerical-stability row
  // permutation causes pivoting-induced extra fill (ROWPERM=NOROWPERM is
  // risky on these indefinite systems).
  static constexpr double kColpermFill[4] = {3.0, 1.3, 1.12, 1.0};
  const double rowperm_fill = rowperm < 0.5 ? 1.35 : 1.0;
  const double fill = 14.0 * kColpermFill[colperm] * rowperm_fill;
  const double nnz_f = nnz_plane * fill;
  const double avg_height = nnz_f / n_plane;

  const double pc = std::max(1.0, std::floor(p / pr));
  const double sn_eff = nsup / (nsup + 96.0);
  const double relax_overhead = 1.0 + 4.0 / std::max(nrel, 1.0);
  const double pad = 1.0 + 0.0025 * nsup;
  const double aspect_tall = std::max(1.0, pr / pc);
  const double grid = 1.0 + 0.22 * std::pow(aspect_tall - 1.0, 0.8) +
                      0.07 * std::pow(std::max(1.0, pc / pr) - 1.0, 0.8);

  const double flops = 2.2 * nnz_f * avg_height;
  const double p_eff = std::pow(p, 0.75);
  SolverCost cost;
  cost.factor = flops * relax_overhead * pad * grid /
                    (machine.peak_flops_per_core * sn_eff * p_eff) +
                (n_plane / nsup) * (log2p(pr) + log2p(pc)) *
                    machine.network_latency;

  // Per step: ~12 GMRES iterations, each one triangular solve (latency
  // bound: one message per supernode level) plus a matvec.
  const double gmres_iters = 12.0;
  const double t_trisolve =
      2.0 * nnz_f / (0.15 * machine.peak_flops_per_core * p_eff) +
      (n_plane / nsup) * 0.5 * machine.network_latency * (pr + pc) * 0.1;
  const double t_matvec =
      2.0 * nnz_plane / (0.1 * machine.peak_flops_per_core * p_eff);
  cost.per_step = gmres_iters * (t_trisolve + t_matvec);
  return cost;
}

}  // namespace

// --- M3D_C1 ---

M3dc1Sim::M3dc1Sim(MachineConfig machine, double noise_sigma,
                   std::uint64_t noise_seed)
    : machine_(machine), noise_sigma_(noise_sigma), noise_seed_(noise_seed) {}

core::Space M3dc1Sim::tuning_space() const {
  const long p = static_cast<long>(machine_.total_cores());
  core::Space space;
  space.add_categorical("ROWPERM", {"NOROWPERM", "LargeDiag"});
  space.add_categorical("COLPERM", {"NATURAL", "MMD_ATA", "MMD_AT_PLUS_A",
                                    "METIS_AT_PLUS_A"});
  space.add_integer("p_r", 1, p, /*log_scale=*/true);
  space.add_integer("NSUP", 16, 512, /*log_scale=*/true);
  space.add_integer("NREL", 4, 64, /*log_scale=*/true);
  return space;
}

double M3dc1Sim::runtime(const core::TaskVector& task, const core::Config& x,
                         std::uint64_t trial) const {
  const double steps = std::max(1.0, task[0]);
  const double p = static_cast<double>(machine_.total_cores());
  // C1 finite elements on the poloidal plane: dense 12-dof blocks.
  const double n_plane = 180000.0;
  const double nnz_plane = n_plane * 75.0;

  const auto cost = plane_solver_cost(
      machine_, n_plane, nnz_plane, x[0], static_cast<std::size_t>(x[1]), p,
      std::clamp(x[2], 1.0, p), std::max(8.0, x[3]), std::max(1.0, x[4]));

  // The preconditioner is refactored every few steps as the system drifts.
  const double refactor_every = 3.0;
  const double time = cost.factor * (1.0 + std::floor(steps / refactor_every)) +
                      steps * cost.per_step + 0.05;
  return time * noise_factor(noise_seed_, noise_sigma_, task, x, trial);
}

core::MultiObjectiveFn M3dc1Sim::objective(int trials) const {
  return [this, trials](const core::TaskVector& task, const core::Config& x) {
    double best = runtime(task, x, 0);
    for (int t = 1; t < trials; ++t) {
      best = std::min(best, runtime(task, x, static_cast<std::uint64_t>(t)));
    }
    return std::vector<double>{best};
  };
}

// --- NIMROD ---

NimrodSim::NimrodSim(MachineConfig machine, double noise_sigma,
                     std::uint64_t noise_seed)
    : machine_(machine), noise_sigma_(noise_sigma), noise_seed_(noise_seed) {}

core::Space NimrodSim::tuning_space() const {
  const long p = static_cast<long>(machine_.total_cores());
  core::Space space;
  space.add_categorical("ROWPERM", {"NOROWPERM", "LargeDiag"});
  space.add_categorical("COLPERM", {"NATURAL", "MMD_ATA", "MMD_AT_PLUS_A",
                                    "METIS_AT_PLUS_A"});
  space.add_integer("p_r", 1, p, /*log_scale=*/true);
  space.add_integer("NSUP", 16, 512, /*log_scale=*/true);
  space.add_integer("NREL", 4, 64, /*log_scale=*/true);
  space.add_integer("nxbl", 1, 32);
  space.add_integer("nybl", 1, 32);
  return space;
}

double NimrodSim::runtime(const core::TaskVector& task, const core::Config& x,
                          std::uint64_t trial) const {
  const double steps = std::max(1.0, task[0]);
  const double p = static_cast<double>(machine_.total_cores());
  // Spectral elements on the poloidal plane, Fourier in the third dim.
  const double n_plane = 90000.0;
  const double nnz_plane = n_plane * 110.0;

  const auto cost = plane_solver_cost(
      machine_, n_plane, nnz_plane, x[0], static_cast<std::size_t>(x[1]), p,
      std::clamp(x[2], 1.0, p), std::max(8.0, x[3]), std::max(1.0, x[4]));

  // Matrix assembly per step: decomposing the poloidal plane into
  // nxbl x nybl blocks trades per-block overhead (too many tiny blocks)
  // against cache misses and imbalance (too few huge blocks).
  const double nxbl = std::max(1.0, x[5]);
  const double nybl = std::max(1.0, x[6]);
  const double blocks = nxbl * nybl;
  const double block_pts = n_plane / blocks;
  const double assembly_eff =
      1.0 / (1.0 + 1500.0 / block_pts + blocks / 300.0);
  const double t_assembly =
      60.0 * nnz_plane /
      (0.2 * machine_.peak_flops_per_core * std::pow(p, 0.8) * assembly_eff);

  const double refactor_every = 5.0;
  const double time = cost.factor * (1.0 + std::floor(steps / refactor_every)) +
                      steps * (cost.per_step + t_assembly) + 0.1;
  return time * noise_factor(noise_seed_, noise_sigma_, task, x, trial);
}

core::MultiObjectiveFn NimrodSim::objective(int trials) const {
  return [this, trials](const core::TaskVector& task, const core::Config& x) {
    double best = runtime(task, x, 0);
    for (int t = 1; t < trials; ++t) {
      best = std::min(best, runtime(task, x, static_cast<std::uint64_t>(t)));
    }
    return std::vector<double>{best};
  };
}

}  // namespace gptune::apps
