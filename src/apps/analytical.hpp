// The analytical test objective of paper Eq. (11):
//
//   y(t, x) = 1 + e^{-(x+1)^{t+1}} cos(2 pi x) sum_{i=1..5} sin(2 pi x (t+2)^i)
//
// Highly non-convex in x for larger t; used by Figs. 2-4 and the parallel
// speedup study.
#pragma once

#include <cstdint>
#include <vector>

#include "core/mla.hpp"
#include "core/space.hpp"

namespace gptune::apps {

/// Exact objective value.
double analytical_objective(double t, double x);

/// Tuning space: single real x in [0, 1].
core::Space analytical_tuning_space();

/// Objective adapter for the tuner (task = [t], config = [x]).
core::MultiObjectiveFn analytical_fn();

/// Noisy "performance model" used by Fig. 4 (left):
///   y~(t, x) = (1 + 0.1 r) y(t, x), r ~ N(0,1) deterministic in (t, x, seed).
double analytical_noisy_model(double t, double x, std::uint64_t seed);

/// Global minimum over x in [0,1] by dense grid + local refinement.
double analytical_true_minimum(double t, std::size_t grid = 200001);

}  // namespace gptune::apps
