// ScaLAPACK simulators: PDGEQRF (dense QR) and PDSYEVX (dense symmetric
// eigenvalue), the paper's primary math-library tuning targets.
//
// SUBSTITUTION NOTE (see DESIGN.md §1): the real routines on Cori are
// replaced by analytic runtime models built from the communication-optimal
// QR cost analysis the paper itself uses for its performance model
// (Eqs. 8-10, citing Demmel et al. 2012), composed with the MachineConfig
// constants, a block-size efficiency curve, process-grid load-imbalance
// terms, and deterministic multiplicative lognormal noise. The tuner treats
// these as black boxes exactly as it would treat the real codes.
//
// Task parameters: t = [m, n] (PDGEQRF), t = [m] (PDSYEVX, m = n).
// Tuning parameters (beta = 3, paper Table 2): x = [b, p, p_r] with
// b = b_r = b_c, p MPI processes, p_r rows of the process grid, and the
// constraint p_r <= p. Threads per process = total_cores / p (paper §2).
#pragma once

#include <cstdint>

#include "apps/machine.hpp"
#include "core/mla.hpp"
#include "core/perf_model.hpp"
#include "core/space.hpp"

namespace gptune::apps {

class PdgeqrfSim {
 public:
  explicit PdgeqrfSim(MachineConfig machine = {}, double noise_sigma = 0.05,
                      std::uint64_t noise_seed = 2021);

  /// b in [4, 512] (log), p in [cores/8, cores], p_r in [1, cores];
  /// constraint p_r <= p.
  core::Space tuning_space() const;

  /// Simulated runtime in seconds for task [m, n] at configuration x,
  /// trial-indexed reproducible noise.
  double runtime(const core::TaskVector& task, const core::Config& x,
                 std::uint64_t trial = 0) const;

  /// min over `trials` repeated runs (the paper runs 3x and keeps the min).
  double best_of_trials(const core::TaskVector& task, const core::Config& x,
                        int trials = 3) const;

  /// Tuner adapter returning {best_of_trials}.
  core::MultiObjectiveFn objective(int trials = 3) const;

  /// QR flop count 2n^2(3m - n)/3 (used to sort tasks in Fig. 5).
  static double qr_flops(double m, double n);

  /// The (C_flop, C_msg, C_vol) features of paper Eqs. (8)-(10), for the
  /// Eq. (7) performance model with NNLS-refit coefficients.
  static std::vector<double> model_features(const core::TaskVector& task,
                                            const core::Config& x);

  /// Ready-to-use Eq. (7) model with on-the-fly coefficient estimation.
  core::LinearCombinationModel make_performance_model() const;

  const MachineConfig& machine() const { return machine_; }

 private:
  MachineConfig machine_;
  double noise_sigma_;
  std::uint64_t noise_seed_;
};

class PdsyevxSim {
 public:
  explicit PdsyevxSim(MachineConfig machine = {}, double noise_sigma = 0.05,
                      std::uint64_t noise_seed = 2022);

  core::Space tuning_space() const;

  /// Simulated runtime for task [m] (symmetric m x m).
  double runtime(const core::TaskVector& task, const core::Config& x,
                 std::uint64_t trial = 0) const;

  double best_of_trials(const core::TaskVector& task, const core::Config& x,
                        int trials = 3) const;

  core::MultiObjectiveFn objective(int trials = 3) const;

 private:
  MachineConfig machine_;
  double noise_sigma_;
  std::uint64_t noise_seed_;
};

}  // namespace gptune::apps
