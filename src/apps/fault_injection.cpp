#include "apps/fault_injection.hpp"

#include <cstdlib>
#include <limits>
#include <memory>
#include <stdexcept>

#include "apps/machine.hpp"

namespace gptune::apps {

namespace {

/// Uniform double in [0, 1) from the top 53 bits of a mixed hash.
double hash01(std::uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

std::uint64_t fault_key(std::uint64_t seed, const core::TaskVector& task,
                        const core::Config& config) {
  std::uint64_t h = hash_mix(0x51ab5ed5a1edULL, seed);
  for (double v : task) h = hash_double(h, v);
  for (double v : config) h = hash_double(h, v);
  return h;
}

}  // namespace

std::vector<double> FaultInjector::operator()(
    const core::TaskVector& task, const core::Config& config) const {
  const std::uint64_t key = fault_key(spec_.seed, task, config);
  const double u = hash01(key);

  const bool crash = u < spec_.crash_rate;
  const bool nan = !crash && u < spec_.crash_rate + spec_.nan_rate;
  const bool hang = !crash && !nan &&
                    u < spec_.crash_rate + spec_.nan_rate + spec_.hang_rate;

  if (crash || nan || hang) {
    bool healed = false;
    {
      common::MutexLock lock(mutex_);
      if (spec_.heal_after > 0) {
        std::size_t& failed = attempts_[key];
        if (failed >= spec_.heal_after) {
          healed = true;  // transient fault: fall through to clean objective
        } else {
          ++failed;
        }
      }
      if (!healed) ++faults_injected_;
    }
    if (!healed) {
      if (crash && spec_.hard_crash) {
        // Process-fatal variant: SIGABRT reaches the flight recorder's
        // signal handler, which dumps the last events per thread before
        // the default disposition kills the process.
        std::abort();
      }
      if (crash) throw std::runtime_error("injected application crash");
      auto y = inner_(task, config);
      if (nan) {
        if (!y.empty()) y[0] = std::numeric_limits<double>::quiet_NaN();
        return y;
      }
      for (double& v : y) v *= spec_.hang_factor;
      return y;
    }
  }
  return inner_(task, config);
}

core::MultiObjectiveFn with_faults(core::MultiObjectiveFn inner,
                                   const FaultSpec& spec) {
  auto injector =
      std::make_shared<FaultInjector>(std::move(inner), spec);
  return [injector](const core::TaskVector& task,
                    const core::Config& config) {
    return (*injector)(task, config);
  };
}

}  // namespace gptune::apps
