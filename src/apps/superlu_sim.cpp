#include "apps/superlu_sim.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace gptune::apps {

namespace {

double log2p(double v) { return std::log2(std::max(v, 1.0)); }

double noise_factor(std::uint64_t seed, double sigma,
                    const core::TaskVector& task, const core::Config& x,
                    std::uint64_t trial) {
  std::uint64_t h = seed;
  for (double v : task) h = hash_double(h, v);
  for (double v : x) h = hash_double(h, v);
  h = hash_mix(h, trial);
  common::Rng rng(h);
  return rng.lognormal(0.0, sigma);
}

// Fill-in multiplier of each COLPERM choice relative to base_fill.
// Order matches tuning_space(): NATURAL, MMD_ATA, MMD_AT_PLUS_A,
// METIS_AT_PLUS_A. Natural ordering is catastrophic; MMD variants are
// decent; METIS wins on the larger 3D-ish problems. A per-matrix wobble
// keeps the best choice matrix-dependent, as in practice.
double colperm_fill(std::size_t colperm, const SparseMatrixStats& mat) {
  static constexpr double kBase[4] = {3.5, 1.35, 1.15, 1.0};
  double f = kBase[colperm];
  // Larger problems favor METIS more strongly; small ones barely care.
  const double size_bias = std::clamp(std::log10(mat.n) - 3.0, 0.0, 1.5);
  if (colperm == 3) f /= (1.0 + 0.15 * size_bias);
  if (colperm == 1 || colperm == 2) f *= (1.0 + 0.08 * size_bias);
  // Deterministic per-(matrix, colperm) wobble of +-8%.
  std::uint64_t h = hash_double(hash_mix(0xabcdef, colperm), mat.n);
  common::Rng rng(h);
  return f * (1.0 + 0.08 * (2.0 * rng.uniform() - 1.0));
}

}  // namespace

SuperluSim::SuperluSim(MachineConfig machine, double noise_sigma,
                       std::uint64_t noise_seed)
    : machine_(machine), noise_sigma_(noise_sigma), noise_seed_(noise_seed) {}

const std::vector<SparseMatrixStats>& SuperluSim::catalog() {
  // Dimensions/nonzeros follow the published SuiteSparse values for the
  // PARSEC group; base_fill is synthetic (no symbolic factorization here).
  static const std::vector<SparseMatrixStats> kCatalog = {
      {"Si2", 769, 17801, 9.0},
      {"SiH4", 5041, 171903, 18.0},
      {"SiNa", 5743, 102265, 22.0},
      {"Na5", 5832, 305630, 16.0},
      {"benzene", 8219, 242669, 26.0},
      {"Si10H16", 17077, 446500, 42.0},
      {"Si5H12", 19896, 738598, 48.0},
      {"SiO", 33401, 1317655, 60.0},
  };
  return kCatalog;
}

std::size_t SuperluSim::matrix_index(const std::string& name) {
  const auto& cat = catalog();
  for (std::size_t i = 0; i < cat.size(); ++i) {
    if (cat[i].name == name) return i;
  }
  throw std::out_of_range("SuperluSim: unknown matrix " + name);
}

core::Space SuperluSim::tuning_space() const {
  const long cores = static_cast<long>(machine_.total_cores());
  core::Space space;
  space.add_categorical("COLPERM", {"NATURAL", "MMD_ATA", "MMD_AT_PLUS_A",
                                    "METIS_AT_PLUS_A"});
  space.add_integer("LOOK", 2, 20);
  space.add_integer("p", std::max<long>(4, cores / 16), cores,
                    /*log_scale=*/true);
  space.add_integer("p_r", 1, cores, /*log_scale=*/true);
  space.add_integer("NSUP", 16, 512, /*log_scale=*/true);
  space.add_integer("NREL", 4, 64, /*log_scale=*/true);
  space.add_constraint("p_r <= p", [](const core::Config& c) {
    return c[3] <= c[2];
  });
  return space;
}

core::Config SuperluSim::default_config() {
  // Paper Table 5 "Default" row: COLPERM 4 (METIS index 3 here), LOOK 10,
  // p 256, p_r 16, NSUP 128, NREL 20.
  return {3, 10, 256, 16, 128, 20};
}

SuperluSim::FactorizationResult SuperluSim::factorize(
    const core::TaskVector& task, const core::Config& x,
    std::uint64_t trial) const {
  const auto& mat = catalog().at(static_cast<std::size_t>(task[0]));
  const std::size_t colperm = static_cast<std::size_t>(x[0]);
  const double look = std::max(1.0, x[1]);
  const double p = std::max(1.0, std::min(
      x[2], static_cast<double>(machine_.total_cores())));
  const double pr = std::clamp(x[3], 1.0, p);
  const double pc = std::max(1.0, std::floor(p / pr));
  const double nsup = std::max(8.0, x[4]);
  const double nrel = std::max(1.0, x[5]);

  // --- fill-in and factor size ---
  const double fill = mat.base_fill * colperm_fill(colperm, mat);
  const double nnz_f = mat.nnz * fill;          // nnz(L+U)
  const double avg_height = nnz_f / mat.n;      // mean column height

  // --- arithmetic ---
  // Right-looking updates cost ~ sum of column-height^2; approximate with
  // c * nnz_f * avg_height.
  const double flops = 2.2 * nnz_f * avg_height;

  // Supernodal BLAS-3 efficiency: wide supernodes run near GEMM speed,
  // narrow ones degrade toward BLAS-1/2. Relaxation (NREL) merges the tiny
  // supernodes at the elimination-tree bottom; too little relaxation leaves
  // per-column overhead, too much adds explicit zeros.
  const double sn_eff = nsup / (nsup + 96.0);
  const double relax_overhead = 1.0 + 4.0 / nrel;
  const double relax_fill = 1.0 + 0.004 * nrel;
  const double pad_fill = 1.0 + 0.0025 * nsup;

  // Sparse LU strong-scales sub-linearly; p^0.75 is a common empirical fit.
  const double p_eff = std::pow(p, 0.75);
  const double rate = machine_.peak_flops_per_core * sn_eff;

  // Grid aspect: sparse LU prefers modestly flat grids (p_r <= p_c);
  // tall grids serialize the panel factorizations.
  const double aspect_tall = std::max(1.0, pr / pc);
  const double aspect_flat = std::max(1.0, pc / pr);
  const double grid_imbalance =
      1.0 + 0.25 * std::pow(aspect_tall - 1.0, 0.8) +
      0.08 * std::pow(aspect_flat - 1.0, 0.8);

  const double t_comp = flops * relax_overhead * relax_fill * pad_fill *
                        grid_imbalance / (rate * p_eff);

  // --- communication ---
  // One panel bcast per supernode column along rows and columns of the grid.
  const double num_supernodes = mat.n / std::min(nsup, avg_height + nsup);
  const double msgs = num_supernodes * (log2p(pr) + log2p(pc)) * 2.0;
  const double vol = nnz_f * (log2p(p)) / std::sqrt(p);
  // Look-ahead hides pipeline idle time (diminishing returns), but very
  // deep pipelines add scheduling overhead.
  const double idle = 0.45 / (1.0 + 0.35 * look) + 0.004 * look;
  const double t_comm = msgs * machine_.network_latency +
                        vol * machine_.network_word_time;

  const double time =
      (t_comp * (1.0 + idle) + t_comm) *
          noise_factor(noise_seed_, noise_sigma_, task, x, trial) +
      2e-5;

  // --- memory (per-run aggregate, bytes) ---
  // Factor storage with supernode padding and relaxation fill, plus
  // per-process pipeline buffers (LOOK panels of NSUP columns).
  const double factor_bytes = nnz_f * 8.0 * pad_fill * relax_fill;
  const double buffer_bytes = p * (look + 2.0) * nsup * avg_height * 8.0;
  const double index_bytes = 4.0 * (nnz_f / 2.0 + mat.n * 8.0);
  const double memory =
      (factor_bytes + buffer_bytes + index_bytes) *
      noise_factor(noise_seed_ ^ 0x5151, 0.5 * noise_sigma_, task, x, trial);

  return {time, memory};
}

double SuperluSim::time_of_best_trial(const core::TaskVector& task,
                                      const core::Config& x,
                                      int trials) const {
  double best = factorize(task, x, 0).time_seconds;
  for (int t = 1; t < trials; ++t) {
    best = std::min(best,
                    factorize(task, x, static_cast<std::uint64_t>(t))
                        .time_seconds);
  }
  return best;
}

core::MultiObjectiveFn SuperluSim::objective_time(int trials) const {
  return [this, trials](const core::TaskVector& task, const core::Config& x) {
    return std::vector<double>{time_of_best_trial(task, x, trials)};
  };
}

core::MultiObjectiveFn SuperluSim::objective_time_memory(int trials) const {
  return [this, trials](const core::TaskVector& task, const core::Config& x) {
    double best_time = 0.0, best_mem = 0.0;
    for (int t = 0; t < std::max(1, trials); ++t) {
      const auto r = factorize(task, x, static_cast<std::uint64_t>(t));
      if (t == 0 || r.time_seconds < best_time) best_time = r.time_seconds;
      if (t == 0 || r.memory_bytes < best_mem) best_mem = r.memory_bytes;
    }
    return std::vector<double>{best_time, best_mem};
  };
}

}  // namespace gptune::apps
