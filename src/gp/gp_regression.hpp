// Single-task Gaussian process regression with SE-ARD kernel.
//
// The single-task special case of the paper's modeling phase: used directly
// when delta = 1, as the reference against which the LCM generalization is
// tested, and by documentation examples. Hyperparameters (log lengthscales,
// log signal variance, log noise variance) are optimized by multi-start
// L-BFGS on the exact log marginal likelihood with analytic gradients.
#pragma once

#include <optional>
#include <vector>

#include "common/rng.hpp"
#include "linalg/blocked_cholesky.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "opt/lbfgs.hpp"

namespace gptune::gp {

using linalg::Matrix;
using linalg::Vector;

struct GpHyperparameters {
  std::vector<double> lengthscales;
  double signal_variance = 1.0;
  double noise_variance = 1e-6;

  /// Packs as [log l_1..d, log sf2, log sn2] for the optimizer.
  std::vector<double> pack() const;
  static GpHyperparameters unpack(const std::vector<double>& theta,
                                  std::size_t dim);
};

struct GpPrediction {
  double mean = 0.0;
  double variance = 0.0;  ///< latent-function variance (noise excluded)
};

struct GpFitOptions {
  std::size_t num_restarts = 3;
  std::uint64_t seed = 42;
  opt::LbfgsOptions lbfgs;
  double min_noise_variance = 1e-8;
  /// Parallelizes the blocked kernel-matrix factorization inside every
  /// likelihood evaluation (the paper's ScaLAPACK role); the serial default
  /// produces bitwise-identical results.
  linalg::TaskBatchRunner runner = linalg::serial_runner();
};

/// Exact GP posterior over training data (X, y).
class GpRegression {
 public:
  /// Fits hyperparameters by maximizing the log marginal likelihood.
  /// Returns nullopt only if every restart fails to factor the kernel.
  [[nodiscard]] static std::optional<GpRegression> fit(
      const Matrix& x, const Vector& y,
                                         const GpFitOptions& options = {});

  /// Builds the posterior at fixed hyperparameters (no optimization).
  [[nodiscard]] static std::optional<GpRegression> with_hyperparameters(
      const Matrix& x, const Vector& y, const GpHyperparameters& hp,
      const linalg::TaskBatchRunner& runner = linalg::serial_runner());

  GpPrediction predict(const Vector& x_star) const;

  /// Appends training points (x_new, y_new) at fixed hyperparameters,
  /// updating the kernel factor with blocked_cholesky_extend (O(n^2 k)
  /// instead of the O(n^3) of rebuilding). The resulting posterior is
  /// bitwise identical to with_hyperparameters on the concatenated data:
  /// the appended strip reuses the gram kernels' per-entry arithmetic and
  /// the factor extension preserves the blocked algorithm's operation
  /// order. Returns false — leaving the posterior untouched — if the
  /// current factor was built with jitter (extension would not be exact)
  /// or the extended matrix is not PD; rebuild via with_hyperparameters
  /// in that case.
  [[nodiscard]] bool extend(const Matrix& x_new, const Vector& y_new,
              const linalg::TaskBatchRunner& runner = linalg::serial_runner());

  double log_marginal_likelihood() const { return lml_; }
  const GpHyperparameters& hyperparameters() const { return hp_; }

  /// Log marginal likelihood and its gradient w.r.t. packed theta; the
  /// workhorse behind fit() and the target of the gradient unit tests.
  /// `runner` parallelizes the blocked factorization of the kernel matrix.
  [[nodiscard]] static std::optional<double> lml_and_gradient(
      const Matrix& x, const Vector& y, const std::vector<double>& theta,
      std::vector<double>* grad,
      const linalg::TaskBatchRunner& runner = linalg::serial_runner());

 private:
  GpRegression() = default;
  Matrix x_;
  Vector y_;       // centered targets
  Vector y_raw_;   // original targets, append order (extend re-centers)
  double y_mean_ = 0.0;
  bool exact_factor_ = false;  // factored without jitter; extend() requires it
  GpHyperparameters hp_;
  linalg::CholeskyFactor factor_{linalg::CholeskyFactor::from_lower(Matrix())};
  Vector alpha_;
  double lml_ = 0.0;
};

}  // namespace gptune::gp
