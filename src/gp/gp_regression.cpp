#include "gp/gp_regression.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

#include "gp/kernel.hpp"

namespace gptune::gp {

std::vector<double> GpHyperparameters::pack() const {
  std::vector<double> theta;
  theta.reserve(lengthscales.size() + 2);
  for (double l : lengthscales) theta.push_back(std::log(l));
  theta.push_back(std::log(signal_variance));
  theta.push_back(std::log(noise_variance));
  return theta;
}

GpHyperparameters GpHyperparameters::unpack(const std::vector<double>& theta,
                                            std::size_t dim) {
  GpHyperparameters hp;
  hp.lengthscales.resize(dim);
  for (std::size_t i = 0; i < dim; ++i) hp.lengthscales[i] = std::exp(theta[i]);
  hp.signal_variance = std::exp(theta[dim]);
  hp.noise_variance = std::exp(theta[dim + 1]);
  return hp;
}

std::optional<double> GpRegression::lml_and_gradient(
    const Matrix& x, const Vector& y, const std::vector<double>& theta,
    std::vector<double>* grad, const linalg::TaskBatchRunner& runner) {
  const std::size_t n = x.rows(), d = x.cols();
  const GpHyperparameters hp = GpHyperparameters::unpack(theta, d);

  const auto dist = squared_distance_per_dim(x);
  Matrix kbase = se_ard_gram_from_distances(dist, hp.lengthscales);
  Matrix k = kbase;
  for (double& v : k.data()) v *= hp.signal_variance;
  for (std::size_t i = 0; i < n; ++i) k(i, i) += hp.noise_variance;

  // Blocked (optionally parallel) factorization, with the unblocked
  // reference as a safety net for matrices right at the PD boundary where
  // the two summation orders can disagree. Likelihood evaluations see a
  // fresh theta every call, so there is no factor to extend here.
  // gptune-lint: allow(full-refactor) reason: likelihood evaluation at a
  // fresh theta; no prior factor exists to extend
  auto factor = linalg::blocked_cholesky(k, 128, runner);
  // gptune-lint: allow(full-refactor) reason: unblocked PD-boundary fallback
  if (!factor) factor = linalg::CholeskyFactor::factor(k);
  if (!factor) return std::nullopt;

  const Vector alpha = factor->solve(y);
  const double lml = -0.5 * linalg::dot(y, alpha) - 0.5 * factor->log_det() -
                     0.5 * static_cast<double>(n) *
                         std::log(2.0 * std::numbers::pi);
  if (!grad) return lml;

  // M = alpha alpha^T - K^{-1}; dL/dtheta = 0.5 * sum_ij M_ij dK_ij/dtheta.
  Matrix m = factor->inverse();
  m *= -1.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) += alpha[i] * alpha[j];
  }

  grad->assign(theta.size(), 0.0);
  // d/dlog l_m: K_ij * D_m(i,j) / l_m^2 (with signal variance folded in).
  for (std::size_t mdim = 0; mdim < d; ++mdim) {
    const double inv_l2 =
        1.0 / (hp.lengthscales[mdim] * hp.lengthscales[mdim]);
    double s = 0.0;
    const auto& dd = dist[mdim].data();
    const auto& kb = kbase.data();
    const auto& mm = m.data();
    for (std::size_t idx = 0; idx < mm.size(); ++idx) {
      s += mm[idx] * hp.signal_variance * kb[idx] * dd[idx] * inv_l2;
    }
    (*grad)[mdim] = 0.5 * s;
  }
  // d/dlog sf2: sf2 * kbase.
  {
    double s = 0.0;
    const auto& kb = kbase.data();
    const auto& mm = m.data();
    for (std::size_t idx = 0; idx < mm.size(); ++idx) {
      s += mm[idx] * hp.signal_variance * kb[idx];
    }
    (*grad)[d] = 0.5 * s;
  }
  // d/dlog sn2: sn2 * I.
  {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += m(i, i) * hp.noise_variance;
    (*grad)[d + 1] = 0.5 * s;
  }
  return lml;
}

std::optional<GpRegression> GpRegression::with_hyperparameters(
    const Matrix& x, const Vector& y, const GpHyperparameters& hp,
    const linalg::TaskBatchRunner& runner) {
  const std::size_t n = x.rows();
  GpRegression gp;
  gp.x_ = x;
  gp.y_mean_ = 0.0;
  for (double v : y) gp.y_mean_ += v;
  gp.y_mean_ /= std::max<std::size_t>(1, n);
  gp.y_raw_ = y;
  gp.y_ = y;
  for (double& v : gp.y_) v -= gp.y_mean_;
  gp.hp_ = hp;

  Matrix k = se_ard_gram(x, hp.lengthscales);
  for (double& v : k.data()) v *= hp.signal_variance;
  for (std::size_t i = 0; i < n; ++i) k(i, i) += hp.noise_variance;
  // Initial posterior build (extend() handles appends).
  // gptune-lint: allow(full-refactor) reason: first factorization of a new
  // posterior; appends go through extend()
  auto factor = linalg::blocked_cholesky(k, 128, runner);
  gp.exact_factor_ = factor.has_value();
  // gptune-lint: allow(full-refactor) reason: jittered near-singular fallback
  if (!factor) factor = linalg::CholeskyFactor::factor_with_jitter(k);
  if (!factor) return std::nullopt;
  gp.factor_ = std::move(*factor);
  gp.alpha_ = gp.factor_.solve(gp.y_);
  gp.lml_ = -0.5 * linalg::dot(gp.y_, gp.alpha_) - 0.5 * gp.factor_.log_det() -
            0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
  return gp;
}

bool GpRegression::extend(const Matrix& x_new, const Vector& y_new,
                          const linalg::TaskBatchRunner& runner) {
  assert(x_new.rows() == y_new.size());
  if (!exact_factor_) return false;
  if (x_new.rows() == 0) return true;
  if (x_.rows() == 0 || x_new.cols() != x_.cols()) return false;
  const std::size_t n_old = x_.rows();
  const std::size_t k = x_new.rows();
  const std::size_t n = n_old + k;
  const std::size_t d = x_.cols();

  Matrix x_all(n, d, 0.0);
  for (std::size_t i = 0; i < n_old; ++i) {
    const double* src = x_.row_ptr(i);
    double* dst = x_all.row_ptr(i);
    for (std::size_t m = 0; m < d; ++m) dst[m] = src[m];
  }
  for (std::size_t p = 0; p < k; ++p) {
    const double* src = x_new.row_ptr(p);
    double* dst = x_all.row_ptr(n_old + p);
    for (std::size_t m = 0; m < d; ++m) dst[m] = src[m];
  }

  // New covariance rows: the same per-entry kernel arithmetic, scaling, and
  // noise placement as with_hyperparameters' full matrix.
  Matrix strip;
  se_ard_cross_strip_into(x_new, x_all, hp_.lengthscales, &strip);
  for (double& v : strip.data()) v *= hp_.signal_variance;
  for (std::size_t p = 0; p < k; ++p) {
    strip(p, n_old + p) += hp_.noise_variance;
  }

  Matrix w(n, n, 0.0);
  const Matrix& l = factor_.lower();
  for (std::size_t i = 0; i < n_old; ++i) {
    const double* src = l.row_ptr(i);
    double* dst = w.row_ptr(i);
    for (std::size_t j = 0; j <= i; ++j) dst[j] = src[j];
  }
  for (std::size_t p = 0; p < k; ++p) {
    const double* src = strip.row_ptr(p);
    double* dst = w.row_ptr(n_old + p);
    for (std::size_t j = 0; j <= n_old + p; ++j) dst[j] = src[j];
  }
  if (!linalg::blocked_cholesky_extend(w, n_old, 128, runner)) return false;

  x_ = std::move(x_all);
  y_raw_.insert(y_raw_.end(), y_new.begin(), y_new.end());
  y_mean_ = 0.0;
  for (double v : y_raw_) y_mean_ += v;
  y_mean_ /= std::max<std::size_t>(1, n);
  y_ = y_raw_;
  for (double& v : y_) v -= y_mean_;
  factor_ = linalg::CholeskyFactor::from_lower(std::move(w));
  alpha_ = factor_.solve(y_);
  lml_ = -0.5 * linalg::dot(y_, alpha_) - 0.5 * factor_.log_det() -
         0.5 * static_cast<double>(n) * std::log(2.0 * std::numbers::pi);
  return true;
}

std::optional<GpRegression> GpRegression::fit(const Matrix& x, const Vector& y,
                                              const GpFitOptions& options) {
  const std::size_t d = x.cols();
  common::Rng rng(options.seed);

  // Center y so the zero-mean prior is sensible; variance scales set the
  // initial signal variance.
  Vector yc = y;
  double ymean = 0.0;
  for (double v : yc) ymean += v;
  ymean /= std::max<std::size_t>(1, yc.size());
  for (double& v : yc) v -= ymean;
  double yvar = 0.0;
  for (double v : yc) yvar += v * v;
  yvar = std::max(yvar / std::max<std::size_t>(1, yc.size()), 1e-12);

  double best_lml = -std::numeric_limits<double>::infinity();
  std::vector<double> best_theta;

  for (std::size_t restart = 0; restart < options.num_restarts; ++restart) {
    std::vector<double> theta0(d + 2);
    for (std::size_t i = 0; i < d; ++i) {
      theta0[i] = std::log(rng.uniform(0.1, 1.0));
    }
    theta0[d] = std::log(yvar * rng.uniform(0.5, 2.0));
    theta0[d + 1] = std::log(std::max(1e-4 * yvar,
                                      options.min_noise_variance));

    auto objective = [&x, &yc, &options](const std::vector<double>& theta,
                                         std::vector<double>& grad)
        -> double {
      // Clamp noise from below via the floor in unpack-space: the optimizer
      // works on log values, so a hard bound is enforced by projection here.
      std::vector<double> t = theta;
      const double log_floor = std::log(options.min_noise_variance);
      if (t.back() < log_floor) t.back() = log_floor;
      auto lml = lml_and_gradient(x, yc, t, &grad, options.runner);
      if (!lml) {
        grad.assign(theta.size(), 0.0);
        return 1e10;  // infeasible region; push the optimizer away
      }
      for (double& g : grad) g = -g;
      return -*lml;
    };

    auto result = opt::lbfgs_minimize(objective, theta0, options.lbfgs);
    auto lml = lml_and_gradient(x, yc, result.x, nullptr, options.runner);
    if (lml && *lml > best_lml) {
      best_lml = *lml;
      best_theta = result.x;
    }
  }
  if (best_theta.empty()) return std::nullopt;

  GpHyperparameters hp = GpHyperparameters::unpack(best_theta, d);
  hp.noise_variance = std::max(hp.noise_variance, options.min_noise_variance);
  return with_hyperparameters(x, y, hp, options.runner);
}

GpPrediction GpRegression::predict(const Vector& x_star) const {
  const std::size_t n = x_.rows();
  Vector k_star(n);
  for (std::size_t i = 0; i < n; ++i) {
    Vector xi(x_.cols());
    for (std::size_t m = 0; m < x_.cols(); ++m) xi[m] = x_(i, m);
    k_star[i] = hp_.signal_variance * se_ard(x_star, xi, hp_.lengthscales);
  }
  GpPrediction pred;
  pred.mean = y_mean_ + linalg::dot(k_star, alpha_);
  const Vector v = factor_.solve_lower(k_star);
  pred.variance =
      std::max(0.0, hp_.signal_variance - linalg::dot(v, v));
  return pred;
}

}  // namespace gptune::gp
