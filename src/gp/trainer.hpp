// Multi-start hyperparameter training for the LCM model (paper §4.3).
//
// The modeling phase runs n_start L-BFGS searches from random initial
// hyperparameters and keeps the best log-likelihood. Mirroring GPTune's MPI
// design, the restarts are distributed over spawned worker ranks (paper
// Fig. 1): the master spawns a group, each worker optimizes its share of
// restarts, and (theta, lml) pairs flow back over the inter-communicator.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "gp/lcm.hpp"
#include "opt/lbfgs.hpp"

namespace gptune::gp {

struct LcmFitOptions {
  std::size_t num_latent = 0;     ///< Q; 0 means min(num_tasks, 3)
  std::size_t num_restarts = 2;   ///< n_start in the paper
  std::size_t max_lbfgs_iterations = 40;
  std::uint64_t seed = 7;
  /// Worker ranks to spawn for the restarts; 1 runs in the master.
  std::size_t num_workers = 1;
  /// Hyperparameters of a previous fit to warm-start the first restart
  /// (the MLA loop refits after every new sample; warm starting makes the
  /// refits cheap). Ignored if the size does not match.
  std::vector<double> warm_start;
};

struct LcmFitStats {
  double best_lml = 0.0;
  std::size_t restarts_attempted = 0;
  std::size_t restarts_failed = 0;
  std::size_t total_lbfgs_evaluations = 0;
};

/// Fits the LCM hyperparameters on `data` and builds the posterior model.
/// Returns nullopt if every restart fails to produce a factorizable model.
std::optional<LcmModel> fit_lcm(const MultiTaskData& data,
                                const LcmFitOptions& options,
                                LcmFitStats* stats = nullptr);

/// Draws a random initial hyperparameter vector appropriate for per-task
/// standardized outputs (unit variance). Exposed for tests and benches.
std::vector<double> random_lcm_theta(const LcmShape& shape,
                                     common::Rng& rng);

}  // namespace gptune::gp
