// Multi-start hyperparameter training for the LCM model (paper §4.3).
//
// The modeling phase runs n_start L-BFGS searches from random initial
// hyperparameters and keeps the best log-likelihood. Mirroring GPTune's
// master/model-worker split (paper Fig. 1), the restarts fan out over a
// runtime::ThreadPool: the master builds one immutable LcmEvalContext
// (flattened data + pairwise distance matrices, hoisted out of the
// per-evaluation hot path), each worker optimizes its restarts through a
// private LcmEvaluator (per-latent Gram memoization), and outcomes are
// reduced by restart index.
//
// Determinism guarantee: every restart draws its initial point from its own
// RNG stream keyed by (seed, restart index), L-BFGS itself is deterministic,
// and the best outcome is selected by scanning restarts in index order — so
// a fit is bitwise identical for a fixed seed regardless of worker count.
#pragma once

#include <cstdint>
#include <optional>

#include "common/rng.hpp"
#include "gp/lcm.hpp"
#include "opt/lbfgs.hpp"

namespace gptune::rt {
class ThreadPool;
}  // namespace gptune::rt

namespace gptune::gp {

struct LcmFitOptions {
  std::size_t num_latent = 0;     ///< Q; 0 means min(num_tasks, 3)
  std::size_t num_restarts = 2;   ///< n_start in the paper
  std::size_t max_lbfgs_iterations = 40;
  std::uint64_t seed = 7;
  /// Worker threads for the restarts; 1 runs everything in the caller.
  std::size_t num_workers = 1;
  /// Pool to fan restarts out on. If null and num_workers > 1, a transient
  /// pool of num_workers threads is created for this fit; passing a
  /// long-lived pool (as the MLA loop does) avoids respawning threads on
  /// every modeling phase. With num_workers == 1 a supplied pool instead
  /// parallelizes each restart's blocked covariance factorization.
  rt::ThreadPool* pool = nullptr;
  /// Hyperparameters of a previous fit to warm-start the first restart
  /// (the MLA loop refits after every new sample; warm starting makes the
  /// refits cheap). Ignored if the size does not match.
  std::vector<double> warm_start;
  /// When false, fit_lcm optimizes hyperparameters and reports them via
  /// LcmFitStats::best_theta but skips building the posterior, returning
  /// nullopt even on success. Callers that maintain their own posterior
  /// factor (IncrementalFitState) use this to avoid a redundant O(N^3)
  /// LcmModel::build.
  bool build_posterior = true;
};

struct LcmFitStats {
  double best_lml = 0.0;
  /// Hyperparameters of the winning restart (empty if every restart
  /// failed). This is how build_posterior == false callers retrieve the
  /// optimization result.
  std::vector<double> best_theta;
  std::size_t restarts_attempted = 0;
  std::size_t restarts_failed = 0;
  std::size_t total_lbfgs_evaluations = 0;
  /// Worker threads the restarts actually ran on.
  std::size_t workers_used = 0;
  /// Per-latent Gram matrices reused / recomputed across all likelihood
  /// evaluations of the fit (see LcmEvaluator).
  std::size_t gram_cache_hits = 0;
  std::size_t gram_cache_misses = 0;
  /// Wall-clock of the whole fit and the derived restart throughput.
  double fit_seconds = 0.0;
  double restarts_per_second = 0.0;
  /// Wall-clock of each restart's optimization, indexed by restart; feeds
  /// the virtual-clock scaling study (bench_trainer_scaling).
  std::vector<double> restart_seconds;
};

/// Fits the LCM hyperparameters on `data` and builds the posterior model.
/// Returns nullopt if every restart fails to produce a factorizable model.
[[nodiscard]] std::optional<LcmModel> fit_lcm(const MultiTaskData& data,
                                const LcmFitOptions& options,
                                LcmFitStats* stats = nullptr);

/// Draws a random initial hyperparameter vector appropriate for per-task
/// standardized outputs (unit variance). Exposed for tests and benches.
std::vector<double> random_lcm_theta(const LcmShape& shape,
                                     common::Rng& rng);

/// Seed of the independent RNG stream for restart `s` of a fit seeded with
/// `seed` (SplitMix-style mix). Exposed so tests can reproduce individual
/// restart start points.
std::uint64_t lcm_restart_seed(std::uint64_t seed, std::size_t restart);

}  // namespace gptune::gp
