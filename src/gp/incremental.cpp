#include "gp/incremental.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>
#include <utility>

namespace gptune::gp {

namespace {

/// Same tile size every covariance factorization in the GP stack uses; the
/// extension's bitwise contract requires it to match the rebuild path.
constexpr std::size_t kBlockSize = 128;

bool rows_equal(const Matrix& a, std::size_t ra, const Matrix& b,
                std::size_t rb, std::size_t d) {
  const double* pa = a.row_ptr(ra);
  const double* pb = b.row_ptr(rb);
  for (std::size_t m = 0; m < d; ++m) {
    if (pa[m] != pb[m]) return false;
  }
  return true;
}

}  // namespace

void IncrementalFitState::reset() {
  valid_ = false;
  jitter_ = 0.0;
  theta_.clear();
  all_x_ = Matrix();
  task_of_.clear();
  index_of_.clear();
  rows_.clear();
  lower_ = Matrix();
}

bool IncrementalFitState::append_compatible(const MultiTaskData& data,
                                            const LcmShape& shape) const {
  if (!valid_) return false;
  if (shape.num_latent != shape_.num_latent || shape.dim != shape_.dim ||
      shape.num_tasks != shape_.num_tasks) {
    return false;
  }
  if (data.num_tasks() != rows_.size()) return false;
  if (data.dim() != all_x_.cols()) return false;
  const std::size_t d = all_x_.cols();
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    // Shrinking history (penalized samples dropped) or any edit to a
    // previously seen configuration row invalidates the ordering.
    if (data.x[i].rows() < rows_[i].size()) return false;
    for (std::size_t j = 0; j < rows_[i].size(); ++j) {
      if (!rows_equal(data.x[i], j, all_x_, rows_[i][j], d)) return false;
    }
  }
  return true;
}

std::optional<LcmModel> IncrementalFitState::refresh(
    const MultiTaskData& data, const LcmShape& shape,
    const std::vector<double>& theta, const linalg::TaskBatchRunner& runner,
    bool allow_extend) {
  assert(theta.size() == shape.num_hyperparameters());
  const std::size_t d = data.dim();
  const std::size_t n = data.total_samples();

  std::size_t n_old = 0;
  if (append_compatible(data, shape)) {
    n_old = all_x_.rows();
    if (n > n_old) {
      Matrix grown(n, d, 0.0);
      for (std::size_t r = 0; r < n_old; ++r) {
        const double* src = all_x_.row_ptr(r);
        double* dst = grown.row_ptr(r);
        for (std::size_t m = 0; m < d; ++m) dst[m] = src[m];
      }
      std::size_t row = n_old;
      for (std::size_t i = 0; i < data.num_tasks(); ++i) {
        for (std::size_t j = rows_[i].size(); j < data.x[i].rows();
             ++j, ++row) {
          double* dst = grown.row_ptr(row);
          for (std::size_t m = 0; m < d; ++m) dst[m] = data.x[i](j, m);
          task_of_.push_back(i);
          index_of_.push_back(j);
          rows_[i].push_back(row);
        }
      }
      assert(row == n);
      all_x_ = std::move(grown);
      stats_.appended_rows += n - n_old;
    }
  } else {
    // Restart the generation ordering from the task-major flatten.
    if (valid_) ++stats_.ordering_resets;
    valid_ = false;
    jitter_ = 0.0;
    all_x_ = Matrix(n, d, 0.0);
    task_of_.clear();
    index_of_.clear();
    rows_.assign(data.num_tasks(), {});
    std::size_t row = 0;
    for (std::size_t i = 0; i < data.num_tasks(); ++i) {
      assert(data.x[i].rows() == data.y[i].size());
      for (std::size_t j = 0; j < data.x[i].rows(); ++j, ++row) {
        double* dst = all_x_.row_ptr(row);
        for (std::size_t m = 0; m < d; ++m) dst[m] = data.x[i](j, m);
        task_of_.push_back(i);
        index_of_.push_back(j);
        rows_[i].push_back(row);
      }
    }
  }

  // Extension is legal only against an exact (unjittered) factor at the
  // same hyperparameters; anything else falls through to the rebuild.
  bool extended = false;
  if (allow_extend && valid_ && jitter_ == 0.0 && theta == theta_ &&
      n_old > 0) {
    if (n == n_old) {
      // Nothing appended; the cached factor is already current.
      extended = true;
      ++stats_.extends;
    } else {
      const Matrix strip =
          lcm_covariance_rows(shape, theta, all_x_, task_of_, n_old);
      Matrix w(n, n, 0.0);
      for (std::size_t i = 0; i < n_old; ++i) {
        const double* src = lower_.row_ptr(i);
        double* dst = w.row_ptr(i);
        for (std::size_t j = 0; j <= i; ++j) dst[j] = src[j];
      }
      for (std::size_t p = 0; p + n_old < n; ++p) {
        const double* src = strip.row_ptr(p);
        double* dst = w.row_ptr(n_old + p);
        for (std::size_t j = 0; j <= n_old + p; ++j) dst[j] = src[j];
      }
      if (linalg::blocked_cholesky_extend(w, n_old, kBlockSize, runner)) {
        lower_ = std::move(w);
        extended = true;
        ++stats_.extends;
      }
    }
  }

  if (!extended) {
    const Matrix k = lcm_covariance(shape, theta, all_x_, task_of_);
    // The cold path: hyperparameter restarts, ordering resets, and the
    // non-PD fallback refactorize in full.
    // gptune-lint: allow(full-refactor) reason: the cold path by design;
    // warm-started appends take the extend branch above
    auto factor = linalg::blocked_cholesky(k, kBlockSize, runner);
    double applied = 0.0;
    if (!factor) {
      // gptune-lint: allow(full-refactor) reason: jittered non-PD fallback
      factor = linalg::CholeskyFactor::factor_with_jitter(k, 1e-10, 1e-2,
                                                          &applied);
    }
    if (!factor) {
      reset();
      return std::nullopt;
    }
    jitter_ = applied;
    lower_ = factor->lower();
    ++stats_.rebuilds;
  }

  shape_ = shape;
  theta_ = theta;
  valid_ = true;
  return assemble(data);
}

std::optional<LcmModel> IncrementalFitState::assemble(
    const MultiTaskData& data) const {
  LcmModel model;
  model.shape_ = shape_;
  model.theta_ = theta_;
  model.all_x_ = all_x_;
  model.task_of_ = task_of_;

  // Per-task output standardization — the exact computation LcmModel::build
  // performs, so the two construction paths agree bit for bit.
  const std::size_t delta = data.num_tasks();
  model.y_mean_.resize(delta);
  model.y_scale_.resize(delta);
  for (std::size_t i = 0; i < delta; ++i) {
    double mu = 0.0;
    for (double v : data.y[i]) mu += v;
    mu /= std::max<std::size_t>(1, data.y[i].size());
    double var = 0.0;
    for (double v : data.y[i]) var += (v - mu) * (v - mu);
    var /= std::max<std::size_t>(1, data.y[i].size());
    const double scale = var > 1e-20 ? std::sqrt(var) : 1.0;
    model.y_mean_[i] = mu;
    model.y_scale_[i] = scale;
  }

  const std::size_t n = all_x_.rows();
  Vector all_y(n, 0.0);
  for (std::size_t r = 0; r < n; ++r) {
    const std::size_t t = task_of_[r];
    all_y[r] =
        (data.y[t][index_of_[r]] - model.y_mean_[t]) / model.y_scale_[t];
  }

  model.factor_ = linalg::CholeskyFactor::from_lower(lower_);
  model.alpha_ = model.factor_.solve(all_y);
  model.lml_ = -0.5 * linalg::dot(all_y, model.alpha_) -
               0.5 * model.factor_.log_det() -
               0.5 * static_cast<double>(n) *
                   std::log(2.0 * std::numbers::pi);
  return model;
}

}  // namespace gptune::gp
