// Linear Coregionalization Model — the multitask Gaussian process at the
// heart of GPTune (paper §3.1, modeling phase).
//
// Each of Q latent functions u_q is an independent GP with a Gaussian ARD
// kernel k_q (Eq. 3); task outputs are linear combinations f(t_i, x) =
// sum_q a_{i,q} u_q(x) (Eq. 1). The joint covariance over all samples of all
// tasks (Eq. 4) is
//
//   K[(i,j),(i',j')] = sum_q (a_{i,q} a_{i',q} + b_{i,q} delta_{ii'})
//                      * k_q(x_{i,j}, x_{i',j'}) + d_i delta_{ii'} delta_{jj'}
//
// Hyperparameters theta = { log l^q_m, a_{i,q}, log b_{i,q}, log d_i } are
// learned by maximizing the exact log marginal likelihood; this module
// provides the likelihood with *analytic* gradients (verified against finite
// differences in the test suite) plus posterior prediction (Eqs. 5-6).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "linalg/blocked_cholesky.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"

namespace gptune::gp {

using linalg::Matrix;
using linalg::Vector;

/// Training data for delta tasks; x values live in the normalized unit box.
struct MultiTaskData {
  /// x[i] is an (epsilon_i x beta) matrix of configurations for task i.
  std::vector<Matrix> x;
  /// y[i][j] is the objective for configuration j of task i.
  std::vector<Vector> y;

  std::size_t num_tasks() const { return x.size(); }
  std::size_t dim() const { return x.empty() ? 0 : x[0].cols(); }
  std::size_t total_samples() const;

  /// Concatenates all task samples; `task_of[n]` maps flat row -> task.
  void flatten(Matrix* all_x, Vector* all_y,
               std::vector<std::size_t>* task_of) const;
};

/// Shape of the LCM hyperparameter vector.
///
/// Packed layout (all positives in log space):
///   [ log l^q_m : q*dim + m ]             Q*beta lengthscales
///   [ a_{i,q}   : Q*beta + q*delta + i ]  Q*delta mixing coefficients
///   [ log b_{i,q} ]                       Q*delta per-task scale
///   [ log d_i ]                           delta nugget terms
struct LcmShape {
  std::size_t num_latent = 1;  ///< Q
  std::size_t dim = 1;         ///< beta
  std::size_t num_tasks = 1;   ///< delta

  std::size_t num_hyperparameters() const {
    return num_latent * dim + 2 * num_latent * num_tasks + num_tasks;
  }
  std::size_t idx_log_l(std::size_t q, std::size_t m) const {
    return q * dim + m;
  }
  std::size_t idx_a(std::size_t q, std::size_t i) const {
    return num_latent * dim + q * num_tasks + i;
  }
  std::size_t idx_log_b(std::size_t q, std::size_t i) const {
    return num_latent * dim + num_latent * num_tasks + q * num_tasks + i;
  }
  std::size_t idx_log_d(std::size_t i) const {
    return num_latent * dim + 2 * num_latent * num_tasks + i;
  }
};

/// Assembles the full covariance matrix of Eq. (4) for flattened data.
Matrix lcm_covariance(const LcmShape& shape, const std::vector<double>& theta,
                      const Matrix& all_x,
                      const std::vector<std::size_t>& task_of);

/// Assembles only rows [first_row, n) of the Eq. (4) covariance — the
/// (n - first_row) x n strip a factor extension needs when samples are
/// appended — using the LCM's block-task structure: one SE-ARD cross-gram
/// strip per latent (se_ard_cross_strip_into), weighted by the per-task
/// mixing coefficients, plus the nugget on the new diagonal entries.
/// Entry (p, r) of the result is bitwise identical to entry
/// (first_row + p, r) of lcm_covariance; the incremental refit's
/// extended-equals-rebuilt guarantee rests on that. O(n * k * Q) work for
/// k new rows instead of O(n^2 * Q).
Matrix lcm_covariance_rows(const LcmShape& shape,
                           const std::vector<double>& theta,
                           const Matrix& all_x,
                           const std::vector<std::size_t>& task_of,
                           std::size_t first_row);

/// Restart-invariant precomputation for one LCM fit, shared (immutably) by
/// every likelihood/gradient evaluation of every multistart restart: the
/// flattened data plus the per-dimension pairwise squared-distance matrices
/// that every SE-ARD Gram evaluation needs. Building this once per fit —
/// instead of once per likelihood call — removes an O(n^2 * dim) recompute
/// and allocation from the trainer's innermost loop. Thread-safe to share
/// across trainer workers because it is never mutated after construction.
class LcmEvalContext {
 public:
  LcmEvalContext(const LcmShape& shape, Matrix all_x, Vector all_y,
                 std::vector<std::size_t> task_of);

  const LcmShape& shape() const { return shape_; }
  const Matrix& all_x() const { return all_x_; }
  const Vector& all_y() const { return all_y_; }
  const std::vector<std::size_t>& task_of() const { return task_of_; }
  const std::vector<Matrix>& distances() const { return dist_; }
  std::size_t num_samples() const { return all_x_.rows(); }

 private:
  LcmShape shape_;
  Matrix all_x_;
  Vector all_y_;
  std::vector<std::size_t> task_of_;
  std::vector<Matrix> dist_;  // per-dimension squared distances
};

/// Cache counters reported by LcmEvaluator (surfaced through LcmFitStats).
struct LcmCacheStats {
  std::size_t gram_hits = 0;    ///< per-latent Gram reused (lengthscales equal)
  std::size_t gram_misses = 0;  ///< per-latent Gram recomputed
};

/// Per-worker likelihood evaluator over a shared LcmEvalContext.
///
/// Owns the mutable scratch one restart needs — per-latent Gram buffers
/// memoized on their lengthscale vector, plus the assembled covariance —
/// so repeated evaluations (L-BFGS iterations and line-search probes)
/// allocate nothing and skip Gram recomputation whenever a latent process's
/// lengthscales did not change (common once the optimizer clamps at a bound
/// or converges). NOT thread-safe; give each trainer worker its own.
class LcmEvaluator {
 public:
  explicit LcmEvaluator(const LcmEvalContext& ctx);

  /// Log marginal likelihood at `theta` with optional analytic gradient;
  /// same contract as the free lcm_lml. `runner` parallelizes the blocked
  /// covariance factorization (the paper's ScaLAPACK role).
  [[nodiscard]] std::optional<double> lml(
      const std::vector<double>& theta, std::vector<double>* grad,
      const linalg::TaskBatchRunner& runner = linalg::serial_runner());

  const LcmEvalContext& context() const { return *ctx_; }
  const LcmCacheStats& cache_stats() const { return cache_stats_; }

 private:
  const LcmEvalContext* ctx_;
  std::vector<std::vector<double>> cached_lengthscales_;  // per latent
  std::vector<Matrix> gram_;                              // per latent
  Matrix k_;  // assembled covariance scratch
  LcmCacheStats cache_stats_;
};

/// Log marginal likelihood of `theta` on the flattened data, with optional
/// analytic gradient. Returns nullopt if the covariance cannot be factored
/// even with jitter. `runner` parallelizes the covariance factorization
/// (the paper's ScaLAPACK role). Convenience wrapper that builds a
/// single-use LcmEvalContext; hot loops should hold an LcmEvaluator over a
/// shared context instead.
[[nodiscard]] std::optional<double> lcm_lml(
    const LcmShape& shape, const std::vector<double>& theta,
    const Matrix& all_x, const Vector& all_y,
    const std::vector<std::size_t>& task_of, std::vector<double>* grad,
    const linalg::TaskBatchRunner& runner = linalg::serial_runner());

/// Posterior LCM model over a fixed data set and fixed hyperparameters.
/// Handles per-task output standardization internally: predictions are
/// reported in the original objective units.
class LcmModel {
 public:
  /// Builds the posterior; standardizes each task's y to zero mean / unit
  /// variance first (tasks may differ in magnitude by orders). Returns
  /// nullopt if the covariance cannot be factored. `runner` parallelizes
  /// the blocked covariance factorization; the jittered reference
  /// factorization remains the fallback for near-singular covariances.
  [[nodiscard]] static std::optional<LcmModel> build(
      const MultiTaskData& data, const LcmShape& shape,
      std::vector<double> theta,
      const linalg::TaskBatchRunner& runner = linalg::serial_runner());

  struct Prediction {
    double mean = 0.0;
    double variance = 0.0;  ///< posterior variance in original units
  };

  /// Posterior at configuration `x_star` for task `task` (Eqs. 5-6).
  Prediction predict(std::size_t task, const Vector& x_star) const;

  const LcmShape& shape() const { return shape_; }
  const std::vector<double>& theta() const { return theta_; }
  double log_likelihood() const { return lml_; }

  /// Standardized-space scale of `task` (exposed for tests).
  double task_scale(std::size_t task) const { return y_scale_[task]; }

 private:
  LcmModel() = default;
  /// IncrementalFitState (gp/incremental.hpp) assembles models directly
  /// from its maintained factor, bypassing build()'s full refactorization.
  friend class IncrementalFitState;
  LcmShape shape_;
  std::vector<double> theta_;
  Matrix all_x_;
  std::vector<std::size_t> task_of_;
  linalg::CholeskyFactor factor_{linalg::CholeskyFactor::from_lower(Matrix())};
  Vector alpha_;
  std::vector<double> y_mean_, y_scale_;
  double lml_ = 0.0;
};

}  // namespace gptune::gp
