#include "gp/kernel.hpp"

#include <cassert>
#include <cmath>

namespace gptune::gp {

double se_ard(const Vector& x1, const Vector& x2,
              const std::vector<double>& lengthscales) {
  assert(x1.size() == x2.size() && x1.size() == lengthscales.size());
  double s = 0.0;
  for (std::size_t m = 0; m < x1.size(); ++m) {
    const double d = x1[m] - x2[m];
    s += d * d / (2.0 * lengthscales[m] * lengthscales[m]);
  }
  return std::exp(-s);
}

Matrix se_ard_gram(const Matrix& x, const std::vector<double>& lengthscales) {
  const std::size_t n = x.rows(), d = x.cols();
  assert(lengthscales.size() == d);
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (std::size_t j = 0; j < i; ++j) {
      double s = 0.0;
      const double* xi = x.row_ptr(i);
      const double* xj = x.row_ptr(j);
      for (std::size_t m = 0; m < d; ++m) {
        const double diff = xi[m] - xj[m];
        s += diff * diff / (2.0 * lengthscales[m] * lengthscales[m]);
      }
      const double v = std::exp(-s);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix se_ard_cross(const Matrix& x1, const Matrix& x2,
                    const std::vector<double>& lengthscales) {
  const std::size_t n1 = x1.rows(), n2 = x2.rows(), d = x1.cols();
  assert(x2.cols() == d && lengthscales.size() == d);
  Matrix k(n1, n2);
  for (std::size_t i = 0; i < n1; ++i) {
    const double* xi = x1.row_ptr(i);
    for (std::size_t j = 0; j < n2; ++j) {
      const double* xj = x2.row_ptr(j);
      double s = 0.0;
      for (std::size_t m = 0; m < d; ++m) {
        const double diff = xi[m] - xj[m];
        s += diff * diff / (2.0 * lengthscales[m] * lengthscales[m]);
      }
      k(i, j) = std::exp(-s);
    }
  }
  return k;
}

void se_ard_cross_strip_into(const Matrix& x1, const Matrix& x2,
                             const std::vector<double>& lengthscales,
                             Matrix* out) {
  const std::size_t n1 = x1.rows(), n2 = x2.rows(), d = x1.cols();
  assert(x2.cols() == d && lengthscales.size() == d);
  if (out->rows() != n1 || out->cols() != n2) *out = Matrix(n1, n2, 0.0);
  // Transpose X2 once so each dimension's sweep is a contiguous stream.
  Matrix x2t(d, n2);
  for (std::size_t j = 0; j < n2; ++j) {
    const double* xj = x2.row_ptr(j);
    for (std::size_t m = 0; m < d; ++m) x2t(m, j) = xj[m];
  }
  // Divisors match the `2.0 * l * l` expression of se_ard_gram exactly;
  // keeping the division (not a reciprocal multiply) in the inner loop is
  // what makes each entry bitwise equal to the per-entry kernels.
  std::vector<double> denom(d);
  for (std::size_t m = 0; m < d; ++m) {
    denom[m] = 2.0 * lengthscales[m] * lengthscales[m];
  }
  for (std::size_t i = 0; i < n1; ++i) {
    double* krow = out->row_ptr(i);
    const double* xi = x1.row_ptr(i);
    for (std::size_t j = 0; j < n2; ++j) krow[j] = 0.0;
    for (std::size_t m = 0; m < d; ++m) {
      const double* col = x2t.row_ptr(m);
      const double xim = xi[m];
      const double dm = denom[m];
      for (std::size_t j = 0; j < n2; ++j) {
        const double diff = xim - col[j];
        krow[j] += diff * diff / dm;
      }
    }
    for (std::size_t j = 0; j < n2; ++j) krow[j] = std::exp(-krow[j]);
  }
}

std::vector<Matrix> squared_distance_per_dim(const Matrix& x) {
  const std::size_t n = x.rows(), d = x.cols();
  std::vector<Matrix> dist(d, Matrix(n, n, 0.0));
  for (std::size_t m = 0; m < d; ++m) {
    Matrix& dm = dist[m];
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < i; ++j) {
        const double diff = x(i, m) - x(j, m);
        const double v = diff * diff;
        dm(i, j) = v;
        dm(j, i) = v;
      }
    }
  }
  return dist;
}

Matrix se_ard_gram_from_distances(const std::vector<Matrix>& dist,
                                  const std::vector<double>& lengthscales) {
  Matrix k;
  se_ard_gram_from_distances_into(dist, lengthscales, &k);
  return k;
}

void se_ard_gram_from_distances_into(const std::vector<Matrix>& dist,
                                     const std::vector<double>& lengthscales,
                                     Matrix* out) {
  assert(!dist.empty() && dist.size() == lengthscales.size());
  const std::size_t n = dist[0].rows();
  if (out->rows() != n || out->cols() != n) *out = Matrix(n, n, 0.0);
  auto& kd = out->data();
  kd.assign(kd.size(), 0.0);
  for (std::size_t m = 0; m < dist.size(); ++m) {
    const double inv = 1.0 / (2.0 * lengthscales[m] * lengthscales[m]);
    const auto& dm = dist[m].data();
    for (std::size_t idx = 0; idx < kd.size(); ++idx) kd[idx] += dm[idx] * inv;
  }
  for (double& v : kd) v = std::exp(-v);
}

}  // namespace gptune::gp
