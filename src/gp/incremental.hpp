// Incremental LCM refit state — the O(N^2·k) hot path behind per-iteration
// posterior refreshes (DESIGN.md §3.10).
//
// The MLA loop refits the LCM every iteration on N + batch samples. Between
// hyperparameter re-optimizations the covariance changes only by appended
// rows, so rebuilding and refactorizing all of K — O(N^3) every round — is
// wasted work. IncrementalFitState keeps the factor of the previous refresh
// alive and, when hyperparameters are warm-started and the data grew
// append-only, assembles just the new covariance rows (lcm_covariance_rows)
// and extends the factor with blocked_cholesky_extend.
//
// Row ordering: MultiTaskData::flatten is task-major, so appends to task 0
// would land mid-matrix. The state instead owns a *generation ordering* —
// the task-major order of the first refresh, then each later refresh's new
// samples appended at the end (task 0's new rows, then task 1's, ...). Both
// the extension path and the full-rebuild path use this ordering, which is
// what makes the incremental-on and incremental-off trajectories bitwise
// identical: the rebuild factors the very matrix the extension extends.
//
// Reuse rules (when refresh() extends vs rebuilds vs resets):
//   * extend  — allow_extend, hyperparameters bitwise equal to the previous
//               refresh, data append-only (per-task counts grew and every
//               previously seen x row is bitwise unchanged), and the
//               previous factorization needed no jitter;
//   * rebuild — hyperparameters changed (restart landed elsewhere), caller
//               disabled extension, the previous refresh was jittered, or
//               the extension hit a non-positive pivot (it falls back);
//   * reset   — a prefix x row changed (the performance-model feature
//               normalization re-encoded history) or counts shrank: the
//               generation ordering restarts from the task-major flatten.
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "gp/lcm.hpp"

namespace gptune::gp {

class IncrementalFitState {
 public:
  struct Stats {
    std::size_t extends = 0;        ///< refreshes served by factor extension
    std::size_t rebuilds = 0;       ///< full refactorizations
    std::size_t ordering_resets = 0;  ///< generation ordering restarted
    std::size_t appended_rows = 0;  ///< total rows added via append
  };

  /// Refreshes the posterior for `data` at fixed hyperparameters `theta`,
  /// extending the cached factor when the reuse rules above allow it and
  /// falling back to a full (jitter-guarded) refactorization otherwise.
  /// `allow_extend = false` forces the rebuild path but keeps the same
  /// generation ordering, so the returned model is bitwise identical to the
  /// extended one. Returns nullopt only if the covariance cannot be
  /// factored even with jitter (the state is invalidated).
  [[nodiscard]] std::optional<LcmModel> refresh(
      const MultiTaskData& data, const LcmShape& shape,
      const std::vector<double>& theta,
      const linalg::TaskBatchRunner& runner = linalg::serial_runner(),
      bool allow_extend = true);

  /// Drops all cached state; the next refresh rebuilds from scratch.
  void reset();

  const Stats& stats() const { return stats_; }
  std::size_t num_rows() const { return all_x_.rows(); }
  /// Jitter applied by the last rebuild (0 when the factor is exact; a
  /// jittered factor is never extended).
  double jitter() const { return jitter_; }

 private:
  /// True when `data` is an append-only extension of the cached ordering.
  [[nodiscard]] bool append_compatible(const MultiTaskData& data,
                         const LcmShape& shape) const;
  /// Builds the LcmModel from the cached factor + current data.
  [[nodiscard]] std::optional<LcmModel> assemble(
      const MultiTaskData& data) const;

  LcmShape shape_;
  std::vector<double> theta_;
  Matrix all_x_;                      // generation-ordered flattened x
  std::vector<std::size_t> task_of_;  // flat row -> task
  std::vector<std::size_t> index_of_;  // flat row -> sample index in task
  std::vector<std::vector<std::size_t>> rows_;  // (task, sample) -> flat row
  Matrix lower_;                      // factor of K (+ jitter_ * I)
  double jitter_ = 0.0;
  bool valid_ = false;
  Stats stats_;
};

}  // namespace gptune::gp
