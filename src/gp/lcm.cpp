#include "gp/lcm.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

#include "gp/kernel.hpp"

namespace gptune::gp {

std::size_t MultiTaskData::total_samples() const {
  std::size_t n = 0;
  for (const auto& xi : x) n += xi.rows();
  return n;
}

void MultiTaskData::flatten(Matrix* all_x, Vector* all_y,
                            std::vector<std::size_t>* task_of) const {
  const std::size_t n = total_samples();
  const std::size_t d = dim();
  *all_x = Matrix(n, d);
  all_y->assign(n, 0.0);
  task_of->assign(n, 0);
  std::size_t row = 0;
  for (std::size_t i = 0; i < num_tasks(); ++i) {
    assert(x[i].rows() == y[i].size());
    for (std::size_t j = 0; j < x[i].rows(); ++j, ++row) {
      for (std::size_t m = 0; m < d; ++m) (*all_x)(row, m) = x[i](j, m);
      (*all_y)[row] = y[i][j];
      (*task_of)[row] = i;
    }
  }
}

namespace {

/// Unpacked view of one latent process's parameters.
struct LatentView {
  std::vector<double> lengthscales;  // beta
  std::vector<double> a;             // delta
  std::vector<double> b;             // delta
};

struct UnpackedTheta {
  std::vector<LatentView> latents;  // Q entries
  std::vector<double> d;            // delta nuggets
};

UnpackedTheta unpack(const LcmShape& s, const std::vector<double>& theta) {
  assert(theta.size() == s.num_hyperparameters());
  UnpackedTheta u;
  u.latents.resize(s.num_latent);
  for (std::size_t q = 0; q < s.num_latent; ++q) {
    auto& lv = u.latents[q];
    lv.lengthscales.resize(s.dim);
    for (std::size_t m = 0; m < s.dim; ++m) {
      lv.lengthscales[m] = std::exp(theta[s.idx_log_l(q, m)]);
    }
    lv.a.resize(s.num_tasks);
    lv.b.resize(s.num_tasks);
    for (std::size_t i = 0; i < s.num_tasks; ++i) {
      lv.a[i] = theta[s.idx_a(q, i)];
      lv.b[i] = std::exp(theta[s.idx_log_b(q, i)]);
    }
  }
  u.d.resize(s.num_tasks);
  for (std::size_t i = 0; i < s.num_tasks; ++i) {
    u.d[i] = std::exp(theta[s.idx_log_d(i)]);
  }
  return u;
}

}  // namespace

Matrix lcm_covariance(const LcmShape& shape, const std::vector<double>& theta,
                      const Matrix& all_x,
                      const std::vector<std::size_t>& task_of) {
  const std::size_t n = all_x.rows();
  const UnpackedTheta u = unpack(shape, theta);
  Matrix k(n, n, 0.0);
  for (std::size_t q = 0; q < shape.num_latent; ++q) {
    const auto& lv = u.latents[q];
    const Matrix gq = se_ard_gram(all_x, lv.lengthscales);
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t ti = task_of[p];
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t tj = task_of[r];
        double w = lv.a[ti] * lv.a[tj];
        if (ti == tj) w += lv.b[ti];
        k(p, r) += w * gq(p, r);
      }
    }
  }
  for (std::size_t p = 0; p < n; ++p) k(p, p) += u.d[task_of[p]];
  return k;
}

Matrix lcm_covariance_rows(const LcmShape& shape,
                           const std::vector<double>& theta,
                           const Matrix& all_x,
                           const std::vector<std::size_t>& task_of,
                           std::size_t first_row) {
  const std::size_t n = all_x.rows();
  assert(first_row <= n);
  const std::size_t nr = n - first_row;
  const UnpackedTheta u = unpack(shape, theta);
  Matrix strip(nr, n, 0.0);
  if (nr == 0) return strip;
  const Matrix x_new = all_x.block(first_row, 0, nr, all_x.cols());
  Matrix gq;
  for (std::size_t q = 0; q < shape.num_latent; ++q) {
    const auto& lv = u.latents[q];
    se_ard_cross_strip_into(x_new, all_x, lv.lengthscales, &gq);
    for (std::size_t p = 0; p < nr; ++p) {
      const std::size_t ti = task_of[first_row + p];
      double* srow = strip.row_ptr(p);
      const double* grow = gq.row_ptr(p);
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t tj = task_of[r];
        double w = lv.a[ti] * lv.a[tj];
        if (ti == tj) w += lv.b[ti];
        srow[r] += w * grow[r];
      }
    }
  }
  for (std::size_t p = 0; p < nr; ++p) {
    strip(p, first_row + p) += u.d[task_of[first_row + p]];
  }
  return strip;
}

LcmEvalContext::LcmEvalContext(const LcmShape& shape, Matrix all_x,
                               Vector all_y, std::vector<std::size_t> task_of)
    : shape_(shape),
      all_x_(std::move(all_x)),
      all_y_(std::move(all_y)),
      task_of_(std::move(task_of)),
      dist_(squared_distance_per_dim(all_x_)) {
  assert(all_x_.rows() == all_y_.size());
  assert(all_x_.rows() == task_of_.size());
}

LcmEvaluator::LcmEvaluator(const LcmEvalContext& ctx)
    : ctx_(&ctx),
      cached_lengthscales_(ctx.shape().num_latent),
      gram_(ctx.shape().num_latent) {}

std::optional<double> LcmEvaluator::lml(const std::vector<double>& theta,
                                        std::vector<double>* grad,
                                        const linalg::TaskBatchRunner& runner) {
  const LcmShape& shape = ctx_->shape();
  const Vector& all_y = ctx_->all_y();
  const std::vector<std::size_t>& task_of = ctx_->task_of();
  const std::vector<Matrix>& dist = ctx_->distances();
  const std::size_t n = ctx_->num_samples();
  const std::size_t q_count = shape.num_latent;
  const UnpackedTheta u = unpack(shape, theta);

  // Per-latent Gram matrices G_q (unit variance), memoized on the latent's
  // lengthscale vector: a latent whose lengthscales did not move since the
  // previous evaluation (clamped at a bound, converged, or probed along a
  // direction orthogonal to it) reuses its buffer untouched.
  for (std::size_t q = 0; q < q_count; ++q) {
    const auto& ls = u.latents[q].lengthscales;
    if (!gram_[q].empty() && cached_lengthscales_[q] == ls) {
      ++cache_stats_.gram_hits;
      continue;
    }
    se_ard_gram_from_distances_into(dist, ls, &gram_[q]);
    cached_lengthscales_[q] = ls;
    ++cache_stats_.gram_misses;
  }

  // Assemble K.
  if (k_.rows() != n || k_.cols() != n) k_ = Matrix(n, n, 0.0);
  auto& kd = k_.data();
  kd.assign(kd.size(), 0.0);
  for (std::size_t q = 0; q < q_count; ++q) {
    const auto& lv = u.latents[q];
    const auto& gq = gram_[q];
    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t ti = task_of[p];
      double* krow = k_.row_ptr(p);
      const double* grow = gq.row_ptr(p);
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t tj = task_of[r];
        double w = lv.a[ti] * lv.a[tj];
        if (ti == tj) w += lv.b[ti];
        krow[r] += w * grow[r];
      }
    }
  }
  for (std::size_t p = 0; p < n; ++p) k_(p, p) += u.d[task_of[p]];

  // Factor (parallel blocked path when a runner with workers is supplied).
  // Likelihood evaluations see a fresh theta every call, so there is no
  // factor to extend here.
  std::optional<linalg::CholeskyFactor> factor;
  {
    // gptune-lint: allow(full-refactor) reason: likelihood evaluation at a
    // fresh theta; no prior factor exists to extend
    auto blocked = linalg::blocked_cholesky(k_, 128, runner);
    if (blocked) {
      factor = std::move(blocked);
    } else {
      // Fall back to jittered factorization for near-singular K.
      // gptune-lint: allow(full-refactor) reason: jittered near-singular
      // fallback for the fresh-theta factorization above
      factor = linalg::CholeskyFactor::factor_with_jitter(k_);
      if (!factor) return std::nullopt;
    }
  }

  const Vector alpha = factor->solve(all_y);
  const double lml = -0.5 * linalg::dot(all_y, alpha) -
                     0.5 * factor->log_det() -
                     0.5 * static_cast<double>(n) *
                         std::log(2.0 * std::numbers::pi);
  if (!grad) return lml;

  // M = alpha alpha^T - K^{-1}.
  Matrix m = factor->inverse();
  m *= -1.0;
  for (std::size_t p = 0; p < n; ++p) {
    double* mrow = m.row_ptr(p);
    const double ap = alpha[p];
    for (std::size_t r = 0; r < n; ++r) mrow[r] += ap * alpha[r];
  }

  grad->assign(theta.size(), 0.0);

  for (std::size_t q = 0; q < q_count; ++q) {
    const auto& lv = u.latents[q];
    const auto& gq = gram_[q];

    // Element-wise H = M .* G_q, plus W_q weighting where needed.
    // d/dlog l^q_m needs sum over (p,r) of M*W*G*dist_m / l^2.
    std::vector<double> dlogl(shape.dim, 0.0);
    // d/da_{i,q} = sum_{p in task i, r} M(p,r) a_{tau(r),q} G(p,r).
    std::vector<double> da(shape.num_tasks, 0.0);
    // d/dlog b_{i,q} = 0.5 b_i sum_{p,r in task i} M(p,r) G(p,r).
    std::vector<double> db(shape.num_tasks, 0.0);

    for (std::size_t p = 0; p < n; ++p) {
      const std::size_t ti = task_of[p];
      const double* mrow = m.row_ptr(p);
      const double* grow = gq.row_ptr(p);
      for (std::size_t r = 0; r < n; ++r) {
        const std::size_t tj = task_of[r];
        const double mg = mrow[r] * grow[r];
        double w = lv.a[ti] * lv.a[tj];
        if (ti == tj) {
          w += lv.b[ti];
          db[ti] += mg;
        }
        da[ti] += mg * lv.a[tj];
        const double mwg = mg * w;
        for (std::size_t dim_m = 0; dim_m < shape.dim; ++dim_m) {
          dlogl[dim_m] += mwg * dist[dim_m](p, r);
        }
      }
    }
    for (std::size_t dim_m = 0; dim_m < shape.dim; ++dim_m) {
      const double l = lv.lengthscales[dim_m];
      (*grad)[shape.idx_log_l(q, dim_m)] = 0.5 * dlogl[dim_m] / (l * l);
    }
    for (std::size_t i = 0; i < shape.num_tasks; ++i) {
      (*grad)[shape.idx_a(q, i)] = da[i];
      (*grad)[shape.idx_log_b(q, i)] = 0.5 * lv.b[i] * db[i];
    }
  }
  for (std::size_t p = 0; p < n; ++p) {
    (*grad)[shape.idx_log_d(task_of[p])] += 0.5 * u.d[task_of[p]] * m(p, p);
  }
  return lml;
}

std::optional<double> lcm_lml(const LcmShape& shape,
                              const std::vector<double>& theta,
                              const Matrix& all_x, const Vector& all_y,
                              const std::vector<std::size_t>& task_of,
                              std::vector<double>* grad,
                              const linalg::TaskBatchRunner& runner) {
  LcmEvalContext ctx(shape, all_x, all_y, task_of);
  LcmEvaluator evaluator(ctx);
  return evaluator.lml(theta, grad, runner);
}

std::optional<LcmModel> LcmModel::build(const MultiTaskData& data,
                                        const LcmShape& shape,
                                        std::vector<double> theta,
                                        const linalg::TaskBatchRunner& runner) {
  LcmModel model;
  model.shape_ = shape;
  model.theta_ = std::move(theta);

  // Standardize y per task.
  const std::size_t delta = data.num_tasks();
  model.y_mean_.resize(delta);
  model.y_scale_.resize(delta);
  MultiTaskData standardized = data;
  for (std::size_t i = 0; i < delta; ++i) {
    double mu = 0.0;
    for (double v : data.y[i]) mu += v;
    mu /= std::max<std::size_t>(1, data.y[i].size());
    double var = 0.0;
    for (double v : data.y[i]) var += (v - mu) * (v - mu);
    var /= std::max<std::size_t>(1, data.y[i].size());
    const double scale = var > 1e-20 ? std::sqrt(var) : 1.0;
    model.y_mean_[i] = mu;
    model.y_scale_[i] = scale;
    for (double& v : standardized.y[i]) v = (v - mu) / scale;
  }

  Vector all_y;
  standardized.flatten(&model.all_x_, &all_y, &model.task_of_);

  const Matrix k =
      lcm_covariance(shape, model.theta_, model.all_x_, model.task_of_);
  // Blocked (optionally parallel) factorization first — the same path the
  // trainer's likelihood evaluations take — with the jittered reference
  // factorization as the fallback for near-singular covariances. This is
  // the from-scratch construction path; incremental refits go through
  // IncrementalFitState instead.
  // gptune-lint: allow(full-refactor) reason: the from-scratch construction
  // path; incremental refits go through IncrementalFitState
  auto factor = linalg::blocked_cholesky(k, 128, runner);
  // gptune-lint: allow(full-refactor) reason: jittered near-singular fallback
  if (!factor) factor = linalg::CholeskyFactor::factor_with_jitter(k);
  if (!factor) return std::nullopt;
  model.factor_ = std::move(*factor);
  model.alpha_ = model.factor_.solve(all_y);
  model.lml_ = -0.5 * linalg::dot(all_y, model.alpha_) -
               0.5 * model.factor_.log_det() -
               0.5 * static_cast<double>(all_y.size()) *
                   std::log(2.0 * std::numbers::pi);
  return model;
}

LcmModel::Prediction LcmModel::predict(std::size_t task,
                                       const Vector& x_star) const {
  assert(task < shape_.num_tasks);
  const std::size_t n = all_x_.rows();
  const UnpackedTheta u = unpack(shape_, theta_);

  Vector k_star(n, 0.0);
  Vector xi(shape_.dim);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t m = 0; m < shape_.dim; ++m) xi[m] = all_x_(p, m);
    const std::size_t tj = task_of_[p];
    double v = 0.0;
    for (std::size_t q = 0; q < shape_.num_latent; ++q) {
      const auto& lv = u.latents[q];
      double w = lv.a[task] * lv.a[tj];
      if (task == tj) w += lv.b[task];
      if (w != 0.0) v += w * se_ard(x_star, xi, lv.lengthscales);
    }
    k_star[p] = v;
  }

  double prior = 0.0;
  for (std::size_t q = 0; q < shape_.num_latent; ++q) {
    const auto& lv = u.latents[q];
    prior += lv.a[task] * lv.a[task] + lv.b[task];
  }

  Prediction pred;
  const double std_mean = linalg::dot(k_star, alpha_);
  const Vector v = factor_.solve_lower(k_star);
  const double std_var = std::max(0.0, prior - linalg::dot(v, v));

  // Back to original units.
  pred.mean = y_mean_[task] + y_scale_[task] * std_mean;
  pred.variance = y_scale_[task] * y_scale_[task] * std_var;
  return pred;
}

}  // namespace gptune::gp
