// Squared-exponential kernel with automatic relevance determination (ARD):
// the Gaussian kernel of paper Eq. (3),
//   k(x, x') = sigma^2 exp( -sum_m (x_m - x'_m)^2 / (2 l_m^2) ).
#pragma once

#include <vector>

#include "linalg/matrix.hpp"

namespace gptune::gp {

using linalg::Matrix;
using linalg::Vector;

/// k(x, x') with unit signal variance.
double se_ard(const Vector& x1, const Vector& x2,
              const std::vector<double>& lengthscales);

/// Gram matrix K(X, X) with unit signal variance; X rows are points.
Matrix se_ard_gram(const Matrix& x, const std::vector<double>& lengthscales);

/// Cross matrix K(X1, X2) with unit signal variance.
Matrix se_ard_cross(const Matrix& x1, const Matrix& x2,
                    const std::vector<double>& lengthscales);

/// Cross-gram strip K(X1, X2) written into `out` (n1 x n2), dimension-major:
/// per-dimension scaled squared distances accumulate into each contiguous
/// output row before one exp pass, so the inner loops stream unit-stride
/// over a transposed copy of X2 and auto-vectorize. Entries are bitwise
/// identical to se_ard_gram/se_ard_cross (same per-entry reduction order
/// and division idiom) — the incremental LCM refit relies on that to keep
/// extended factors equal to rebuilt ones. Resizes `out` only on shape
/// mismatch; the strip-assembly hot path reuses one buffer per latent.
void se_ard_cross_strip_into(const Matrix& x1, const Matrix& x2,
                             const std::vector<double>& lengthscales,
                             Matrix* out);

/// Per-dimension squared-distance matrices D_m(i,j) = (x_i,m - x_j,m)^2.
/// Precomputed once per fit; reused by every likelihood/gradient evaluation.
std::vector<Matrix> squared_distance_per_dim(const Matrix& x);

/// Gram matrix from precomputed distances:
/// K(i,j) = exp(-sum_m D_m(i,j) / (2 l_m^2)).
Matrix se_ard_gram_from_distances(const std::vector<Matrix>& dist,
                                  const std::vector<double>& lengthscales);

/// In-place variant of se_ard_gram_from_distances: writes into `out`,
/// resizing only when the shape differs. Lets a caller that evaluates many
/// hyperparameter points (the multi-start trainer) reuse one buffer per
/// latent process instead of allocating an n x n matrix per evaluation.
void se_ard_gram_from_distances_into(const std::vector<Matrix>& dist,
                                     const std::vector<double>& lengthscales,
                                     Matrix* out);

}  // namespace gptune::gp
