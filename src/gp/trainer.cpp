#include "gp/trainer.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <mutex>

#include "common/log.hpp"
#include "runtime/comm.hpp"

namespace gptune::gp {

std::vector<double> random_lcm_theta(const LcmShape& shape,
                                     common::Rng& rng) {
  std::vector<double> theta(shape.num_hyperparameters());
  const double a_scale =
      1.0 / std::sqrt(static_cast<double>(shape.num_latent));
  for (std::size_t q = 0; q < shape.num_latent; ++q) {
    for (std::size_t m = 0; m < shape.dim; ++m) {
      theta[shape.idx_log_l(q, m)] = std::log(rng.uniform(0.1, 1.0));
    }
    for (std::size_t i = 0; i < shape.num_tasks; ++i) {
      theta[shape.idx_a(q, i)] = rng.normal(0.0, a_scale);
      theta[shape.idx_log_b(q, i)] = std::log(rng.uniform(0.01, 0.1));
    }
  }
  for (std::size_t i = 0; i < shape.num_tasks; ++i) {
    theta[shape.idx_log_d(i)] = std::log(rng.uniform(1e-4, 1e-2));
  }
  return theta;
}

namespace {

struct RestartOutcome {
  std::vector<double> theta;
  double lml = -std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;
  bool ok = false;
};

RestartOutcome run_restart(const LcmShape& shape, const Matrix& all_x,
                           const Vector& all_y,
                           const std::vector<std::size_t>& task_of,
                           const std::vector<double>& theta0,
                           std::size_t max_iterations) {
  RestartOutcome out;
  // Clamp log-space parameters into sane boxes to keep the covariance well
  // conditioned: lengthscales in [1e-3, 1e3], b in [1e-8, 1e3],
  // d in [1e-8, 1e2].
  auto project = [&shape](std::vector<double> t) {
    auto clamp = [](double v, double lo, double hi) {
      return std::min(std::max(v, lo), hi);
    };
    for (std::size_t q = 0; q < shape.num_latent; ++q) {
      for (std::size_t m = 0; m < shape.dim; ++m) {
        auto& v = t[shape.idx_log_l(q, m)];
        v = clamp(v, std::log(1e-3), std::log(1e3));
      }
      for (std::size_t i = 0; i < shape.num_tasks; ++i) {
        auto& vb = t[shape.idx_log_b(q, i)];
        vb = clamp(vb, std::log(1e-8), std::log(1e3));
        auto& va = t[shape.idx_a(q, i)];
        va = clamp(va, -1e3, 1e3);
      }
    }
    for (std::size_t i = 0; i < shape.num_tasks; ++i) {
      auto& v = t[shape.idx_log_d(i)];
      v = clamp(v, std::log(1e-8), std::log(1e2));
    }
    return t;
  };

  std::size_t evals = 0;
  auto objective = [&](const std::vector<double>& theta,
                       std::vector<double>& grad) -> double {
    ++evals;
    const auto t = project(theta);
    auto lml = lcm_lml(shape, t, all_x, all_y, task_of, &grad);
    if (!lml || !std::isfinite(*lml)) {
      grad.assign(theta.size(), 0.0);
      return 1e10;
    }
    for (double& g : grad) g = -g;
    return -*lml;
  };

  opt::LbfgsOptions lopt;
  lopt.max_iterations = max_iterations;
  lopt.gradient_tolerance = 1e-4;
  // Each objective evaluation factors the full covariance; keep the
  // line search short rather than exact (weak-Wolfe acceptance is fine
  // for a multi-start outer loop).
  lopt.max_line_search_steps = 8;
  auto result = opt::lbfgs_minimize(objective, theta0, lopt);
  out.evaluations = evals;

  const auto final_theta = project(result.x);
  auto lml = lcm_lml(shape, final_theta, all_x, all_y, task_of, nullptr);
  if (lml && std::isfinite(*lml)) {
    out.theta = final_theta;
    out.lml = *lml;
    out.ok = true;
  }
  return out;
}

}  // namespace

std::optional<LcmModel> fit_lcm(const MultiTaskData& data,
                                const LcmFitOptions& options,
                                LcmFitStats* stats) {
  LcmShape shape;
  shape.num_tasks = data.num_tasks();
  shape.dim = data.dim();
  shape.num_latent = options.num_latent > 0
                         ? options.num_latent
                         : std::min<std::size_t>(shape.num_tasks, 3);

  // Standardize per task exactly as LcmModel::build does, so the likelihood
  // optimized here matches the posterior built there.
  MultiTaskData standardized = data;
  for (std::size_t i = 0; i < data.num_tasks(); ++i) {
    double mu = 0.0;
    for (double v : data.y[i]) mu += v;
    mu /= std::max<std::size_t>(1, data.y[i].size());
    double var = 0.0;
    for (double v : data.y[i]) var += (v - mu) * (v - mu);
    var /= std::max<std::size_t>(1, data.y[i].size());
    const double scale = var > 1e-20 ? std::sqrt(var) : 1.0;
    for (double& v : standardized.y[i]) v = (v - mu) / scale;
  }
  Matrix all_x;
  Vector all_y;
  std::vector<std::size_t> task_of;
  standardized.flatten(&all_x, &all_y, &task_of);

  // Build the restart list: warm start first (if usable), then random draws.
  common::Rng rng(options.seed);
  std::vector<std::vector<double>> starts;
  if (options.warm_start.size() == shape.num_hyperparameters()) {
    starts.push_back(options.warm_start);
  }
  while (starts.size() < std::max<std::size_t>(1, options.num_restarts)) {
    starts.push_back(random_lcm_theta(shape, rng));
  }

  std::vector<RestartOutcome> outcomes(starts.size());
  const std::size_t workers =
      std::min(std::max<std::size_t>(1, options.num_workers), starts.size());
  if (workers == 1) {
    for (std::size_t s = 0; s < starts.size(); ++s) {
      outcomes[s] = run_restart(shape, all_x, all_y, task_of, starts[s],
                                options.max_lbfgs_iterations);
    }
  } else {
    // Distribute restarts over spawned worker ranks (paper Fig. 1). Results
    // return to the master through the inter-communicator: each worker
    // sends one message per restart tagged by restart index, payload
    // [lml, ok, evaluations, theta...].
    rt::World::run(1, [&](rt::Comm& master) {
      auto handle = master.spawn(
          workers, [&](rt::Comm& worker, rt::InterComm& parent) {
            for (std::size_t s = worker.rank(); s < starts.size();
                 s += worker.size()) {
              RestartOutcome out =
                  run_restart(shape, all_x, all_y, task_of, starts[s],
                              options.max_lbfgs_iterations);
              std::vector<double> payload;
              payload.push_back(out.lml);
              payload.push_back(out.ok ? 1.0 : 0.0);
              payload.push_back(static_cast<double>(out.evaluations));
              payload.insert(payload.end(), out.theta.begin(),
                             out.theta.end());
              parent.send(0, static_cast<int>(s), std::move(payload));
            }
          });
      for (std::size_t received = 0; received < starts.size(); ++received) {
        rt::Message msg = handle.comm().recv();
        RestartOutcome& out = outcomes[static_cast<std::size_t>(msg.tag)];
        out.lml = msg.data[0];
        out.ok = msg.data[1] > 0.5;
        out.evaluations = static_cast<std::size_t>(msg.data[2]);
        out.theta.assign(msg.data.begin() + 3, msg.data.end());
      }
      handle.join();
    });
  }

  const RestartOutcome* best = nullptr;
  std::size_t failed = 0;
  std::size_t total_evals = 0;
  for (const auto& out : outcomes) {
    total_evals += out.evaluations;
    if (!out.ok) {
      ++failed;
      continue;
    }
    if (!best || out.lml > best->lml) best = &out;
  }
  if (stats) {
    stats->restarts_attempted = outcomes.size();
    stats->restarts_failed = failed;
    stats->total_lbfgs_evaluations = total_evals;
    stats->best_lml = best ? best->lml : 0.0;
  }
  if (!best) {
    common::log_warn("fit_lcm: all ", outcomes.size(), " restarts failed");
    return std::nullopt;
  }
  return LcmModel::build(data, shape, best->theta);
}

}  // namespace gptune::gp
