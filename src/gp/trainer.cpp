#include "gp/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "common/log.hpp"
#include "common/telemetry/telemetry.hpp"
#include "common/timer.hpp"
#include "runtime/thread_pool.hpp"

namespace gptune::gp {

std::vector<double> random_lcm_theta(const LcmShape& shape,
                                     common::Rng& rng) {
  std::vector<double> theta(shape.num_hyperparameters());
  const double a_scale =
      1.0 / std::sqrt(static_cast<double>(shape.num_latent));
  for (std::size_t q = 0; q < shape.num_latent; ++q) {
    for (std::size_t m = 0; m < shape.dim; ++m) {
      theta[shape.idx_log_l(q, m)] = std::log(rng.uniform(0.1, 1.0));
    }
    for (std::size_t i = 0; i < shape.num_tasks; ++i) {
      theta[shape.idx_a(q, i)] = rng.normal(0.0, a_scale);
      theta[shape.idx_log_b(q, i)] = std::log(rng.uniform(0.01, 0.1));
    }
  }
  for (std::size_t i = 0; i < shape.num_tasks; ++i) {
    theta[shape.idx_log_d(i)] = std::log(rng.uniform(1e-4, 1e-2));
  }
  return theta;
}

std::uint64_t lcm_restart_seed(std::uint64_t seed, std::size_t restart) {
  // SplitMix64 finalizer over (seed, restart): statistically independent
  // streams even for adjacent seeds/restart indices.
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (restart + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {

struct RestartOutcome {
  std::vector<double> theta;
  double lml = -std::numeric_limits<double>::infinity();
  std::size_t evaluations = 0;
  bool ok = false;
  double seconds = 0.0;
  LcmCacheStats cache;
};

RestartOutcome run_restart(const LcmEvalContext& ctx,
                           const std::vector<double>& theta0,
                           std::size_t max_iterations,
                           const linalg::TaskBatchRunner& runner) {
  const LcmShape& shape = ctx.shape();
  common::Timer timer;
  telemetry::Span restart_span("model", "lcm_restart");
  RestartOutcome out;
  // Clamp log-space parameters into sane boxes to keep the covariance well
  // conditioned: lengthscales in [1e-3, 1e3], b in [1e-8, 1e3],
  // d in [1e-8, 1e2].
  auto project = [&shape](std::vector<double> t) {
    auto clamp = [](double v, double lo, double hi) {
      return std::min(std::max(v, lo), hi);
    };
    for (std::size_t q = 0; q < shape.num_latent; ++q) {
      for (std::size_t m = 0; m < shape.dim; ++m) {
        auto& v = t[shape.idx_log_l(q, m)];
        v = clamp(v, std::log(1e-3), std::log(1e3));
      }
      for (std::size_t i = 0; i < shape.num_tasks; ++i) {
        auto& vb = t[shape.idx_log_b(q, i)];
        vb = clamp(vb, std::log(1e-8), std::log(1e3));
        auto& va = t[shape.idx_a(q, i)];
        va = clamp(va, -1e3, 1e3);
      }
    }
    for (std::size_t i = 0; i < shape.num_tasks; ++i) {
      auto& v = t[shape.idx_log_d(i)];
      v = clamp(v, std::log(1e-8), std::log(1e2));
    }
    return t;
  };

  // One evaluator per restart: its Gram memo and covariance scratch live
  // across every L-BFGS iteration and line-search probe of this restart.
  LcmEvaluator evaluator(ctx);
  std::size_t evals = 0;
  auto objective = [&](const std::vector<double>& theta,
                       std::vector<double>& grad) -> double {
    ++evals;
    const auto t = project(theta);
    auto lml = evaluator.lml(t, &grad, runner);
    if (!lml || !std::isfinite(*lml)) {
      grad.assign(theta.size(), 0.0);
      return 1e10;
    }
    for (double& g : grad) g = -g;
    return -*lml;
  };

  opt::LbfgsOptions lopt;
  lopt.max_iterations = max_iterations;
  lopt.gradient_tolerance = 1e-4;
  // Each objective evaluation factors the full covariance; keep the
  // line search short rather than exact (weak-Wolfe acceptance is fine
  // for a multi-start outer loop).
  lopt.max_line_search_steps = 8;
  auto result = opt::lbfgs_minimize(objective, theta0, lopt);
  out.evaluations = evals;

  const auto final_theta = project(result.x);
  auto lml = evaluator.lml(final_theta, nullptr, runner);
  if (lml && std::isfinite(*lml)) {
    out.theta = final_theta;
    out.lml = *lml;
    out.ok = true;
  }
  out.cache = evaluator.cache_stats();
  out.seconds = timer.seconds();
  restart_span.arg("lbfgs_evals", static_cast<double>(evals));
  telemetry::advance_virtual(out.seconds);
  static auto& evals_hist = telemetry::histogram("trainer.lbfgs.evals");
  evals_hist.record(static_cast<double>(evals));
  return out;
}

}  // namespace

std::optional<LcmModel> fit_lcm(const MultiTaskData& data,
                                const LcmFitOptions& options,
                                LcmFitStats* stats) {
  common::Timer fit_timer;
  telemetry::Span fit_span("model", "fit_lcm");
  LcmShape shape;
  shape.num_tasks = data.num_tasks();
  shape.dim = data.dim();
  shape.num_latent = options.num_latent > 0
                         ? options.num_latent
                         : std::min<std::size_t>(shape.num_tasks, 3);

  // Standardize per task exactly as LcmModel::build does, so the likelihood
  // optimized here matches the posterior built there.
  MultiTaskData standardized = data;
  for (std::size_t i = 0; i < data.num_tasks(); ++i) {
    double mu = 0.0;
    for (double v : data.y[i]) mu += v;
    mu /= std::max<std::size_t>(1, data.y[i].size());
    double var = 0.0;
    for (double v : data.y[i]) var += (v - mu) * (v - mu);
    var /= std::max<std::size_t>(1, data.y[i].size());
    const double scale = var > 1e-20 ? std::sqrt(var) : 1.0;
    for (double& v : standardized.y[i]) v = (v - mu) / scale;
  }
  Matrix all_x;
  Vector all_y;
  std::vector<std::size_t> task_of;
  standardized.flatten(&all_x, &all_y, &task_of);

  // Restart-invariant precomputation, shared read-only by every worker.
  const LcmEvalContext ctx(shape, std::move(all_x), std::move(all_y),
                           std::move(task_of));

  // Build the restart list up front: warm start first (if usable), then one
  // independent RNG stream per restart. The list depends only on (seed,
  // num_restarts), never on the worker count.
  std::vector<std::vector<double>> starts;
  starts.reserve(std::max<std::size_t>(1, options.num_restarts));
  if (options.warm_start.size() == shape.num_hyperparameters()) {
    starts.push_back(options.warm_start);
  }
  while (starts.size() < std::max<std::size_t>(1, options.num_restarts)) {
    common::Rng stream(lcm_restart_seed(options.seed, starts.size()));
    starts.push_back(random_lcm_theta(shape, stream));
  }

  const std::size_t workers =
      std::min(std::max<std::size_t>(1, options.num_workers), starts.size());
  rt::ThreadPool* pool = options.pool;
  std::unique_ptr<rt::ThreadPool> transient_pool;
  if (pool == nullptr && workers > 1) {
    transient_pool = std::make_unique<rt::ThreadPool>(workers);
    pool = transient_pool.get();
  }

  std::vector<RestartOutcome> outcomes(starts.size());
  if (workers == 1) {
    // Serial restarts. A supplied pool still helps: it parallelizes the
    // blocked Cholesky inside each likelihood evaluation (tile updates are
    // deterministic regardless of execution order, so results stay bitwise
    // identical to the serial runner).
    const linalg::TaskBatchRunner runner =
        pool ? pool->batch_runner() : linalg::serial_runner();
    for (std::size_t s = 0; s < starts.size(); ++s) {
      outcomes[s] = run_restart(ctx, starts[s], options.max_lbfgs_iterations,
                                runner);
    }
  } else {
    // Fan the restarts out over the pool (paper Fig. 1 model workers).
    // Each restart runs single-threaded with a serial Cholesky runner —
    // with every worker busy on its own restart there is no idle capacity
    // worth nesting parallelism into.
    std::vector<std::function<void()>> tasks;
    tasks.reserve(starts.size());
    for (std::size_t s = 0; s < starts.size(); ++s) {
      tasks.push_back([&ctx, &starts, &outcomes, &options, s] {
        outcomes[s] = run_restart(ctx, starts[s],
                                  options.max_lbfgs_iterations,
                                  linalg::serial_runner());
      });
    }
    pool->run_batch(std::move(tasks));
  }

  const RestartOutcome* best = nullptr;
  std::size_t failed = 0;
  std::size_t total_evals = 0;
  std::size_t gram_hits = 0, gram_misses = 0;
  for (const auto& out : outcomes) {
    total_evals += out.evaluations;
    gram_hits += out.cache.gram_hits;
    gram_misses += out.cache.gram_misses;
    if (!out.ok) {
      ++failed;
      continue;
    }
    if (!best || out.lml > best->lml) best = &out;
  }
  fit_span.arg("restarts", static_cast<double>(outcomes.size()));
  static auto& hits_counter = telemetry::counter("trainer.gram.hits");
  static auto& misses_counter = telemetry::counter("trainer.gram.misses");
  static auto& restarts_counter = telemetry::counter("trainer.restarts");
  hits_counter.add(gram_hits);
  misses_counter.add(gram_misses);
  restarts_counter.add(outcomes.size());
  if (stats) {
    stats->restarts_attempted = outcomes.size();
    stats->restarts_failed = failed;
    stats->total_lbfgs_evaluations = total_evals;
    stats->best_lml = best ? best->lml : 0.0;
    stats->best_theta = best ? best->theta : std::vector<double>{};
    stats->workers_used = workers;
    stats->gram_cache_hits = gram_hits;
    stats->gram_cache_misses = gram_misses;
    stats->restart_seconds.clear();
    stats->restart_seconds.reserve(outcomes.size());
    for (const auto& out : outcomes) {
      stats->restart_seconds.push_back(out.seconds);
    }
  }
  if (!best) {
    common::log_warn("fit_lcm: all ", outcomes.size(), " restarts failed");
    if (stats) {
      stats->fit_seconds = fit_timer.seconds();
      stats->restarts_per_second =
          stats->fit_seconds > 0.0
              ? static_cast<double>(outcomes.size()) / stats->fit_seconds
              : 0.0;
    }
    return std::nullopt;
  }
  std::optional<LcmModel> model;
  if (options.build_posterior) {
    // The pool is idle again here; let it speed up the posterior build too.
    model = LcmModel::build(
        data, shape, best->theta,
        pool ? pool->batch_runner() : linalg::serial_runner());
  }
  if (stats) {
    stats->fit_seconds = fit_timer.seconds();
    stats->restarts_per_second =
        stats->fit_seconds > 0.0
            ? static_cast<double>(outcomes.size()) / stats->fit_seconds
            : 0.0;
  }
  return model;
}

}  // namespace gptune::gp
