// Multi-objective tuning of SuperLU_DIST factorization (paper §6.7):
// minimize (time, memory) simultaneously and report the Pareto front.
//
// Demonstrates Algorithm 2: one LCM model per objective and NSGA-II over
// the per-objective Expected Improvement, returning trade-off
// configurations no single-objective run would surface.
#include <algorithm>
#include <cstdio>

#include "apps/superlu_sim.hpp"
#include "core/mla.hpp"

int main() {
  using namespace gptune;

  apps::SuperluSim superlu(apps::MachineConfig{8, 32});  // 8 "Cori" nodes
  core::Space space = superlu.tuning_space();

  core::MlaOptions options;
  options.num_objectives = 2;        // (factorization time, memory)
  options.budget_per_task = 40;
  options.batch_k = 4;               // k new points per MLA iteration
  options.seed = 11;
  options.log_objective = true;

  core::MultitaskTuner tuner(space, superlu.objective_time_memory(),
                             options);

  // Tune the matrix "benzene" from the (synthetic) PARSEC catalog.
  const double matrix =
      static_cast<double>(apps::SuperluSim::matrix_index("benzene"));
  core::MlaResult result = tuner.run({{matrix}});

  // Default configuration for reference (paper Table 5).
  const auto default_config = apps::SuperluSim::default_config();
  const auto default_result = superlu.factorize({matrix}, default_config);
  std::printf("default: %-48s time=%7.3fs memory=%7.1f MB\n\n",
              space.format(default_config).c_str(),
              default_result.time_seconds,
              default_result.memory_bytes / 1e6);

  auto front = result.tasks[0].pareto();
  std::sort(front.begin(), front.end(),
            [](const core::EvalRecord& a, const core::EvalRecord& b) {
              return a.objectives[0] < b.objectives[0];
            });
  std::printf("Pareto front (%zu points of %zu evaluations):\n",
              front.size(), result.tasks[0].evals.size());
  std::printf("%9s %11s   configuration\n", "time", "memory");
  for (const auto& e : front) {
    std::printf("%8.3fs %9.1f MB  %s\n", e.objectives[0],
                e.objectives[1] / 1e6, space.format(e.config).c_str());
  }
  return 0;
}
