// Quickstart: tune a black-box function over multiple tasks with MLA.
//
// This is the 60-second tour of the public API:
//   1. describe the tuning parameter space,
//   2. wrap the objective as a MultiObjectiveFn,
//   3. configure and run the MultitaskTuner,
//   4. read the per-task results.
//
// The objective is the paper's analytical test function (Eq. 11) — cheap to
// evaluate here, but the tuner treats it exactly like an expensive
// application run.
#include <cstdio>

#include "apps/analytical.hpp"
#include "core/mla.hpp"

int main() {
  using namespace gptune;

  // 1. Tuning parameter space: a single real parameter x in [0, 1].
  //    (Real applications mix real, integer, and categorical parameters
  //    plus constraints — see the other examples.)
  core::Space space;
  space.add_real("x", 0.0, 1.0);

  // 2. The black-box objective: given task parameters t and a tuning
  //    configuration x, return the value(s) to minimize.
  core::MultiObjectiveFn objective = [](const core::TaskVector& task,
                                        const core::Config& config) {
    return std::vector<double>{
        apps::analytical_objective(task[0], config[0])};
  };

  // 3. Configure MLA: 20 evaluations per task, half spent on the initial
  //    Latin-hypercube design, the rest guided by the multitask GP.
  core::MlaOptions options;
  options.budget_per_task = 20;
  options.seed = 2021;
  // Evaluate chosen configurations on 4 concurrent objective workers
  // (paper Fig. 1). The trajectory is identical at any worker count; only
  // the objective-phase makespan shrinks. The evaluation policy also
  // handles crashes, NaN results, and timeouts — see DESIGN.md.
  options.objective_workers = 4;

  core::MultitaskTuner tuner(space, objective, options);

  // Tune four related tasks jointly: the LCM model shares information
  // between them, which is the whole point of multitask learning.
  std::vector<core::TaskVector> tasks = {{0.0}, {2.0}, {4.5}, {9.5}};
  core::MlaResult result = tuner.run(tasks);

  // 4. Results: best configuration and value per task, plus the phase
  //    time breakdown the paper's Table 3 reports.
  std::printf("task     best x    best y    true minimum\n");
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::printf("t=%-5.1f  %8.5f  %8.5f  %12.5f\n", tasks[i][0],
                result.tasks[i].best_config()[0], result.tasks[i].best(),
                apps::analytical_true_minimum(tasks[i][0], 50001));
  }
  std::printf(
      "\nphase times (wall):    objective %.3fs, modeling %.3fs, "
      "search %.3fs (%zu model refits)\n",
      result.times.objective, result.times.modeling, result.times.search,
      result.model_refits);
  std::printf(
      "phase times (virtual): objective %.3fs, modeling %.3fs, "
      "search %.3fs (makespans over %zu objective workers)\n",
      result.virtual_times.objective, result.virtual_times.modeling,
      result.virtual_times.search, options.objective_workers);
  return 0;
}
