// Post-mortem demo: the quickstart run wired for observability.
//
// Run it clean and every observability artifact appears:
//
//   GPTUNE_MANIFEST=manifest.json GPTUNE_DUMP_DIR=. GPTUNE_HEARTBEAT=2
//     ... ./fault_report_demo
//   gptune_report --ci --manifest manifest.json --dump-dir .
//
// Run it with --crash and a deterministically chosen configuration aborts
// the process mid-tuning (apps::FaultSpec::hard_crash): the flight
// recorder's SIGABRT handler writes flight_dump_crash.json into
// GPTUNE_DUMP_DIR, the manifest is left at status "running", and
// gptune_report renders the per-thread last-events timeline and flags
// [incomplete-run] + [crash-dump]. This is the demo — and the CI fixture
// (scripts/check.sh report) — for the post-mortem flow in DESIGN.md §3.12.
#include <cstdio>
#include <cstring>

#include "apps/analytical.hpp"
#include "apps/fault_injection.hpp"
#include "core/mla.hpp"

int main(int argc, char** argv) {
  using namespace gptune;

  const bool crash = argc > 1 && std::strcmp(argv[1], "--crash") == 0;

  core::Space space;
  space.add_real("x", 0.0, 1.0);

  core::MultiObjectiveFn objective = [](const core::TaskVector& task,
                                        const core::Config& config) {
    return std::vector<double>{
        apps::analytical_objective(task[0], config[0])};
  };
  if (crash) {
    // High enough that one of the 20 evaluations per task is near-certain
    // to hit it; hard_crash turns that hit into SIGABRT.
    apps::FaultSpec spec;
    spec.crash_rate = 0.3;
    spec.hard_crash = true;
    spec.seed = 7;
    objective = apps::with_faults(std::move(objective), spec);
  }

  core::MlaOptions options;
  options.budget_per_task = 20;
  options.seed = 2021;
  options.objective_workers = 4;

  core::MultitaskTuner tuner(space, objective, options);
  std::vector<core::TaskVector> tasks = {{0.0}, {2.0}, {4.5}, {9.5}};
  core::MlaResult result = tuner.run(tasks);

  std::printf("task     best x    best y\n");
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    std::printf("t=%-5.1f  %8.5f  %8.5f\n", tasks[i][0],
                result.tasks[i].best_config()[0], result.tasks[i].best());
  }
  return 0;
}
