// Archiving and reusing tuning data across sessions (paper goal 3:
// "Support archiving and reusing tuning data from multiple executions to
// allow tuning to improve over time").
//
// Session 1 tunes a hypre problem and saves every evaluation to a history
// file. Session 2 reloads the file; archived samples for matching tasks
// enter the new run as free data, so the second session starts from the
// first session's knowledge instead of from scratch.
#include <cstdio>

#include "apps/hypre_sim.hpp"
#include "core/history.hpp"
#include "core/mla.hpp"

namespace {

constexpr const char* kHistoryPath = "/tmp/gptune_hypre_history.txt";

double run_session(gptune::core::HistoryDb* db, std::size_t budget,
                   std::uint64_t seed) {
  using namespace gptune;
  apps::HypreSim hypre(apps::MachineConfig{1, 32});
  core::MlaOptions options;
  options.budget_per_task = budget;
  options.seed = seed;
  options.log_objective = true;
  options.history = db;
  core::MultitaskTuner tuner(hypre.tuning_space(), hypre.objective(),
                             options);
  auto result = tuner.run({{60, 60, 60}});
  return result.tasks[0].best();
}

}  // namespace

int main() {
  using namespace gptune;

  // --- session 1: tune from scratch, archive everything ---
  core::HistoryDb db;
  const double first_best = run_session(&db, 16, 100);
  db.save(kHistoryPath);
  std::printf("session 1: best %.4fs with %zu evaluations archived to %s\n",
              first_best, db.size(), kHistoryPath);

  // --- session 2 (fresh process in real life): reload and continue ---
  auto reloaded = core::HistoryDb::load(kHistoryPath);
  if (!reloaded) {
    std::printf("failed to reload history\n");
    return 1;
  }
  const double second_best = run_session(&*reloaded, 8, 200);
  std::printf(
      "session 2: best %.4fs spending only 8 new evaluations on top of %zu "
      "archived ones\n",
      second_best, db.size());

  // The reused run can never end up worse than the archive's best.
  const double archived_best =
      reloaded->best_for_task({60, 60, 60})->objectives[0];
  std::printf("archived best was %.4fs -> reuse %s\n", archived_best,
              second_best <= archived_best + 1e-12 ? "kept or improved it"
                                                   : "REGRESSED (bug!)");
  std::remove(kHistoryPath);
  return 0;
}
