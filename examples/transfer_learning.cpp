// Transfer Learning Autotuning (TLA): propose a configuration for a brand
// new task with ZERO evaluations, from an archive of previously tuned
// tasks.
//
// Scenario: PDGEQRF was tuned overnight on several matrix sizes and the
// results were archived. A user now needs to factor a size nobody tuned.
// TLA regresses the archived per-task optima over the task space and
// predicts a configuration immediately; we compare it against the true
// cost of a few reference choices.
#include <cstdio>

#include "apps/scalapack_sim.hpp"
#include "core/mla.hpp"
#include "core/tla.hpp"

int main() {
  using namespace gptune;

  apps::MachineConfig machine;
  machine.nodes = 16;
  apps::PdgeqrfSim qr(machine);
  core::Space tuning_space = qr.tuning_space();

  core::Space task_space;  // normalizes (m, n) for the kernel regression
  task_space.add_integer("m", 1000, 40000, /*log_scale=*/true);
  task_space.add_integer("n", 1000, 40000, /*log_scale=*/true);

  // --- "overnight": tune 4 source sizes, archive everything ---
  core::HistoryDb archive;
  core::MlaOptions options;
  options.budget_per_task = 12;
  options.seed = 77;
  options.log_objective = true;
  options.history = &archive;
  core::MultitaskTuner tuner(tuning_space, qr.objective(3), options);
  std::vector<core::TaskVector> sources = {
      {4000, 4000}, {10000, 10000}, {20000, 20000}, {36000, 36000}};
  tuner.run(sources);
  std::printf("archived %zu evaluations from %zu source tasks\n\n",
              archive.size(), sources.size());

  // --- "now": a new size appears; no budget for tuning runs ---
  const core::TaskVector new_task = {15000, 15000};
  auto transferred = core::transfer_best_config(archive, task_space,
                                                tuning_space, new_task);
  if (!transferred) {
    std::printf("transfer failed: empty archive\n");
    return 1;
  }

  const double transferred_time = qr.best_of_trials(new_task, *transferred);
  std::printf("new task %gx%g\n", new_task[0], new_task[1]);
  std::printf("  TLA transferred config: %-34s -> %7.3fs\n",
              tuning_space.format(*transferred).c_str(), transferred_time);

  // References: a generic default and the average of 50 random configs.
  const core::Config generic = {64, 256, 16};
  std::printf("  generic default:        %-34s -> %7.3fs\n",
              tuning_space.format(generic).c_str(),
              qr.best_of_trials(new_task, generic));
  common::Rng rng(1);
  double random_sum = 0.0;
  for (int i = 0; i < 50; ++i) {
    random_sum += qr.best_of_trials(new_task,
                                    tuning_space.sample_feasible(rng));
  }
  std::printf("  mean of 50 random configs:%41.3fs\n", random_sum / 50.0);
  return 0;
}
