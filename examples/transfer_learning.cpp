// Transfer Learning Autotuning (TLA): propose a configuration for a brand
// new task with ZERO evaluations, from an archive of previously tuned
// tasks.
//
// Scenario: PDGEQRF was tuned overnight on several matrix sizes and the
// results were archived. A user now needs to factor a size nobody tuned.
// TLA regresses the archived per-task optima over the task space and
// predicts a configuration immediately; we compare it against the true
// cost of a few reference choices.
#include <cstdio>

#include "apps/scalapack_sim.hpp"
#include "core/mla.hpp"
#include "core/tla.hpp"

int main() {
  using namespace gptune;

  apps::MachineConfig machine;
  machine.nodes = 16;
  apps::PdgeqrfSim qr(machine);
  core::Space tuning_space = qr.tuning_space();

  core::Space task_space;  // normalizes (m, n) for the kernel regression
  task_space.add_integer("m", 1000, 40000, /*log_scale=*/true);
  task_space.add_integer("n", 1000, 40000, /*log_scale=*/true);

  // --- "overnight": tune 4 source sizes, archive everything ---
  core::HistoryDb archive;
  core::MlaOptions options;
  options.budget_per_task = 12;
  options.seed = 77;
  options.log_objective = true;
  options.history = &archive;
  core::MultitaskTuner tuner(tuning_space, qr.objective(3), options);
  std::vector<core::TaskVector> sources = {
      {4000, 4000}, {10000, 10000}, {20000, 20000}, {36000, 36000}};
  tuner.run(sources);
  std::printf("archived %zu evaluations from %zu source tasks\n\n",
              archive.size(), sources.size());

  // --- "now": several new sizes appear; no budget for tuning runs ---
  // transfer_and_evaluate predicts one configuration per new task and runs
  // all predictions concurrently through the evaluation engine (2 objective
  // workers here), archiving the measured results for the next session.
  const std::vector<core::TaskVector> new_tasks = {
      {8000, 8000}, {15000, 15000}, {28000, 28000}};
  core::TlaEvalOptions tla_options;
  tla_options.objective_workers = 2;
  auto evaluations = core::transfer_and_evaluate(
      archive, task_space, tuning_space, new_tasks, qr.objective(3), 1,
      tla_options);

  const core::Config generic = {64, 256, 16};
  common::Rng rng(1);
  for (const auto& ev : evaluations) {
    if (!ev.config) {
      std::printf("transfer failed: empty archive\n");
      return 1;
    }
    std::printf("new task %gx%g\n", ev.task[0], ev.task[1]);
    std::printf("  TLA transferred config: %-34s -> %7.3fs\n",
                tuning_space.format(*ev.config).c_str(), ev.objectives[0]);

    // References: a generic default and the average of 20 random configs.
    std::printf("  generic default:        %-34s -> %7.3fs\n",
                tuning_space.format(generic).c_str(),
                qr.best_of_trials(ev.task, generic));
    double random_sum = 0.0;
    for (int i = 0; i < 20; ++i) {
      random_sum += qr.best_of_trials(ev.task,
                                      tuning_space.sample_feasible(rng));
    }
    std::printf("  mean of 20 random configs:%41.3fs\n\n", random_sum / 20.0);
  }
  std::printf("archive now holds %zu evaluations (the TLA runs included)\n",
              archive.size());
  return 0;
}
