// Asynchronous tuning with record/replay (DESIGN.md §3.9).
//
// The sync MLA loop is a barrier: every iteration waits for its slowest
// evaluation. With heterogeneous evaluation costs that wastes most of the
// objective workers. MlaOptions::async replaces the loop with an
// event-driven manager that keeps every worker busy — and records the
// completion delivery order so the run can be reproduced bitwise:
//
//   GPTUNE_RECORD=log.json ./async_tuning   # live run, writes the log
//   GPTUNE_REPLAY=log.json ./async_tuning   # reproduces it exactly
//
// scripts/check.sh replay runs exactly that pair and diffs the `t=` lines
// (one per evaluation, printed with full precision) bitwise. Occupancy and
// makespan are virtual-clock quantities derived from the simulated cost
// model, printed separately.
#include <cstdio>

#include "core/mla.hpp"

int main() {
  using namespace gptune;

  core::Space space;
  space.add_real("x", 0.0, 1.0);
  space.add_real("y", 0.0, 1.0);

  // Family of bowls with minimum at (t, 1 - t). The simulated runtime is
  // heavy-tailed in x — cheap configurations take 0.1 virtual seconds,
  // expensive ones up to ~10 — the regime where the async pipeline's
  // advantage over the iteration barrier is largest.
  core::MultiObjectiveFn objective = [](const core::TaskVector& t,
                                        const core::Config& c) {
    const double dx = c[0] - t[0];
    const double dy = c[1] - (1.0 - t[0]);
    return std::vector<double>{dx * dx + dy * dy + 0.01};
  };

  core::MlaOptions options;
  options.budget_per_task = 16;
  options.seed = 2021;
  options.async = true;
  options.objective_workers = 4;
  options.evaluation.virtual_cost = [](const core::TaskVector&,
                                       const core::Config& c,
                                       const std::vector<double>&) {
    const double u = c[0];
    return 0.1 + 10.0 * u * u * u * u * u * u;
  };

  core::MultitaskTuner tuner(space, objective, options);
  const std::vector<core::TaskVector> tasks = {{0.1}, {0.4}, {0.6}, {0.9}};
  core::MlaResult result = tuner.run(tasks);

  // One line per evaluation, full precision: the replay-determinism
  // contract says a replayed run reproduces every one of these bitwise.
  for (std::size_t i = 0; i < result.tasks.size(); ++i) {
    const auto& evals = result.tasks[i].evals;
    for (std::size_t j = 0; j < evals.size(); ++j) {
      std::printf("t=%zu eval=%zu x=%.17g y=%.17g f=%.17g\n", i, j,
                  evals[j].config[0], evals[j].config[1],
                  evals[j].objectives[0]);
    }
  }

  std::printf("completions: %zu over %zu workers\n", result.evaluations,
              options.objective_workers);
  std::printf("virtual makespan: %.3f s, occupancy %.1f%%\n",
              result.async_virtual_makespan,
              100.0 * result.worker_occupancy);
  return 0;
}
