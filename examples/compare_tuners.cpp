// Driving multiple autotuners through one interface (paper §6.1: "our
// interface allows the user to invoke them as well").
//
// Runs GPTune (single-task adapter), OpenTuner-lite, and HpBandSter-lite
// on the same SuperLU_DIST task with the same budget and prints the
// best-so-far trajectories — the anytime-performance view of paper §6.6.
#include <cstdio>
#include <memory>
#include <vector>

#include "apps/superlu_sim.hpp"
#include "baselines/hpbandster_lite.hpp"
#include "baselines/opentuner_lite.hpp"
#include "baselines/single_task_gptune.hpp"
#include "baselines/ytopt_lite.hpp"

int main() {
  using namespace gptune;

  apps::SuperluSim superlu(apps::MachineConfig{8, 32});
  const core::Space space = superlu.tuning_space();
  const auto objective = superlu.objective_time();
  const core::TaskVector task = {
      static_cast<double>(apps::SuperluSim::matrix_index("Si10H16"))};
  constexpr std::size_t kBudget = 20;

  core::MlaOptions gptune_options;
  gptune_options.log_objective = true;
  std::vector<std::unique_ptr<baselines::SingleTaskTuner>> tuners;
  tuners.push_back(
      std::make_unique<baselines::SingleTaskGpTune>(gptune_options));
  tuners.push_back(std::make_unique<baselines::OpenTunerLite>());
  tuners.push_back(std::make_unique<baselines::HpBandSterLite>());
  tuners.push_back(std::make_unique<baselines::YtoptLite>());

  std::vector<std::vector<double>> curves;
  std::printf("tuning SuperLU_DIST factorization of Si10H16, budget %zu\n\n",
              kBudget);
  for (auto& tuner : tuners) {
    auto history = tuner->tune(task, space, objective, kBudget, 42);
    curves.push_back(history.best_so_far());
    std::printf("%-12s best %.4fs  config: %s\n", tuner->name().c_str(),
                history.best(),
                space.format(history.best_config()).c_str());
  }

  std::printf("\nbest-so-far after each evaluation:\n%6s", "eval");
  for (auto& tuner : tuners) std::printf(" %12s", tuner->name().c_str());
  std::printf("\n");
  for (std::size_t e = 0; e < kBudget; ++e) {
    std::printf("%6zu", e + 1);
    for (const auto& curve : curves) std::printf(" %12.4f", curve[e]);
    std::printf("\n");
  }
  return 0;
}
