// Tuning ScaLAPACK PDGEQRF with a coarse performance model (paper §3.3).
//
// Demonstrates:
//   * a constrained mixed integer space (block size, MPI count, grid rows
//     with p_r <= p),
//   * multitask learning over several matrix shapes,
//   * attaching the Eq. (7) performance model whose t_flop/t_msg/t_vol
//     coefficients are refit by NNLS during the run,
//   * the log-objective transform recommended for runtimes.
#include <cstdio>

#include "apps/scalapack_sim.hpp"
#include "core/mla.hpp"

int main() {
  using namespace gptune;

  // Simulated 64-node machine (2048 cores), like the paper's Fig. 5 setup.
  apps::MachineConfig machine;
  machine.nodes = 64;
  apps::PdgeqrfSim qr(machine);

  core::Space space = qr.tuning_space();  // b, p, p_r with p_r <= p

  // The analytic performance model of paper Eqs. (7)-(10). Its coefficients
  // start at textbook values and are refit from observations every
  // iteration (the "update phase" of §3.3).
  core::LinearCombinationModel model = qr.make_performance_model();

  core::MlaOptions options;
  options.budget_per_task = 12;
  options.seed = 7;
  options.log_objective = true;      // runtimes: model log(y)
  options.performance_model = &model;

  core::MultitaskTuner tuner(space, qr.objective(/*trials=*/3), options);

  // Five matrix shapes tuned jointly.
  std::vector<core::TaskVector> tasks = {
      {20000, 20000}, {30000, 10000}, {10000, 30000},
      {15000, 15000}, {25000, 5000}};
  core::MlaResult result = tuner.run(tasks);

  std::printf("%-16s %-32s %10s %12s\n", "task (m x n)",
              "best configuration", "runtime", "TFLOP/s");
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto best = result.tasks[i].best_config();
    const double seconds = result.tasks[i].best();
    const double tflops =
        apps::PdgeqrfSim::qr_flops(tasks[i][0], tasks[i][1]) / seconds / 1e12;
    std::printf("%6.0f x %-6.0f  %-32s %9.3fs %11.2f\n", tasks[i][0],
                tasks[i][1], space.format(best).c_str(), seconds, tflops);
  }

  std::printf("\nfitted performance-model coefficients:"
              " t_flop=%.3e t_msg=%.3e t_vol=%.3e\n",
              model.coefficients()[0], model.coefficients()[1],
              model.coefficients()[2]);
  return 0;
}
