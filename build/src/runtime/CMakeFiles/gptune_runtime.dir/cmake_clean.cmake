file(REMOVE_RECURSE
  "CMakeFiles/gptune_runtime.dir/comm.cpp.o"
  "CMakeFiles/gptune_runtime.dir/comm.cpp.o.d"
  "CMakeFiles/gptune_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/gptune_runtime.dir/thread_pool.cpp.o.d"
  "CMakeFiles/gptune_runtime.dir/virtual_clock.cpp.o"
  "CMakeFiles/gptune_runtime.dir/virtual_clock.cpp.o.d"
  "libgptune_runtime.a"
  "libgptune_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptune_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
