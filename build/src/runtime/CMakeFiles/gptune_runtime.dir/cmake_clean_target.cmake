file(REMOVE_RECURSE
  "libgptune_runtime.a"
)
