# Empty dependencies file for gptune_runtime.
# This may be replaced when dependencies are built.
