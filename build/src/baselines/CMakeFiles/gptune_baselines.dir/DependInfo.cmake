
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/hpbandster_lite.cpp" "src/baselines/CMakeFiles/gptune_baselines.dir/hpbandster_lite.cpp.o" "gcc" "src/baselines/CMakeFiles/gptune_baselines.dir/hpbandster_lite.cpp.o.d"
  "/root/repo/src/baselines/opentuner_lite.cpp" "src/baselines/CMakeFiles/gptune_baselines.dir/opentuner_lite.cpp.o" "gcc" "src/baselines/CMakeFiles/gptune_baselines.dir/opentuner_lite.cpp.o.d"
  "/root/repo/src/baselines/single_task_gptune.cpp" "src/baselines/CMakeFiles/gptune_baselines.dir/single_task_gptune.cpp.o" "gcc" "src/baselines/CMakeFiles/gptune_baselines.dir/single_task_gptune.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gptune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gptune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/gptune_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/gptune_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gptune_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gptune_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
