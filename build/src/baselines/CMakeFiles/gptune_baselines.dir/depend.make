# Empty dependencies file for gptune_baselines.
# This may be replaced when dependencies are built.
