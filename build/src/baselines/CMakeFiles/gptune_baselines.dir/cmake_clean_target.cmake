file(REMOVE_RECURSE
  "libgptune_baselines.a"
)
