file(REMOVE_RECURSE
  "CMakeFiles/gptune_baselines.dir/hpbandster_lite.cpp.o"
  "CMakeFiles/gptune_baselines.dir/hpbandster_lite.cpp.o.d"
  "CMakeFiles/gptune_baselines.dir/opentuner_lite.cpp.o"
  "CMakeFiles/gptune_baselines.dir/opentuner_lite.cpp.o.d"
  "CMakeFiles/gptune_baselines.dir/single_task_gptune.cpp.o"
  "CMakeFiles/gptune_baselines.dir/single_task_gptune.cpp.o.d"
  "libgptune_baselines.a"
  "libgptune_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptune_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
