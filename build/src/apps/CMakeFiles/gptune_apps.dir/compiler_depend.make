# Empty compiler generated dependencies file for gptune_apps.
# This may be replaced when dependencies are built.
