file(REMOVE_RECURSE
  "libgptune_apps.a"
)
