file(REMOVE_RECURSE
  "CMakeFiles/gptune_apps.dir/analytical.cpp.o"
  "CMakeFiles/gptune_apps.dir/analytical.cpp.o.d"
  "CMakeFiles/gptune_apps.dir/hypre_sim.cpp.o"
  "CMakeFiles/gptune_apps.dir/hypre_sim.cpp.o.d"
  "CMakeFiles/gptune_apps.dir/mhd_sim.cpp.o"
  "CMakeFiles/gptune_apps.dir/mhd_sim.cpp.o.d"
  "CMakeFiles/gptune_apps.dir/scalapack_sim.cpp.o"
  "CMakeFiles/gptune_apps.dir/scalapack_sim.cpp.o.d"
  "CMakeFiles/gptune_apps.dir/superlu_sim.cpp.o"
  "CMakeFiles/gptune_apps.dir/superlu_sim.cpp.o.d"
  "libgptune_apps.a"
  "libgptune_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptune_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
