file(REMOVE_RECURSE
  "CMakeFiles/gptune_gp.dir/gp_regression.cpp.o"
  "CMakeFiles/gptune_gp.dir/gp_regression.cpp.o.d"
  "CMakeFiles/gptune_gp.dir/kernel.cpp.o"
  "CMakeFiles/gptune_gp.dir/kernel.cpp.o.d"
  "CMakeFiles/gptune_gp.dir/lcm.cpp.o"
  "CMakeFiles/gptune_gp.dir/lcm.cpp.o.d"
  "CMakeFiles/gptune_gp.dir/trainer.cpp.o"
  "CMakeFiles/gptune_gp.dir/trainer.cpp.o.d"
  "libgptune_gp.a"
  "libgptune_gp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptune_gp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
