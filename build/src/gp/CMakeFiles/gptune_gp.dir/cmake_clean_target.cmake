file(REMOVE_RECURSE
  "libgptune_gp.a"
)
