# Empty dependencies file for gptune_gp.
# This may be replaced when dependencies are built.
