# Empty dependencies file for gptune_opt.
# This may be replaced when dependencies are built.
