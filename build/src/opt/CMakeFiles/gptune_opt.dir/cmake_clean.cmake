file(REMOVE_RECURSE
  "CMakeFiles/gptune_opt.dir/cmaes.cpp.o"
  "CMakeFiles/gptune_opt.dir/cmaes.cpp.o.d"
  "CMakeFiles/gptune_opt.dir/differential_evolution.cpp.o"
  "CMakeFiles/gptune_opt.dir/differential_evolution.cpp.o.d"
  "CMakeFiles/gptune_opt.dir/direct_search.cpp.o"
  "CMakeFiles/gptune_opt.dir/direct_search.cpp.o.d"
  "CMakeFiles/gptune_opt.dir/genetic.cpp.o"
  "CMakeFiles/gptune_opt.dir/genetic.cpp.o.d"
  "CMakeFiles/gptune_opt.dir/lbfgs.cpp.o"
  "CMakeFiles/gptune_opt.dir/lbfgs.cpp.o.d"
  "CMakeFiles/gptune_opt.dir/nelder_mead.cpp.o"
  "CMakeFiles/gptune_opt.dir/nelder_mead.cpp.o.d"
  "CMakeFiles/gptune_opt.dir/nsga2.cpp.o"
  "CMakeFiles/gptune_opt.dir/nsga2.cpp.o.d"
  "CMakeFiles/gptune_opt.dir/pso.cpp.o"
  "CMakeFiles/gptune_opt.dir/pso.cpp.o.d"
  "CMakeFiles/gptune_opt.dir/simulated_annealing.cpp.o"
  "CMakeFiles/gptune_opt.dir/simulated_annealing.cpp.o.d"
  "libgptune_opt.a"
  "libgptune_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptune_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
