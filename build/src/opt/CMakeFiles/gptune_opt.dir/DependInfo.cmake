
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cmaes.cpp" "src/opt/CMakeFiles/gptune_opt.dir/cmaes.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/cmaes.cpp.o.d"
  "/root/repo/src/opt/differential_evolution.cpp" "src/opt/CMakeFiles/gptune_opt.dir/differential_evolution.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/differential_evolution.cpp.o.d"
  "/root/repo/src/opt/direct_search.cpp" "src/opt/CMakeFiles/gptune_opt.dir/direct_search.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/direct_search.cpp.o.d"
  "/root/repo/src/opt/genetic.cpp" "src/opt/CMakeFiles/gptune_opt.dir/genetic.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/genetic.cpp.o.d"
  "/root/repo/src/opt/lbfgs.cpp" "src/opt/CMakeFiles/gptune_opt.dir/lbfgs.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/lbfgs.cpp.o.d"
  "/root/repo/src/opt/nelder_mead.cpp" "src/opt/CMakeFiles/gptune_opt.dir/nelder_mead.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/nelder_mead.cpp.o.d"
  "/root/repo/src/opt/nsga2.cpp" "src/opt/CMakeFiles/gptune_opt.dir/nsga2.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/nsga2.cpp.o.d"
  "/root/repo/src/opt/pso.cpp" "src/opt/CMakeFiles/gptune_opt.dir/pso.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/pso.cpp.o.d"
  "/root/repo/src/opt/simulated_annealing.cpp" "src/opt/CMakeFiles/gptune_opt.dir/simulated_annealing.cpp.o" "gcc" "src/opt/CMakeFiles/gptune_opt.dir/simulated_annealing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gptune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gptune_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
