file(REMOVE_RECURSE
  "libgptune_opt.a"
)
