file(REMOVE_RECURSE
  "libgptune_linalg.a"
)
