# Empty dependencies file for gptune_linalg.
# This may be replaced when dependencies are built.
