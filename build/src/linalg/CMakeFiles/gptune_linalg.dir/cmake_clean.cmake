file(REMOVE_RECURSE
  "CMakeFiles/gptune_linalg.dir/blocked_cholesky.cpp.o"
  "CMakeFiles/gptune_linalg.dir/blocked_cholesky.cpp.o.d"
  "CMakeFiles/gptune_linalg.dir/cholesky.cpp.o"
  "CMakeFiles/gptune_linalg.dir/cholesky.cpp.o.d"
  "CMakeFiles/gptune_linalg.dir/eigen_sym.cpp.o"
  "CMakeFiles/gptune_linalg.dir/eigen_sym.cpp.o.d"
  "CMakeFiles/gptune_linalg.dir/lu.cpp.o"
  "CMakeFiles/gptune_linalg.dir/lu.cpp.o.d"
  "CMakeFiles/gptune_linalg.dir/matrix.cpp.o"
  "CMakeFiles/gptune_linalg.dir/matrix.cpp.o.d"
  "CMakeFiles/gptune_linalg.dir/qr.cpp.o"
  "CMakeFiles/gptune_linalg.dir/qr.cpp.o.d"
  "libgptune_linalg.a"
  "libgptune_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptune_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
