file(REMOVE_RECURSE
  "CMakeFiles/gptune_common.dir/log.cpp.o"
  "CMakeFiles/gptune_common.dir/log.cpp.o.d"
  "CMakeFiles/gptune_common.dir/rng.cpp.o"
  "CMakeFiles/gptune_common.dir/rng.cpp.o.d"
  "CMakeFiles/gptune_common.dir/stats.cpp.o"
  "CMakeFiles/gptune_common.dir/stats.cpp.o.d"
  "libgptune_common.a"
  "libgptune_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptune_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
