file(REMOVE_RECURSE
  "libgptune_common.a"
)
