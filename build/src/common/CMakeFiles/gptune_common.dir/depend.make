# Empty dependencies file for gptune_common.
# This may be replaced when dependencies are built.
