file(REMOVE_RECURSE
  "libgptune_core.a"
)
