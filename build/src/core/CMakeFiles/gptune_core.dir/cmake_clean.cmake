file(REMOVE_RECURSE
  "CMakeFiles/gptune_core.dir/acquisition.cpp.o"
  "CMakeFiles/gptune_core.dir/acquisition.cpp.o.d"
  "CMakeFiles/gptune_core.dir/history.cpp.o"
  "CMakeFiles/gptune_core.dir/history.cpp.o.d"
  "CMakeFiles/gptune_core.dir/metrics.cpp.o"
  "CMakeFiles/gptune_core.dir/metrics.cpp.o.d"
  "CMakeFiles/gptune_core.dir/mla.cpp.o"
  "CMakeFiles/gptune_core.dir/mla.cpp.o.d"
  "CMakeFiles/gptune_core.dir/perf_model.cpp.o"
  "CMakeFiles/gptune_core.dir/perf_model.cpp.o.d"
  "CMakeFiles/gptune_core.dir/sampler.cpp.o"
  "CMakeFiles/gptune_core.dir/sampler.cpp.o.d"
  "CMakeFiles/gptune_core.dir/space.cpp.o"
  "CMakeFiles/gptune_core.dir/space.cpp.o.d"
  "CMakeFiles/gptune_core.dir/tla.cpp.o"
  "CMakeFiles/gptune_core.dir/tla.cpp.o.d"
  "libgptune_core.a"
  "libgptune_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gptune_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
