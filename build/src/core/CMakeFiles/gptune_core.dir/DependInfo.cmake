
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/acquisition.cpp" "src/core/CMakeFiles/gptune_core.dir/acquisition.cpp.o" "gcc" "src/core/CMakeFiles/gptune_core.dir/acquisition.cpp.o.d"
  "/root/repo/src/core/history.cpp" "src/core/CMakeFiles/gptune_core.dir/history.cpp.o" "gcc" "src/core/CMakeFiles/gptune_core.dir/history.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/core/CMakeFiles/gptune_core.dir/metrics.cpp.o" "gcc" "src/core/CMakeFiles/gptune_core.dir/metrics.cpp.o.d"
  "/root/repo/src/core/mla.cpp" "src/core/CMakeFiles/gptune_core.dir/mla.cpp.o" "gcc" "src/core/CMakeFiles/gptune_core.dir/mla.cpp.o.d"
  "/root/repo/src/core/perf_model.cpp" "src/core/CMakeFiles/gptune_core.dir/perf_model.cpp.o" "gcc" "src/core/CMakeFiles/gptune_core.dir/perf_model.cpp.o.d"
  "/root/repo/src/core/sampler.cpp" "src/core/CMakeFiles/gptune_core.dir/sampler.cpp.o" "gcc" "src/core/CMakeFiles/gptune_core.dir/sampler.cpp.o.d"
  "/root/repo/src/core/space.cpp" "src/core/CMakeFiles/gptune_core.dir/space.cpp.o" "gcc" "src/core/CMakeFiles/gptune_core.dir/space.cpp.o.d"
  "/root/repo/src/core/tla.cpp" "src/core/CMakeFiles/gptune_core.dir/tla.cpp.o" "gcc" "src/core/CMakeFiles/gptune_core.dir/tla.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gptune_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gptune_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/gptune_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/gp/CMakeFiles/gptune_gp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/gptune_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
