# Empty compiler generated dependencies file for gptune_core.
# This may be replaced when dependencies are built.
