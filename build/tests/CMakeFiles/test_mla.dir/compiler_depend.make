# Empty compiler generated dependencies file for test_mla.
# This may be replaced when dependencies are built.
