file(REMOVE_RECURSE
  "CMakeFiles/test_mla.dir/test_mla.cpp.o"
  "CMakeFiles/test_mla.dir/test_mla.cpp.o.d"
  "test_mla"
  "test_mla.pdb"
  "test_mla[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mla.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
