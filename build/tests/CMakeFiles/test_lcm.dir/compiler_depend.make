# Empty compiler generated dependencies file for test_lcm.
# This may be replaced when dependencies are built.
