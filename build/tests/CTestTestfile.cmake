# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_linalg[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_opt[1]_include.cmake")
include("/root/repo/build/tests/test_nsga2[1]_include.cmake")
include("/root/repo/build/tests/test_gp[1]_include.cmake")
include("/root/repo/build/tests/test_lcm[1]_include.cmake")
include("/root/repo/build/tests/test_space[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_mla[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
