file(REMOVE_RECURSE
  "CMakeFiles/superlu_multiobjective.dir/superlu_multiobjective.cpp.o"
  "CMakeFiles/superlu_multiobjective.dir/superlu_multiobjective.cpp.o.d"
  "superlu_multiobjective"
  "superlu_multiobjective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/superlu_multiobjective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
