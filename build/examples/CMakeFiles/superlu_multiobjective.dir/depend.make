# Empty dependencies file for superlu_multiobjective.
# This may be replaced when dependencies are built.
