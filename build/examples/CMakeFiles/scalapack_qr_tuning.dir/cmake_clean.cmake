file(REMOVE_RECURSE
  "CMakeFiles/scalapack_qr_tuning.dir/scalapack_qr_tuning.cpp.o"
  "CMakeFiles/scalapack_qr_tuning.dir/scalapack_qr_tuning.cpp.o.d"
  "scalapack_qr_tuning"
  "scalapack_qr_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scalapack_qr_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
