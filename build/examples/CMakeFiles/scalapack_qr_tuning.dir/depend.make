# Empty dependencies file for scalapack_qr_tuning.
# This may be replaced when dependencies are built.
