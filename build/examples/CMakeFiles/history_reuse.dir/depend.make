# Empty dependencies file for history_reuse.
# This may be replaced when dependencies are built.
