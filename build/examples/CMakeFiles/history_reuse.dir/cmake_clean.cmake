file(REMOVE_RECURSE
  "CMakeFiles/history_reuse.dir/history_reuse.cpp.o"
  "CMakeFiles/history_reuse.dir/history_reuse.cpp.o.d"
  "history_reuse"
  "history_reuse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_reuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
