file(REMOVE_RECURSE
  "CMakeFiles/tab4_hypre.dir/tab4_hypre.cpp.o"
  "CMakeFiles/tab4_hypre.dir/tab4_hypre.cpp.o.d"
  "tab4_hypre"
  "tab4_hypre.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab4_hypre.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
