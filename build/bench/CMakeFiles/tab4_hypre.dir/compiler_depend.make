# Empty compiler generated dependencies file for tab4_hypre.
# This may be replaced when dependencies are built.
