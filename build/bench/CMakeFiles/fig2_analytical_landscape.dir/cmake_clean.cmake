file(REMOVE_RECURSE
  "CMakeFiles/fig2_analytical_landscape.dir/fig2_analytical_landscape.cpp.o"
  "CMakeFiles/fig2_analytical_landscape.dir/fig2_analytical_landscape.cpp.o.d"
  "fig2_analytical_landscape"
  "fig2_analytical_landscape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_analytical_landscape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
