# Empty dependencies file for fig2_analytical_landscape.
# This may be replaced when dependencies are built.
