file(REMOVE_RECURSE
  "CMakeFiles/ablation_lcm.dir/ablation_lcm.cpp.o"
  "CMakeFiles/ablation_lcm.dir/ablation_lcm.cpp.o.d"
  "ablation_lcm"
  "ablation_lcm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lcm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
