# Empty compiler generated dependencies file for ablation_lcm.
# This may be replaced when dependencies are built.
