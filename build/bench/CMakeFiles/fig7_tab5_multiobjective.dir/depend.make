# Empty dependencies file for fig7_tab5_multiobjective.
# This may be replaced when dependencies are built.
