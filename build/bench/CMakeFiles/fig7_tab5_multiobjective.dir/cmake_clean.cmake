file(REMOVE_RECURSE
  "CMakeFiles/fig7_tab5_multiobjective.dir/fig7_tab5_multiobjective.cpp.o"
  "CMakeFiles/fig7_tab5_multiobjective.dir/fig7_tab5_multiobjective.cpp.o.d"
  "fig7_tab5_multiobjective"
  "fig7_tab5_multiobjective.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_tab5_multiobjective.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
