# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fig7_tab5_multiobjective.
