file(REMOVE_RECURSE
  "CMakeFiles/tab3_fig5_multitask.dir/tab3_fig5_multitask.cpp.o"
  "CMakeFiles/tab3_fig5_multitask.dir/tab3_fig5_multitask.cpp.o.d"
  "tab3_fig5_multitask"
  "tab3_fig5_multitask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab3_fig5_multitask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
