# Empty dependencies file for tab3_fig5_multitask.
# This may be replaced when dependencies are built.
