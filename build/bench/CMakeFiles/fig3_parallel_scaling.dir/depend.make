# Empty dependencies file for fig3_parallel_scaling.
# This may be replaced when dependencies are built.
