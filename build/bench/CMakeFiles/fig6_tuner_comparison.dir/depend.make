# Empty dependencies file for fig6_tuner_comparison.
# This may be replaced when dependencies are built.
