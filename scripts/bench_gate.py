#!/usr/bin/env python3
"""Bench regression gate: compare fresh BENCH_*.json runs against the
baselines committed at the repo root.

Each bench binary emits a JSON array of
``{"metric": ..., "value": ..., "workers": ..., "seed": ...}`` records
(bench/bench_util.hpp).  The gate compares only *ratio* metrics — names
containing ``speedup`` or ``occupancy`` — because those are stable across
hosts, unlike raw seconds.  Rows are matched on (metric, workers, seed);
a fresh value below ``baseline * tolerance`` fails the gate.

Usage:
  bench_gate.py --current DIR [--baseline DIR] [--tolerance 0.5] [--update]

--baseline defaults to the repo root (the committed baselines).
--update copies the current files over the baselines instead of comparing
(run it after a deliberate perf or trajectory change, then commit).

Stdlib only; exit 0 = gate passed, 1 = regression/missing data, 2 = usage.
"""

import argparse
import json
import os
import re
import shutil
import sys

GATED_METRIC = re.compile(r"speedup|occupancy")


def load_rows(path):
    """Returns {(metric, workers, seed): value} for one BENCH_*.json."""
    with open(path) as f:
        rows = json.load(f)
    out = {}
    for r in rows:
        out[(r["metric"], r["workers"], r["seed"])] = r["value"]
    return out


def compare_file(name, baseline_path, current_path, tolerance):
    """Returns a list of failure strings (empty = this file passes)."""
    base = load_rows(baseline_path)
    cur = load_rows(current_path)
    failures = []
    gated = 0
    for key, old in sorted(base.items()):
        metric, workers, seed = key
        if not GATED_METRIC.search(metric):
            continue
        gated += 1
        if key not in cur:
            failures.append(
                f"{name}: {metric} (workers={workers}, seed={seed}) "
                "missing from the fresh run")
            continue
        new = cur[key]
        floor = old * tolerance
        status = "ok" if new >= floor else "REGRESSION"
        print(f"  {name}: {metric:40s} workers={workers:<3d} "
              f"baseline={old:8.3f} current={new:8.3f} floor={floor:8.3f} "
              f"[{status}]")
        if new < floor:
            failures.append(
                f"{name}: {metric} (workers={workers}) regressed: "
                f"{new:.3f} < {old:.3f} * {tolerance}")
    for key in sorted(set(cur) - set(base)):
        if GATED_METRIC.search(key[0]):
            print(f"  {name}: note: new metric {key[0]} (workers={key[1]}) "
                  "not in baseline — run with --update to adopt it")
    if gated == 0:
        print(f"  {name}: no gated metrics in baseline")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True,
                        help="directory holding freshly generated BENCH_*.json")
    parser.add_argument("--baseline",
                        default=os.path.join(os.path.dirname(__file__), ".."),
                        help="directory holding committed baselines "
                             "(default: repo root)")
    parser.add_argument("--tolerance", type=float, default=0.5,
                        help="fresh value must be >= baseline * tolerance "
                             "(default 0.5 — a generous band; ratios jitter "
                             "with host load but halving is a regression)")
    parser.add_argument("--update", action="store_true",
                        help="copy current files over the baselines instead "
                             "of comparing")
    args = parser.parse_args()

    current_files = sorted(
        f for f in os.listdir(args.current)
        if f.startswith("BENCH_") and f.endswith(".json"))
    if not current_files:
        print(f"bench_gate: no BENCH_*.json in {args.current}",
              file=sys.stderr)
        return 1

    if args.update:
        for f in current_files:
            src = os.path.join(args.current, f)
            dst = os.path.join(args.baseline, f)
            shutil.copyfile(src, dst)
            print(f"bench_gate: updated baseline {dst}")
        return 0

    failures = []
    for f in current_files:
        baseline_path = os.path.join(args.baseline, f)
        if not os.path.exists(baseline_path):
            failures.append(
                f"{f}: no committed baseline at {baseline_path} "
                "(run bench_gate.py --update and commit the result)")
            continue
        failures.extend(
            compare_file(f, baseline_path, os.path.join(args.current, f),
                         args.tolerance))

    if failures:
        print("\nbench_gate: FAILED", file=sys.stderr)
        for msg in failures:
            print(f"  {msg}", file=sys.stderr)
        return 1
    print(f"\nbench_gate: ok ({len(current_files)} file(s) within tolerance "
          f"{args.tolerance})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
