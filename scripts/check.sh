#!/usr/bin/env bash
# Tier-1 gate in three mutually exclusive lanes:
#   asan  — ASan+UBSan build tree (build-asan/): memory errors, UB
#   tsan  — ThreadSanitizer build tree (build-tsan/): data races in the
#           spawned worker groups (objective workers, model pool, and the
#           persistent search group exercised by test_search_workers) and
#           the mutex-guarded HistoryDb
#   lint  — rtcheck build tree (build-rtcheck/): tier-1 under the runtime
#           protocol checker (GPTUNE_RTCHECK=ON — deadlock/collective/leak
#           diagnostics, including the persistent-group lifecycle audits in
#           test_rtcheck and test_search_workers), then a clean gptune_lint
#           run over src/, tests/ and tools/ (determinism bans; DESIGN.md
#           §3.6)
#   trace — plain build tree (build-trace/) with examples: runs quickstart
#           untraced and with GPTUNE_TRACE+GPTUNE_METRICS, validates the
#           emitted trace with trace_summarize, and asserts the tuning
#           results are identical — telemetry is observe-only (§3.7)
#   replay — plain build tree (build-trace/, shared with the trace lane):
#           runs the async_tuning example once under GPTUNE_RECORD and once
#           under GPTUNE_REPLAY of the recorded completion log, and asserts
#           the two trajectories are bitwise identical — the async
#           pipeline's replay-determinism contract (§3.9)
#   bench — bench build tree (build-bench/): runs the fast bench axes
#           (bench_incremental_refit; GPTUNE_BENCH_FULL=1 adds
#           fig3_parallel_scaling) and gates their speedup/occupancy
#           metrics against the committed BENCH_*.json baselines via
#           scripts/bench_gate.py (0.5 tolerance band). After a deliberate
#           perf or trajectory change: bench_gate.py --update, commit.
# Every lane builds with GPTUNE_WERROR=ON (-Wall -Wextra -Wshadow -Werror).
# Each lane uses a dedicated build dir, separate from the plain ./build, so
# the trees never contaminate each other. Benches and examples are skipped
# outside the trace and bench lanes — the slow label has its own lane
# (`ctest -L slow` in a regular build).
#
# Usage: scripts/check.sh [LANE|all] [build-dir]
#   default lane: asan
#   (default dirs: build-asan, build-tsan, build-rtcheck, build-trace,
#    build-bench)
set -euo pipefail

cd "$(dirname "$0")/.."
LANE="${1:-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# The one list every usage/error message derives from.
LANES="asan tsan lint trace replay bench"
LANES_HELP="$(echo "${LANES}" | tr ' ' '|')|all"

run_lane() {
  local lane="$1" build_dir="$2"
  local sanitize=OFF tsan=OFF rtcheck=OFF
  case "${lane}" in
    asan) sanitize=ON ;;
    tsan) tsan=ON ;;
    lint) rtcheck=ON ;;
    *) echo "unknown lane '${lane}' (want ${LANES_HELP})" >&2; exit 2 ;;
  esac

  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_SANITIZE="${sanitize}" \
    -DGPTUNE_TSAN="${tsan}" \
    -DGPTUNE_RTCHECK="${rtcheck}" \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=OFF
  cmake --build "${build_dir}" -j "${JOBS}"

  # halt_on_error keeps a sanitizer hit from scrolling past as a warning.
  UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ASAN_OPTIONS="detect_leaks=1" \
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "${JOBS}"

  if [ "${lane}" = lint ]; then
    # The tree must be lint-clean (suppressions are deliberate, annotated).
    "${build_dir}/tools/gptune_lint/gptune_lint" src tests tools
  fi
}

# Trace smoke: the same quickstart run with and without telemetry must land
# on identical tuning results (only the `t=` result rows are compared —
# phase-time lines are host wall-clock), and the emitted trace must be a
# valid Chrome trace_event file by trace_summarize's reader.
run_trace_lane() {
  local build_dir="$1"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=ON
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target quickstart trace_summarize

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  "${build_dir}/examples/quickstart" > "${tmp}/plain.out"
  GPTUNE_TRACE="${tmp}/trace.json" GPTUNE_METRICS="${tmp}/metrics.json" \
    "${build_dir}/examples/quickstart" > "${tmp}/traced.out"

  [ -s "${tmp}/trace.json" ] || { echo "trace lane: no trace written" >&2; exit 1; }
  [ -s "${tmp}/metrics.json" ] || { echo "trace lane: no metrics written" >&2; exit 1; }
  "${build_dir}/tools/trace_summarize/trace_summarize" "${tmp}/trace.json"

  grep '^t=' "${tmp}/plain.out" > "${tmp}/plain.results"
  grep '^t=' "${tmp}/traced.out" > "${tmp}/traced.results"
  [ -s "${tmp}/plain.results" ] || { echo "trace lane: quickstart printed no results" >&2; exit 1; }
  if ! diff -u "${tmp}/plain.results" "${tmp}/traced.results"; then
    echo "trace lane: tracing perturbed the tuning results" >&2
    exit 1
  fi
  echo "trace lane: results identical with telemetry on/off"
}

# Replay smoke: record a live async_tuning run's completion log, replay it,
# and require the bitwise-identical trajectory the §3.9 contract promises.
# Shares the trace lane's plain build tree (same cmake cache flags).
run_replay_lane() {
  local build_dir="$1"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=ON
  cmake --build "${build_dir}" -j "${JOBS}" --target async_tuning

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  GPTUNE_RECORD="${tmp}/completions.json" \
    "${build_dir}/examples/async_tuning" > "${tmp}/recorded.out"
  [ -s "${tmp}/completions.json" ] || { echo "replay lane: no completion log written" >&2; exit 1; }
  GPTUNE_REPLAY="${tmp}/completions.json" \
    "${build_dir}/examples/async_tuning" > "${tmp}/replayed.out"

  grep '^t=' "${tmp}/recorded.out" > "${tmp}/recorded.results"
  grep '^t=' "${tmp}/replayed.out" > "${tmp}/replayed.results"
  [ -s "${tmp}/recorded.results" ] || { echo "replay lane: async_tuning printed no results" >&2; exit 1; }
  if ! diff -u "${tmp}/recorded.results" "${tmp}/replayed.results"; then
    echo "replay lane: replay diverged from the recorded run" >&2
    exit 1
  fi
  echo "replay lane: replayed trajectory bitwise identical ($(wc -l < "${tmp}/recorded.results") evaluations)"
}

# Bench-regression gate: run the fast bench axes in a scratch CWD and
# compare the speedup/occupancy metrics they emit against the committed
# BENCH_*.json baselines (scripts/bench_gate.py).
run_bench_lane() {
  local build_dir="$1"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_BUILD_BENCH=ON \
    -DGPTUNE_BUILD_EXAMPLES=OFF
  local targets=(bench_incremental_refit)
  if [ "${GPTUNE_BENCH_FULL:-0}" = 1 ]; then
    targets+=(fig3_parallel_scaling)
  fi
  cmake --build "${build_dir}" -j "${JOBS}" --target "${targets[@]}"

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  local t
  for t in "${targets[@]}"; do
    # BenchJson writes into the CWD; keep the fresh files out of the tree.
    (cd "${tmp}" && "${OLDPWD}/${build_dir}/bench/${t}")
  done
  python3 scripts/bench_gate.py --current "${tmp}"
}

case "${LANE}" in
  all)
    run_lane asan "${2:-build-asan}"
    run_lane tsan "${2:-build-tsan}"
    run_lane lint "${2:-build-rtcheck}"
    run_trace_lane "${2:-build-trace}"
    run_replay_lane "${2:-build-trace}"
    run_bench_lane "${2:-build-bench}"
    ;;
  asan)
    run_lane asan "${2:-build-asan}"
    ;;
  tsan)
    run_lane tsan "${2:-build-tsan}"
    ;;
  lint)
    run_lane lint "${2:-build-rtcheck}"
    ;;
  trace)
    run_trace_lane "${2:-build-trace}"
    ;;
  replay)
    run_replay_lane "${2:-build-trace}"
    ;;
  bench)
    run_bench_lane "${2:-build-bench}"
    ;;
  *)
    echo "usage: scripts/check.sh [${LANES_HELP}] [build-dir]" >&2
    exit 2
    ;;
esac
