#!/usr/bin/env bash
# Tier-1 gate in three mutually exclusive lanes:
#   asan  — ASan+UBSan build tree (build-asan/): memory errors, UB
#   tsan  — ThreadSanitizer build tree (build-tsan/): data races in the
#           spawned worker groups (objective workers, model pool, and the
#           persistent search group exercised by test_search_workers) and
#           the mutex-guarded HistoryDb
#   lint  — rtcheck build tree (build-rtcheck/): tier-1 under the runtime
#           protocol checker (GPTUNE_RTCHECK=ON — deadlock/collective/leak
#           diagnostics, including the persistent-group lifecycle audits in
#           test_rtcheck and test_search_workers), then a clean gptune_lint
#           run over src/, tests/ and tools/ (determinism bans; DESIGN.md
#           §3.6)
#   trace — plain build tree (build-trace/) with examples: runs quickstart
#           untraced and with GPTUNE_TRACE+GPTUNE_METRICS, validates the
#           emitted trace with trace_summarize, and asserts the tuning
#           results are identical — telemetry is observe-only (§3.7)
#   replay — plain build tree (build-trace/, shared with the trace lane):
#           runs the async_tuning example once under GPTUNE_RECORD and once
#           under GPTUNE_REPLAY of the recorded completion log, and asserts
#           the two trajectories are bitwise identical — the async
#           pipeline's replay-determinism contract (§3.9)
#   threadsafety — Clang build tree (build-threadsafety/) with
#           -Wthread-safety -Werror over the annotated sync layer
#           (common/annotations.hpp, DESIGN.md §3.11), plus the negative
#           test: the deliberately unguarded access in
#           tests/lint_fixtures/threadsafety_negative.cpp must FAIL to
#           compile. Skip-passes with a clear message when clang++ is not
#           installed (the analysis is Clang-only).
#   tidy  — clang-tidy over src/ and tools/ against the compile database
#           of a plain configure (build-tidy/); .clang-tidy sets
#           WarningsAsErrors '*', so every finding fails the lane.
#           Skip-passes when clang-tidy is not installed.
#   report — plain build tree (build-trace/, shared with the trace lane):
#           post-mortem/observability smoke (DESIGN.md §3.12). A clean
#           quickstart-shaped run with GPTUNE_MANIFEST + GPTUNE_DUMP_DIR +
#           GPTUNE_HEARTBEAT must (a) land on results bitwise identical to
#           the uninstrumented run, (b) write a finalized manifest that
#           gptune_report --ci accepts with zero anomaly flags while
#           passing the committed BENCH_*.json baselines, and (c) a
#           fault-injected hard crash (fault_report_demo --crash) must
#           leave a flight_dump_crash.json that gptune_report renders and
#           flags ([incomplete-run] + [crash-dump], exit 1 under --ci).
#   bench — bench build tree (build-bench/): runs the fast bench axes
#           (bench_incremental_refit; GPTUNE_BENCH_FULL=1 adds
#           fig3_parallel_scaling) and gates their speedup/occupancy
#           metrics against the committed BENCH_*.json baselines via
#           scripts/bench_gate.py (0.5 tolerance band). After a deliberate
#           perf or trajectory change: bench_gate.py --update, commit.
# Every lane builds with GPTUNE_WERROR=ON (-Wall -Wextra -Wshadow -Werror).
# Each lane uses a dedicated build dir, separate from the plain ./build, so
# the trees never contaminate each other. Benches and examples are skipped
# outside the trace and bench lanes — the slow label has its own lane
# (`ctest -L slow` in a regular build).
#
# Usage: scripts/check.sh [LANE|all] [build-dir]
#        scripts/check.sh --list-lanes   # JSON array, single-sources the
#                                        # CI matrix (.github/workflows)
#   default lane: asan
#   (default dirs: build-asan, build-tsan, build-rtcheck,
#    build-threadsafety, build-tidy, build-trace, build-bench)
set -euo pipefail

cd "$(dirname "$0")/.."
LANE="${1:-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

# The one list every usage/error message — and the CI matrix — derives from.
LANES="asan tsan lint threadsafety tidy trace replay report bench"
LANES_HELP="$(echo "${LANES}" | tr ' ' '|')|all"

if [ "${LANE}" = --list-lanes ]; then
  out=""
  for l in ${LANES}; do out="${out}\"${l}\","; done
  echo "[${out%,}]"
  exit 0
fi

# Versioned fallbacks for the Clang-only lanes (Debian/Ubuntu install
# clang++-NN without the bare name unless the meta package is present).
find_tool() {
  local base="$1" c
  for c in "${base}" "${base}-19" "${base}-18" "${base}-17" "${base}-16" \
           "${base}-15" "${base}-14"; do
    if command -v "${c}" >/dev/null 2>&1; then
      echo "${c}"
      return 0
    fi
  done
  return 1
}

run_lane() {
  local lane="$1" build_dir="$2"
  local sanitize=OFF tsan=OFF rtcheck=OFF
  case "${lane}" in
    asan) sanitize=ON ;;
    tsan) tsan=ON ;;
    lint) rtcheck=ON ;;
    *) echo "unknown lane '${lane}' (want ${LANES_HELP})" >&2; exit 2 ;;
  esac

  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_SANITIZE="${sanitize}" \
    -DGPTUNE_TSAN="${tsan}" \
    -DGPTUNE_RTCHECK="${rtcheck}" \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=OFF
  cmake --build "${build_dir}" -j "${JOBS}"

  # halt_on_error keeps a sanitizer hit from scrolling past as a warning.
  UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1" \
  ASAN_OPTIONS="detect_leaks=1" \
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ctest --test-dir "${build_dir}" -L tier1 --output-on-failure -j "${JOBS}"

  if [ "${lane}" = lint ]; then
    # The tree must be lint-clean (suppressions are deliberate, annotated).
    "${build_dir}/tools/gptune_lint/gptune_lint" src tests tools
  fi
}

# Static thread-safety analysis (DESIGN.md §3.11): build the library tree
# with Clang's -Wthread-safety under -Werror — every GPTUNE_GUARDED_BY
# member access must hold the mutex — then require the deliberately
# unguarded fixture to FAIL, proving the annotations are live. Clang-only;
# a clear skip-pass elsewhere so the lane is safe in every environment.
run_threadsafety_lane() {
  local build_dir="$1"
  local clangxx
  if ! clangxx="$(find_tool clang++)"; then
    echo "threadsafety lane: SKIPPED — clang++ not found (Clang implements -Wthread-safety; GCC/MSVC compile the annotations away)"
    return 0
  fi

  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_COMPILER="${clangxx}" \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_THREAD_SAFETY=ON \
    -DGPTUNE_BUILD_TESTS=OFF \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=OFF
  cmake --build "${build_dir}" -j "${JOBS}"

  # The negative test: an unguarded access to a GPTUNE_GUARDED_BY member
  # must be rejected. If this fixture ever compiles, the annotations have
  # gone inert and the clean tree build above proves nothing.
  if "${clangxx}" -std=c++20 -fsyntax-only -Isrc -Wthread-safety -Werror \
      tests/lint_fixtures/threadsafety_negative.cpp 2>/dev/null; then
    echo "threadsafety lane: the unguarded fixture compiled cleanly — the thread-safety annotations are inert" >&2
    exit 1
  fi
  echo "threadsafety lane: tree clean under -Wthread-safety -Werror; unguarded fixture rejected"
}

# clang-tidy over the library and tool sources, driven by the compile
# database of a plain configure. .clang-tidy sets WarningsAsErrors '*', so
# any finding fails the lane.
run_tidy_lane() {
  local build_dir="$1"
  local tidy
  if ! tidy="$(find_tool clang-tidy)"; then
    echo "tidy lane: SKIPPED — clang-tidy not found"
    return 0
  fi

  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_BUILD_TESTS=OFF \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=OFF

  local files
  files="$(find src tools -name '*.cpp' | sort)"
  # shellcheck disable=SC2086
  "${tidy}" -p "${build_dir}" --quiet ${files}
  echo "tidy lane: clean over $(echo "${files}" | wc -l) translation unit(s)"
}

# Trace smoke: the same quickstart run with and without telemetry must land
# on identical tuning results (only the `t=` result rows are compared —
# phase-time lines are host wall-clock), and the emitted trace must be a
# valid Chrome trace_event file by trace_summarize's reader.
run_trace_lane() {
  local build_dir="$1"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=ON
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target quickstart trace_summarize

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  "${build_dir}/examples/quickstart" > "${tmp}/plain.out"
  GPTUNE_TRACE="${tmp}/trace.json" GPTUNE_METRICS="${tmp}/metrics.json" \
    "${build_dir}/examples/quickstart" > "${tmp}/traced.out"

  [ -s "${tmp}/trace.json" ] || { echo "trace lane: no trace written" >&2; exit 1; }
  [ -s "${tmp}/metrics.json" ] || { echo "trace lane: no metrics written" >&2; exit 1; }
  "${build_dir}/tools/trace_summarize/trace_summarize" "${tmp}/trace.json"

  grep '^t=' "${tmp}/plain.out" > "${tmp}/plain.results"
  grep '^t=' "${tmp}/traced.out" > "${tmp}/traced.results"
  [ -s "${tmp}/plain.results" ] || { echo "trace lane: quickstart printed no results" >&2; exit 1; }
  if ! diff -u "${tmp}/plain.results" "${tmp}/traced.results"; then
    echo "trace lane: tracing perturbed the tuning results" >&2
    exit 1
  fi
  echo "trace lane: results identical with telemetry on/off"
}

# Replay smoke: record a live async_tuning run's completion log, replay it,
# and require the bitwise-identical trajectory the §3.9 contract promises.
# Shares the trace lane's plain build tree (same cmake cache flags).
run_replay_lane() {
  local build_dir="$1"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=ON
  cmake --build "${build_dir}" -j "${JOBS}" --target async_tuning

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  GPTUNE_RECORD="${tmp}/completions.json" \
    "${build_dir}/examples/async_tuning" > "${tmp}/recorded.out"
  [ -s "${tmp}/completions.json" ] || { echo "replay lane: no completion log written" >&2; exit 1; }
  GPTUNE_REPLAY="${tmp}/completions.json" \
    "${build_dir}/examples/async_tuning" > "${tmp}/replayed.out"

  grep '^t=' "${tmp}/recorded.out" > "${tmp}/recorded.results"
  grep '^t=' "${tmp}/replayed.out" > "${tmp}/replayed.results"
  [ -s "${tmp}/recorded.results" ] || { echo "replay lane: async_tuning printed no results" >&2; exit 1; }
  if ! diff -u "${tmp}/recorded.results" "${tmp}/replayed.results"; then
    echo "replay lane: replay diverged from the recorded run" >&2
    exit 1
  fi
  echo "replay lane: replayed trajectory bitwise identical ($(wc -l < "${tmp}/recorded.results") evaluations)"
}

# Post-mortem/report smoke (DESIGN.md §3.12): manifest + flight recorder +
# heartbeat must be observe-only on a clean run, produce a report
# gptune_report --ci accepts, and a hard crash must leave a dump the
# report renders and flags. Shares the trace lane's plain build tree.
run_report_lane() {
  local build_dir="$1"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_BUILD_BENCH=OFF \
    -DGPTUNE_BUILD_EXAMPLES=ON
  cmake --build "${build_dir}" -j "${JOBS}" \
    --target quickstart fault_report_demo gptune_report

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN
  local report="${build_dir}/tools/gptune_report/gptune_report"

  "${report}" --selftest

  # Clean run: full observability on. The recorder, heartbeat, and
  # manifest observe — the tuning trajectory must be bitwise identical to
  # the uninstrumented run.
  "${build_dir}/examples/quickstart" > "${tmp}/plain.out"
  mkdir "${tmp}/clean"
  GPTUNE_MANIFEST="${tmp}/clean/manifest.json" \
  GPTUNE_DUMP_DIR="${tmp}/clean" GPTUNE_HEARTBEAT=0.2 \
    "${build_dir}/examples/quickstart" > "${tmp}/observed.out"
  grep '^t=' "${tmp}/plain.out" > "${tmp}/plain.results"
  grep '^t=' "${tmp}/observed.out" > "${tmp}/observed.results"
  [ -s "${tmp}/plain.results" ] || { echo "report lane: quickstart printed no results" >&2; exit 1; }
  if ! diff -u "${tmp}/plain.results" "${tmp}/observed.results"; then
    echo "report lane: manifest/recorder/heartbeat perturbed the tuning results" >&2
    exit 1
  fi
  [ -s "${tmp}/clean/manifest.json" ] || { echo "report lane: no manifest written" >&2; exit 1; }
  [ -s "${tmp}/clean/heartbeat.json" ] || { echo "report lane: no heartbeat snapshot written" >&2; exit 1; }
  # Clean manifest + dumps + committed bench baselines: zero anomaly flags.
  "${report}" --ci --manifest "${tmp}/clean/manifest.json" \
    --dump-dir "${tmp}/clean" --bench-dir . > "${tmp}/clean.report"
  grep -q 'report: clean' "${tmp}/clean.report" || { echo "report lane: clean run not reported clean" >&2; cat "${tmp}/clean.report"; exit 1; }

  # Crash run: the injected hard crash must leave a crash dump that the
  # report renders with per-thread timelines and flags under --ci.
  mkdir "${tmp}/crash"
  local rc=0
  # The child bash absorbs the "Aborted (core dumped)" job notice into the
  # redirected stderr — the SIGABRT is the expected fixture, not noise.
  bash -c "GPTUNE_MANIFEST='${tmp}/crash/manifest.json' \
    GPTUNE_DUMP_DIR='${tmp}/crash' \
    '${build_dir}/examples/fault_report_demo' --crash; exit \$?" \
    > /dev/null 2>&1 || rc=$?
  [ "${rc}" -ne 0 ] || { echo "report lane: fault_report_demo --crash exited 0" >&2; exit 1; }
  [ -s "${tmp}/crash/flight_dump_crash.json" ] || { echo "report lane: no crash dump written" >&2; exit 1; }
  rc=0
  "${report}" --ci --manifest "${tmp}/crash/manifest.json" \
    --dump-dir "${tmp}/crash" > "${tmp}/crash.report" || rc=$?
  [ "${rc}" -eq 1 ] || { echo "report lane: crashed run passed --ci (rc=${rc})" >&2; cat "${tmp}/crash.report"; exit 1; }
  grep -q '\[crash-dump\]' "${tmp}/crash.report" || { echo "report lane: crash-dump flag missing" >&2; cat "${tmp}/crash.report"; exit 1; }
  grep -q '\[incomplete-run\]' "${tmp}/crash.report" || { echo "report lane: incomplete-run flag missing" >&2; cat "${tmp}/crash.report"; exit 1; }
  grep -q 'last .* event(s)' "${tmp}/crash.report" || { echo "report lane: per-thread timeline missing from report" >&2; cat "${tmp}/crash.report"; exit 1; }
  echo "report lane: clean run observe-only + reported clean; crash run dumped + flagged"
}

# Bench-regression gate: run the fast bench axes in a scratch CWD and
# compare the speedup/occupancy metrics they emit against the committed
# BENCH_*.json baselines (scripts/bench_gate.py).
run_bench_lane() {
  local build_dir="$1"
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DGPTUNE_WERROR=ON \
    -DGPTUNE_BUILD_BENCH=ON \
    -DGPTUNE_BUILD_EXAMPLES=OFF
  local targets=(bench_incremental_refit)
  if [ "${GPTUNE_BENCH_FULL:-0}" = 1 ]; then
    targets+=(fig3_parallel_scaling)
  fi
  cmake --build "${build_dir}" -j "${JOBS}" --target "${targets[@]}"

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  local t
  for t in "${targets[@]}"; do
    # BenchJson writes into the CWD; keep the fresh files out of the tree.
    (cd "${tmp}" && "${OLDPWD}/${build_dir}/bench/${t}")
  done
  python3 scripts/bench_gate.py --current "${tmp}"
}

case "${LANE}" in
  all)
    run_lane asan "${2:-build-asan}"
    run_lane tsan "${2:-build-tsan}"
    run_lane lint "${2:-build-rtcheck}"
    run_threadsafety_lane "${2:-build-threadsafety}"
    run_tidy_lane "${2:-build-tidy}"
    run_trace_lane "${2:-build-trace}"
    run_replay_lane "${2:-build-trace}"
    run_report_lane "${2:-build-trace}"
    run_bench_lane "${2:-build-bench}"
    ;;
  asan)
    run_lane asan "${2:-build-asan}"
    ;;
  tsan)
    run_lane tsan "${2:-build-tsan}"
    ;;
  lint)
    run_lane lint "${2:-build-rtcheck}"
    ;;
  threadsafety)
    run_threadsafety_lane "${2:-build-threadsafety}"
    ;;
  tidy)
    run_tidy_lane "${2:-build-tidy}"
    ;;
  trace)
    run_trace_lane "${2:-build-trace}"
    ;;
  replay)
    run_replay_lane "${2:-build-trace}"
    ;;
  report)
    run_report_lane "${2:-build-trace}"
    ;;
  bench)
    run_bench_lane "${2:-build-bench}"
    ;;
  *)
    echo "usage: scripts/check.sh [${LANES_HELP}] [build-dir]" >&2
    exit 2
    ;;
esac
