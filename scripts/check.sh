#!/usr/bin/env bash
# Tier-1 gate under sanitizers: configures a dedicated ASan+UBSan build tree
# (separate from the plain ./build so the two never contaminate each other),
# builds the library and tests, and runs the tier1-labeled ctest suite.
# Benches and examples are skipped — the slow label has its own lane
# (`ctest -L slow` in a regular build).
#
# Usage: scripts/check.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"
JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B "${BUILD_DIR}" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGPTUNE_SANITIZE=ON \
  -DGPTUNE_BUILD_BENCH=OFF \
  -DGPTUNE_BUILD_EXAMPLES=OFF
cmake --build "${BUILD_DIR}" -j "${JOBS}"

# halt_on_error keeps a UBSan hit from scrolling past as a warning.
export UBSAN_OPTIONS="print_stacktrace=1:halt_on_error=1"
export ASAN_OPTIONS="detect_leaks=1"
ctest --test-dir "${BUILD_DIR}" -L tier1 --output-on-failure -j "${JOBS}"
