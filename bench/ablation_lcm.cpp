// Ablation bench for the design choices DESIGN.md calls out (not a paper
// figure): on the PDGEQRF tuning workload,
//   * Q — number of latent functions in the LCM (paper: Q <= delta),
//   * n_start — multi-start count for hyperparameter optimization (§4.3),
//   * EI vs posterior-mean-only acquisition,
//   * Latin hypercube vs uniform-random initial design,
//   * log-objective transform on vs off.
// Each variant reports the mean best runtime over tasks (geometric mean
// over seeds); lower is better.
#include <cmath>
#include <string>
#include <vector>

#include "apps/scalapack_sim.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/mla.hpp"

namespace {

using namespace gptune;

constexpr std::size_t kDelta = 5;
constexpr std::size_t kEps = 10;
constexpr int kSeeds = 2;

double run_variant(const apps::PdgeqrfSim& qr,
                   const std::vector<core::TaskVector>& tasks,
                   const core::MlaOptions& base) {
  double log_sum = 0.0;
  int count = 0;
  for (int s = 0; s < kSeeds; ++s) {
    core::MlaOptions opt = base;
    opt.seed = base.seed + 1000 * s;
    core::MultitaskTuner tuner(qr.tuning_space(), qr.objective(3), opt);
    auto result = tuner.run(tasks);
    for (const auto& th : result.tasks) {
      log_sum += std::log(th.best());
      ++count;
    }
  }
  return std::exp(log_sum / count);
}

}  // namespace

int main() {
  using namespace gptune::bench;

  apps::MachineConfig machine;
  machine.nodes = 16;
  apps::PdgeqrfSim qr(machine);

  common::Rng rng(77);
  std::vector<core::TaskVector> tasks;
  for (std::size_t i = 0; i < kDelta; ++i) {
    tasks.push_back({std::floor(rng.uniform(4000, 20000)),
                     std::floor(rng.uniform(4000, 20000))});
  }

  core::MlaOptions base;
  base.budget_per_task = kEps;
  base.model_restarts = 2;
  base.max_lbfgs_iterations = 20;
  base.refit_period = 2;
  base.log_objective = true;
  base.seed = 9;

  section("ablation: LCM latent count Q (geometric-mean best runtime)");
  double q_results[3];
  const std::size_t q_values[3] = {1, 3, kDelta};
  for (int k = 0; k < 3; ++k) {
    core::MlaOptions opt = base;
    opt.num_latent = q_values[k];
    q_results[k] = run_variant(qr, tasks, opt);
    row("Q=%zu  -> %.4fs", q_values[k], q_results[k]);
  }
  shape_check(q_results[1] <= 1.15 * q_results[0] &&
                  q_results[1] <= 1.15 * q_results[2],
              "moderate Q (3) is competitive with both extremes");

  section("ablation: hyperparameter multi-start count n_start");
  for (std::size_t n_start : {1, 2, 4}) {
    core::MlaOptions opt = base;
    opt.model_restarts = n_start;
    row("n_start=%zu -> %.4fs", n_start, run_variant(qr, tasks, opt));
  }

  section("ablation: acquisition function");
  core::MlaOptions ei = base;
  core::MlaOptions mean_only = base;
  mean_only.use_ei = false;
  const double with_ei = run_variant(qr, tasks, ei);
  const double with_mean = run_variant(qr, tasks, mean_only);
  row("EI              -> %.4fs", with_ei);
  row("posterior mean  -> %.4fs", with_mean);
  shape_check(with_ei <= 1.25 * with_mean,
              "EI (exploration) at least competitive with pure "
              "exploitation");

  section("ablation: initial design");
  core::MlaOptions lhs = base;
  core::MlaOptions uniform = base;
  uniform.initial_design = core::InitialDesign::kUniform;
  const double with_lhs = run_variant(qr, tasks, lhs);
  const double with_uniform = run_variant(qr, tasks, uniform);
  row("Latin hypercube -> %.4fs", with_lhs);
  row("uniform random  -> %.4fs", with_uniform);
  shape_check(with_lhs <= 1.2 * with_uniform,
              "LHS at least competitive with uniform initial design");

  section("ablation: log-objective transform");
  core::MlaOptions log_on = base;
  core::MlaOptions log_off = base;
  log_off.log_objective = false;
  const double with_log = run_variant(qr, tasks, log_on);
  const double without_log = run_variant(qr, tasks, log_off);
  row("log(y)          -> %.4fs", with_log);
  row("raw y           -> %.4fs", without_log);
  shape_check(with_log <= 1.1 * without_log,
              "log transform helps (or ties) on positive runtimes");

  return finish("ablation_lcm");
}
