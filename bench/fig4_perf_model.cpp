// Reproduces paper Fig. 4: the advantage of coarse performance models.
//
// Left: the analytical function (Eq. 11) with the noisy model
//   y~(t,x) = (1 + 0.1 r) y(t,x); MLA with vs without the model across a
//   task sweep and several budgets. Paper: the model always helps or ties
//   (ratio >= 1), more so for complex tasks (large t) and small budgets.
// Right: ScaLAPACK PDGEQRF with the Eq. (7) analytic model whose
//   t_flop/t_msg/t_vol coefficients are estimated on the fly (§3.3).
//   Paper: up to 35% improvement at eps_tot = 10, fading as eps grows.
//
// Scaled down for a single-core host: delta = 10 tasks (paper 20) on the
// left, eps in {10, 20, 40} (paper {20, 40, 80}); 5 tasks, eps in {10, 20}
// (paper {10, 20, 40}) on the right. See EXPERIMENTS.md.
#include <cmath>
#include <vector>

#include "apps/analytical.hpp"
#include "apps/scalapack_sim.hpp"
#include "bench_util.hpp"
#include "common/rng.hpp"
#include "core/mla.hpp"

namespace {

using namespace gptune;

core::MlaOptions base_options(std::size_t eps, std::uint64_t seed) {
  core::MlaOptions opt;
  opt.budget_per_task = eps;
  opt.model_restarts = 2;
  opt.max_lbfgs_iterations = 20;
  opt.refit_period = 2;
  opt.seed = seed;
  return opt;
}

}  // namespace

int main() {
  using namespace gptune::bench;

  // ---------------- left: analytical function ----------------
  section("Fig. 4 (left): analytical function, MLA with vs without the "
          "noisy performance model");

  constexpr std::size_t kDelta = 10;
  std::vector<core::TaskVector> tasks;
  for (std::size_t i = 0; i < kDelta; ++i) {
    tasks.push_back({static_cast<double>(i)});
  }
  core::CallableModel noisy_model(
      [](const core::TaskVector& t, const core::Config& c) {
        return std::vector<double>{
            apps::analytical_noisy_model(t[0], c[0], 777)};
      },
      1);

  double small_eps_mean_ratio = 0.0, large_eps_mean_ratio = 0.0;
  for (std::size_t eps : {10, 20, 40}) {
    core::MlaOptions with_opt = base_options(eps, 3);
    with_opt.performance_model = &noisy_model;
    core::MultitaskTuner with_tuner(apps::analytical_tuning_space(),
                                    apps::analytical_fn(), with_opt);
    auto with = with_tuner.run(tasks);

    core::MlaOptions without_opt = base_options(eps, 3);
    core::MultitaskTuner without_tuner(apps::analytical_tuning_space(),
                                       apps::analytical_fn(), without_opt);
    auto without = without_tuner.run(tasks);

    row("\neps_tot=%zu: ratio = best(no model) / best(with model), "
        "and truth ratio = true min / best(with model)",
        eps);
    row("%6s %12s %12s", "t", "ratio", "truth-ratio");
    std::size_t model_geq = 0;
    double mean_ratio = 0.0;
    for (std::size_t i = 0; i < kDelta; ++i) {
      // Shift to positive scale before forming ratios: the objective can
      // be near zero/negative, the paper's QR ratios are of runtimes.
      const double shift = 1.0;
      const double w = with.tasks[i].best() + shift;
      const double wo = without.tasks[i].best() + shift;
      const double truth =
          apps::analytical_true_minimum(tasks[i][0], 100001) + shift;
      const double ratio = wo / w;
      row("%6.1f %12.4f %12.4f", tasks[i][0], ratio, truth / w);
      if (ratio >= 0.999) ++model_geq;
      mean_ratio += ratio / kDelta;
    }
    row("model >= no-model on %zu/%zu tasks, mean ratio %.3f", model_geq,
        kDelta, mean_ratio);
    if (eps == 20) small_eps_mean_ratio = mean_ratio;
    if (eps == 40) large_eps_mean_ratio = mean_ratio;
    shape_check(model_geq * 2 >= kDelta,
                "eps=" + std::to_string(eps) +
                    ": the performance model helps or ties on most tasks");
  }
  // At eps=10 both variants sit near the random-design floor; the paper's
  // "higher ratios for smaller eps_tot" is checked on the informative
  // budgets (20 vs 40).
  shape_check(small_eps_mean_ratio >= large_eps_mean_ratio - 0.10,
              "model advantage does not shrink from eps=20 to eps=40");

  // ---------------- right: PDGEQRF with Eq. (7) model ----------------
  section("Fig. 4 (right): PDGEQRF, MLA with vs without the Eq. (7) model "
          "(on-the-fly coefficient estimation)");

  apps::MachineConfig machine;
  machine.nodes = 16;  // paper: 16 Cori nodes
  apps::PdgeqrfSim qr(machine);
  common::Rng task_rng(5);
  std::vector<core::TaskVector> qr_tasks;
  for (int i = 0; i < 5; ++i) {
    qr_tasks.push_back(
        {std::floor(task_rng.uniform(1000, 20000)),
         std::floor(task_rng.uniform(1000, 20000))});
  }

  double qr_best_improvement = 0.0;
  for (std::size_t eps : {10, 20}) {
    auto model = qr.make_performance_model();
    core::MlaOptions with_opt = base_options(eps, 17);
    with_opt.log_objective = true;
    with_opt.performance_model = &model;
    core::MultitaskTuner with_tuner(qr.tuning_space(), qr.objective(3),
                                    with_opt);
    auto with = with_tuner.run(qr_tasks);

    core::MlaOptions without_opt = base_options(eps, 17);
    without_opt.log_objective = true;
    core::MultitaskTuner without_tuner(qr.tuning_space(), qr.objective(3),
                                       without_opt);
    auto without = without_tuner.run(qr_tasks);

    row("\neps_tot=%zu:", eps);
    row("%16s %12s %12s %8s", "task (m x n)", "no-model(s)", "model(s)",
        "ratio");
    std::size_t geq = 0;
    for (std::size_t i = 0; i < qr_tasks.size(); ++i) {
      const double w = with.tasks[i].best();
      const double wo = without.tasks[i].best();
      row("%7.0f x %-7.0f %12.4f %12.4f %8.3f", qr_tasks[i][0],
          qr_tasks[i][1], wo, w, wo / w);
      if (wo / w >= 0.999) ++geq;
      qr_best_improvement = std::max(qr_best_improvement, wo / w - 1.0);
    }
    row("model >= no-model on %zu/%zu tasks; fitted coefficients "
        "t_flop=%.2e t_msg=%.2e t_vol=%.2e",
        geq, qr_tasks.size(), model.coefficients()[0],
        model.coefficients()[1], model.coefficients()[2]);
    shape_check(geq >= 3, "eps=" + std::to_string(eps) +
                              ": Eq. (7) model helps or ties on most tasks");
  }
  // The paper saw up to 35% on real PDGEQRF; our simulator adds starvation
  // cliffs that lie outside the Eq. (7) feature set, damping the gain.
  shape_check(qr_best_improvement > 0.03,
              "best-case model improvement is material (paper: up to 35%)");

  return finish("fig4_perf_model");
}
