// Shared helpers for the paper-reproduction bench harnesses: section
// headers, aligned table rows, and qualitative shape checks (each bench
// verifies the *shape* the paper reports — who wins, rough factors,
// crossovers — not Cori's absolute numbers; see EXPERIMENTS.md).
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <vector>

namespace gptune::bench {

inline int g_checks_passed = 0;
inline int g_checks_failed = 0;

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Records and prints a qualitative shape check.
inline void shape_check(bool ok, const std::string& claim) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISS", claim.c_str());
  if (ok) {
    ++g_checks_passed;
  } else {
    ++g_checks_failed;
  }
}

inline int finish(const char* bench_name) {
  std::printf("\n%s: %d shape checks passed, %d missed\n", bench_name,
              g_checks_passed, g_checks_failed);
  return 0;  // misses are reported, not fatal: shapes depend on seeds
}

}  // namespace gptune::bench
