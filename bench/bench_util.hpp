// Shared helpers for the paper-reproduction bench harnesses: section
// headers, aligned table rows, and qualitative shape checks (each bench
// verifies the *shape* the paper reports — who wins, rough factors,
// crossovers — not Cori's absolute numbers; see EXPERIMENTS.md).
#pragma once

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace gptune::bench {

inline int g_checks_passed = 0;
inline int g_checks_failed = 0;

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void row(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vprintf(fmt, args);
  va_end(args);
  std::printf("\n");
}

/// Records and prints a qualitative shape check.
inline void shape_check(bool ok, const std::string& claim) {
  std::printf("[%s] %s\n", ok ? "SHAPE-OK" : "SHAPE-MISS", claim.c_str());
  if (ok) {
    ++g_checks_passed;
  } else {
    ++g_checks_failed;
  }
}

inline int finish(const char* bench_name) {
  std::printf("\n%s: %d shape checks passed, %d missed\n", bench_name,
              g_checks_passed, g_checks_failed);
  return 0;  // misses are reported, not fatal: shapes depend on seeds
}

/// Machine-readable bench output: a JSON array of
/// `{"metric": ..., "value": ..., "workers": ..., "seed": ...}` records,
/// written on destruction (e.g. BENCH_fig3.json) so the perf trajectory
/// can be tracked across PRs instead of scraped from the tables above.
class BenchJson {
 public:
  explicit BenchJson(std::string path) : path_(std::move(path)) {}

  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  void record(const std::string& metric, double value, std::size_t workers,
              std::uint64_t seed) {
    Record r;
    r.metric = metric;
    r.value = value;
    r.workers = workers;
    r.seed = seed;
    records_.push_back(std::move(r));
  }

  ~BenchJson() {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const Record& r = records_[i];
      std::fprintf(f,
                   "  {\"metric\": \"%s\", \"value\": %.17g, "
                   "\"workers\": %zu, \"seed\": %llu}%s\n",
                   r.metric.c_str(), r.value, r.workers,
                   static_cast<unsigned long long>(r.seed),
                   i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu metrics to %s\n", records_.size(), path_.c_str());
  }

 private:
  struct Record {
    std::string metric;
    double value = 0.0;
    std::size_t workers = 0;
    std::uint64_t seed = 0;
  };
  std::string path_;
  std::vector<Record> records_;
};

}  // namespace gptune::bench
