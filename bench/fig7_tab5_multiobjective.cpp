// Reproduces paper Table 5 and Fig. 7: multi-objective tuning of
// SuperLU_DIST (factorization time, memory) on 8 nodes.
//
// Table 5: default vs the optimal parameters from single-objective time
//   tuning and single-objective memory tuning on matrix Si2. Paper: the
//   optima differ vastly from the default (time wants large NSUP, memory
//   wants small NSUP); tuned performance improves up to 83% in time /
//   93% in memory over default.
// Fig. 7 left: the multi-objective Pareto front for Si2; the two
//   single-objective minima lie on or near the front; the default is far
//   from optimal in both dimensions.
// Fig. 7 right: 8 PARSEC matrices, single-task vs multitask
//   multi-objective tuning — very few single-task points Pareto-dominate
//   the multitask front.
#include <algorithm>
#include <vector>

#include "apps/superlu_sim.hpp"
#include "bench_util.hpp"
#include "core/mla.hpp"
#include "opt/nsga2.hpp"

namespace {

using namespace gptune;

core::MlaOptions mo_options(std::size_t eps, std::uint64_t seed,
                            std::size_t gamma) {
  core::MlaOptions opt;
  opt.num_objectives = gamma;
  opt.budget_per_task = eps;
  opt.batch_k = 4;
  opt.model_restarts = 2;
  opt.max_lbfgs_iterations = 15;
  opt.refit_period = 3;
  opt.log_objective = true;
  opt.seed = seed;
  return opt;
}

}  // namespace

int main() {
  using namespace gptune::bench;

  apps::SuperluSim superlu(apps::MachineConfig{8, 32});
  const core::Space space = superlu.tuning_space();
  const double si2 =
      static_cast<double>(apps::SuperluSim::matrix_index("Si2"));

  // ---------------- Table 5: single-objective optima on Si2 ----------------
  section("Table 5: default vs single-objective optimal parameters, Si2");

  const core::Config default_cfg = apps::SuperluSim::default_config();
  const auto default_result = superlu.factorize({si2}, default_cfg);

  // Single-objective time tuning.
  core::MultitaskTuner time_tuner(space, superlu.objective_time(1),
                                  mo_options(80, 71, 1));
  auto time_result = time_tuner.run({{si2}});
  const core::Config time_cfg = time_result.tasks[0].best_config();

  // Single-objective memory tuning.
  auto memory_objective = [&superlu](const core::TaskVector& t,
                                     const core::Config& x) {
    return std::vector<double>{superlu.factorize(t, x).memory_bytes};
  };
  core::MultitaskTuner mem_tuner(space, memory_objective,
                                 mo_options(80, 72, 1));
  auto mem_result = mem_tuner.run({{si2}});
  const core::Config mem_cfg = mem_result.tasks[0].best_config();

  row("%-8s %s", "Default", space.format(default_cfg).c_str());
  row("%-8s %s", "Time", space.format(time_cfg).c_str());
  row("%-8s %s", "Memory", space.format(mem_cfg).c_str());

  const auto time_opt = superlu.factorize({si2}, time_cfg);
  const auto mem_opt = superlu.factorize({si2}, mem_cfg);
  const double time_improvement =
      1.0 - time_opt.time_seconds / default_result.time_seconds;
  const double mem_improvement =
      1.0 - mem_opt.memory_bytes / default_result.memory_bytes;
  row("\ndefault: time %.4fs memory %.1f MB", default_result.time_seconds,
      default_result.memory_bytes / 1e6);
  row("tuned:   time %.4fs (-%.0f%%) | memory %.1f MB (-%.0f%%)",
      time_opt.time_seconds, 100.0 * time_improvement,
      mem_opt.memory_bytes / 1e6, 100.0 * mem_improvement);

  // Paper: 83% on the real code, where a 769-dof matrix on 256 processes
  // is catastrophically latency-bound; our analytic model compresses that
  // regime, so the reproducible shape is "material improvement".
  shape_check(time_improvement > 0.15,
              "Table 5: material time improvement over default (paper: "
              "83%)");
  shape_check(mem_improvement > 0.3,
              "Table 5: large memory improvement over default (paper: 93%)");
  // NSUP direction: time optimum uses larger supernodes than the memory
  // optimum (paper: 295 vs 31).
  const std::size_t nsup_index = space.index_of("NSUP");
  shape_check(time_cfg[nsup_index] > mem_cfg[nsup_index],
              "Table 5: time optimum uses larger NSUP than memory optimum");

  // ---------------- Fig. 7 left: Pareto front for Si2 ----------------
  section("Fig. 7 (left): multi-objective Pareto front, Si2");

  core::MultitaskTuner mo_tuner(space, superlu.objective_time_memory(1),
                                mo_options(80, 73, 2));
  auto mo_result = mo_tuner.run({{si2}});
  auto front = mo_result.tasks[0].pareto();
  std::sort(front.begin(), front.end(),
            [](const core::EvalRecord& a, const core::EvalRecord& b) {
              return a.objectives[0] < b.objectives[0];
            });
  row("%10s %12s", "time(s)", "memory(MB)");
  for (const auto& e : front) {
    row("%10.4f %12.1f", e.objectives[0], e.objectives[1] / 1e6);
  }

  // The single-objective minima should lie on or near the front: no front
  // point should dominate them by a wide margin in their own objective.
  double front_best_time = 1e300, front_best_mem = 1e300;
  for (const auto& e : front) {
    front_best_time = std::min(front_best_time, e.objectives[0]);
    front_best_mem = std::min(front_best_mem, e.objectives[1]);
  }
  row("\nfront extremes: time %.4fs, memory %.1f MB; single-objective "
      "minima: time %.4fs, memory %.1f MB",
      front_best_time, front_best_mem / 1e6, time_opt.time_seconds,
      mem_opt.memory_bytes / 1e6);
  shape_check(front_best_time < 1.6 * time_opt.time_seconds,
              "Fig. 7: front's best time close to single-objective optimum");
  shape_check(front_best_mem < 1.6 * mem_opt.memory_bytes,
              "Fig. 7: front's best memory close to single-objective "
              "optimum");
  const std::vector<double> default_point = {default_result.time_seconds,
                                             default_result.memory_bytes};
  std::size_t dominating_default = 0;
  for (const auto& e : front) {
    if (opt::dominates(e.objectives, default_point)) ++dominating_default;
  }
  shape_check(dominating_default >= 1,
              "Fig. 7: the default is Pareto-dominated by the tuned front");

  // ---------------- Fig. 7 right: single-task vs multitask ----------------
  section("Fig. 7 (right): 8 PARSEC matrices, single-task vs multitask "
          "multi-objective tuning");

  std::vector<core::TaskVector> all_tasks;
  for (std::size_t i = 0; i < apps::SuperluSim::catalog().size(); ++i) {
    all_tasks.push_back({static_cast<double>(i)});
  }
  constexpr std::size_t kEps = 40;  // scaled from the paper's 80

  core::MultitaskTuner multi_tuner(space, superlu.objective_time_memory(1),
                                   mo_options(kEps, 74, 2));
  auto multi_result = multi_tuner.run(all_tasks);

  std::size_t single_dominates = 0, multi_dominates = 0;
  for (std::size_t i = 0; i < all_tasks.size(); ++i) {
    core::MultitaskTuner single_tuner(space,
                                      superlu.objective_time_memory(1),
                                      mo_options(kEps, 75 + i, 2));
    auto single_result = single_tuner.run({all_tasks[i]});
    const auto sf = single_result.tasks[0].pareto();
    const auto mf = multi_result.tasks[i].pareto();
    // Count cross-dominations between the two fronts.
    std::size_t s_dom = 0, m_dom = 0;
    for (const auto& sp : sf) {
      for (const auto& mp : mf) {
        if (opt::dominates(sp.objectives, mp.objectives)) {
          ++s_dom;
          break;
        }
      }
    }
    for (const auto& mp : mf) {
      for (const auto& sp : sf) {
        if (opt::dominates(mp.objectives, sp.objectives)) {
          ++m_dom;
          break;
        }
      }
    }
    single_dominates += s_dom;
    multi_dominates += m_dom;
    row("%-10s single front %2zu pts (%2zu dominate multi) | multi front "
        "%2zu pts (%2zu dominate single)",
        apps::SuperluSim::catalog()[i].name.c_str(), sf.size(), s_dom,
        mf.size(), m_dom);
  }
  row("\ntotals: single-task points dominating multitask: %zu; multitask "
      "dominating single-task: %zu",
      single_dominates, multi_dominates);
  shape_check(multi_dominates >= single_dominates,
              "Fig. 7: very few single-task points dominate the multitask "
              "fronts (paper: 'very few data points')");

  return finish("fig7_tab5_multiobjective");
}
