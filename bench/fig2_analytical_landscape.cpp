// Reproduces paper Fig. 2: the analytical objective y(t, x) of Eq. (11)
// for four task parameter values, with each curve's global minimum marked.
//
// Prints the (x, y) series the figure plots plus the located minima, and
// shape-checks the figure's qualitative content: all four minima lie below
// the y = 1 baseline, and larger t yields a more oscillatory curve whose
// envelope decays faster.
#include <cmath>

#include "apps/analytical.hpp"
#include "bench_util.hpp"

int main() {
  using namespace gptune;
  using namespace gptune::bench;

  const double task_values[4] = {0.0, 2.0, 4.5, 9.5};

  section("Fig. 2: y(t, x) of Eq. (11), 4 tasks, x in [0, 1]");
  row("%8s %12s %12s %12s %12s", "x", "t=0", "t=2", "t=4.5", "t=9.5");
  for (int i = 0; i <= 40; ++i) {
    const double x = static_cast<double>(i) / 40.0;
    row("%8.3f %12.5f %12.5f %12.5f %12.5f", x,
        apps::analytical_objective(0.0, x), apps::analytical_objective(2.0, x),
        apps::analytical_objective(4.5, x),
        apps::analytical_objective(9.5, x));
  }

  section("global minima (dense grid + golden-section refinement)");
  double minima[4];
  for (int k = 0; k < 4; ++k) {
    minima[k] = apps::analytical_true_minimum(task_values[k], 400001);
    row("t=%-4.1f  min y = %9.5f", task_values[k], minima[k]);
  }

  for (int k = 0; k < 4; ++k) {
    shape_check(minima[k] < 1.0, "t=" + std::to_string(task_values[k]) +
                                     ": minimum below the y=1 baseline");
  }

  // Larger t: envelope exp(-(x+1)^(t+1)) decays faster, so the function is
  // essentially 1 for x beyond ~0.5 while small t still oscillates there.
  double late_amplitude_t0 = 0.0, late_amplitude_t95 = 0.0;
  for (double x = 0.5; x <= 1.0; x += 0.002) {
    late_amplitude_t0 = std::max(
        late_amplitude_t0, std::abs(apps::analytical_objective(0.0, x) - 1.0));
    late_amplitude_t95 =
        std::max(late_amplitude_t95,
                 std::abs(apps::analytical_objective(9.5, x) - 1.0));
  }
  shape_check(late_amplitude_t95 < 0.05 * late_amplitude_t0,
              "larger t: envelope kills oscillations beyond x ~ 0.5");

  return finish("fig2_analytical_landscape");
}
